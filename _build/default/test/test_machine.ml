(* Tests for the machine models (Tables 1-2) and property-based
   invariants of the SLP optimizer on random blocks: groupings must
   partition the statements, respect the datapath and dependences, and
   schedules must always be valid. *)

open Slp_ir
module Machine = Slp_machine.Machine
module Config = Slp_core.Config
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule

(* -- machine models ---------------------------------------------------- *)

let test_models_match_tables () =
  let intel = Machine.intel_dunnington in
  Alcotest.(check int) "intel cores (Table 1)" 12 intel.Machine.cores;
  Alcotest.(check (float 0.001)) "intel clock" 2.40 intel.Machine.frequency_ghz;
  Alcotest.(check int) "intel L1d 32KB" (32 * 1024) intel.Machine.l1.Machine.size_bytes;
  Alcotest.(check int) "intel L1 8-way" 8 intel.Machine.l1.Machine.ways;
  Alcotest.(check int) "64-byte lines" 64 intel.Machine.l1.Machine.line_bytes;
  let amd = Machine.amd_phenom_ii in
  Alcotest.(check int) "amd cores (Table 2)" 4 amd.Machine.cores;
  Alcotest.(check (float 0.001)) "amd clock" 3.00 amd.Machine.frequency_ghz;
  Alcotest.(check int) "amd L1d 64KB" (64 * 1024) amd.Machine.l1.Machine.size_bytes;
  Alcotest.(check int) "amd L1 2-way" 2 amd.Machine.l1.Machine.ways;
  Alcotest.(check int) "amd L3 48-way" 48 amd.Machine.l3.Machine.ways;
  (* The paper attributes AMD's lower savings to costlier packing. *)
  Alcotest.(check bool) "amd packs cost more" true
    (amd.Machine.costs.Machine.insert > intel.Machine.costs.Machine.insert)

let test_lanes_and_widths () =
  let intel = Machine.intel_dunnington in
  Alcotest.(check int) "f64 lanes" 2 (Machine.lanes intel ~elem_bytes:8);
  Alcotest.(check int) "f32 lanes" 4 (Machine.lanes intel ~elem_bytes:4);
  let wide = Machine.with_simd_bits intel 512 in
  Alcotest.(check int) "wide f64 lanes" 8 (Machine.lanes wide ~elem_bytes:8);
  Alcotest.(check int) "cache params preserved" intel.Machine.l2.Machine.size_bytes
    wide.Machine.l2.Machine.size_bytes;
  Alcotest.check_raises "bad width"
    (Invalid_argument "Machine.with_simd_bits: bits must be a positive multiple of 64")
    (fun () -> ignore (Machine.with_simd_bits intel 100))

let test_describe_rows () =
  let rows = Machine.describe Machine.intel_dunnington in
  Alcotest.(check bool) "has the Table 1 row labels" true
    (List.mem_assoc "Number of Cores" rows
    && List.mem_assoc "L1 Data" rows
    && List.mem_assoc "Core Type" rows)

(* -- random-block invariants -------------------------------------------- *)

let config = Config.make ~datapath_bits:128 ()

let gen_block_and_env =
  QCheck.Gen.(
    let subscript = map2 (fun c k -> Affine.make [ ("i", c) ] k) (int_range 1 2) (int_range 0 4) in
    let operand =
      frequency
        [
          (3, map2 (fun a ix -> Operand.Elem (a, [ ix ])) (oneofl [ "A"; "B" ]) subscript);
          (2, map (fun v -> Operand.Scalar v) (oneofl [ "x"; "y"; "z" ]));
          (1, map (fun f -> Operand.Const (float_of_int f)) (int_range 0 9));
        ]
    in
    let expr =
      frequency
        [
          (1, map (fun op -> Expr.Leaf op) operand);
          ( 2,
            map3
              (fun op l r -> Expr.Bin (op, Expr.Leaf l, Expr.Leaf r))
              (oneofl [ Types.Add; Types.Sub; Types.Mul ])
              operand operand );
        ]
    in
    let lhs =
      frequency
        [
          (3, map2 (fun a ix -> Operand.Elem (a, [ ix ])) (oneofl [ "A"; "B" ]) subscript);
          (1, map (fun v -> Operand.Scalar v) (oneofl [ "x"; "y"; "z" ]));
        ]
    in
    map
      (fun stmts ->
        let env = Env.create () in
        List.iter (fun a -> Env.declare_array env a Types.F64 [ 64 ]) [ "A"; "B" ];
        List.iter (fun v -> Env.declare_scalar env v Types.F64) [ "x"; "y"; "z" ];
        ( env,
          Block.make ~label:"rand"
            (List.mapi (fun k (l, r) -> Stmt.make ~id:(k + 1) ~lhs:l ~rhs:r) stmts) ))
      (list_size (int_range 2 10) (pair lhs expr)))

let arb_block =
  QCheck.make ~print:(fun (_, b) -> Block.to_string b) gen_block_and_env

let prop_grouping_partitions =
  QCheck.Test.make ~name:"grouping partitions the block" ~count:150 arb_block
    (fun (env, block) ->
      let r = Grouping.run ~env ~config block in
      let all = List.concat r.Grouping.groups @ r.Grouping.singles in
      List.sort compare all = Block.stmt_ids block)

let prop_grouping_respects_datapath =
  QCheck.Test.make ~name:"groups fit the datapath" ~count:150 arb_block
    (fun (env, block) ->
      let r = Grouping.run ~env ~config block in
      List.for_all (fun g -> List.length g * 64 <= 128) r.Grouping.groups)

let prop_grouping_members_independent =
  QCheck.Test.make ~name:"group members are pairwise independent" ~count:150 arb_block
    (fun (env, block) ->
      let r = Grouping.run ~env ~config block in
      List.for_all
        (fun g ->
          let rec pairs = function
            | [] -> true
            | a :: rest ->
                List.for_all (fun b -> Block.independent block a b) rest && pairs rest
          in
          pairs g)
        r.Grouping.groups)

let prop_schedule_always_valid =
  QCheck.Test.make ~name:"schedules are always valid" ~count:150 arb_block
    (fun (env, block) ->
      let r = Grouping.run ~env ~config block in
      let s = Schedule.run ~env ~config block r in
      Schedule.is_valid block s)

let prop_schedule_valid_all_options =
  QCheck.Test.make ~name:"schedules valid under every option combination" ~count:80
    arb_block (fun (env, block) ->
      let r = Grouping.run ~env ~config block in
      List.for_all
        (fun options ->
          Schedule.is_valid block (Schedule.run ~options ~env ~config block r))
        [
          { Schedule.selection = Schedule.Reuse_driven;
            ordering_search = Schedule.Direct_reuse_only };
          { Schedule.selection = Schedule.Program_order;
            ordering_search = Schedule.Direct_reuse_only };
          { Schedule.selection = Schedule.Reuse_driven;
            ordering_search = Schedule.Exhaustive };
          { Schedule.selection = Schedule.Program_order;
            ordering_search = Schedule.Exhaustive };
        ])

let prop_exhaustive_never_worse =
  QCheck.Test.make ~name:"exhaustive ordering search never loses reuses" ~count:80
    arb_block (fun (env, block) ->
      let r = Grouping.run ~env ~config block in
      let reuses options =
        let s = Schedule.run ~options ~env ~config block r in
        s.Schedule.stats.Schedule.direct_reuses
      in
      reuses
        { Schedule.selection = Schedule.Reuse_driven;
          ordering_search = Schedule.Exhaustive }
      >= reuses Schedule.default_options)

let prop_baseline_schedule_valid =
  QCheck.Test.make ~name:"baseline schedules are always valid" ~count:150 arb_block
    (fun (env, block) ->
      let r = Slp_baseline.Larsen.group ~env ~config block in
      let s = Slp_baseline.Larsen.schedule ~env ~config block r in
      Schedule.is_valid block s)

let () =
  Alcotest.run "machine_and_invariants"
    [
      ( "machine",
        [
          Alcotest.test_case "models match Tables 1-2" `Quick test_models_match_tables;
          Alcotest.test_case "lanes and widths" `Quick test_lanes_and_widths;
          Alcotest.test_case "describe rows" `Quick test_describe_rows;
        ] );
      ( "invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_grouping_partitions;
            prop_grouping_respects_datapath;
            prop_grouping_members_independent;
            prop_schedule_always_valid;
            prop_schedule_valid_all_options;
            prop_exhaustive_never_worse;
            prop_baseline_schedule_valid;
          ] );
    ]
