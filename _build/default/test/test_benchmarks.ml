(* Validation of the 16-kernel benchmark suite (Table 3): every kernel
   parses, validates, runs deterministically, and carries the expected
   metadata. *)

open Slp_ir
module Suite = Slp_benchmarks.Suite
module Machine = Slp_machine.Machine

let paper_names =
  [
    "cactusADM"; "soplex"; "lbm"; "milc"; "povray"; "gromacs"; "calculix";
    "dealII"; "wrf"; "namd"; "ua"; "ft"; "bt"; "sp"; "mg"; "cg";
  ]

let test_suite_composition () =
  Alcotest.(check int) "sixteen benchmarks" 16 (List.length Suite.all);
  Alcotest.(check (list string)) "the paper's Table 3 names" paper_names
    (List.map (fun (b : Suite.t) -> b.Suite.name) Suite.all);
  Alcotest.(check int) "ten SPEC2006" 10
    (List.length
       (List.filter (fun (b : Suite.t) -> b.Suite.suite = Suite.Spec2006) Suite.all));
  Alcotest.(check int) "six NAS" 6 (List.length Suite.nas);
  List.iter
    (fun (b : Suite.t) ->
      Alcotest.(check bool)
        (b.Suite.name ^ " NAS kernels are multicore-capable")
        (b.Suite.suite = Suite.Nas)
        b.Suite.multicore)
    Suite.all

let test_kernels_validate () =
  List.iter
    (fun (b : Suite.t) ->
      let prog = Suite.program b in
      match Program.validate prog with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s does not validate: %s" b.Suite.name m)
    Suite.all

let test_kernels_have_loops () =
  List.iter
    (fun (b : Suite.t) ->
      let prog = Suite.program b in
      Alcotest.(check bool)
        (b.Suite.name ^ " has a loop nest")
        true
        (Program.max_loop_depth prog >= 2);
      Alcotest.(check bool)
        (b.Suite.name ^ " has statements")
        true
        (Program.stmt_count prog >= 1);
      Alcotest.(check bool)
        (b.Suite.name ^ " unroll factor sane")
        true
        (b.Suite.unroll >= 1 && b.Suite.unroll <= 8))
    Suite.all

let test_kernels_deterministic () =
  List.iter
    (fun (b : Suite.t) ->
      let prog = Suite.program b in
      let machine = Machine.intel_dunnington in
      let r1 = Slp_vm.Scalar_exec.run ~machine prog in
      let r2 = Slp_vm.Scalar_exec.run ~machine prog in
      Alcotest.(check bool)
        (b.Suite.name ^ " deterministic")
        true
        (Slp_vm.Memory.same_contents r1.Slp_vm.Scalar_exec.memory
           r2.Slp_vm.Scalar_exec.memory);
      Alcotest.(check (float 0.0))
        (b.Suite.name ^ " cycle-deterministic")
        r1.Slp_vm.Scalar_exec.counters.Slp_vm.Counters.cycles
        r2.Slp_vm.Scalar_exec.counters.Slp_vm.Counters.cycles)
    Suite.all

let test_find () =
  Alcotest.(check string) "find" "milc" (Suite.find "milc").Suite.name;
  match Suite.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "found a non-existent benchmark"

let () =
  Alcotest.run "benchmarks"
    [
      ( "suite",
        [
          Alcotest.test_case "composition" `Quick test_suite_composition;
          Alcotest.test_case "kernels validate" `Quick test_kernels_validate;
          Alcotest.test_case "loop structure" `Quick test_kernels_have_loops;
          Alcotest.test_case "deterministic" `Quick test_kernels_deterministic;
          Alcotest.test_case "lookup" `Quick test_find;
        ] );
    ]
