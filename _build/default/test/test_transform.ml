(* Tests for the pre-processing transformations: loop unrolling with
   scalar privatisation, constant folding and dead code elimination.
   Unrolling is also checked semantically: the unrolled program must
   compute exactly what the original computes. *)

open Slp_ir
module Unroll = Slp_transform.Unroll
module Simplify = Slp_transform.Simplify
module Parser = Slp_frontend.Parser

let parse src = Parser.parse ~name:"t" src

(* -- privatisation ----------------------------------------------------- *)

let test_privatisable () =
  let b =
    Block.of_rhs
      [
        (Operand.Scalar "t", Expr.Infix.(sc "x" + cst 1.0));
        (Operand.Scalar "x", Expr.Infix.(sc "t" * cst 2.0));
        (Operand.Scalar "acc", Expr.Infix.(sc "acc" + sc "t"));
      ]
  in
  (* t: first access is a definition -> privatisable.
     x: read by S1 before its definition in S2 -> not privatisable.
     acc: reads itself -> not privatisable. *)
  Alcotest.(check (list string)) "only t" [ "t" ] (Unroll.privatisable b)

let test_unroll_block_renaming () =
  let b =
    Block.of_rhs
      [
        (Operand.Scalar "t", Expr.Infix.(arr "A" [ Affine.var "i" ] + cst 0.0));
        (Operand.Elem ("B", [ Affine.var "i" ]), Expr.Infix.(sc "t" * cst 2.0));
      ]
  in
  let u = Unroll.unroll_block b ~index:"i" ~factor:2 ~copy_step:1 in
  Alcotest.(check int) "doubled statements" 4 (Block.size u);
  (* Copy 0 renamed, last copy keeps the original name. *)
  let names =
    List.filter_map
      (fun (s : Stmt.t) ->
        match s.Stmt.lhs with Operand.Scalar v -> Some v | _ -> None)
      u.Block.stmts
  in
  Alcotest.(check (list string)) "renaming" [ Unroll.renamed "t" ~copy:0; "t" ] names;
  (* Copy 1 substitutes i -> i+1. *)
  match (List.nth u.Block.stmts 3).Stmt.lhs with
  | Operand.Elem ("B", [ ix ]) ->
      Alcotest.(check int) "offset shifted" 1 (Affine.const_part ix)
  | _ -> Alcotest.fail "expected B store"

let unrolled_equivalence src factor =
  let prog = parse src in
  let unrolled = Unroll.program ~factor prog in
  (match Program.validate unrolled with
  | Ok () -> ()
  | Error m -> Alcotest.failf "unrolled program invalid: %s" m);
  let machine = Slp_machine.Machine.intel_dunnington in
  let r1 = Slp_vm.Scalar_exec.run ~machine prog in
  let r2 = Slp_vm.Scalar_exec.run ~machine unrolled in
  Alcotest.(check bool)
    (Printf.sprintf "unroll x%d preserves semantics" factor)
    true
    (Slp_vm.Memory.same_contents r1.Slp_vm.Scalar_exec.memory
       r2.Slp_vm.Scalar_exec.memory)

let test_unroll_semantics_even () =
  unrolled_equivalence
    "f64 A[64];\nf64 B[64];\nf64 t;\nfor i = 0 to 64 {\n  t = A[i] * 2.0;\n  B[i] = t + 1.0;\n}"
    2

let test_unroll_semantics_remainder () =
  (* 13 iterations, factor 4: main loop of 12 plus remainder of 1. *)
  unrolled_equivalence
    "f64 A[16];\nf64 B[16];\nfor i = 0 to 13 {\n  B[i] = A[i] + 1.0;\n}" 4

let test_unroll_semantics_recurrence () =
  (* acc is not privatisable; the serial chain must survive unrolling. *)
  unrolled_equivalence
    "f64 A[32];\nf64 B[32];\nf64 acc;\nfor i = 0 to 32 {\n  acc = acc + A[i];\n  B[i] = acc;\n}"
    2

let test_unroll_semantics_carried () =
  (* Loop-carried array dependence (B written, read next iteration). *)
  unrolled_equivalence
    "f64 B[40];\nfor i = 1 to 33 {\n  B[i] = 0.5 * B[i-1] + 1.0;\n}" 4

let test_unroll_labels_unique () =
  let prog =
    parse "f64 A[16];\nfor i = 0 to 13 {\n  A[i] = 1.0;\n}"
  in
  let u = Unroll.program ~factor:4 prog in
  let labels = List.map (fun (b : Block.t) -> b.Block.label) (Program.blocks u) in
  Alcotest.(check int) "all labels distinct"
    (List.length labels)
    (List.length (List.sort_uniq String.compare labels))

let test_unroll_skips_unknown_trips () =
  (* Loops whose bounds depend on an outer index are left alone. *)
  let prog =
    parse "f64 M[8][8];\nfor r = 0 to 8 {\n  for c = 0 to r {\n    M[r][c] = 1.0;\n  }\n}"
  in
  let u = Unroll.program ~factor:2 prog in
  Alcotest.(check int) "statement count unchanged" (Program.stmt_count prog)
    (Program.stmt_count u)

(* -- simplify ------------------------------------------------------------ *)

let test_fold_expr () =
  let open Expr.Infix in
  let check name expected e =
    Alcotest.(check string) name expected (Expr.to_string (Simplify.fold_expr e))
  in
  check "const folding" "3" (cst 1.0 + cst 2.0);
  check "mul by one" "x" (sc "x" * cst 1.0);
  check "add zero" "x" (cst 0.0 + sc "x");
  check "div by one" "x" (sc "x" / cst 1.0);
  check "nested" "x" (sc "x" * (cst 3.0 - cst 2.0));
  check "sqrt of const" "3" (sqrt_ (cst 9.0))

let test_fold_preserves_semantics () =
  let src =
    "f64 A[16];\nf64 B[16];\nfor i = 0 to 16 {\n  B[i] = A[i] * (2.0 - 1.0) + 0.0;\n}"
  in
  let prog = parse src in
  let folded = Simplify.fold_program prog in
  let machine = Slp_machine.Machine.intel_dunnington in
  let r1 = Slp_vm.Scalar_exec.run ~machine prog in
  let r2 = Slp_vm.Scalar_exec.run ~machine folded in
  Alcotest.(check bool) "folding preserves semantics" true
    (Slp_vm.Memory.same_contents r1.Slp_vm.Scalar_exec.memory
       r2.Slp_vm.Scalar_exec.memory)

let test_dce () =
  let b =
    Block.of_rhs
      [
        (Operand.Scalar "dead", Expr.Infix.(cst 1.0 + cst 2.0));
        (Operand.Scalar "live", Expr.Infix.(cst 3.0 + cst 4.0));
        (Operand.Elem ("A", [ Affine.const 0 ]), Expr.Infix.(sc "live" * cst 2.0));
      ]
  in
  let cleaned = Simplify.dce_block ~live_out:(fun _ -> false) b in
  Alcotest.(check int) "dead definition removed" 2 (Block.size cleaned);
  let kept = Simplify.dce_block ~live_out:(fun v -> String.equal v "dead") b in
  Alcotest.(check int) "live-out definition kept" 3 (Block.size kept)

let test_dce_never_removes_stores () =
  let b =
    Block.of_rhs [ (Operand.Elem ("A", [ Affine.const 0 ]), Expr.Infix.(cst 1.0 + cst 1.0)) ]
  in
  Alcotest.(check int) "array store kept" 1
    (Block.size (Simplify.dce_block ~live_out:(fun _ -> false) b))

let () =
  Alcotest.run "transform"
    [
      ( "unroll",
        [
          Alcotest.test_case "privatisable detection" `Quick test_privatisable;
          Alcotest.test_case "renaming and substitution" `Quick test_unroll_block_renaming;
          Alcotest.test_case "semantics (even trip)" `Quick test_unroll_semantics_even;
          Alcotest.test_case "semantics (remainder)" `Quick test_unroll_semantics_remainder;
          Alcotest.test_case "semantics (recurrence)" `Quick test_unroll_semantics_recurrence;
          Alcotest.test_case "semantics (loop-carried)" `Quick test_unroll_semantics_carried;
          Alcotest.test_case "unique labels" `Quick test_unroll_labels_unique;
          Alcotest.test_case "skips unknown trip counts" `Quick test_unroll_skips_unknown_trips;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "constant folding" `Quick test_fold_expr;
          Alcotest.test_case "folding semantics" `Quick test_fold_preserves_semantics;
          Alcotest.test_case "dead code elimination" `Quick test_dce;
          Alcotest.test_case "stores survive dce" `Quick test_dce_never_removes_stores;
        ] );
    ]
