(* End-to-end pipeline tests: every scheme must produce vectorized code
   whose execution computes exactly what scalar execution computes, and
   the holistic schemes should not lose to the baseline on
   reuse-friendly kernels. *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Parser = Slp_frontend.Parser
module Counters = Slp_vm.Counters

let saxpy_src =
  {|
f64 X[256];
f64 Y[256];
f64 Z[256];
for i = 0 to 256 {
  Z[i] = 2.5 * X[i] + Y[i];
}
|}

let stencil_src =
  {|
f64 A[260];
f64 B[260];
for t = 0 to 4 {
  for i = 1 to 255 {
    B[i] = 0.25 * A[i-1] + 0.5 * A[i] + 0.25 * A[i+1];
  }
}
|}

(* A reuse-rich kernel shaped like the paper's Figure 15. *)
let reuse_src =
  {|
f64 A[1024];
f64 B[4096];
f64 q;
f64 r;
for i = 0 to 256 {
  q = B[4*i+1];
  r = B[4*i+3];
  A[2*i] = B[4*i] * q + r;
  A[2*i+1] = B[4*i+2] * r + q;
}
|}

let strided_src =
  {|
f64 A[4096];
f64 C[2048];
for t = 0 to 16 {
  for i = 0 to 512 {
    C[2*i] = A[4*i] * 1.5;
    C[2*i+1] = A[4*i+3] * 1.5;
  }
}
|}

(* Same access pattern but a single pass: replication cannot amortise,
   so the profitability gate must skip it. *)
let strided_once_src =
  {|
f64 A[4096];
f64 C[2048];
for i = 0 to 512 {
  C[2*i] = A[4*i] * 1.5;
  C[2*i+1] = A[4*i+3] * 1.5;
}
|}

let kernels =
  [ ("saxpy", saxpy_src); ("stencil", stencil_src); ("reuse", reuse_src);
    ("strided", strided_src) ]

let machines = [ Machine.intel_dunnington; Machine.amd_phenom_ii ]

let test_correctness () =
  List.iter
    (fun (name, src) ->
      let prog = Parser.parse ~name src in
      List.iter
        (fun machine ->
          List.iter
            (fun scheme ->
              let c = Pipeline.compile ~scheme ~machine prog in
              let r = Pipeline.execute c in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/%s semantics preserved" name
                   machine.Machine.name
                   (Pipeline.scheme_name scheme))
                true r.Pipeline.correct)
            Pipeline.all_schemes)
        machines)
    kernels

let test_vectorization_happens () =
  let prog = Parser.parse ~name:"saxpy" saxpy_src in
  let c = Pipeline.compile ~scheme:Pipeline.Global ~machine:Machine.intel_dunnington prog in
  let r = Pipeline.execute c in
  Alcotest.(check bool)
    "global scheme emits vector operations" true
    (r.Pipeline.counters.Counters.vector_ops > 0)

let test_speedup_on_saxpy () =
  let prog = Parser.parse ~name:"saxpy" saxpy_src in
  List.iter
    (fun scheme ->
      let c = Pipeline.compile ~scheme ~machine:Machine.intel_dunnington prog in
      let s = Pipeline.speedup_over_scalar c in
      Alcotest.(check bool)
        (Printf.sprintf "%s speeds up contiguous saxpy (got %.3f)"
           (Pipeline.scheme_name scheme) s)
        true (s > 1.0))
    [ Pipeline.Native; Pipeline.Slp; Pipeline.Global; Pipeline.Global_layout ]

let test_global_not_worse_than_slp () =
  List.iter
    (fun (name, src) ->
      let prog = Parser.parse ~name src in
      let machine = Machine.intel_dunnington in
      let cycles scheme =
        let c = Pipeline.compile ~scheme ~machine prog in
        let r = Pipeline.execute ~check:false c in
        Counters.total_cycles r.Pipeline.counters
      in
      let slp = cycles Pipeline.Slp and global = cycles Pipeline.Global in
      Alcotest.(check bool)
        (Printf.sprintf "%s: Global (%.0f) <= SLP (%.0f) * 1.02" name global slp)
        true
        (global <= slp *. 1.02))
    kernels

let test_layout_gate_skips_single_pass () =
  let prog = Parser.parse ~name:"strided_once" strided_once_src in
  let c =
    Pipeline.compile ~scheme:Pipeline.Global_layout ~machine:Machine.intel_dunnington
      prog
  in
  Alcotest.(check int) "no replica for single-pass kernel" 0 c.Pipeline.replica_count

let test_layout_replicates_repeated () =
  let prog = Parser.parse ~name:"strided" strided_src in
  let c =
    Pipeline.compile ~scheme:Pipeline.Global_layout ~machine:Machine.intel_dunnington
      prog
  in
  Alcotest.(check bool) "replicas created for repeated kernel" true
    (c.Pipeline.replica_count > 0)

let test_layout_helps_strided () =
  let prog = Parser.parse ~name:"strided" strided_src in
  let machine = Machine.intel_dunnington in
  let cycles scheme =
    let c = Pipeline.compile ~scheme ~machine prog in
    let r = Pipeline.execute ~check:false c in
    Counters.total_cycles r.Pipeline.counters
  in
  let global = cycles Pipeline.Global and layout = cycles Pipeline.Global_layout in
  Alcotest.(check bool)
    (Printf.sprintf "layout (%.0f) not worse than global (%.0f) on strided kernel"
       layout global)
    true
    (layout < global)

let () =
  Alcotest.run "pipeline"
    [
      ( "end_to_end",
        [
          Alcotest.test_case "semantic correctness (all schemes x machines)" `Quick
            test_correctness;
          Alcotest.test_case "vectorization happens" `Quick test_vectorization_happens;
          Alcotest.test_case "saxpy speedups" `Quick test_speedup_on_saxpy;
          Alcotest.test_case "global never loses to slp" `Quick
            test_global_not_worse_than_slp;
          Alcotest.test_case "layout gate skips single pass" `Quick
            test_layout_gate_skips_single_pass;
          Alcotest.test_case "layout replicates repeated kernel" `Quick
            test_layout_replicates_repeated;
          Alcotest.test_case "layout helps strided" `Quick test_layout_helps_strided;
        ] );
    ]
