(* Tests for the baseline vectorizers: Larsen-Amarasinghe SLP (seeds,
   chain extension, combination) and the conservative Native scheme —
   including the paper's central claim that on the Figure 15 block the
   baseline captures only one superword reuse where the holistic
   grouping captures three. *)

open Slp_ir
module Larsen = Slp_baseline.Larsen
module Native = Slp_baseline.Native
module Config = Slp_core.Config
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule

let config = Config.make ~datapath_bits:128 ()

let fig15_env () =
  let env = Env.create () in
  List.iter
    (fun v -> Env.declare_scalar env v Types.F64)
    [ "a"; "b"; "c"; "d"; "g"; "h"; "q"; "r" ];
  Env.declare_array env "A" Types.F64 [ 1024 ];
  Env.declare_array env "B" Types.F64 [ 4096 ];
  env

let fig15_block () =
  let open Expr.Infix in
  let i4 = 4 @* i "i" and i2 = 2 @* i "i" in
  Block.of_rhs ~label:"fig15"
    [
      (Operand.Scalar "a", arr "A" [ i "i" ]);
      (Operand.Scalar "c", sc "a" * arr "B" [ i4 ]);
      (Operand.Scalar "g", sc "q" * arr "B" [ i4 @+ -2 ]);
      (Operand.Scalar "b", arr "A" [ i "i" @+ 1 ]);
      (Operand.Scalar "d", sc "b" * arr "B" [ i4 @+ 4 ]);
      (Operand.Scalar "h", sc "r" * arr "B" [ i4 @+ 2 ]);
      (Operand.Elem ("A", [ i2 ]), sc "d" + (sc "a" * sc "c"));
      (Operand.Elem ("A", [ i2 @+ 2 ]), sc "g" + (sc "r" * sc "h"));
    ]

let sorted_groups (r : Grouping.result) =
  List.sort compare (List.map (List.sort compare) r.Grouping.groups)

let test_larsen_fig15_grouping () =
  let env = fig15_env () in
  let block = fig15_block () in
  let r = Larsen.group ~env ~config block in
  (* The only adjacent-memory seed is <S1,S4> (A[i], A[i+1]; the
     stores A[2i], A[2i+2] are NOT adjacent); the def-use chain from
     (a,b) then yields <S2,S5> and stops, since c and d are both
     consumed by the same statement.  The paper's Figure 15(b) lists
     <S3,S6> and <S7,S8> in SLP's final set as well, but they are not
     derivable from the seed by the chain-following mechanism the
     paper itself describes; the decisive claim — the baseline pairs
     the multiplies as {2,5} (one reuse) where the holistic grouping
     picks {2,6}/{3,5} (three reuses) — is checked below. *)
  Alcotest.(check (list (list int)))
    "seed plus def-use extension"
    [ [ 1; 4 ]; [ 2; 5 ] ]
    (sorted_groups r)

let test_larsen_vs_global_reuses () =
  let env = fig15_env () in
  let block = fig15_block () in
  let slp_grouping = Larsen.group ~env ~config block in
  let slp_sched = Larsen.schedule ~env ~config block slp_grouping in
  let global_grouping = Grouping.run ~env ~config block in
  let global_sched = Schedule.run ~env ~config block global_grouping in
  let reuses (s : Schedule.t) =
    s.Schedule.stats.Schedule.direct_reuses + s.Schedule.stats.Schedule.permuted_reuses
  in
  Alcotest.(check int) "SLP captures one reuse (Figure 15(b))" 1 (reuses slp_sched);
  Alcotest.(check int) "Global captures three (Figure 15(c))" 3 (reuses global_sched);
  Alcotest.(check bool) "SLP schedule valid" true (Schedule.is_valid block slp_sched)

let test_larsen_seeds_require_adjacency () =
  (* No adjacent memory accesses anywhere: the baseline finds nothing,
     even though the statements are isomorphic and independent. *)
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  Env.declare_array env "B" Types.F64 [ 64 ];
  let e b k = Operand.Elem (b, [ Affine.make [ ("i", 4) ] k ]) in
  let block =
    Block.make
      [
        Stmt.make ~id:1 ~lhs:(e "A" 0) ~rhs:Expr.Infix.(arr "B" [ Affine.make [ ("i", 4) ] 0 ] * cst 2.0);
        Stmt.make ~id:2 ~lhs:(e "A" 2) ~rhs:Expr.Infix.(arr "B" [ Affine.make [ ("i", 4) ] 2 ] * cst 2.0);
      ]
  in
  let r = Larsen.group ~env ~config block in
  Alcotest.(check (list (list int))) "no seeds, no groups" [] r.Grouping.groups

let test_larsen_combination_to_four_wide () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F32 [ 64 ];
  Env.declare_array env "B" Types.F32 [ 64 ];
  let e b k = Operand.Elem (b, [ Affine.make [ ("i", 1) ] k ]) in
  let block =
    Block.make
      (List.init 4 (fun k ->
           Stmt.make ~id:(k + 1) ~lhs:(e "A" k) ~rhs:(Expr.Leaf (e "B" k))))
  in
  let r = Larsen.group ~env ~config block in
  Alcotest.(check (list (list int)))
    "pairs combined into a quad"
    [ [ 1; 2; 3; 4 ] ]
    (List.map (List.sort compare) r.Grouping.groups)

let test_native_requires_full_contiguity () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  Env.declare_array env "B" Types.F64 [ 64 ];
  let e b k = Operand.Elem (b, [ Affine.make [ ("i", 1) ] k ]) in
  let contiguous =
    Block.make
      (List.init 2 (fun k ->
           let ix = Affine.make [ ("i", 1) ] k in
           Stmt.make ~id:(k + 1) ~lhs:(e "A" k) ~rhs:Expr.Infix.(arr "B" [ ix ] + cst 1.0)))
  in
  let strided =
    Block.make
      (List.init 2 (fun k ->
           let ix = Affine.make [ ("i", 2) ] (2 * k) in
           Stmt.make ~id:(k + 1) ~lhs:(e "A" k)
             ~rhs:Expr.Infix.(arr "B" [ ix ] + cst 1.0)))
  in
  let r1 = Native.group ~env ~config contiguous in
  let r2 = Native.group ~env ~config strided in
  Alcotest.(check int) "contiguous vectorized" 1 (List.length r1.Grouping.groups);
  Alcotest.(check int) "strided left scalar" 0 (List.length r2.Grouping.groups)

let test_native_broadcast_allowed () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  Env.declare_scalar env "s" Types.F64;
  let e k = Operand.Elem ("A", [ Affine.make [ ("i", 1) ] k ]) in
  let block =
    Block.make
      (List.init 2 (fun k ->
           Stmt.make ~id:(k + 1) ~lhs:(e (k + 8)) ~rhs:Expr.Infix.(sc "s" * (Expr.Leaf (e k)))))
  in
  let r = Native.group ~env ~config block in
  Alcotest.(check int) "scalar broadcast accepted" 1 (List.length r.Grouping.groups)

let () =
  Alcotest.run "baseline"
    [
      ( "larsen",
        [
          Alcotest.test_case "figure 15(b) grouping" `Quick test_larsen_fig15_grouping;
          Alcotest.test_case "one reuse vs three" `Quick test_larsen_vs_global_reuses;
          Alcotest.test_case "seeds require adjacency" `Quick test_larsen_seeds_require_adjacency;
          Alcotest.test_case "combination to four-wide" `Quick test_larsen_combination_to_four_wide;
        ] );
      ( "native",
        [
          Alcotest.test_case "full contiguity required" `Quick test_native_requires_full_contiguity;
          Alcotest.test_case "broadcast allowed" `Quick test_native_broadcast_allowed;
        ] );
    ]
