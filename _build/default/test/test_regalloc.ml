(* Tests for the vector register allocator: correct rewriting under
   pressure, spill/reload insertion, Belady victim choice, and
   end-to-end semantics on machines with tiny register files. *)

open Slp_ir
module Visa = Slp_vm.Visa
module Regalloc = Slp_codegen.Regalloc
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine

let rec max_phys_items items =
  List.fold_left
    (fun acc item ->
      match item with
      | Visa.Loop l -> max acc (max_phys_items l.Visa.body)
      | Visa.Block instrs ->
          List.fold_left
            (fun acc i ->
              let regs =
                (match Regalloc.instr_def i with Some d -> [ d ] | None -> [])
                @ Regalloc.instr_uses i
              in
              List.fold_left max acc regs)
            acc instrs)
    (-1) items

let elem b k = Operand.Elem (b, [ Affine.const k ])

(* A block that keeps [n] vectors live at once: load them all, then
   consume them in definition order. *)
let high_pressure_block n =
  List.init n (fun k -> Visa.Vload { dst = k; elems = [ elem "A" (2 * k); elem "A" ((2 * k) + 1) ] })
  @ List.init (n - 1) (fun k ->
        Visa.Vbin { dst = n + k; op = Types.Add; a = k; b = k + 1 })
  @ [ Visa.Vstore { src = (2 * n) - 2; elems = [ elem "B" 0; elem "B" 1 ] } ]

let test_no_spills_under_capacity () =
  let code, st = Regalloc.allocate_block ~registers:16 (high_pressure_block 4) in
  Alcotest.(check int) "no spills" 0 st.Regalloc.spills;
  Alcotest.(check int) "no reloads" 0 st.Regalloc.reloads;
  Alcotest.(check int) "instruction count unchanged" 8 (List.length code);
  Alcotest.(check bool) "physical regs within file" true
    (max_phys_items [ Visa.Block code ] < 16)

let test_spills_under_pressure () =
  let code, st = Regalloc.allocate_block ~registers:4 (high_pressure_block 8) in
  Alcotest.(check bool) "spills inserted" true (st.Regalloc.spills > 0);
  Alcotest.(check bool) "reloads inserted" true (st.Regalloc.reloads > 0);
  Alcotest.(check bool) "physical regs within tiny file" true
    (max_phys_items [ Visa.Block code ] < 4);
  (* Every reload slot was spilled first. *)
  let spilled = Hashtbl.create 8 in
  List.iter
    (function
      | Visa.Vspill { slot; _ } -> Hashtbl.replace spilled slot ()
      | Visa.Vreload { slot; _ } ->
          if not (Hashtbl.mem spilled slot) then
            Alcotest.failf "reload of slot %d before any spill" slot
      | _ -> ())
    code

let test_rejects_tiny_file () =
  Alcotest.check_raises "needs two registers"
    (Invalid_argument "Regalloc.allocate_block: need at least 2 registers") (fun () ->
      ignore (Regalloc.allocate_block ~registers:1 []))

(* End-to-end: a machine with only 2 vector registers must still
   compute correct results on every kernel (spilling all over). *)
let test_semantics_with_two_registers () =
  let machine = { Machine.intel_dunnington with Machine.vector_registers = 2 } in
  List.iter
    (fun name ->
      let b = Slp_benchmarks.Suite.find name in
      let prog = Slp_benchmarks.Suite.program b in
      let c =
        Pipeline.compile ~unroll:b.Slp_benchmarks.Suite.unroll ~scheme:Pipeline.Global
          ~machine prog
      in
      let r = Pipeline.execute c in
      Alcotest.(check bool) (name ^ " correct with 2 vregs") true r.Pipeline.correct)
    [ "milc"; "povray"; "namd"; "lbm" ]

let test_spill_roundtrip_values () =
  (* Spill/reload must restore exact lane values. *)
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 8 ];
  Env.declare_array env "B" Types.F64 [ 8 ];
  let prog =
    {
      Visa.name = "spill";
      env;
      setup = [];
      body =
        [
          Visa.Block
            [
              Visa.Vload { dst = 0; elems = [ elem "A" 0; elem "A" 1 ] };
              Visa.Vspill { src = 0; slot = 3 };
              Visa.Vbroadcast { dst = 0; src = Visa.Imm 9.0; lanes = 2 };
              Visa.Vreload { dst = 1; slot = 3 };
              Visa.Vstore { src = 1; elems = [ elem "B" 0; elem "B" 1 ] };
            ];
        ];
    }
  in
  let memory = Slp_vm.Memory.create ~env () in
  Slp_vm.Memory.store memory "A" 0 1.25;
  Slp_vm.Memory.store memory "A" 1 2.5;
  let r = Slp_vm.Vector_exec.run ~memory ~machine:Machine.intel_dunnington prog in
  Alcotest.(check (float 0.0)) "lane 0 restored" 1.25
    (Slp_vm.Memory.load r.Slp_vm.Vector_exec.memory "B" 0);
  Alcotest.(check (float 0.0)) "lane 1 restored" 2.5
    (Slp_vm.Memory.load r.Slp_vm.Vector_exec.memory "B" 1);
  Alcotest.(check int) "spill counted as vector store" 1
    (r.Slp_vm.Vector_exec.counters.Slp_vm.Counters.vector_stores - 1)

let () =
  Alcotest.run "regalloc"
    [
      ( "allocation",
        [
          Alcotest.test_case "no spills under capacity" `Quick test_no_spills_under_capacity;
          Alcotest.test_case "spills under pressure" `Quick test_spills_under_pressure;
          Alcotest.test_case "tiny file rejected" `Quick test_rejects_tiny_file;
          Alcotest.test_case "semantics with 2 registers" `Quick
            test_semantics_with_two_registers;
          Alcotest.test_case "spill roundtrip" `Quick test_spill_roundtrip_values;
        ] );
    ]
