(* IR tests: affine expressions, operands, expression trees, statements,
   blocks, environments and programs. *)

open Slp_ir

let qtest = QCheck_alcotest.to_alcotest

(* -- affine ------------------------------------------------------------ *)

let affine = Alcotest.testable Affine.pp Affine.equal

let test_affine_canonical () =
  Alcotest.check affine "duplicates summed"
    (Affine.make [ ("i", 3) ] 2)
    (Affine.make [ ("i", 1); ("i", 2) ] 2);
  Alcotest.check affine "zero coeff dropped" (Affine.const 5)
    (Affine.make [ ("i", 2); ("i", -2) ] 5);
  Alcotest.(check (list (pair string int)))
    "terms sorted by variable"
    [ ("a", 1); ("b", 2) ]
    (Affine.terms (Affine.make [ ("b", 2); ("a", 1) ] 0))

let test_affine_arith () =
  let a = Affine.make [ ("i", 2) ] 1 and b = Affine.make [ ("i", 1); ("j", 1) ] (-1) in
  Alcotest.check affine "add" (Affine.make [ ("i", 3); ("j", 1) ] 0) (Affine.add a b);
  Alcotest.check affine "sub" (Affine.make [ ("i", 1); ("j", -1) ] 2) (Affine.sub a b);
  Alcotest.check affine "scale" (Affine.make [ ("i", 6) ] 3) (Affine.scale 3 a);
  Alcotest.check affine "neg twice" a (Affine.neg (Affine.neg a))

let test_affine_subst () =
  (* i := 2j + 1 inside 4i - 2  ->  8j + 2. *)
  let e = Affine.make [ ("i", 4) ] (-2) in
  let by = Affine.make [ ("j", 2) ] 1 in
  Alcotest.check affine "subst" (Affine.make [ ("j", 8) ] 2) (Affine.subst e "i" by)

let test_affine_diff_const () =
  let a = Affine.make [ ("i", 4) ] 3 and b = Affine.make [ ("i", 4) ] 1 in
  Alcotest.(check (option int)) "const diff" (Some 2) (Affine.diff_const a b);
  let c = Affine.make [ ("j", 4) ] 3 in
  Alcotest.(check (option int)) "different vars" None (Affine.diff_const a c)

let arb_affine =
  QCheck.make
    ~print:(fun a -> Affine.to_string a)
    QCheck.Gen.(
      map2
        (fun terms c ->
          Affine.make (List.map (fun (v, k) -> ((if v then "i" else "j"), k)) terms) c)
        (list_size (int_bound 3) (pair bool (int_range (-9) 9)))
        (int_range (-20) 20))

let prop_affine_eval_hom =
  QCheck.Test.make ~name:"eval is additive" ~count:200 (QCheck.pair arb_affine arb_affine)
    (fun (a, b) ->
      let env v = if String.equal v "i" then 3 else 5 in
      Affine.eval (Affine.add a b) env = Affine.eval a env + Affine.eval b env)

let prop_affine_subst_eval =
  QCheck.Test.make ~name:"subst agrees with eval" ~count:200
    (QCheck.pair arb_affine arb_affine) (fun (e, by) ->
      let env v = if String.equal v "i" then Affine.eval by (fun _ -> 7) else 7 in
      Affine.eval (Affine.subst e "i" by) (fun _ -> 7) = Affine.eval e env)

(* -- operand ------------------------------------------------------------- *)

let elem base offsets = Operand.Elem (base, [ Affine.make [ ("i", 1) ] offsets ])

let test_operand_alias () =
  Alcotest.(check bool) "same scalar aliases" true
    (Operand.may_alias (Operand.Scalar "x") (Operand.Scalar "x"));
  Alcotest.(check bool) "different scalars do not" false
    (Operand.may_alias (Operand.Scalar "x") (Operand.Scalar "y"));
  Alcotest.(check bool) "same element aliases" true (Operand.may_alias (elem "A" 0) (elem "A" 0));
  Alcotest.(check bool) "constant offset apart: no alias" false
    (Operand.may_alias (elem "A" 0) (elem "A" 1));
  Alcotest.(check bool) "different arrays: no alias" false
    (Operand.may_alias (elem "A" 0) (elem "B" 0));
  (* A[i] vs A[j]: difference is not constant -> conservative alias. *)
  let aj = Operand.Elem ("A", [ Affine.var "j" ]) in
  Alcotest.(check bool) "symbolic difference aliases" true
    (Operand.may_alias (elem "A" 0) aj);
  Alcotest.(check bool) "constants never alias" false
    (Operand.may_alias (Operand.Const 1.0) (Operand.Const 1.0))

let test_operand_adjacent () =
  let row_size = function "A" -> [ 100 ] | "M" -> [ 4; 5 ] | _ -> assert false in
  Alcotest.(check bool) "A[i] then A[i+1]" true
    (Operand.adjacent_in_memory ~row_size (elem "A" 0) (elem "A" 1));
  Alcotest.(check bool) "order matters" false
    (Operand.adjacent_in_memory ~row_size (elem "A" 1) (elem "A" 0));
  Alcotest.(check bool) "gap of 2 is not adjacent" false
    (Operand.adjacent_in_memory ~row_size (elem "A" 0) (elem "A" 2));
  (* Row-major 2-D: M[r][4] and M[r+1][0] are adjacent. *)
  let m r c = Operand.Elem ("M", [ Affine.const r; Affine.const c ]) in
  Alcotest.(check bool) "row boundary adjacency" true
    (Operand.adjacent_in_memory ~row_size (m 1 4) (m 2 0));
  Alcotest.(check bool) "same row adjacency" true
    (Operand.adjacent_in_memory ~row_size (m 0 2) (m 0 3))

(* -- expr ----------------------------------------------------------------- *)

let sample_expr =
  Expr.Infix.(sc "a" * arr "B" [ Affine.var "i" ] + (cst 2.0 - sc "c"))

let test_expr_leaves_order () =
  Alcotest.(check (list string))
    "left-to-right leaves"
    [ "a"; "B[i]"; "2"; "c" ]
    (List.map Operand.to_string (Expr.leaves sample_expr))

let test_expr_replace_leaves_order () =
  (* Regression: replace_leaves must distribute the list left to right
     even though constructor arguments evaluate right to left. *)
  let new_leaves =
    [ Operand.Scalar "p"; Operand.Scalar "q"; Operand.Scalar "r"; Operand.Scalar "s" ]
  in
  let replaced = Expr.replace_leaves sample_expr new_leaves in
  Alcotest.(check (list string))
    "replacement preserved order"
    [ "p"; "q"; "r"; "s" ]
    (List.map Operand.to_string (Expr.leaves replaced));
  Alcotest.(check bool) "shape unchanged" true (Expr.same_shape sample_expr replaced)

let test_expr_replace_leaves_count () =
  Alcotest.check_raises "too few leaves"
    (Invalid_argument "Expr.replace_leaves: too few leaves") (fun () ->
      ignore (Expr.replace_leaves sample_expr [ Operand.Scalar "p" ]))

let test_expr_shape () =
  let a = Expr.Infix.(sc "x" + sc "y") in
  let b = Expr.Infix.(arr "A" [ Affine.const 0 ] + cst 1.0) in
  let c = Expr.Infix.(sc "x" - sc "y") in
  Alcotest.(check bool) "same ops, different leaves" true (Expr.same_shape a b);
  Alcotest.(check bool) "different ops" false (Expr.same_shape a c)

let test_expr_operators_order () =
  let ops = Expr.operators sample_expr in
  Alcotest.(check int) "three operators" 3 (List.length ops);
  match ops with
  | [ Either.Left Types.Mul; Either.Left Types.Sub; Either.Left Types.Add ] -> ()
  | _ -> Alcotest.fail "operators not in left-to-right bottom-up order"

let test_expr_eval () =
  let env = function
    | Operand.Scalar "a" -> 3.0
    | Operand.Scalar "c" -> 1.0
    | Operand.Elem ("B", _) -> 4.0
    | Operand.Const f -> f
    | _ -> Alcotest.fail "unexpected operand"
  in
  Alcotest.(check (float 1e-9)) "3*4 + (2-1)" 13.0 (Expr.eval sample_expr env)

(* -- stmt ------------------------------------------------------------------ *)

let env_xy () =
  let env = Env.create () in
  List.iter (fun v -> Env.declare_scalar env v Types.F64) [ "x"; "y"; "z"; "w" ];
  Env.declare_scalar env "f" Types.F32;
  Env.declare_array env "A" Types.F64 [ 64 ];
  env

let mk id lhs rhs = Stmt.make ~id ~lhs ~rhs

let test_stmt_isomorphic () =
  let env = env_xy () in
  let s1 = mk 1 (Operand.Scalar "x") Expr.Infix.(sc "y" + cst 1.0) in
  let s2 = mk 2 (Operand.Scalar "z") Expr.Infix.(sc "w" + cst 2.0) in
  let s3 = mk 3 (Operand.Scalar "x") Expr.Infix.(sc "y" * cst 1.0) in
  let s4 = mk 4 (Operand.Elem ("A", [ Affine.const 0 ])) Expr.Infix.(sc "y" + cst 1.0) in
  let s5 = mk 5 (Operand.Scalar "f") Expr.Infix.(sc "y" + cst 1.0) in
  Alcotest.(check bool) "same shape isomorphic" true (Stmt.isomorphic ~env s1 s2);
  Alcotest.(check bool) "different op" false (Stmt.isomorphic ~env s1 s3);
  Alcotest.(check bool) "different store kind" false (Stmt.isomorphic ~env s1 s4);
  Alcotest.(check bool) "different element type" false (Stmt.isomorphic ~env s1 s5)

let test_stmt_rename () =
  let s = mk 1 (Operand.Scalar "x") Expr.Infix.(sc "y" + sc "x") in
  let r = Stmt.rename_scalar s ~old_name:"x" ~new_name:"x9" in
  Alcotest.(check string) "lhs and rhs renamed" "S1: x9 = (y + x9)" (Stmt.to_string r);
  Alcotest.(check int) "expr depth" 1 (Expr.depth r.Stmt.rhs)

let test_stmt_depends () =
  let a0 = Operand.Elem ("A", [ Affine.const 0 ]) in
  let a1 = Operand.Elem ("A", [ Affine.const 1 ]) in
  let s1 = mk 1 (Operand.Scalar "x") Expr.Infix.(cst 1.0 + cst 2.0) in
  let s2 = mk 2 (Operand.Scalar "y") Expr.Infix.(sc "x" + cst 1.0) in
  let s3 = mk 3 a0 Expr.Infix.(sc "y" * cst 2.0) in
  let s4 = mk 4 (Operand.Scalar "z") (Expr.Leaf a0) in
  let s5 = mk 5 a1 (Expr.Leaf (Operand.Const 0.0)) in
  Alcotest.(check bool) "RAW" true (Stmt.depends s1 s2);
  Alcotest.(check bool) "RAW through memory" true (Stmt.depends s3 s4);
  Alcotest.(check bool) "WAW same scalar" true
    (Stmt.depends s1 (mk 6 (Operand.Scalar "x") (Expr.Leaf (Operand.Const 0.0))));
  Alcotest.(check bool) "WAR" true (Stmt.depends s4 (mk 7 a0 (Expr.Leaf (Operand.Const 1.0))));
  Alcotest.(check bool) "disjoint elements independent" false (Stmt.depends s3 s5)

(* -- block ------------------------------------------------------------------ *)

let test_block_deps () =
  let b =
    Block.of_rhs
      [
        (Operand.Scalar "x", Expr.Infix.(cst 1.0 + cst 1.0));
        (Operand.Scalar "y", Expr.Infix.(sc "x" * cst 2.0));
        (Operand.Scalar "z", Expr.Infix.(cst 3.0 * cst 4.0));
      ]
  in
  Alcotest.(check (list (pair int int))) "dep pairs" [ (1, 2) ] (Block.dep_pairs b);
  Alcotest.(check bool) "1 and 3 independent" true (Block.independent b 1 3);
  Alcotest.(check bool) "1 and 2 dependent" false (Block.independent b 1 2);
  let g = Block.dep_graph b in
  Alcotest.(check bool) "graph edge" true (Slp_util.Graph.Directed.mem_edge g 1 2)

let test_block_duplicate_ids () =
  let s = mk 1 (Operand.Scalar "x") (Expr.Leaf (Operand.Const 0.0)) in
  Alcotest.check_raises "duplicate ids rejected"
    (Invalid_argument "Block.make: duplicate statement id 1") (fun () ->
      ignore (Block.make [ s; s ]))

(* -- env ---------------------------------------------------------------------- *)

let test_env_declarations () =
  let env = Env.create () in
  Env.declare_scalar env "x" Types.F64;
  Env.declare_array env "A" Types.F32 [ 4; 8 ];
  Alcotest.(check bool) "scalar type" true (Env.scalar_ty env "x" = Some Types.F64);
  Alcotest.(check (list int)) "dims" [ 4; 8 ] (Env.row_size env "A");
  Alcotest.check_raises "scalar/array clash"
    (Invalid_argument "Env.declare_array: x is a scalar") (fun () ->
      Env.declare_array env "x" Types.F64 [ 2 ]);
  Alcotest.check_raises "conflicting redeclare"
    (Invalid_argument "Env.declare_scalar: x redeclared") (fun () ->
      Env.declare_scalar env "x" Types.F32);
  (* Consistent redeclaration is fine. *)
  Env.declare_scalar env "x" Types.F64;
  Alcotest.(check bool) "const unifies with any type" true
    (Env.compatible_ty env (Operand.Const 1.0) (Operand.Scalar "x"))

(* -- program ------------------------------------------------------------------- *)

let valid_program () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 16 ];
  Program.make ~name:"p" ~env
    [
      Program.loop "i" ~lo:(Affine.const 0) ~hi:(Affine.const 16)
        [
          Program.Stmts
            (Block.of_rhs
               [ (Operand.Elem ("A", [ Affine.var "i" ]), Expr.Infix.(cst 1.0 + cst 2.0)) ]);
        ];
    ]

let test_program_validate_ok () =
  match Program.validate (valid_program ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "expected valid: %s" msg

let test_program_validate_errors () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 16 ];
  let bad_rank =
    Program.make ~name:"bad" ~env
      [
        Program.Stmts
          (Block.of_rhs
             [
               ( Operand.Elem ("A", [ Affine.const 0; Affine.const 0 ]),
                 Expr.Infix.(cst 1.0 + cst 1.0) );
             ]);
      ]
  in
  (match Program.validate bad_rank with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "rank mismatch accepted");
  let unbound_subscript =
    Program.make ~name:"bad2" ~env
      [
        Program.Stmts
          (Block.of_rhs
             [ (Operand.Elem ("A", [ Affine.var "k" ]), Expr.Infix.(cst 1.0 + cst 1.0)) ]);
      ]
  in
  (match Program.validate unbound_subscript with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unbound subscript accepted");
  let mixed_types =
    let env = Env.create () in
    Env.declare_scalar env "x" Types.F64;
    Env.declare_scalar env "y" Types.F32;
    Program.make ~name:"bad3" ~env
      [ Program.Stmts (Block.of_rhs [ (Operand.Scalar "x", Expr.Infix.(sc "y" + cst 1.0)) ]) ]
  in
  match Program.validate mixed_types with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mixed types accepted"

let test_program_trip_count () =
  let l = { Program.index = "i"; lo = Affine.const 2; hi = Affine.const 11; step = 3; body = [] } in
  Alcotest.(check (option int)) "ceil((11-2)/3)" (Some 3) (Program.trip_count l);
  let l2 = { l with Program.hi = Affine.var "n" } in
  Alcotest.(check (option int)) "symbolic bound" None (Program.trip_count l2);
  let l3 = { l with Program.hi = Affine.const 0 } in
  Alcotest.(check (option int)) "empty loop" (Some 0) (Program.trip_count l3)

let () =
  Alcotest.run "ir"
    [
      ( "affine",
        [
          Alcotest.test_case "canonical form" `Quick test_affine_canonical;
          Alcotest.test_case "arithmetic" `Quick test_affine_arith;
          Alcotest.test_case "substitution" `Quick test_affine_subst;
          Alcotest.test_case "diff const" `Quick test_affine_diff_const;
          qtest prop_affine_eval_hom;
          qtest prop_affine_subst_eval;
        ] );
      ( "operand",
        [
          Alcotest.test_case "aliasing" `Quick test_operand_alias;
          Alcotest.test_case "adjacency" `Quick test_operand_adjacent;
        ] );
      ( "expr",
        [
          Alcotest.test_case "leaves order" `Quick test_expr_leaves_order;
          Alcotest.test_case "replace_leaves order" `Quick test_expr_replace_leaves_order;
          Alcotest.test_case "replace_leaves count" `Quick test_expr_replace_leaves_count;
          Alcotest.test_case "shape equality" `Quick test_expr_shape;
          Alcotest.test_case "operators order" `Quick test_expr_operators_order;
          Alcotest.test_case "evaluation" `Quick test_expr_eval;
        ] );
      ( "stmt",
        [
          Alcotest.test_case "isomorphism" `Quick test_stmt_isomorphic;
          Alcotest.test_case "renaming" `Quick test_stmt_rename;
          Alcotest.test_case "dependences" `Quick test_stmt_depends;
        ] );
      ( "block",
        [
          Alcotest.test_case "dependences" `Quick test_block_deps;
          Alcotest.test_case "duplicate ids" `Quick test_block_duplicate_ids;
        ] );
      ("env", [ Alcotest.test_case "declarations" `Quick test_env_declarations ]);
      ( "program",
        [
          Alcotest.test_case "validate ok" `Quick test_program_validate_ok;
          Alcotest.test_case "validate errors" `Quick test_program_validate_errors;
          Alcotest.test_case "trip count" `Quick test_program_trip_count;
        ] );
    ]
