test/test_codegen.ml: Alcotest List Slp_frontend Slp_machine Slp_pipeline Slp_vm
