test/test_slp_core.mli:
