test/test_analysis.ml: Affine Alcotest Block Env Expr List Operand Option Program Slp_analysis Slp_ir Stmt Types
