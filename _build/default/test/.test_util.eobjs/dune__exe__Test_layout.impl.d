test/test_layout.ml: Affine Alcotest Array Env List Operand Printf Program Slp_frontend Slp_ir Slp_layout Slp_machine Slp_pipeline Slp_util Slp_vm String Types
