test/test_machine.ml: Affine Alcotest Block Env Expr List Operand QCheck QCheck_alcotest Slp_baseline Slp_core Slp_ir Slp_machine Stmt Types
