test/test_util.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Slp_util String
