test/test_transform.ml: Affine Alcotest Block Expr List Operand Printf Program Slp_frontend Slp_ir Slp_machine Slp_transform Slp_vm Stmt String
