test/test_slp_core.ml: Affine Alcotest Block Env Expr Hashtbl List Operand Slp_core Slp_ir Stmt String Types
