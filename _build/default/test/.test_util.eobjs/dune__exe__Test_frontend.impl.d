test/test_frontend.ml: Affine Alcotest Block Expr List Operand Program Slp_frontend Slp_ir Slp_machine Slp_vm Stmt Types
