test/test_harness.ml: Alcotest List Printf Slp_benchmarks Slp_harness Slp_machine Slp_pipeline String
