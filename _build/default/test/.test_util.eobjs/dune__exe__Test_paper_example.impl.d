test/test_paper_example.ml: Alcotest Block Env Expr List Operand Slp_core Slp_ir Types
