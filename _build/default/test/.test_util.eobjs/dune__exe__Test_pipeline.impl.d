test/test_pipeline.ml: Alcotest List Printf Slp_frontend Slp_machine Slp_pipeline Slp_vm
