test/test_benchmarks.ml: Alcotest List Program Slp_benchmarks Slp_ir Slp_machine Slp_vm
