test/test_ir.ml: Affine Alcotest Block Either Env Expr List Operand Program QCheck QCheck_alcotest Slp_ir Slp_util Stmt String Types
