test/test_fuzz.ml: Affine Alcotest Block Env Expr Float List Operand Program QCheck QCheck_alcotest Slp_frontend Slp_ir Slp_machine Slp_pipeline Slp_vm Stmt String Types
