test/test_regalloc.ml: Affine Alcotest Env Hashtbl List Operand Slp_benchmarks Slp_codegen Slp_ir Slp_machine Slp_pipeline Slp_vm Types
