test/test_baseline.ml: Affine Alcotest Block Env Expr List Operand Slp_baseline Slp_core Slp_ir Stmt Types
