test/test_vm.ml: Affine Alcotest Array Block Env Expr List Operand Printf Program Slp_frontend Slp_ir Slp_machine Slp_vm Types
