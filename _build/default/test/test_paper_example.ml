(* Golden tests for the paper's worked example (§6, Figure 15).

   The 8-statement basic block of Figure 15(a) is the paper's own
   demonstration that the holistic grouping beats the original SLP
   algorithm: Global groups {S5,S3} and {S2,S6} (three superword
   reuses) where SLP picks {S2,S5} and {S3,S6} (one reuse). *)

open Slp_ir
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Config = Slp_core.Config

let env () =
  let env = Env.create () in
  List.iter (fun v -> Env.declare_scalar env v Types.F64) [ "a"; "b"; "c"; "d"; "g"; "h"; "q"; "r" ];
  Env.declare_array env "A" Types.F64 [ 1024 ];
  Env.declare_array env "B" Types.F64 [ 4096 ];
  env

(* Figure 15 (a):
     S1: a = A[i];        S2: c = a * B[4i];    S3: g = q * B[4i-2];
     S4: b = A[i+1];      S5: d = b * B[4i+4];  S6: h = r * B[4i+2];
     S7: A[2i] = d + a*c; S8: A[2i+2] = g + r*h *)
let figure15_block () =
  let open Expr.Infix in
  let i4 = 4 @* i "i" and i2 = 2 @* i "i" in
  Block.of_rhs ~label:"fig15"
    [
      (Operand.Scalar "a", arr "A" [ i "i" ]);
      (Operand.Scalar "c", sc "a" * arr "B" [ i4 ]);
      (Operand.Scalar "g", sc "q" * arr "B" [ i4 @+ -2 ]);
      (Operand.Scalar "b", arr "A" [ i "i" @+ 1 ]);
      (Operand.Scalar "d", sc "b" * arr "B" [ i4 @+ 4 ]);
      (Operand.Scalar "h", sc "r" * arr "B" [ i4 @+ 2 ]);
      (Operand.Elem ("A", [ i2 ]), sc "d" + (sc "a" * sc "c"));
      (Operand.Elem ("A", [ i2 @+ 2 ]), sc "g" + (sc "r" * sc "h"));
    ]

let config = Config.make ~datapath_bits:128 ()

let sorted_groups r = List.sort compare (List.map (List.sort compare) r.Grouping.groups)

let test_global_grouping () =
  let block = figure15_block () in
  let r = Grouping.run ~env:(env ()) ~config block in
  Alcotest.(check (list (list int)))
    "holistic grouping picks the reuse-rich pairs"
    [ [ 1; 4 ]; [ 2; 6 ]; [ 3; 5 ]; [ 7; 8 ] ]
    (sorted_groups r);
  Alcotest.(check (list int)) "no singles remain" [] r.Grouping.singles

let test_schedule_reuses () =
  let block = figure15_block () in
  let e = env () in
  let r = Grouping.run ~env:e ~config block in
  let s = Schedule.run ~env:e ~config block r in
  Alcotest.(check bool) "schedule is valid" true (Schedule.is_valid block s);
  let total_reuses =
    s.Schedule.stats.Schedule.direct_reuses + s.Schedule.stats.Schedule.permuted_reuses
  in
  Alcotest.(check int) "three superword reuses as in Figure 15(c)" 3 total_reuses

let test_schedule_respects_deps () =
  let block = figure15_block () in
  let e = env () in
  let r = Grouping.run ~env:e ~config block in
  let s = Schedule.run ~env:e ~config block r in
  let order = Schedule.scheduled_stmt_ids s in
  let pos id =
    let rec go i = function
      | [] -> failwith "missing"
      | x :: _ when x = id -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  (* a is defined by S1 and used by S2 and S7. *)
  Alcotest.(check bool) "S1 before S2" true (pos 1 < pos 2);
  Alcotest.(check bool) "S1 before S7" true (pos 1 < pos 7);
  Alcotest.(check bool) "S4 before S5" true (pos 4 < pos 5)

let () =
  Alcotest.run "paper_example"
    [
      ( "figure15",
        [
          Alcotest.test_case "global grouping" `Quick test_global_grouping;
          Alcotest.test_case "schedule reuses" `Quick test_schedule_reuses;
          Alcotest.test_case "schedule dependences" `Quick test_schedule_respects_deps;
        ] );
    ]
