(* Unit and property tests for the utility library: graphs, rationals,
   matrices, PRNG and table rendering. *)

module G = Slp_util.Graph
module Rat = Slp_util.Rat
module Mat = Slp_util.Mat
module Prng = Slp_util.Prng
module Tab = Slp_util.Tabulate

let qtest = QCheck_alcotest.to_alcotest

(* -- undirected graphs ------------------------------------------------ *)

let test_undirected_basic () =
  let g = G.Undirected.create () in
  List.iter (fun i -> G.Undirected.add_node g i (string_of_int i)) [ 1; 2; 3; 4 ];
  G.Undirected.add_edge ~weight:2.5 g 1 2;
  G.Undirected.add_edge g 2 3;
  Alcotest.(check bool) "edge present" true (G.Undirected.mem_edge g 1 2);
  Alcotest.(check bool) "edge symmetric" true (G.Undirected.mem_edge g 2 1);
  Alcotest.(check (float 0.0)) "weight" 2.5 (G.Undirected.weight g 2 1);
  Alcotest.(check int) "degree of hub" 2 (G.Undirected.degree g 2);
  Alcotest.(check (list int)) "neighbours sorted" [ 1; 3 ] (G.Undirected.neighbours g 2);
  Alcotest.(check int) "edge count" 2 (G.Undirected.edge_count g);
  G.Undirected.remove_node g 2;
  Alcotest.(check bool) "edges die with node" true (G.Undirected.is_edgeless g);
  Alcotest.(check int) "node removed" 3 (G.Undirected.node_count g)

let test_undirected_self_loop () =
  let g = G.Undirected.create () in
  G.Undirected.add_node g 1 ();
  Alcotest.check_raises "self loop rejected"
    (Invalid_argument "Graph.Undirected.add_edge: self loop") (fun () ->
      G.Undirected.add_edge g 1 1)

let test_max_degree_node () =
  let g = G.Undirected.create () in
  List.iter (fun i -> G.Undirected.add_node g i ()) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "no edges -> none" None (G.Undirected.max_degree_node g);
  G.Undirected.add_edge g 1 2;
  G.Undirected.add_edge g 1 3;
  G.Undirected.add_edge g 2 3;
  (* 1, 2, 3 all have degree 2: smallest id wins. *)
  Alcotest.(check (option int)) "tie broken by id" (Some 1) (G.Undirected.max_degree_node g);
  G.Undirected.add_edge g 2 4;
  Alcotest.(check (option int)) "now node 2 leads" (Some 2) (G.Undirected.max_degree_node g)

let test_max_weight_edge () =
  let g = G.Undirected.create () in
  List.iter (fun i -> G.Undirected.add_node g i ()) [ 1; 2; 3 ];
  G.Undirected.add_edge ~weight:1.0 g 1 2;
  G.Undirected.add_edge ~weight:3.0 g 2 3;
  match G.Undirected.max_weight_edge g with
  | Some (2, 3, w) -> Alcotest.(check (float 0.0)) "weight" 3.0 w
  | other ->
      Alcotest.failf "expected edge (2,3), got %s"
        (match other with
        | Some (a, b, _) -> Printf.sprintf "(%d,%d)" a b
        | None -> "none")

let test_set_weight () =
  let g = G.Undirected.create () in
  List.iter (fun i -> G.Undirected.add_node g i ()) [ 1; 2 ];
  G.Undirected.add_edge ~weight:1.0 g 1 2;
  G.Undirected.set_weight g 2 1 5.0;
  Alcotest.(check (float 0.0)) "weight updated both ways" 5.0 (G.Undirected.weight g 1 2);
  Alcotest.check_raises "missing edge"
    (Invalid_argument "Graph.Undirected.set_weight: no such edge") (fun () ->
      G.Undirected.set_weight g 1 1 0.0)

let test_undirected_copy_independent () =
  let g = G.Undirected.create () in
  List.iter (fun i -> G.Undirected.add_node g i ()) [ 1; 2 ];
  G.Undirected.add_edge g 1 2;
  let g' = G.Undirected.copy g in
  G.Undirected.remove_edge g' 1 2;
  Alcotest.(check bool) "original untouched" true (G.Undirected.mem_edge g 1 2);
  Alcotest.(check bool) "copy changed" false (G.Undirected.mem_edge g' 1 2)

(* -- directed graphs -------------------------------------------------- *)

let test_directed_topo () =
  let g = G.Directed.create () in
  List.iter (fun i -> G.Directed.add_node g i ()) [ 1; 2; 3; 4 ];
  G.Directed.add_edge g 1 2;
  G.Directed.add_edge g 1 3;
  G.Directed.add_edge g 2 4;
  G.Directed.add_edge g 3 4;
  Alcotest.(check (option (list int)))
    "diamond topo order" (Some [ 1; 2; 3; 4 ]) (G.Directed.topological_order g);
  Alcotest.(check bool) "acyclic" false (G.Directed.has_cycle g);
  Alcotest.(check (list int)) "sources" [ 1 ] (G.Directed.sources g);
  Alcotest.(check bool) "reachable 1->4" true (G.Directed.reachable g 1 4);
  Alcotest.(check bool) "not reachable 4->1" false (G.Directed.reachable g 4 1)

let test_directed_cycle () =
  let g = G.Directed.create () in
  List.iter (fun i -> G.Directed.add_node g i ()) [ 1; 2; 3 ];
  G.Directed.add_edge g 1 2;
  G.Directed.add_edge g 2 3;
  G.Directed.add_edge g 3 1;
  Alcotest.(check bool) "cycle detected" true (G.Directed.has_cycle g);
  Alcotest.(check (option (list int))) "no topo order" None (G.Directed.topological_order g);
  G.Directed.remove_node g 3;
  Alcotest.(check bool) "cycle broken by removal" false (G.Directed.has_cycle g)

let test_directed_degrees () =
  let g = G.Directed.create () in
  List.iter (fun i -> G.Directed.add_node g i ()) [ 1; 2; 3 ];
  G.Directed.add_edge g 1 3;
  G.Directed.add_edge g 2 3;
  Alcotest.(check int) "in degree" 2 (G.Directed.in_degree g 3);
  Alcotest.(check int) "out degree" 0 (G.Directed.out_degree g 3);
  Alcotest.(check (list int)) "preds" [ 1; 2 ] (G.Directed.preds g 3)

(* -- rationals --------------------------------------------------------- *)

let rat_gen =
  QCheck.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range (-50) 50)
      (oneof [ int_range 1 20; int_range (-20) (-1) ]))

let arb_rat = QCheck.make ~print:(fun r -> Format.asprintf "%a" Rat.pp r) rat_gen

let prop_rat_add_commutes =
  QCheck.Test.make ~name:"rat add commutes" ~count:200 (QCheck.pair arb_rat arb_rat)
    (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_mul_distributes =
  QCheck.Test.make ~name:"rat mul distributes over add" ~count:200
    (QCheck.triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_rat_normalised =
  QCheck.Test.make ~name:"rat always normalised" ~count:200 arb_rat (fun r ->
      let { Rat.num; den } = (r :> Rat.t) in
      den > 0
      &&
      let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
      gcd num den = 1 || num = 0)

let test_rat_basics () =
  Alcotest.(check bool) "1/2 + 1/3 = 5/6" true
    (Rat.equal (Rat.add (Rat.make 1 2) (Rat.make 1 3)) (Rat.make 5 6));
  Alcotest.(check bool) "negative den normalised" true
    (Rat.equal (Rat.make 1 (-2)) (Rat.make (-1) 2));
  Alcotest.(check int) "to_int_exn" 7 (Rat.to_int_exn (Rat.make 14 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

(* -- matrices ---------------------------------------------------------- *)

let test_mat_inverse_identity () =
  let m = Mat.of_int_array [| [| 2; 1 |]; [| 1; 1 |] |] in
  match Mat.inverse m with
  | None -> Alcotest.fail "matrix is invertible"
  | Some inv ->
      Alcotest.(check bool) "m * m^-1 = I" true (Mat.equal (Mat.mul m inv) (Mat.identity 2))

let test_mat_singular () =
  let m = Mat.of_int_array [| [| 1; 2 |]; [| 2; 4 |] |] in
  Alcotest.(check bool) "singular has no inverse" true (Mat.inverse m = None);
  Alcotest.(check bool) "determinant zero" true (Rat.is_zero (Mat.determinant m))

let test_mat_solve () =
  let a = Mat.of_int_array [| [| 1; 1 |]; [| 1; -1 |] |] in
  let b = [| Rat.of_int 3; Rat.of_int 1 |] in
  match Mat.solve a b with
  | None -> Alcotest.fail "solvable system"
  | Some x ->
      Alcotest.(check bool) "x = (2, 1)" true
        (Rat.equal x.(0) (Rat.of_int 2) && Rat.equal x.(1) (Rat.of_int 1))

let prop_mat_det_triangular =
  QCheck.Test.make ~name:"det of triangular = diagonal product" ~count:100
    QCheck.(pair (QCheck.int_range (-5) 5) (QCheck.int_range (-5) 5))
    (fun (a, b) ->
      let m = Mat.of_int_array [| [| a; 7 |]; [| 0; b |] |] in
      Rat.equal (Mat.determinant m) (Rat.of_int (a * b)))

let test_mat_drop_last () =
  let m = Mat.of_int_array [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| 7; 8; 9 |] |] in
  let d = Mat.drop_last_row_col m in
  Alcotest.(check int) "rows" 2 (Mat.rows d);
  Alcotest.(check bool) "content" true
    (Mat.equal d (Mat.of_int_array [| [| 1; 2 |]; [| 4; 5 |] |]))

let test_mat_mul_vec () =
  let m = Mat.of_int_array [| [| 1; 2 |]; [| 3; 4 |] |] in
  let v = Mat.mul_vec m [| Rat.of_int 1; Rat.of_int 1 |] in
  Alcotest.(check bool) "Av" true
    (Rat.equal v.(0) (Rat.of_int 3) && Rat.equal v.(1) (Rat.of_int 7))

(* -- prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v;
    let f = Prng.float rng 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

(* -- tabulate ------------------------------------------------------------ *)

let test_tabulate_alignment () =
  let s = Tab.render ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "z" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has header + rule + 2 rows" true (List.length lines >= 4);
  Alcotest.(check string) "pct formatting" "15.2%" (Tab.pct 0.152)

let () =
  Alcotest.run "util"
    [
      ( "graph.undirected",
        [
          Alcotest.test_case "basics" `Quick test_undirected_basic;
          Alcotest.test_case "self loop" `Quick test_undirected_self_loop;
          Alcotest.test_case "max degree node" `Quick test_max_degree_node;
          Alcotest.test_case "max weight edge" `Quick test_max_weight_edge;
          Alcotest.test_case "set weight" `Quick test_set_weight;
          Alcotest.test_case "copy independence" `Quick test_undirected_copy_independent;
        ] );
      ( "graph.directed",
        [
          Alcotest.test_case "topological order" `Quick test_directed_topo;
          Alcotest.test_case "cycle detection" `Quick test_directed_cycle;
          Alcotest.test_case "degrees" `Quick test_directed_degrees;
        ] );
      ( "rat",
        [
          Alcotest.test_case "basics" `Quick test_rat_basics;
          qtest prop_rat_add_commutes;
          qtest prop_rat_mul_distributes;
          qtest prop_rat_normalised;
        ] );
      ( "mat",
        [
          Alcotest.test_case "inverse" `Quick test_mat_inverse_identity;
          Alcotest.test_case "singular" `Quick test_mat_singular;
          Alcotest.test_case "solve" `Quick test_mat_solve;
          Alcotest.test_case "drop last" `Quick test_mat_drop_last;
          Alcotest.test_case "mul_vec" `Quick test_mat_mul_vec;
          qtest prop_mat_det_triangular;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
        ] );
      ( "tabulate", [ Alcotest.test_case "alignment" `Quick test_tabulate_alignment ] );
    ]
