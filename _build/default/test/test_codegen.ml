(* Tests for code generation: register tracking (direct, permuted,
   sub-multiset, two-register reuse), pack materialisation strategies,
   scalar demand, and the stale-register fixpoint. *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Visa = Slp_vm.Visa

let machine = Machine.intel_dunnington

let compile_body src =
  let prog = Slp_frontend.Parser.parse ~name:"t" src in
  let c = Pipeline.compile ~unroll:1 ~scheme:Pipeline.Global ~machine prog in
  match c.Pipeline.vector with
  | Some v -> (c, v)
  | None -> Alcotest.fail "expected vector code"

let rec instrs_of items =
  List.concat_map
    (function Visa.Block is -> is | Visa.Loop l -> instrs_of l.Visa.body)
    items

let count pred v = List.length (List.filter pred (instrs_of v.Visa.body))

let is_vload = function Visa.Vload _ -> true | _ -> false
let is_gather = function Visa.Vgather _ -> true | _ -> false
let is_permute = function Visa.Vpermute _ | Visa.Vshuffle2 _ -> true | _ -> false
let is_unpack = function Visa.Vunpack _ -> true | _ -> false
let is_broadcast = function Visa.Vbroadcast _ -> true | _ -> false

let test_contiguous_becomes_vload () =
  let _, v =
    compile_body
      "f64 A[64];\nf64 B[64];\nfor i = 0 to 64 step 2 {\n  B[i] = A[i] * 2.0;\n  B[i+1] = A[i+1] * 2.0;\n}"
  in
  Alcotest.(check int) "one vector load" 1 (count is_vload v);
  Alcotest.(check int) "no gathers" 0 (count is_gather v);
  Alcotest.(check int) "one broadcast for the constant" 1 (count is_broadcast v)

let test_direct_reuse_no_second_load () =
  (* The same A-pack is consumed by two superword statements: the
     second use must come from the register, not another load. *)
  let _, v =
    compile_body
      "f64 A[64];\nf64 B[64];\nf64 C[64];\nfor i = 0 to 64 step 2 {\n  B[i] = A[i] + 1.0;\n  B[i+1] = A[i+1] + 1.0;\n  C[i] = A[i] + 2.0;\n  C[i+1] = A[i+1] + 2.0;\n}"
  in
  Alcotest.(check int) "A loaded once" 1 (count is_vload v)

let test_permuted_reuse_uses_shuffle () =
  (* The second group reads the a-pack in reversed lane order: codegen
     must realise it with one permute from the live register, not a
     reload or gather. *)
  let _, v =
    compile_body
      "f64 a[64];\nf64 c[64];\nf64 d[64];\nfor i = 0 to 32 {\n  c[2*i] = a[2*i] + 1.0;\n  c[2*i+1] = a[2*i+1] + 1.0;\n  d[2*i] = a[2*i+1] * 2.0;\n  d[2*i+1] = a[2*i] * 2.0;\n}"
  in
  Alcotest.(check bool) "permute present" true (count is_permute v >= 1);
  Alcotest.(check int) "a loaded exactly once" 1 (count is_vload v);
  Alcotest.(check int) "no gathers" 0 (count is_gather v)

let test_dead_scalar_dest_not_unpacked () =
  (* t0/t1 are consumed vectorially; no unpack should be emitted. *)
  let _, v =
    compile_body
      "f64 A[64];\nf64 B[64];\nf64 t0;\nf64 t1;\nfor i = 0 to 64 step 2 {\n  t0 = A[i] * 2.0;\n  t1 = A[i+1] * 2.0;\n  B[i] = t0 + 1.0;\n  B[i+1] = t1 + 1.0;\n}"
  in
  Alcotest.(check int) "no unpacks" 0 (count is_unpack v)

let test_scalar_needed_by_single_is_unpacked () =
  (* acc's update stays scalar (serial), so the t-pack must unpack the
     lane acc reads. *)
  let _, v =
    compile_body
      "f64 A[64];\nf64 B[64];\nf64 t0;\nf64 t1;\nf64 acc;\nfor i = 0 to 64 step 2 {\n  t0 = A[i] * 2.0;\n  t1 = A[i+1] * 2.0;\n  B[i] = t0 + 1.0;\n  B[i+1] = t1 + 1.0;\n  acc = acc + t0;\n}"
  in
  Alcotest.(check bool) "an unpack exists for the scalar consumer" true
    (count is_unpack v >= 1)

let test_semantics_of_generated_code () =
  (* Belt and braces: the generated code for each mini-kernel above
     computes exactly the scalar result. *)
  List.iter
    (fun src ->
      let prog = Slp_frontend.Parser.parse ~name:"t" src in
      let c = Pipeline.compile ~unroll:1 ~scheme:Pipeline.Global ~machine prog in
      let r = Pipeline.execute c in
      Alcotest.(check bool) "correct" true r.Pipeline.correct)
    [
      "f64 A[64];\nf64 B[64];\nfor i = 0 to 64 step 2 {\n  B[i] = A[i] * 2.0;\n  B[i+1] = A[i+1] * 2.0;\n}";
      "f64 a[64];\nf64 c[64];\nf64 d[64];\nfor i = 0 to 32 {\n  c[2*i] = a[2*i] + 1.0;\n  c[2*i+1] = a[2*i+1] + 1.0;\n  d[2*i] = a[2*i+1] * 2.0;\n  d[2*i+1] = a[2*i] * 2.0;\n}";
      "f64 A[64];\nf64 B[64];\nf64 t0;\nf64 t1;\nf64 acc;\nfor i = 0 to 64 step 2 {\n  t0 = A[i] * 2.0;\n  t1 = A[i+1] * 2.0;\n  B[i] = t0 + 1.0;\n  B[i+1] = t1 + 1.0;\n  acc = acc + t0;\n}";
    ]

let () =
  Alcotest.run "codegen"
    [
      ( "lowering",
        [
          Alcotest.test_case "contiguous pack -> vload" `Quick test_contiguous_becomes_vload;
          Alcotest.test_case "direct reuse" `Quick test_direct_reuse_no_second_load;
          Alcotest.test_case "permuted reuse" `Quick test_permuted_reuse_uses_shuffle;
          Alcotest.test_case "dead scalar dest" `Quick test_dead_scalar_dest_not_unpacked;
          Alcotest.test_case "demanded scalar unpacked" `Quick
            test_scalar_needed_by_single_is_unpacked;
          Alcotest.test_case "generated code semantics" `Quick test_semantics_of_generated_code;
        ] );
    ]
