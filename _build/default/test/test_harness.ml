(* Smoke tests for the experiment harness: the cheap reports render,
   the runner memoises, and measurements are deterministic.  (The full
   figures run in bin/experiments.exe; they are too heavy for the unit
   test suite.) *)

module E = Slp_harness.Experiments
module Runner = Slp_harness.Runner
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Suite = Slp_benchmarks.Suite

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_tables_render () =
  let t1 = E.table1 () in
  Alcotest.(check bool) "table1 mentions the Xeon" true
    (contains (E.render t1) "E7450");
  let t2 = E.table2 () in
  Alcotest.(check bool) "table2 mentions the Phenom" true
    (contains (E.render t2) "Phenom");
  let t3 = E.table3 () in
  List.iter
    (fun (b : Suite.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "table3 lists %s" b.Suite.name)
        true
        (contains t3.E.body b.Suite.name))
    Suite.all

let test_runner_memoises () =
  Runner.clear_cache ();
  let b = Suite.find "dealII" in
  let m1 = Runner.measure ~machine:Machine.intel_dunnington ~scheme:Pipeline.Scalar b in
  let m2 = Runner.measure ~machine:Machine.intel_dunnington ~scheme:Pipeline.Scalar b in
  Alcotest.(check bool) "same physical measurement" true (m1 == m2);
  Alcotest.(check bool) "correct" true m1.Runner.correct;
  Runner.clear_cache ();
  let m3 = Runner.measure ~machine:Machine.intel_dunnington ~scheme:Pipeline.Scalar b in
  Alcotest.(check (float 0.0)) "deterministic across cache clears"
    (Runner.cycles m1) (Runner.cycles m3)

let test_reduction_math () =
  Runner.clear_cache ();
  let b = Suite.find "dealII" in
  let scalar = Runner.measure ~machine:Machine.intel_dunnington ~scheme:Pipeline.Scalar b in
  Alcotest.(check (float 1e-9)) "reduction of baseline against itself is zero" 0.0
    (Runner.reduction ~baseline:scalar scalar)

let () =
  Alcotest.run "harness"
    [
      ( "reports",
        [
          Alcotest.test_case "tables render" `Quick test_tables_render;
          Alcotest.test_case "runner memoises" `Quick test_runner_memoises;
          Alcotest.test_case "reduction math" `Quick test_reduction_math;
        ] );
    ]
