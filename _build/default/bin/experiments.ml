(* Regenerate the paper's tables and figures.

   Usage:
     experiments                 run everything
     experiments fig16 fig19     run selected reports
     experiments --list          list report ids *)

module E = Slp_harness.Experiments

let registry =
  [
    ("table1", E.table1);
    ("table2", E.table2);
    ("table3", E.table3);
    ("fig16", E.fig16);
    ("fig17", E.fig17);
    ("fig18", E.fig18);
    ("fig19", E.fig19);
    ("fig20", E.fig20);
    ("fig21", E.fig21);
    ("overhead", E.compile_overhead);
    ("ablations", E.ablations);
    ("reuse_value", E.reuse_value);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then
    List.iter (fun (id, _) -> print_endline id) registry
  else begin
    let unknown = List.filter (fun a -> not (List.mem_assoc a registry)) args in
    if unknown <> [] then begin
      prerr_endline ("unknown report(s): " ^ String.concat ", " unknown);
      prerr_endline "use --list to see available ids";
      exit 1
    end;
    List.iter
      (fun (id, f) ->
        if args = [] || List.mem id args then print_string (E.render (f ())))
      registry
  end
