(** Affine expressions over loop-index variables.

    Array subscripts and loop bounds in the kernel language are affine
    functions of the enclosing loop indices (paper §5.2: "we focus on
    loop nests in which the loop bounds and array references are affine
    functions of the enclosing loop indices").  An affine expression is
    a sum [c + Σ k_v · v] kept in a canonical form: terms sorted by
    variable name, no zero coefficients. *)

type t

val const : int -> t
val var : ?coeff:int -> string -> t
val make : (string * int) list -> int -> t
(** [make terms const]; duplicate variables are summed. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t

val terms : t -> (string * int) list
(** Canonical (sorted, non-zero) coefficient list. *)

val const_part : t -> int
val coeff : t -> string -> int
(** 0 when the variable does not occur. *)

val is_const : t -> bool
val to_const : t -> int option
val vars : t -> string list
val equal : t -> t -> bool
val compare : t -> t -> int

val subst : t -> string -> t -> t
(** [subst e v by] replaces every occurrence of [v] with the affine
    expression [by] (used by loop unrolling: [i := u·i' + k]). *)

val eval : t -> (string -> int) -> int
(** Evaluate under an environment for the index variables.  Raises
    whatever the environment raises on unbound variables. *)

val diff_const : t -> t -> int option
(** [diff_const a b] is [Some d] when [a - b] is the constant [d] —
    the dependence test and the memory-adjacency test both reduce to
    this question. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
