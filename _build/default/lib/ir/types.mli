(** Scalar data types and operators of the kernel IR.

    The SLP framework packs operands of equal data type into
    superwords; the type's bit width determines how many lanes fit a
    given SIMD datapath (e.g. four [F32] in 128 bits, two [F64]). *)

type scalar_ty = I8 | I16 | I32 | I64 | F32 | F64

val bits : scalar_ty -> int
(** Width in bits: 8, 16, 32, 64, 32, 64 respectively. *)

val bytes : scalar_ty -> int
val is_float : scalar_ty -> bool
val scalar_ty_to_string : scalar_ty -> string
val scalar_ty_of_string : string -> scalar_ty option
val pp_scalar_ty : Format.formatter -> scalar_ty -> unit

type binop = Add | Sub | Mul | Div | Min | Max

type unop = Neg | Abs | Sqrt

val binop_to_string : binop -> string
val unop_to_string : unop -> string
val pp_binop : Format.formatter -> binop -> unit
val pp_unop : Format.formatter -> unop -> unit

val eval_binop : binop -> float -> float -> float
(** Runtime semantics used by both the scalar and vector interpreters.
    All lanes are computed in double precision; [Div] by zero yields
    IEEE infinity, matching hardware float lanes. *)

val eval_unop : unop -> float -> float

val all_binops : binop list
val all_unops : unop list
val all_scalar_tys : scalar_ty list
