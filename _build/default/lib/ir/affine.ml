module Smap = Map.Make (String)

type t = { coeffs : int Smap.t; const : int }
(* Invariant: no binding in [coeffs] is zero. *)

let normalise coeffs = Smap.filter (fun _ k -> k <> 0) coeffs

let const c = { coeffs = Smap.empty; const = c }

let var ?(coeff = 1) v =
  { coeffs = normalise (Smap.singleton v coeff); const = 0 }

let make terms c =
  let coeffs =
    List.fold_left
      (fun acc (v, k) ->
        Smap.update v (function None -> Some k | Some k' -> Some (k + k')) acc)
      Smap.empty terms
  in
  { coeffs = normalise coeffs; const = c }

let merge f a b =
  Smap.merge
    (fun _ ka kb ->
      let k = f (Option.value ka ~default:0) (Option.value kb ~default:0) in
      if k = 0 then None else Some k)
    a b

let add a b = { coeffs = merge ( + ) a.coeffs b.coeffs; const = a.const + b.const }
let sub a b = { coeffs = merge ( - ) a.coeffs b.coeffs; const = a.const - b.const }

let scale k a =
  if k = 0 then const 0
  else { coeffs = Smap.map (fun c -> k * c) a.coeffs; const = k * a.const }

let neg a = scale (-1) a
let terms a = Smap.bindings a.coeffs
let const_part a = a.const
let coeff a v = Option.value (Smap.find_opt v a.coeffs) ~default:0
let is_const a = Smap.is_empty a.coeffs
let to_const a = if is_const a then Some a.const else None
let vars a = List.map fst (terms a)
let equal a b = a.const = b.const && Smap.equal ( = ) a.coeffs b.coeffs

let compare a b =
  let c = compare a.const b.const in
  if c <> 0 then c else Smap.compare Stdlib.compare a.coeffs b.coeffs

let subst e v by =
  match Smap.find_opt v e.coeffs with
  | None -> e
  | Some k -> add { e with coeffs = Smap.remove v e.coeffs } (scale k by)

let eval e env =
  Smap.fold (fun v k acc -> acc + (k * env v)) e.coeffs e.const

let diff_const a b =
  let d = sub a b in
  to_const d

let pp ppf a =
  let ts = terms a in
  if ts = [] then Format.fprintf ppf "%d" a.const
  else begin
    List.iteri
      (fun i (v, k) ->
        if i = 0 then
          if k = 1 then Format.fprintf ppf "%s" v
          else if k = -1 then Format.fprintf ppf "-%s" v
          else Format.fprintf ppf "%d*%s" k v
        else if k = 1 then Format.fprintf ppf "+%s" v
        else if k = -1 then Format.fprintf ppf "-%s" v
        else if k > 0 then Format.fprintf ppf "+%d*%s" k v
        else Format.fprintf ppf "-%d*%s" (-k) v)
      ts;
    if a.const > 0 then Format.fprintf ppf "+%d" a.const
    else if a.const < 0 then Format.fprintf ppf "%d" a.const
  end

let to_string a = Format.asprintf "%a" pp a
