type array_info = { elem_ty : Types.scalar_ty; dims : int list }

type t = {
  scalar_tbl : (string, Types.scalar_ty) Hashtbl.t;
  array_tbl : (string, array_info) Hashtbl.t;
}

let create () = { scalar_tbl = Hashtbl.create 16; array_tbl = Hashtbl.create 16 }

let copy t =
  { scalar_tbl = Hashtbl.copy t.scalar_tbl; array_tbl = Hashtbl.copy t.array_tbl }

let declare_scalar t name ty =
  if Hashtbl.mem t.array_tbl name then
    invalid_arg (Printf.sprintf "Env.declare_scalar: %s is an array" name);
  match Hashtbl.find_opt t.scalar_tbl name with
  | Some ty' when ty' <> ty ->
      invalid_arg (Printf.sprintf "Env.declare_scalar: %s redeclared" name)
  | Some _ | None -> Hashtbl.replace t.scalar_tbl name ty

let declare_array t name elem_ty dims =
  if dims = [] || List.exists (fun d -> d <= 0) dims then
    invalid_arg "Env.declare_array: dimensions must be positive";
  if Hashtbl.mem t.scalar_tbl name then
    invalid_arg (Printf.sprintf "Env.declare_array: %s is a scalar" name);
  match Hashtbl.find_opt t.array_tbl name with
  | Some info when info <> { elem_ty; dims } ->
      invalid_arg (Printf.sprintf "Env.declare_array: %s redeclared" name)
  | Some _ | None -> Hashtbl.replace t.array_tbl name { elem_ty; dims }

let scalar_ty t name = Hashtbl.find_opt t.scalar_tbl name
let array_info t name = Hashtbl.find_opt t.array_tbl name

let is_declared t name =
  Hashtbl.mem t.scalar_tbl name || Hashtbl.mem t.array_tbl name

let operand_ty t = function
  | Operand.Const _ -> None
  | Operand.Scalar v -> begin
      match scalar_ty t v with
      | Some ty -> Some ty
      | None -> invalid_arg (Printf.sprintf "Env.operand_ty: undeclared scalar %s" v)
    end
  | Operand.Elem (b, _) -> begin
      match array_info t b with
      | Some info -> Some info.elem_ty
      | None -> invalid_arg (Printf.sprintf "Env.operand_ty: undeclared array %s" b)
    end

let compatible_ty t a b =
  match (operand_ty t a, operand_ty t b) with
  | None, _ | _, None -> true
  | Some x, Some y -> x = y

let row_size t name =
  match array_info t name with
  | Some info -> info.dims
  | None -> invalid_arg (Printf.sprintf "Env.row_size: unknown array %s" name)

let scalars t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.scalar_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let arrays t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.array_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (n, ty) -> Format.fprintf ppf "%a %s;@," Types.pp_scalar_ty ty n)
    (scalars t);
  List.iter
    (fun (n, info) ->
      Format.fprintf ppf "%a %s" Types.pp_scalar_ty info.elem_ty n;
      List.iter (Format.fprintf ppf "[%d]") info.dims;
      Format.fprintf ppf ";@,")
    (arrays t);
  Format.fprintf ppf "@]"
