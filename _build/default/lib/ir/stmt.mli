(** Statements of the kernel IR: [lhs := rhs].

    A statement's operand *positions* are numbered with the store
    target at position 0 followed by the rhs leaves left-to-right;
    variable packs (paper §4.2.1) take one operand from the same
    position of each statement in a candidate group. *)

type t = { id : int; lhs : Operand.t; rhs : Expr.t }
(** [id] is unique within a basic block and names the statement in
    every SLP graph.  [lhs] must be [Scalar] or [Elem], never
    [Const]. *)

val make : id:int -> lhs:Operand.t -> rhs:Expr.t -> t
(** Raises [Invalid_argument] if [lhs] is a constant. *)

val positions : t -> Operand.t list
(** Position 0 = lhs; positions 1.. = rhs leaves. *)

val position_count : t -> int

val isomorphic : env:Env.t -> t -> t -> bool
(** Same store-target kind (both memory or both scalar), same operator
    skeleton, and compatible data type at every corresponding position
    (paper §4.1 constraint 3); constants unify with any type. *)

val def : t -> Operand.t
val uses : t -> Operand.t list
(** Rhs leaf operands that read storage (constants excluded). *)

val depends : t -> t -> bool
(** [depends earlier later]: RAW, WAR or WAW dependence assuming
    [earlier] executes first. *)

val op_count : t -> int
val subst_index : t -> string -> Affine.t -> t
val rename_scalar : t -> old_name:string -> new_name:string -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
