(** Expression trees of the kernel IR.

    Isomorphism of statements (paper §2, §4.1 constraint 3: "the same
    operations in the same order") is structural equality of the
    operator skeleton, ignoring the operands at the leaves. *)

type t =
  | Leaf of Operand.t
  | Un of Types.unop * t
  | Bin of Types.binop * t * t

val leaves : t -> Operand.t list
(** Leaf operands in left-to-right order — the "positions" from which
    variable packs are drawn. *)

val map_leaves : (Operand.t -> Operand.t) -> t -> t

val same_shape : t -> t -> bool
(** Structural operator skeleton equality. *)

val replace_leaves : t -> Operand.t list -> t
(** Rebuild the tree with new leaves (left-to-right).  Raises
    [Invalid_argument] when the count does not match. *)

val op_count : t -> int
(** Number of operator nodes — the arithmetic work of a statement. *)

val operators : t -> (Types.binop, Types.unop) Either.t list
(** Operator nodes in evaluation order (left-to-right, bottom-up) —
    used for weighted arithmetic cost (divisions and square roots are
    an order of magnitude slower than additions on real datapaths). *)

val depth : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val eval : t -> (Operand.t -> float) -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Infix construction helpers for tests and examples:
    [Infix.(sc "a" * arr "B" [idx] + cst 1.0)]. *)
module Infix : sig
  val cst : float -> t
  val sc : string -> t
  val arr : string -> Affine.t list -> t
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val neg : t -> t
  val sqrt_ : t -> t
  val abs_ : t -> t
  val min_ : t -> t -> t
  val max_ : t -> t -> t
  val i : string -> Affine.t
  (** Loop-index variable as an affine subscript. *)

  val ( @+ ) : Affine.t -> int -> Affine.t
  val ( @* ) : int -> Affine.t -> Affine.t
end
