type t = Const of float | Scalar of string | Elem of string * Affine.t list

let equal a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Scalar x, Scalar y -> String.equal x y
  | Elem (x, ix), Elem (y, iy) ->
      String.equal x y
      && List.length ix = List.length iy
      && List.for_all2 Affine.equal ix iy
  | (Const _ | Scalar _ | Elem _), _ -> false

let compare a b =
  match (a, b) with
  | Const x, Const y -> Float.compare x y
  | Const _, (Scalar _ | Elem _) -> -1
  | Scalar _, Const _ -> 1
  | Scalar x, Scalar y -> String.compare x y
  | Scalar _, Elem _ -> -1
  | Elem (x, ix), Elem (y, iy) ->
      let c = String.compare x y in
      if c <> 0 then c else List.compare Affine.compare ix iy
  | Elem _, (Const _ | Scalar _) -> 1

let may_alias a b =
  match (a, b) with
  | Const _, _ | _, Const _ -> false
  | Scalar x, Scalar y -> String.equal x y
  | Scalar _, Elem _ | Elem _, Scalar _ -> false
  | Elem (x, ix), Elem (y, iy) ->
      String.equal x y
      && (List.length ix <> List.length iy
         || not
              (List.exists2
                 (fun a b ->
                   match Affine.diff_const a b with
                   | Some d -> d <> 0
                   | None -> false)
                 ix iy))

let must_equal_storage a b =
  match (a, b) with
  | Scalar x, Scalar y -> String.equal x y
  | Elem _, Elem _ -> equal a b
  | (Const _ | Scalar _ | Elem _), _ -> false

let is_memory = function Elem _ -> true | Const _ | Scalar _ -> false

(* Row-major linearised offset difference of [b] relative to [a], when
   it is a compile-time constant. *)
let linear_diff ~row_size a b =
  match (a, b) with
  | Elem (x, ix), Elem (y, iy)
    when String.equal x y && List.length ix = List.length iy -> begin
      let dims = row_size x in
      if List.length dims <> List.length ix then None
      else begin
        (* stride of dimension k = product of sizes of dims k+1.. *)
        let rec strides = function
          | [] -> []
          | _ :: rest as l ->
              let s = List.fold_left ( * ) 1 (List.tl l) in
              s :: strides rest
        in
        let strs = strides dims in
        let diffs = List.map2 Affine.diff_const iy ix in
        List.fold_left2
          (fun acc d s ->
            match (acc, d) with
            | Some total, Some d -> Some (total + (d * s))
            | _, _ -> None)
          (Some 0) diffs strs
      end
    end
  | _ -> None

let adjacent_in_memory ~row_size a b =
  match linear_diff ~row_size a b with Some 1 -> true | Some _ | None -> false

let defined_vars = function
  | Scalar v -> [ v ]
  | Const _ | Elem _ -> []

let used_vars = function
  | Const _ -> []
  | Scalar v -> [ v ]
  | Elem (_, idxs) -> List.concat_map Affine.vars idxs

let rename_base op ~old_base ~new_base ~subst =
  match op with
  | Elem (b, idxs) when String.equal b old_base -> Elem (new_base, subst idxs)
  | Const _ | Scalar _ | Elem _ -> op

let subst_index op v by =
  match op with
  | Const _ | Scalar _ -> op
  | Elem (b, idxs) -> Elem (b, List.map (fun ix -> Affine.subst ix v by) idxs)

let pp ppf = function
  | Const f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%d" (int_of_float f)
      else Format.fprintf ppf "%g" f
  | Scalar v -> Format.pp_print_string ppf v
  | Elem (b, idxs) ->
      Format.pp_print_string ppf b;
      List.iter (fun ix -> Format.fprintf ppf "[%a]" Affine.pp ix) idxs

let to_string op = Format.asprintf "%a" pp op
