(** Basic blocks: the unit of SLP optimization.

    "The input to our compiler framework is a set of basic blocks of a
    program" (paper §3).  A block is an ordered statement sequence; its
    dependence relation (RAW/WAR/WAW between earlier and later
    statements) constrains every grouping and scheduling decision. *)

type t = { label : string; stmts : Stmt.t list }

val make : ?label:string -> Stmt.t list -> t
(** Raises [Invalid_argument] on duplicate statement ids. *)

val of_rhs : ?label:string -> (Operand.t * Expr.t) list -> t
(** Convenience: number statements 1..n in order. *)

val find : t -> int -> Stmt.t
(** Statement by id; raises [Not_found]. *)

val stmt_ids : t -> int list
val size : t -> int

val depends : t -> int -> int -> bool
(** [depends b p q] — does statement [p] (earlier in program order)
    carry a dependence to statement [q]?  Requires [p] before [q] in
    the block; raises [Invalid_argument] otherwise. *)

val dep_pairs : t -> (int * int) list
(** All dependent (earlier, later) id pairs. *)

val dep_graph : t -> unit Slp_util.Graph.Directed.t
(** Dependence DAG over statement ids. *)

val independent : t -> int -> int -> bool
(** Neither order carries a dependence — precondition for putting two
    statements in one superword statement (§4.1 constraint 1). *)

val scalar_uses : t -> string list
(** Scalar variables read anywhere in the block, sorted, deduplicated. *)

val scalar_defs : t -> string list

val live_out_candidates : t -> string list
(** Scalars defined in the block (conservatively assumed live-out). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
