lib/ir/types.ml: Float Format
