lib/ir/stmt.mli: Affine Env Expr Format Operand
