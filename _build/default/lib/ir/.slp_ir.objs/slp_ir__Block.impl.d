lib/ir/block.ml: Format Hashtbl List Operand Printf Slp_util Stmt String
