lib/ir/env.mli: Format Operand Types
