lib/ir/program.ml: Affine Block Env Expr Format List Operand Option Stmt Types
