lib/ir/expr.mli: Affine Either Format Operand Types
