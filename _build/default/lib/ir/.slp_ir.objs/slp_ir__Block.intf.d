lib/ir/block.mli: Expr Format Operand Slp_util Stmt
