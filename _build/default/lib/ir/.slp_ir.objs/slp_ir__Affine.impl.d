lib/ir/affine.ml: Format List Map Option Stdlib String
