lib/ir/env.ml: Format Hashtbl List Operand Printf String Types
