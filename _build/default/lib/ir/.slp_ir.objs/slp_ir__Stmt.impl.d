lib/ir/stmt.ml: Env Expr Format List Operand String
