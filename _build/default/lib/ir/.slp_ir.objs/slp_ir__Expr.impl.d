lib/ir/expr.ml: Affine Either Format List Operand Stdlib Types
