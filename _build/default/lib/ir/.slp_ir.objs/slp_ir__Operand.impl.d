lib/ir/operand.ml: Affine Float Format List String
