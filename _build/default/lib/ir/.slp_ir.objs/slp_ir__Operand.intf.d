lib/ir/operand.mli: Affine Format
