lib/ir/program.mli: Affine Block Env Format
