type t = { id : int; lhs : Operand.t; rhs : Expr.t }

let make ~id ~lhs ~rhs =
  (match lhs with
  | Operand.Const _ -> invalid_arg "Stmt.make: constant store target"
  | Operand.Scalar _ | Operand.Elem _ -> ());
  { id; lhs; rhs }

let positions s = s.lhs :: Expr.leaves s.rhs
let position_count s = List.length (positions s)

let same_lhs_kind a b =
  match (a.lhs, b.lhs) with
  | Operand.Scalar _, Operand.Scalar _ | Operand.Elem _, Operand.Elem _ -> true
  | (Operand.Scalar _ | Operand.Elem _ | Operand.Const _), _ -> false

let isomorphic ~env a b =
  same_lhs_kind a b
  && Expr.same_shape a.rhs b.rhs
  &&
  let pa = positions a and pb = positions b in
  List.for_all2 (Env.compatible_ty env) pa pb

let def s = s.lhs

let uses s =
  List.filter
    (function Operand.Const _ -> false | Operand.Scalar _ | Operand.Elem _ -> true)
    (Expr.leaves s.rhs)

let depends earlier later =
  let raw = List.exists (Operand.may_alias (def earlier)) (uses later) in
  let war = List.exists (Operand.may_alias (def later)) (uses earlier) in
  let waw = Operand.may_alias (def earlier) (def later) in
  raw || war || waw

let op_count s = Expr.op_count s.rhs

let subst_index s v by =
  {
    s with
    lhs = Operand.subst_index s.lhs v by;
    rhs = Expr.map_leaves (fun op -> Operand.subst_index op v by) s.rhs;
  }

let rename_scalar s ~old_name ~new_name =
  let ren op =
    match op with
    | Operand.Scalar v when String.equal v old_name -> Operand.Scalar new_name
    | Operand.Const _ | Operand.Scalar _ | Operand.Elem _ -> op
  in
  { s with lhs = ren s.lhs; rhs = Expr.map_leaves ren s.rhs }

let equal a b = a.id = b.id && Operand.equal a.lhs b.lhs && Expr.equal a.rhs b.rhs

let pp ppf s =
  Format.fprintf ppf "S%d: %a = %a" s.id Operand.pp s.lhs Expr.pp s.rhs

let to_string s = Format.asprintf "%a" pp s
