(** Operands: the leaves of kernel IR expressions.

    A superword is an ordered tuple of operands; a variable pack (paper
    §4.2.1) is an unordered set of operands drawn from the same
    position of grouped isomorphic statements.  The aliasing and
    adjacency questions answered here drive both dependence testing and
    pack-cost estimation. *)

type t =
  | Const of float
      (** Literal constant; packs via broadcast/insert, never aliases. *)
  | Scalar of string  (** A scalar variable. *)
  | Elem of string * Affine.t list
      (** Array element [base[idx_0]...[idx_n-1]], one affine subscript
          per dimension. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val may_alias : t -> t -> bool
(** Conservative storage-overlap test within one loop iteration:
    scalars alias when equal; array elements alias unless the bases
    differ or some subscript dimension provably differs by a non-zero
    constant; constants never alias. *)

val must_equal_storage : t -> t -> bool
(** True only when both operands definitely denote the same storage
    location (same scalar, or same base with syntactically equal
    subscripts). *)

val is_memory : t -> bool
(** Array elements reside in memory; scalars model register-resident
    values (after standard register promotion) and constants are
    immediate. *)

val adjacent_in_memory : row_size:(string -> int list) -> t -> t -> bool
(** [adjacent_in_memory ~row_size a b] is true when [b] is the element
    immediately after [a] in row-major order — the seed condition of
    the Larsen-Amarasinghe baseline.  [row_size] gives an array's
    dimension sizes. *)

val defined_vars : t -> string list
(** Scalar variable defined if this operand is a store target. *)

val used_vars : t -> string list
(** Index variables and scalar variables read when this operand is
    evaluated (subscript variables count as uses). *)

val rename_base : t -> old_base:string -> new_base:string -> subst:(Affine.t list -> Affine.t list) -> t
(** Rewrite an array reference onto a new array with transformed
    subscripts; scalars and constants are returned unchanged. *)

val subst_index : t -> string -> Affine.t -> t
(** Substitute a loop-index variable inside subscripts (unrolling). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
