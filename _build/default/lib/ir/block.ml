module Graph = Slp_util.Graph

type t = { label : string; stmts : Stmt.t list }

let make ?(label = "bb") stmts =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (s : Stmt.t) ->
      if Hashtbl.mem seen s.Stmt.id then
        invalid_arg (Printf.sprintf "Block.make: duplicate statement id %d" s.Stmt.id);
      Hashtbl.replace seen s.Stmt.id ())
    stmts;
  { label; stmts }

let of_rhs ?label pairs =
  make ?label
    (List.mapi (fun i (lhs, rhs) -> Stmt.make ~id:(i + 1) ~lhs ~rhs) pairs)

let find b id = List.find (fun (s : Stmt.t) -> s.Stmt.id = id) b.stmts
let stmt_ids b = List.map (fun (s : Stmt.t) -> s.Stmt.id) b.stmts
let size b = List.length b.stmts

let position b id =
  let rec go i = function
    | [] -> raise Not_found
    | (s : Stmt.t) :: _ when s.Stmt.id = id -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 b.stmts

let depends b p q =
  let ip = position b p and iq = position b q in
  if ip >= iq then invalid_arg "Block.depends: first statement must precede second";
  Stmt.depends (find b p) (find b q)

let dep_pairs b =
  let rec go acc = function
    | [] -> List.rev acc
    | (s : Stmt.t) :: rest ->
        let acc =
          List.fold_left
            (fun acc (s' : Stmt.t) ->
              if Stmt.depends s s' then (s.Stmt.id, s'.Stmt.id) :: acc else acc)
            acc rest
        in
        go acc rest
  in
  go [] b.stmts

let dep_graph b =
  let g = Graph.Directed.create () in
  List.iter (fun (s : Stmt.t) -> Graph.Directed.add_node g s.Stmt.id ()) b.stmts;
  List.iter (fun (p, q) -> Graph.Directed.add_edge g p q) (dep_pairs b);
  g

let independent b p q =
  let ip = position b p and iq = position b q in
  if ip = iq then false
  else
    let first, second = if ip < iq then (p, q) else (q, p) in
    not (Stmt.depends (find b first) (find b second))

let dedup_sorted l = List.sort_uniq String.compare l

let scalar_uses b =
  List.concat_map
    (fun (s : Stmt.t) ->
      List.filter_map
        (function Operand.Scalar v -> Some v | Operand.Const _ | Operand.Elem _ -> None)
        (Stmt.uses s)
      @ List.concat_map Operand.used_vars
          (match s.Stmt.lhs with Operand.Elem _ as e -> [ e ] | _ -> []))
    b.stmts
  |> dedup_sorted

let scalar_defs b =
  List.filter_map
    (fun (s : Stmt.t) ->
      match s.Stmt.lhs with
      | Operand.Scalar v -> Some v
      | Operand.Const _ | Operand.Elem _ -> None)
    b.stmts
  |> dedup_sorted

let live_out_candidates = scalar_defs

let pp ppf b =
  Format.fprintf ppf "@[<v>%s:@," b.label;
  List.iter (fun s -> Format.fprintf ppf "  %a@," Stmt.pp s) b.stmts;
  Format.fprintf ppf "@]"

let to_string b = Format.asprintf "%a" pp b
