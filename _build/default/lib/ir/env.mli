(** Declaration environment: scalar and array symbol tables.

    Isomorphism requires corresponding operands to "have the same data
    type" (paper §2); the environment answers type queries, and its
    array dimensions feed the memory-adjacency test used by the
    baseline SLP seeds and the pack cost model. *)

type array_info = { elem_ty : Types.scalar_ty; dims : int list }
(** Row-major array; [dims] outermost first, all positive. *)

type t

val create : unit -> t
val copy : t -> t

val declare_scalar : t -> string -> Types.scalar_ty -> unit
(** Raises [Invalid_argument] when redeclared with a different type or
    when the name is already an array. *)

val declare_array : t -> string -> Types.scalar_ty -> int list -> unit

val scalar_ty : t -> string -> Types.scalar_ty option
val array_info : t -> string -> array_info option
val is_declared : t -> string -> bool

val operand_ty : t -> Operand.t -> Types.scalar_ty option
(** [None] for constants (they unify with any type) — raises
    [Invalid_argument] on undeclared variables. *)

val compatible_ty : t -> Operand.t -> Operand.t -> bool
(** Equal declared types, or at least one side is a constant. *)

val row_size : t -> string -> int list
(** Dimension list for the adjacency test; raises on unknown arrays. *)

val scalars : t -> (string * Types.scalar_ty) list
(** Sorted by name. *)

val arrays : t -> (string * array_info) list
val pp : Format.formatter -> t -> unit
