type scalar_ty = I8 | I16 | I32 | I64 | F32 | F64

let bits = function I8 -> 8 | I16 -> 16 | I32 -> 32 | I64 -> 64 | F32 -> 32 | F64 -> 64
let bytes ty = bits ty / 8
let is_float = function F32 | F64 -> true | I8 | I16 | I32 | I64 -> false

let scalar_ty_to_string = function
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let scalar_ty_of_string = function
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "f32" -> Some F32
  | "f64" -> Some F64
  | _ -> None

let pp_scalar_ty ppf ty = Format.pp_print_string ppf (scalar_ty_to_string ty)

type binop = Add | Sub | Mul | Div | Min | Max

type unop = Neg | Abs | Sqrt

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"

let unop_to_string = function Neg -> "-" | Abs -> "abs" | Sqrt -> "sqrt"
let pp_binop ppf op = Format.pp_print_string ppf (binop_to_string op)
let pp_unop ppf op = Format.pp_print_string ppf (unop_to_string op)

let eval_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let eval_unop op a =
  match op with Neg -> -.a | Abs -> Float.abs a | Sqrt -> Float.sqrt a

let all_binops = [ Add; Sub; Mul; Div; Min; Max ]
let all_unops = [ Neg; Abs; Sqrt ]
let all_scalar_tys = [ I8; I16; I32; I64; F32; F64 ]
