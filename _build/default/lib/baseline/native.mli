(** A deliberately conservative auto-vectorizer standing in for the
    "Native" compiler bars of the paper's Figure 16.

    Packs statement runs only when every operand position is either a
    contiguous aligned-stride array pack, an identical scalar
    (broadcast), or a constant — the classic contiguous-only loop
    vectorizer behaviour.  No reuse search, no permutations. *)

open Slp_ir

val group : env:Env.t -> config:Slp_core.Config.t -> Block.t -> Slp_core.Grouping.result

val plan_block :
  ?params:Slp_core.Cost.params ->
  env:Env.t ->
  config:Slp_core.Config.t ->
  query:Slp_core.Cost.query ->
  nest:string list ->
  Block.t ->
  Slp_core.Driver.block_plan
