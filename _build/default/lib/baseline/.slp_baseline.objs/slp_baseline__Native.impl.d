lib/baseline/native.ml: Array Block Env Hashtbl Larsen List Operand Printf Slp_core Slp_ir Stmt
