lib/baseline/larsen.mli: Block Env Slp_core Slp_ir
