lib/baseline/larsen.ml: Array Block Env Hashtbl List Operand Printf Queue Slp_analysis Slp_core Slp_ir Slp_util Stmt String
