lib/baseline/native.mli: Block Env Slp_core Slp_ir
