(** The Larsen & Amarasinghe SLP algorithm (PLDI 2000) — the paper's
    comparison baseline ("SLP" in the evaluation).

    Seeds: isomorphic independent statement pairs with adjacent memory
    references, committed greedily in program order.  Extension:
    def-use and use-def chains from committed packs.  Combination:
    adjacent packs merge until the datapath is filled.  Scheduling:
    dependence-respecting program order with lanes fixed by memory
    address — no global reuse analysis and no reuse-driven reordering,
    which is precisely what the holistic framework improves on. *)

open Slp_ir

val group : env:Env.t -> config:Slp_core.Config.t -> Block.t -> Slp_core.Grouping.result
(** The packs found (ordered member lists recorded as groups) plus
    leftover singles.  [decisions] counts committed pairs/merges. *)

val schedule :
  env:Env.t ->
  config:Slp_core.Config.t ->
  Block.t ->
  Slp_core.Grouping.result ->
  Slp_core.Schedule.t
(** Program-order topological emission; lane order as committed (the
    group member lists are already ordered by address). *)

val plan_block :
  ?params:Slp_core.Cost.params ->
  env:Env.t ->
  config:Slp_core.Config.t ->
  query:Slp_core.Cost.query ->
  nest:string list ->
  Block.t ->
  Slp_core.Driver.block_plan
(** Group, schedule, then apply the same profitability gate as the
    holistic optimizer. *)
