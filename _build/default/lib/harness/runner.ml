module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Suite = Slp_benchmarks.Suite

type key = {
  bench : string;
  scheme : Pipeline.scheme;
  machine_name : string;
  simd_bits : int;
  cores : int;
}

type measurement = {
  key : key;
  counters : Slp_vm.Counters.t;
  correct : bool;
  compile_seconds : float;
  replica_count : int;
}

let cache : (key, measurement) Hashtbl.t = Hashtbl.create 128

let measure ?(cores = 1) ~machine ~scheme (b : Suite.t) =
  let key =
    {
      bench = b.Suite.name;
      scheme;
      machine_name = machine.Machine.name;
      simd_bits = machine.Machine.simd_bits;
      cores;
    }
  in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
      let prog = Suite.program b in
      let unroll = max 1 (b.Suite.unroll * machine.Machine.simd_bits / 128) in
      let compiled = Pipeline.compile ~unroll ~scheme ~machine prog in
      let r = Pipeline.execute ~cores ~check:(cores = 1) compiled in
      let m =
        {
          key;
          counters = r.Pipeline.counters;
          correct = r.Pipeline.correct;
          compile_seconds = compiled.Pipeline.compile_seconds;
          replica_count = compiled.Pipeline.replica_count;
        }
      in
      Hashtbl.replace cache key m;
      m

let cycles m = Slp_vm.Counters.total_cycles m.counters

let reduction ~baseline m = 1.0 -. (cycles m /. cycles baseline)

let clear_cache () = Hashtbl.reset cache
