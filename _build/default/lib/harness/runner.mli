(** Shared measurement infrastructure for the experiment harness.

    Compiles and simulates benchmark kernels under the five schemes,
    memoising results within a process (several figures share the same
    underlying runs).  All measurements are deterministic: fixed seed,
    fixed machine models, no wall-clock dependence (except the
    compile-time experiment, which measures the optimizer itself). *)

open Slp_pipeline

type key = {
  bench : string;
  scheme : Pipeline.scheme;
  machine_name : string;
  simd_bits : int;
  cores : int;
}

type measurement = {
  key : key;
  counters : Slp_vm.Counters.t;
  correct : bool;
  compile_seconds : float;
  replica_count : int;
}

val measure :
  ?cores:int ->
  machine:Slp_machine.Machine.t ->
  scheme:Pipeline.scheme ->
  Slp_benchmarks.Suite.t ->
  measurement
(** Memoised per (bench, scheme, machine, simd width, cores).  The
    unroll factor scales with the datapath
    ([kernel unroll × simd_bits / 128]) so wider machines get filled. *)

val cycles : measurement -> float

val reduction : baseline:measurement -> measurement -> float
(** Execution-time reduction [1 - m/baseline] (the paper's y-axis). *)

val clear_cache : unit -> unit
