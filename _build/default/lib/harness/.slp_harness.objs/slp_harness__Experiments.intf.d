lib/harness/experiments.mli:
