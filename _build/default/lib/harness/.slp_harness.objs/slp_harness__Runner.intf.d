lib/harness/runner.mli: Pipeline Slp_benchmarks Slp_machine Slp_pipeline Slp_vm
