lib/harness/experiments.ml: Float List Printf Runner Slp_benchmarks Slp_core Slp_machine Slp_pipeline Slp_util Slp_vm String Sys
