lib/harness/runner.ml: Hashtbl Slp_benchmarks Slp_machine Slp_pipeline Slp_vm
