exception Error of string * int * int

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let keyword_of_string s =
  match s with
  | "for" -> Some Token.Kw_for
  | "to" -> Some Token.Kw_to
  | "step" -> Some Token.Kw_step
  | "min" -> Some Token.Kw_min
  | "max" -> Some Token.Kw_max
  | "sqrt" -> Some Token.Kw_sqrt
  | "abs" -> Some Token.Kw_abs
  | _ ->
      Option.map (fun ty -> Token.Kw_type ty) (Slp_ir.Types.scalar_ty_of_string s)

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let out = ref [] in
  let emit token l c = out := { Token.token; line = l; col = c } :: !out in
  let advance () =
    (if src.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    let l = !line and cl = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' || (c = '/' && peek 1 = Some '/') then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do advance () done;
      let is_float = ref false in
      if !pos < n && src.[!pos] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        is_float := true;
        advance ();
        while !pos < n && is_digit src.[!pos] do advance () done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        advance ();
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then advance ();
        if not (!pos < n && is_digit src.[!pos]) then
          raise (Error ("malformed exponent", !line, !col));
        while !pos < n && is_digit src.[!pos] do advance () done
      end;
      let text = String.sub src start (!pos - start) in
      if !is_float then emit (Token.Float (float_of_string text)) l cl
      else emit (Token.Int (int_of_string text)) l cl
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && is_alnum src.[!pos] do advance () done;
      let text = String.sub src start (!pos - start) in
      match keyword_of_string text with
      | Some kw -> emit kw l cl
      | None -> emit (Token.Ident text) l cl
    end
    else begin
      let simple tok =
        advance ();
        emit tok l cl
      in
      match c with
      | '(' -> simple Token.Lparen
      | ')' -> simple Token.Rparen
      | '{' -> simple Token.Lbrace
      | '}' -> simple Token.Rbrace
      | '[' -> simple Token.Lbracket
      | ']' -> simple Token.Rbracket
      | '+' -> simple Token.Plus
      | '-' -> simple Token.Minus
      | '*' -> simple Token.Star
      | '/' -> simple Token.Slash
      | '=' -> simple Token.Assign
      | ',' -> simple Token.Comma
      | ';' -> simple Token.Semicolon
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, l, cl))
    end
  done;
  emit Token.Eof !line !col;
  List.rev !out
