lib/frontend/parser.mli: Slp_ir
