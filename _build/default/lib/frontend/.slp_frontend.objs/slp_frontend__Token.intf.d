lib/frontend/token.mli: Slp_ir
