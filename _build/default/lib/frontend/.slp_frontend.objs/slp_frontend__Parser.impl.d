lib/frontend/parser.ml: Affine Array Block Env Expr Filename Float Format Lexer List Operand Printf Program Slp_ir Stmt Token Types
