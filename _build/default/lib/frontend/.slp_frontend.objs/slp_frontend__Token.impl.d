lib/frontend/token.ml: Printf Slp_ir
