lib/frontend/lexer.ml: List Option Printf Slp_ir String Token
