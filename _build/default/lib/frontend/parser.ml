open Slp_ir

exception Error of string * int * int

type state = {
  tokens : Token.located array;
  mutable cursor : int;
  env : Env.t;
  mutable next_block : int;
}

let current st = st.tokens.(st.cursor)
let peek_token st = (current st).Token.token

let fail st fmt =
  let { Token.line; col; _ } = current st in
  Format.kasprintf (fun msg -> raise (Error (msg, line, col))) fmt

let advance st = if st.cursor < Array.length st.tokens - 1 then st.cursor <- st.cursor + 1

let expect st tok =
  if peek_token st = tok then advance st
  else
    fail st "expected %s, found %s" (Token.to_string tok)
      (Token.to_string (peek_token st))

let expect_ident st =
  match peek_token st with
  | Token.Ident name ->
      advance st;
      name
  | other -> fail st "expected an identifier, found %s" (Token.to_string other)

let expect_int st =
  match peek_token st with
  | Token.Int n ->
      advance st;
      n
  | other -> fail st "expected an integer, found %s" (Token.to_string other)

(* -- expressions --------------------------------------------------- *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let rec loop acc =
    match peek_token st with
    | Token.Plus ->
        advance st;
        loop (Expr.Bin (Types.Add, acc, parse_multiplicative st))
    | Token.Minus ->
        advance st;
        loop (Expr.Bin (Types.Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek_token st with
    | Token.Star ->
        advance st;
        loop (Expr.Bin (Types.Mul, acc, parse_unary st))
    | Token.Slash ->
        advance st;
        loop (Expr.Bin (Types.Div, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek_token st with
  | Token.Minus ->
      advance st;
      Expr.Un (Types.Neg, parse_unary st)
  | Token.Kw_sqrt ->
      advance st;
      expect st Token.Lparen;
      let e = parse_expr st in
      expect st Token.Rparen;
      Expr.Un (Types.Sqrt, e)
  | Token.Kw_abs ->
      advance st;
      expect st Token.Lparen;
      let e = parse_expr st in
      expect st Token.Rparen;
      Expr.Un (Types.Abs, e)
  | Token.Kw_min | Token.Kw_max ->
      let op = if peek_token st = Token.Kw_min then Types.Min else Types.Max in
      advance st;
      expect st Token.Lparen;
      let a = parse_expr st in
      expect st Token.Comma;
      let b = parse_expr st in
      expect st Token.Rparen;
      Expr.Bin (op, a, b)
  | _ -> parse_primary st

and parse_primary st =
  match peek_token st with
  | Token.Int n ->
      advance st;
      Expr.Leaf (Operand.Const (float_of_int n))
  | Token.Float f ->
      advance st;
      Expr.Leaf (Operand.Const f)
  | Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Ident _ ->
      let name = expect_ident st in
      let subscripts = parse_subscripts st in
      if subscripts = [] then Expr.Leaf (Operand.Scalar name)
      else Expr.Leaf (Operand.Elem (name, subscripts))
  | other -> fail st "expected an expression, found %s" (Token.to_string other)

(* -- affine conversion --------------------------------------------- *)

and affine_of_expr st e =
  let rec go = function
    | Expr.Leaf (Operand.Const f) ->
        if Float.is_integer f then Affine.const (int_of_float f)
        else fail st "non-integer constant %g in affine context" f
    | Expr.Leaf (Operand.Scalar v) -> Affine.var v
    | Expr.Leaf (Operand.Elem (b, _)) ->
        fail st "array reference %s not allowed in affine context" b
    | Expr.Un (Types.Neg, e) -> Affine.neg (go e)
    | Expr.Un ((Types.Abs | Types.Sqrt), _) ->
        fail st "non-affine operator in subscript or bound"
    | Expr.Bin (Types.Add, a, b) -> Affine.add (go a) (go b)
    | Expr.Bin (Types.Sub, a, b) -> Affine.sub (go a) (go b)
    | Expr.Bin (Types.Mul, a, b) -> begin
        let aa = go a and ab = go b in
        match (Affine.to_const aa, Affine.to_const ab) with
        | Some k, _ -> Affine.scale k ab
        | _, Some k -> Affine.scale k aa
        | None, None -> fail st "non-linear subscript or bound"
      end
    | Expr.Bin ((Types.Div | Types.Min | Types.Max), _, _) ->
        fail st "non-affine operator in subscript or bound"
  in
  go e

and parse_subscripts st =
  let rec loop acc =
    match peek_token st with
    | Token.Lbracket ->
        advance st;
        let e = parse_expr st in
        expect st Token.Rbracket;
        loop (affine_of_expr st e :: acc)
    | _ -> List.rev acc
  in
  loop []

(* -- declarations, statements, loops ------------------------------- *)

let parse_decl st ty =
  let name = expect_ident st in
  let rec dims acc =
    match peek_token st with
    | Token.Lbracket ->
        advance st;
        let d = expect_int st in
        expect st Token.Rbracket;
        dims (d :: acc)
    | _ -> List.rev acc
  in
  let ds = dims [] in
  (try
     if ds = [] then Env.declare_scalar st.env name ty
     else Env.declare_array st.env name ty ds
   with Invalid_argument msg -> fail st "%s" msg);
  expect st Token.Semicolon

let parse_stmt st ~next_id =
  let name = expect_ident st in
  let subscripts = parse_subscripts st in
  let lhs =
    if subscripts = [] then Operand.Scalar name else Operand.Elem (name, subscripts)
  in
  expect st Token.Assign;
  let rhs = parse_expr st in
  expect st Token.Semicolon;
  Stmt.make ~id:next_id ~lhs ~rhs

let rec parse_items st =
  let items = ref [] in
  let pending = ref [] in
  let next_id = ref 1 in
  let flush () =
    if !pending <> [] then begin
      let label = Printf.sprintf "bb%d" st.next_block in
      st.next_block <- st.next_block + 1;
      items := Program.Stmts (Block.make ~label (List.rev !pending)) :: !items;
      pending := []
    end
  in
  let rec loop () =
    match peek_token st with
    | Token.Ident _ ->
        pending := parse_stmt st ~next_id:!next_id :: !pending;
        incr next_id;
        loop ()
    | Token.Kw_for ->
        flush ();
        next_id := 1;
        advance st;
        let index = expect_ident st in
        expect st Token.Assign;
        let lo = affine_of_expr st (parse_expr st) in
        expect st Token.Kw_to;
        let hi = affine_of_expr st (parse_expr st) in
        let step =
          if peek_token st = Token.Kw_step then begin
            advance st;
            expect_int st
          end
          else 1
        in
        if step <= 0 then fail st "loop step must be positive";
        expect st Token.Lbrace;
        let body = parse_items st in
        expect st Token.Rbrace;
        items := Program.Loop { Program.index; lo; hi; step; body } :: !items;
        loop ()
    | _ -> ()
  in
  loop ();
  flush ();
  List.rev !items

let parse ~name src =
  let tokens =
    try Array.of_list (Lexer.tokenize src)
    with Lexer.Error (msg, line, col) -> raise (Error (msg, line, col))
  in
  let st = { tokens; cursor = 0; env = Env.create (); next_block = 1 } in
  (* Declarations first: every leading type keyword opens a decl. *)
  let rec decls () =
    match peek_token st with
    | Token.Kw_type ty ->
        advance st;
        parse_decl st ty;
        decls ()
    | _ -> ()
  in
  decls ();
  let body = parse_items st in
  expect st Token.Eof;
  let program = Program.make ~name ~env:st.env body in
  (match Program.validate program with
  | Ok () -> ()
  | Error msg -> raise (Error (msg, (current st).Token.line, (current st).Token.col)));
  program

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse ~name src
