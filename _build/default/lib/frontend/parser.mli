(** Recursive-descent parser for the kernel language.

    Grammar (comments run to end of line):
    {v
    program   ::= decl* item*
    decl      ::= ty IDENT ("[" INT "]")* ";"
    item      ::= stmt | loop
    loop      ::= "for" IDENT "=" aff "to" aff ("step" INT)? "{" item* "}"
    stmt      ::= lvalue "=" expr ";"
    lvalue    ::= IDENT ("[" aff "]")*
    expr      ::= additive with "+ - * /", unary "-", "sqrt(e)",
                  "abs(e)", "min(e,e)", "max(e,e)", parentheses
    aff       ::= expr restricted to affine forms over loop indices
    v}

    Loop upper bounds are exclusive ([for i = 0 to n] runs [n] times).
    Consecutive statements form one basic block. *)

exception Error of string * int * int

val parse : name:string -> string -> Slp_ir.Program.t
(** Parses and validates; raises [Error] on syntax or semantic
    problems. *)

val parse_file : string -> Slp_ir.Program.t
(** [parse_file path] with the program named after the basename. *)
