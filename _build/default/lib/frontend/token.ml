type t =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_for
  | Kw_to
  | Kw_step
  | Kw_min
  | Kw_max
  | Kw_sqrt
  | Kw_abs
  | Kw_type of Slp_ir.Types.scalar_ty
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Plus
  | Minus
  | Star
  | Slash
  | Assign
  | Comma
  | Semicolon
  | Eof

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Float f -> Printf.sprintf "float %g" f
  | Kw_for -> "'for'"
  | Kw_to -> "'to'"
  | Kw_step -> "'step'"
  | Kw_min -> "'min'"
  | Kw_max -> "'max'"
  | Kw_sqrt -> "'sqrt'"
  | Kw_abs -> "'abs'"
  | Kw_type ty -> Printf.sprintf "type %s" (Slp_ir.Types.scalar_ty_to_string ty)
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Assign -> "'='"
  | Comma -> "','"
  | Semicolon -> "';'"
  | Eof -> "end of input"

type located = { token : t; line : int; col : int }
