(** Hand-written lexer for the kernel language.

    Comments run from ['#'] or ["//"] to end of line.  Raises
    [Error (message, line, col)] on malformed input. *)

exception Error of string * int * int

val tokenize : string -> Token.located list
(** The result always ends with an [Eof] token. *)
