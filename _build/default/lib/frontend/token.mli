(** Tokens of the kernel language. *)

type t =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_for
  | Kw_to
  | Kw_step
  | Kw_min
  | Kw_max
  | Kw_sqrt
  | Kw_abs
  | Kw_type of Slp_ir.Types.scalar_ty
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Plus
  | Minus
  | Star
  | Slash
  | Assign
  | Comma
  | Semicolon
  | Eof

val to_string : t -> string

type located = { token : t; line : int; col : int }
