(** Small dense matrices over exact rationals.

    The array reference layout optimizer (paper §5.2) manipulates
    memory access matrices [Q] of size m×n: it needs matrix products
    (Q1 = M·Q), inverses of the truncated access matrix Q1' (Equation
    7), and solving Ldefault·M = Lopt (Equation 2).  Matrices here are
    immutable; rows are the first index. *)

type t

val make : int -> int -> (int -> int -> Rat.t) -> t
(** [make rows cols f] builds the matrix with entry [f i j]. *)

val of_int_array : int array array -> t
(** Rows must be non-empty and rectangular; raises [Invalid_argument]
    otherwise. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rat.t
val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
(** Raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Rat.t array -> Rat.t array
val equal : t -> t -> bool

val inverse : t -> t option
(** Gauss-Jordan inverse; [None] when singular or non-square. *)

val determinant : t -> Rat.t
(** Raises [Invalid_argument] when non-square. *)

val solve : t -> Rat.t array -> Rat.t array option
(** [solve a b] returns [x] with [a·x = b] for square nonsingular [a]. *)

val drop_last_row_col : t -> t
(** Remove the last row and last column (Equation 6's truncation).
    Raises [Invalid_argument] on matrices smaller than 2×2. *)

val row : t -> int -> Rat.t array
val col : t -> int -> Rat.t array
val pp : Format.formatter -> t -> unit
