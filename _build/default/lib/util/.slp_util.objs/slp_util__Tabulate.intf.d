lib/util/tabulate.mli:
