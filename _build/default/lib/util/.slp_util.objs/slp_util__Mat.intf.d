lib/util/mat.mli: Format Rat
