lib/util/mat.ml: Array Format Option Rat
