lib/util/prng.mli:
