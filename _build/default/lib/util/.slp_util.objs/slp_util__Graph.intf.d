lib/util/graph.mli:
