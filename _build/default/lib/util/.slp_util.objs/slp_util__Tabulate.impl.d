lib/util/tabulate.ml: Buffer Float List Printf String
