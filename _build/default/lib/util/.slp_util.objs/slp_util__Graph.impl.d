lib/util/graph.ml: Hashtbl Int List Option Printf Set
