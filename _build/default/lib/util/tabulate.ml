let pad s width = s ^ String.make (max 0 (width - String.length s)) ' '

let render ~header ~rows =
  let ncols = List.length header in
  let normalise row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalise rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    String.sub s 0 !n
  in
  let line cells = rtrim (String.concat "  " (List.map2 pad cells widths)) in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let bar_chart ~title ~unit_label ?(max_width = 46) entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let max_abs =
    List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 1e-9 entries
  in
  List.iter
    (fun (label, v) ->
      let n = int_of_float (Float.round (Float.abs v /. max_abs *. float_of_int max_width)) in
      let bar = String.make (max 0 n) (if v >= 0.0 then '#' else '-') in
      Buffer.add_string buf
        (Printf.sprintf "  %s | %s %.1f%s\n" (pad label label_width) bar v unit_label))
    entries;
  Buffer.contents buf

let pct r = Printf.sprintf "%.1f%%" (100.0 *. r)
