(** Exact rational arithmetic over machine integers.

    Used by the data layout optimizer to invert access matrices
    (Equations 6-8 of the paper) without floating point error.  Values
    are kept normalised: positive denominator, reduced by gcd. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den].  Raises [Division_by_zero] if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_int_exn : t -> int
(** Raises [Invalid_argument] if the value is not an integer. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
