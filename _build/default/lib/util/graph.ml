(* Imperative graphs over integer node identifiers.  See graph.mli. *)

module Int_set = Set.Make (Int)

module Undirected = struct
  type 'a node = { mutable label : 'a; mutable adj : (int, float) Hashtbl.t }
  (* [adj] maps neighbour id -> edge weight; symmetric by construction. *)

  type 'a t = { nodes : (int, 'a node) Hashtbl.t }

  let create () = { nodes = Hashtbl.create 64 }

  let find_node g id =
    match Hashtbl.find_opt g.nodes id with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Graph.Undirected: unknown node %d" id)

  let add_node g id label =
    match Hashtbl.find_opt g.nodes id with
    | Some n -> n.label <- label
    | None -> Hashtbl.replace g.nodes id { label; adj = Hashtbl.create 4 }

  let mem_node g id = Hashtbl.mem g.nodes id

  let add_edge ?(weight = 0.0) g u v =
    if u = v then invalid_arg "Graph.Undirected.add_edge: self loop";
    let nu = find_node g u and nv = find_node g v in
    Hashtbl.replace nu.adj v weight;
    Hashtbl.replace nv.adj u weight

  let remove_edge g u v =
    match (Hashtbl.find_opt g.nodes u, Hashtbl.find_opt g.nodes v) with
    | Some nu, Some nv ->
        Hashtbl.remove nu.adj v;
        Hashtbl.remove nv.adj u
    | _ -> ()

  let remove_node g id =
    match Hashtbl.find_opt g.nodes id with
    | None -> ()
    | Some n ->
        Hashtbl.iter
          (fun nb _ ->
            match Hashtbl.find_opt g.nodes nb with
            | Some nn -> Hashtbl.remove nn.adj id
            | None -> ())
          n.adj;
        Hashtbl.remove g.nodes id

  let mem_edge g u v =
    match Hashtbl.find_opt g.nodes u with
    | Some n -> Hashtbl.mem n.adj v
    | None -> false

  let label g id = (find_node g id).label

  let set_weight g u v w =
    if not (mem_edge g u v) then
      invalid_arg "Graph.Undirected.set_weight: no such edge";
    let nu = find_node g u and nv = find_node g v in
    Hashtbl.replace nu.adj v w;
    Hashtbl.replace nv.adj u w

  let weight g u v =
    match Hashtbl.find_opt (find_node g u).adj v with
    | Some w -> w
    | None -> invalid_arg "Graph.Undirected.weight: no such edge"

  let degree g id = Hashtbl.length (find_node g id).adj

  let neighbours g id =
    Hashtbl.fold (fun nb _ acc -> nb :: acc) (find_node g id).adj []
    |> List.sort compare

  let nodes g = Hashtbl.fold (fun id _ acc -> id :: acc) g.nodes [] |> List.sort compare

  let edges g =
    Hashtbl.fold
      (fun u n acc ->
        Hashtbl.fold (fun v w acc -> if u <= v then (u, v, w) :: acc else acc) n.adj acc)
      g.nodes []
    |> List.sort compare

  let node_count g = Hashtbl.length g.nodes

  let edge_count g =
    let total = Hashtbl.fold (fun _ n acc -> acc + Hashtbl.length n.adj) g.nodes 0 in
    total / 2

  let is_edgeless g = edge_count g = 0

  let max_degree_node g =
    Hashtbl.fold
      (fun id n best ->
        let d = Hashtbl.length n.adj in
        if d = 0 then best
        else
          match best with
          | Some (bid, bd) when bd > d || (bd = d && bid < id) -> best
          | _ -> Some (id, d))
      g.nodes None
    |> Option.map fst

  let max_weight_edge g =
    List.fold_left
      (fun best (u, v, w) ->
        match best with
        | Some (bu, bv, bw) when bw > w || (bw = w && (bu, bv) < (u, v)) -> best
        | _ -> Some (u, v, w))
      None (edges g)

  let copy g =
    let g' = create () in
    Hashtbl.iter (fun id n -> add_node g' id n.label) g.nodes;
    Hashtbl.iter
      (fun u n -> Hashtbl.iter (fun v w -> if u < v then add_edge ~weight:w g' u v) n.adj)
      g.nodes;
    g'

  let fold_nodes g ~init ~f =
    List.fold_left (fun acc id -> f acc id (label g id)) init (nodes g)
end

module Directed = struct
  type 'a node = {
    mutable label : 'a;
    mutable succ : Int_set.t;
    mutable pred : Int_set.t;
  }

  type 'a t = { nodes : (int, 'a node) Hashtbl.t }

  let create () = { nodes = Hashtbl.create 64 }

  let find_node g id =
    match Hashtbl.find_opt g.nodes id with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Graph.Directed: unknown node %d" id)

  let add_node g id label =
    match Hashtbl.find_opt g.nodes id with
    | Some n -> n.label <- label
    | None ->
        Hashtbl.replace g.nodes id { label; succ = Int_set.empty; pred = Int_set.empty }

  let mem_node g id = Hashtbl.mem g.nodes id

  let add_edge g u v =
    if u = v then invalid_arg "Graph.Directed.add_edge: self loop";
    let nu = find_node g u and nv = find_node g v in
    nu.succ <- Int_set.add v nu.succ;
    nv.pred <- Int_set.add u nv.pred

  let remove_node g id =
    match Hashtbl.find_opt g.nodes id with
    | None -> ()
    | Some n ->
        let detach other f =
          match Hashtbl.find_opt g.nodes other with
          | Some nn -> f nn
          | None -> ()
        in
        Int_set.iter (fun s -> detach s (fun nn -> nn.pred <- Int_set.remove id nn.pred)) n.succ;
        Int_set.iter (fun p -> detach p (fun nn -> nn.succ <- Int_set.remove id nn.succ)) n.pred;
        Hashtbl.remove g.nodes id

  let mem_edge g u v =
    match Hashtbl.find_opt g.nodes u with
    | Some n -> Int_set.mem v n.succ
    | None -> false

  let label g id = (find_node g id).label
  let succs g id = Int_set.elements (find_node g id).succ
  let preds g id = Int_set.elements (find_node g id).pred
  let in_degree g id = Int_set.cardinal (find_node g id).pred
  let out_degree g id = Int_set.cardinal (find_node g id).succ
  let nodes g = Hashtbl.fold (fun id _ acc -> id :: acc) g.nodes [] |> List.sort compare
  let node_count g = Hashtbl.length g.nodes

  let edge_count g =
    Hashtbl.fold (fun _ n acc -> acc + Int_set.cardinal n.succ) g.nodes 0

  let sources g =
    nodes g |> List.filter (fun id -> in_degree g id = 0)

  let reachable g u v =
    if not (mem_node g u && mem_node g v) then false
    else begin
      let visited = Hashtbl.create 16 in
      let rec dfs x =
        x = v
        || (not (Hashtbl.mem visited x)
           && begin
                Hashtbl.replace visited x ();
                Int_set.exists dfs (find_node g x).succ
              end)
      in
      dfs u
    end

  let topological_order g =
    let indeg = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace indeg id (in_degree g id)) (nodes g);
    let module Pq = Set.Make (Int) in
    let ready = ref (Pq.of_list (sources g)) in
    let order = ref [] in
    let count = ref 0 in
    while not (Pq.is_empty !ready) do
      let id = Pq.min_elt !ready in
      ready := Pq.remove id !ready;
      order := id :: !order;
      incr count;
      List.iter
        (fun s ->
          let d = Hashtbl.find indeg s - 1 in
          Hashtbl.replace indeg s d;
          if d = 0 then ready := Pq.add s !ready)
        (succs g id)
    done;
    if !count = node_count g then Some (List.rev !order) else None

  let has_cycle g = Option.is_none (topological_order g)

  let copy g =
    let g' = create () in
    Hashtbl.iter (fun id n -> add_node g' id n.label) g.nodes;
    Hashtbl.iter (fun u n -> Int_set.iter (fun v -> add_edge g' u v) n.succ) g.nodes;
    g'
end
