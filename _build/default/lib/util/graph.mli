(** Imperative graphs over integer node identifiers.

    The SLP framework manipulates four graphs: the variable pack
    conflicting graph and the statement grouping graph (both undirected,
    the latter edge-weighted), the per-candidate auxiliary graph
    (undirected), and the superword statement dependence graph
    (directed).  This module provides the two graph flavours they need.

    Node identifiers are arbitrary non-negative integers chosen by the
    caller; each node carries a polymorphic label. *)

module Undirected : sig
  type 'a t
  (** Undirected graph with ['a]-labelled nodes and float-weighted
      edges.  Parallel edges are collapsed; self loops are rejected. *)

  val create : unit -> 'a t

  val add_node : 'a t -> int -> 'a -> unit
  (** [add_node g id label] adds node [id].  Replaces the label if the
      node already exists (edges are kept). *)

  val add_edge : ?weight:float -> 'a t -> int -> int -> unit
  (** Adds an edge between two existing nodes.  Raises
      [Invalid_argument] on self loops or unknown endpoints.  Re-adding
      an edge overwrites its weight. *)

  val remove_node : 'a t -> int -> unit
  (** Removes a node and all incident edges.  No-op if absent. *)

  val remove_edge : 'a t -> int -> int -> unit

  val mem_node : 'a t -> int -> bool
  val mem_edge : 'a t -> int -> int -> bool
  val label : 'a t -> int -> 'a
  val set_weight : 'a t -> int -> int -> float -> unit
  val weight : 'a t -> int -> int -> float
  val degree : 'a t -> int -> int
  val neighbours : 'a t -> int -> int list
  val nodes : 'a t -> int list
  val edges : 'a t -> (int * int * float) list
  (** Each undirected edge is reported once, with [fst <= snd]. *)

  val node_count : 'a t -> int
  val edge_count : 'a t -> int
  val is_edgeless : 'a t -> bool

  val max_degree_node : 'a t -> int option
  (** Node with the largest degree (>= 1); ties broken by the smallest
      identifier, making algorithms deterministic.  [None] if the graph
      has no edges. *)

  val max_weight_edge : 'a t -> (int * int * float) option
  (** Edge with the largest weight; ties broken by smallest endpoint
      pair.  [None] if there are no edges. *)

  val copy : 'a t -> 'a t
  val fold_nodes : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
end

module Directed : sig
  type 'a t
  (** Directed undecorated graph with ['a]-labelled nodes. *)

  val create : unit -> 'a t
  val add_node : 'a t -> int -> 'a -> unit
  val add_edge : 'a t -> int -> int -> unit
  (** [add_edge g u v] adds the arc [u -> v].  Self loops rejected. *)

  val remove_node : 'a t -> int -> unit
  val mem_node : 'a t -> int -> bool
  val mem_edge : 'a t -> int -> int -> bool
  val label : 'a t -> int -> 'a
  val succs : 'a t -> int -> int list
  val preds : 'a t -> int -> int list
  val in_degree : 'a t -> int -> int
  val out_degree : 'a t -> int -> int
  val nodes : 'a t -> int list
  val node_count : 'a t -> int
  val edge_count : 'a t -> int

  val sources : 'a t -> int list
  (** Nodes with in-degree zero, in increasing id order ("ready" set of
      a dependence graph). *)

  val has_cycle : 'a t -> bool
  val reachable : 'a t -> int -> int -> bool
  (** [reachable g u v] is true iff there is a directed path from [u]
      to [v] (including the trivial path [u = v]). *)

  val topological_order : 'a t -> int list option
  (** Kahn's algorithm with smallest-id tie breaking; [None] if cyclic. *)

  val copy : 'a t -> 'a t
end
