(** Plain-text table and bar-chart rendering for experiment output.

    The harness prints each reproduced paper table as an aligned ASCII
    table and each figure as a horizontal bar chart, so experiment
    output is readable in a terminal and diffable in EXPERIMENTS.md. *)

val render : header:string list -> rows:string list list -> string
(** Aligned table with a separator under the header.  Rows shorter than
    the header are padded with empty cells. *)

val bar_chart :
  title:string -> unit_label:string -> ?max_width:int -> (string * float) list -> string
(** Horizontal bars, one per (label, value); negative values render as
    a left-pointing bar marked with '-'.  Bars are scaled to
    [max_width] characters (default 46). *)

val pct : float -> string
(** Format a ratio in percent with one decimal, e.g. [0.152] -> "15.2%". *)
