(** Deterministic pseudo-random number generator (splitmix64).

    All workload generators and simulators in this repository draw
    randomness exclusively from explicitly-seeded [Prng.t] values so
    that experiments, tests and benchmarks are reproducible bit-for-bit
    across runs. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A fresh generator with an independent-looking stream, advancing the
    parent by one step. *)
