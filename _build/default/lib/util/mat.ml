type t = { m : Rat.t array array }

let make rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.make: empty matrix";
  { m = Array.init rows (fun i -> Array.init cols (fun j -> f i j)) }

let of_int_array a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_int_array: empty";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_int_array: ragged")
    a;
  make rows cols (fun i j -> Rat.of_int a.(i).(j))

let rows t = Array.length t.m
let cols t = Array.length t.m.(0)
let get t i j = t.m.(i).(j)
let identity n = make n n (fun i j -> if i = j then Rat.one else Rat.zero)
let transpose t = make (cols t) (rows t) (fun i j -> get t j i)

let mul a b =
  if cols a <> rows b then invalid_arg "Mat.mul: dimension mismatch";
  let k = cols a in
  make (rows a) (cols b) (fun i j ->
      let acc = ref Rat.zero in
      for x = 0 to k - 1 do
        acc := Rat.add !acc (Rat.mul (get a i x) (get b x j))
      done;
      !acc)

let mul_vec a v =
  if cols a <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init (rows a) (fun i ->
      let acc = ref Rat.zero in
      for j = 0 to cols a - 1 do
        acc := Rat.add !acc (Rat.mul (get a i j) v.(j))
      done;
      !acc)

let equal a b =
  rows a = rows b && cols a = cols b
  &&
  let ok = ref true in
  for i = 0 to rows a - 1 do
    for j = 0 to cols a - 1 do
      if not (Rat.equal (get a i j) (get b i j)) then ok := false
    done
  done;
  !ok

(* Gauss-Jordan elimination over an augmented copy.  Returns the
   reduced augmentation, or None if a pivot cannot be found. *)
let gauss_jordan a aug_cols aug =
  let n = rows a in
  if cols a <> n then None
  else begin
    let w = n + aug_cols in
    let work =
      Array.init n (fun i ->
          Array.init w (fun j -> if j < n then get a i j else aug i (j - n)))
    in
    let singular = ref false in
    (for col = 0 to n - 1 do
       if not !singular then begin
         (* Find a pivot row. *)
         let pivot = ref (-1) in
         for r = col to n - 1 do
           if !pivot = -1 && not (Rat.is_zero work.(r).(col)) then pivot := r
         done;
         if !pivot = -1 then singular := true
         else begin
           let p = !pivot in
           if p <> col then begin
             let tmp = work.(p) in
             work.(p) <- work.(col);
             work.(col) <- tmp
           end;
           let inv = Rat.div Rat.one work.(col).(col) in
           for j = 0 to w - 1 do
             work.(col).(j) <- Rat.mul work.(col).(j) inv
           done;
           for r = 0 to n - 1 do
             if r <> col && not (Rat.is_zero work.(r).(col)) then begin
               let factor = work.(r).(col) in
               for j = 0 to w - 1 do
                 work.(r).(j) <-
                   Rat.sub work.(r).(j) (Rat.mul factor work.(col).(j))
               done
             end
           done
         end
       end
     done);
    if !singular then None
    else Some (make n aug_cols (fun i j -> work.(i).(j + n)))
  end

let inverse a =
  if rows a <> cols a then None
  else gauss_jordan a (rows a) (fun i j -> if i = j then Rat.one else Rat.zero)

let determinant a =
  let n = rows a in
  if cols a <> n then invalid_arg "Mat.determinant: non-square";
  let work = Array.init n (fun i -> Array.init n (fun j -> get a i j)) in
  let det = ref Rat.one in
  let singular = ref false in
  for col = 0 to n - 1 do
    if not !singular then begin
      let pivot = ref (-1) in
      for r = col to n - 1 do
        if !pivot = -1 && not (Rat.is_zero work.(r).(col)) then pivot := r
      done;
      if !pivot = -1 then singular := true
      else begin
        let p = !pivot in
        if p <> col then begin
          let tmp = work.(p) in
          work.(p) <- work.(col);
          work.(col) <- tmp;
          det := Rat.neg !det
        end;
        det := Rat.mul !det work.(col).(col);
        let inv = Rat.div Rat.one work.(col).(col) in
        for r = col + 1 to n - 1 do
          if not (Rat.is_zero work.(r).(col)) then begin
            let factor = Rat.mul work.(r).(col) inv in
            for j = col to n - 1 do
              work.(r).(j) <- Rat.sub work.(r).(j) (Rat.mul factor work.(col).(j))
            done
          end
        done
      end
    end
  done;
  if !singular then Rat.zero else !det

let solve a b =
  if rows a <> Array.length b then None
  else
    gauss_jordan a 1 (fun i _ -> b.(i))
    |> Option.map (fun sol -> Array.init (rows a) (fun i -> get sol i 0))

let drop_last_row_col a =
  if rows a < 2 || cols a < 2 then invalid_arg "Mat.drop_last_row_col: too small";
  make (rows a - 1) (cols a - 1) (fun i j -> get a i j)

let row a i = Array.init (cols a) (fun j -> get a i j)
let col a j = Array.init (rows a) (fun i -> get a i j)

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to rows a - 1 do
    Format.fprintf ppf "[";
    for j = 0 to cols a - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Rat.pp ppf (get a i j)
    done;
    Format.fprintf ppf "]";
    if i < rows a - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
