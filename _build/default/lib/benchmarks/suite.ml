type suite = Spec2006 | Nas

type t = {
  name : string;
  suite : suite;
  description : string;
  source : string;
  unroll : int;
  multicore : bool;
}

(* ------------------------------------------------------------------ *)
(* SPEC2006 kernels (single-core, outer time loop).                    *)
(* ------------------------------------------------------------------ *)

(* Einstein evolution: metric updates through a web of shared
   temporaries over interleaved field components — exactly the paper's
   Figure 15 block, with the strided metric coefficients a data layout
   target. *)
let cactus_adm =
  {|
f64 A[2200];
f64 B[4400];
f64 C[2200];
f64 a; f64 b; f64 c; f64 d; f64 g; f64 h; f64 q; f64 r;
q = 0.7;
r = 0.3;
for t = 0 to 64 {
  for i = 1 to 1024 {
    a = A[2*i];
    b = A[2*i+1];
    c = a * B[4*i];
    d = b * B[4*i+4];
    g = q * B[4*i-2];
    h = r * B[4*i+2];
    C[2*i] = d + a * c;
    C[2*i+1] = g + r * h;
  }
}
|}

(* Simplex pivot: a row update plus a serial norm accumulation that
   cannot be vectorized. *)
let soplex =
  {|
f64 y[1056];
f64 col[1056];
f64 piv[1056];
f64 alpha; f64 acc;
for t = 0 to 8 {
  for i = 0 to 1024 {
    alpha = piv[i] * 0.125;
    y[i] = y[i] - alpha * col[i];
    acc = acc + alpha * alpha;
  }
}
|}

(* Lattice Boltzmann: four distribution streams, fully contiguous —
   every vectorizer finds the same packs. *)
let lbm =
  {|
f64 f0[1056];
f64 f1[1056];
f64 f2[1056];
f64 f3[1056];
f64 rho[1056];
for t = 0 to 8 {
  for i = 0 to 1024 {
    rho[i] = f0[i] + f1[i] + f2[i] + f3[i];
    f0[i] = f0[i] + 0.6 * (0.25 * rho[i] - f0[i]);
    f1[i] = f1[i] + 0.6 * (0.25 * rho[i] - f1[i]);
    f2[i] = f2[i] + 0.6 * (0.25 * rho[i] - f2[i]);
    f3[i] = f3[i] + 0.6 * (0.25 * rho[i] - f3[i]);
  }
}
|}

(* SU(3) lattice gauge arithmetic: interleaved complex multiply; the
   imaginary-part superword is the real-part superword permuted. *)
let milc =
  {|
f64 ax[2080];
f64 bx[2080];
f64 cx[2080];
for t = 0 to 8 {
  for i = 0 to 1024 {
    cx[2*i]   = ax[2*i] * bx[2*i]   - ax[2*i+1] * bx[2*i+1];
    cx[2*i+1] = ax[2*i] * bx[2*i+1] + ax[2*i+1] * bx[2*i];
  }
}
|}

(* Ray shading: single-precision dot products and clamps; privatised
   temporaries form four-wide scalar superwords. *)
let povray =
  {|
f32 nx[1088];
f32 ny[1088];
f32 nz[1088];
f32 out[1088];
f32 dif; f32 spec;
for t = 0 to 8 {
  for i = 0 to 1024 {
    dif = nx[i] * 0.57 + ny[i] * 0.57 + nz[i] * 0.57;
    spec = dif * dif;
    out[i] = max(0.0, dif + 0.5 * spec);
  }
}
|}

(* Molecular dynamics pair forces: displacement temporaries reused by
   the energy and force statements; interaction coefficients sit at
   stride four (a data-layout target). *)
let gromacs =
  {|
f64 x[2112];
f64 f[2112];
f64 coef[4400];
f64 dx; f64 dy; f64 e1; f64 e2;
for t = 0 to 16 {
  for i = 1 to 1024 {
    dx = x[2*i] - x[2*i-2];
    dy = x[2*i+1] - x[2*i-1];
    e1 = dx * coef[4*i];
    e2 = dy * coef[4*i+2];
    f[2*i] = f[2*i] + dx * e1;
    f[2*i+1] = f[2*i+1] + dy * e2;
  }
}
|}

(* Finite-element stiffness application: 2x2 blocks stored row-major,
   so matrix entries are strided (layout target) while the result
   vector is contiguous. *)
let calculix =
  {|
f64 K[4224];
f64 u[1056];
f64 rhs[1056];
for t = 0 to 16 {
  for i = 0 to 512 {
    rhs[2*i]   = K[4*i]   * u[2*i] + K[4*i+1] * u[2*i+1];
    rhs[2*i+1] = K[4*i+2] * u[2*i] + K[4*i+3] * u[2*i+1];
  }
}
|}

(* Adaptive FE library: wide-strided neighbour access plus a serial
   accumulation — packing costs exceed the benefit, so the cost model
   keeps the block scalar. *)
let deal_ii =
  {|
f64 v[4224];
f64 w[1056];
f64 s0;
for t = 0 to 8 {
  for i = 1 to 512 {
    w[i] = v[4*i] + v[4*i-3];
    s0 = s0 + w[i];
  }
}
|}

(* Weather advection: centred flux differences feeding an update —
   contiguous with one shared temporary stream. *)
let wrf =
  {|
f64 u[2600];
f64 flx[2600];
f64 unew[2600];
for t = 0 to 8 {
  for i = 1 to 1200 {
    flx[i] = 0.5 * (u[i+1] - u[i-1]);
    unew[i] = u[i] - 0.3 * flx[i] + 0.01;
  }
}
|}

(* Biomolecular forces: the Figure 15 web with expensive interactions
   (sqrt), so vectorization pays even through some packing. *)
let namd =
  {|
f64 P[2200];
f64 F[2200];
f64 W[4400];
f64 a; f64 b; f64 c; f64 d; f64 g; f64 h; f64 q; f64 r;
for t = 0 to 16 {
  for i = 1 to 1024 {
    q = W[4*i+1];
    r = W[4*i+3];
    a = P[2*i];
    b = P[2*i+1];
    c = sqrt(a * W[4*i] + 1.0);
    d = sqrt(b * W[4*i+4] + 1.0);
    g = q * W[4*i-2];
    h = r * W[4*i+2];
    F[2*i] = d + a * c;
    F[2*i+1] = g + r * h;
  }
}
|}

(* ------------------------------------------------------------------ *)
(* NAS kernels (outer loop is a parallel plane/block loop).            *)
(* ------------------------------------------------------------------ *)

(* Unstructured adaptive: restriction between refinement levels plus a
   contiguous smoothing sweep (single precision). *)
let ua =
  {|
f32 fine[16][1056];
f32 coarse[16][528];
f32 smth[16][1056];
for p = 0 to 16 {
  for t = 0 to 12 {
    for i = 0 to 512 {
      coarse[p][i] = 0.5 * (fine[p][2*i] + fine[p][2*i+1]);
      smth[p][i] = 0.7 * fine[p][i] + 0.3 * smth[p][i];
    }
  }
}
|}

(* FFT butterflies: twiddle factors in strided read-only tables
   (layout target); real/imaginary temporaries are reused across the
   add/subtract pair. *)
let ft =
  {|
f64 re[16][1056];
f64 im[16][1056];
f64 wre[2112];
f64 wim[2112];
f64 tr; f64 ti;
for p = 0 to 16 {
  for t = 0 to 12 {
    for i = 0 to 256 {
      tr = wre[4*i] * re[p][i+512] - wim[4*i+2] * im[p][i+512];
      ti = wre[4*i] * im[p][i+512] + wim[4*i+2] * re[p][i+512];
      re[p][i+512] = re[p][i] - tr;
      im[p][i+512] = im[p][i] - ti;
      re[p][i] = re[p][i] + tr;
      im[p][i] = im[p][i] + ti;
    }
  }
}
|}

(* Block-tridiagonal: 2x2 block application with shared right-hand
   side temporaries. *)
let bt =
  {|
f64 lhs[16][2112];
f64 xv[16][1056];
f64 r1; f64 r2;
for p = 0 to 16 {
  for t = 0 to 12 {
    for i = 0 to 256 {
      r1 = lhs[p][4*i]   * xv[p][2*i] + lhs[p][4*i+1] * xv[p][2*i+1];
      r2 = lhs[p][4*i+2] * xv[p][2*i] + lhs[p][4*i+3] * xv[p][2*i+1];
      xv[p][2*i]   = xv[p][2*i]   - 0.2 * r1;
      xv[p][2*i+1] = xv[p][2*i+1] - 0.2 * r2;
    }
  }
}
|}

(* Scalar pentadiagonal: five-point contiguous sweep — the
   all-schemes-agree kernel. *)
let sp =
  {|
f64 u[16][1060];
f64 rhs[16][1060];
for p = 0 to 16 {
  for t = 0 to 8 {
    for i = 2 to 1026 {
      rhs[p][i] = 0.05*u[p][i-2] + 0.25*u[p][i-1] + 0.4*u[p][i]
                + 0.25*u[p][i+1] + 0.05*u[p][i+2];
    }
  }
}
|}

(* Multigrid smoothing with a strided 1-D damping table — the table
   gathers are exactly what array replication repairs. *)
let mg =
  {|
f64 fine[16][1060];
f64 coarse[16][1056];
f64 damp[2300];
for p = 0 to 16 {
  for t = 0 to 8 {
    for i = 0 to 1024 {
      coarse[p][i] = damp[2*i] * fine[p][i] + damp[2*i+1] * fine[p][i+1];
    }
  }
}
|}

(* Conjugate gradient: vector update plus the serial dot-product
   recurrence. *)
let cg =
  {|
f64 pvec[16][1056];
f64 z[16][1056];
f64 rdot;
for p = 0 to 16 {
  for t = 0 to 8 {
    for i = 0 to 1024 {
      z[p][i] = z[p][i] + 0.8 * pvec[p][i];
      rdot = rdot + pvec[p][i] * pvec[p][i];
    }
  }
}
|}

let all =
  [
    {
      name = "cactusADM";
      suite = Spec2006;
      description = "Solving the Einstein evolution equations";
      source = cactus_adm;
      unroll = 1;
      multicore = false;
    };
    {
      name = "soplex";
      suite = Spec2006;
      description = "Linear programming solver using simplex algorithm";
      source = soplex;
      unroll = 2;
      multicore = false;
    };
    {
      name = "lbm";
      suite = Spec2006;
      description = "Lattice Boltzmann method";
      source = lbm;
      unroll = 2;
      multicore = false;
    };
    {
      name = "milc";
      suite = Spec2006;
      description = "Simulations of 3-D SU(3) lattice gauge theory";
      source = milc;
      unroll = 2;
      multicore = false;
    };
    {
      name = "povray";
      suite = Spec2006;
      description = "Ray-tracing: a rendering technique";
      source = povray;
      unroll = 4;
      multicore = false;
    };
    {
      name = "gromacs";
      suite = Spec2006;
      description = "Performing molecular dynamics";
      source = gromacs;
      unroll = 1;
      multicore = false;
    };
    {
      name = "calculix";
      suite = Spec2006;
      description = "Setting up finite element equations and solving them";
      source = calculix;
      unroll = 2;
      multicore = false;
    };
    {
      name = "dealII";
      suite = Spec2006;
      description = "Object oriented finite element software library";
      source = deal_ii;
      unroll = 2;
      multicore = false;
    };
    {
      name = "wrf";
      suite = Spec2006;
      description = "Weather research and forecasting";
      source = wrf;
      unroll = 2;
      multicore = false;
    };
    {
      name = "namd";
      suite = Spec2006;
      description = "Simulation of large biomolecular systems";
      source = namd;
      unroll = 1;
      multicore = false;
    };
    {
      name = "ua";
      suite = Nas;
      description = "Unstructured adaptive 3-D";
      source = ua;
      unroll = 4;
      multicore = true;
    };
    {
      name = "ft";
      suite = Nas;
      description = "Fast fourier transform (FFT)";
      source = ft;
      unroll = 2;
      multicore = true;
    };
    {
      name = "bt";
      suite = Nas;
      description = "Block tridiagonal";
      source = bt;
      unroll = 1;
      multicore = true;
    };
    {
      name = "sp";
      suite = Nas;
      description = "Scalar pentadiagonal";
      source = sp;
      unroll = 2;
      multicore = true;
    };
    {
      name = "mg";
      suite = Nas;
      description = "Multigrid to solve the 3-D poisson PDE";
      source = mg;
      unroll = 2;
      multicore = true;
    };
    {
      name = "cg";
      suite = Nas;
      description = "Conjugate gradient";
      source = cg;
      unroll = 2;
      multicore = true;
    };
  ]

let nas = List.filter (fun b -> b.suite = Nas) all
let find name = List.find (fun b -> String.equal b.name name) all
let program b = Slp_frontend.Parser.parse ~name:b.name b.source
let suite_name = function Spec2006 -> "SPEC2006" | Nas -> "NAS"
