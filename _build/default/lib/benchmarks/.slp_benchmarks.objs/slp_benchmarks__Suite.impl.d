lib/benchmarks/suite.ml: List Slp_frontend String
