lib/benchmarks/suite.mli: Slp_ir
