(** The 16-kernel benchmark suite reproducing Table 3.

    The paper evaluates all C/C++ floating-point SPEC2006 benchmarks
    plus six NAS kernels.  Those sources are unavailable here, so each
    entry is a kernel in the repository's input language mimicking its
    benchmark's dominant data-access and compute pattern (see
    DESIGN.md's substitution table): stencil sweeps for
    cactusADM/wrf/mg, interleaved complex arithmetic for milc,
    simplex-style row updates for soplex, lattice streaming for lbm,
    shading arithmetic for povray, pairwise-force webs for
    gromacs/namd, element assembly for calculix/dealII, butterflies
    for ft, banded solves for bt/sp, and sparse-style reductions for
    cg; ua mixes refinement levels.

    Kernels are deterministic and sized so the whole evaluation runs
    in seconds under the simulator. *)

type suite = Spec2006 | Nas

type t = {
  name : string;
  suite : suite;
  description : string;  (** The Table 3 wording. *)
  source : string;  (** Kernel-language program text. *)
  unroll : int;  (** Unroll factor filling the 128-bit datapath. *)
  multicore : bool;  (** Outermost loop is a parallel spatial loop. *)
}

val all : t list
(** All 16, SPEC2006 first, each name matching the paper's Table 3. *)

val nas : t list
(** The six NAS kernels used in the multicore experiment (Figure 21). *)

val find : string -> t
(** Lookup by name; raises [Not_found]. *)

val program : t -> Slp_ir.Program.t
(** Parse (memoised per call — kernels are small). *)

val suite_name : suite -> string
