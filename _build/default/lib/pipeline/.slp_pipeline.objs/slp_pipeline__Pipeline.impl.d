lib/pipeline/pipeline.ml: List Program Slp_analysis Slp_baseline Slp_codegen Slp_core Slp_ir Slp_layout Slp_machine Slp_transform Slp_vm Sys
