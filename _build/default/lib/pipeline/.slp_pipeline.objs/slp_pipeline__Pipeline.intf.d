lib/pipeline/pipeline.mli: Program Slp_codegen Slp_core Slp_ir Slp_machine Slp_vm
