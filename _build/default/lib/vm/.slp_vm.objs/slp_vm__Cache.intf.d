lib/vm/cache.mli: Slp_machine
