lib/vm/counters.mli: Format
