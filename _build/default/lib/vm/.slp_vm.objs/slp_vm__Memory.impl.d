lib/vm/memory.ml: Array Env Float Hashtbl List Option Printf Slp_ir Slp_util String Types
