lib/vm/visa.ml: Affine Array Env Format List Operand Printf Slp_ir Stmt String Types
