lib/vm/scalar_exec.ml: Affine Block Cache Counters Either Expr Float List Memory Operand Program Slp_ir Slp_machine Stmt Types
