lib/vm/counters.ml: Format
