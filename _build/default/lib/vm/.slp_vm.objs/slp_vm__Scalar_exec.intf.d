lib/vm/scalar_exec.mli: Cache Counters Memory Program Slp_ir Slp_machine Stmt
