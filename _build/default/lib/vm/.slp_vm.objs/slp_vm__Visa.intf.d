lib/vm/visa.mli: Affine Env Format Operand Slp_ir Stmt Types
