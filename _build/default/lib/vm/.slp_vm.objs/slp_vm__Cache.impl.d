lib/vm/cache.ml: Array Slp_machine
