lib/vm/vector_exec.ml: Affine Array Cache Counters Float Hashtbl List Memory Operand Printf Scalar_exec Slp_ir Slp_machine Types Visa
