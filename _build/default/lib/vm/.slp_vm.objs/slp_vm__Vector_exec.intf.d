lib/vm/vector_exec.mli: Counters Memory Slp_machine Visa
