lib/vm/memory.mli: Env Slp_ir
