(** The vector instruction set executed by the simulator.

    Code generation lowers each scheduled superword statement into
    these instructions; the simulator both computes real values (so
    vectorized results can be checked against scalar execution) and
    charges machine-model costs. *)

open Slp_ir

type vreg = int

type lane_src =
  | Mem of Operand.t  (** An array element ([Operand.Elem]). *)
  | Reg of string  (** A scalar register. *)
  | Imm of float

type lane_dst = To_mem of Operand.t | To_reg of string

type instr =
  | Vload of { dst : vreg; elems : Operand.t list }
      (** Contiguous vector load; [elems] are the lane addresses, low
          lane first. *)
  | Vstore of { src : vreg; elems : Operand.t list }  (** Contiguous store. *)
  | Vgather of { dst : vreg; srcs : lane_src list }
      (** Build a vector lane by lane — the packing operation. *)
  | Vunpack of { src : vreg; dsts : lane_dst option list }
      (** Scatter lanes to scalars/memory — the unpacking operation;
          [None] lanes are discarded. *)
  | Vbroadcast of { dst : vreg; src : lane_src; lanes : int }
  | Vpermute of { dst : vreg; src : vreg; sel : int array }
      (** [dst.(i) = src.(sel.(i))]. *)
  | Vshuffle2 of { dst : vreg; a : vreg; b : vreg; sel : (int * int) array }
      (** Two-source shuffle (shufpd/unpck-style):
          [dst.(i) = (if fst sel.(i) = 0 then a else b).(snd sel.(i))]. *)
  | Vbin of { dst : vreg; op : Types.binop; a : vreg; b : vreg }
  | Vun of { dst : vreg; op : Types.unop; a : vreg }
  | Vspill of { src : vreg; slot : int }
      (** Save a full vector register to its spill slot (inserted by
          the register allocator when pressure exceeds the machine's
          register file). *)
  | Vreload of { dst : vreg; slot : int }
  | Vload_scalars of { dst : vreg; sources : string list }
      (** One vector load covering scalar spill slots made contiguous
          by the data layout optimizer (paper §5.1). *)
  | Vstore_scalars of { src : vreg; targets : string list }
      (** One vector store materialising a scalar superword to its
          contiguous slots. *)
  | Sstmt of Stmt.t  (** An unvectorized scalar statement. *)

type vloop = { index : string; lo : Affine.t; hi : Affine.t; step : int; body : item list }

and item = Block of instr list | Loop of vloop

type program = {
  name : string;
  env : Env.t;
  setup : item list;
      (** Run once before the body (data layout replication); its
          cycles are accounted separately. *)
  body : item list;
}

val instr_count : program -> int
(** Static instruction count of the body. *)

val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
