module M = Slp_machine.Machine

type level = {
  sets : int array array;  (** Per set: tags in LRU order (front = MRU). *)
  fill : int array;  (** Number of valid tags per set. *)
  set_count : int;
  line_bytes : int;
  latency : int;
}

type t = {
  levels : level array;
  memory_latency : float;
  bus_penalty : float;
      (** Extra cycles per line access from shared-bus/coherence
          contention when several cores are active. *)
  mutable level_hits : int array;
  mutable memory_accesses : int;
  mutable total : int;
}

let make_level (c : M.cache_level) =
  let set_count = max 1 (c.M.size_bytes / (c.M.ways * c.M.line_bytes)) in
  {
    sets = Array.init set_count (fun _ -> Array.make c.M.ways (-1));
    fill = Array.make set_count 0;
    set_count;
    line_bytes = c.M.line_bytes;
    latency = c.M.latency;
  }

let create ?(contention = 1.0) (m : M.t) =
  {
    levels = [| make_level m.M.l1; make_level m.M.l2; make_level m.M.l3 |];
    memory_latency = float_of_int m.M.memory_latency *. contention;
    (* Every access occupies the shared memory subsystem briefly; under
       contention that occupancy turns into queueing delay even on
       cache hits (this is what makes the scalar code scale worse than
       the vectorized code in Figure 21). *)
    bus_penalty = (contention -. 1.0) *. 8.0;
    level_hits = Array.make 3 0;
    memory_accesses = 0;
    total = 0;
  }

(* Probe one level for a line: returns true on hit; on hit or fill the
   line becomes MRU. *)
let touch level line ~insert =
  let set = line mod level.set_count in
  let tags = level.sets.(set) in
  let n = level.fill.(set) in
  let rec find i = if i >= n then -1 else if tags.(i) = line then i else find (i + 1) in
  let idx = find 0 in
  if idx >= 0 then begin
    (* Move to front. *)
    let tag = tags.(idx) in
    Array.blit tags 0 tags 1 idx;
    tags.(0) <- tag;
    true
  end
  else begin
    if insert then begin
      let n' = min (n + 1) (Array.length tags) in
      Array.blit tags 0 tags 1 (n' - 1);
      tags.(0) <- line;
      level.fill.(set) <- n'
    end;
    false
  end

let access_line t line =
  t.total <- t.total + 1;
  let rec walk i =
    if i >= Array.length t.levels then begin
      t.memory_accesses <- t.memory_accesses + 1;
      t.memory_latency
    end
    else if touch t.levels.(i) line ~insert:true then begin
      t.level_hits.(i) <- t.level_hits.(i) + 1;
      float_of_int t.levels.(i).latency
    end
    else begin
      let below = walk (i + 1) in
      (* Line already filled into this level by [touch]'s insert. *)
      below
    end
  in
  (* First probe without insert at the hitting level is already handled
     by touch's insert-on-miss: a miss inserts the line (fill on the
     way back), which is what an inclusive hierarchy does. *)
  walk 0

let access t ~addr ~bytes ~write:_ =
  let line_bytes = t.levels.(0).line_bytes in
  let first = addr / line_bytes in
  let last = (addr + max 1 bytes - 1) / line_bytes in
  let cycles = ref 0.0 in
  for line = first to last do
    cycles := !cycles +. access_line t line +. t.bus_penalty
  done;
  !cycles

let reset t =
  Array.iter
    (fun l ->
      Array.iteri (fun i _ -> l.fill.(i) <- 0) l.fill;
      Array.iter (fun s -> Array.fill s 0 (Array.length s) (-1)) l.sets)
    t.levels;
  t.level_hits <- Array.make 3 0;
  t.memory_accesses <- 0;
  t.total <- 0

let hits t = (t.level_hits.(0), t.level_hits.(1), t.level_hits.(2))
let misses t = t.memory_accesses
let accesses t = t.total
