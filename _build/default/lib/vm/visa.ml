open Slp_ir

type vreg = int

type lane_src = Mem of Operand.t | Reg of string | Imm of float
type lane_dst = To_mem of Operand.t | To_reg of string

type instr =
  | Vload of { dst : vreg; elems : Operand.t list }
  | Vstore of { src : vreg; elems : Operand.t list }
  | Vgather of { dst : vreg; srcs : lane_src list }
  | Vunpack of { src : vreg; dsts : lane_dst option list }
  | Vbroadcast of { dst : vreg; src : lane_src; lanes : int }
  | Vpermute of { dst : vreg; src : vreg; sel : int array }
  | Vshuffle2 of { dst : vreg; a : vreg; b : vreg; sel : (int * int) array }
  | Vbin of { dst : vreg; op : Types.binop; a : vreg; b : vreg }
  | Vun of { dst : vreg; op : Types.unop; a : vreg }
  | Vspill of { src : vreg; slot : int }
  | Vreload of { dst : vreg; slot : int }
  | Vload_scalars of { dst : vreg; sources : string list }
  | Vstore_scalars of { src : vreg; targets : string list }
  | Sstmt of Stmt.t

type vloop = { index : string; lo : Affine.t; hi : Affine.t; step : int; body : item list }

and item = Block of instr list | Loop of vloop

type program = { name : string; env : Env.t; setup : item list; body : item list }

let rec items_instr_count items =
  List.fold_left
    (fun acc item ->
      match item with
      | Block instrs -> acc + List.length instrs
      | Loop l -> acc + items_instr_count l.body)
    0 items

let instr_count p = items_instr_count p.body

let pp_lane_src ppf = function
  | Mem op -> Operand.pp ppf op
  | Reg v -> Format.fprintf ppf "%%%s" v
  | Imm f -> Format.fprintf ppf "#%g" f

let pp_lane_dst ppf = function
  | To_mem op -> Operand.pp ppf op
  | To_reg v -> Format.fprintf ppf "%%%s" v

let pp_lanes pp_one ppf lanes =
  Format.fprintf ppf "[";
  List.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ", ";
      pp_one ppf x)
    lanes;
  Format.fprintf ppf "]"

let pp_instr ppf = function
  | Vload { dst; elems } ->
      Format.fprintf ppf "v%d <- vload %a" dst (pp_lanes Operand.pp) elems
  | Vstore { src; elems } ->
      Format.fprintf ppf "vstore %a <- v%d" (pp_lanes Operand.pp) elems src
  | Vgather { dst; srcs } ->
      Format.fprintf ppf "v%d <- vgather %a" dst (pp_lanes pp_lane_src) srcs
  | Vunpack { src; dsts } ->
      Format.fprintf ppf "vunpack v%d -> %a" src
        (pp_lanes (fun ppf -> function
           | None -> Format.fprintf ppf "_"
           | Some d -> pp_lane_dst ppf d))
        dsts
  | Vbroadcast { dst; src; lanes } ->
      Format.fprintf ppf "v%d <- vbroadcast %a x%d" dst pp_lane_src src lanes
  | Vpermute { dst; src; sel } ->
      Format.fprintf ppf "v%d <- vpermute v%d [%s]" dst src
        (String.concat "," (Array.to_list (Array.map string_of_int sel)))
  | Vshuffle2 { dst; a; b; sel } ->
      Format.fprintf ppf "v%d <- vshuffle2 v%d v%d [%s]" dst a b
        (String.concat ","
           (Array.to_list (Array.map (fun (s, l) -> Printf.sprintf "%d.%d" s l) sel)))
  | Vbin { dst; op; a; b } ->
      Format.fprintf ppf "v%d <- v%d %a v%d" dst a Types.pp_binop op b
  | Vun { dst; op; a } -> Format.fprintf ppf "v%d <- %a v%d" dst Types.pp_unop op a
  | Vspill { src; slot } -> Format.fprintf ppf "vspill [slot %d] <- v%d" slot src
  | Vreload { dst; slot } -> Format.fprintf ppf "v%d <- vreload [slot %d]" dst slot
  | Vload_scalars { dst; sources } ->
      Format.fprintf ppf "v%d <- vload.s [%s]" dst (String.concat ", " sources)
  | Vstore_scalars { src; targets } ->
      Format.fprintf ppf "vstore.s [%s] <- v%d" (String.concat ", " targets) src
  | Sstmt s -> Stmt.pp ppf s

let rec pp_items ppf items =
  List.iter
    (function
      | Block instrs ->
          List.iter (fun i -> Format.fprintf ppf "%a@," pp_instr i) instrs
      | Loop l ->
          Format.fprintf ppf "@[<v 2>for %s = %a to %a step %d {@," l.index Affine.pp
            l.lo Affine.pp l.hi l.step;
          pp_items ppf l.body;
          Format.fprintf ppf "@]}@,")
    items

let pp_program ppf p =
  Format.fprintf ppf "@[<v>vprogram %s@," p.name;
  if p.setup <> [] then begin
    Format.fprintf ppf "setup:@,";
    pp_items ppf p.setup
  end;
  Format.fprintf ppf "body:@,";
  pp_items ppf p.body;
  Format.fprintf ppf "@]"
