lib/codegen/regalloc.mli: Slp_vm
