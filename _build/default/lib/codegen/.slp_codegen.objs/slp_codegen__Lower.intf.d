lib/codegen/lower.mli: Slp_core Slp_machine Slp_vm
