lib/codegen/regalloc.ml: Array Hashtbl List Option Printf Slp_vm
