lib/codegen/lower.ml: Affine Array Block Env Expr Hashtbl List Operand Option Program Slp_analysis Slp_core Slp_ir Slp_machine Slp_vm Stmt String
