lib/machine/machine.ml: Format List Printf
