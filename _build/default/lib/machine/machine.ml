type cache_level = { size_bytes : int; ways : int; line_bytes : int; latency : int }

type op_costs = {
  scalar_op : int;
  vector_op : int;
  divide : int;
  square_root : int;
  insert : int;
  extract : int;
  permute : int;
  broadcast : int;
  load_issue : int;
  store_issue : int;
}

type t = {
  name : string;
  simd_bits : int;
  vector_registers : int;
  cores : int;
  frequency_ghz : float;
  costs : op_costs;
  l1 : cache_level;
  l2 : cache_level;
  l3 : cache_level;
  memory_latency : int;
  contention_per_core : float;
}

let intel_dunnington =
  {
    name = "Intel Dunnington (Xeon E7450)";
    simd_bits = 128;
    vector_registers = 16;
    cores = 12;
    frequency_ghz = 2.40;
    costs =
      {
        scalar_op = 1;
        vector_op = 1;
        divide = 16;
        square_root = 22;
        insert = 2;
        extract = 2;
        permute = 2;
        broadcast = 2;
        load_issue = 1;
        store_issue = 1;
      };
    l1 = { size_bytes = 32 * 1024; ways = 8; line_bytes = 64; latency = 3 };
    (* 18MB of L2 as 6 x 3MB shared by core pairs: model the 3MB slice
       a core effectively owns. *)
    l2 = { size_bytes = 3 * 1024 * 1024; ways = 12; line_bytes = 64; latency = 14 };
    (* 24MB of L3 as 2 x 12MB per socket. *)
    l3 = { size_bytes = 12 * 1024 * 1024; ways = 12; line_bytes = 64; latency = 42 };
    memory_latency = 210;
    contention_per_core = 0.06;
  }

let amd_phenom_ii =
  {
    name = "AMD Phenom II X4 945";
    simd_bits = 128;
    vector_registers = 16;
    cores = 4;
    frequency_ghz = 3.00;
    costs =
      {
        scalar_op = 1;
        vector_op = 1;
        divide = 18;
        square_root = 25;
        (* The paper attributes the lower AMD savings to higher
           packing/unpacking costs. *)
        insert = 3;
        extract = 3;
        permute = 3;
        broadcast = 3;
        load_issue = 1;
        store_issue = 1;
      };
    l1 = { size_bytes = 64 * 1024; ways = 2; line_bytes = 64; latency = 3 };
    l2 = { size_bytes = 512 * 1024; ways = 16; line_bytes = 64; latency = 15 };
    l3 = { size_bytes = 6 * 1024 * 1024; ways = 48; line_bytes = 64; latency = 48 };
    memory_latency = 230;
    contention_per_core = 0.08;
  }

let with_simd_bits m bits =
  if bits <= 0 || bits mod 64 <> 0 then
    invalid_arg "Machine.with_simd_bits: bits must be a positive multiple of 64";
  { m with name = Printf.sprintf "%s [%d-bit SIMD]" m.name bits; simd_bits = bits }

let lanes m ~elem_bytes = max 1 (m.simd_bits / 8 / elem_bytes)

let pp_bytes b =
  if b >= 1024 * 1024 then Printf.sprintf "%dMB" (b / 1024 / 1024)
  else Printf.sprintf "%dKB" (b / 1024)

let describe m =
  [
    ("Number of Cores", string_of_int m.cores);
    ("Core Type", Printf.sprintf "%s (clocked at %.2fGHz)" m.name m.frequency_ghz);
    ( "L1 Data",
      Printf.sprintf "%s/core; %d-way; %d-byte line size" (pp_bytes m.l1.size_bytes)
        m.l1.ways m.l1.line_bytes );
    ( "L2",
      Printf.sprintf "%s; %d-way; %d-byte line size" (pp_bytes m.l2.size_bytes)
        m.l2.ways m.l2.line_bytes );
    ( "L3",
      Printf.sprintf "%s; %d-way; %d-byte line size" (pp_bytes m.l3.size_bytes)
        m.l3.ways m.l3.line_bytes );
    ("SIMD", Printf.sprintf "%d-bit, %d vector registers" m.simd_bits m.vector_registers);
  ]

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-16s %s@," k v) (describe m);
  Format.fprintf ppf "@]"
