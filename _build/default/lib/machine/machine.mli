(** Machine models: SIMD width, instruction cost tables and cache
    hierarchy parameters.

    Concrete models reproduce the two evaluation machines of the paper
    (Table 1: Intel Dunnington Xeon E7450; Table 2: AMD Phenom II X4
    945) plus hypothetical wider-datapath variants for Figure 18.  The
    simulator charges [costs] cycles per instruction plus cache
    latencies from the three-level hierarchy. *)

type cache_level = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;  (** Hit latency, cycles. *)
}

type op_costs = {
  scalar_op : int;  (** One scalar ALU/FPU operation. *)
  vector_op : int;  (** One SIMD operation over a full register. *)
  divide : int;  (** A division, scalar or full-register vector. *)
  square_root : int;
  insert : int;  (** Move a scalar into a vector lane (packing). *)
  extract : int;  (** Move a lane out to a scalar (unpacking). *)
  permute : int;  (** In-register shuffle. *)
  broadcast : int;  (** Splat a scalar to all lanes. *)
  load_issue : int;  (** Issue overhead of any load, before cache latency. *)
  store_issue : int;
}

type t = {
  name : string;
  simd_bits : int;
  vector_registers : int;
  cores : int;
  frequency_ghz : float;
  costs : op_costs;
  l1 : cache_level;
  l2 : cache_level;
  l3 : cache_level;
  memory_latency : int;  (** Cycles on full miss. *)
  contention_per_core : float;
      (** Multiplicative memory-latency inflation per additional active
          core — drives the Figure 21 multicore behaviour. *)
}

val intel_dunnington : t
(** Table 1: 12 cores (2 sockets), Xeon E7450 @ 2.40 GHz, L1d
    32KB/8-way/64B, L2 3MB/12-way per 2 cores, L3 12MB/12-way per
    socket. *)

val amd_phenom_ii : t
(** Table 2: 4 cores, Phenom II X4 945 @ 3.00 GHz, L1d 64KB/2-way/64B,
    L2 512KB/16-way per core, L3 6MB/48-way; costlier
    packing/unpacking than the Intel machine (paper §7.2). *)

val with_simd_bits : t -> int -> t
(** Hypothetical wider-datapath variant (Figure 18), same core. *)

val lanes : t -> elem_bytes:int -> int
val describe : t -> (string * string) list
(** Rows of the paper's configuration table. *)

val pp : Format.formatter -> t -> unit
