(** Flow-insensitive scalar liveness over whole programs.

    A scalar's architectural value must be materialised out of a
    vector register (paper: "unpacking") only when something beyond
    the defining block's vector dataflow reads it.  [demanded b v] is
    true when [v] is read in some other block or upward-exposed in [b]
    itself (its value crosses iterations of the enclosing loop).
    Used by both the cost model's gate and the code generator. *)

open Slp_ir

type t

val compute : Program.t -> t

val demanded : t -> Block.t -> string -> bool
val read_in_other_block : t -> Block.t -> string -> bool
val upward_exposed : t -> Block.t -> string -> bool
