(** Polyhedral-style memory access vectors (paper §5.2, Equation 1).

    The access pattern of an array reference R inside a loop nest is
    [r = Q·i + O] where [i] is the iteration vector (outermost index
    first), [Q] the m×n memory access matrix and [O] the offset
    vector.  The layout optimizer transforms Q and O; alignment and
    adjacency tests consume the row-major linearisation. *)

open Slp_ir

type t = {
  base : string;  (** Array name. *)
  q : int array array;  (** m×n access matrix, row = array dimension. *)
  offset : int array;  (** m-vector O. *)
  nest : string list;  (** Index variables, outermost first. *)
}

val of_operand : nest:string list -> Operand.t -> t option
(** [None] for scalars/constants, or when a subscript mentions a
    variable outside [nest]. *)

val rank : t -> int
(** Number of array dimensions m. *)

val depth : t -> int
(** Loop nest depth n. *)

val to_mat : t -> Slp_util.Mat.t
(** Q as a rational matrix (m×n); raises [Invalid_argument] when m or
    n is zero. *)

val linearise : dims:int list -> t -> int array * int
(** Row-major linearisation: coefficients per nest variable plus the
    constant offset, in elements.  Raises [Invalid_argument] when the
    rank does not match [dims]. *)

val innermost_coeff : dims:int list -> t -> int
(** Linearised coefficient of the innermost loop index — the access
    stride in the innermost loop (0 when loop-invariant). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
