(** Def-use / use-def chains within a basic block.

    The Larsen-Amarasinghe baseline extends seed packs "by following
    the def-use and use-def chains" (paper §2); the holistic grouping
    does not need chains but the baseline and several diagnostics do.
    Chains are computed for scalar variables (array elements use the
    conservative dependence relation instead). *)

open Slp_ir

type t

val compute : Block.t -> t

val def_use : t -> int -> int list
(** [def_use t id]: statements (by id, in program order) that read the
    scalar defined by statement [id] before it is redefined.  Empty
    when [id] does not define a scalar. *)

val use_def : t -> int -> (string * int) list
(** [use_def t id]: for each scalar read by statement [id], the
    statement that supplies its reaching definition inside the block
    (variables defined outside the block are absent). *)

val reaching_def : t -> var:string -> before:int -> int option
(** Last definition of [var] occurring before statement [before]. *)
