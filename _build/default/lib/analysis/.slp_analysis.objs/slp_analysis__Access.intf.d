lib/analysis/access.mli: Format Operand Slp_ir Slp_util
