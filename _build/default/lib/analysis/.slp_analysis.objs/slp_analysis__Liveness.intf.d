lib/analysis/liveness.mli: Block Program Slp_ir
