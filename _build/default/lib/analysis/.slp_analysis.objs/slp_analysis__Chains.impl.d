lib/analysis/chains.ml: Block Hashtbl List Operand Option Slp_ir Stmt String
