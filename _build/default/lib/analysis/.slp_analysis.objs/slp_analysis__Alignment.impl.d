lib/analysis/alignment.ml: Access Array Env Format Operand Slp_ir
