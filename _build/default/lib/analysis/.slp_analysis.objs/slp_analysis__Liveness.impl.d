lib/analysis/liveness.ml: Block Hashtbl List Operand Option Program Slp_ir Stmt String
