lib/analysis/access.ml: Affine Array Format List Operand Slp_ir Slp_util String
