lib/analysis/chains.mli: Block Slp_ir
