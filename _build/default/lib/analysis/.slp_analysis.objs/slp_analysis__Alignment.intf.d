lib/analysis/alignment.mli: Access Env Format Operand Slp_ir
