(** Alignment analysis (part of the paper's pre-processing, §3).

    A vector load/store of [lanes] elements is cheap when the first
    element's address is a multiple of the vector width for *every*
    iteration of the enclosing nest.  With a linearised access
    [Σ c_j·i_j + r] that holds exactly when every [c_j] is divisible by
    [lanes] and [r mod lanes = 0] (element-sized units; bases are
    assumed vector-aligned). *)

open Slp_ir

type verdict =
  | Aligned  (** Provably aligned in every iteration. *)
  | Misaligned of int
      (** Provably at constant misalignment [k] (in elements, 0 < k <
          lanes) in every iteration. *)
  | Unknown  (** Alignment varies with the iteration vector. *)

val of_access : lanes:int -> dims:int list -> Access.t -> verdict

val of_operand :
  env:Env.t -> nest:string list -> lanes:int -> Operand.t -> verdict option
(** [None] for non-memory operands or references outside [nest]. *)

val contiguous_pack :
  env:Env.t -> Operand.t list -> bool
(** True when the operands are array elements of one array at
    consecutive row-major locations, first to last — one vector
    load/store can fetch the whole pack. *)

val pack_verdict :
  env:Env.t -> nest:string list -> lanes:int -> Operand.t list -> verdict option
(** Alignment of the pack's first element when the pack is contiguous;
    [None] otherwise. *)

val pp_verdict : Format.formatter -> verdict -> unit
