open Slp_ir

type verdict = Aligned | Misaligned of int | Unknown

let of_access ~lanes ~dims access =
  if lanes <= 0 then invalid_arg "Alignment.of_access: lanes must be positive";
  let coeffs, const = Access.linearise ~dims access in
  let all_divisible = Array.for_all (fun c -> c mod lanes = 0) coeffs in
  if not all_divisible then Unknown
  else
    let r = ((const mod lanes) + lanes) mod lanes in
    if r = 0 then Aligned else Misaligned r

let of_operand ~env ~nest ~lanes op =
  match Access.of_operand ~nest op with
  | None -> None
  | Some access ->
      let dims = Env.row_size env access.Access.base in
      Some (of_access ~lanes ~dims access)

let contiguous_pack ~env ops =
  let row_size = Env.row_size env in
  let rec consecutive = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
        Operand.adjacent_in_memory ~row_size a b && consecutive rest
  in
  match ops with
  | [] | [ _ ] -> false
  | Operand.Elem _ :: _ -> consecutive ops
  | (Operand.Const _ | Operand.Scalar _) :: _ -> false

let pack_verdict ~env ~nest ~lanes ops =
  if not (contiguous_pack ~env ops) then None
  else
    match ops with
    | first :: _ -> of_operand ~env ~nest ~lanes first
    | [] -> None

let pp_verdict ppf = function
  | Aligned -> Format.pp_print_string ppf "aligned"
  | Misaligned k -> Format.fprintf ppf "misaligned+%d" k
  | Unknown -> Format.pp_print_string ppf "unknown"
