open Slp_ir

type t = {
  readers : (string, Block.t list) Hashtbl.t;
  exposed_cache : (string, (string, unit) Hashtbl.t) Hashtbl.t;
}

let block_upward_exposed (b : Block.t) =
  let defined = Hashtbl.create 16 in
  let exposed = Hashtbl.create 16 in
  List.iter
    (fun (s : Stmt.t) ->
      List.iter
        (function
          | Operand.Scalar v ->
              if not (Hashtbl.mem defined v) then Hashtbl.replace exposed v ()
          | Operand.Const _ | Operand.Elem _ -> ())
        (Stmt.uses s);
      (* Subscript variables of an array store are reads too (a scalar
         store target is a write, not a read). *)
      (match s.Stmt.lhs with
      | Operand.Elem _ ->
          List.iter
            (fun v -> if not (Hashtbl.mem defined v) then Hashtbl.replace exposed v ())
            (Operand.used_vars s.Stmt.lhs)
      | Operand.Scalar _ | Operand.Const _ -> ());
      match s.Stmt.lhs with
      | Operand.Scalar v -> Hashtbl.replace defined v ()
      | Operand.Const _ | Operand.Elem _ -> ())
    b.Block.stmts;
  exposed

let compute (prog : Program.t) =
  let readers = Hashtbl.create 32 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun v ->
          let set = Option.value (Hashtbl.find_opt readers v) ~default:[] in
          if not (List.exists (fun (b' : Block.t) -> String.equal b'.Block.label b.Block.label) set)
          then Hashtbl.replace readers v (b :: set))
        (Block.scalar_uses b))
    (Program.blocks prog);
  { readers; exposed_cache = Hashtbl.create 16 }

let upward_exposed t (b : Block.t) v =
  let exposed =
    match Hashtbl.find_opt t.exposed_cache b.Block.label with
    | Some e -> e
    | None ->
        let e = block_upward_exposed b in
        Hashtbl.replace t.exposed_cache b.Block.label e;
        e
  in
  Hashtbl.mem exposed v

let read_in_other_block t (b : Block.t) v =
  match Hashtbl.find_opt t.readers v with
  | None -> false
  | Some bs ->
      List.exists
        (fun (b' : Block.t) -> not (String.equal b'.Block.label b.Block.label))
        bs

let demanded t b v = upward_exposed t b v || read_in_other_block t b v
