(** The variable pack conflicting graph VP — step 2 of the basic
    grouping algorithm (paper §4.2.1).

    One node per variable pack instance of each candidate group, tagged
    with its owning candidate; edges join nodes whose owning candidates
    conflict.  Multiple nodes may carry the same pack (generated from
    different candidates) — the number of such nodes that can coexist
    is exactly the reuse count of that superword. *)

type node = { nid : int; pack : Pack.t; owner : int  (** cid *) }

type t

val build :
  candidates:Candidate.t list -> conflict:(int -> int -> bool) -> t
(** [conflict] is consulted on candidate-id pairs (symmetric). *)

val nodes : t -> node list
val node_count : t -> int
val edge_count : t -> int
val has_edge : t -> int -> int -> bool
val nodes_of_owner : t -> int -> node list
val alive : t -> int -> bool

val matching :
  t -> pack_types:Pack.Set.t -> exclude_owner:int -> compatible:(int -> bool) -> node list
(** Live nodes whose pack belongs to [pack_types], not owned by
    [exclude_owner], and whose owner satisfies [compatible] — the raw
    material of an auxiliary graph. *)

val edges_among : t -> node list -> (int * int) list
(** VP edges restricted to the given nodes (by nid). *)

val remove_decided : t -> int -> unit
(** Delete the nodes of a decided candidate and every node connected
    to them (paper step 4's VP update). *)

val remove_owner : t -> int -> unit
(** Delete only the given candidate's own nodes — used when a
    candidate is discarded (not decided), so that other candidates'
    reuse information survives. *)

val pp : Format.formatter -> t -> unit
