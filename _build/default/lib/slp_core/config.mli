(** SLP optimizer configuration.

    The datapath width bounds superword sizes (paper §4.1 constraint 4)
    and drives the iterative grouping rounds (§4.2.2); the vector
    register count bounds the live superword set used during
    scheduling. *)

type t = {
  datapath_bits : int;  (** SIMD width: 128 for SSE2, up to 1024 for Fig 18. *)
  vector_registers : int;  (** Size of the vector register file (16 for SSE2). *)
}

val default : t
(** 128-bit datapath, 16 vector registers. *)

val make : ?vector_registers:int -> datapath_bits:int -> unit -> t
(** Raises [Invalid_argument] unless [datapath_bits] is a positive
    multiple of 64 and [vector_registers >= 2]. *)

val max_lanes : t -> Slp_ir.Types.scalar_ty -> int
(** How many elements of a type fit the datapath (at least 1). *)

val pp : Format.formatter -> t -> unit
