(** Variable packs: unordered multisets of operands.

    "A variable pack refers to a set of variables coming from the same
    position of different isomorphic statements in a candidate group"
    (paper §4.2.1).  Packs are unordered during grouping — the lane
    order is fixed only by the scheduling phase — so the canonical
    representation is a sorted operand list.  A pack whose data are
    used by more than one superword statement is a *reuse*, even when
    the orderings differ (a permutation still beats a memory access). *)

open Slp_ir

type t = private Operand.t list
(** Sorted; duplicates allowed (two lanes may carry the same value). *)

val of_operands : Operand.t list -> t
val union : t -> t -> t
(** Multiset union — merging packs during iterative grouping. *)

val size : t -> int
val operands : t -> Operand.t list
val equal : t -> t -> bool
val compare : t -> t -> int

val all_constant : t -> bool
(** Constant-only packs are vector immediates: they cost nothing to
    rebuild, so they never count as reuses. *)

val mem : Operand.t -> t -> bool
val overlaps_storage : t -> Operand.t -> bool
(** Some pack member may alias the given operand — used to invalidate
    live superwords when a statement overwrites their data. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
