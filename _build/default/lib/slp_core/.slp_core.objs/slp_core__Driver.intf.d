lib/slp_core/driver.mli: Block Config Cost Env Grouping Program Schedule Slp_ir
