lib/slp_core/driver.ml: Block Config Cost Grouping List Printf Program Schedule Slp_ir
