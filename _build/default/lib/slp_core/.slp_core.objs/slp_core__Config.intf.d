lib/slp_core/config.mli: Format Slp_ir
