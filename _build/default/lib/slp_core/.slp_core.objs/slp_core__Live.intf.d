lib/slp_core/live.mli: Operand Pack Slp_ir
