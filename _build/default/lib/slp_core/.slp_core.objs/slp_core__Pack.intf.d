lib/slp_core/pack.mli: Format Map Operand Set Slp_ir
