lib/slp_core/schedule.mli: Block Config Env Format Grouping Slp_ir
