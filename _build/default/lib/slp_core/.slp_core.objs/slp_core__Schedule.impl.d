lib/slp_core/schedule.ml: Affine Block Config Format Grouping Hashtbl List Live Operand Option Pack Slp_ir Slp_util Stmt String
