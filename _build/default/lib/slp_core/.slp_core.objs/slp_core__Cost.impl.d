lib/slp_core/cost.ml: Array Block Either Expr Hashtbl List Live Operand Pack Schedule Slp_analysis Slp_ir Stmt Types
