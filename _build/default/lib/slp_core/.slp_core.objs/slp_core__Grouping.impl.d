lib/slp_core/grouping.ml: Block Candidate Groupgraph Hashtbl List Packgraph Slp_ir Stmt Units
