lib/slp_core/grouping.mli: Block Config Env Groupgraph Slp_ir
