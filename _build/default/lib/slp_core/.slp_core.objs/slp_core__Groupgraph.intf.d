lib/slp_core/groupgraph.mli: Candidate Pack Packgraph
