lib/slp_core/units.mli: Block Env Expr Format Pack Slp_ir Stmt Types
