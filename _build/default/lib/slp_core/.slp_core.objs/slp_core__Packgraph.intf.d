lib/slp_core/packgraph.mli: Candidate Format Pack
