lib/slp_core/cost.mli: Block Env Operand Schedule Slp_ir
