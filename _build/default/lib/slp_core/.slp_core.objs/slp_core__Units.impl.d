lib/slp_core/units.ml: Array Block Env Expr Format Hashtbl List Operand Pack Slp_ir Slp_util Stmt String Types
