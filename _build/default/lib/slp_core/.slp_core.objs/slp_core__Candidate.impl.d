lib/slp_core/candidate.ml: Array Config Format List Pack Slp_analysis Units
