lib/slp_core/config.ml: Format Slp_ir
