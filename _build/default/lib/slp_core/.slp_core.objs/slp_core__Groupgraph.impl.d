lib/slp_core/groupgraph.ml: Candidate List Pack Packgraph Slp_util
