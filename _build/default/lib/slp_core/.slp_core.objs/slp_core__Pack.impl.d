lib/slp_core/pack.ml: Format List Map Operand Set Slp_ir String
