lib/slp_core/packgraph.ml: Candidate Format Hashtbl List Pack Slp_util
