lib/slp_core/candidate.mli: Config Env Format Pack Slp_ir Units
