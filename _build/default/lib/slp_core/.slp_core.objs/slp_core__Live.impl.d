lib/slp_core/live.ml: List Operand Pack Slp_ir
