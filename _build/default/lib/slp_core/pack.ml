open Slp_ir

type t = Operand.t list

let of_operands ops = List.sort Operand.compare ops
let union a b = List.merge Operand.compare a b
let size = List.length
let operands t = t
let equal a b = List.equal Operand.equal a b
let compare a b = List.compare Operand.compare a b

let all_constant t =
  List.for_all
    (function Operand.Const _ -> true | Operand.Scalar _ | Operand.Elem _ -> false)
    t

let mem op t = List.exists (Operand.equal op) t
let overlaps_storage t op = List.exists (Operand.may_alias op) t

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map Operand.to_string t))

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
