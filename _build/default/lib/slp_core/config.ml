type t = { datapath_bits : int; vector_registers : int }

let make ?(vector_registers = 16) ~datapath_bits () =
  if datapath_bits <= 0 || datapath_bits mod 64 <> 0 then
    invalid_arg "Config.make: datapath_bits must be a positive multiple of 64";
  if vector_registers < 2 then
    invalid_arg "Config.make: vector_registers must be at least 2";
  { datapath_bits; vector_registers }

let default = make ~datapath_bits:128 ()

let max_lanes t ty = max 1 (t.datapath_bits / Slp_ir.Types.bits ty)

let pp ppf t =
  Format.fprintf ppf "datapath=%d bits, vregs=%d" t.datapath_bits t.vector_registers
