open Slp_ir

type params = {
  scalar_op : float;
  vector_op : float;
  divide : float;
  square_root : float;
  scalar_load : float;
  scalar_store : float;
  vector_load : float;
  vector_store : float;
  unaligned_extra : float;
  insert : float;
  extract : float;
  permute : float;
  broadcast : float;
}

let default_params =
  {
    scalar_op = 1.0;
    vector_op = 1.0;
    divide = 16.0;
    square_root = 22.0;
    scalar_load = 2.0;
    scalar_store = 2.0;
    vector_load = 2.0;
    vector_store = 2.0;
    unaligned_extra = 1.0;
    insert = 1.0;
    extract = 1.0;
    permute = 1.0;
    broadcast = 1.0;
  }

type query = {
  contiguous : Operand.t list -> bool;
  aligned : Operand.t list -> bool;
  scalar_live_out : string -> bool;
}

let default_query ~env ~nest ~lanes =
  {
    contiguous =
      (fun ops ->
        match ops with
        | Operand.Elem _ :: _ -> Slp_analysis.Alignment.contiguous_pack ~env ops
        | _ -> false);
    aligned =
      (fun ops ->
        match ops with
        | (Operand.Elem _ as first) :: _ -> begin
            match Slp_analysis.Alignment.of_operand ~env ~nest ~lanes first with
            | Some Slp_analysis.Alignment.Aligned -> true
            | Some (Slp_analysis.Alignment.Misaligned _ | Slp_analysis.Alignment.Unknown)
            | None ->
                false
          end
        | _ -> false);
    scalar_live_out = (fun _ -> true);
  }

type estimate = {
  scalar_cost : float;
  vector_cost : float;
  vector_ops : int;
  vector_memops : int;
  scalar_memops_in_packs : int;
  inserts : int;
  extracts : int;
  permutes : int;
}

let classify ops =
  let is_elem = function Operand.Elem _ -> true | _ -> false in
  let is_scalar = function Operand.Scalar _ -> true | _ -> false in
  if List.for_all is_elem ops then `All_elem
  else if List.for_all is_scalar ops then `All_scalar
  else `Mixed

let weighted_ops params ~base rhs =
  List.fold_left
    (fun acc op ->
      acc
      +.
      match op with
      | Either.Left Types.Div -> params.divide
      | Either.Right Types.Sqrt -> params.square_root
      | Either.Left _ | Either.Right _ -> base)
    0.0 (Expr.operators rhs)

let scalar_stmt_cost params (s : Stmt.t) =
  let ops = weighted_ops params ~base:params.scalar_op s.Stmt.rhs in
  let loads =
    float_of_int
      (List.length (List.filter (function Operand.Elem _ -> true | _ -> false) (Stmt.uses s)))
    *. params.scalar_load
  in
  let store =
    match s.Stmt.lhs with
    | Operand.Elem _ -> params.scalar_store
    | Operand.Scalar _ | Operand.Const _ -> 0.0
  in
  ops +. loads +. store

let estimate ?(params = default_params) ~query (block : Block.t) (sched : Schedule.t) =
  let scalar_cost =
    List.fold_left (fun acc s -> acc +. scalar_stmt_cost params s) 0.0 block.Block.stmts
  in
  (* Scalars read by later Single items, per item index: a superword
     defining such a scalar must unpack it. *)
  let items = Array.of_list sched.Schedule.items in
  let scalar_used_by_single_after = Hashtbl.create 16 in
  (* var -> last item index where a Single reads it *)
  Array.iteri
    (fun idx item ->
      match item with
      | Schedule.Single sid ->
          List.iter
            (function
              | Operand.Scalar v -> Hashtbl.replace scalar_used_by_single_after v idx
              | Operand.Const _ | Operand.Elem _ -> ())
            (Stmt.uses (Block.find block sid))
      | Schedule.Superword _ -> ())
    items;
  let live = Live.create ~capacity:64 in
  let vcost = ref 0.0 in
  let vector_ops = ref 0 in
  let vector_memops = ref 0 in
  let scalar_memops_in_packs = ref 0 in
  let inserts = ref 0 in
  let extracts = ref 0 in
  let permutes = ref 0 in
  let charge c = vcost := !vcost +. c in
  let pack_source ordered =
    let pack = Pack.of_operands ordered in
    if Pack.all_constant pack then ()
    else if Live.mem_exact live ordered then ()
    else if Live.mem_multiset live pack then begin
      incr permutes;
      charge params.permute
    end
    else if
      (* Coverable by a two-source shuffle over live superwords. *)
      (let entries = Live.entries live in
       let covers o1 o2 =
         let pool = ref (o1 @ o2) in
         List.for_all
           (fun want ->
             let rec take acc = function
               | [] -> false
               | x :: rest ->
                   if Operand.equal x want then begin
                     pool := List.rev_append acc rest;
                     true
                   end
                   else take (x :: acc) rest
             in
             take [] !pool)
           ordered
       in
       List.exists
         (fun o1 -> List.exists (fun o2 -> (not (o1 == o2)) && covers o1 o2) entries)
         entries)
    then begin
      incr permutes;
      charge params.permute
    end
    else begin
      let n = List.length ordered in
      let all_equal =
        match ordered with
        | first :: rest -> List.for_all (Operand.equal first) rest
        | [] -> false
      in
      if all_equal then begin
        (* Splat: one broadcast, plus one element load when the value
           comes from memory. *)
        charge params.broadcast;
        match ordered with
        | Operand.Elem _ :: _ ->
            incr scalar_memops_in_packs;
            charge params.scalar_load
        | _ -> ()
      end
      else
      match classify ordered with
      | `All_elem ->
          if query.contiguous ordered then begin
            incr vector_memops;
            charge params.vector_load;
            if not (query.aligned ordered) then charge params.unaligned_extra
          end
          else if query.contiguous (List.rev ordered) then begin
            incr vector_memops;
            incr permutes;
            charge (params.vector_load +. params.permute);
            if not (query.aligned (List.rev ordered)) then charge params.unaligned_extra
          end
          else begin
            scalar_memops_in_packs := !scalar_memops_in_packs + n;
            inserts := !inserts + n;
            charge (float_of_int n *. (params.scalar_load +. params.insert))
          end
      | `All_scalar ->
          if query.contiguous ordered then begin
            incr vector_memops;
            charge params.vector_load;
            if not (query.aligned ordered) then charge params.unaligned_extra
          end
          else begin
            inserts := !inserts + n;
            charge (float_of_int n *. params.insert)
          end
      | `Mixed ->
          List.iter
            (fun op ->
              incr inserts;
              charge params.insert;
              match op with
              | Operand.Elem _ ->
                  incr scalar_memops_in_packs;
                  charge params.scalar_load
              | Operand.Scalar _ | Operand.Const _ -> ())
            ordered
    end
  in
  let pack_dest item_idx ordered =
    let n = List.length ordered in
    match classify ordered with
    | `All_elem ->
        if query.contiguous ordered then begin
          incr vector_memops;
          charge params.vector_store;
          if not (query.aligned ordered) then charge params.unaligned_extra
        end
        else if query.contiguous (List.rev ordered) then begin
          incr vector_memops;
          incr permutes;
          charge (params.vector_store +. params.permute);
          if not (query.aligned (List.rev ordered)) then charge params.unaligned_extra
        end
        else begin
          extracts := !extracts + n;
          scalar_memops_in_packs := !scalar_memops_in_packs + n;
          charge (float_of_int n *. (params.extract +. params.scalar_store))
        end
    | `All_scalar | `Mixed ->
        (* Scalars stay in the vector register unless some later Single
           (or the world outside the block) needs them as scalars. *)
        let needed =
          List.filter
            (function
              | Operand.Scalar v ->
                  query.scalar_live_out v
                  ||
                  (match Hashtbl.find_opt scalar_used_by_single_after v with
                  | Some last -> last > item_idx
                  | None -> false)
              | Operand.Const _ | Operand.Elem _ -> false)
            ordered
        in
        if needed <> [] then
          if List.length needed = n && query.contiguous ordered then begin
            (* The scalar layout optimization placed them adjacently:
               one vector store materialises all of them. *)
            incr vector_memops;
            charge params.vector_store
          end
          else begin
            extracts := !extracts + List.length needed;
            charge (float_of_int (List.length needed) *. (params.extract +. params.scalar_store))
          end
  in
  Array.iteri
    (fun idx item ->
      match item with
      | Schedule.Single sid ->
          let s = Block.find block sid in
          charge (scalar_stmt_cost params s);
          Live.invalidate live ~defs:[ Stmt.def s ]
      | Schedule.Superword order ->
          let stmts = List.map (Block.find block) order in
          let first = List.hd stmts in
          vector_ops := !vector_ops + Stmt.op_count first;
          charge (weighted_ops params ~base:params.vector_op first.Stmt.rhs);
          let npos = Stmt.position_count first in
          for pos = 1 to npos - 1 do
            pack_source (List.map (fun s -> List.nth (Stmt.positions s) pos) stmts)
          done;
          pack_dest idx (List.map Stmt.def stmts);
          Live.invalidate live ~defs:(List.map Stmt.def stmts);
          for pos = npos - 1 downto 0 do
            let ordered = List.map (fun s -> List.nth (Stmt.positions s) pos) stmts in
            if not (Pack.all_constant (Pack.of_operands ordered)) then
              Live.insert live ordered
          done)
    items;
  {
    scalar_cost;
    vector_cost = !vcost;
    vector_ops = !vector_ops;
    vector_memops = !vector_memops;
    scalar_memops_in_packs = !scalar_memops_in_packs;
    inserts = !inserts;
    extracts = !extracts;
    permutes = !permutes;
  }

let profitable ?params ~query block sched =
  let e = estimate ?params ~query block sched in
  e.vector_cost < e.scalar_cost
