(** The live superword set (paper §4.3): ordered superwords most likely
    resident in vector registers at the current scheduling point.

    Shared by the scheduler (reuse-driven group selection and lane
    ordering), the cost model (§4.3's profitability gate), and code
    generation (realising reuses as register moves).  Entries are
    ordered operand lists; capacity models the vector register file
    with least-recently-inserted eviction. *)

open Slp_ir

type t

val create : capacity:int -> t
val entries : t -> Operand.t list list
(** Most recently inserted first. *)

val size : t -> int
val mem_exact : t -> Operand.t list -> bool
val mem_multiset : t -> Pack.t -> bool

val find_multiset : t -> Pack.t -> Operand.t list option
(** Most recent live superword carrying exactly this multiset. *)

val invalidate : t -> defs:Operand.t list -> unit
(** Drop every superword containing an operand that may alias one of
    the (re)defined operands. *)

val insert : t -> Operand.t list -> unit
(** Insert an ordered superword, replacing any entry with the same
    multiset; evicts the oldest entry beyond capacity. *)

val copy : t -> t
