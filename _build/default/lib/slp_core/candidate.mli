(** Candidate group identification — step 1 of the basic grouping
    algorithm (paper §4.2.1).

    A candidate group is an unordered pair of isomorphic,
    dependence-free units whose combined width fits the SIMD datapath.
    Two candidates conflict when they share a unit or when their
    member statements depend on each other both ways (selecting both
    would create a dependence cycle). *)

open Slp_ir

type t = {
  cid : int;  (** Dense candidate index, assigned in discovery order. *)
  u1 : int;  (** Smaller unit uid. *)
  u2 : int;  (** Larger unit uid. *)
  packs : Pack.t list;
      (** Merged variable packs, one per operand position (lhs first),
          all-constant packs omitted; duplicates kept (a pack used at
          two positions counts twice towards reuse). *)
  adjacency : int;
      (** Tie-break score: 1,000,000 for a contiguous store-target
          pack, otherwise the number of contiguous source packs (the
          paper breaks equal-weight ties randomly; this is
          deterministic and never overrides a weight difference). *)
  scattered_store : bool;
      (** Memory store target that is not consecutive — committing the
          candidate forces an unpack/scatter that no layout change can
          repair, so its weight carries a fixed penalty. *)
}

val find :
  env:Env.t ->
  config:Config.t ->
  units:Units.t list ->
  deps:Units.Deps.unit_graph ->
  t list
(** All candidate groups over the current units, deterministic order
    (sorted by [(u1, u2)]). *)

val units_of : t -> int * int
val shares_unit : t -> t -> bool

val conflicts : deps:Units.Deps.unit_graph -> t -> t -> bool
(** Shared unit, or mutual direct dependence between the two merged
    groups. *)

val pp : Format.formatter -> t -> unit
