type t = {
  cid : int;
  u1 : int;
  u2 : int;
  packs : Pack.t list;
  adjacency : int;
  scattered_store : bool;
}

(* Tie-break score.  A contiguous store target dominates (a scattered
   store is unfixable, while scattered loads can be repaired by the
   data layout stage); among candidates whose stores are equivalent,
   contiguous source packs are preferred. *)
let adjacency_score ~env packs =
  let contiguous p = Slp_analysis.Alignment.contiguous_pack ~env (Pack.operands p) in
  match packs with
  | dest :: sources ->
      if contiguous dest then 1_000_000
      else List.length (List.filter contiguous sources)
  | [] -> 0

let merged_packs (a : Units.t) (b : Units.t) =
  Array.to_list (Array.map2 Pack.union a.Units.positions b.Units.positions)
  |> List.filter (fun p -> not (Pack.all_constant p))

let find ~env ~config ~units ~deps =
  let sorted = List.sort (fun (a : Units.t) b -> compare a.Units.uid b.Units.uid) units in
  let next = ref 0 in
  let rec pairs acc = function
    | [] -> List.rev acc
    | (u : Units.t) :: rest ->
        let acc =
          List.fold_left
            (fun acc (v : Units.t) ->
              if
                Units.isomorphic ~env u v
                && Units.width_bits u + Units.width_bits v
                   <= config.Config.datapath_bits
                && Units.Deps.mergeable deps u.Units.uid v.Units.uid
              then begin
                let cid = !next in
                incr next;
                let packs = merged_packs u v in
                let adjacency = adjacency_score ~env packs in
                {
                  cid;
                  u1 = u.Units.uid;
                  u2 = v.Units.uid;
                  packs;
                  adjacency;
                  scattered_store = u.Units.mem_dest && adjacency < 1_000_000;
                }
                :: acc
              end
              else acc)
            acc rest
        in
        pairs acc rest
  in
  pairs [] sorted

let units_of c = (c.u1, c.u2)

let shares_unit a b = a.u1 = b.u1 || a.u1 = b.u2 || a.u2 = b.u1 || a.u2 = b.u2

let conflicts ~deps a b =
  shares_unit a b
  ||
  let dep_group x1 x2 y1 y2 =
    (* some unit of the first group depends directly on some unit of
       the second *)
    Units.Deps.depends deps x1 y1
    || Units.Deps.depends deps x1 y2
    || Units.Deps.depends deps x2 y1
    || Units.Deps.depends deps x2 y2
  in
  dep_group a.u1 a.u2 b.u1 b.u2 && dep_group b.u1 b.u2 a.u1 a.u2

let pp ppf c =
  Format.fprintf ppf "C%d{u%d,u%d}" c.cid c.u1 c.u2;
  List.iter (fun p -> Format.fprintf ppf " %a" Pack.pp p) c.packs
