module Graph = Slp_util.Graph

type node = { nid : int; pack : Pack.t; owner : int }

type t = { graph : node Graph.Undirected.t; by_owner : (int, int list) Hashtbl.t }

let build ~candidates ~conflict =
  let graph = Graph.Undirected.create () in
  let by_owner = Hashtbl.create 32 in
  let next = ref 0 in
  List.iter
    (fun (c : Candidate.t) ->
      let cid = c.Candidate.cid in
      let my_nodes =
        List.map
          (fun pack ->
            let nid = !next in
            incr next;
            let node = { nid; pack; owner = cid } in
            Graph.Undirected.add_node graph nid node;
            nid)
          c.Candidate.packs
      in
      (* Connect to all previously-built nodes of conflicting owners. *)
      Hashtbl.iter
        (fun other_cid other_nodes ->
          if other_cid <> cid && conflict cid other_cid then
            List.iter
              (fun a -> List.iter (fun b -> Graph.Undirected.add_edge graph a b) other_nodes)
              my_nodes)
        by_owner;
      Hashtbl.replace by_owner cid my_nodes)
    candidates;
  { graph; by_owner }

let live_nodes t =
  List.filter_map
    (fun nid ->
      if Graph.Undirected.mem_node t.graph nid then
        Some (Graph.Undirected.label t.graph nid)
      else None)
    (Graph.Undirected.nodes t.graph)

let nodes t = live_nodes t
let node_count t = Graph.Undirected.node_count t.graph
let edge_count t = Graph.Undirected.edge_count t.graph
let has_edge t a b = Graph.Undirected.mem_edge t.graph a b

let nodes_of_owner t cid =
  match Hashtbl.find_opt t.by_owner cid with
  | None -> []
  | Some nids ->
      List.filter_map
        (fun nid ->
          if Graph.Undirected.mem_node t.graph nid then
            Some (Graph.Undirected.label t.graph nid)
          else None)
        nids

let alive t cid = nodes_of_owner t cid <> []

let matching t ~pack_types ~exclude_owner ~compatible =
  List.filter
    (fun n ->
      n.owner <> exclude_owner
      && Pack.Set.mem n.pack pack_types
      && compatible n.owner)
    (live_nodes t)

let edges_among t selected =
  let ids = List.map (fun n -> n.nid) selected in
  let rec pairs acc = function
    | [] -> acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b -> if has_edge t a b then (a, b) :: acc else acc)
            acc rest
        in
        pairs acc rest
  in
  pairs [] ids

let remove_decided t cid =
  match Hashtbl.find_opt t.by_owner cid with
  | None -> ()
  | Some nids ->
      let doomed =
        List.concat_map
          (fun nid ->
            if Graph.Undirected.mem_node t.graph nid then
              nid :: Graph.Undirected.neighbours t.graph nid
            else [])
          nids
        |> List.sort_uniq compare
      in
      List.iter (Graph.Undirected.remove_node t.graph) doomed

let remove_owner t cid =
  match Hashtbl.find_opt t.by_owner cid with
  | None -> ()
  | Some nids -> List.iter (Graph.Undirected.remove_node t.graph) nids

let pp ppf t =
  Format.fprintf ppf "@[<v>VP: %d nodes, %d edges@," (node_count t) (edge_count t);
  List.iter
    (fun n -> Format.fprintf ppf "  n%d %a (C%d)@," n.nid Pack.pp n.pack n.owner)
    (nodes t);
  Format.fprintf ppf "@]"
