module Graph = Slp_util.Graph

type elimination = Max_degree | Arbitrary

let pack_types_of packs = Pack.Set.of_list packs

let auxiliary_survivors ~vp ~conflict ~elimination ~pack_types ~cand =
  let cid = cand.Candidate.cid in
  let selected =
    Packgraph.matching vp ~pack_types ~exclude_owner:cid ~compatible:(fun owner ->
        not (conflict owner cid))
  in
  (* Build the auxiliary graph over the selected nodes with VP edges. *)
  let ag = Graph.Undirected.create () in
  List.iter
    (fun (n : Packgraph.node) -> Graph.Undirected.add_node ag n.Packgraph.nid n)
    selected;
  List.iter
    (fun (a, b) -> Graph.Undirected.add_edge ag a b)
    (Packgraph.edges_among vp selected);
  (* Greedy conflict elimination: drop nodes until edgeless. *)
  let pick_victim () =
    match elimination with
    | Max_degree -> Graph.Undirected.max_degree_node ag
    | Arbitrary ->
        List.find_opt (fun id -> Graph.Undirected.degree ag id > 0) (Graph.Undirected.nodes ag)
  in
  let rec eliminate () =
    if not (Graph.Undirected.is_edgeless ag) then begin
      (match pick_victim () with
      | Some id -> Graph.Undirected.remove_node ag id
      | None -> ());
      eliminate ()
    end
  in
  eliminate ();
  List.map (Graph.Undirected.label ag) (Graph.Undirected.nodes ag)

let weight ~vp ~conflict ~elimination ~decided_packs ~cand =
  let all_packs = decided_packs @ cand.Candidate.packs in
  let pack_types = pack_types_of all_packs in
  if Pack.Set.is_empty pack_types then 0.0
  else begin
    let survivors = auxiliary_survivors ~vp ~conflict ~elimination ~pack_types ~cand in
    let count_type t =
      let in_survivors =
        List.length
          (List.filter (fun (n : Packgraph.node) -> Pack.equal n.Packgraph.pack t) survivors)
      in
      let in_packs = List.length (List.filter (Pack.equal t) all_packs) in
      in_survivors + in_packs
    in
    let total_reuse =
      Pack.Set.fold (fun t acc -> acc + (count_type t - 1)) pack_types 0
    in
    float_of_int total_reuse /. float_of_int (Pack.Set.cardinal pack_types)
  end
