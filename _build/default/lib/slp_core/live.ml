open Slp_ir

type t = { mutable entries : Operand.t list list; capacity : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Live.create: capacity must be positive";
  { entries = []; capacity }

let entries t = t.entries
let size t = List.length t.entries
let mem_exact t ordered = List.exists (List.equal Operand.equal ordered) t.entries

let mem_multiset t pack =
  List.exists (fun l -> Pack.equal (Pack.of_operands l) pack) t.entries

let find_multiset t pack =
  List.find_opt (fun l -> Pack.equal (Pack.of_operands l) pack) t.entries

let invalidate t ~defs =
  t.entries <-
    List.filter
      (fun l -> not (List.exists (fun d -> List.exists (Operand.may_alias d) l) defs))
      t.entries

let insert t ordered =
  let pack = Pack.of_operands ordered in
  t.entries <-
    ordered
    :: List.filter (fun l -> not (Pack.equal (Pack.of_operands l) pack)) t.entries;
  if List.length t.entries > t.capacity then
    t.entries <- List.filteri (fun i _ -> i < t.capacity) t.entries

let copy t = { entries = t.entries; capacity = t.capacity }
