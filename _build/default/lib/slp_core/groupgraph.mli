(** The statement grouping graph SG and the auxiliary-graph weight
    computation — step 3 of the basic grouping algorithm (paper
    §4.2.1).

    Nodes are units, edges are candidate groups, and each edge weight
    estimates the average superword reuse the candidate would bring to
    the whole basic block: build an auxiliary graph of compatible
    same-pack VP nodes, greedily eliminate conflicts by removing
    highest-degree nodes, then average [(N_t - 1)] over the pack types
    of the decided groups plus the candidate. *)

type elimination = Max_degree | Arbitrary
(** Conflict-elimination order in the auxiliary graph.  [Max_degree]
    is the paper's greedy rule; [Arbitrary] (insertion order) exists
    for the ablation bench. *)

val auxiliary_survivors :
  vp:Packgraph.t ->
  conflict:(int -> int -> bool) ->
  elimination:elimination ->
  pack_types:Pack.Set.t ->
  cand:Candidate.t ->
  Packgraph.node list
(** The auxiliary graph for [cand] after conflict elimination: VP
    nodes matching [pack_types], excluding the candidate's own nodes
    and nodes of conflicting candidates, with a maximal conflict-free
    subset retained. *)

val weight :
  vp:Packgraph.t ->
  conflict:(int -> int -> bool) ->
  elimination:elimination ->
  decided_packs:Pack.t list ->
  cand:Candidate.t ->
  float
(** The candidate's estimated average superword reuse (the edge weight
    of SG).  [decided_packs] lists, with multiplicity, the packs of all
    groups decided so far — they count towards N_t, reflecting reuse
    against already-made decisions. *)
