(** Loop unrolling — the paper's SLP-exposing pre-processing step
    ("for loop-intensive applications, loop unrolling can be used to
    reveal more opportunities for short SIMD operations", §3).

    Innermost loops with statically-known trip counts are unrolled by
    [factor]; copies are fused into one basic block.  Block-private
    scalar temporaries (first access is a definition) are renamed per
    copy — all but the last copy, so last-value semantics of the
    original names survive — removing the false dependences that would
    otherwise serialise the copies.  A remainder loop is emitted when
    the trip count is not a multiple of [factor]. *)

open Slp_ir

val privatisable : Block.t -> string list
(** Scalars whose first access in the block is a definition — safe to
    rename per unrolled copy. *)

val unroll_block : Block.t -> index:string -> factor:int -> copy_step:int -> Block.t
(** Fuse [factor] copies of [b], substituting [index := index + k·copy_step]
    in copy [k] and renaming privatisable scalars in copies [0..factor-2].
    Exposed for testing. *)

val program : factor:int -> Program.t -> Program.t
(** Unroll every innermost loop of the program.  Loops whose trip count
    is unknown or smaller than [factor] are left untouched.  The
    environment is extended with the renamed temporaries.  [factor >= 1];
    factor 1 is the identity. *)

val renamed : string -> copy:int -> string
(** Naming scheme for privatised temporaries ("a" -> "a__u1"). *)
