lib/transform/simplify.mli: Block Expr Program Slp_ir
