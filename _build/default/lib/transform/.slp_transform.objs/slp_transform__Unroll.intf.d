lib/transform/unroll.mli: Block Program Slp_ir
