lib/transform/unroll.ml: Affine Block Env Hashtbl List Operand Option Printf Program Slp_ir Stmt String
