lib/transform/simplify.ml: Block Expr Fun Hashtbl List Operand Program Slp_ir Stmt Types
