open Slp_ir

let rec fold_expr e =
  match e with
  | Expr.Leaf _ -> e
  | Expr.Un (op, inner) -> begin
      match fold_expr inner with
      | Expr.Leaf (Operand.Const c) -> Expr.Leaf (Operand.Const (Types.eval_unop op c))
      | folded -> Expr.Un (op, folded)
    end
  | Expr.Bin (op, l, r) -> begin
      let l = fold_expr l and r = fold_expr r in
      match (op, l, r) with
      | _, Expr.Leaf (Operand.Const a), Expr.Leaf (Operand.Const b) ->
          Expr.Leaf (Operand.Const (Types.eval_binop op a b))
      | Types.Add, Expr.Leaf (Operand.Const 0.0), x
      | Types.Add, x, Expr.Leaf (Operand.Const 0.0)
      | Types.Sub, x, Expr.Leaf (Operand.Const 0.0)
      | Types.Mul, Expr.Leaf (Operand.Const 1.0), x
      | Types.Mul, x, Expr.Leaf (Operand.Const 1.0)
      | Types.Div, x, Expr.Leaf (Operand.Const 1.0) ->
          x
      | _, _, _ -> Expr.Bin (op, l, r)
    end

let fold_block (b : Block.t) =
  {
    b with
    Block.stmts =
      List.map (fun (s : Stmt.t) -> { s with Stmt.rhs = fold_expr s.Stmt.rhs }) b.Block.stmts;
  }

let fold_program prog = Program.map_blocks prog ~f:fold_block

let dce_block ~live_out (b : Block.t) =
  (* Walk backwards, tracking scalars needed later. *)
  let needed = Hashtbl.create 16 in
  let keep =
    List.rev_map
      (fun (s : Stmt.t) ->
        let defines_dead_scalar =
          match s.Stmt.lhs with
          | Operand.Scalar v -> (not (Hashtbl.mem needed v)) && not (live_out v)
          | Operand.Const _ | Operand.Elem _ -> false
        in
        if defines_dead_scalar then None
        else begin
          (match s.Stmt.lhs with
          | Operand.Scalar v -> Hashtbl.remove needed v
          | Operand.Const _ | Operand.Elem _ -> ());
          List.iter
            (function
              | Operand.Scalar v -> Hashtbl.replace needed v ()
              | Operand.Const _ | Operand.Elem _ -> ())
            (Stmt.uses s);
          List.iter
            (fun v -> Hashtbl.replace needed v ())
            (Operand.used_vars s.Stmt.lhs);
          Some s
        end)
      (List.rev b.Block.stmts)
    |> List.filter_map Fun.id
  in
  { b with Block.stmts = keep }

let dce_program ?(live_out = fun _ -> true) prog =
  Program.map_blocks prog ~f:(dce_block ~live_out)
