(** Block-level clean-up passes: constant folding and (optional)
    dead-statement elimination.

    These are the "other low-level optimizations" of the paper's
    post-processing module; they also keep synthetic benchmark kernels
    honest by removing trivially-dead work before any scheme is
    measured. *)

open Slp_ir

val fold_expr : Expr.t -> Expr.t
(** Bottom-up constant folding ([1*x -> x], [x+0 -> x], const·const
    evaluated).  Folding never changes evaluation results. *)

val fold_block : Block.t -> Block.t
val fold_program : Program.t -> Program.t

val dce_block : live_out:(string -> bool) -> Block.t -> Block.t
(** Remove statements that define a scalar that is neither read later
    in the block (before being overwritten) nor [live_out].  Array
    stores are never removed. *)

val dce_program : ?live_out:(string -> bool) -> Program.t -> Program.t
(** Default [live_out]: every scalar is live (identity unless narrowed). *)
