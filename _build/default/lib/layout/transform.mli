(** The general affine transformation and mapping/replication
    machinery of paper §5.2 (Equations 1-8).

    Given a reference [r = Q·i + O] (Equation 1):

    - {!spatial_transform} solves [Ldefault·M = Lopt] (Equation 2) for
      a layout transformation matrix M and produces the transformed
      access [r1 = Q1·i + O1] with [Q1 = M·Q], [O1 = M·O] (Equation 3);
    - {!mapping_1d} is the one-dimensional mapping function [f(d) =
      (d - b)/a · L + p] (Equation 4);
    - {!mapping_nd} is the general N-dimensional mapping of Equations
      6-8: invert the truncated access matrix Q1' to recover the
      iteration sub-vector, then position the element at stride L,
      offset p, in the innermost dimension of the new array.

    {!Array_layout} executes the 1-D case end-to-end; these functions
    also serve multi-dimensional analyses and are exercised by unit
    tests against the paper's examples. *)

open Slp_util

val spatial_transform :
  l_default:Mat.t -> l_opt:Mat.t -> Mat.t option
(** Solve [Ldefault·M = Lopt] for M; [None] when [Ldefault] is
    singular. *)

val transformed_access :
  m:Mat.t -> q:Mat.t -> offset:Rat.t array -> Mat.t * Rat.t array
(** Equation 3: [(Q1, O1) = (M·Q, M·O)]. *)

val mapping_1d : a:int -> b:int -> lanes:int -> position:int -> int -> int option
(** [mapping_1d ~a ~b ~lanes ~position d] = [L·(d-b)/a + p] when [a]
    divides [d-b] (the element is accessed), [None] otherwise. *)

val mapping_nd :
  q1:Mat.t ->
  offset:Rat.t array ->
  lanes:int ->
  position:int ->
  int array ->
  int array option
(** Equations 6-8: map data index [d] of the transformed array to its
    index in the replicated array [B].  Requires a square nonsingular
    truncated matrix [Q1'] (drop last row/column of [q1]); returns
    [None] when the element is not accessed by the reference or the
    matrix is singular. *)
