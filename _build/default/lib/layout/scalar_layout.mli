(** Data layout optimization for scalar superwords (paper §5.1).

    Scalar superwords produced by stage 1 are sorted by occurrence;
    the most frequent ones get consecutive aligned 8-byte slots in the
    scalar segment, in lane order, so that packing or unpacking them
    costs one vector memory operation instead of per-lane register
    moves.  Superwords sharing a variable with an already-placed one
    are skipped ("those with higher access frequencies are handled
    with priority"). *)

open Slp_ir

type placement = {
  offsets : (string * int) list;  (** Byte offsets in the scalar segment. *)
  placed_superwords : string list list;  (** Lane-ordered names, by priority. *)
  skipped : int;  (** Superwords skipped due to conflicts. *)
}

val collect_scalar_superwords :
  env:Env.t -> Slp_core.Driver.program_plan -> (string list * int) list
(** All-scalar superwords (lane-ordered names) with occurrence counts,
    most frequent first; orderings of the same variable multiset are
    merged onto the dominant ordering. *)

val place : env:Env.t -> Slp_core.Driver.program_plan -> placement
