lib/layout/scalar_layout.ml: Block Env Hashtbl List Operand Option Slp_core Slp_ir Stmt String
