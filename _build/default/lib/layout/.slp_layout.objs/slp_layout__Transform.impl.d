lib/layout/transform.ml: Array List Mat Rat Slp_util
