lib/layout/scalar_layout.mli: Env Slp_core Slp_ir
