lib/layout/array_layout.ml: Affine Block Env Expr Hashtbl List Operand Option Printf Program Slp_core Slp_ir Slp_vm Stmt String
