lib/layout/transform.mli: Mat Rat Slp_util
