lib/layout/array_layout.mli: Slp_core Slp_ir Slp_vm
