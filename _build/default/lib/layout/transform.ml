open Slp_util

let spatial_transform ~l_default ~l_opt =
  (* Ldefault·M = Lopt  =>  M = Ldefault^{-1}·Lopt *)
  match Mat.inverse l_default with
  | None -> None
  | Some inv -> Some (Mat.mul inv l_opt)

let transformed_access ~m ~q ~offset = (Mat.mul m q, Mat.mul_vec m offset)

let mapping_1d ~a ~b ~lanes ~position d =
  if a = 0 then None
  else begin
    let num = d - b in
    if num mod a <> 0 then None
    else begin
      let t = num / a in
      if t < 0 then None else Some ((lanes * t) + position)
    end
  end

let mapping_nd ~q1 ~offset ~lanes ~position d =
  let n = Mat.rows q1 in
  if Array.length d <> n || Array.length offset <> n || n < 2 then None
  else begin
    (* Equation 6-7: recover the outer iteration sub-vector i' from
       d' = Q1'·i' + O', i.e. i' = Q1'^{-1}·(d' - O'). *)
    let q1' = Mat.drop_last_row_col q1 in
    match Mat.inverse q1' with
    | None -> None
    | Some inv ->
        let d' =
          Array.init (n - 1) (fun k -> Rat.sub (Rat.of_int d.(k)) offset.(k))
        in
        let i' = Mat.mul_vec inv d' in
        if not (Array.for_all Rat.is_integer i') then None
        else begin
          (* Equation 8: the innermost coordinate.  The last dimension
             of d satisfies d_n = q_{n,1..n-1}·i' + q_{n,n}·i_n + O_n;
             solve for the innermost iteration count i_n. *)
          let q_last_row = Mat.row q1 (n - 1) in
          let partial =
            Array.to_list (Array.sub q_last_row 0 (n - 1))
            |> List.mapi (fun k c -> Rat.mul c i'.(k))
            |> List.fold_left Rat.add Rat.zero
          in
          let q_nn = q_last_row.(n - 1) in
          if Rat.is_zero q_nn then None
          else begin
            let i_n =
              Rat.div
                (Rat.sub (Rat.sub (Rat.of_int d.(n - 1)) offset.(n - 1)) partial)
                q_nn
            in
            if not (Rat.is_integer i_n) then None
            else begin
              let f' = Array.map Rat.to_int_exn i' in
              let inner = (lanes * Rat.to_int_exn i_n) + position in
              Some (Array.append f' [| inner |])
            end
          end
        end
  end
