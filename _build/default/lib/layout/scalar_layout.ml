open Slp_ir
module Sched = Slp_core.Schedule
module Driver = Slp_core.Driver

(* Ordered packs (every position) of every superword statement in every
   vectorized block. *)
let all_ordered_packs (plan : Driver.program_plan) =
  List.concat_map
    (fun (p : Driver.block_plan) ->
      match p.Driver.schedule with
      | None -> []
      | Some sched ->
          List.concat_map
            (function
              | Sched.Single _ -> []
              | Sched.Superword order ->
                  let stmts = List.map (Block.find p.Driver.block) order in
                  let npos = Stmt.position_count (List.hd stmts) in
                  List.init npos (fun pos ->
                      List.map (fun s -> List.nth (Stmt.positions s) pos) stmts))
            sched.Sched.items)
    plan.Driver.plans

let scalar_lanes ~env ordered =
  let names =
    List.map
      (function
        | Operand.Scalar v when Env.scalar_ty env v <> None -> Some v
        | Operand.Const _ | Operand.Scalar _ | Operand.Elem _ -> None)
      ordered
  in
  if List.for_all Option.is_some names && List.length names >= 2 then
    Some (List.map Option.get names)
  else None

let collect_scalar_superwords ~env (plan : Driver.program_plan) =
  let superwords = List.filter_map (scalar_lanes ~env) (all_ordered_packs plan) in
  (* Group by variable multiset; count occurrences; keep the dominant
     lane order. *)
  let by_multiset = Hashtbl.create 16 in
  List.iter
    (fun names ->
      let key = List.sort String.compare names in
      let existing = Option.value (Hashtbl.find_opt by_multiset key) ~default:[] in
      Hashtbl.replace by_multiset key (names :: existing))
    superwords;
  Hashtbl.fold
    (fun _ orderings acc ->
      let count = List.length orderings in
      (* Dominant ordering: the most frequent; ties broken towards the
         lexicographically smallest for determinism. *)
      let tally = Hashtbl.create 4 in
      List.iter
        (fun o ->
          Hashtbl.replace tally o
            (1 + Option.value (Hashtbl.find_opt tally o) ~default:0))
        orderings;
      let dominant =
        Hashtbl.fold
          (fun o n best ->
            match best with
            | Some (bn, bo) when bn > n || (bn = n && compare bo o <= 0) -> best
            | _ -> Some (n, o))
          tally None
        |> Option.get |> snd
      in
      (dominant, count) :: acc)
    by_multiset []
  |> List.sort (fun (oa, ca) (ob, cb) ->
         if ca <> cb then compare cb ca else compare oa ob)

type placement = {
  offsets : (string * int) list;
  placed_superwords : string list list;
  skipped : int;
}

let place ~env plan =
  let ranked = collect_scalar_superwords ~env plan in
  let assigned = Hashtbl.create 16 in
  let next = ref 0 in
  let offsets = ref [] in
  let placed = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun (names, _count) ->
      if List.exists (Hashtbl.mem assigned) names then incr skipped
      else begin
        let lanes = List.length names in
        let align = 8 * lanes in
        let base = (!next + align - 1) / align * align in
        List.iteri
          (fun k v ->
            Hashtbl.replace assigned v ();
            offsets := (v, base + (8 * k)) :: !offsets)
          names;
        next := base + (8 * lanes);
        placed := names :: !placed
      end)
    ranked;
  {
    offsets = List.rev !offsets;
    placed_superwords = List.rev !placed;
    skipped = !skipped;
  }
