(* Data layout optimization in action (paper §5.2).

   A damped-stencil kernel reads a coefficient table at stride two —
   every pack of coefficients needs a gather.  The layout stage
   replicates the accessed elements into an interleaved array
   (Figure 14) so the packs become single aligned vector loads.

     dune exec examples/stencil_layout.exe *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Counters = Slp_vm.Counters

let source =
  {|
f64 u[2100];
f64 unew[2100];
f64 w[4300];
for t = 0 to 64 {
  for i = 1 to 1024 {
    unew[i] = w[2*i] * u[i] + w[2*i+1] * (u[i-1] + u[i+1]);
  }
}
|}

let () =
  let prog = Slp_frontend.Parser.parse ~name:"stencil" source in
  let machine = Machine.intel_dunnington in
  let run scheme =
    let compiled = Pipeline.compile ~scheme ~machine prog in
    let r = Pipeline.execute compiled in
    (compiled, r)
  in
  let cg, rg = run Pipeline.Global in
  let cl, rl = run Pipeline.Global_layout in
  ignore cg;
  Format.printf "Global:        %10.0f cycles, %6d pack loads@."
    (Counters.total_cycles rg.Pipeline.counters)
    rg.Pipeline.counters.Counters.pack_loads;
  Format.printf "Global+Layout: %10.0f cycles, %6d pack loads, %d replica array(s), %.0f setup cycles@."
    (Counters.total_cycles rl.Pipeline.counters)
    rl.Pipeline.counters.Counters.pack_loads cl.Pipeline.replica_count
    rl.Pipeline.counters.Counters.setup_cycles;
  Format.printf "both correct:  %b %b@." rg.Pipeline.correct rl.Pipeline.correct;
  match cl.Pipeline.vector with
  | Some v when cl.Pipeline.replica_count > 0 ->
      Format.printf "@.replication code (runs once):@.";
      List.iter
        (function
          | Slp_vm.Visa.Loop _ as item ->
              Format.printf "%a@."
                (fun ppf it ->
                  Slp_vm.Visa.pp_program ppf
                    { v with Slp_vm.Visa.setup = [ it ]; body = [] })
                item
          | Slp_vm.Visa.Block _ -> ())
        v.Slp_vm.Visa.setup
  | _ -> ()
