(* Multicore execution (paper Figure 21).

   The outermost loop's iteration space is split across simulated
   cores; memory contention inflates DRAM latency with the active core
   count, so the vectorized code — which issues fewer memory
   operations — keeps (and slightly grows) its advantage.

     dune exec examples/multicore_scaling.exe *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Suite = Slp_benchmarks.Suite
module Counters = Slp_vm.Counters

let () =
  let b = Suite.find "sp" in
  let prog = Suite.program b in
  let machine = Machine.intel_dunnington in
  let scalar = Pipeline.compile ~unroll:b.Suite.unroll ~scheme:Pipeline.Scalar ~machine prog in
  let global = Pipeline.compile ~unroll:b.Suite.unroll ~scheme:Pipeline.Global ~machine prog in
  Format.printf "NAS '%s' (%s) on up to %d cores:@.@." b.Suite.name b.Suite.description
    machine.Machine.cores;
  Format.printf "%6s %14s %14s %12s@." "cores" "scalar cycles" "global cycles" "reduction";
  List.iter
    (fun cores ->
      let sc =
        Counters.total_cycles (Pipeline.execute ~cores ~check:false scalar).Pipeline.counters
      in
      let gc =
        Counters.total_cycles (Pipeline.execute ~cores ~check:false global).Pipeline.counters
      in
      Format.printf "%6d %14.0f %14.0f %11.1f%%@." cores sc gc
        (100.0 *. (1.0 -. (gc /. sc))))
    [ 1; 2; 4; 6; 8; 10; 12 ]
