(* The paper's §6 worked example, step by step.

   Builds the Figure 15(a) basic block, runs candidate identification,
   the variable pack conflicting graph, grouping and scheduling, and
   prints each stage — reproducing the transformations of Figures
   15(b)-(d).

     dune exec examples/paper_walkthrough.exe *)

open Slp_ir
module Config = Slp_core.Config

let env () =
  let env = Env.create () in
  List.iter
    (fun v -> Env.declare_scalar env v Types.F64)
    [ "a"; "b"; "c"; "d"; "g"; "h"; "q"; "r" ];
  Env.declare_array env "A" Types.F64 [ 1024 ];
  Env.declare_array env "B" Types.F64 [ 4096 ];
  env

let block () =
  let open Expr.Infix in
  let i4 = 4 @* i "i" and i2 = 2 @* i "i" in
  Block.of_rhs ~label:"fig15a"
    [
      (Operand.Scalar "a", arr "A" [ i "i" ]);
      (Operand.Scalar "c", sc "a" * arr "B" [ i4 ]);
      (Operand.Scalar "g", sc "q" * arr "B" [ i4 @+ -2 ]);
      (Operand.Scalar "b", arr "A" [ i "i" @+ 1 ]);
      (Operand.Scalar "d", sc "b" * arr "B" [ i4 @+ 4 ]);
      (Operand.Scalar "h", sc "r" * arr "B" [ i4 @+ 2 ]);
      (Operand.Elem ("A", [ i2 ]), sc "d" + (sc "a" * sc "c"));
      (Operand.Elem ("A", [ i2 @+ 2 ]), sc "g" + (sc "r" * sc "h"));
    ]

let () =
  let env = env () in
  let config = Config.make ~datapath_bits:128 () in
  let b = block () in
  Format.printf "Figure 15(a) — the input basic block:@.%a@." Block.pp b;

  (* Step 1: candidate groups. *)
  let units = List.map (Slp_core.Units.of_stmt ~env) b.Block.stmts in
  let deps = Slp_core.Units.Deps.build b units in
  let candidates = Slp_core.Candidate.find ~env ~config ~units ~deps in
  Format.printf "@.%d candidate groups:@." (List.length candidates);
  List.iter (fun c -> Format.printf "  %a@." Slp_core.Candidate.pp c) candidates;

  (* Step 2: the variable pack conflicting graph. *)
  let conflict =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (c : Slp_core.Candidate.t) -> Hashtbl.replace tbl c.Slp_core.Candidate.cid c)
      candidates;
    fun a b ->
      a <> b
      && Slp_core.Candidate.conflicts ~deps (Hashtbl.find tbl a) (Hashtbl.find tbl b)
  in
  let vp = Slp_core.Packgraph.build ~candidates ~conflict in
  Format.printf "@.%a@." Slp_core.Packgraph.pp vp;

  (* Steps 3-4 + iteration: the full grouping. *)
  let grouping = Slp_core.Grouping.run ~env ~config b in
  Format.printf "grouping decisions (%d):@." grouping.Slp_core.Grouping.decisions;
  List.iter
    (fun ms ->
      Format.printf "  {%s}@."
        (String.concat ", " (List.map (fun m -> "S" ^ string_of_int m) ms)))
    grouping.Slp_core.Grouping.groups;

  (* Scheduling fixes execution order and lane order (Figure 15(c)). *)
  let sched = Slp_core.Schedule.run ~env ~config b grouping in
  Format.printf "@.schedule (compare Figure 15(c)):@.%a@." Slp_core.Schedule.pp sched;
  Format.printf "@.The paper reports three superword reuses for this grouping@.";
  Format.printf "(<d,g>, <c,h>, <a,r>) versus one for the original SLP algorithm.@."
