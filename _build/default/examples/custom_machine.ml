(* Adopting the framework on your own hardware model.

   Defines a hypothetical in-order embedded core with a narrow cache
   and expensive unaligned access, then sweeps an image kernel across
   SIMD widths to pick the best configuration — the kind of
   design-space exploration the simulator substrate enables.

     dune exec examples/custom_machine.exe *)

module M = Slp_machine.Machine
module Pipeline = Slp_pipeline.Pipeline
module Counters = Slp_vm.Counters

(* An embedded-flavoured machine: slow memory, small L1, cheap ALU,
   pricey packing. *)
let embedded =
  {
    M.name = "Embedded in-order core";
    simd_bits = 128;
    vector_registers = 8;
    cores = 2;
    frequency_ghz = 1.0;
    costs =
      {
        M.scalar_op = 1;
        vector_op = 1;
        divide = 24;
        square_root = 32;
        insert = 4;
        extract = 4;
        permute = 4;
        broadcast = 4;
        load_issue = 2;
        store_issue = 2;
      };
    l1 = { M.size_bytes = 8 * 1024; ways = 2; line_bytes = 32; latency = 2 };
    l2 = { M.size_bytes = 128 * 1024; ways = 4; line_bytes = 32; latency = 12 };
    l3 = { M.size_bytes = 512 * 1024; ways = 8; line_bytes = 32; latency = 30 };
    memory_latency = 120;
    contention_per_core = 0.10;
  }

let source =
  {|
f32 src[4096];
f32 dst[4096];
f32 gain[8600];
for frame = 0 to 16 {
  for i = 0 to 1024 {
    dst[4*i]   = gain[8*i]   * src[4*i];
    dst[4*i+1] = gain[8*i+2] * src[4*i+1];
    dst[4*i+2] = gain[8*i+4] * src[4*i+2];
    dst[4*i+3] = gain[8*i+6] * src[4*i+3];
  }
}
|}

let () =
  let prog = Slp_frontend.Parser.parse ~name:"agc" source in
  Format.printf
    "Automatic gain control on '%s' — scheme and width exploration:@.@."
    embedded.M.name;
  Format.printf "%10s %16s %14s %10s@." "width" "scheme" "cycles" "correct";
  List.iter
    (fun bits ->
      let machine = M.with_simd_bits embedded bits in
      List.iter
        (fun scheme ->
          let compiled = Pipeline.compile ~unroll:(bits / 128) ~scheme ~machine prog in
          let r = Pipeline.execute compiled in
          Format.printf "%7d-bit %16s %14.0f %10b@." bits
            (Pipeline.scheme_name scheme)
            (Counters.total_cycles r.Pipeline.counters)
            r.Pipeline.correct)
        [ Pipeline.Scalar; Pipeline.Global; Pipeline.Global_layout ])
    [ 128; 256 ];
  Format.printf
    "@.The strided gain table is the layout stage's target: Global+Layout@.\
     replicates it once and loads it with aligned vector loads thereafter.@."
