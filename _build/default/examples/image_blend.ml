(* Multimedia motivation: alpha-blend two RGBA images.

   Single-precision pixels mean four lanes per 128-bit register; the
   iterative grouping (paper §4.2.2) first pairs statements, then
   merges the pairs into four-wide superword statements.

     dune exec examples/image_blend.exe *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Counters = Slp_vm.Counters

(* Interleaved RGBA: out = alpha*src + (1-alpha)*dst, per channel. *)
let source =
  {|
f32 src[4096];
f32 dst[4096];
f32 out[4096];
for frame = 0 to 8 {
  for i = 0 to 1024 {
    out[4*i]   = 0.75 * src[4*i]   + 0.25 * dst[4*i];
    out[4*i+1] = 0.75 * src[4*i+1] + 0.25 * dst[4*i+1];
    out[4*i+2] = 0.75 * src[4*i+2] + 0.25 * dst[4*i+2];
    out[4*i+3] = 0.75 * src[4*i+3] + 0.25 * dst[4*i+3];
  }
}
|}

let () =
  let prog = Slp_frontend.Parser.parse ~name:"image_blend" source in
  let machine = Machine.intel_dunnington in
  Format.printf "Blending 1024 RGBA pixels per frame, 8 frames.@.@.";
  List.iter
    (fun scheme ->
      (* The pixel loop already exposes four isomorphic statements per
         iteration, so no unrolling is needed. *)
      let compiled = Pipeline.compile ~unroll:1 ~scheme ~machine prog in
      let r = Pipeline.execute compiled in
      Format.printf "%-14s %8.0f cycles  (%d vector ops, %d packing ops)  correct=%b@."
        (Pipeline.scheme_name scheme)
        (Counters.total_cycles r.Pipeline.counters)
        r.Pipeline.counters.Counters.vector_ops
        (Counters.packing_instructions r.Pipeline.counters)
        r.Pipeline.correct)
    Pipeline.all_schemes;
  (* Show the four-wide groups the iterative grouping built. *)
  let compiled = Pipeline.compile ~unroll:1 ~scheme:Pipeline.Global ~machine prog in
  match compiled.Pipeline.plan with
  | Some plan ->
      List.iter
        (fun (bp : Slp_core.Driver.block_plan) ->
          let g = bp.Slp_core.Driver.grouping in
          if g.Slp_core.Grouping.groups <> [] then
            Format.printf "@.groups after %d round(s):@.%s@."
              g.Slp_core.Grouping.rounds
              (String.concat "\n"
                 (List.map
                    (fun ms ->
                      "  <" ^ String.concat ", " (List.map (fun m -> "S" ^ string_of_int m) ms)
                      ^ ">")
                    g.Slp_core.Grouping.groups)))
        plan.Slp_core.Driver.plans
  | None -> ()
