examples/multicore_scaling.mli:
