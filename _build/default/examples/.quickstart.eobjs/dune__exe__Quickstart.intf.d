examples/quickstart.mli:
