examples/wide_datapath.ml: Format List Slp_frontend Slp_machine Slp_pipeline Slp_vm
