examples/multicore_scaling.ml: Format List Slp_benchmarks Slp_machine Slp_pipeline Slp_vm
