examples/stencil_layout.mli:
