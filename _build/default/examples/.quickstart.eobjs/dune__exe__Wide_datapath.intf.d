examples/wide_datapath.mli:
