examples/custom_machine.ml: Format List Slp_frontend Slp_machine Slp_pipeline Slp_vm
