examples/image_blend.ml: Format List Slp_core Slp_frontend Slp_machine Slp_pipeline Slp_vm String
