examples/paper_walkthrough.ml: Block Env Expr Format Hashtbl List Operand Slp_core Slp_ir String Types
