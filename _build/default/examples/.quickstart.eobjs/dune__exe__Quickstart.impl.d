examples/quickstart.ml: Format List Slp_core Slp_frontend Slp_ir Slp_machine Slp_pipeline Slp_vm
