(* Quickstart: compile a small kernel with the holistic SLP framework
   and watch it vectorize.

     dune exec examples/quickstart.exe *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine

let source =
  {|
f64 X[512];
f64 Y[512];
f64 Z[512];
for i = 0 to 512 {
  Z[i] = 2.0 * X[i] + Y[i];
}
|}

let () =
  (* 1. Parse the kernel language into the IR. *)
  let prog = Slp_frontend.Parser.parse ~name:"axpy" source in
  Format.printf "-- input --@.%a@.@." Slp_ir.Program.pp prog;

  (* 2. Compile with the paper's Global scheme on the Intel model.
     Pre-processing unrolls the loop to fill the 128-bit datapath. *)
  let machine = Machine.intel_dunnington in
  let compiled = Pipeline.compile ~scheme:Pipeline.Global ~machine prog in

  (* 3. Inspect what the optimizer decided. *)
  (match compiled.Pipeline.plan with
  | Some plan ->
      List.iter
        (fun (bp : Slp_core.Driver.block_plan) ->
          match bp.Slp_core.Driver.schedule with
          | Some s ->
              Format.printf "-- schedule for %s --@.%a@.@."
                bp.Slp_core.Driver.block.Slp_ir.Block.label Slp_core.Schedule.pp s
          | None -> ())
        plan.Slp_core.Driver.plans
  | None -> ());

  (* 4. Show the generated vector code. *)
  (match compiled.Pipeline.vector with
  | Some v -> Format.printf "-- vector code --@.%a@.@." Slp_vm.Visa.pp_program v
  | None -> ());

  (* 5. Execute on the simulator: the result must match scalar
     execution bit for bit, and should be faster. *)
  let r = Pipeline.execute compiled in
  Format.printf "-- execution --@.%a@." Slp_vm.Counters.pp r.Pipeline.counters;
  Format.printf "semantics preserved: %b@." r.Pipeline.correct;
  Format.printf "speedup over scalar: %.2fx@."
    (Pipeline.speedup_over_scalar compiled)
