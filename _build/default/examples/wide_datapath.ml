(* Hypothetical wider datapaths (paper Figure 18).

   The iterative grouping keeps merging pairs while superwords fit the
   datapath, so the same kernel compiles to 2-, 4-, 8- and 16-wide
   superword statements as the SIMD width grows.

     dune exec examples/wide_datapath.exe *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Counters = Slp_vm.Counters

let source =
  {|
f64 X[2064];
f64 Y[2064];
f64 Z[2064];
for r = 0 to 4 {
  for i = 0 to 2048 {
    Z[i] = X[i] * Y[i] + 0.5 * X[i];
  }
}
|}

let () =
  let prog = Slp_frontend.Parser.parse ~name:"wide" source in
  Format.printf "%8s %10s %12s %12s %10s@." "width" "unroll" "total instr" "cycles"
    "correct";
  List.iter
    (fun bits ->
      let machine = Machine.with_simd_bits Machine.intel_dunnington bits in
      let unroll = bits / 64 in
      let compiled = Pipeline.compile ~unroll ~scheme:Pipeline.Global ~machine prog in
      let r = Pipeline.execute compiled in
      Format.printf "%5d-bit %10d %12d %12.0f %10b@." bits unroll
        (Counters.total_instructions r.Pipeline.counters)
        (Counters.total_cycles r.Pipeline.counters)
        r.Pipeline.correct)
    [ 128; 256; 512; 1024 ]
