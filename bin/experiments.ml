(* Regenerate the paper's tables and figures.

   Usage:
     experiments                 run everything
     experiments fig16 fig19     run selected reports
     experiments --list          list report ids
     experiments --resilient     degrade failing kernels to scalar
                                 (exit 3 when any kernel bailed out)
     experiments --bailout-report FILE
                                 write the JSON bailout report
     experiments --max-steps N   per-pass step budget (with --resilient)
     experiments --metrics FILE  also write per-kernel metrics JSON
                                 (all six schemes + Global profiler
                                 attribution)
     experiments --gap-report FILE
                                 write the heuristic-gap JSON report
                                 (optimal vs every heuristic, suite +
                                 fuzz corpus)
     experiments --gap-fuzz N    fuzz-corpus sample size for the gap
                                 report (default 1000) *)

module E = Slp_harness.Experiments
module Runner = Slp_harness.Runner
module Pipeline = Slp_pipeline.Pipeline

let registry =
  [
    ("table1", E.table1);
    ("table2", E.table2);
    ("table3", E.table3);
    ("fig16", E.fig16);
    ("fig17", E.fig17);
    ("fig18", E.fig18);
    ("fig19", E.fig19);
    ("fig20", E.fig20);
    ("fig21", E.fig21);
    ("overhead", E.compile_overhead);
    ("ablations", E.ablations);
    ("reuse_value", E.reuse_value);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Pull option flags (and their values) out of the report-id list. *)
  let resilient = ref false in
  let report_path = ref None in
  let metrics_path = ref None in
  let gap_path = ref None in
  let gap_fuzz = ref None in
  let steps = ref None in
  let rec scan acc = function
    | [] -> List.rev acc
    | "--resilient" :: rest ->
        resilient := true;
        scan acc rest
    | "--bailout-report" :: path :: rest ->
        report_path := Some path;
        scan acc rest
    | "--bailout-report" :: [] ->
        prerr_endline "--bailout-report requires a FILE argument";
        exit 2
    | "--metrics" :: path :: rest ->
        metrics_path := Some path;
        scan acc rest
    | "--metrics" :: [] ->
        prerr_endline "--metrics requires a FILE argument";
        exit 2
    | "--gap-report" :: path :: rest ->
        gap_path := Some path;
        scan acc rest
    | "--gap-report" :: [] ->
        prerr_endline "--gap-report requires a FILE argument";
        exit 2
    | "--gap-fuzz" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some v ->
            gap_fuzz := Some v;
            scan acc rest
        | None ->
            prerr_endline "--gap-fuzz requires an integer argument";
            exit 2
      end
    | "--gap-fuzz" :: [] ->
        prerr_endline "--gap-fuzz requires an integer argument";
        exit 2
    | "--max-steps" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some v ->
            steps := Some v;
            scan acc rest
        | None ->
            prerr_endline "--max-steps requires an integer argument";
            exit 2
      end
    | "--max-steps" :: [] ->
        prerr_endline "--max-steps requires an integer argument";
        exit 2
    | a :: rest -> scan (a :: acc) rest
  in
  let args = scan [] args in
  if List.mem "--list" args then
    List.iter (fun (id, _) -> print_endline id) registry
  else begin
    let unknown = List.filter (fun a -> not (List.mem_assoc a registry)) args in
    if unknown <> [] then begin
      prerr_endline ("unknown report(s): " ^ String.concat ", " unknown);
      prerr_endline "use --list to see available ids";
      exit 2
    end;
    if !resilient then begin
      (match !steps with
      | Some s -> Runner.set_resilient ~steps:s true
      | None -> Runner.set_resilient true);
      Runner.clear_bailouts ()
    end;
    (* [--metrics]/[--gap-report] with no report ids write just their
       files; naming reports (or naming none without either flag)
       renders them as before. *)
    let run_reports =
      args <> [] || (!metrics_path = None && !gap_path = None)
    in
    if run_reports then
      List.iter
        (fun (id, f) ->
          if args = [] || List.mem id args then print_string (E.render (f ())))
        registry;
    (match !metrics_path with
    | Some path ->
        let oc = open_out path in
        output_string oc (E.metrics_json ());
        output_char oc '\n';
        close_out oc
    | None -> ());
    (match !gap_path with
    | Some path ->
        let module Gap = Slp_harness.Gap in
        let entries, suite_seconds = Gap.suite_report () in
        let fuzz = Gap.fuzz_sample ?cases:!gap_fuzz () in
        let oc = open_out path in
        output_string oc (Slp_obs.Json.to_string (Gap.to_json ~entries ~suite_seconds ~fuzz));
        output_char oc '\n';
        close_out oc;
        List.iter print_endline (Gap.summary_lines entries);
        Printf.printf
          "gap fuzz: %d case(s), %d bailed, %d dominance violation(s); report \
           written to %s\n"
          fuzz.Gap.f_cases fuzz.Gap.f_bailed fuzz.Gap.f_violations path;
        if fuzz.Gap.f_violations > 0 then exit 4
    | None -> ());
    let bailouts = if !resilient then Runner.bailouts () else [] in
    (match !report_path with
    | Some path ->
        let oc = open_out path in
        output_string oc (Pipeline.bailout_report_json bailouts);
        output_char oc '\n';
        close_out oc
    | None -> ());
    if bailouts <> [] then begin
      Printf.eprintf "%d kernel(s) degraded to scalar:\n" (List.length bailouts);
      List.iter
        (fun (b : Pipeline.bailout) ->
          Printf.eprintf "  %s (%s on %s): [%s] %s\n" b.Pipeline.kernel
            (Pipeline.scheme_name b.Pipeline.scheme)
            b.Pipeline.machine
            (Slp_util.Slp_error.code_name b.Pipeline.error.Slp_util.Slp_error.code)
            b.Pipeline.error.Slp_util.Slp_error.message)
        bailouts;
      exit 3
    end
  end
