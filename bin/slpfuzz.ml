(* slpfuzz — the generative differential fuzzer.

   Draws random well-formed kernels, compiles each through every
   requested scheme x machine with the pass-by-pass verifier enabled,
   cross-checks vectorized execution against the scalar oracle
   (memory, scalars, finite cycles), and on any failure shrinks to a
   minimal reproducer printed as re-parseable kernel source plus the
   (seed, case) replay coordinates. *)

open Cmdliner
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Fuzz = Slp_fuzz

let scheme_conv =
  let parse = function
    | "scalar" -> Ok Pipeline.Scalar
    | "native" -> Ok Pipeline.Native
    | "slp" -> Ok Pipeline.Slp
    | "global" -> Ok Pipeline.Global
    | "global-layout" | "layout" -> Ok Pipeline.Global_layout
    | "optimal" -> Ok Pipeline.Optimal
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Pipeline.scheme_name s) in
  Arg.conv (parse, print)

(* The command-line token for a scheme — what reproducer headers must
   echo so that replaying preserves the restriction (notably
   [--scheme optimal], whose solver is part of the tested surface). *)
let scheme_arg = function
  | Pipeline.Scalar -> "scalar"
  | Pipeline.Native -> "native"
  | Pipeline.Slp -> "slp"
  | Pipeline.Global -> "global"
  | Pipeline.Global_layout -> "global-layout"
  | Pipeline.Optimal -> "optimal"

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")

let count =
  Arg.(value & opt int 300 & info [ "count" ] ~docv:"N" ~doc:"Number of kernels to draw.")

let index =
  Arg.(
    value
    & opt (some int) None
    & info [ "index" ] ~docv:"I"
        ~doc:"Replay a single case index of the campaign instead of running all of it.")

let max_stmts =
  Arg.(
    value
    & opt int Fuzz.Gen.default_options.Fuzz.Gen.max_stmts
    & info [ "max-stmts" ] ~docv:"N"
        ~doc:"Statement budget of the innermost generated block.")

let scheme =
  Arg.(
    value
    & opt (some scheme_conv) None
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Restrict the oracle to one scheme (scalar, native, slp, global, \
           global-layout, optimal); default: all six.")

let replay =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Run the oracle (and shrinker) on a kernel source file instead of \
              generated programs.")

let repro =
  Arg.(
    value
    & opt string (Filename.concat "_fuzz" "repro.kernel")
    & info [ "repro" ] ~docv:"FILE"
        ~doc:"Where to write the first shrunken reproducer on failure.")

(* Reproducers default into the gitignored _fuzz/ scratch directory;
   create it on demand so a failing campaign never loses its repro. *)
let ensure_repro_dir path =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Print a line every 50 cases.")

let config_of ~seed ~count ~max_stmts ~scheme =
  let schemes =
    match scheme with None -> Pipeline.all_schemes | Some s -> [ Pipeline.Scalar; s ]
  in
  {
    Fuzz.Harness.default_config with
    Fuzz.Harness.seed;
    count;
    schemes;
    gen_options = { Fuzz.Gen.default_options with Fuzz.Gen.max_stmts };
  }

let write_repro ?scheme path (r : Fuzz.Harness.failure_report) =
  ensure_repro_dir path;
  let oc = open_out path in
  Printf.fprintf oc "# slpfuzz reproducer: --seed %d --index %d%s\n"
    r.Fuzz.Harness.seed r.Fuzz.Harness.case_index
    (match scheme with
    | Some s -> " --scheme " ^ scheme_arg s
    | None -> "");
  List.iter
    (fun f -> Printf.fprintf oc "# %s\n" (Format.asprintf "%a" Fuzz.Oracle.pp_failure f))
    r.Fuzz.Harness.failures;
  output_string oc (Slp_ir.Program.to_source r.Fuzz.Harness.shrunk);
  close_out oc

let run_replay file scheme repro =
  match Slp_frontend.Parser.parse_file file with
  | exception Slp_frontend.Parser.Error (msg, line, col) ->
      Printf.eprintf "%s:%d:%d: error: %s\n" file line col msg;
      1
  | exception Slp_frontend.Lexer.Error (msg, line, col) ->
      Printf.eprintf "%s:%d:%d: error: %s\n" file line col msg;
      1
  | prog ->
      let schemes =
        match scheme with
        | None -> Pipeline.all_schemes
        | Some s -> [ Pipeline.Scalar; s ]
      in
      let outcome = Fuzz.Oracle.run ~schemes prog in
      if not (Fuzz.Oracle.failed outcome) then begin
        Printf.printf "replay %s: all oracles clean\n" file;
        0
      end
      else begin
        Printf.printf "replay %s: %d failure(s)\n" file
          (List.length outcome.Fuzz.Oracle.failures);
        List.iter
          (fun f -> Format.printf "  %a@." Fuzz.Oracle.pp_failure f)
          outcome.Fuzz.Oracle.failures;
        let still_fails p = Fuzz.Oracle.failed (Fuzz.Oracle.run ~schemes p) in
        let shrunk = Fuzz.Shrink.run ~still_fails prog in
        Printf.printf "minimal reproducer (%d statements):\n%s"
          (Slp_ir.Program.stmt_count shrunk)
          (Slp_ir.Program.to_source shrunk);
        ensure_repro_dir repro;
        let oc = open_out repro in
        output_string oc (Slp_ir.Program.to_source shrunk);
        close_out oc;
        Printf.printf "reproducer written to %s\n" repro;
        1
      end

let main seed count index max_stmts scheme replay repro progress =
  match replay with
  | Some file -> run_replay file scheme repro
  | None ->
      let config = config_of ~seed ~count ~max_stmts ~scheme in
      let config =
        match index with
        | None -> config
        | Some _ -> { config with Fuzz.Harness.count = 1 }
      in
      let stats =
        match index with
        | Some i ->
            (* Replay one case of the campaign by its coordinates. *)
            let program = Fuzz.Harness.case_program { config with Fuzz.Harness.count = i + 1 } i in
            Format.printf "case %d:@.%s@." i (Slp_ir.Program.to_source program);
            let outcome =
              Fuzz.Oracle.run ~schemes:config.Fuzz.Harness.schemes
                ?solver_steps:config.Fuzz.Harness.solver_steps program
            in
            let reports =
              if Fuzz.Oracle.failed outcome then begin
                let still_fails p =
                  Fuzz.Oracle.failed
                    (Fuzz.Oracle.run ~schemes:config.Fuzz.Harness.schemes
                       ?solver_steps:config.Fuzz.Harness.solver_steps p)
                in
                let shrunk = Fuzz.Shrink.run ~still_fails program in
                [
                  {
                    Fuzz.Harness.case_index = i;
                    seed;
                    program;
                    shrunk;
                    failures = outcome.Fuzz.Oracle.failures;
                  };
                ]
              end
              else []
            in
            {
              Fuzz.Harness.cases = 1;
              reports;
              drift_total = 0;
              drift_agreements = 0;
            }
        | None ->
            Fuzz.Harness.run
              ~on_case:(fun i _ ->
                if progress && i mod 50 = 0 then
                  Printf.printf "... case %d/%d\n%!" i count)
              config
      in
      Printf.printf "slpfuzz: %d case(s), seed %d: %d failure(s)" stats.Fuzz.Harness.cases
        seed
        (List.length stats.Fuzz.Harness.reports);
      if stats.Fuzz.Harness.drift_total > 0 then
        Printf.printf "; cost-model ordering agreed on %d/%d machine-records"
          stats.Fuzz.Harness.drift_agreements stats.Fuzz.Harness.drift_total;
      print_newline ();
      (match stats.Fuzz.Harness.reports with
      | [] -> ()
      | first :: _ as reports ->
          List.iter
            (fun r -> Format.printf "%a@." Fuzz.Harness.pp_report r)
            reports;
          write_repro ?scheme repro first;
          Printf.printf "first reproducer written to %s\n" repro);
      if stats.Fuzz.Harness.reports = [] then 0 else 1

let cmd =
  let doc = "generative differential fuzzer for the SLP pipeline" in
  Cmd.v
    (Cmd.info "slpfuzz" ~version:"1.0" ~doc)
    Term.(
      const main $ seed $ count $ index $ max_stmts $ scheme $ replay $ repro
      $ progress)

let () = exit (Cmd.eval' cmd)
