(* Dependence-soundness smoke driver.

   For every suite kernel, dumps the static dependence graph (edges
   with distance/direction vectors, reduction verdicts) as JSON and
   replays the dynamic tracer over the unrolled reference program of
   each scheme x machine, verifying that no statically-independent
   statement pair ever conflicts on a concrete address and that
   [Parallel] verdicts hold under the real access streams.  An
   optional fuzz sample runs the same tracer over generated kernels.

   Exit status 0 when every check is clean, 1 on any violation. *)

module Suite = Slp_benchmarks.Suite
module Machine = Slp_machine.Machine
module Pipeline = Slp_pipeline.Pipeline
module Depend = Slp_depend.Depend
module Dtrace = Slp_depend.Dtrace
module Json = Slp_obs.Json

let machines =
  [ ("intel", Machine.intel_dunnington); ("amd", Machine.amd_phenom_ii) ]

let out_dir = ref "_deps"
let fuzz_count = ref 0
let violations = ref 0

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc

let verdict_json = function
  | Depend.Serial reason ->
      Json.Obj [ ("parallel", Json.Bool false); ("reason", Json.Str reason) ]
  | Depend.Parallel { reductions } ->
      Json.Obj
        [
          ("parallel", Json.Bool true);
          ( "reductions",
            Json.Arr
              (List.map
                 (fun (s, op) ->
                   Json.Obj
                     [ ("scalar", Json.Str s); ("op", Json.Str (Depend.op_string op)) ])
                 reductions) );
        ]

let trace_program ~label prog =
  let report = Dtrace.check prog in
  List.iter
    (fun v ->
      incr violations;
      Printf.printf "VIOLATION %s: %s\n%!" label v)
    report.Dtrace.violations;
  report

let run_kernel (k : Suite.t) =
  let prog = Suite.program k in
  let graph = Depend.of_program prog in
  let base_report = trace_program ~label:k.Suite.name prog in
  (* one tracer replay per distinct unrolled reference program;
     the scheme x machine matrix below shares pre-processing, so
     dedupe by structure and report which legs each replay covered *)
  let seen : (Slp_ir.Program.t * Dtrace.report) list ref = ref [] in
  let legs =
    List.concat_map
      (fun scheme ->
        List.map
          (fun (mname, machine) ->
            let label =
              Printf.sprintf "%s/%s/%s" k.Suite.name
                (Pipeline.scheme_name scheme)
                mname
            in
            let compiled =
              Pipeline.compile ~unroll:k.Suite.unroll ~verify:false ~scheme
                ~machine prog
            in
            let reference = compiled.Pipeline.reference in
            let report =
              match
                List.find_opt
                  (fun (p, _) -> Slp_ir.Program.equal_structure p reference)
                  !seen
              with
              | Some (_, r) -> r
              | None ->
                  let r = trace_program ~label reference in
                  seen := (reference, r) :: !seen;
                  r
            in
            Json.Obj
              [
                ("scheme", Json.Str (Pipeline.scheme_name scheme));
                ("machine", Json.Str mname);
                ("events", Json.Num (float_of_int report.Dtrace.events));
                ( "violations",
                  Json.Num (float_of_int (List.length report.Dtrace.violations))
                );
              ])
          machines)
      Pipeline.all_schemes
  in
  let json =
    Json.Obj
      [
        ("kernel", Json.Str k.Suite.name);
        ("graph", Depend.to_json graph);
        ("verdict", verdict_json (Depend.scalar_parallel_verdict prog));
        ("base_events", Json.Num (float_of_int base_report.Dtrace.events));
        ("legs", Json.Arr legs);
      ]
  in
  write_json (Filename.concat !out_dir (k.Suite.name ^ ".json")) json;
  Printf.printf "%-12s %7d events  %d edges  %s\n%!" k.Suite.name
    base_report.Dtrace.events
    (List.length graph.Depend.edges)
    (match Depend.scalar_parallel_verdict prog with
    | Depend.Parallel { reductions = [] } -> "parallel"
    | Depend.Parallel { reductions } ->
        "parallel+reductions:"
        ^ String.concat "," (List.map fst reductions)
    | Depend.Serial r -> "serial:" ^ r)

let run_fuzz n =
  let clean = ref 0 in
  for i = 0 to n - 1 do
    let rng = Slp_util.Prng.create (0x5eed + i) in
    let prog = Slp_fuzz.Gen.program ~name:(Printf.sprintf "fuzz%d" i) rng in
    let report = trace_program ~label:(Printf.sprintf "fuzz/%d" i) prog in
    if report.Dtrace.violations = [] then incr clean
  done;
  Printf.printf "fuzz: %d/%d cases clean\n%!" !clean n

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | "--out" :: dir :: rest ->
        out_dir := dir;
        parse rest
    | "--fuzz" :: n :: rest ->
        fuzz_count := int_of_string n;
        parse rest
    | [] -> ()
    | arg :: _ ->
        prerr_endline ("depsound: unknown argument " ^ arg);
        exit 2
  in
  parse (List.tl args);
  if not (Sys.file_exists !out_dir) then Sys.mkdir !out_dir 0o755;
  List.iter run_kernel Suite.all;
  if !fuzz_count > 0 then run_fuzz !fuzz_count;
  if !violations > 0 then begin
    Printf.printf "depsound: %d violation(s)\n%!" !violations;
    exit 1
  end
  else Printf.printf "depsound: all checks clean\n%!"
