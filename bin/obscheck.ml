(* obscheck — validate observability artifacts.

   Usage: obscheck FILE...

   Each FILE must be well-formed Chrome trace-event JSON with balanced,
   properly nested B/E spans per (pid, tid) thread and non-decreasing
   timestamps.  Exit 0 when every file validates, 1 on any validation
   failure, 2 on usage or I/O errors.  CI runs this over the traces the
   smoke job records. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: obscheck FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match read_file path with
      | exception Sys_error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
      | contents -> (
          match Slp_obs.Trace.validate_chrome_json contents with
          | Ok n -> Printf.printf "%s: ok (%d events, balanced)\n" path n
          | Error msg ->
              Printf.eprintf "%s: INVALID: %s\n" path msg;
              failed := true))
    files;
  exit (if !failed then 1 else 0)
