(* obscheck — validate observability artifacts.

   Usage: obscheck [--trace] [--metrics] FILE...

   Mode flags apply to the files that follow them (default --trace).
   Trace files must be well-formed Chrome trace-event JSON with
   balanced, properly nested B/E spans per (pid, tid) thread and
   non-decreasing timestamps.  Metrics files must be structurally
   valid Prometheus text exposition — # TYPE before samples, unique
   (name, label-set) pairs, counter/_total and histogram/_seconds
   suffix conventions, monotone cumulative buckets with a +Inf bucket
   matching _count.  Exit 0 when every file validates, 1 on any
   validation failure, 2 on usage or I/O errors.  CI runs this over
   the artifacts the smoke jobs record. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] || args = [ "--trace" ] || args = [ "--metrics" ] then begin
    prerr_endline "usage: obscheck [--trace] [--metrics] FILE...";
    exit 2
  end;
  let failed = ref false in
  let mode = ref `Trace in
  List.iter
    (fun arg ->
      match arg with
      | "--trace" -> mode := `Trace
      | "--metrics" -> mode := `Metrics
      | path -> (
          match read_file path with
          | exception Sys_error msg ->
              Printf.eprintf "%s: %s\n" path msg;
              exit 2
          | contents -> (
              match !mode with
              | `Trace -> (
                  match Slp_obs.Trace.validate_chrome_json contents with
                  | Ok n ->
                      Printf.printf "%s: ok (%d events, balanced)\n" path n
                  | Error msg ->
                      Printf.eprintf "%s: INVALID: %s\n" path msg;
                      failed := true)
              | `Metrics -> (
                  match Slp_obs.Metric.validate_exposition contents with
                  | Ok () -> Printf.printf "%s: ok (valid exposition)\n" path
                  | Error msg ->
                      Printf.eprintf "%s: INVALID: %s\n" path msg;
                      failed := true))))
    args;
  exit (if !failed then 1 else 0)
