(* slpd — the compile-service daemon and its client driver.

   [slpd serve] binds a Unix socket and serves line-delimited JSON
   compile/execute jobs on a supervised pool of domains with a
   content-addressed result cache (default layout under _serve/).
   [slpd submit] sends one job, [slpd ping] checks liveness, and
   [slpd campaign] is the CI smoke driver: concurrent clients fire
   every suite kernel at a live daemon (typically started with a
   --fault armed) and every reply must arrive and match an in-process
   oracle — zero lost jobs, zero wrong answers. *)

open Cmdliner
module E = Slp_util.Slp_error
module P = Slp_pipeline.Pipeline
module M = Slp_machine.Machine
module Json = Slp_obs.Json
module Log = Slp_obs.Log
module Tracehub = Slp_obs.Tracehub
module Proto = Slp_serve.Proto
module Telemetry = Slp_serve.Telemetry
module Cache = Slp_serve.Cache
module Fault = Slp_serve.Fault
module Job = Slp_serve.Job
module Pool = Slp_serve.Pool
module Server = Slp_serve.Server
module Client = Slp_serve.Client
module Suite = Slp_benchmarks.Suite

let default_socket = Filename.concat "_serve" "slpd.sock"
let default_cache = Filename.concat "_serve" "cache"

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path.")

(* -- serve ----------------------------------------------------------- *)

let fault_of_string s =
  let num d = try Some (int_of_string d) with Failure _ -> None in
  match String.split_on_char ':' s with
  | [ "kill-worker"; n ] -> Option.map (fun n -> Fault.Kill_worker n) (num n)
  | [ "clock-skip"; secs; n ] ->
      Option.bind (num n) (fun n ->
          try Some (Fault.Clock_skip (float_of_string secs, n)) with _ -> None)
  | [ "corrupt-store"; n ] -> Option.map (fun n -> Fault.Corrupt_store n) (num n)
  | [ "drop-client"; n ] -> Option.map (fun n -> Fault.Drop_client n) (num n)
  | _ -> None

let serve socket cache_dir workers queue_depth max_attempts timeout faults
    log_file log_level trace_file =
  let level =
    match Log.level_of_string log_level with
    | Some l -> l
    | None ->
        Printf.eprintf
          "slpd: bad --log-level %S (debug|info|warn|error|off)\n" log_level;
        exit 2
  in
  let armed =
    List.map
      (fun s ->
        match fault_of_string s with
        | Some point -> point
        | None ->
            Printf.eprintf
              "slpd: bad --fault %S (kill-worker:N | clock-skip:SECS:N | \
               corrupt-store:N | drop-client:N)\n"
              s;
            exit 2)
      faults
  in
  List.iter Fault.arm armed;
  let config =
    {
      Pool.default_config with
      Pool.workers;
      queue_depth;
      max_attempts;
      default_timeout = timeout;
    }
  in
  let log = Log.create ~level () in
  Option.iter (Log.with_file log) log_file;
  let hub = Option.map (fun _ -> Tracehub.create ()) trace_file in
  let telem = Telemetry.create ~log ?hub () in
  let pool =
    Pool.create ~config ~telem ~cache:(Cache.create ~dir:cache_dir) ()
  in
  Printf.printf "slpd: serving on %s (%d workers, cache %s)\n%!" socket workers
    cache_dir;
  Server.run ~pool ~socket ();
  print_endline (Json.to_string (Server.stats_json pool));
  (match (trace_file, hub) with
  | Some path, Some hub ->
      Tracehub.write_file hub path;
      Printf.printf "slpd: wrote campaign trace (%d domain rows) to %s\n"
        (Tracehub.domains hub) path
  | _ -> ());
  Log.close log;
  0

let serve_cmd =
  let cache_dir =
    Arg.(
      value
      & opt string default_cache
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Content-addressed result cache directory.")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Queued-job bound; beyond it jobs are shed with an overloaded \
                reply.")
  in
  let max_attempts =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Attempts before a failing job is quarantined and degraded.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Default per-job wall-clock deadline for specs without one.")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"POINT"
          ~doc:
            "Arm a one-shot service fault before serving (repeatable): \
             kill-worker:N, clock-skip:SECS:N, corrupt-store:N, \
             drop-client:N.  For smoke testing the supervision path.")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Append structured JSON-line log events to FILE.")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LVL"
          ~doc:"Log threshold: debug, info, warn, error, or off.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record reactor and worker-domain spans and write the merged \
             Chrome trace (one row per domain) to FILE on exit.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"run the compile-service daemon")
    Term.(
      const serve $ socket_arg $ cache_dir $ workers $ queue_depth
      $ max_attempts $ timeout $ faults $ log_file $ log_level $ trace_file)

(* -- shared client helpers ------------------------------------------- *)

let scheme_conv =
  let parse s =
    match Proto.scheme_of_string s with
    | Some sc -> Ok sc
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Proto.scheme_to_string s))

let machine_conv =
  let parse s =
    match Proto.machine_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown machine %S (intel|amd)" s))
  in
  Arg.conv (parse, fun ppf (m : M.t) -> Format.pp_print_string ppf m.M.name)

let connect socket =
  match Client.connect ~socket with
  | c -> c
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "slpd: cannot connect to %s: %s\n" socket
        (Unix.error_message e);
      exit 2

(* -- ping ------------------------------------------------------------ *)

let ping socket =
  let c = connect socket in
  let reply = Client.call c { Proto.id = 1; op = Proto.Ping } in
  Client.close c;
  print_endline (Proto.status_name reply.Proto.status);
  if reply.Proto.status = Proto.Ok then 0 else 1

let ping_cmd =
  Cmd.v (Cmd.info "ping" ~doc:"check daemon liveness") Term.(const ping $ socket_arg)

(* -- submit ---------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let submit socket file op scheme machine unroll timeout cores seed =
  let kernel = read_file file in
  let name = Filename.remove_extension (Filename.basename file) in
  let spec =
    {
      (Proto.default_spec ~kernel ~name) with
      Proto.scheme;
      machine;
      unroll;
      timeout;
      cores;
      seed;
    }
  in
  let jop = if op = "compile" then Proto.Compile else Proto.Execute in
  let c = connect socket in
  let reply = Client.call c { Proto.id = 1; op = Proto.Job (jop, spec) } in
  Client.close c;
  print_endline (Proto.reply_to_line reply);
  match reply.Proto.status with
  | Proto.Ok -> 0
  | Proto.Degraded -> 3
  | _ -> 2

let submit_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"FILE" ~doc:"Kernel source file.")
  in
  let op =
    Arg.(
      value
      & opt (enum [ ("compile", "compile"); ("execute", "execute") ]) "execute"
      & info [ "op" ] ~docv:"OP" ~doc:"Job operation: compile or execute.")
  in
  let scheme =
    Arg.(
      value & opt scheme_conv P.Global
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:"scalar, native, slp, global, global-layout, optimal.")
  in
  let machine =
    Arg.(
      value
      & opt machine_conv M.intel_dunnington
      & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"intel or amd.")
  in
  let unroll =
    Arg.(value & opt (some int) None & info [ "u"; "unroll" ] ~docv:"N" ~doc:"Unroll factor.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS" ~doc:"Per-job wall-clock deadline.")
  in
  let cores =
    Arg.(value & opt int 1 & info [ "cores" ] ~docv:"N" ~doc:"Simulated cores.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Input data seed.")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"send one job to a running daemon")
    Term.(
      const submit $ socket_arg $ file $ op $ scheme $ machine $ unroll
      $ timeout $ cores $ seed)

(* -- campaign -------------------------------------------------------- *)

(* Each client domain owns one connection and fires its slice of the
   suite; replies must all arrive (the daemon may be mid worker-kill)
   and every payload must equal the in-process oracle. *)
let campaign socket clients scheme =
  let specs =
    List.map
      (fun bench ->
        let prog = Suite.program bench in
        ( {
            (Proto.default_spec
               ~kernel:(Slp_ir.Program.to_source prog)
               ~name:prog.Slp_ir.Program.name)
            with
            Proto.scheme;
          },
          prog ))
      Suite.all
  in
  Printf.printf "campaign: %d kernels over %d clients\n%!" (List.length specs)
    clients;
  let oracle =
    List.map
      (fun (spec, prog) ->
        match Job.run ~op:Proto.Execute ~spec prog with
        | Result.Ok payload -> (spec.Proto.name, Json.to_string payload)
        | Result.Error e ->
            Printf.eprintf "campaign: oracle failed for %s: %s\n"
              spec.Proto.name (E.to_string e);
            exit 2)
      specs
  in
  let slices = Array.make clients [] in
  List.iteri
    (fun i (spec, _) -> slices.(i mod clients) <- spec :: slices.(i mod clients))
    specs;
  let run_client slice =
    let c = connect socket in
    let replies =
      List.mapi
        (fun i spec ->
          ( spec.Proto.name,
            Client.call c { Proto.id = i + 1; op = Proto.Job (Proto.Execute, spec) }
          ))
        slice
    in
    Client.close c;
    replies
  in
  let domains =
    Array.map (fun slice -> Domain.spawn (fun () -> run_client slice)) slices
  in
  let replies = Array.to_list domains |> List.concat_map Domain.join in
  let failures =
    List.filter_map
      (fun (name, (reply : Proto.reply)) ->
        let expected = List.assoc name oracle in
        if reply.Proto.status <> Proto.Ok then
          Some
            (Printf.sprintf "%s: status %s" name
               (Proto.status_name reply.Proto.status))
        else if Json.to_string reply.Proto.payload <> expected then
          Some (Printf.sprintf "%s: payload mismatch vs oracle" name)
        else None)
      replies
  in
  let lost = List.length specs - List.length replies in
  Printf.printf "campaign: %d replies, %d lost, %d failures\n" (List.length replies)
    lost (List.length failures);
  List.iter (fun f -> Printf.printf "  FAIL %s\n" f) failures;
  if lost = 0 && failures = [] then 0 else 1

let campaign_cmd =
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let scheme =
    Arg.(
      value & opt scheme_conv P.Global_layout
      & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc:"Scheme for every job.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"fire the whole suite at a daemon from concurrent clients and \
             verify every reply against an in-process oracle")
    Term.(const campaign $ socket_arg $ clients $ scheme)

(* -- stats / metrics / health ---------------------------------------- *)

let watch_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "watch" ] ~docv:"SECS"
        ~doc:"Re-poll every SECS seconds until interrupted.")

(* One poll per connection; in watch mode the daemon may restart
   between polls, so each round reconnects from scratch. *)
let repeated watch poll =
  match watch with
  | None -> poll ()
  | Some secs ->
      let rec loop () =
        ignore (poll ());
        Unix.sleepf secs;
        loop ()
      in
      loop ()

let one_shot op render socket =
  let c = connect socket in
  let reply = Client.call c { Proto.id = 1; op } in
  Client.close c;
  render reply.Proto.payload;
  if reply.Proto.status = Proto.Ok then 0 else 1

let stats socket watch =
  repeated watch (fun () ->
      one_shot Proto.Stats
        (fun payload -> print_endline (Json.to_string payload))
        socket)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"print daemon statistics")
    Term.(const stats $ socket_arg $ watch_arg)

let metrics socket =
  one_shot Proto.Metrics
    (fun payload ->
      match payload with
      | Json.Str text -> print_string text
      | j -> print_endline (Json.to_string j))
    socket

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"print the daemon's Prometheus text exposition")
    Term.(const metrics $ socket_arg)

let health socket watch =
  repeated watch (fun () ->
      let c = connect socket in
      let reply = Client.call c { Proto.id = 1; op = Proto.Health } in
      Client.close c;
      print_endline (Json.to_string reply.Proto.payload);
      let ready =
        match Json.member "ready" reply.Proto.payload with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      if reply.Proto.status = Proto.Ok && ready then 0 else 1)

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "check daemon liveness/readiness; exit 0 only when ready (live \
          workers, queue below the shed threshold, not draining)")
    Term.(const health $ socket_arg $ watch_arg)

let cmd =
  Cmd.group
    (Cmd.info "slpd" ~version:"1.0"
       ~doc:"supervised compile service for the SLP framework")
    [
      serve_cmd; submit_cmd; campaign_cmd; ping_cmd; stats_cmd; metrics_cmd;
      health_cmd;
    ]

let () = exit (Cmd.eval' cmd)
