(* slpfault — the seeded fault-injection harness driver.

   Runs the full pipeline injection matrix (16 suite kernels x every
   injection point x both machines) and, optionally, a fault-enabled
   fuzz campaign and the service-layer fault matrix (worker death,
   clock skip, cache corruption, client disconnect against a live
   pool), then writes the machine-readable outcome reports.  Exit 0
   when every case recovered with the expected reason code and
   identical results, 1 otherwise. *)

module F = Slp_faultinject.Faultinject
module SF = Slp_faultinject.Servicefault

let ensure_dir path =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_report path json =
  ensure_dir path;
  let oc = open_out path in
  output_string oc json;
  output_char oc '\n';
  close_out oc

let summarize label outcomes =
  let bad = F.failures outcomes in
  Printf.printf "%s: %d cases, %d failures\n" label (List.length outcomes)
    (List.length bad);
  List.iter
    (fun (o : F.outcome) ->
      Printf.printf
        "  FAIL %s on %s at %s: degraded=%b expected=%s codes=[%s] \
         scalar_identical=%b\n"
        o.F.kernel o.F.machine (F.point_name o.F.point) o.F.degraded o.F.expected
        (String.concat "," o.F.codes)
        o.F.scalar_identical)
    bad;
  bad = []

let summarize_service outcomes =
  let bad = SF.failures outcomes in
  Printf.printf "service: %d cases, %d failures\n" (List.length outcomes)
    (List.length bad);
  List.iter
    (fun (o : SF.outcome) ->
      Printf.printf
        "  FAIL %s on %s at %s: status=%s attempts=%d codes=[%s] identical=%b \
         no_lost_jobs=%b\n"
        o.SF.kernel o.SF.machine (SF.point_name o.SF.point) o.SF.status
        o.SF.attempts
        (String.concat "," o.SF.codes)
        o.SF.identical o.SF.no_lost_jobs)
    bad;
  bad = []

let run matrix fuzz seed service both_machines report service_report =
  let outcomes = ref [] in
  let ok = ref true in
  if matrix then begin
    let m = F.run_matrix () in
    ok := summarize "matrix" m && !ok;
    outcomes := !outcomes @ m
  end;
  if fuzz > 0 then begin
    let f = F.run_fuzz ~cases:fuzz ~seed () in
    ok := summarize (Printf.sprintf "fuzz (seed %d)" seed) f && !ok;
    outcomes := !outcomes @ f
  end;
  if matrix || fuzz > 0 then begin
    write_report report (F.report_json !outcomes);
    Printf.printf "report: %s\n" report
  end;
  if service then begin
    let machines =
      let module M = Slp_machine.Machine in
      if both_machines then [ M.intel_dunnington; M.amd_phenom_ii ]
      else [ M.intel_dunnington ]
    in
    let dir = Filename.concat (Filename.dirname service_report) "fault-cache" in
    let s = SF.run_matrix ~machines ~dir () in
    ok := summarize_service s && !ok;
    write_report service_report (SF.report_json s);
    Printf.printf "service report: %s\n" service_report
  end;
  if !ok then 0 else 1

open Cmdliner

let matrix =
  Arg.(value & opt bool true & info [ "matrix" ] ~docv:"BOOL"
         ~doc:"Run the kernel x point x machine injection matrix.")

let fuzz =
  Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N"
         ~doc:"Additionally run $(docv) fault-enabled fuzz cases.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Seed for the fuzz campaign.")

let service =
  Arg.(value & flag & info [ "service" ]
         ~doc:"Run the service-layer fault matrix (kill-worker, clock-skip, \
               cache-corrupt, client-drop against a live worker pool).")

let both_machines =
  Arg.(value & flag & info [ "both-machines" ]
         ~doc:"Run the service matrix on both evaluation machines \
               (default: Intel only).")

let report =
  Arg.(value & opt string (Filename.concat "_fault" "report.json")
       & info [ "bailout-report" ] ~docv:"FILE"
           ~doc:"Where to write the JSON outcome report.")

let service_report =
  Arg.(value & opt string (Filename.concat "_serve" "fault-report.json")
       & info [ "service-report" ] ~docv:"FILE"
           ~doc:"Where to write the service fault matrix report.")

let cmd =
  let doc = "seeded fault-injection harness for the resilient SLP pipeline" in
  Cmd.v
    (Cmd.info "slpfault" ~doc)
    Term.(const run $ matrix $ fuzz $ seed $ service $ both_machines $ report
          $ service_report)

let () = exit (Cmd.eval' cmd)
