(* slpfault — the seeded fault-injection harness driver.

   Runs the full injection matrix (16 suite kernels x every injection
   point x both machines) and, optionally, a fault-enabled fuzz
   campaign, then writes the machine-readable outcome report.  Exit 0
   when every case recovered with the expected reason code and
   scalar-identical memory, 1 otherwise. *)

module F = Slp_faultinject.Faultinject

let ensure_dir path =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_report path outcomes =
  ensure_dir path;
  let oc = open_out path in
  output_string oc (F.report_json outcomes);
  output_char oc '\n';
  close_out oc

let summarize label outcomes =
  let bad = F.failures outcomes in
  Printf.printf "%s: %d cases, %d failures\n" label (List.length outcomes)
    (List.length bad);
  List.iter
    (fun (o : F.outcome) ->
      Printf.printf
        "  FAIL %s on %s at %s: degraded=%b expected=%s codes=[%s] \
         scalar_identical=%b\n"
        o.F.kernel o.F.machine (F.point_name o.F.point) o.F.degraded o.F.expected
        (String.concat "," o.F.codes)
        o.F.scalar_identical)
    bad;
  bad = []

let run matrix fuzz seed report =
  let outcomes = ref [] in
  let ok = ref true in
  if matrix then begin
    let m = F.run_matrix () in
    ok := summarize "matrix" m && !ok;
    outcomes := !outcomes @ m
  end;
  if fuzz > 0 then begin
    let f = F.run_fuzz ~cases:fuzz ~seed () in
    ok := summarize (Printf.sprintf "fuzz (seed %d)" seed) f && !ok;
    outcomes := !outcomes @ f
  end;
  write_report report !outcomes;
  Printf.printf "report: %s\n" report;
  if !ok then 0 else 1

open Cmdliner

let matrix =
  Arg.(value & opt bool true & info [ "matrix" ] ~docv:"BOOL"
         ~doc:"Run the kernel x point x machine injection matrix.")

let fuzz =
  Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N"
         ~doc:"Additionally run $(docv) fault-enabled fuzz cases.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Seed for the fuzz campaign.")

let report =
  Arg.(value & opt string (Filename.concat "_fault" "report.json")
       & info [ "bailout-report" ] ~docv:"FILE"
           ~doc:"Where to write the JSON outcome report.")

let cmd =
  let doc = "seeded fault-injection harness for the resilient SLP pipeline" in
  Cmd.v
    (Cmd.info "slpfault" ~doc)
    Term.(const run $ matrix $ fuzz $ seed $ report)

let () = exit (Cmd.eval' cmd)
