(* slpc — the SLP compiler driver.

   Parses a kernel-language file, runs the selected SLP pipeline,
   optionally dumps the IR / schedules / vector code, and simulates
   the result on a machine model. *)

open Cmdliner
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine

let scheme_conv =
  let parse = function
    | "scalar" -> Ok Pipeline.Scalar
    | "native" -> Ok Pipeline.Native
    | "slp" -> Ok Pipeline.Slp
    | "global" -> Ok Pipeline.Global
    | "global-layout" | "layout" -> Ok Pipeline.Global_layout
    | "optimal" -> Ok Pipeline.Optimal
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Pipeline.scheme_name s) in
  Arg.conv (parse, print)

let machine_conv =
  let parse = function
    | "intel" | "dunnington" -> Ok Machine.intel_dunnington
    | "amd" | "phenom" -> Ok Machine.amd_phenom_ii
    | s -> Error (`Msg (Printf.sprintf "unknown machine %S (intel|amd)" s))
  in
  let print ppf (m : Machine.t) = Format.pp_print_string ppf m.Machine.name in
  Arg.conv (parse, print)

let file =
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE" ~doc:"Kernel source file.")

let scheme =
  Arg.(
    value
    & opt scheme_conv Pipeline.Global
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Optimization scheme: scalar, native, slp, global, global-layout, \
           optimal.")

let machine =
  Arg.(
    value
    & opt machine_conv Machine.intel_dunnington
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Machine model: intel or amd.")

let simd =
  Arg.(
    value
    & opt (some int) None
    & info [ "simd" ] ~docv:"BITS" ~doc:"Override the SIMD datapath width in bits.")

let unroll =
  Arg.(
    value
    & opt (some int) None
    & info [ "u"; "unroll" ] ~docv:"N" ~doc:"Loop unroll factor (default: lanes).")

let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the prepared IR.")
let dump_plan = Arg.(value & flag & info [ "dump-plan" ] ~doc:"Print groups and schedules.")
let dump_vector = Arg.(value & flag & info [ "dump-vector" ] ~doc:"Print the vector program.")

let dump_deps =
  Arg.(
    value & flag
    & info [ "deps" ]
        ~doc:
          "Print the dependence graph of the prepared IR as JSON: one edge \
           per statement pair and array with kind, carrier, distance and \
           direction vector, plus recognized scalar reductions.")
let run = Arg.(value & flag & info [ "run" ] ~doc:"Simulate and report counters.")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Simulate and pretty-print the VM counters (implies execution, \
           without the correctness/speedup report of $(b,--run)).")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a hierarchical span trace of the compile (and any \
           simulation) and write it to $(docv) as Chrome trace-event JSON \
           (load in chrome://tracing or Perfetto).")

let remarks =
  Arg.(
    value & flag
    & info [ "remarks" ]
        ~doc:
          "Print structured optimization remarks: every grouping \
           merge/reject, schedule reuse/permute/pack decision, cost gate \
           verdict, and layout transform, with stable ids.")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Simulate under the VM profiler and print the hot-statement \
           report: per statement/pack cycle attribution and cache hits by \
           level.")

let profile_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-json" ] ~docv:"FILE"
        ~doc:"Like $(b,--profile), but write the attribution as JSON to $(docv).")

let verify =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "verify" ]
              ~doc:"Run the pass-by-pass verifier after each stage (default)." );
          ( false,
            info [ "no-verify" ]
              ~doc:"Skip verification (e.g. when timing compilation)." );
        ])

let cores = Arg.(value & opt int 1 & info [ "cores" ] ~docv:"N" ~doc:"Simulated cores.")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Input data seed.")

let resilient =
  Arg.(
    value & flag
    & info [ "resilient" ]
        ~doc:
          "Fault-tolerant mode: a kernel whose compilation fails at any \
           stage degrades to verified scalar code instead of aborting; \
           bailouts are reported and the exit status is 3.")

let bailout_report =
  Arg.(
    value
    & opt (some string) None
    & info [ "bailout-report" ] ~docv:"FILE"
        ~doc:"Write the machine-readable JSON bailout report to $(docv).")

let max_errors =
  Arg.(
    value & opt int 20
    & info [ "max-errors" ] ~docv:"N"
        ~doc:"Report up to $(docv) frontend diagnostics before giving up.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Per-job wall-clock deadline, enforced cooperatively at stage \
           boundaries and step-budget ticks; a breach is a BAIL16 bailout \
           (exit 2, or scalar degradation under --resilient).")

let max_steps =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Per-pass step budget for grouping and scheduling; exhaustion is a \
           BAIL11 bailout (scalar degradation under --resilient).")

let solver_steps =
  Arg.(
    value
    & opt (some int) None
    & info [ "solver-steps" ] ~docv:"N"
        ~doc:
          "Per-block search budget of the exact pack solver (scheme \
           $(b,optimal) only).  Exhaustion is advisory: the block falls back \
           to the holistic heuristic under BAIL15 and the exit status stays \
           0.")

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let write_bailout_report path bailouts =
  let oc = open_out path in
  output_string oc (Pipeline.bailout_report_json bailouts);
  output_char oc '\n';
  close_out oc

(* Exit status: 0 success, 2 input or compile error, 3 compiled in
   resilient mode but degraded to scalar. *)
let main file scheme machine simd unroll verify dump_ir dump_plan dump_vector
    dump_deps run stats trace_file remarks profile profile_json cores seed
    resilient bailout_report max_errors timeout max_steps solver_steps =
  let machine =
    match simd with Some bits -> Machine.with_simd_bits machine bits | None -> machine
  in
  let deadline =
    Option.map
      (fun seconds ->
        Slp_util.Slp_error.Deadline.create ~clock:Slp_obs.Clock.now ~seconds)
      timeout
  in
  let name = Filename.remove_extension (Filename.basename file) in
  let obs =
    Slp_obs.Obs.create
      ~trace:(trace_file <> None)
      ~remarks
      ~profile:(profile || profile_json <> None)
      ()
  in
  match Slp_frontend.Parser.parse_all ~max_errors ~name (read_file file) with
  | Result.Error diags ->
      List.iter
        (fun (d : Slp_frontend.Parser.diagnostic) ->
          Printf.eprintf "%s:%d:%d: error: %s\n" file d.Slp_frontend.Parser.line
            d.Slp_frontend.Parser.col d.Slp_frontend.Parser.message)
        diags;
      let n = List.length diags in
      Printf.eprintf "%d error%s\n" n (if n = 1 then "" else "s");
      2
  | Ok prog ->
      let compiled, bailouts =
        if resilient then begin
          let r =
            Pipeline.compile_resilient ?unroll ?max_steps ?solver_steps
              ?deadline ~verify ~obs ~scheme ~machine prog
          in
          List.iter
            (fun (b : Pipeline.bailout) ->
              Printf.eprintf "%s: bailout [%s]: %s\n" b.Pipeline.kernel
                (Slp_util.Slp_error.code_name b.Pipeline.error.Slp_util.Slp_error.code)
                b.Pipeline.error.Slp_util.Slp_error.message)
            r.Pipeline.bailouts;
          if r.Pipeline.degraded then
            Printf.eprintf "%s: degraded to scalar (%s requested)\n" name
              (Pipeline.scheme_name scheme);
          (r.Pipeline.result, Some r.Pipeline.bailouts)
        end
        else
          match
            Pipeline.compile ?unroll ?max_steps ?solver_steps ?deadline ~verify
              ~obs ~scheme ~machine prog
          with
          | c -> (c, None)
          | exception Slp_verify.Verify.Verification_failed (what, report) ->
              Format.eprintf "%s: verification failed@.%a@." what
                Slp_verify.Verify.pp_report report;
              exit 2
          | exception Slp_util.Slp_error.Error e ->
              Printf.eprintf "%s: error: %s\n" name (Slp_util.Slp_error.to_string e);
              (* A structured failure still produces a machine-readable
                 report when one was asked for — BAIL16 deadline
                 breaches land here in non-resilient mode. *)
              Option.iter
                (fun path ->
                  write_bailout_report path
                    [
                      {
                        Pipeline.kernel = name;
                        scheme;
                        machine = machine.Machine.name;
                        error = e;
                      };
                    ])
                bailout_report;
              exit 2
      in
      Option.iter
        (fun path -> write_bailout_report path (Option.value ~default:[] bailouts))
        bailout_report;
      Printf.printf "scheme: %s on %s (%d-bit SIMD), unroll x%d\n"
        (Pipeline.scheme_name scheme) machine.Machine.name machine.Machine.simd_bits
        compiled.Pipeline.unroll_factor;
      (* Advisory solver bailouts (scheme optimal): reported, but they
         neither degrade the compile nor change the exit status. *)
      List.iter
        (fun (e : Slp_util.Slp_error.t) ->
          Printf.eprintf "%s: solver bail [%s]: %s\n" name
            (Slp_util.Slp_error.code_name e.Slp_util.Slp_error.code)
            e.Slp_util.Slp_error.message)
        compiled.Pipeline.solver_bails;
      (match compiled.Pipeline.verify_report with
      | Some r ->
          let warnings = Slp_verify.Verify.warnings r in
          Printf.printf "verification: clean (%d warning%s)\n" (List.length warnings)
            (if List.length warnings = 1 then "" else "s");
          List.iter (Format.printf "  %a@." Slp_verify.Diagnostic.pp) warnings
      | None -> ());
      (let st = compiled.Pipeline.spill_stats in
       if st.Slp_codegen.Regalloc.spills > 0 then
         Printf.printf "register allocation: %d spills, %d reloads (pressure %d)\n"
           st.Slp_codegen.Regalloc.spills st.Slp_codegen.Regalloc.reloads
           st.Slp_codegen.Regalloc.max_pressure);
      if dump_ir then
        Format.printf "-- prepared IR --@.%a@." Slp_ir.Program.pp
          compiled.Pipeline.reference;
      if dump_deps then
        print_endline
          (Slp_obs.Json.to_string
             (Slp_depend.Depend.to_json
                (Slp_depend.Depend.of_program compiled.Pipeline.reference)));
      (match (dump_plan, compiled.Pipeline.plan) with
      | true, Some plan ->
          List.iter
            (fun (bp : Slp_core.Driver.block_plan) ->
              Format.printf "-- block %s --@."
                bp.Slp_core.Driver.block.Slp_ir.Block.label;
              (match bp.Slp_core.Driver.schedule with
              | Some s -> Format.printf "%a@." Slp_core.Schedule.pp s
              | None -> Format.printf "(kept scalar)@.");
              match bp.Slp_core.Driver.estimate with
              | Some e ->
                  Format.printf "estimated: scalar %.1f vs vector %.1f@."
                    e.Slp_core.Cost.scalar_cost e.Slp_core.Cost.vector_cost
              | None -> ())
            plan.Slp_core.Driver.plans
      | _, _ -> ());
      (match (dump_vector, compiled.Pipeline.vector) with
      | true, Some v -> Format.printf "%a@." Slp_vm.Visa.pp_program v
      | true, None -> Format.printf "(scalar scheme: no vector program)@."
      | false, _ -> ());
      (if remarks then
         let rs = Slp_obs.Obs.remarks obs in
         Format.printf "-- remarks (%d) --@." (List.length rs);
         List.iter (Format.printf "%a@." Slp_obs.Remark.pp) rs);
      let want_exec = run || stats || profile || profile_json <> None in
      if want_exec then begin
        let r = Pipeline.execute ~cores ~seed ~check:run ~obs compiled in
        if run || stats then
          Format.printf "-- execution (%d core%s, seed %d) --@.%a@." cores
            (if cores = 1 then "" else "s")
            seed Slp_vm.Counters.pp r.Pipeline.counters;
        if run then begin
          Format.printf "semantics vs scalar reference: %s@."
            (if r.Pipeline.correct then "match" else "MISMATCH");
          let speedup = Pipeline.speedup_over_scalar ~cores ~seed compiled in
          Format.printf "speedup over scalar: %.3fx (%.1f%% reduction)@." speedup
            (100.0 *. (1.0 -. (1.0 /. speedup)))
        end
      end;
      (match obs.Slp_obs.Obs.profile with
      | Some p ->
          if profile then
            Format.printf "-- profile --@.%a@."
              (fun ppf -> Slp_obs.Profile.report ppf)
              p;
          Option.iter
            (fun path ->
              let oc = open_out path in
              output_string oc
                (Slp_obs.Json.to_string (Slp_obs.Profile.to_json p));
              output_char oc '\n';
              close_out oc)
            profile_json
      | None -> ());
      (match (obs.Slp_obs.Obs.trace, trace_file) with
      | Some t, Some path -> Slp_obs.Trace.write_file t path
      | _ -> ());
      (match bailouts with Some (_ :: _) -> 3 | _ -> 0)

let cmd =
  let doc = "compile kernel programs with the holistic SLP framework" in
  Cmd.v
    (Cmd.info "slpc" ~version:"1.0" ~doc)
    Term.(
      const main $ file $ scheme $ machine $ simd $ unroll $ verify $ dump_ir
      $ dump_plan $ dump_vector $ dump_deps $ run $ stats $ trace_file
      $ remarks $ profile $ profile_json $ cores $ seed $ resilient
      $ bailout_report $ max_errors $ timeout $ max_steps $ solver_steps)

let () = exit (Cmd.eval' cmd)
