(* Fault-injection tests for the resilient pipeline.

   Two obligations from the fault-tolerance design: (1) the full
   injection matrix — every suite kernel x every injection point x
   both machines — recovers under the catalogued reason code with
   scalar-identical memory, and (2) a 300-case fault-enabled fuzz
   campaign never lets an exception escape [compile_resilient]. *)

module F = Slp_faultinject.Faultinject
module E = Slp_util.Slp_error
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Suite = Slp_benchmarks.Suite

let pp_failures outcomes =
  List.iter
    (fun (o : F.outcome) ->
      Printf.printf "FAIL %s on %s at %s: degraded=%b codes=[%s] expected=%s identical=%b\n"
        o.F.kernel o.F.machine (F.point_name o.F.point) o.F.degraded
        (String.concat "; " o.F.codes)
        o.F.expected o.F.scalar_identical)
    (F.failures outcomes)

(* The matrix covers every hook point; each stage must map to its own
   catalogued code so a report names where the pipeline gave up. *)
let test_expected_codes () =
  let check point code =
    Alcotest.(check string)
      (F.point_name point) (E.code_name code)
      (E.code_name (F.expected_code point))
  in
  check (F.Stage "prepare") E.Unsupported;
  check (F.Stage "plan") E.Grouping_failed;
  check (F.Stage "layout") E.Layout_failed;
  check (F.Stage "lower") E.Lowering_failed;
  check (F.Stage "regalloc") E.Regalloc_failed;
  check (F.Stage "verify") E.Verify_rejected;
  check F.Fuel E.Fuel_exhausted;
  check F.Solver_fuel E.Optimal_bailed;
  check (F.Vm_memory 5) E.Vm_trap;
  check (F.Vm_cache 13) E.Injected;
  Alcotest.(check int)
    "every stage hook has a point" (List.length Pipeline.stage_hook_points + 4)
    (List.length F.all_points)

let test_single_case () =
  let prog = Suite.program (List.hd Suite.all) in
  let o = F.run_case ~machine:Machine.intel_dunnington ~point:(F.Stage "plan") prog in
  Alcotest.(check bool) "degraded to scalar" true o.F.degraded;
  Alcotest.(check bool) "BAIL05 reported" true o.F.code_seen;
  Alcotest.(check bool) "memory scalar-identical" true o.F.scalar_identical;
  Alcotest.(check bool) "case ok" true o.F.ok

let test_matrix () =
  let outcomes = F.run_matrix () in
  let expected_cases =
    List.length Suite.all * List.length F.all_points
    * List.length F.default_machines
  in
  Alcotest.(check int) "full matrix" expected_cases (List.length outcomes);
  pp_failures outcomes;
  Alcotest.(check int) "no failures" 0 (List.length (F.failures outcomes));
  (* Compile-side faults must degrade; VM-side faults recover in place
     or by scalar re-run — either way the code must have surfaced. *)
  List.iter
    (fun (o : F.outcome) ->
      match o.F.point with
      | F.Stage _ | F.Fuel ->
          Alcotest.(check bool)
            (Printf.sprintf "%s at %s degraded" o.F.kernel (F.point_name o.F.point))
            true o.F.degraded
      | F.Solver_fuel ->
          (* Advisory bail: BAIL15 must surface without degrading. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s at %s stayed non-degraded" o.F.kernel
               (F.point_name o.F.point))
            false o.F.degraded;
          Alcotest.(check bool)
            (Printf.sprintf "%s at %s reported BAIL15" o.F.kernel
               (F.point_name o.F.point))
            true o.F.code_seen
      | F.Vm_memory _ | F.Vm_cache _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s at %s reported" o.F.kernel (F.point_name o.F.point))
            true o.F.code_seen)
    outcomes

(* 300 generated kernels, one drawn fault each: compile_resilient and
   the recovery path must never raise, and every case must recover. *)
let test_fuzz () =
  let outcomes = F.run_fuzz ~cases:300 ~seed:42 () in
  Alcotest.(check int) "300 cases" 300 (List.length outcomes);
  pp_failures outcomes;
  Alcotest.(check bool) "all recovered" true (F.all_ok outcomes)

let test_determinism () =
  let a = F.run_fuzz ~cases:25 ~seed:7 () in
  let b = F.run_fuzz ~cases:25 ~seed:7 () in
  Alcotest.(check (list string))
    "same seed, same outcomes"
    (List.map F.outcome_to_json a)
    (List.map F.outcome_to_json b)

let test_report_json () =
  let prog = Suite.program (List.hd Suite.all) in
  let o = F.run_case ~machine:Machine.amd_phenom_ii ~point:F.Fuel prog in
  let json = F.report_json [ o ] in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has case count" true (contains json "\"cases\": 1");
  Alcotest.(check bool) "names the code" true (contains json "BAIL11");
  Alcotest.(check bool) "names the point" true (contains json "fuel")

let () =
  Alcotest.run "faultinject"
    [
      ( "fault injection",
        [
          Alcotest.test_case "expected reason codes" `Quick test_expected_codes;
          Alcotest.test_case "single stage case" `Quick test_single_case;
          Alcotest.test_case "full matrix recovers" `Slow test_matrix;
          Alcotest.test_case "300-case fault fuzz never raises" `Slow test_fuzz;
          Alcotest.test_case "seeded determinism" `Quick test_determinism;
          Alcotest.test_case "report json" `Quick test_report_json;
        ] );
    ]
