(* One seed for every generative test executable.

   Property-based tests draw all their randomness from here so a CI
   failure is reproducible: set QCHECK_SEED to replay a run, otherwise
   the default (42) applies.  The seed in effect is announced once per
   executable so the log always shows what to replay. *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 42)
  | None -> 42

let announce = lazy (Printf.eprintf "[seeded] QCHECK_SEED=%d\n%!" seed)

let rand () =
  Lazy.force announce;
  Random.State.make [| seed |]

let prng ?(salt = 0) () =
  Lazy.force announce;
  Slp_util.Prng.create (seed + salt)

let to_alcotest test = QCheck_alcotest.to_alcotest ~rand:(rand ()) test
