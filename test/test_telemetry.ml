(* Tests for the telemetry core: labeled instruments, log-bucketed
   mergeable histograms (quantile error bound, merge associativity,
   bit-identical merge-order determinism), the Prometheus exposition
   renderer and its validator, the structured log ring, the
   cross-domain trace hub, and the legacy Metrics shim. *)

module Json = Slp_obs.Json
module Metric = Slp_obs.Metric
module Metrics = Slp_obs.Metrics
module Log = Slp_obs.Log
module Trace = Slp_obs.Trace
module Tracehub = Slp_obs.Tracehub

(* -- histograms: quantile error bound -------------------------------- *)

let growth = 2.0
let layout = Metric.log_layout ~base:1e-6 ~growth ~buckets:28 ()

let snap_of values =
  let reg = Metric.create () in
  let h = Metric.Histogram.plain reg ~layout "test_seconds" in
  List.iter (Metric.Histogram.observe h) values;
  Metric.Histogram.snap h

let exact_quantile sorted q =
  let n = List.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  List.nth sorted (rank - 1)

let test_quantile_bound =
  (* Values inside the bucketed range: the estimate (a bucket upper
     bound) can only overshoot the exact order statistic, by at most
     one growth factor. *)
  let gen =
    QCheck.make
      ~print:(fun l -> String.concat "," (List.map string_of_float l))
      QCheck.Gen.(
        list_size (int_range 1 200)
          (map (fun x -> 1e-6 *. (2.0 ** x)) (float_range 0.0 27.0)))
  in
  QCheck.Test.make ~count:200
    ~name:"bucketed quantiles overshoot exact percentiles by at most growth"
    gen
    (fun values ->
      let snap = snap_of values in
      let sorted = List.sort compare values in
      List.for_all
        (fun q ->
          let est = Metric.hquantile snap q in
          let exact = exact_quantile sorted q in
          exact <= est && est <= exact *. growth *. (1.0 +. 1e-9))
        [ 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ])

let test_quantile_edges () =
  let empty = snap_of [] in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Metric.hquantile empty 0.5));
  let over = snap_of [ 1e9 ] in
  Alcotest.(check (float 0.0)) "overflow bucket estimates infinity" infinity
    (Metric.hquantile over 0.5);
  Alcotest.(check int) "overflow still counted" 1 (Metric.hcount over)

(* -- histograms: merge determinism ----------------------------------- *)

let test_merge_determinism =
  (* Simulated domains: independent shards over the same layout must
     merge to a bit-identical snapshot in any order or grouping. *)
  let gen =
    QCheck.make
      ~print:(fun shards ->
        Printf.sprintf "%d shards" (List.length shards))
      QCheck.Gen.(
        list_size (int_range 2 6)
          (list_size (int_range 0 50)
             (map (fun x -> 1e-7 *. (2.0 ** x)) (float_range 0.0 30.0))))
  in
  QCheck.Test.make ~count:100
    ~name:"shard merges are associative and order-independent, bit-identically"
    gen
    (fun shards ->
      let snaps = List.map snap_of shards in
      let merge_all l =
        match l with
        | [] -> assert false
        | s :: rest -> List.fold_left Metric.hmerge s rest
      in
      let forward = merge_all snaps in
      let backward = merge_all (List.rev snaps) in
      (* A skewed grouping: fold pairs first, then the rest. *)
      let grouped =
        match snaps with
        | a :: b :: rest -> merge_all (Metric.hmerge a b :: rest)
        | _ -> forward
      in
      let identical a b =
        a.Metric.hcounts = b.Metric.hcounts
        && Int64.equal a.Metric.hsum_fp b.Metric.hsum_fp
        && a.Metric.hbounds = b.Metric.hbounds
      in
      identical forward backward && identical forward grouped)

let test_merge_layout_mismatch () =
  let a = snap_of [ 1.0 ] in
  let other = Metric.log_layout ~base:1e-3 ~growth:3.0 ~buckets:4 () in
  let reg = Metric.create () in
  let h = Metric.Histogram.plain reg ~layout:other "other_seconds" in
  Metric.Histogram.observe h 1.0;
  let b = Metric.Histogram.snap h in
  match Metric.hmerge a b with
  | _ -> Alcotest.fail "layout mismatch not rejected"
  | exception Invalid_argument _ -> ()

(* -- instruments and labels ------------------------------------------ *)

let test_instruments () =
  let reg = Metric.create () in
  let jobs = Metric.Counter.family reg ~labels:[ "scheme"; "outcome" ] "jobs_total" in
  let ok = Metric.Counter.handle jobs [ "slp"; "ok" ] in
  let shed = Metric.Counter.handle jobs [ "slp"; "shed" ] in
  Metric.Counter.incr ok;
  Metric.Counter.incr ~by:4 ok;
  Metric.Counter.incr shed;
  Alcotest.(check int) "labeled counter sums stripes" 5 (Metric.Counter.value ok);
  let g = Metric.Gauge.plain reg "queue_depth" in
  Metric.Gauge.set g 7.0;
  Alcotest.(check (float 0.0)) "gauge" 7.0 (Metric.Gauge.value g);
  (* Same (family, labels) resolves to the same cells. *)
  Metric.Counter.incr (Metric.Counter.handle jobs [ "slp"; "ok" ]);
  Alcotest.(check int) "handle identity" 6 (Metric.Counter.value ok);
  (* Label arity is enforced. *)
  (match Metric.Counter.handle jobs [ "slp" ] with
  | _ -> Alcotest.fail "label arity not enforced"
  | exception Invalid_argument _ -> ());
  (* Kind conflicts are rejected. *)
  (match Metric.Gauge.family reg "jobs_total" with
  | _ -> Alcotest.fail "kind conflict not rejected"
  | exception Invalid_argument _ -> ());
  (* Collect hooks run before snapshot reads. *)
  Metric.on_collect reg (fun () -> Metric.Gauge.set g 9.0);
  let snap = Metric.snapshot reg in
  let depth =
    List.find (fun (f : Metric.family_snap) -> f.Metric.name = "queue_depth") snap
  in
  (match (List.hd depth.Metric.samples).Metric.value with
  | Metric.Vgauge v -> Alcotest.(check (float 0.0)) "hook ran" 9.0 v
  | _ -> Alcotest.fail "gauge sample expected");
  (* Series are sorted by label values within a family. *)
  let jobs_snap =
    List.find (fun (f : Metric.family_snap) -> f.Metric.name = "jobs_total") snap
  in
  let labelsets =
    List.map (fun (s : Metric.sample) -> s.Metric.labels) jobs_snap.Metric.samples
  in
  Alcotest.(check bool) "series sorted" true
    (labelsets = List.sort compare labelsets)

(* -- exposition rendering and validation ----------------------------- *)

let test_exposition_round_trip () =
  let reg = Metric.create () in
  let jobs = Metric.Counter.family reg ~help:"jobs" ~labels:[ "outcome" ] "jobs_total" in
  Metric.Counter.incr ~by:3 (Metric.Counter.handle jobs [ "ok" ]);
  Metric.Counter.incr (Metric.Counter.handle jobs [ "shed" ]);
  Metric.Gauge.set (Metric.Gauge.plain reg ~help:"depth" "queue_depth") 2.0;
  let h = Metric.Histogram.plain reg ~help:"lat" "job_latency_seconds" in
  List.iter (Metric.Histogram.observe h) [ 1e-5; 2e-3; 0.5; 4000.0 ];
  let text = Metric.to_prometheus reg in
  (match Metric.validate_exposition text with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("valid exposition rejected: " ^ e));
  let has needle =
    let ln = String.length needle and lh = String.length text in
    let rec go i = i + ln <= lh && (String.sub text i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "TYPE line" true (has "# TYPE jobs_total counter");
  Alcotest.(check bool) "labeled sample" true (has "jobs_total{outcome=\"ok\"} 3");
  Alcotest.(check bool) "inf bucket" true (has "job_latency_seconds_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "sum line" true (has "job_latency_seconds_sum")

let test_exposition_rejections () =
  let cases =
    [
      ("sample before TYPE", "jobs_total 1\n");
      ( "counter without _total",
        "# TYPE jobs counter\njobs 1\n" );
      ( "_total non-counter",
        "# TYPE jobs_total gauge\njobs_total 1\n" );
      ( "histogram without _seconds",
        "# TYPE lat histogram\n\
         lat_bucket{le=\"+Inf\"} 1\nlat_sum 1\nlat_count 1\n" );
      ( "duplicate sample",
        "# TYPE a_total counter\na_total 1\na_total 2\n" );
      ( "decreasing buckets",
        "# TYPE l_seconds histogram\n\
         l_seconds_bucket{le=\"1\"} 5\n\
         l_seconds_bucket{le=\"+Inf\"} 3\n\
         l_seconds_sum 1\nl_seconds_count 3\n" );
      ( "missing +Inf bucket",
        "# TYPE l_seconds histogram\n\
         l_seconds_bucket{le=\"1\"} 1\nl_seconds_sum 1\nl_seconds_count 1\n" );
      ( "inf bucket vs count",
        "# TYPE l_seconds histogram\n\
         l_seconds_bucket{le=\"+Inf\"} 2\nl_seconds_sum 1\nl_seconds_count 3\n" );
      ( "missing sum",
        "# TYPE l_seconds histogram\n\
         l_seconds_bucket{le=\"+Inf\"} 1\nl_seconds_count 1\n" );
    ]
  in
  List.iter
    (fun (what, text) ->
      match Metric.validate_exposition text with
      | Error _ -> ()
      | Ok () -> Alcotest.fail (what ^ " accepted"))
    cases

(* -- structured log --------------------------------------------------- *)

let test_log_ring_and_levels () =
  let t = ref 0.0 in
  let log = Log.create ~level:Log.Info ~capacity:4 ~clock:(fun () -> !t) () in
  Log.debug log "invisible" [];
  Alcotest.(check int) "debug filtered" 0 (Log.total log);
  for i = 1 to 6 do
    t := float_of_int i;
    Log.info log "tick" [ ("i", Json.Num (float_of_int i)) ]
  done;
  Log.warn log "trouble" [ ("what", Json.Str "queue") ];
  Alcotest.(check int) "post-filter total" 7 (Log.total log);
  let entries = Log.recent log in
  Alcotest.(check int) "ring holds capacity" 4 (List.length entries);
  let last = List.nth entries 3 in
  Alcotest.(check string) "oldest-first order" "trouble" last.Log.event;
  (* Every rendered line is valid JSON with the standard envelope. *)
  List.iter
    (fun (e : Log.entry) ->
      match Json.parse e.Log.line with
      | Result.Ok obj ->
          (match Json.member "level" obj with
          | Some (Json.Str _) -> ()
          | _ -> Alcotest.fail "line lacks level")
      | Result.Error m -> Alcotest.fail ("unparsable log line: " ^ m))
    entries;
  Alcotest.(check (list (pair string int)))
    "per-level counts"
    [ ("debug", 0); ("info", 6); ("warn", 1); ("error", 0) ]
    (Log.counts log);
  (* Threshold changes apply immediately; Off silences everything. *)
  Log.set_level log Log.Off;
  Log.error log "dropped" [];
  Alcotest.(check int) "off logs nothing" 7 (Log.total log)

let test_log_file_sink () =
  let path = Filename.temp_file "slp-log" ".jsonl" in
  let log = Log.create ~level:Log.Debug ~clock:(fun () -> 1.5) () in
  Log.with_file log path;
  Log.info log "hello" [ ("n", Json.Num 1.0) ];
  Log.debug log "bye" [];
  Log.close log;
  let ic = open_in path in
  let lines = List.init 2 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "two lines" 2 (List.length lines);
  match Json.parse (List.hd lines) with
  | Result.Ok obj ->
      Alcotest.(check bool) "event field" true
        (Json.member "event" obj = Some (Json.Str "hello"))
  | Result.Error m -> Alcotest.fail ("bad sink line: " ^ m)

(* -- trace hub -------------------------------------------------------- *)

let test_tracehub_merge () =
  let hub = Tracehub.create () in
  Tracehub.span hub ~args:[ ("trace", "c1-r1") ] "rx" (fun () -> ());
  let worker i =
    Domain.spawn (fun () ->
        Tracehub.span hub ~args:[ ("trace", Printf.sprintf "c1-r%d" i) ] "job"
          (fun () -> Tracehub.span hub "prepare" (fun () -> ())))
  in
  let ds = List.init 3 worker in
  List.iter Domain.join ds;
  Alcotest.(check bool) "balanced" true (Tracehub.balanced hub);
  Alcotest.(check int) "one row per domain" 4 (Tracehub.domains hub);
  let doc = Tracehub.to_chrome_json hub in
  (match Trace.validate_chrome_json doc with
  | Ok n -> Alcotest.(check int) "all events merged" 14 n
  | Error e -> Alcotest.fail ("merged trace invalid: " ^ e));
  (* The merged doc carries distinct tid rows. *)
  match Json.parse doc with
  | Result.Error m -> Alcotest.fail m
  | Result.Ok obj -> (
      match Json.member "traceEvents" obj with
      | Some (Json.Arr evs) ->
          let tids =
            List.sort_uniq compare
              (List.filter_map
                 (fun ev ->
                   match Json.member "tid" ev with
                   | Some (Json.Num n) -> Some n
                   | _ -> None)
                 evs)
          in
          Alcotest.(check int) "four tids" 4 (List.length tids)
      | _ -> Alcotest.fail "no traceEvents")

(* -- legacy shim ------------------------------------------------------ *)

let test_metrics_shim () =
  let m = Metrics.create () in
  Metrics.incr m "worker_restarts_total";
  Metrics.incr ~by:2 m "worker_restarts_total";
  Metrics.set m "depth" 5.0;
  Alcotest.(check (float 0.0)) "counter via shim" 3.0 (Metrics.get m "worker_restarts_total");
  Alcotest.(check (float 0.0)) "gauge via shim" 5.0 (Metrics.get m "depth");
  Alcotest.(check (float 0.0)) "unknown is zero" 0.0 (Metrics.get m "nope");
  (* Labeled families registered through the typed core are readable
     through the shim, filtered or summed. *)
  let jobs = Metric.Counter.family m ~labels:[ "scheme"; "outcome" ] "jobs_total" in
  Metric.Counter.incr ~by:3 (Metric.Counter.handle jobs [ "slp"; "ok" ]);
  Metric.Counter.incr (Metric.Counter.handle jobs [ "global"; "ok" ]);
  Metric.Counter.incr (Metric.Counter.handle jobs [ "slp"; "shed" ]);
  Alcotest.(check (float 0.0)) "sum across labels" 5.0 (Metrics.get m "jobs_total");
  Alcotest.(check (float 0.0)) "filtered by outcome" 4.0
    (Metrics.get ~where:[ ("outcome", "ok") ] m "jobs_total");
  Alcotest.(check (float 0.0)) "filtered by both" 3.0
    (Metrics.get ~where:[ ("scheme", "slp"); ("outcome", "ok") ] m "jobs_total");
  let snap = Metrics.snapshot m in
  let keys = List.map fst snap in
  Alcotest.(check bool) "snapshot sorted" true (keys = List.sort compare keys);
  Alcotest.(check bool) "labels flattened" true
    (List.mem_assoc "jobs_total{scheme=\"slp\",outcome=\"ok\"}" snap);
  match Metrics.to_json m with
  | Json.Obj fields ->
      Alcotest.(check int) "json mirrors snapshot" (List.length snap)
        (List.length fields)
  | _ -> Alcotest.fail "to_json not an object"

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Seeded.to_alcotest test_quantile_bound;
          Alcotest.test_case "quantile edges" `Quick test_quantile_edges;
          Seeded.to_alcotest test_merge_determinism;
          Alcotest.test_case "layout mismatch" `Quick test_merge_layout_mismatch;
        ] );
      ( "instruments",
        [ Alcotest.test_case "counters, gauges, labels" `Quick test_instruments ] );
      ( "exposition",
        [
          Alcotest.test_case "render and validate" `Quick test_exposition_round_trip;
          Alcotest.test_case "validator rejections" `Quick test_exposition_rejections;
        ] );
      ( "log",
        [
          Alcotest.test_case "ring and levels" `Quick test_log_ring_and_levels;
          Alcotest.test_case "file sink" `Quick test_log_file_sink;
        ] );
      ( "tracehub",
        [ Alcotest.test_case "multi-domain merge" `Quick test_tracehub_merge ] );
      ( "shim",
        [ Alcotest.test_case "legacy metrics view" `Quick test_metrics_shim ] );
    ]
