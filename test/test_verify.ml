(* Verifier tests.

   Two halves prove the verifier from both sides: the mutation tests
   feed every deliberately-corrupted artifact from {!Slp_verify.Corrupt}
   through the checkers and assert the corruption is rejected with its
   expected rule id (checkers actually fire); the clean-suite tests
   compile every benchmark kernel under every scheme with verification
   enabled and assert zero errors (checkers are not over-strict). *)

module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Verify = Slp_verify.Verify
module D = Slp_verify.Diagnostic
module Corrupt = Slp_verify.Corrupt
module Suite = Slp_benchmarks.Suite

(* -- mutation tests: every corruption flagged with its rule ------------- *)

let mutation_case (c : Corrupt.case) () =
  let diags = c.Corrupt.diags () in
  let hit =
    List.exists (fun (d : D.t) -> d.D.rule = c.Corrupt.expected_rule && D.is_error d) diags
  in
  (* Other rules may legitimately fire alongside (a reordered schedule
     can break both SCHED02 and SCHED03); the expected one must be
     among them. *)
  if not hit then
    Alcotest.failf "corruption %S not flagged with %s; diagnostics: [%s]"
      c.Corrupt.name c.Corrupt.expected_rule
      (String.concat "; " (List.map D.to_string diags))

let layer_of_rule rule = String.sub rule 0 2

let test_mutation_coverage () =
  (* The corruption corpus must span all four verifier layers. *)
  let layers =
    List.sort_uniq compare
      (List.map (fun c -> layer_of_rule c.Corrupt.expected_rule) Corrupt.cases)
  in
  Alcotest.(check (list string)) "layers covered" [ "IR"; "PA"; "SC"; "VI" ] layers;
  Alcotest.(check bool) "at least 8 distinct mutations" true
    (List.length Corrupt.cases >= 8)

(* -- clean suite: real kernels never trip the checkers ------------------ *)

let machines = [ Machine.intel_dunnington; Machine.amd_phenom_ii ]

let clean_suite_case scheme () =
  List.iter
    (fun (k : Suite.t) ->
      let prog = Suite.program k in
      List.iter
        (fun (machine : Machine.t) ->
          let c = Pipeline.compile ~unroll:k.Suite.unroll ~scheme ~machine prog in
          match c.Pipeline.verify_report with
          | None -> Alcotest.failf "%s: verification did not run" k.Suite.name
          | Some r ->
              Alcotest.(check bool)
                (Printf.sprintf "%s on %s" k.Suite.name machine.Machine.name)
                true (Verify.is_clean r))
        machines)
    Suite.all

let test_verify_off () =
  let prog = Suite.program (List.hd Suite.all) in
  let c =
    Pipeline.compile ~verify:false ~scheme:Pipeline.Global
      ~machine:Machine.intel_dunnington prog
  in
  Alcotest.(check bool) "no report" true (c.Pipeline.verify_report = None);
  Alcotest.(check (float 1e-9)) "no verify time" 0.0 c.Pipeline.verify_seconds

(* -- report plumbing ---------------------------------------------------- *)

let test_raise_on_errors () =
  let err =
    D.error ~rule:"IR05-dup-id" ~stage:D.Prepared_ir ~where:"S1" "duplicate id"
  in
  let warn =
    D.warning ~rule:"IR09-live-in-scalar" ~stage:D.Prepared_ir ~where:"" "read only"
  in
  (match Verify.raise_if_errors ~what:"t" (Verify.of_diagnostics [ warn ]) with
  | () -> ()
  | exception Verify.Verification_failed _ -> Alcotest.fail "warnings must not raise");
  match Verify.raise_if_errors ~what:"t" (Verify.of_diagnostics [ warn; err ]) with
  | () -> Alcotest.fail "errors must raise"
  | exception Verify.Verification_failed (what, r) ->
      Alcotest.(check string) "program name" "t" what;
      Alcotest.(check int) "one error" 1 (List.length (Verify.errors r));
      Alcotest.(check int) "one warning" 1 (List.length (Verify.warnings r))

let test_report_rendering () =
  let err =
    D.error ~rule:"VISA03-selector" ~stage:D.Regalloc ~where:"vpermute v1, v0"
      "selector index %d out of range for %d lanes" 5 2
  in
  let s = Verify.report_to_string (Verify.of_diagnostics [ err ]) in
  List.iter
    (fun needle ->
      let lh = String.length s and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub s i ln = needle || go (i + 1)) in
      if not (go 0) then Alcotest.failf "rendered report %S lacks %S" s needle)
    [ "VISA03-selector"; "regalloc"; "vpermute v1, v0"; "error" ]

let () =
  Alcotest.run "verify"
    [
      ( "mutations",
        Alcotest.test_case "layer coverage" `Quick test_mutation_coverage
        :: List.map
             (fun c -> Alcotest.test_case c.Corrupt.name `Quick (mutation_case c))
             Corrupt.cases );
      ( "clean suite",
        List.map
          (fun s ->
            Alcotest.test_case (Pipeline.scheme_name s) `Quick (clean_suite_case s))
          Pipeline.all_schemes
        @ [ Alcotest.test_case "verify off" `Quick test_verify_off ] );
      ( "report",
        [
          Alcotest.test_case "raise on errors" `Quick test_raise_on_errors;
          Alcotest.test_case "rendering" `Quick test_report_rendering;
        ] );
    ]
