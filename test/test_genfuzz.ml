(* The generative kernel fuzzer (lib/fuzz) in the tier-1 suite: a
   bounded differential campaign, source<->IR structural round-trips,
   shrinker quality against a deliberately injected miscompile, and
   regression kernels the fuzzer has found. *)

open Slp_ir
module Gen = Slp_fuzz.Gen
module Oracle = Slp_fuzz.Oracle
module Shrink = Slp_fuzz.Shrink
module Harness = Slp_fuzz.Harness
module Pipeline = Slp_pipeline.Pipeline
module Prng = Slp_util.Prng

(* -- bounded campaign ---------------------------------------------- *)

let test_campaign () =
  let config =
    { Harness.default_config with Harness.seed = Seeded.seed; count = 300 }
  in
  let stats = Harness.run config in
  List.iter
    (fun r -> Format.eprintf "%a@." Harness.pp_report r)
    stats.Harness.reports;
  Alcotest.(check int) "cases run" 300 stats.Harness.cases;
  Alcotest.(check int)
    "no differential failures" 0
    (List.length stats.Harness.reports)

(* -- source <-> IR round-trips ------------------------------------- *)

(* Printing a generated kernel and re-parsing it must reproduce the
   same declarations and loop/block tree (names, bounds, statements);
   only block labels and statement ids are bookkeeping. *)
let test_structural_roundtrip () =
  let master = Seeded.prng ~salt:1 () in
  for k = 0 to 59 do
    let prng = Prng.split master in
    let p = Gen.program ~name:(Printf.sprintf "rt%d" k) prng in
    let src = Program.to_source p in
    match Slp_frontend.Parser.parse ~name:p.Program.name src with
    | exception Slp_frontend.Parser.Error (msg, l, c) ->
        Alcotest.failf "case %d: reparse failed at %d:%d: %s\n%s" k l c msg src
    | q ->
        if not (Program.equal_structure p q) then
          Alcotest.failf "case %d: structure differs after roundtrip\n%s" k src
  done

(* print/parse reaches a fixed point after one iteration: negated
   constants re-parse as negation nodes (the grammar has no negative
   literals), but from then on printing is byte-stable. *)
let test_print_fixed_point () =
  let master = Seeded.prng ~salt:2 () in
  for k = 0 to 19 do
    let prng = Prng.split master in
    let p = Gen.program ~name:(Printf.sprintf "fp%d" k) prng in
    let q =
      Slp_frontend.Parser.parse ~name:p.Program.name (Program.to_source p)
    in
    let src = Program.to_source q in
    let r = Slp_frontend.Parser.parse ~name:p.Program.name src in
    Alcotest.(check string)
      (Printf.sprintf "case %d print fixed point" k)
      src (Program.to_source r)
  done

(* -- shrinker quality ---------------------------------------------- *)

(* Injecting a miscompile (first vector op flipped) into an otherwise
   healthy kernel must shrink to a tiny reproducer: the acceptance bar
   is at most 5 statements. *)
let test_shrinker_on_injected_miscompile () =
  let fails q =
    Oracle.failed
      (Oracle.run ~mutate:Oracle.miscompile ~schemes:[ Pipeline.Global ] q)
  in
  let master = Seeded.prng ~salt:3 () in
  let rec find k =
    if k >= 50 then Alcotest.fail "no vectorized case in 50 draws"
    else
      let prng = Prng.split master in
      let p = Gen.program ~name:(Printf.sprintf "mc%d" k) prng in
      if fails p then p else find (k + 1)
  in
  let p = find 0 in
  let shrunk = Shrink.run ~max_checks:400 ~still_fails:fails p in
  Alcotest.(check bool) "shrunk program still fails" true (fails shrunk);
  let n = Program.stmt_count shrunk in
  if n > 5 then
    Alcotest.failf "shrunk to %d statements (> 5):\n%s" n
      (Program.to_source shrunk)

(* The shrinker never returns an invalid or non-reparseable program. *)
let test_shrinker_output_wellformed () =
  let fails q =
    Oracle.failed
      (Oracle.run ~mutate:Oracle.miscompile ~schemes:[ Pipeline.Slp ] q)
  in
  let master = Seeded.prng ~salt:4 () in
  let rec find k =
    if k >= 50 then None
    else
      let prng = Prng.split master in
      let p = Gen.program ~name:(Printf.sprintf "wf%d" k) prng in
      if fails p then Some p else find (k + 1)
  in
  match find 0 with
  | None -> () (* SLP scheme found nothing to vectorize; campaign covers it *)
  | Some p ->
      let shrunk = Shrink.run ~max_checks:300 ~still_fails:fails p in
      (match Program.validate shrunk with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "shrunk program invalid: %s" msg);
      let src = Program.to_source shrunk in
      let q = Slp_frontend.Parser.parse ~name:"wf" src in
      Alcotest.(check bool)
        "reparsed shrunk program equals original" true
        (Program.equal_structure shrunk q)

(* -- regressions the fuzzer found ---------------------------------- *)

(* Found by `slpfuzz --seed 42 --index 45` and shrunk automatically.
   Larsen's combination phase merged two unrolled pack copies whose
   members carry a WAW dependence (both write A[i0+3] across copies):
   pack-contraction acyclicity cannot see intra-pack edges, so the
   merge survived until Schedule.is_valid rejected the schedule and
   plan_block raised.  The phase now requires pairwise independence
   between the packs being merged. *)
let larsen_waw_merge_src =
  "f32 A[256];\n" ^ "f32 B[256];\n" ^ "f32 C[256];\n"
  ^ "for i0 = 0 to 2 step 1 {\n"
  ^ "  A[i0+2] = ((C[i0+25] - B[i0+3]) * (B[2*i0+178] + -1));\n"
  ^ "  A[i0+3] = ((C[i0+26] - B[i0+4]) * (B[2*i0+179] + A[i0+152]));\n" ^ "}\n"

(* Found by `slpfuzz --seed 42 --index 8656` and shrunk automatically.
   Larsen's combination phase also never compared shapes across the
   two packs being merged: a constant-store pair and a negation pair
   over address-consecutive elements combined into one superword whose
   members are not isomorphic (verifier rule PACK01).  The phase now
   requires every merged member to stay isomorphic to the first
   lane. *)
let larsen_noniso_merge_src =
  "f32 A[256];\n" ^ "f32 C[256];\n"
  ^ "for i0 = 2 to 4 step 1 {\n" ^ "  C[i0+5] = -1.375;\n"
  ^ "  C[i0+7] = (-A[i0+2]);\n" ^ "}\n"

(* Found by `slpfuzz --seed 42 --index 4735` and shrunk automatically.
   The native vectorizer grows packs one lane at a time but contracted
   only the seam pair when checking acyclicity — the partial run's own
   pairs are not in [decided] yet, so a dependence cycle through a
   middle lane (here via the B-store pack reading what the C-store
   pack writes, and vice versa across unrolled copies) survived until
   Larsen.schedule raised. *)
let native_cyclic_pack_src =
  "f32 B[256];\n" ^ "f32 C[256];\n"
  ^ "for i0 = 1 to 3 step 1 {\n" ^ "  B[i0+2] = C[i0+4];\n"
  ^ "  C[i0+3] = C[i0+25];\n" ^ "  C[i0+4] = C[i0+26];\n"
  ^ "  C[i0+5] = C[i0+27];\n" ^ "}\n"

let check_regression name src () =
  let p = Slp_frontend.Parser.parse ~name src in
  let outcome = Oracle.run p in
  List.iter
    (fun f -> Format.eprintf "%a@." Oracle.pp_failure f)
    outcome.Oracle.failures;
  Alcotest.(check int)
    "oracle clean on all schemes and machines" 0
    (List.length outcome.Oracle.failures)

let test_larsen_waw_merge_regression =
  check_regression "larsen_waw_merge" larsen_waw_merge_src

(* -- campaign replay ----------------------------------------------- *)

(* case_program must reproduce campaign cases from (seed, index) alone. *)
let test_case_replay () =
  let config = { Harness.default_config with Harness.seed = 7; count = 5 } in
  let seen = ref [] in
  let (_ : Harness.stats) =
    Harness.run ~on_case:(fun i p -> seen := (i, p) :: !seen) config
  in
  List.iter
    (fun (i, p) ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d replays" i)
        true
        (Program.equal_structure p (Harness.case_program config i)))
    !seen

let () =
  Alcotest.run "genfuzz"
    [
      ( "campaign",
        [
          Alcotest.test_case "300-case differential campaign" `Quick test_campaign;
          Alcotest.test_case "case replay from (seed, index)" `Quick
            test_case_replay;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "source<->IR structural roundtrip" `Quick
            test_structural_roundtrip;
          Alcotest.test_case "printer is a fixed point" `Quick
            test_print_fixed_point;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "injected miscompile shrinks to <= 5 stmts" `Quick
            test_shrinker_on_injected_miscompile;
          Alcotest.test_case "shrunk output is valid and reparseable" `Quick
            test_shrinker_output_wellformed;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "larsen combination-phase WAW merge" `Quick
            test_larsen_waw_merge_regression;
          Alcotest.test_case "larsen combination-phase non-isomorphic merge"
            `Quick
            (check_regression "larsen_noniso_merge" larsen_noniso_merge_src);
          Alcotest.test_case "native partial-pack dependence cycle" `Quick
            (check_regression "native_cyclic_pack" native_cyclic_pack_src);
        ] );
    ]
