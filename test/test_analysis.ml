(* Tests for the analysis library: access vectors, alignment, def-use
   chains and scalar liveness. *)

open Slp_ir
module Access = Slp_analysis.Access
module Alignment = Slp_analysis.Alignment
module Chains = Slp_analysis.Chains
module Liveness = Slp_analysis.Liveness

(* -- access vectors -------------------------------------------------------- *)

let test_access_vector () =
  (* A[2i+1][3j-2] in nest (i, j). *)
  let op =
    Operand.Elem
      ("A", [ Affine.make [ ("i", 2) ] 1; Affine.make [ ("j", 3) ] (-2) ])
  in
  match Access.of_operand ~nest:[ "i"; "j" ] op with
  | None -> Alcotest.fail "expected an access vector"
  | Some a ->
      Alcotest.(check int) "rank" 2 (Access.rank a);
      Alcotest.(check int) "depth" 2 (Access.depth a);
      Alcotest.(check bool) "Q" true (a.Access.q = [| [| 2; 0 |]; [| 0; 3 |] |]);
      Alcotest.(check bool) "O" true (a.Access.offset = [| 1; -2 |]);
      (* Row-major linearisation with dims [8; 16]:
         addr = (2i+1)*16 + 3j-2 = 32 i + 3 j + 14. *)
      let coeffs, const = Access.linearise ~dims:[ 8; 16 ] a in
      Alcotest.(check bool) "linear coeffs" true (coeffs = [| 32; 3 |]);
      Alcotest.(check int) "linear const" 14 const;
      Alcotest.(check int) "innermost stride" 3 (Access.innermost_coeff ~dims:[ 8; 16 ] a)

let test_access_rejects_foreign_vars () =
  let op = Operand.Elem ("A", [ Affine.var "k" ]) in
  Alcotest.(check bool) "foreign variable" true
    (Access.of_operand ~nest:[ "i" ] op = None);
  Alcotest.(check bool) "scalar has no access vector" true
    (Access.of_operand ~nest:[ "i" ] (Operand.Scalar "x") = None)

(* -- alignment -------------------------------------------------------------- *)

let verdict =
  Alcotest.testable Alignment.pp_verdict (fun a b -> a = b)

let test_alignment_verdicts () =
  let acc coeff const =
    Option.get
      (Access.of_operand ~nest:[ "i" ]
         (Operand.Elem ("A", [ Affine.make [ ("i", coeff) ] const ])))
  in
  (* Two lanes: aligned iff coeff and const are even. *)
  Alcotest.check verdict "A[2i] aligned" Alignment.Aligned
    (Alignment.of_access ~lanes:2 ~dims:[ 64 ] (acc 2 0));
  Alcotest.check verdict "A[2i+1] misaligned by one" (Alignment.Misaligned 1)
    (Alignment.of_access ~lanes:2 ~dims:[ 64 ] (acc 2 1));
  Alcotest.check verdict "A[i] varies" Alignment.Unknown
    (Alignment.of_access ~lanes:2 ~dims:[ 64 ] (acc 1 0))

let env_a () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  env

let test_contiguous_pack () =
  let env = env_a () in
  let e k = Operand.Elem ("A", [ Affine.make [ ("i", 1) ] k ]) in
  Alcotest.(check bool) "ascending run" true
    (Alignment.contiguous_pack ~env [ e 0; e 1; e 2 ]);
  Alcotest.(check bool) "gap breaks it" false
    (Alignment.contiguous_pack ~env [ e 0; e 2 ]);
  Alcotest.(check bool) "descending is not contiguous" false
    (Alignment.contiguous_pack ~env [ e 1; e 0 ]);
  Alcotest.(check bool) "single operand is not a pack" false
    (Alignment.contiguous_pack ~env [ e 0 ]);
  Alcotest.(check bool) "scalars are not contiguous memory" false
    (Alignment.contiguous_pack ~env [ Operand.Scalar "x"; Operand.Scalar "y" ])

(* -- chains ------------------------------------------------------------------- *)

let chain_block () =
  Block.of_rhs
    [
      (Operand.Scalar "x", Expr.Infix.(cst 1.0 + cst 1.0));
      (Operand.Scalar "y", Expr.Infix.(sc "x" * cst 2.0));
      (Operand.Scalar "x", Expr.Infix.(sc "x" + cst 1.0));
      (Operand.Scalar "z", Expr.Infix.(sc "x" * sc "y"));
    ]

let test_chains () =
  let c = Chains.compute (chain_block ()) in
  (* S1 defines x; read by S2 and S3 (before S3 redefines it). *)
  Alcotest.(check (list int)) "def-use of S1" [ 2; 3 ] (Chains.def_use c 1);
  (* S4 reads the x from S3 and the y from S2. *)
  Alcotest.(check (list (pair string int)))
    "use-def of S4"
    [ ("x", 3); ("y", 2) ]
    (List.sort compare (Chains.use_def c 4));
  Alcotest.(check (option int)) "reaching def" (Some 3)
    (Chains.reaching_def c ~var:"x" ~before:4);
  Alcotest.(check (option int)) "before the redefinition" (Some 1)
    (Chains.reaching_def c ~var:"x" ~before:3)

let test_chains_linear () =
  (* Smoke test for the linear-time accumulation in Chains.compute: one
     def with ~1000 uses used to cost O(n^2) list appends.  We only
     assert correctness (count and ascending order); the wall-clock
     guard is that the whole suite stays quick. *)
  let n = 1000 in
  let stmts =
    (Operand.Scalar "s", Expr.Infix.(cst 1.0 + cst 1.0))
    :: List.init n (fun k ->
           (Operand.Scalar (Printf.sprintf "t%d" k), Expr.Infix.(sc "s" * cst 2.0)))
  in
  let c = Chains.compute (Block.of_rhs stmts) in
  let uses = Chains.def_use c 1 in
  Alcotest.(check int) "all uses recorded" n (List.length uses);
  Alcotest.(check (list int)) "program order" (List.init n (fun k -> k + 2)) uses;
  (* A long serial chain exercises the use-def side the same way. *)
  let chain =
    (Operand.Scalar "c0", Expr.Infix.(cst 1.0 + cst 1.0))
    :: List.init n (fun k ->
           ( Operand.Scalar (Printf.sprintf "c%d" (k + 1)),
             Expr.Infix.(sc (Printf.sprintf "c%d" k) + cst 1.0) ))
  in
  let c = Chains.compute (Block.of_rhs chain) in
  Alcotest.(check (list (pair string int)))
    "tail of the chain"
    [ (Printf.sprintf "c%d" (n - 1), n) ]
    (Chains.use_def c (n + 1))

(* -- liveness ------------------------------------------------------------------ *)

let test_liveness () =
  let env = Env.create () in
  List.iter (fun v -> Env.declare_scalar env v Types.F64) [ "t"; "acc"; "out" ];
  Env.declare_array env "A" Types.F64 [ 16 ];
  let b1 =
    Block.make ~label:"b1"
      [
        Stmt.make ~id:1 ~lhs:(Operand.Scalar "t")
          ~rhs:Expr.Infix.(arr "A" [ Affine.var "i" ] + cst 0.0);
        Stmt.make ~id:2 ~lhs:(Operand.Scalar "acc") ~rhs:Expr.Infix.(sc "acc" + sc "t");
      ]
  in
  let b2 =
    Block.make ~label:"b2"
      [ Stmt.make ~id:1 ~lhs:(Operand.Scalar "out") ~rhs:Expr.Infix.(sc "acc" * cst 2.0) ]
  in
  let prog =
    Program.make ~name:"p" ~env
      [
        Program.loop "i" ~lo:(Affine.const 0) ~hi:(Affine.const 16) [ Program.Stmts b1 ];
        Program.Stmts b2;
      ]
  in
  let live = Liveness.compute prog in
  (* t: defined then used within b1 only -> dead outside the block's
     vector dataflow. *)
  Alcotest.(check bool) "t not demanded" false (Liveness.demanded live b1 "t");
  (* acc: upward exposed in b1 (loop-carried) and read by b2. *)
  Alcotest.(check bool) "acc upward exposed" true (Liveness.upward_exposed live b1 "acc");
  Alcotest.(check bool) "acc demanded" true (Liveness.demanded live b1 "acc");
  (* out: written in b2, read nowhere else. *)
  Alcotest.(check bool) "out not demanded" false (Liveness.demanded live b2 "out")

let () =
  Alcotest.run "analysis"
    [
      ( "access",
        [
          Alcotest.test_case "access vectors" `Quick test_access_vector;
          Alcotest.test_case "foreign variables" `Quick test_access_rejects_foreign_vars;
        ] );
      ( "alignment",
        [
          Alcotest.test_case "verdicts" `Quick test_alignment_verdicts;
          Alcotest.test_case "contiguous packs" `Quick test_contiguous_pack;
        ] );
      ( "chains",
        [
          Alcotest.test_case "def-use / use-def" `Quick test_chains;
          Alcotest.test_case "1k-statement linearity" `Quick test_chains_linear;
        ] );
      ("liveness", [ Alcotest.test_case "demand analysis" `Quick test_liveness ]);
    ]
