(* Tests for the data layout optimization: scalar placement (§5.1),
   array replication (§5.2) and the general mapping equations. *)

open Slp_ir
module Scalar_layout = Slp_layout.Scalar_layout
module Array_layout = Slp_layout.Array_layout
module Transform = Slp_layout.Transform
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Rat = Slp_util.Rat
module Mat = Slp_util.Mat

(* -- the paper's Figure 14 mapping ---------------------------------------- *)

let test_mapping_1d_figure14 () =
  (* A[4i] and A[4i+3] mapped to B[2i] and B[2i+1]: lane 0 has a=4,
     b=0, p=0; lane 1 has a=4, b=3, p=1. *)
  List.iter
    (fun (d, expected) ->
      Alcotest.(check (option int))
        (Printf.sprintf "lane0 d=%d" d)
        expected
        (Transform.mapping_1d ~a:4 ~b:0 ~lanes:2 ~position:0 d))
    [ (0, Some 0); (4, Some 2); (8, Some 4); (1, None); (6, None) ];
  List.iter
    (fun (d, expected) ->
      Alcotest.(check (option int))
        (Printf.sprintf "lane1 d=%d" d)
        expected
        (Transform.mapping_1d ~a:4 ~b:3 ~lanes:2 ~position:1 d))
    [ (3, Some 1); (7, Some 3); (11, Some 5); (2, None) ]

let test_mapping_nd () =
  (* 2-D reference with Q1 = [[1,0],[0,2]], O = (0,1): element (i, 2j+1).
     For lanes=2, position=0: data index (3, 5) -> i=3, j=2 ->
     B[3][2*2+0] = (3,4). *)
  let q1 = Mat.of_int_array [| [| 1; 0 |]; [| 0; 2 |] |] in
  let offset = [| Rat.zero; Rat.one |] in
  (match Transform.mapping_nd ~q1 ~offset ~lanes:2 ~position:0 [| 3; 5 |] with
  | Some r -> Alcotest.(check bool) "mapped" true (r = [| 3; 4 |])
  | None -> Alcotest.fail "expected a mapping");
  (* An element the reference never touches (even second coordinate). *)
  Alcotest.(check bool) "untouched element" true
    (Transform.mapping_nd ~q1 ~offset ~lanes:2 ~position:0 [| 3; 4 |] = None)

let test_spatial_transform () =
  (* Ldefault = I; Lopt swaps dimensions: M is the swap itself. *)
  let id = Mat.identity 2 in
  let swap = Mat.of_int_array [| [| 0; 1 |]; [| 1; 0 |] |] in
  match Transform.spatial_transform ~l_default:id ~l_opt:swap with
  | None -> Alcotest.fail "identity is invertible"
  | Some m ->
      Alcotest.(check bool) "M = swap" true (Mat.equal m swap);
      let q = Mat.of_int_array [| [| 1; 0 |]; [| 0; 3 |] |] in
      let q1, o1 = Transform.transformed_access ~m ~q ~offset:[| Rat.of_int 1; Rat.of_int 2 |] in
      Alcotest.(check bool) "rows swapped" true
        (Mat.equal q1 (Mat.of_int_array [| [| 0; 3 |]; [| 1; 0 |] |]));
      Alcotest.(check bool) "offset swapped" true
        (Rat.equal o1.(0) (Rat.of_int 2) && Rat.equal o1.(1) (Rat.of_int 1))

(* -- scalar placement -------------------------------------------------------- *)

let scalar_web_src =
  {|
f64 P[2200];
f64 F[2200];
f64 W[4400];
f64 a; f64 b; f64 c; f64 d; f64 g; f64 h; f64 q; f64 r;
q = 0.7;
r = 0.3;
for t = 0 to 16 {
  for i = 1 to 1024 {
    a = P[2*i];
    b = P[2*i+1];
    c = sqrt(a * W[4*i] + 1.0);
    d = sqrt(b * W[4*i+4] + 1.0);
    g = q * W[4*i-2];
    h = r * W[4*i+2];
    F[2*i] = d + a * c;
    F[2*i+1] = g + r * h;
  }
}
|}

let test_scalar_placement () =
  let prog = Slp_frontend.Parser.parse ~name:"web" scalar_web_src in
  let machine = Machine.intel_dunnington in
  let c = Pipeline.compile ~unroll:1 ~scheme:Pipeline.Global ~machine prog in
  match c.Pipeline.plan with
  | None -> Alcotest.fail "expected a plan"
  | Some plan ->
      let sws = Scalar_layout.collect_scalar_superwords ~env:prog.Program.env plan in
      Alcotest.(check bool) "scalar superwords found" true (List.length sws >= 2);
      let placement = Scalar_layout.place ~env:prog.Program.env plan in
      (* Offsets are distinct multiples of 8, lanes consecutive. *)
      let offsets = List.map snd placement.Scalar_layout.offsets in
      Alcotest.(check int) "distinct"
        (List.length offsets)
        (List.length (List.sort_uniq compare offsets));
      List.iter
        (fun o -> Alcotest.(check int) "8-byte aligned" 0 (o mod 8))
        offsets;
      List.iter
        (fun names ->
          let offs =
            List.map (fun v -> List.assoc v placement.Scalar_layout.offsets) names
          in
          let rec consecutive = function
            | a :: (b :: _ as rest) ->
                Alcotest.(check int) "consecutive lanes" 8 (b - a);
                consecutive rest
            | _ -> ()
          in
          consecutive offs;
          (* Vector-aligned start. *)
          Alcotest.(check int) "pack-aligned" 0
            (List.hd offs mod (8 * List.length names)))
        placement.Scalar_layout.placed_superwords

let test_scalar_placement_conflicts () =
  (* Conflicting superwords: the more frequent one wins, the other is
     skipped. *)
  let env = Env.create () in
  List.iter (fun v -> Env.declare_scalar env v Types.F64) [ "a"; "b"; "c" ];
  (* Fake a plan via direct construction is heavy; instead check the
     invariant on the real web program: every variable placed at most
     once. *)
  let prog = Slp_frontend.Parser.parse ~name:"web" scalar_web_src in
  let c =
    Pipeline.compile ~unroll:1 ~scheme:Pipeline.Global ~machine:Machine.intel_dunnington
      prog
  in
  ignore env;
  match c.Pipeline.plan with
  | None -> Alcotest.fail "expected plan"
  | Some plan ->
      let placement = Scalar_layout.place ~env:prog.Program.env plan in
      let names = List.map fst placement.Scalar_layout.offsets in
      Alcotest.(check int) "no variable placed twice"
        (List.length names)
        (List.length (List.sort_uniq String.compare names))

(* -- array replication --------------------------------------------------------- *)

let test_replicable_pack () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  Env.declare_array env "W" Types.F64 [ 64 ];
  Env.declare_array env "M" Types.F64 [ 8; 8 ];
  let written = function "A" -> true | _ -> false in
  let e b coeff k = Operand.Elem (b, [ Affine.make [ ("i", coeff) ] k ]) in
  let ok = Array_layout.replicable_pack ~env ~written ~innermost:(Some "i") in
  Alcotest.(check bool) "strided read-only pack" true (ok [ e "W" 4 0; e "W" 4 2 ]);
  Alcotest.(check bool) "written array rejected" false (ok [ e "A" 4 0; e "A" 4 2 ]);
  Alcotest.(check bool) "mixed strides rejected" false (ok [ e "W" 4 0; e "W" 2 2 ]);
  Alcotest.(check bool) "loop-invariant rejected" false (ok [ e "W" 0 0; e "W" 0 2 ]);
  Alcotest.(check bool) "2-D rejected" false
    (ok
       [
         Operand.Elem ("M", [ Affine.var "i"; Affine.const 0 ]);
         Operand.Elem ("M", [ Affine.var "i"; Affine.const 2 ]);
       ]);
  Alcotest.(check bool) "no innermost loop" false
    (Array_layout.replicable_pack ~env ~written ~innermost:None [ e "W" 4 0; e "W" 4 2 ])

let test_replicable_rank2 () =
  let env = Env.create () in
  Env.declare_array env "L" Types.F64 [ 16; 64 ];
  let written _ = false in
  let e row coeff k =
    Operand.Elem ("L", [ row; Affine.make [ ("i", coeff) ] k ])
  in
  let p_row = Affine.var "p" in
  let ok = Array_layout.replicable_pack ~env ~written ~innermost:(Some "i") in
  Alcotest.(check bool) "rank-2 with lane-invariant row" true
    (ok [ e p_row 4 0; e p_row 4 2 ]);
  Alcotest.(check bool) "row varying across lanes rejected" false
    (ok [ e p_row 4 0; e (Affine.add p_row (Affine.const 1)) 4 2 ]);
  Alcotest.(check bool) "row using innermost index rejected" false
    (ok [ e (Affine.var "i") 4 0; e (Affine.var "i") 4 2 ])

let test_rank2_replication_end_to_end () =
  (* Per-plane strided table: requires the rank-2 replication path. *)
  let src =
    {|
f64 lhs[8][1056];
f64 xv[8][528];
for p = 0 to 8 {
  for t = 0 to 16 {
    for i = 0 to 256 {
      xv[p][2*i]   = xv[p][2*i]   - 0.2 * (lhs[p][4*i]   * xv[p][2*i]);
      xv[p][2*i+1] = xv[p][2*i+1] - 0.2 * (lhs[p][4*i+2] * xv[p][2*i+1]);
    }
  }
}
|}
  in
  let prog = Slp_frontend.Parser.parse ~name:"rank2" src in
  let machine = Machine.intel_dunnington in
  let c = Pipeline.compile ~unroll:1 ~scheme:Pipeline.Global_layout ~machine prog in
  Alcotest.(check bool) "rank-2 replicas created" true (c.Pipeline.replica_count > 0);
  let r = Pipeline.execute c in
  Alcotest.(check bool) "semantics preserved" true r.Pipeline.correct

let test_amortizes () =
  Alcotest.(check bool) "single pass never amortises" false
    (Array_layout.amortizes ~lanes:2 ~repeat:1);
  Alcotest.(check bool) "many repeats amortise" true
    (Array_layout.amortizes ~lanes:2 ~repeat:100)

let test_replication_end_to_end () =
  (* The stencil_layout example kernel: replicas must preserve
     semantics and convert table gathers into vector loads. *)
  let src =
    {|
f64 u[2100];
f64 unew[2100];
f64 w[4300];
for t = 0 to 64 {
  for i = 1 to 1024 {
    unew[i] = w[2*i] * u[i] + w[2*i+1] * (u[i-1] + u[i+1]);
  }
}
|}
  in
  let prog = Slp_frontend.Parser.parse ~name:"stencil" src in
  let machine = Machine.intel_dunnington in
  let c = Pipeline.compile ~scheme:Pipeline.Global_layout ~machine prog in
  Alcotest.(check bool) "replicas created" true (c.Pipeline.replica_count > 0);
  let r = Pipeline.execute c in
  Alcotest.(check bool) "semantics preserved" true r.Pipeline.correct;
  let cg = Pipeline.compile ~scheme:Pipeline.Global ~machine prog in
  let rg = Pipeline.execute ~check:false cg in
  Alcotest.(check bool) "fewer pack loads than Global" true
    (r.Pipeline.counters.Slp_vm.Counters.pack_loads
    < rg.Pipeline.counters.Slp_vm.Counters.pack_loads)

(* -- edge cases ---------------------------------------------------------- *)

let test_empty_plan_layout () =
  (* A strictly sequential chain: nothing groups, so the plan has no
     superwords — scalar placement and replication must both be
     no-ops, not crashes. *)
  let src =
    "f64 A[64];\nf64 s;\nfor i = 0 to 16 {\n  s = A[i] + s;\n  A[i+17] = s * s;\n}"
  in
  let prog = Slp_frontend.Parser.parse ~name:"chain" src in
  let c =
    Pipeline.compile ~unroll:1 ~scheme:Pipeline.Global
      ~machine:Machine.intel_dunnington prog
  in
  match c.Pipeline.plan with
  | None -> Alcotest.fail "expected a plan"
  | Some plan ->
      List.iter
        (fun (bp : Slp_core.Driver.block_plan) ->
          Alcotest.(check int) "no groups" 0
            (List.length bp.Slp_core.Driver.grouping.Slp_core.Grouping.groups))
        plan.Slp_core.Driver.plans;
      Alcotest.(check int) "no scalar superwords" 0
        (List.length (Scalar_layout.collect_scalar_superwords ~env:prog.Program.env plan));
      let placement = Scalar_layout.place ~env:prog.Program.env plan in
      Alcotest.(check int) "no offsets" 0 (List.length placement.Scalar_layout.offsets);
      Alcotest.(check int) "nothing skipped" 0 placement.Scalar_layout.skipped;
      let r = Array_layout.apply plan in
      Alcotest.(check int) "no replicas" 0 (List.length r.Array_layout.replicas);
      Alcotest.(check int) "no setup code" 0 (List.length r.Array_layout.setup)

let test_single_lane_pack_rejected () =
  (* A pack needs at least two lanes; empty and singleton operand
     lists are never replicable. *)
  let env = Env.create () in
  Env.declare_array env "W" Types.F64 [ 64 ];
  let written _ = false in
  let ok = Array_layout.replicable_pack ~env ~written ~innermost:(Some "i") in
  Alcotest.(check bool) "empty pack" false (ok []);
  Alcotest.(check bool) "single lane" false
    (ok [ Operand.Elem ("W", [ Affine.make [ ("i", 4) ] 0 ]) ])

let test_max_lane_pack_mapping () =
  (* Four f32 lanes (the 128-bit maximum): W[4i+k] for k = 0..3 maps
     onto R[4t+k] — stride L = lanes, every position hit exactly once. *)
  let lanes = 4 in
  List.iter
    (fun p ->
      List.iter
        (fun t ->
          Alcotest.(check (option int))
            (Printf.sprintf "t=%d p=%d" t p)
            (Some ((lanes * t) + p))
            (Transform.mapping_1d ~a:4 ~b:p ~lanes ~position:p ((4 * t) + p)))
        [ 0; 1; 5 ];
      (* Elements of other lanes are not this lane's. *)
      Alcotest.(check (option int))
        (Printf.sprintf "p=%d off-lane" p)
        None
        (Transform.mapping_1d ~a:4 ~b:p ~lanes ~position:p (p + 1)))
    [ 0; 1; 2; 3 ]

let test_max_lane_pack_replicable () =
  let env = Env.create () in
  Env.declare_array env "W" Types.F32 [ 256 ];
  let written _ = false in
  let e k = Operand.Elem ("W", [ Affine.make [ ("i", 4) ] k ]) in
  Alcotest.(check bool) "4-lane f32 pack replicable" true
    (Array_layout.replicable_pack ~env ~written ~innermost:(Some "i")
       [ e 0; e 1; e 2; e 3 ])

let test_single_lane_mapping () =
  (* lanes = 1 degenerates to a gather-to-dense copy: d = a·t + b maps
     to t. *)
  List.iter
    (fun t ->
      Alcotest.(check (option int))
        (Printf.sprintf "t=%d" t)
        (Some t)
        (Transform.mapping_1d ~a:3 ~b:2 ~lanes:1 ~position:0 ((3 * t) + 2)))
    [ 0; 1; 7 ]

let test_outer_repeat () =
  let prog =
    Slp_frontend.Parser.parse ~name:"t"
      "f64 A[8];\nfor t = 0 to 6 {\n  for s = 0 to 5 {\n    for i = 0 to 8 {\n      A[i] = 1.0;\n    }\n  }\n}"
  in
  Alcotest.(check int) "product of outer trips" 30
    (Array_layout.outer_repeat_of_block prog "bb1")

let () =
  Alcotest.run "layout"
    [
      ( "transform",
        [
          Alcotest.test_case "figure 14 mapping" `Quick test_mapping_1d_figure14;
          Alcotest.test_case "n-d mapping (eq. 6-8)" `Quick test_mapping_nd;
          Alcotest.test_case "spatial transform (eq. 2-3)" `Quick test_spatial_transform;
        ] );
      ( "scalar",
        [
          Alcotest.test_case "placement invariants" `Quick test_scalar_placement;
          Alcotest.test_case "conflict handling" `Quick test_scalar_placement_conflicts;
        ] );
      ( "array",
        [
          Alcotest.test_case "replicability conditions" `Quick test_replicable_pack;
          Alcotest.test_case "rank-2 replicability" `Quick test_replicable_rank2;
          Alcotest.test_case "rank-2 end to end" `Quick test_rank2_replication_end_to_end;
          Alcotest.test_case "amortisation rule" `Quick test_amortizes;
          Alcotest.test_case "end to end" `Quick test_replication_end_to_end;
          Alcotest.test_case "outer repeat" `Quick test_outer_repeat;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty groups are a layout no-op" `Quick
            test_empty_plan_layout;
          Alcotest.test_case "single-lane packs rejected" `Quick
            test_single_lane_pack_rejected;
          Alcotest.test_case "max-lane (4x f32) mapping" `Quick
            test_max_lane_pack_mapping;
          Alcotest.test_case "max-lane (4x f32) replicable" `Quick
            test_max_lane_pack_replicable;
          Alcotest.test_case "single-lane mapping degenerates" `Quick
            test_single_lane_mapping;
        ] );
    ]
