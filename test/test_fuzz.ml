(* Differential fuzzing: random straight-line loop kernels are compiled
   under every scheme and executed; the vectorized memory state must
   equal scalar execution bit for bit.  Any mismatch is a real compiler
   bug (grouping, scheduling, layout or codegen). *)

open Slp_ir
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine

let array_names = [ "A"; "B"; "C" ]
let scalar_names = [ "s0"; "s1"; "t0"; "t1"; "t2" ]
let array_size = 256

let gen_env () =
  let env = Env.create () in
  List.iter (fun a -> Env.declare_array env a Types.F64 [ array_size ]) array_names;
  List.iter (fun v -> Env.declare_scalar env v Types.F64) scalar_names;
  env

(* Subscripts stay in bounds for i in [2, 120): coeff in {1,2}, offset
   in [-2, 4] gives indices within [0, 244]. *)
let gen_subscript =
  QCheck.Gen.(
    map2
      (fun coeff offset -> Affine.make [ ("i", coeff) ] offset)
      (int_range 1 2) (int_range (-2) 4))

let gen_operand =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun a ix -> Operand.Elem (a, [ ix ])) (oneofl array_names) gen_subscript);
        (2, map (fun v -> Operand.Scalar v) (oneofl scalar_names));
        (1, map (fun f -> Operand.Const (Float.of_int f /. 8.0)) (int_range (-16) 16));
      ])

let gen_expr =
  QCheck.Gen.(
    sized_size (int_bound 2) @@ fix (fun self n ->
        if n = 0 then map (fun op -> Expr.Leaf op) gen_operand
        else
          frequency
            [
              (1, map (fun op -> Expr.Leaf op) gen_operand);
              ( 3,
                map3
                  (fun op l r -> Expr.Bin (op, l, r))
                  (oneofl [ Types.Add; Types.Sub; Types.Mul; Types.Min; Types.Max ])
                  (self (n / 2))
                  (self (n / 2)) );
              ( 1,
                map2
                  (fun op e -> Expr.Un (op, e))
                  (oneofl [ Types.Neg; Types.Abs ])
                  (self (n - 1)) );
            ]))

let gen_lhs =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun a ix -> Operand.Elem (a, [ ix ])) (oneofl array_names) gen_subscript);
        (1, map (fun v -> Operand.Scalar v) (oneofl [ "t0"; "t1"; "t2" ]));
      ])

let gen_program =
  QCheck.Gen.(
    map
      (fun stmts ->
        let env = gen_env () in
        let block =
          Block.make ~label:"fuzz"
            (List.mapi (fun k (lhs, rhs) -> Stmt.make ~id:(k + 1) ~lhs ~rhs) stmts)
        in
        Program.make ~name:"fuzz" ~env
          [
            Program.loop "t" ~lo:(Affine.const 0) ~hi:(Affine.const 3)
              [
                Program.loop "i" ~lo:(Affine.const 2) ~hi:(Affine.const 120)
                  [ Program.Stmts block ];
              ];
          ])
      (list_size (int_range 3 8) (pair gen_lhs gen_expr)))

let arb_program =
  QCheck.make ~print:(fun p -> Program.to_string p) gen_program

let check_scheme ?(register_reuse = true) ?(machine = Machine.intel_dunnington) scheme p =
  match Program.validate p with
  | Error _ -> true (* generator hit a validation corner; skip *)
  | Ok () -> begin
      match Pipeline.compile ~unroll:2 ~register_reuse ~scheme ~machine p with
      | exception Invalid_argument msg -> QCheck.Test.fail_reportf "compile raised: %s" msg
      | compiled -> begin
          match Pipeline.execute compiled with
          | exception Invalid_argument msg ->
              QCheck.Test.fail_reportf "execute raised: %s" msg
          | r -> r.Pipeline.correct
        end
    end

let fuzz ?register_reuse ?machine scheme name =
  QCheck.Test.make ~name ~count:40 arb_program
    (check_scheme ?register_reuse ?machine scheme)

(* -- compiled engine vs reference interpreters --------------------------------

   The closure-compiled engine (Slp_vm.Engine) must be observationally
   identical to the tree-walking interpreters: same memory contents,
   same instruction counters, cycles within 1e-9 (in practice they are
   bit-identical, since the engine replays the exact charge and cache
   access order). *)

module Vm = Slp_vm

let report_divergence what p ci ce =
  QCheck.Test.fail_reportf
    "engine diverges from %s:\n%s\ninterpreter: %s\nengine:      %s" what
    (Program.to_string p)
    (Format.asprintf "%a" Vm.Counters.pp ci)
    (Format.asprintf "%a" Vm.Counters.pp ce)

let engine_scalar_agrees ?(cores = 1) p =
  match Program.validate p with
  | Error _ -> true
  | Ok () ->
      let machine = Machine.intel_dunnington in
      let ri = Vm.Scalar_exec.run_interpreter ~cores ~machine p in
      let re = Vm.Engine.run_scalar ~cores ~machine p in
      let ci = ri.Vm.Scalar_exec.counters and ce = re.Vm.Engine.counters in
      Vm.Memory.same_contents ri.Vm.Scalar_exec.memory re.Vm.Engine.memory
      && Vm.Counters.approx_equal ci ce
      || report_divergence "scalar interpreter" p ci ce

let engine_vector_agrees ?(cores = 1) ?(machine = Machine.intel_dunnington) scheme p
    =
  match Program.validate p with
  | Error _ -> true
  | Ok () -> begin
      match Pipeline.compile ~unroll:2 ~scheme ~machine p with
      | exception Invalid_argument _ -> true (* compile bugs belong to fuzz above *)
      | c -> begin
          match c.Pipeline.vector with
          | None -> true
          | Some vprog ->
              let mk () =
                let m =
                  Vm.Memory.create ~scalar_layout:c.Pipeline.scalar_offsets
                    ~env:vprog.Vm.Visa.env ()
                in
                Vm.Memory.init_arrays m ~seed:42;
                m
              in
              let ri =
                Vm.Vector_exec.run_interpreter ~cores ~memory:(mk ()) ~machine vprog
              in
              let re = Vm.Engine.run_vector ~cores ~memory:(mk ()) ~machine vprog in
              let ci = ri.Vm.Vector_exec.counters and ce = re.Vm.Engine.counters in
              Vm.Memory.same_contents ri.Vm.Vector_exec.memory re.Vm.Engine.memory
              && Vm.Counters.approx_equal ci ce
              || report_divergence "vector interpreter" p ci ce
        end
    end

let engine_fuzz name check = QCheck.Test.make ~name ~count:40 arb_program check

(* Every Suite.all kernel, scalar and vectorized, single- and multicore:
   engine and interpreter must agree exactly. *)
let counters_testable =
  Alcotest.testable Vm.Counters.pp Vm.Counters.approx_equal

let test_engine_on_suite () =
  let machine = Machine.intel_dunnington in
  let module Suite = Slp_benchmarks.Suite in
  List.iter
    (fun b ->
      let name = b.Suite.name in
      let prog = Suite.program b in
      List.iter
        (fun cores ->
          let tag = Printf.sprintf "%s scalar %dc" name cores in
          let ri = Vm.Scalar_exec.run_interpreter ~cores ~machine prog in
          let re = Vm.Engine.run_scalar ~cores ~machine prog in
          Alcotest.(check bool)
            (tag ^ " memory") true
            (Vm.Memory.same_contents ri.Vm.Scalar_exec.memory re.Vm.Engine.memory);
          Alcotest.check counters_testable (tag ^ " counters")
            ri.Vm.Scalar_exec.counters re.Vm.Engine.counters)
        [ 1; 4 ];
      List.iter
        (fun (sname, scheme) ->
          let c = Pipeline.compile ~unroll:b.Suite.unroll ~scheme ~machine prog in
          match c.Pipeline.vector with
          | None -> ()
          | Some vprog ->
              let mk () =
                let m =
                  Vm.Memory.create ~scalar_layout:c.Pipeline.scalar_offsets
                    ~env:vprog.Vm.Visa.env ()
                in
                Vm.Memory.init_arrays m ~seed:42;
                m
              in
              List.iter
                (fun cores ->
                  let tag = Printf.sprintf "%s %s %dc" name sname cores in
                  let ri =
                    Vm.Vector_exec.run_interpreter ~cores ~memory:(mk ()) ~machine
                      vprog
                  in
                  let re =
                    Vm.Engine.run_vector ~cores ~memory:(mk ()) ~machine vprog
                  in
                  Alcotest.(check bool)
                    (tag ^ " memory") true
                    (Vm.Memory.same_contents ri.Vm.Vector_exec.memory
                       re.Vm.Engine.memory);
                  Alcotest.check counters_testable (tag ^ " counters")
                    ri.Vm.Vector_exec.counters re.Vm.Engine.counters)
                [ 1; 4 ])
        [ ("global", Pipeline.Global); ("layout", Pipeline.Global_layout) ])
    Suite.all

(* Printing a program and re-parsing it must yield the same scalar
   semantics (the printer emits the input language). *)
let roundtrip =
  QCheck.Test.make ~name:"pp/parse roundtrip preserves semantics" ~count:60
    arb_program (fun p ->
      match Program.validate p with
      | Error _ -> true
      | Ok () -> begin
          let src = Program.to_source p in
          match Slp_frontend.Parser.parse ~name:"roundtrip" src with
          | exception Slp_frontend.Parser.Error (msg, l, c) ->
              QCheck.Test.fail_reportf "reparse failed at %d:%d: %s\n%s" l c msg src
          | reparsed ->
              let machine = Machine.intel_dunnington in
              let r1 = Slp_vm.Scalar_exec.run ~machine p in
              let r2 = Slp_vm.Scalar_exec.run ~machine reparsed in
              Slp_vm.Memory.same_contents r1.Slp_vm.Scalar_exec.memory
                r2.Slp_vm.Scalar_exec.memory
        end)

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        List.map Seeded.to_alcotest
          [
            fuzz Pipeline.Native "native preserves semantics";
            fuzz Pipeline.Slp "slp preserves semantics";
            fuzz Pipeline.Global "global preserves semantics";
            fuzz Pipeline.Global_layout "global+layout preserves semantics";
            fuzz ~register_reuse:false Pipeline.Global
              "global without register reuse preserves semantics";
            fuzz
              ~machine:{ Machine.intel_dunnington with Machine.vector_registers = 2 }
              Pipeline.Global
              "global on a 2-register machine (spill-heavy) preserves semantics";
            roundtrip;
          ] );
      ( "engine vs interpreter",
        List.map Seeded.to_alcotest
          [
            engine_fuzz "scalar engine matches interpreter" (fun p ->
                engine_scalar_agrees p);
            engine_fuzz "scalar engine matches interpreter on 4 cores" (fun p ->
                engine_scalar_agrees ~cores:4 p);
            engine_fuzz "global engine matches interpreter" (fun p ->
                engine_vector_agrees Pipeline.Global p);
            engine_fuzz "global engine matches interpreter on 4 cores" (fun p ->
                engine_vector_agrees ~cores:4 Pipeline.Global p);
            engine_fuzz "layout engine matches interpreter (setup, scalar packs)"
              (fun p -> engine_vector_agrees Pipeline.Global_layout p);
            engine_fuzz "spill-heavy engine matches interpreter" (fun p ->
                engine_vector_agrees
                  ~machine:
                    { Machine.intel_dunnington with Machine.vector_registers = 2 }
                  Pipeline.Global p);
          ]
        @ [
            Alcotest.test_case "engine matches interpreter on every suite kernel"
              `Slow test_engine_on_suite;
          ] );
    ]
