(* Lexer and parser tests for the kernel language. *)

open Slp_ir
module Lexer = Slp_frontend.Lexer
module Parser = Slp_frontend.Parser
module Token = Slp_frontend.Token

(* -- lexer --------------------------------------------------------------- *)

let tokens src = List.map (fun t -> t.Token.token) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 9
    (List.length (tokens "x = 1 + 2.5 * y;"));
  (match tokens "for i = 0 to 10 step 2" with
  | [ Token.Kw_for; Token.Ident "i"; Token.Assign; Token.Int 0; Token.Kw_to;
      Token.Int 10; Token.Kw_step; Token.Int 2; Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "keyword stream mismatch");
  match tokens "f32 A[8];" with
  | [ Token.Kw_type Types.F32; Token.Ident "A"; Token.Lbracket; Token.Int 8;
      Token.Rbracket; Token.Semicolon; Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "declaration stream mismatch"

let test_lexer_comments () =
  Alcotest.(check int) "hash comment" 1 (List.length (tokens "# nothing here"));
  Alcotest.(check int) "slash comment" 2 (List.length (tokens "x // trailing"))

let test_lexer_floats () =
  (match tokens "1.5 2e3 7.25e-1" with
  | [ Token.Float a; Token.Float b; Token.Float c; Token.Eof ] ->
      Alcotest.(check (float 1e-9)) "1.5" 1.5 a;
      Alcotest.(check (float 1e-9)) "2e3" 2000.0 b;
      Alcotest.(check (float 1e-9)) "7.25e-1" 0.725 c
  | _ -> Alcotest.fail "float stream mismatch");
  match Lexer.tokenize "1e" with
  | exception Lexer.Error (_, 1, _) -> ()
  | _ -> Alcotest.fail "malformed exponent accepted"

let test_lexer_positions () =
  match Lexer.tokenize "x\n  @" with
  | exception Lexer.Error (_, 2, 3) -> ()
  | exception Lexer.Error (_, l, c) -> Alcotest.failf "wrong position %d:%d" l c
  | _ -> Alcotest.fail "bad character accepted"

(* -- parser --------------------------------------------------------------- *)

let parse src = Parser.parse ~name:"t" src

let test_parse_structure () =
  let p =
    parse
      {|
f64 A[8];
f64 x;
x = 1.0;
for i = 0 to 8 {
  A[i] = x * 2.0;
}
|}
  in
  Alcotest.(check int) "two blocks" 2 (List.length (Program.blocks p));
  Alcotest.(check int) "loop depth" 1 (Program.max_loop_depth p);
  Alcotest.(check int) "three statements" 2 (Program.stmt_count p)

let test_parse_precedence () =
  let p = parse "f64 x;\nf64 y;\nx = 1.0 + 2.0 * y - 3.0;" in
  match (List.hd (Program.blocks p)).Block.stmts with
  | [ s ] ->
      (* (1 + (2*y)) - 3 *)
      Alcotest.(check string) "precedence" "((1 + (2 * y)) - 3)"
        (Expr.to_string s.Stmt.rhs)
  | _ -> Alcotest.fail "expected one statement"

let test_parse_affine_subscripts () =
  let p = parse "f64 A[64];\nfor i = 0 to 8 {\n  A[4*i+3] = 1.0;\n}" in
  match Program.blocks p with
  | [ b ] -> begin
      match (List.hd b.Block.stmts).Stmt.lhs with
      | Operand.Elem ("A", [ ix ]) ->
          Alcotest.(check int) "coeff" 4 (Affine.coeff ix "i");
          Alcotest.(check int) "const" 3 (Affine.const_part ix)
      | _ -> Alcotest.fail "expected array store"
    end
  | _ -> Alcotest.fail "expected one block"

let test_parse_unary_and_calls () =
  let p = parse "f64 x;\nf64 y;\nx = -y;\ny = sqrt(x);\nx = min(x, abs(y));" in
  Alcotest.(check int) "three statements" 3 (Program.stmt_count p)

let expect_error src =
  match parse src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.failf "accepted invalid program: %s" src

let test_parse_errors () =
  expect_error "f64 x;\nx = ;";
  expect_error "f64 A[4];\nA[i] = 1.0;" (* unbound subscript *);
  expect_error "f64 x;\ny = 1.0;" (* undeclared *);
  expect_error "f64 A[4];\nA[0][0] = 1.0;" (* rank mismatch *);
  expect_error "f64 x;\nfor i = 0 to 4 step 0 { x = 1.0; }" (* zero step *);
  expect_error "f64 A[4];\nfor i = 0 to 4 { A[i*i] = 1.0; }" (* non-linear *);
  expect_error "f32 x;\nf64 y;\nx = y;" (* mixed types *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* Rejecting is not enough: the message must name the offending
   construct and carry a plausible position, or users can't act on it. *)
let expect_error_matching src fragment =
  match parse src with
  | exception Parser.Error (msg, line, col) ->
      if not (contains msg fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment;
      Alcotest.(check bool) "position is 1-based" true (line >= 1 && col >= 1)
  | _ -> Alcotest.failf "accepted invalid program: %s" src

let test_error_messages () =
  (* Unterminated loop: scanning the body runs off the end. *)
  expect_error_matching "f64 x;\nfor i = 0 to 4 {\n  x = 1.0;\n" "end of input";
  (* Unterminated subscript: the missing ']' is called out. *)
  expect_error_matching "f64 A[8];\nfor i = 0 to 8 { A[i = 1.0; }" "']'";
  (* Bad subscripts name what made them non-affine. *)
  expect_error_matching "f64 A[8];\nfor i = 0 to 8 { A[i*i] = 1.0; }" "non-linear";
  expect_error_matching "f64 A[8];\nf64 B[8];\nfor i = 0 to 8 { A[B[i]] = 1.0; }"
    "affine context";
  expect_error_matching "f64 A[8];\nfor i = 0 to 8 { A[i/2] = 1.0; }" "non-affine"

(* -- error recovery ------------------------------------------------------- *)

let test_recovery_multiple_diagnostics () =
  (* Two broken statements, one good one: both errors reported, in
     source order, each with a usable 1-based position. *)
  let src = "f64 x;\nx = ;\nx = 1.0 +;\nx = 2.0;" in
  match Parser.parse_all ~name:"t" src with
  | Ok _ -> Alcotest.failf "accepted invalid program: %s" src
  | Error ds ->
      Alcotest.(check bool) "at least two diagnostics" true (List.length ds >= 2);
      List.iter
        (fun d ->
          Alcotest.(check bool) "1-based position" true
            (d.Parser.line >= 1 && d.Parser.col >= 1))
        ds;
      let lines = List.map (fun d -> d.Parser.line) ds in
      Alcotest.(check (list int)) "source order" (List.sort compare lines) lines

let test_recovery_across_loops () =
  (* An error inside a loop body must not swallow a later top-level
     error, and vice versa. *)
  let src =
    "f64 A[8];\nf64 x;\nfor i = 0 to 8 {\n  A[i] = ;\n}\nx = ;\nx = 1.0;"
  in
  match Parser.parse_all ~name:"t" src with
  | Ok _ -> Alcotest.fail "accepted invalid program"
  | Error ds ->
      Alcotest.(check bool) "both errors found" true (List.length ds >= 2)

let test_recovery_max_errors () =
  let src = "f64 x;\nx = ;\nx = ;\nx = ;\nx = ;" in
  match Parser.parse_all ~max_errors:2 ~name:"t" src with
  | Ok _ -> Alcotest.fail "accepted invalid program"
  | Error ds -> Alcotest.(check int) "capped at max_errors" 2 (List.length ds)

let test_recovery_first_diag_matches_parse () =
  (* parse is parse_all cut to one error: same message, same spot. *)
  let src = "f64 x;\nfor i = 0 to 4 {\n  x = ;\n}" in
  let em, el, ec =
    match parse src with
    | exception Parser.Error (m, l, c) -> (m, l, c)
    | _ -> Alcotest.fail "accepted invalid program"
  in
  match Parser.parse_all ~name:"t" src with
  | Ok _ -> Alcotest.fail "accepted invalid program"
  | Error [] -> Alcotest.fail "no diagnostics"
  | Error (d :: _) ->
      Alcotest.(check string) "message" em d.Parser.message;
      Alcotest.(check int) "line" el d.Parser.line;
      Alcotest.(check int) "col" ec d.Parser.col

let test_parse_all_valid () =
  let src = "f64 A[8];\nfor i = 0 to 8 {\n  A[i] = 2.0;\n}" in
  match Parser.parse_all ~name:"t" src with
  | Error ds ->
      Alcotest.failf "rejected valid program: %s"
        (String.concat "; " (List.map (fun d -> d.Parser.message) ds))
  | Ok p ->
      let q = parse src in
      Alcotest.(check int) "same statements" (Program.stmt_count q)
        (Program.stmt_count p)

let test_parse_negative_offsets () =
  let p = parse "f64 A[64];\nfor i = 1 to 8 {\n  A[2*i-2] = 1.0;\n}" in
  match Program.blocks p with
  | [ b ] -> begin
      match (List.hd b.Block.stmts).Stmt.lhs with
      | Operand.Elem ("A", [ ix ]) ->
          Alcotest.(check int) "negative const" (-2) (Affine.const_part ix)
      | _ -> Alcotest.fail "expected array store"
    end
  | _ -> Alcotest.fail "expected one block"

let test_parse_nested_loops () =
  let p =
    parse
      "f64 M[4][8];\nfor r = 0 to 4 {\n  for c = 0 to 8 {\n    M[r][c] = 1.0;\n  }\n}"
  in
  Alcotest.(check int) "depth 2" 2 (Program.max_loop_depth p);
  match Program.validate p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_parse_roundtrip_semantics () =
  (* Parsing the printed program must execute identically. *)
  let src =
    "f64 A[32];\nf64 B[32];\nfor i = 1 to 31 {\n  B[i] = 0.5 * A[i-1] + 0.5 * A[i];\n}"
  in
  let p = parse src in
  let machine = Slp_machine.Machine.intel_dunnington in
  let r1 = Slp_vm.Scalar_exec.run ~machine p in
  let r2 = Slp_vm.Scalar_exec.run ~machine p in
  Alcotest.(check bool) "deterministic" true
    (Slp_vm.Memory.same_contents r1.Slp_vm.Scalar_exec.memory
       r2.Slp_vm.Scalar_exec.memory)

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "floats" `Quick test_lexer_floats;
          Alcotest.test_case "error positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "affine subscripts" `Quick test_parse_affine_subscripts;
          Alcotest.test_case "unary and calls" `Quick test_parse_unary_and_calls;
          Alcotest.test_case "rejects invalid programs" `Quick test_parse_errors;
          Alcotest.test_case "useful error messages" `Quick test_error_messages;
          Alcotest.test_case "recovery: multiple diagnostics" `Quick
            test_recovery_multiple_diagnostics;
          Alcotest.test_case "recovery: across loops" `Quick
            test_recovery_across_loops;
          Alcotest.test_case "recovery: max-errors cap" `Quick
            test_recovery_max_errors;
          Alcotest.test_case "recovery: first diagnostic matches parse" `Quick
            test_recovery_first_diag_matches_parse;
          Alcotest.test_case "parse_all accepts valid programs" `Quick
            test_parse_all_valid;
          Alcotest.test_case "negative offsets" `Quick test_parse_negative_offsets;
          Alcotest.test_case "nested loops" `Quick test_parse_nested_loops;
          Alcotest.test_case "deterministic execution" `Quick test_parse_roundtrip_semantics;
        ] );
    ]
