(* Tests for the simulator substrate: memory, cache, counters, the
   vector ISA interpreters and multicore partitioning. *)

open Slp_ir
module Memory = Slp_vm.Memory
module Cache = Slp_vm.Cache
module Counters = Slp_vm.Counters
module Visa = Slp_vm.Visa
module Scalar_exec = Slp_vm.Scalar_exec
module Vector_exec = Slp_vm.Vector_exec
module Machine = Slp_machine.Machine

let machine = Machine.intel_dunnington

(* -- memory ----------------------------------------------------------- *)

let env_with_arrays () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 8 ];
  Env.declare_array env "M" Types.F32 [ 3; 4 ];
  Env.declare_scalar env "x" Types.F64;
  Env.declare_scalar env "y" Types.F64;
  env

let test_memory_layout () =
  let env = env_with_arrays () in
  let mem = Memory.create ~env () in
  Alcotest.(check int) "A base 64-aligned" 0 (Memory.array_base mem "A" mod 64);
  Alcotest.(check int) "elem size f64" 8 (Memory.elem_bytes mem "A");
  Alcotest.(check int) "elem size f32" 4 (Memory.elem_bytes mem "M");
  Alcotest.(check int) "row-major flattening" 6 (Memory.flat_index mem "M" [ 1; 2 ]);
  (* Out-of-bounds accesses raise the structured VM trap carrying the
     array name and offending index. *)
  (match Memory.flat_index mem "M" [ 0; 4 ] with
  | _ -> Alcotest.fail "expected a trap"
  | exception Slp_vm.Trap.Trap info ->
      Alcotest.(check string) "trap array" "M" info.Slp_vm.Trap.array;
      (match info.Slp_vm.Trap.kind with
      | Slp_vm.Trap.Out_of_bounds { index; bound } ->
          Alcotest.(check int) "trap index" 4 index;
          Alcotest.(check int) "trap bound" 4 bound
      | _ -> Alcotest.fail "expected Out_of_bounds");
      Alcotest.(check bool) "trap unattributed outside execution" true
        (info.Slp_vm.Trap.stmt = None))

let test_memory_scalar_layout () =
  let env = env_with_arrays () in
  let mem = Memory.create ~scalar_layout:[ ("y", 0); ("x", 8) ] ~env () in
  Alcotest.(check int) "layout respected" 8
    (Memory.scalar_addr mem "x" - Memory.scalar_addr mem "y");
  Alcotest.check_raises "bad offset rejected"
    (Invalid_argument "Memory.create: scalar offsets must be non-negative multiples of 8")
    (fun () -> ignore (Memory.create ~scalar_layout:[ ("x", 3) ] ~env ()))

let test_memory_values () =
  let env = env_with_arrays () in
  let mem = Memory.create ~env () in
  Memory.store mem "A" 3 1.5;
  Alcotest.(check (float 0.0)) "store/load" 1.5 (Memory.load mem "A" 3);
  Alcotest.(check (float 0.0)) "unset scalar reads zero" 0.0 (Memory.scalar mem "x");
  Memory.set_scalar mem "x" 2.5;
  Alcotest.(check (float 0.0)) "scalar set" 2.5 (Memory.scalar mem "x");
  let mem2 = Memory.create ~env () in
  Memory.init_arrays mem ~seed:9;
  Memory.init_arrays mem2 ~seed:9;
  Alcotest.(check bool) "same seed same contents" true (Memory.same_contents mem mem2);
  Memory.store mem2 "A" 0 99.0;
  Alcotest.(check bool) "difference detected" false (Memory.same_contents mem mem2)

(* -- cache ------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let cache = Cache.create machine in
  let miss = Cache.access cache ~addr:0 ~bytes:8 ~write:false in
  let hit = Cache.access cache ~addr:8 ~bytes:8 ~write:false in
  Alcotest.(check bool) "first access misses to memory" true (miss > 100.0);
  Alcotest.(check (float 0.0)) "same line hits L1" 3.0 hit;
  Alcotest.(check int) "one miss recorded" 1 (Cache.misses cache);
  let h1, _, _ = Cache.hits cache in
  Alcotest.(check int) "one L1 hit" 1 h1

let test_cache_associativity_eviction () =
  let cache = Cache.create machine in
  (* L1: 32KB, 8-way, 64B lines -> 64 sets; addresses 64*64 apart share
     a set.  Touch 9 distinct lines of one set: the first is evicted
     from L1 (but served by L2 afterwards). *)
  let stride = 64 * 64 in
  for k = 0 to 8 do
    ignore (Cache.access cache ~addr:(k * stride) ~bytes:8 ~write:false)
  done;
  let again = Cache.access cache ~addr:0 ~bytes:8 ~write:false in
  Alcotest.(check bool) "evicted from L1, hits L2" true
    (again > 3.0 && again < float_of_int machine.Machine.memory_latency)

let test_cache_straddling () =
  let cache = Cache.create machine in
  (* A 16-byte access starting 8 bytes before a line boundary touches
     two lines. *)
  let cycles = Cache.access cache ~addr:56 ~bytes:16 ~write:false in
  Alcotest.(check int) "two accesses" 2 (Cache.accesses cache);
  Alcotest.(check bool) "two line fills" true (cycles > 200.0)

let test_cache_contention () =
  let c1 = Cache.create machine in
  let c2 = Cache.create ~contention:1.5 machine in
  let a = Cache.access c1 ~addr:0 ~bytes:8 ~write:false in
  let b = Cache.access c2 ~addr:0 ~bytes:8 ~write:false in
  Alcotest.(check bool) "contention slows misses" true (b > a);
  let a_hit = Cache.access c1 ~addr:0 ~bytes:8 ~write:false in
  let b_hit = Cache.access c2 ~addr:0 ~bytes:8 ~write:false in
  Alcotest.(check bool) "contention also taxes hits (bus)" true (b_hit > a_hit)

(* -- counters ------------------------------------------------------------ *)

let test_counters () =
  let c = Counters.create () in
  c.Counters.vector_ops <- 3;
  c.Counters.inserts <- 2;
  c.Counters.pack_loads <- 1;
  c.Counters.scalar_loads <- 4;
  Alcotest.(check int) "dynamic excludes packing" 7 (Counters.dynamic_instructions c);
  Alcotest.(check int) "packing counted separately" 3 (Counters.packing_instructions c);
  Alcotest.(check int) "total" 10 (Counters.total_instructions c);
  let d = Counters.create () in
  d.Counters.vector_ops <- 1;
  Counters.merge_into ~into:c d;
  Alcotest.(check int) "merge" 4 c.Counters.vector_ops

(* -- scalar executor -------------------------------------------------------- *)

let test_scalar_exec_values () =
  let prog =
    Slp_frontend.Parser.parse ~name:"t"
      "f64 A[8];\nf64 B[8];\nfor i = 0 to 8 {\n  B[i] = A[i] * 2.0 + 1.0;\n}"
  in
  let r = Scalar_exec.run ~machine prog in
  let mem = r.Scalar_exec.memory in
  for i = 0 to 7 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "B[%d]" i)
      ((Memory.load mem "A" i *. 2.0) +. 1.0)
      (Memory.load mem "B" i)
  done;
  Alcotest.(check int) "ops counted" 16 r.Scalar_exec.counters.Counters.scalar_ops;
  Alcotest.(check int) "loads counted" 8 r.Scalar_exec.counters.Counters.scalar_loads;
  Alcotest.(check int) "stores counted" 8 r.Scalar_exec.counters.Counters.scalar_stores

let test_scalar_exec_index_as_value () =
  (* A loop index used as an i64 value. *)
  let env = Env.create () in
  Env.declare_array env "A" Types.I64 [ 8 ];
  let prog =
    Program.make ~name:"iota" ~env
      [
        Program.loop "i" ~lo:(Affine.const 0) ~hi:(Affine.const 8)
          [
            Program.Stmts
              (Block.of_rhs
                 [ (Operand.Elem ("A", [ Affine.var "i" ]), Expr.Leaf (Operand.Scalar "i")) ]);
          ];
      ]
  in
  let r = Scalar_exec.run ~machine prog in
  Alcotest.(check (float 0.0)) "A[5] = 5" 5.0 (Memory.load r.Scalar_exec.memory "A" 5)

(* -- vector executor --------------------------------------------------------- *)

let test_vector_isa_roundtrip () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 8 ];
  Env.declare_array env "B" Types.F64 [ 8 ];
  Env.declare_scalar env "s" Types.F64;
  let elem b k = Operand.Elem (b, [ Affine.const k ]) in
  let prog =
    {
      Visa.name = "isa";
      env;
      setup = [];
      body =
        [
          Visa.Block
            [
              (* v0 = A[0..1]; v1 = broadcast 10; v2 = v0 + v1 *)
              Visa.Vload { dst = 0; elems = [ elem "A" 0; elem "A" 1 ] };
              Visa.Vbroadcast { dst = 1; src = Visa.Imm 10.0; lanes = 2 };
              Visa.Vbin { dst = 2; op = Types.Add; a = 0; b = 1 };
              Visa.Vstore { src = 2; elems = [ elem "B" 0; elem "B" 1 ] };
              (* permute and unpack *)
              Visa.Vpermute { dst = 3; src = 2; sel = [| 1; 0 |] };
              Visa.Vunpack
                { src = 3; dsts = [ Some (Visa.To_reg "s"); Some (Visa.To_mem (elem "B" 2)) ] };
              (* two-source shuffle *)
              Visa.Vshuffle2 { dst = 4; a = 0; b = 2; sel = [| (0, 1); (1, 0) |] };
              Visa.Vstore { src = 4; elems = [ elem "B" 3; elem "B" 4 ] };
              (* gather mixing memory, register and immediate *)
              Visa.Vgather { dst = 5; srcs = [ Visa.Mem (elem "A" 3); Visa.Reg "s" ] };
              Visa.Vstore { src = 5; elems = [ elem "B" 5; elem "B" 6 ] };
            ];
        ];
    }
  in
  let memory = Memory.create ~env () in
  Array.iteri (fun i _ -> Memory.store memory "A" i (float_of_int i)) (Array.make 8 ());
  let r = Vector_exec.run ~memory ~machine prog in
  let b k = Memory.load r.Vector_exec.memory "B" k in
  Alcotest.(check (float 0.0)) "lane 0" 10.0 (b 0);
  Alcotest.(check (float 0.0)) "lane 1" 11.0 (b 1);
  Alcotest.(check (float 0.0)) "unpack to memory (permuted lane)" 10.0 (b 2);
  Alcotest.(check (float 0.0)) "shuffle lane 0 = a.(1)" 1.0 (b 3);
  Alcotest.(check (float 0.0)) "shuffle lane 1 = b.(0)" 10.0 (b 4);
  Alcotest.(check (float 0.0)) "gather mem lane" 3.0 (b 5);
  Alcotest.(check (float 0.0)) "gather reg lane (s = permuted lane 0 = 11)" 11.0 (b 6);
  (* Counter sanity. *)
  let c = r.Vector_exec.counters in
  Alcotest.(check int) "vector loads" 1 c.Counters.vector_loads;
  Alcotest.(check int) "vector stores" 3 c.Counters.vector_stores;
  Alcotest.(check int) "permutes incl. shuffle2" 2 c.Counters.permutes;
  Alcotest.(check int) "broadcasts" 1 c.Counters.broadcasts;
  Alcotest.(check int) "pack loads" 1 c.Counters.pack_loads;
  Alcotest.(check int) "extracts" 2 c.Counters.extracts

let test_vector_reads_before_write_fail () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 4 ];
  let prog =
    {
      Visa.name = "bad";
      env;
      setup = [];
      body =
        [ Visa.Block [ Visa.Vstore { src = 7; elems = [ Operand.Elem ("A", [ Affine.const 0 ]) ] } ] ];
    }
  in
  Alcotest.check_raises "uninitialised vreg"
    (Invalid_argument "Vector_exec: v7 read before write") (fun () ->
      ignore (Vector_exec.run ~machine prog))

(* -- multicore ----------------------------------------------------------------- *)

let test_chunk_ranges () =
  Alcotest.(check (list (pair int int)))
    "even split"
    [ (0, 8); (8, 16) ]
    (Scalar_exec.chunk_ranges ~lo:0 ~hi:16 ~step:1 ~cores:2);
  Alcotest.(check (list (pair int int)))
    "uneven split favours early cores"
    [ (0, 6); (6, 11); (11, 16) ]
    (Scalar_exec.chunk_ranges ~lo:0 ~hi:16 ~step:1 ~cores:3);
  (* Step alignment. *)
  List.iter
    (fun (lo, _) ->
      Alcotest.(check int) "chunk start is step aligned" 0 ((lo - 1) mod 3))
    (Scalar_exec.chunk_ranges ~lo:1 ~hi:28 ~step:3 ~cores:4)

(* Property: for any loop bounds, [chunk_ranges] yields exactly
   [cores] step-aligned chunks whose in-order traversal visits exactly
   the indices of the whole loop, each once (disjointness, ordering
   and exact cover in one comparison). *)
let chunk_ranges_prop =
  QCheck.Test.make ~name:"chunk_ranges partitions [lo,hi) exactly" ~count:500
    QCheck.(
      quad (int_range (-50) 50) (int_range 0 300) (int_range 1 9) (int_range 1 16))
    (fun (lo, span, step, cores) ->
      let hi = lo + span in
      let ranges = Scalar_exec.chunk_ranges ~lo ~hi ~step ~cores in
      let visit (clo, chi) =
        let acc = ref [] in
        let i = ref clo in
        while !i < chi do
          acc := !i :: !acc;
          i := !i + step
        done;
        List.rev !acc
      in
      let whole = visit (lo, hi) in
      let chunked = List.concat_map visit ranges in
      if List.length ranges <> cores then
        QCheck.Test.fail_reportf "expected %d chunks, got %d" cores
          (List.length ranges);
      List.iter
        (fun (clo, _) ->
          if (clo - lo) mod step <> 0 then
            QCheck.Test.fail_reportf "chunk start %d not step-aligned (lo=%d step=%d)"
              clo lo step)
        ranges;
      if chunked <> whole then
        QCheck.Test.fail_reportf
          "chunked traversal differs (lo=%d hi=%d step=%d cores=%d): %d vs %d indices"
          lo hi step cores (List.length chunked) (List.length whole);
      true)

(* The Figure 21 experiment on real domains must be indistinguishable
   from the sequential simulation: same NAS kernels, 1/2/4/8 simulated
   cores, both machine models, comparing every counter bit-for-bit and
   the memory image bitwise.  The pool spawns three worker domains
   explicitly so the test exercises genuine cross-domain execution
   even on a single-processor host. *)
let counters_biteq (a : Counters.t) (b : Counters.t) =
  a.Counters.scalar_ops = b.Counters.scalar_ops
  && a.Counters.vector_ops = b.Counters.vector_ops
  && a.Counters.scalar_loads = b.Counters.scalar_loads
  && a.Counters.scalar_stores = b.Counters.scalar_stores
  && a.Counters.vector_loads = b.Counters.vector_loads
  && a.Counters.vector_stores = b.Counters.vector_stores
  && a.Counters.pack_loads = b.Counters.pack_loads
  && a.Counters.pack_stores = b.Counters.pack_stores
  && a.Counters.inserts = b.Counters.inserts
  && a.Counters.extracts = b.Counters.extracts
  && a.Counters.permutes = b.Counters.permutes
  && a.Counters.broadcasts = b.Counters.broadcasts
  && Int64.equal (Int64.bits_of_float a.Counters.cycles)
       (Int64.bits_of_float b.Counters.cycles)
  && Int64.equal (Int64.bits_of_float a.Counters.setup_cycles)
       (Int64.bits_of_float b.Counters.setup_cycles)

let memory_biteq env a b =
  List.for_all
    (fun (name, _) ->
      let va = Memory.array_values a name and vb = Memory.array_values b name in
      Float.Array.length va = Float.Array.length vb
      && begin
           let ok = ref true in
           Float.Array.iteri
             (fun i x ->
               if
                 not
                   (Int64.equal (Int64.bits_of_float x)
                      (Int64.bits_of_float (Float.Array.get vb i)))
               then ok := false)
             va;
           !ok
         end)
    (Env.arrays env)

let test_fig21_domains_bitidentical () =
  let module Pipeline = Slp_pipeline.Pipeline in
  let module Suite = Slp_benchmarks.Suite in
  let pool = Slp_vm.Dpool.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Slp_vm.Dpool.shutdown pool)
    (fun () ->
      List.iter
        (fun (mach : Machine.t) ->
          List.iter
            (fun (b : Suite.t) ->
              let c =
                Pipeline.compile ~unroll:b.Suite.unroll ~verify:false
                  ~scheme:Pipeline.Global ~machine:mach (Suite.program b)
              in
              let vprog =
                match c.Pipeline.vector with
                | Some v -> v
                | None -> Alcotest.failf "%s: no vector program" b.Suite.name
              in
              let mem env =
                let m =
                  Memory.create ~scalar_layout:c.Pipeline.scalar_offsets ~env ()
                in
                Memory.init_arrays m ~seed:42;
                m
              in
              List.iter
                (fun cores ->
                  let ctx what =
                    Printf.sprintf "%s %s %dc %s" mach.Machine.name b.Suite.name
                      cores what
                  in
                  (* Vectorized program. *)
                  let seq =
                    Vector_exec.run ~cores ~seed:42 ~memory:(mem vprog.Visa.env)
                      ~machine:mach vprog
                  in
                  let par =
                    Vector_exec.run ~cores ~seed:42 ~memory:(mem vprog.Visa.env)
                      ~pool ~machine:mach vprog
                  in
                  Alcotest.(check bool)
                    (ctx "vector counters bit-identical")
                    true
                    (counters_biteq seq.Vector_exec.counters par.Vector_exec.counters);
                  Alcotest.(check bool)
                    (ctx "vector memory bit-identical")
                    true
                    (memory_biteq vprog.Visa.env seq.Vector_exec.memory
                       par.Vector_exec.memory);
                  (* Scalar reference program. *)
                  let sseq =
                    Scalar_exec.run ~cores ~seed:42 ~machine:mach
                      c.Pipeline.reference
                  in
                  let spar =
                    Scalar_exec.run ~cores ~seed:42 ~pool ~machine:mach
                      c.Pipeline.reference
                  in
                  Alcotest.(check bool)
                    (ctx "scalar counters bit-identical")
                    true
                    (counters_biteq sseq.Scalar_exec.counters
                       spar.Scalar_exec.counters);
                  Alcotest.(check bool)
                    (ctx "scalar memory bit-identical")
                    true
                    (memory_biteq c.Pipeline.reference.Program.env
                       sseq.Scalar_exec.memory spar.Scalar_exec.memory))
                [ 1; 2; 4; 8 ])
            Suite.nas)
        [ Machine.intel_dunnington; Machine.amd_phenom_ii ])

let test_multicore_work_conservation () =
  let prog =
    Slp_frontend.Parser.parse ~name:"mc"
      "f64 A[64];\nf64 B[64];\nfor i = 0 to 64 {\n  B[i] = A[i] * 2.0;\n}"
  in
  let r1 = Scalar_exec.run ~cores:1 ~machine prog in
  let r4 = Scalar_exec.run ~cores:4 ~machine prog in
  Alcotest.(check int) "same total work"
    (Counters.total_instructions r1.Scalar_exec.counters)
    (Counters.total_instructions r4.Scalar_exec.counters);
  Alcotest.(check bool) "parallel time is shorter" true
    (r4.Scalar_exec.counters.Counters.cycles < r1.Scalar_exec.counters.Counters.cycles);
  Alcotest.(check bool) "results identical" true
    (Memory.same_contents r1.Scalar_exec.memory r4.Scalar_exec.memory)

(* -- parcheck verdicts -------------------------------------------------------- *)

let parse_mc = Slp_frontend.Parser.parse

let check_verdict name src expected =
  let prog = parse_mc ~name src in
  let show = function
    | Slp_vm.Parcheck.Serial reason -> "serial:" ^ reason
    | Slp_vm.Parcheck.Parallel { reductions } ->
        "parallel:"
        ^ String.concat ","
            (List.map
               (fun (v, op) ->
                 v
                 ^
                 match op with
                 | Types.Add -> "+"
                 | Types.Mul -> "*"
                 | Types.Min -> "min"
                 | Types.Max -> "max"
                 | Types.Sub -> "-"
                 | Types.Div -> "/")
               reductions)
  in
  Alcotest.(check string)
    name expected
    (show (Slp_vm.Parcheck.analyze_scalar prog))

let test_parcheck_admits () =
  check_verdict "parity-disjoint offsets on one array"
    "f64 A[128];\nfor i = 0 to 32 {\n  A[2*i] = A[2*i+1];\n}" "parallel:";
  check_verdict "offset read of another array"
    "f64 A[128];\nf64 B[128];\nfor i = 0 to 64 {\n  A[i] = B[i+3];\n}"
    "parallel:";
  check_verdict "sum reduction"
    "f64 s;\nf64 A[64];\nfor i = 0 to 64 {\n  s = s + A[i];\n}" "parallel:s+";
  check_verdict "max reduction"
    "f64 m;\nf64 A[64];\nfor i = 0 to 64 {\n  m = max(m, A[i]);\n}"
    "parallel:mmax"

let test_parcheck_rejects () =
  check_verdict "loop-carried distance 1"
    "f64 A[128];\nfor i = 0 to 64 {\n  A[i+1] = A[i];\n}" "serial:par-array-dep:A";
  check_verdict "non-associative self-update"
    "f64 s;\nf64 A[64];\nfor i = 0 to 64 {\n  s = A[i] - s;\n}"
    "serial:par-nonassoc:s";
  check_verdict "statements outside the loop"
    "f64 x;\nf64 A[64];\nx = 1.0;\nfor i = 0 to 64 {\n  A[i] = x;\n}"
    "serial:par-shape"

let () =
  Alcotest.run "vm"
    [
      ( "memory",
        [
          Alcotest.test_case "address layout" `Quick test_memory_layout;
          Alcotest.test_case "scalar layout" `Quick test_memory_scalar_layout;
          Alcotest.test_case "values" `Quick test_memory_values;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "associativity eviction" `Quick test_cache_associativity_eviction;
          Alcotest.test_case "line straddling" `Quick test_cache_straddling;
          Alcotest.test_case "contention" `Quick test_cache_contention;
        ] );
      ("counters", [ Alcotest.test_case "categories" `Quick test_counters ]);
      ( "scalar_exec",
        [
          Alcotest.test_case "values and counts" `Quick test_scalar_exec_values;
          Alcotest.test_case "index as value" `Quick test_scalar_exec_index_as_value;
        ] );
      ( "vector_exec",
        [
          Alcotest.test_case "ISA roundtrip" `Quick test_vector_isa_roundtrip;
          Alcotest.test_case "uninitialised register" `Quick test_vector_reads_before_write_fail;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "chunk ranges" `Quick test_chunk_ranges;
          Seeded.to_alcotest chunk_ranges_prop;
          Alcotest.test_case "work conservation" `Quick test_multicore_work_conservation;
          Alcotest.test_case "fig21 domains bit-identical" `Quick
            test_fig21_domains_bitidentical;
        ] );
      ( "parcheck",
        [
          Alcotest.test_case "admitted kernels" `Quick test_parcheck_admits;
          Alcotest.test_case "rejected kernels" `Quick test_parcheck_rejects;
        ] );
    ]
