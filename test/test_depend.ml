(* Tests for the exact integer dependence analyzer: the per-dimension
   equation solver (ZIV/GCD/Banerjee within constant boxes), the
   precise block dependence pairs, the cross-instance chunk
   independence test, the distance/direction dependence graph with its
   JSON dump (Figure 15 golden), the dynamic soundness tracer, and a
   brute-force qcheck property for the same-instance solver. *)

open Slp_ir
module Depend = Slp_depend.Depend
module Dtrace = Slp_depend.Dtrace
module Suite = Slp_benchmarks.Suite

let parse = Slp_frontend.Parser.parse

let box_i ?(lo = 0) ?(hi = 8) ?(step = 1) () =
  Depend.Box.add Depend.Box.empty "i"
    (Depend.Box.of_bounds ~lo:(Affine.const lo) ~hi:(Affine.const hi) ~step)

let solvable = function Depend.Solvable _ -> true | Depend.Unsolvable -> false

(* -- the per-dimension solver ---------------------------------------- *)

let test_solver_ziv () =
  let box = Depend.Box.empty in
  Alcotest.(check bool) "5 = 5" true
    (solvable (Depend.same_instance_eqn ~box (Affine.const 5) (Affine.const 5)));
  Alcotest.(check bool) "5 <> 7" false
    (solvable (Depend.same_instance_eqn ~box (Affine.const 5) (Affine.const 7)))

let test_solver_gcd () =
  let box = box_i () in
  (* 2i = 2i + 1 has no integer solution: gcd test. *)
  Alcotest.(check bool) "2i <> 2i+1" false
    (solvable
       (Depend.same_instance_eqn ~box
          (Affine.make [ ("i", 2) ] 0)
          (Affine.make [ ("i", 2) ] 1)));
  Alcotest.(check bool) "2i = 2i+4 - 4" true
    (solvable
       (Depend.same_instance_eqn ~box
          (Affine.make [ ("i", 2) ] 4)
          (Affine.make [ ("i", 2) ] 4)))

let test_solver_banerjee () =
  let box = box_i ~lo:0 ~hi:8 () in
  (* i = i + 20 is excluded by the bounds (i - i = 0 always, but the
     constant 20 is outside the achievable [0, 0]).  Use distinct
     variables via two dims: f = i, g = 100 (i in [0,8)). *)
  Alcotest.(check bool) "i <> 100 inside [0,8)" false
    (solvable
       (Depend.same_instance_eqn ~box (Affine.var "i") (Affine.const 100)));
  Alcotest.(check bool) "i = 5 inside [0,8)" true
    (solvable
       (Depend.same_instance_eqn ~box (Affine.var "i") (Affine.const 5)))

let test_solver_symbolic () =
  (* Unknown range: conservative Solvable with a stable reason. *)
  let box = Depend.Box.add Depend.Box.empty "i" Depend.Box.Unknown in
  match Depend.same_instance_eqn ~box (Affine.var "i") (Affine.const 100) with
  | Depend.Solvable { exact = false; reason = Some "symbolic-bounds" } -> ()
  | Depend.Solvable { exact; reason } ->
      Alcotest.failf "expected conservative verdict, got exact=%b reason=%s"
        exact
        (Option.value ~default:"<none>" reason)
  | Depend.Unsolvable -> Alcotest.fail "symbolic bounds must not prove independence"

(* -- precise block pairs vs the syntactic ones ----------------------- *)

let test_block_pairs_strided_disjoint () =
  (* A[2i] = A[i+9] only at i = 9, outside the box [0,8): the Banerjee
     bound drops the edge the syntactic may-alias test keeps (their
     difference i - 9 is not a constant, so it must assume aliasing). *)
  let block =
    Block.of_rhs ~label:"bb"
      [
        (Operand.Elem ("A", [ Affine.make [ ("i", 2) ] 0 ]), Expr.Infix.(cst 1.0));
        (Operand.Elem ("A", [ Affine.make [ ("i", 1) ] 9 ]), Expr.Infix.(cst 2.0));
      ]
  in
  let box = box_i () in
  Alcotest.(check bool) "syntactic pairs see a conflict" true
    (Block.dep_pairs block <> []);
  Alcotest.(check (list (pair int int))) "precise pairs are empty" []
    (Depend.block_dep_pairs ~box block)

let test_block_pairs_keep_real_deps () =
  let block =
    Block.of_rhs ~label:"bb"
      [
        (Operand.Elem ("A", [ Affine.var "i" ]), Expr.Infix.(cst 1.0));
        (Operand.Scalar "x", Expr.Infix.(arr "A" [ Affine.var "i" ] + cst 0.0));
      ]
  in
  let box = box_i () in
  Alcotest.(check (list (pair int int))) "flow dep survives" [ (1, 2) ]
    (Depend.block_dep_pairs ~box block)

(* -- cross-instance chunk independence ------------------------------- *)

let access ~stmt ~base ~idxs ~write box =
  { Depend.stmt; base; idxs; write; box }

let test_cross_instance () =
  let box = box_i () in
  let w = access ~stmt:1 ~base:"A" ~idxs:[ Affine.var "i" ] ~write:true box in
  let r_same = access ~stmt:2 ~base:"A" ~idxs:[ Affine.var "i" ] ~write:false box in
  let r_next =
    access ~stmt:2 ~base:"A" ~idxs:[ Affine.make [ ("i", 1) ] 1 ] ~write:false box
  in
  Alcotest.(check bool) "A[i] vs A[i]: same iteration only" false
    (Depend.cross_instance_conflict ~pvar:"i" w r_same);
  Alcotest.(check bool) "A[i] write vs A[i+1] read crosses iterations" true
    (Depend.cross_instance_conflict ~pvar:"i" w r_next)

(* -- the dependence graph -------------------------------------------- *)

let test_graph_distance_direction () =
  let prog =
    parse ~name:"carried" "f64 A[64];\nfor i = 0 to 8 {\n  A[i+1] = A[i];\n}"
  in
  let g = Depend.of_program prog in
  let carried =
    List.filter (fun (e : Depend.edge) -> e.Depend.carrier <> None) g.Depend.edges
  in
  match
    List.find_opt
      (fun (e : Depend.edge) -> e.Depend.ekind = Depend.Flow)
      carried
  with
  | None -> Alcotest.fail "expected a carried flow edge"
  | Some e ->
      Alcotest.(check (option string)) "carried on i" (Some "i") e.Depend.carrier;
      Alcotest.(check (option int)) "distance 1" (Some 1) e.Depend.distance;
      Alcotest.(check bool) "exact" true e.Depend.exact;
      Alcotest.(check string) "direction <" "<"
        (Depend.direction_string (List.assoc "i" e.Depend.directions))

let test_graph_strided_distance () =
  (* step 3 loop: A[i] = A[i-6] is 2 iterations apart, not 6. *)
  let prog =
    parse ~name:"stride"
      "f64 A[128];\nfor i = 6 to 48 step 3 {\n  A[i] = A[i-6];\n}"
  in
  let g = Depend.of_program prog in
  match
    List.find_opt
      (fun (e : Depend.edge) ->
        e.Depend.ekind = Depend.Flow && e.Depend.carrier = Some "i")
      g.Depend.edges
  with
  | None -> Alcotest.fail "expected a carried flow edge"
  | Some e ->
      Alcotest.(check (option int)) "distance in iterations" (Some 2)
        e.Depend.distance

let fig15_source =
  "f64 a;\nf64 b;\nf64 c;\nf64 d;\nf64 g;\nf64 h;\nf64 q;\nf64 r;\n\
   f64 A[1024];\nf64 B[4096];\n\n\
   for i = 2 to 6 {\n\
  \  a = A[i];\n\
  \  c = a * B[4*i];\n\
  \  g = q * B[4*i-2];\n\
  \  b = A[i+1];\n\
  \  d = b * B[4*i+4];\n\
  \  h = r * B[4*i+2];\n\
  \  A[2*i] = d + a*c;\n\
  \  A[2*i+2] = g + r*h;\n\
   }\n"

let fig15_golden =
  "{\"program\":\"fig15\",\"edges\":[{\"src\":7,\"dst\":1,\"array\":\"A\",\
   \"kind\":\"flow\",\"carrier\":\"i\",\"distance\":null,\"directions\":\
   [{\"loop\":\"i\",\"dir\":\"<\"}],\"exact\":false,\"reason\":\
   \"banerjee-inconclusive\"},{\"src\":7,\"dst\":4,\"array\":\"A\",\"kind\":\
   \"flow\",\"carrier\":\"i\",\"distance\":null,\"directions\":[{\"loop\":\
   \"i\",\"dir\":\"<\"}],\"exact\":false,\"reason\":\"banerjee-inconclusive\"},\
   {\"src\":8,\"dst\":4,\"array\":\"A\",\"kind\":\"flow\",\"carrier\":\"i\",\
   \"distance\":null,\"directions\":[{\"loop\":\"i\",\"dir\":\"<\"}],\"exact\":\
   false,\"reason\":\"banerjee-inconclusive\"},{\"src\":8,\"dst\":7,\"array\":\
   \"A\",\"kind\":\"output\",\"carrier\":\"i\",\"distance\":1,\"directions\":\
   [{\"loop\":\"i\",\"dir\":\"<\"}],\"exact\":true,\"reason\":null}],\
   \"reductions\":[]}"

let test_fig15_deps_golden () =
  let prog = parse ~name:"fig15" fig15_source in
  let json = Slp_obs.Json.to_string (Depend.to_json (Depend.of_program prog)) in
  Alcotest.(check string) "fig15 dependence graph JSON" fig15_golden json

(* -- dynamic soundness tracer ---------------------------------------- *)

let test_dtrace_clean_kernels () =
  List.iter
    (fun name ->
      let k = Suite.find name in
      let r = Dtrace.check (Suite.program k) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: no violations" name)
        [] r.Dtrace.violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s: events recorded" name)
        true (r.Dtrace.events > 0))
    [ "cg"; "mg"; "soplex" ]

let test_dtrace_reduction_kernel () =
  let prog =
    parse ~name:"red"
      "f64 s;\nf64 A[64];\nfor i = 0 to 64 {\n  s = s + A[i];\n}"
  in
  let r = Dtrace.check prog in
  Alcotest.(check (list string)) "reduction traces clean" [] r.Dtrace.violations

(* -- brute force vs the same-instance solver ------------------------- *)

let enumerate_box vars ranges f =
  (* Call [f] with every assignment of [vars] inside [ranges]. *)
  let rec go acc = function
    | [] -> f (fun v -> List.assoc v acc)
    | (v, (lo, hi, step)) :: rest ->
        let x = ref lo in
        while !x < hi do
          go ((v, !x) :: acc) rest;
          x := !x + step
        done
  in
  go [] (List.combine vars ranges)

let false_dependent = ref 0
let total_dependent_verdicts = ref 0

let arb_subscript_pair =
  let open QCheck.Gen in
  let coeff = int_range (-3) 3 in
  let konst = int_range (-8) 8 in
  let affine =
    map3
      (fun ci cj k -> Affine.add (Affine.make [ ("i", ci) ] k) (Affine.make [ ("j", cj) ] 0))
      coeff coeff konst
  in
  let range = map2 (fun lo len -> (lo, lo + 1 + len, 1)) (int_range 0 2) (int_range 0 6) in
  let gen = tup2 (tup2 affine affine) (tup2 range range) in
  QCheck.make
    ~print:(fun ((f, g), (ri, rj)) ->
      let pr (lo, hi, step) = Printf.sprintf "[%d,%d) step %d" lo hi step in
      Printf.sprintf "f=%s g=%s i:%s j:%s" (Affine.to_string f)
        (Affine.to_string g) (pr ri) (pr rj))
    gen

let prop_solver_sound =
  QCheck.Test.make ~name:"same-instance solver never misses a dependence"
    ~count:500 arb_subscript_pair
    (fun ((f, g), ((ilo, ihi, istep), (jlo, jhi, jstep))) ->
      let box =
        Depend.Box.add
          (Depend.Box.add Depend.Box.empty "j"
             (Depend.Box.of_bounds ~lo:(Affine.const jlo)
                ~hi:(Affine.const jhi) ~step:jstep))
          "i"
          (Depend.Box.of_bounds ~lo:(Affine.const ilo) ~hi:(Affine.const ihi)
             ~step:istep)
      in
      let found = ref false in
      enumerate_box [ "i"; "j" ]
        [ (ilo, ihi, istep); (jlo, jhi, jstep) ]
        (fun env -> if Affine.eval f env = Affine.eval g env then found := true);
      let verdict = Depend.same_instance_eqn ~box f g in
      (match verdict with
      | Depend.Solvable _ ->
          incr total_dependent_verdicts;
          if not !found then incr false_dependent
      | Depend.Unsolvable -> ());
      (* Soundness: a witnessed coincidence must be declared solvable. *)
      (not !found) || solvable verdict)

let test_false_dependent_rate () =
  (* Runs after the property; purely informational. *)
  if !total_dependent_verdicts > 0 then
    Printf.eprintf "[depend] false-dependent rate: %d/%d (%.1f%%)\n%!"
      !false_dependent !total_dependent_verdicts
      (100.0 *. float_of_int !false_dependent
      /. float_of_int !total_dependent_verdicts)

let () =
  Alcotest.run "depend"
    [
      ( "solver",
        [
          Alcotest.test_case "ziv" `Quick test_solver_ziv;
          Alcotest.test_case "gcd" `Quick test_solver_gcd;
          Alcotest.test_case "banerjee bounds" `Quick test_solver_banerjee;
          Alcotest.test_case "symbolic fallback" `Quick test_solver_symbolic;
        ] );
      ( "block pairs",
        [
          Alcotest.test_case "strided disjoint" `Quick
            test_block_pairs_strided_disjoint;
          Alcotest.test_case "real deps survive" `Quick
            test_block_pairs_keep_real_deps;
        ] );
      ( "cross instance",
        [ Alcotest.test_case "chunk independence" `Quick test_cross_instance ] );
      ( "graph",
        [
          Alcotest.test_case "distance/direction" `Quick
            test_graph_distance_direction;
          Alcotest.test_case "strided distance" `Quick
            test_graph_strided_distance;
          Alcotest.test_case "fig15 JSON golden" `Quick test_fig15_deps_golden;
        ] );
      ( "dtrace",
        [
          Alcotest.test_case "suite kernels clean" `Quick
            test_dtrace_clean_kernels;
          Alcotest.test_case "reduction kernel clean" `Quick
            test_dtrace_reduction_kernel;
        ] );
      ( "property",
        Seeded.to_alcotest prop_solver_sound
        :: [
             Alcotest.test_case "false-dependent rate" `Quick
               test_false_dependent_rate;
           ] );
    ]
