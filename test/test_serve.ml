(* Tests for the compile service: deadlines, the content-addressed
   cache and its keys, the supervised pool (retry, quarantine,
   load-shedding), the socket daemon end-to-end, and a subset of the
   service fault matrix (the full matrix runs under [slpfault
   --service] and the CI serve-smoke job). *)

open Slp_ir
module E = Slp_util.Slp_error
module Fnv = Slp_util.Fnv
module Backoff = Slp_util.Backoff
module Prng = Slp_util.Prng
module Json = Slp_obs.Json
module Metrics = Slp_obs.Metrics
module P = Slp_pipeline.Pipeline
module M = Slp_machine.Machine
module Proto = Slp_serve.Proto
module Ckey = Slp_serve.Ckey
module Cache = Slp_serve.Cache
module Fault = Slp_serve.Fault
module Job = Slp_serve.Job
module Pool = Slp_serve.Pool
module Server = Slp_serve.Server
module Client = Slp_serve.Client
module SF = Slp_faultinject.Servicefault
module Suite = Slp_benchmarks.Suite

let scratch = Filename.concat (Filename.get_temp_dir_name ()) "slp-serve-test"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat scratch (Printf.sprintf "case%d" !n)

let kernel_src =
  {|
f64 a[64]; f64 b[64]; f64 c[64];
for i = 0 to 64 {
  c[i] = a[i] * b[i] + c[i];
}
|}

let small_spec ?(scheme = P.Global) ?(name = "k") () =
  { (Proto.default_spec ~kernel:kernel_src ~name) with Proto.scheme }

(* -- deadlines ------------------------------------------------------- *)

let test_deadline_basics () =
  let t = ref 0.0 in
  let clock () = !t in
  let d = E.Deadline.create ~clock ~seconds:10.0 in
  Alcotest.(check bool) "fresh not expired" false (E.Deadline.expired d);
  E.Deadline.check d;
  t := 9.9;
  Alcotest.(check bool) "inside budget" false (E.Deadline.expired d);
  t := 10.1;
  Alcotest.(check bool) "past budget" true (E.Deadline.expired d);
  (match E.Deadline.check d with
  | () -> Alcotest.fail "expired check did not raise"
  | exception E.Error e ->
      Alcotest.(check string) "BAIL16" "BAIL16-deadline" (E.code_name e.E.code));
  Alcotest.(check bool)
    "never survives any clock" false
    (E.Deadline.expired E.Deadline.never);
  Alcotest.(check (float 1e-9)) "remaining infinite" infinity
    (E.Deadline.remaining E.Deadline.never)

let test_fuel_checks_deadline () =
  let t = ref 0.0 in
  let d = E.Deadline.create ~clock:(fun () -> !t) ~seconds:1.0 in
  let fuel = E.Fuel.create ~deadline:d ~pass:E.Grouping ~budget:max_int () in
  (* Inside the deadline: many ticks pass freely. *)
  for _ = 1 to 1000 do
    E.Fuel.tick fuel
  done;
  t := 5.0;
  (* The stride means the breach lands within one batch of ticks. *)
  match
    for _ = 1 to 512 do
      E.Fuel.tick fuel
    done
  with
  | () -> Alcotest.fail "fuel never noticed the expired deadline"
  | exception E.Error e ->
      Alcotest.(check string) "BAIL16 via fuel" "BAIL16-deadline" (E.code_name e.E.code)

let test_compile_deadline () =
  let prog = Suite.program (List.hd Suite.all) in
  let t = ref 0.0 in
  let d = E.Deadline.create ~clock:(fun () -> !t) ~seconds:1.0 in
  t := 2.0;
  match P.compile ~deadline:d ~scheme:P.Global ~machine:M.intel_dunnington prog with
  | _ -> Alcotest.fail "compile ignored an already-expired deadline"
  | exception E.Error e ->
      Alcotest.(check string) "BAIL16 from compile" "BAIL16-deadline" (E.code_name e.E.code)

(* -- backoff --------------------------------------------------------- *)

let test_backoff () =
  let delays seed =
    let prng = Prng.create seed in
    List.init 8 (fun i -> Backoff.delay Backoff.default ~prng ~attempt:(i + 1))
  in
  Alcotest.(check (list (float 1e-12))) "seeded determinism" (delays 5) (delays 5);
  List.iter
    (fun d ->
      Alcotest.(check bool) "positive" true (d > 0.0);
      Alcotest.(check bool) "capped" true (d <= Backoff.default.Backoff.cap))
    (delays 5)

(* -- cache keys ------------------------------------------------------ *)

let key_of ?(op = Proto.Execute) spec =
  match Ckey.of_spec ~op spec with
  | Result.Ok (key, _) -> key
  | Result.Error e -> Alcotest.fail ("unexpected key failure: " ^ E.to_string e)

let test_key_stability =
  let gen =
    QCheck.make
      ~print:(fun p -> Program.to_source p)
      (QCheck.Gen.map
         (fun seed ->
           Slp_fuzz.Gen.program ~name:"keyfuzz" (Slp_util.Prng.create seed))
         (QCheck.Gen.int_bound 1_000_000))
  in
  QCheck.Test.make ~count:60
    ~name:"cache key is invariant under to_source round-trip and splits on flags"
    gen
    (fun prog ->
      let src = Program.to_source prog in
      let spec = { (Proto.default_spec ~kernel:src ~name:"a") with Proto.scheme = P.Global } in
      let k1 = key_of spec in
      (* Round-trip: reparse of the canonical source keys identically,
         and a different job name keys identically. *)
      let round = key_of { spec with Proto.name = "b" } in
      (* Flag changes split the key. *)
      let other_scheme = key_of { spec with Proto.scheme = P.Slp } in
      let other_machine = key_of { spec with Proto.machine = M.amd_phenom_ii } in
      let other_unroll = key_of { spec with Proto.unroll = Some 8 } in
      let other_seed = key_of { spec with Proto.seed = 43 } in
      let other_op = key_of ~op:Proto.Compile spec in
      let timeout_ignored = key_of { spec with Proto.timeout = Some 5.0 } in
      k1 = round && k1 = timeout_ignored && k1 <> other_scheme
      && k1 <> other_machine && k1 <> other_unroll && k1 <> other_seed
      && k1 <> other_op)

let test_fnv_framing () =
  Alcotest.(check bool)
    "field boundaries matter" true
    (Fnv.hash_fields [ "ab"; "c" ] <> Fnv.hash_fields [ "a"; "bc" ]);
  let h = Fnv.hash64 "slp" in
  Alcotest.(check (option int64)) "hex round-trip" (Some h) (Fnv.of_hex (Fnv.to_hex h))

(* -- protocol -------------------------------------------------------- *)

let test_proto_roundtrip () =
  let spec =
    {
      (small_spec ()) with
      Proto.unroll = Some 4;
      max_steps = Some 1000;
      timeout = Some 2.5;
      cores = 2;
      seed = 7;
    }
  in
  let req = { Proto.id = 9; op = Proto.Job (Proto.Execute, spec) } in
  (match Proto.request_of_line (Proto.request_to_line req) with
  | Result.Ok r ->
      Alcotest.(check int) "id" 9 r.Proto.id;
      (match r.Proto.op with
      | Proto.Job (Proto.Execute, s) ->
          Alcotest.(check string) "kernel" spec.Proto.kernel s.Proto.kernel;
          Alcotest.(check (option int)) "unroll" (Some 4) s.Proto.unroll;
          Alcotest.(check (option (float 1e-9))) "timeout" (Some 2.5) s.Proto.timeout;
          Alcotest.(check int) "cores" 2 s.Proto.cores
      | _ -> Alcotest.fail "op did not round-trip")
  | Result.Error (_, msg) -> Alcotest.fail msg);
  let err = E.make ~pass:E.Grouping E.Fuel_exhausted "out of steps" in
  let reply =
    Proto.ok_reply ~cached:true ~attempts:2 ~errors:[ err ] ~id:9
      (Json.Obj [ ("x", Json.Num 1.0) ])
  in
  match Proto.reply_of_line (Proto.reply_to_line reply) with
  | Result.Ok r ->
      Alcotest.(check bool) "cached" true r.Proto.cached;
      Alcotest.(check int) "attempts" 2 r.Proto.attempts;
      (match r.Proto.errors with
      | [ e ] -> Alcotest.(check string) "code" "BAIL11-fuel" (E.code_name e.E.code)
      | _ -> Alcotest.fail "errors did not round-trip")
  | Result.Error msg -> Alcotest.fail msg

let test_bad_request () =
  (match Proto.request_of_line "{\"id\": 3, \"op\": \"warp\"}" with
  | Result.Error (3, _) -> ()
  | _ -> Alcotest.fail "unknown op must fail with its id");
  match Proto.request_of_line "not json" with
  | Result.Error (-1, _) -> ()
  | _ -> Alcotest.fail "garbage must fail with id -1"

(* -- cache ----------------------------------------------------------- *)

let test_cache_integrity () =
  Fault.disarm ();
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let key = Fnv.hash64 "k1" in
  Cache.store cache key "{\"v\": 1}";
  Alcotest.(check (option string)) "hit" (Some "{\"v\": 1}") (Cache.find cache key);
  (* Rot the entry on disk behind the cache's back. *)
  let file = Filename.concat (Cache.dir cache) (Fnv.to_hex key ^ ".entry") in
  let oc = open_out_bin file in
  output_string oc "deadbeefdeadbeef {\"v\": 2}\n";
  close_out oc;
  Alcotest.(check (option string)) "corrupt entry evicted" None (Cache.find cache key);
  Alcotest.(check bool) "file removed" false (Sys.file_exists file);
  let stats = Cache.stats cache in
  Alcotest.(check int) "eviction counted" 1 stats.Cache.corrupt_evictions;
  (* The next store heals it. *)
  Cache.store cache key "{\"v\": 3}";
  Alcotest.(check (option string)) "healed" (Some "{\"v\": 3}") (Cache.find cache key)

let test_cache_corrupt_store_fault () =
  Fault.disarm ();
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let key = Fnv.hash64 "k2" in
  Fault.arm (Fault.Corrupt_store 1);
  Cache.store cache key "payload";
  Alcotest.(check (option string)) "flipped byte caught" None (Cache.find cache key);
  Alcotest.(check int) "evicted" 1 (Cache.stats cache).Cache.corrupt_evictions;
  Fault.disarm ()

(* -- pool ------------------------------------------------------------ *)

let quick_config =
  { Pool.default_config with Pool.workers = 1; sleep = (fun _ -> ()); seed = 11 }

let with_pool ?(config = quick_config) f =
  Fault.disarm ();
  let pool = Pool.create ~config ~cache:(Cache.create ~dir:(fresh_dir ())) () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool; Fault.disarm ()) (fun () -> f pool)

let test_pool_basic_and_cached () =
  with_pool (fun pool ->
      let spec = small_spec () in
      let first = Pool.run_sync pool ~id:1 ~op:Proto.Execute ~spec () in
      Alcotest.(check string) "ok" "ok" (Proto.status_name first.Proto.status);
      Alcotest.(check bool) "fresh" false first.Proto.cached;
      Alcotest.(check int) "one attempt" 1 first.Proto.attempts;
      let again = Pool.run_sync pool ~id:2 ~op:Proto.Execute ~spec () in
      Alcotest.(check bool) "cache hit" true again.Proto.cached;
      Alcotest.(check string) "bit-identical payload"
        (Json.to_string first.Proto.payload)
        (Json.to_string again.Proto.payload))

let test_pool_retries_worker_death () =
  with_pool (fun pool ->
      let spec = small_spec () in
      Fault.arm (Fault.Kill_worker 1);
      let reply = Pool.run_sync pool ~id:1 ~op:Proto.Execute ~spec () in
      Alcotest.(check string) "ok after restart" "ok"
        (Proto.status_name reply.Proto.status);
      Alcotest.(check int) "two attempts" 2 reply.Proto.attempts;
      Alcotest.(check (float 1e-9)) "restart counted" 1.0
        (Metrics.get (Pool.metrics pool) "worker_restarts_total"))

let test_pool_quarantines_poison () =
  with_pool (fun pool ->
      (* A zero step budget fails deterministically on every attempt. *)
      let spec = { (small_spec ()) with Proto.max_steps = Some 0 } in
      let reply = Pool.run_sync pool ~id:1 ~op:Proto.Execute ~spec () in
      Alcotest.(check string) "degraded" "degraded"
        (Proto.status_name reply.Proto.status);
      Alcotest.(check bool) "quarantined" true reply.Proto.quarantined;
      Alcotest.(check int) "attempts capped" quick_config.Pool.max_attempts
        reply.Proto.attempts;
      Alcotest.(check bool) "BAIL11 catalogued" true
        (List.exists (fun (e : E.t) -> e.E.code = E.Fuel_exhausted) reply.Proto.errors);
      Alcotest.(check int) "key recorded" 1 (List.length (Pool.quarantined pool));
      (* Resubmission takes the quarantine fast path: no fresh attempts. *)
      let again = Pool.run_sync pool ~id:2 ~op:Proto.Execute ~spec () in
      Alcotest.(check bool) "still quarantined" true again.Proto.quarantined)

let test_pool_sheds_when_full () =
  let config = { quick_config with Pool.queue_depth = 2 } in
  with_pool ~config (fun pool ->
      Pool.pause pool;
      let replies = Array.make 5 None in
      for i = 0 to 4 do
        Pool.submit pool ~id:i ~op:Proto.Execute ~spec:(small_spec ())
          ~reply:(fun r -> replies.(i) <- Some r)
      done;
      let shed =
        Array.to_list replies
        |> List.filter_map Fun.id
        |> List.filter (fun r -> r.Proto.status = Proto.Overloaded)
      in
      (* First job may be cached? No cache yet: 2 queued, 3 shed. *)
      Alcotest.(check int) "three shed" 3 (List.length shed);
      Pool.resume pool;
      Pool.drain pool;
      Alcotest.(check int) "every submission answered" 5
        (Array.to_list replies |> List.filter_map Fun.id |> List.length))

let test_pool_health () =
  with_pool (fun pool ->
      let h = Pool.health pool in
      Alcotest.(check int) "one live worker" 1 h.Pool.live_workers;
      Alcotest.(check int) "idle queue" 0 h.Pool.queue_len;
      Alcotest.(check int) "limit from config" quick_config.Pool.queue_depth
        h.Pool.queue_limit;
      Alcotest.(check bool) "not stopping" false h.Pool.stopping)

(* -- end-to-end over the socket -------------------------------------- *)

let test_server_end_to_end () =
  Fault.disarm ();
  let dir = fresh_dir () in
  let socket = Filename.concat dir "slpd.sock" in
  let pool = Pool.create ~config:quick_config ~cache:(Cache.create ~dir) () in
  let daemon = Domain.spawn (fun () -> Server.run ~pool ~socket ()) in
  let rec connect tries =
    match Client.connect ~socket with
    | c -> c
    | exception Unix.Unix_error _ when tries > 0 ->
        Unix.sleepf 0.05;
        connect (tries - 1)
  in
  let client = connect 100 in
  let ping = Client.call client { Proto.id = 1; op = Proto.Ping } in
  Alcotest.(check string) "pong" "ok" (Proto.status_name ping.Proto.status);
  let spec = small_spec () in
  let first =
    Client.call client { Proto.id = 2; op = Proto.Job (Proto.Execute, spec) }
  in
  Alcotest.(check string) "job ok" "ok" (Proto.status_name first.Proto.status);
  Alcotest.(check bool) "computed" false first.Proto.cached;
  (* Interleaved ids: submit two, read in reverse order. *)
  Client.send client { Proto.id = 3; op = Proto.Job (Proto.Execute, spec) };
  Client.send client { Proto.id = 4; op = Proto.Ping };
  let pong2 = Client.wait client ~id:4 in
  Alcotest.(check string) "second ping" "ok" (Proto.status_name pong2.Proto.status);
  let cached = Client.wait client ~id:3 in
  Alcotest.(check bool) "served from cache" true cached.Proto.cached;
  Alcotest.(check string) "bit-identical over the wire"
    (Json.to_string first.Proto.payload)
    (Json.to_string cached.Proto.payload);
  let stats = Client.call client { Proto.id = 5; op = Proto.Stats } in
  (match Json.member "cache" stats.Proto.payload with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "stats payload lacks cache section");
  let bye = Client.call client { Proto.id = 6; op = Proto.Shutdown } in
  Alcotest.(check string) "shutdown acknowledged" "ok"
    (Proto.status_name bye.Proto.status);
  Domain.join daemon;
  Client.close client;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

let test_server_observability () =
  Fault.disarm ();
  let dir = fresh_dir () in
  let socket = Filename.concat dir "slpd.sock" in
  let pool = Pool.create ~config:quick_config ~cache:(Cache.create ~dir) () in
  let daemon = Domain.spawn (fun () -> Server.run ~pool ~socket ()) in
  let rec connect tries =
    match Client.connect ~socket with
    | c -> c
    | exception Unix.Unix_error _ when tries > 0 ->
        Unix.sleepf 0.05;
        connect (tries - 1)
  in
  (* A client that vanishes before its reply lands: the reactor must
     count the undeliverable reply, not lose it. *)
  let ghost = connect 100 in
  Client.send ghost { Proto.id = 1; op = Proto.Job (Proto.Execute, small_spec ()) };
  Client.close ghost;
  let unroutable () =
    Metrics.get ~where:[ ("outcome", "unroutable") ] (Pool.metrics pool)
      "replies_total"
  in
  let rec await tries =
    if unroutable () >= 1.0 then ()
    else if tries = 0 then Alcotest.fail "unroutable reply never counted"
    else begin
      Unix.sleepf 0.025;
      await (tries - 1)
    end
  in
  await 400;
  let client = connect 100 in
  let health = Client.call client { Proto.id = 2; op = Proto.Health } in
  Alcotest.(check string) "health ok" "ok" (Proto.status_name health.Proto.status);
  (match Json.member "ready" health.Proto.payload with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "daemon not ready");
  let metrics = Client.call client { Proto.id = 3; op = Proto.Metrics } in
  (match metrics.Proto.payload with
  | Json.Str text -> (
      match Slp_obs.Metric.validate_exposition text with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("metrics exposition invalid: " ^ e))
  | _ -> Alcotest.fail "metrics payload not text");
  let stats = Client.call client { Proto.id = 4; op = Proto.Stats } in
  (match Json.member "metrics" stats.Proto.payload with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "stats lacks typed metrics section");
  let bye = Client.call client { Proto.id = 5; op = Proto.Shutdown } in
  Alcotest.(check string) "shutdown acknowledged" "ok"
    (Proto.status_name bye.Proto.status);
  Domain.join daemon;
  Client.close client

(* -- service fault matrix (subset) ----------------------------------- *)

let test_service_matrix_subset () =
  let kernels =
    List.filteri (fun i _ -> i < 2) Slp_benchmarks.Suite.all
  in
  let outcomes =
    SF.run_matrix ~machines:[ M.intel_dunnington ] ~kernels ~dir:(fresh_dir ()) ()
  in
  List.iter
    (fun (o : SF.outcome) ->
      if not o.SF.ok then
        Printf.printf "FAIL %s at %s: status=%s attempts=%d codes=[%s] identical=%b lost=%b\n"
          o.SF.kernel (SF.point_name o.SF.point) o.SF.status o.SF.attempts
          (String.concat "; " o.SF.codes)
          o.SF.identical (not o.SF.no_lost_jobs))
    outcomes;
  Alcotest.(check int) "case count" (2 * 4) (List.length outcomes);
  Alcotest.(check bool) "all recovered" true (SF.all_ok outcomes)

let test_service_report_json () =
  let prog = Suite.program (List.hd Suite.all) in
  let o =
    SF.run_case ~dir:(fresh_dir ()) ~machine:M.intel_dunnington
      ~point:SF.Kill_worker prog
  in
  let json = SF.report_json [ o ] in
  let contains needle hay =
    let ln = String.length needle and lh = String.length hay in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "one case" true (contains "\"cases\": 1" json);
  Alcotest.(check bool) "names the point" true (contains "kill-worker" json)

let () =
  Alcotest.run "serve"
    [
      ( "deadline",
        [
          Alcotest.test_case "deadline basics" `Quick test_deadline_basics;
          Alcotest.test_case "fuel ticks check deadline" `Quick test_fuel_checks_deadline;
          Alcotest.test_case "compile honors deadline" `Quick test_compile_deadline;
          Alcotest.test_case "backoff is seeded and capped" `Quick test_backoff;
        ] );
      ( "cache",
        [
          Seeded.to_alcotest test_key_stability;
          Alcotest.test_case "fnv framing" `Quick test_fnv_framing;
          Alcotest.test_case "integrity eviction" `Quick test_cache_integrity;
          Alcotest.test_case "corrupt-store fault" `Quick test_cache_corrupt_store_fault;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "round-trip" `Quick test_proto_roundtrip;
          Alcotest.test_case "bad requests" `Quick test_bad_request;
        ] );
      ( "pool",
        [
          Alcotest.test_case "compute then cache" `Quick test_pool_basic_and_cached;
          Alcotest.test_case "worker death retried" `Quick test_pool_retries_worker_death;
          Alcotest.test_case "poison job quarantined" `Quick test_pool_quarantines_poison;
          Alcotest.test_case "bounded queue sheds" `Quick test_pool_sheds_when_full;
          Alcotest.test_case "health snapshot" `Quick test_pool_health;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "socket end-to-end" `Quick test_server_end_to_end;
          Alcotest.test_case "health, metrics, unroutable" `Quick
            test_server_observability;
        ] );
      ( "fault matrix",
        [
          Alcotest.test_case "service matrix subset" `Slow test_service_matrix_subset;
          Alcotest.test_case "service report json" `Quick test_service_report_json;
        ] );
    ]
