(* The exact pack-selection scheme (lib/slp_core/optimal.ml) as a test
   oracle, and its own correctness obligations:

   - exactness: on tiny generated blocks (<= 6 statements) the
     branch-and-bound result equals the exhaustive minimum over every
     legal packing, priced by the shared evaluator;
   - dominance: on all 16 suite kernels x both machines, the Optimal
     scheme's modeled cost never exceeds any heuristic's, and its
     compiled output is memory-identical to the scalar reference;
   - bounded failure: a combinatorial blowup kernel exhausts the
     solver budget, bails to the holistic heuristic under the
     advisory BAIL15 — without degrading the compile — and still
     dominates the heuristic it fell back to. *)

open Slp_ir
module E = Slp_util.Slp_error
module Prng = Slp_util.Prng
module Optimal = Slp_core.Optimal
module Cost = Slp_core.Cost
module Config = Slp_core.Config
module Driver = Slp_core.Driver
module Depend = Slp_depend.Depend
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Suite = Slp_benchmarks.Suite
module Gen = Slp_fuzz.Gen

let intel = Machine.intel_dunnington
let amd = Machine.amd_phenom_ii

(* The same scheme-fair block pricing [Optimal.modeled_cost] applies
   to whole plans: committed -> estimated vector cost, otherwise the
   exact scalar cost of the block's statements. *)
let block_cost params (bp : Driver.block_plan) =
  match (bp.Driver.schedule, bp.Driver.estimate) with
  | Some _, Some e -> e.Cost.vector_cost
  | _ ->
      List.fold_left
        (fun a s -> a +. Cost.scalar_stmt_cost params s)
        0.0 bp.Driver.block.Block.stmts

(* -- exactness against brute force --------------------------------- *)

(* Seeded property: draw small kernels, and for every block of at most
   6 statements compare the solver's result against the minimum over
   ALL legal packings from [enumerate_partitions], both priced by the
   one shared evaluator.  The solver must also report the search as
   proven (no bail at an effectively unbounded budget). *)
let test_bruteforce_exactness () =
  let config = Config.make ~datapath_bits:128 () in
  let params = Cost.default_params in
  let options =
    { Gen.default_options with Gen.max_stmts = 5; allow_prologue = false }
  in
  let master = Seeded.prng ~salt:31 () in
  let checked = ref 0 in
  for k = 0 to 39 do
    let prng = Prng.split master in
    let prog = Gen.program ~options ~name:(Printf.sprintf "bf%d" k) prng in
    let env = prog.Program.env in
    List.iter2
      (fun ((block : Block.t), nest) (_, box) ->
        if List.length block.Block.stmts <= 6 then begin
          let deps = Depend.block_dep_pairs ~box block in
          let query = Cost.default_query ~env ~nest ~lanes:2 in
          let plan, bail, stats =
            Optimal.plan_block ~solver_steps:10_000_000 ~deps ~env ~config
              ~query ~nest block
          in
          let name fmt =
            Printf.ksprintf
              (fun s -> Printf.sprintf "case %d %s: %s" k block.Block.label s)
              fmt
          in
          Alcotest.(check bool)
            (name "search proven")
            true
            (bail = None && stats.Optimal.proven);
          let scalar =
            List.fold_left
              (fun a s -> a +. Cost.scalar_stmt_cost params s)
              0.0 block.Block.stmts
          in
          let best =
            List.fold_left
              (fun best parts ->
                match
                  Optimal.evaluate ~query ~deps ~env ~config block
                    (Optimal.grouping_of_parts parts)
                with
                | Some a ->
                    Float.min best a.Optimal.a_estimate.Cost.vector_cost
                | None -> best)
              scalar
              (Optimal.enumerate_partitions ~env ~config ~deps block)
          in
          incr checked;
          Alcotest.(check (float 1e-6))
            (name "solver equals exhaustive minimum")
            best (block_cost params plan)
        end)
      (Driver.blocks_with_nest prog)
      (Depend.blocks_with_box prog)
  done;
  Alcotest.(check bool) "property exercised some blocks" true (!checked > 0)

(* -- dominance over every heuristic on the suite -------------------- *)

let heuristics =
  [ Pipeline.Native; Pipeline.Slp; Pipeline.Global; Pipeline.Global_layout ]

let test_suite_dominance () =
  List.iter
    (fun (machine : Machine.t) ->
      let params = Pipeline.params_of_machine machine in
      List.iter
        (fun (b : Suite.t) ->
          let prog = Suite.program b in
          let compile scheme =
            Pipeline.compile ~unroll:b.Suite.unroll ~scheme ~machine prog
          in
          let opt = compile Pipeline.Optimal in
          let opt_cost =
            match opt.Pipeline.plan with
            | Some plan -> Optimal.modeled_cost ~params plan
            | None -> Alcotest.failf "%s: Optimal produced no plan" b.Suite.name
          in
          let r = Pipeline.execute opt in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: memory identical to scalar" b.Suite.name
               machine.Machine.name)
            true r.Pipeline.correct;
          List.iter
            (fun scheme ->
              let c = compile scheme in
              (* A layout-transformed compile re-prices memory through
                 replication, which the block-local model cannot see;
                 costs are only comparable when the stage was skipped. *)
              let comparable =
                match scheme with
                | Pipeline.Global_layout ->
                    c.Pipeline.replica_count = 0
                    && c.Pipeline.scalar_offsets = []
                | _ -> true
              in
              match c.Pipeline.plan with
              | Some plan when comparable ->
                  let cost = Optimal.modeled_cost ~params plan in
                  if cost +. 1e-6 < opt_cost then
                    Alcotest.failf "%s on %s: %s cost %.3f beats optimal %.3f"
                      b.Suite.name machine.Machine.name
                      (Pipeline.scheme_name scheme)
                      cost opt_cost
              | Some _ | None -> ())
            heuristics)
        Suite.all)
    [ intel; amd ]

(* -- budget exhaustion bails, advisory-only ------------------------- *)

(* 12 mutually isomorphic, mutually independent statements, unrolled
   x2 by the pipeline: at 2 lanes the pairing space alone is ~23!!
   nodes, so a 100-node budget is guaranteed to run dry. *)
let blowup_program () =
  let env = Env.create () in
  List.iter
    (fun a -> Env.declare_array env a Types.F64 [ 64 ])
    [ "A"; "B"; "C" ];
  let open Expr.Infix in
  let at k = (12 @* i "i") @+ k in
  let stmts =
    List.init 12 (fun k ->
        (Operand.Elem ("A", [ at k ]), arr "B" [ at k ] + arr "C" [ at k ]))
  in
  Program.make ~name:"blowup" ~env
    [
      Program.loop "i" ~lo:(Affine.const 0) ~hi:(Affine.const 4)
        [ Program.Stmts (Block.of_rhs ~label:"body" stmts) ];
    ]

let test_blowup_bails () =
  let prog = blowup_program () in
  let c =
    Pipeline.compile ~solver_steps:100 ~scheme:Pipeline.Optimal ~machine:intel
      prog
  in
  Alcotest.(check bool)
    "solver ran out of budget" true
    (c.Pipeline.solver_bails <> []);
  List.iter
    (fun (e : E.t) ->
      Alcotest.(check string) "advisory code is BAIL15" "BAIL15"
        (E.code_id e.E.code))
    c.Pipeline.solver_bails;
  (* Seeds keep the dominance guarantee even on a bail. *)
  let params = Pipeline.params_of_machine intel in
  let g = Pipeline.compile ~scheme:Pipeline.Global ~machine:intel prog in
  (match (c.Pipeline.plan, g.Pipeline.plan) with
  | Some po, Some pg ->
      Alcotest.(check bool)
        "bailed result still dominates the heuristic" true
        (Optimal.modeled_cost ~params po
        <= Optimal.modeled_cost ~params pg +. 1e-6)
  | _ -> Alcotest.fail "plans missing")

let test_blowup_resilient_not_degraded () =
  let prog = blowup_program () in
  let r =
    Pipeline.compile_resilient ~solver_steps:100 ~scheme:Pipeline.Optimal
      ~machine:intel prog
  in
  Alcotest.(check bool) "not degraded" true (not r.Pipeline.degraded);
  Alcotest.(check int) "no resilient bailouts" 0 (List.length r.Pipeline.bailouts);
  Alcotest.(check bool)
    "BAIL15 advisory surfaced" true
    (r.Pipeline.result.Pipeline.solver_bails <> []);
  let x = Pipeline.execute r.Pipeline.result in
  Alcotest.(check bool) "memory identical after bail" true x.Pipeline.correct

(* At a generous budget the same kernel must not bail at all on its
   unvectorizable twin: singles-only blocks are solved instantly. *)
let test_small_budget_scales () =
  let prog = blowup_program () in
  let c =
    Pipeline.compile ~solver_steps:Optimal.default_solver_steps
      ~scheme:Pipeline.Optimal ~machine:intel prog
  in
  (* Whether or not the default budget proves this block, the compile
     must succeed with a plan and verified lowering. *)
  Alcotest.(check bool) "plan produced" true (c.Pipeline.plan <> None);
  let x = Pipeline.execute c in
  Alcotest.(check bool) "memory identical" true x.Pipeline.correct

let () =
  Alcotest.run "optimal"
    [
      ( "optimal",
        [
          Alcotest.test_case "brute-force exactness (<=6 stmts)" `Slow
            test_bruteforce_exactness;
          Alcotest.test_case "dominates every heuristic on the suite" `Slow
            test_suite_dominance;
          Alcotest.test_case "blowup kernel bails under BAIL15" `Quick
            test_blowup_bails;
          Alcotest.test_case "bail is advisory: resilient not degraded" `Quick
            test_blowup_resilient_not_degraded;
          Alcotest.test_case "default budget still compiles and verifies"
            `Quick test_small_budget_scales;
        ] );
    ]
