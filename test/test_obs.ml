(* Observability layer tests.

   - Clock: injectable monotonic source (deterministic tests), clamp.
   - Json: round-trips and strict parse errors.
   - Trace: balanced spans (including on the raise path) and valid
     Chrome trace JSON for every suite kernel on both machines.
   - Remarks: golden ids on the paper's Figure 15 running example.
   - Profiler: per-key attribution sums to Counters.total_cycles and
     never perturbs the measured run. *)

open Slp_ir
module Obs = Slp_obs.Obs
module Trace = Slp_obs.Trace
module Remark = Slp_obs.Remark
module Profile = Slp_obs.Profile
module Clock = Slp_obs.Clock
module Json = Slp_obs.Json
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Config = Slp_core.Config
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Suite = Slp_benchmarks.Suite
module Counters = Slp_vm.Counters

let intel = Machine.intel_dunnington
let amd = Machine.amd_phenom_ii

(* -- clock ----------------------------------------------------------- *)

let with_clock source f =
  Clock.set_source source;
  Fun.protect ~finally:Clock.use_default f

let test_clock_injection () =
  let script = ref [ 1.0; 2.0; 1.5; 3.0 ] in
  let source () =
    match !script with
    | [] -> 99.0
    | t :: rest ->
        script := rest;
        t
  in
  with_clock source (fun () ->
      Alcotest.(check (float 0.0)) "first tick" 1.0 (Clock.now ());
      Alcotest.(check (float 0.0)) "advances" 2.0 (Clock.now ());
      Alcotest.(check (float 0.0))
        "backwards step clamps to the last value" 2.0 (Clock.now ());
      Alcotest.(check (float 0.0)) "resumes" 3.0 (Clock.now ()))

let test_clock_deterministic_compile () =
  (* A frozen clock makes every measured duration exactly zero —
     the property deterministic timing tests rely on. *)
  with_clock (fun () -> 7.0) (fun () ->
      let b = Suite.find "milc" in
      let c =
        Pipeline.compile ~unroll:b.Suite.unroll ~scheme:Pipeline.Global
          ~machine:intel (Suite.program b)
      in
      Alcotest.(check (float 0.0))
        "compile_seconds is 0 under a frozen clock" 0.0
        c.Pipeline.compile_seconds;
      Alcotest.(check (float 0.0))
        "verify_seconds is 0 under a frozen clock" 0.0
        c.Pipeline.verify_seconds)

(* -- json ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\n\t\x01");
        ("n", Json.Num 42.0);
        ("x", Json.Num 0.125);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.0; Json.Str "two"; Json.Arr [] ]);
        ("o", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_rejects () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" src
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":1,}"; "nul"; "\"unterminated"; "[1] trailing"; "" ]

(* -- trace ----------------------------------------------------------- *)

let test_trace_balanced_on_raise () =
  let t = Trace.create () in
  (try
     Trace.span t "outer" (fun () ->
         Trace.span t "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check bool) "balanced after raise" true (Trace.balanced t);
  Alcotest.(check int) "four events" 4 (Trace.event_count t);
  match Trace.validate_chrome_json (Trace.to_chrome_json t) with
  | Ok n -> Alcotest.(check int) "validator counts them" 4 n
  | Error e -> Alcotest.failf "invalid trace: %s" e

let test_trace_validator_rejects () =
  let t = Trace.create () in
  Trace.begin_span t "open";
  Alcotest.(check bool) "unclosed span unbalanced" false (Trace.balanced t);
  (match Trace.validate_chrome_json (Trace.to_chrome_json t) with
  | Ok _ -> Alcotest.fail "validator accepted an unclosed span"
  | Error _ -> ());
  match Trace.validate_chrome_json "{\"traceEvents\": 3}" with
  | Ok _ -> Alcotest.fail "validator accepted a non-array traceEvents"
  | Error _ -> ()

(* Every suite kernel, both machines: the pipeline's trace is balanced
   and exports valid Chrome JSON.  Global_layout on Intel exercises the
   layout/arbitrate spans; Global covers the AMD model. *)
let test_trace_all_kernels () =
  List.iter
    (fun (machine, scheme) ->
      List.iter
        (fun (b : Suite.t) ->
          let obs = Obs.create ~trace:true () in
          let c =
            Pipeline.compile ~unroll:b.Suite.unroll ~obs ~scheme ~machine
              (Suite.program b)
          in
          ignore (Pipeline.execute ~check:false ~obs c);
          let t = Option.get obs.Obs.trace in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s balanced" machine.Machine.name b.Suite.name)
            true (Trace.balanced t);
          match Trace.validate_chrome_json (Trace.to_chrome_json t) with
          | Ok n ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s has events" machine.Machine.name
                   b.Suite.name)
                true (n > 0)
          | Error e ->
              Alcotest.failf "%s/%s: invalid trace: %s" machine.Machine.name
                b.Suite.name e)
        Suite.all)
    [ (intel, Pipeline.Global_layout); (amd, Pipeline.Global) ]

(* -- remarks --------------------------------------------------------- *)

(* The Figure 15 running example (same block as test_paper_example). *)
let fig15_env () =
  let env = Env.create () in
  List.iter
    (fun v -> Env.declare_scalar env v Types.F64)
    [ "a"; "b"; "c"; "d"; "g"; "h"; "q"; "r" ];
  Env.declare_array env "A" Types.F64 [ 1024 ];
  Env.declare_array env "B" Types.F64 [ 4096 ];
  env

let fig15_block () =
  let open Expr.Infix in
  let i4 = 4 @* i "i" and i2 = 2 @* i "i" in
  Block.of_rhs ~label:"fig15"
    [
      (Operand.Scalar "a", arr "A" [ i "i" ]);
      (Operand.Scalar "c", sc "a" * arr "B" [ i4 ]);
      (Operand.Scalar "g", sc "q" * arr "B" [ i4 @+ -2 ]);
      (Operand.Scalar "b", arr "A" [ i "i" @+ 1 ]);
      (Operand.Scalar "d", sc "b" * arr "B" [ i4 @+ 4 ]);
      (Operand.Scalar "h", sc "r" * arr "B" [ i4 @+ 2 ]);
      (Operand.Elem ("A", [ i2 ]), sc "d" + (sc "a" * sc "c"));
      (Operand.Elem ("A", [ i2 @+ 2 ]), sc "g" + (sc "r" * sc "h"));
    ]

let config = Config.make ~datapath_bits:128 ()

let test_remarks_fig15_golden () =
  let env = fig15_env () in
  let block = fig15_block () in
  let obs = Obs.create ~remarks:true () in
  let g = Grouping.run ~obs ~env ~config block in
  let s = Schedule.run ~obs ~env ~config block g in
  ignore s;
  let remarks = Obs.remarks obs in
  Alcotest.(check bool) "remarks were emitted" true (remarks <> []);
  List.iter
    (fun (r : Remark.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "id %s is catalogued" r.Remark.id)
        true
        (List.mem_assoc r.Remark.id Remark.catalogue))
    remarks;
  let merges =
    List.filter_map
      (fun (r : Remark.t) ->
        if r.Remark.id = "GRP-MERGE" then Some (List.sort compare r.Remark.stmts)
        else None)
      remarks
  in
  (* The holistic grouping's four merges are exactly Figure 15(b)'s
     groups: {S1,S4}, {S2,S6}, {S3,S5}, {S7,S8}. *)
  Alcotest.(check (list (list int)))
    "merge remarks name the paper's groups"
    [ [ 1; 4 ]; [ 2; 6 ]; [ 3; 5 ]; [ 7; 8 ] ]
    (List.sort compare merges);
  let count id =
    List.length (List.filter (fun (r : Remark.t) -> r.Remark.id = id) remarks)
  in
  (* Figure 15(c): three superword reuses captured by the schedule. *)
  Alcotest.(check int)
    "three reuse remarks as in Figure 15(c)" 3
    (count "SCHED-REUSE" + count "SCHED-PERM");
  List.iter
    (fun (r : Remark.t) ->
      Alcotest.(check string) "remark block" "fig15" r.Remark.block)
    remarks

let test_remarks_slp_differs () =
  (* The Larsen baseline finds different groups than Global on the
     running example — the observability layer makes the difference
     visible as data.  Compile both schemes end to end and compare the
     merge remarks on a reuse-rich suite kernel. *)
  let b = Suite.find "milc" in
  let run scheme =
    let obs = Obs.create ~remarks:true () in
    ignore
      (Pipeline.compile ~unroll:b.Suite.unroll ~obs ~scheme ~machine:intel
         (Suite.program b));
    List.filter_map
      (fun (r : Remark.t) ->
        if r.Remark.id = "GRP-MERGE" then Some (List.sort compare r.Remark.stmts)
        else None)
      (Obs.remarks obs)
  in
  let global = run Pipeline.Global in
  let slp = run Pipeline.Slp in
  Alcotest.(check bool) "Global emits merge remarks" true (global <> []);
  (* The SLP baseline runs outside Grouping.run, so its merges are not
     remark-instrumented — only the cost gate speaks for it. *)
  ignore slp

let test_remarks_off_by_default () =
  let env = fig15_env () in
  let block = fig15_block () in
  ignore (Grouping.run ~env ~config block);
  Alcotest.(check (list unit)) "Obs.none collects nothing" []
    (List.map ignore (Obs.remarks Obs.none))

(* -- profiler -------------------------------------------------------- *)

let schemes =
  [ Pipeline.Native; Pipeline.Slp; Pipeline.Global; Pipeline.Global_layout ]

let test_profile_sums_to_total () =
  List.iter
    (fun (b : Suite.t) ->
      List.iter
        (fun scheme ->
          let obs = Obs.create ~profile:true () in
          let c =
            Pipeline.compile ~unroll:b.Suite.unroll ~scheme ~machine:intel
              (Suite.program b)
          in
          let r = Pipeline.execute ~check:false ~obs c in
          let p = Option.get obs.Obs.profile in
          let attributed = Profile.total_cycles p in
          let total = Counters.total_cycles r.Pipeline.counters in
          if Float.abs (attributed -. total) > 1e-6 then
            Alcotest.failf "%s/%s: attributed %.6f <> total %.6f" b.Suite.name
              (Pipeline.scheme_name scheme)
              attributed total)
        (Pipeline.Scalar :: schemes))
    Suite.all

let test_profile_does_not_perturb () =
  List.iter
    (fun scheme ->
      let b = Suite.find "sp" in
      let c =
        Pipeline.compile ~unroll:b.Suite.unroll ~scheme ~machine:intel
          (Suite.program b)
      in
      let plain = Pipeline.execute ~check:false c in
      let obs = Obs.create ~profile:true () in
      let profiled = Pipeline.execute ~check:false ~obs c in
      Alcotest.(check (float 0.0))
        (Pipeline.scheme_name scheme ^ " cycles unchanged under profiling")
        (Counters.total_cycles plain.Pipeline.counters)
        (Counters.total_cycles profiled.Pipeline.counters))
    (Pipeline.Scalar :: schemes)

let test_profile_pack_keys () =
  (* A vectorized kernel must attribute cycles to pack keys, and a
     kernel with layout setup charges the setup key. *)
  let b = Suite.find "milc" in
  let obs = Obs.create ~profile:true () in
  let c =
    Pipeline.compile ~unroll:b.Suite.unroll ~scheme:Pipeline.Global
      ~machine:intel (Suite.program b)
  in
  ignore (Pipeline.execute ~check:false ~obs c);
  let p = Option.get obs.Obs.profile in
  let keys = List.map fst (Profile.top ~n:1000 p) in
  Alcotest.(check bool)
    "vectorized run has pack keys" true
    (List.exists (function Profile.Pack _ -> true | _ -> false) keys);
  Alcotest.(check bool)
    "per-array stats were collected" true
    (Profile.arrays p <> [])

let test_profile_report_renders () =
  let b = Suite.find "milc" in
  let obs = Obs.create ~profile:true () in
  let c =
    Pipeline.compile ~unroll:b.Suite.unroll ~scheme:Pipeline.Global
      ~machine:intel (Suite.program b)
  in
  ignore (Pipeline.execute ~check:false ~obs c);
  let p = Option.get obs.Obs.profile in
  let text = Format.asprintf "%a" (fun ppf -> Profile.report ppf) p in
  Alcotest.(check bool) "report mentions totals" true
    (String.length text > 0);
  match Json.parse (Json.to_string (Profile.to_json p)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "profile JSON invalid: %s" e

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "injection and clamp" `Quick test_clock_injection;
          Alcotest.test_case "deterministic compile timing" `Quick
            test_clock_deterministic_compile;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick test_json_rejects;
        ] );
      ( "trace",
        [
          Alcotest.test_case "balanced on raise" `Quick
            test_trace_balanced_on_raise;
          Alcotest.test_case "validator rejects" `Quick
            test_trace_validator_rejects;
          Alcotest.test_case "all kernels x machines" `Slow
            test_trace_all_kernels;
        ] );
      ( "remarks",
        [
          Alcotest.test_case "figure 15 golden" `Quick
            test_remarks_fig15_golden;
          Alcotest.test_case "scheme comparison" `Quick
            test_remarks_slp_differs;
          Alcotest.test_case "off by default" `Quick
            test_remarks_off_by_default;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "attribution sums to total" `Slow
            test_profile_sums_to_total;
          Alcotest.test_case "profiling does not perturb" `Quick
            test_profile_does_not_perturb;
          Alcotest.test_case "pack and array keys" `Quick
            test_profile_pack_keys;
          Alcotest.test_case "report and JSON render" `Quick
            test_profile_report_renders;
        ] );
    ]
