(* Tests for the core SLP machinery: packs, candidates, the variable
   pack conflicting graph, auxiliary-graph weights (including the
   paper's 2/3 example from Figures 4-6), grouping, scheduling, the
   live superword set and the cost model. *)

open Slp_ir
module Pack = Slp_core.Pack
module Config = Slp_core.Config
module Units = Slp_core.Units
module Candidate = Slp_core.Candidate
module Packgraph = Slp_core.Packgraph
module Groupgraph = Slp_core.Groupgraph
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Live = Slp_core.Live
module Cost = Slp_core.Cost

let config = Config.make ~datapath_bits:128 ()

(* -- pack ----------------------------------------------------------------- *)

let test_pack_multiset () =
  let p1 = Pack.of_operands [ Operand.Scalar "b"; Operand.Scalar "a" ] in
  let p2 = Pack.of_operands [ Operand.Scalar "a"; Operand.Scalar "b" ] in
  Alcotest.(check bool) "order irrelevant" true (Pack.equal p1 p2);
  let dup = Pack.of_operands [ Operand.Scalar "a"; Operand.Scalar "a" ] in
  Alcotest.(check bool) "duplicates distinct from singles" false (Pack.equal p1 dup);
  Alcotest.(check int) "union size" 4 (Pack.size (Pack.union p1 dup));
  Alcotest.(check bool) "all constant" true
    (Pack.all_constant (Pack.of_operands [ Operand.Const 1.0; Operand.Const 2.0 ]));
  Alcotest.(check bool) "not all constant" false
    (Pack.all_constant (Pack.of_operands [ Operand.Const 1.0; Operand.Scalar "x" ]))

(* -- the paper's Figure 2 / Figures 4-6 weight example --------------------- *)

(* Figure 2 (reconstructed from the text): five statements where the
   candidate set is {{S1,S2}, {S1,S3}, {S4,S5}} and the weight of
   {S4,S5} comes out as 2/3. *)
let fig2_env () =
  let env = Env.create () in
  List.iter
    (fun v -> Env.declare_scalar env v Types.F64)
    [ "V1"; "V2"; "V3"; "V5"; "V7" ];
  env

let fig2_block () =
  Block.of_rhs ~label:"fig2"
    [
      (Operand.Scalar "V1", Expr.Leaf (Operand.Scalar "V3"));
      (Operand.Scalar "V2", Expr.Leaf (Operand.Scalar "V5"));
      (Operand.Scalar "V5", Expr.Leaf (Operand.Scalar "V7"));
      (Operand.Scalar "V3", Expr.Infix.(sc "V1" + sc "V1"));
      (Operand.Scalar "V5", Expr.Infix.(sc "V2" + sc "V5"));
    ]

let fig2_candidates () =
  let env = fig2_env () in
  let block = fig2_block () in
  let units = List.map (Units.of_stmt ~env) block.Block.stmts in
  let deps = Units.Deps.build block units in
  (env, block, units, deps, Candidate.find ~env ~config ~units ~deps)

let test_fig2_candidates () =
  let _, _, _, _, cands = fig2_candidates () in
  let pairs =
    List.map (fun (c : Candidate.t) -> (c.Candidate.u1, c.Candidate.u2)) cands
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    "candidate set from the paper" [ (1, 2); (1, 3); (4, 5) ] pairs

let test_fig2_weight () =
  let _, _, _, deps, cands = fig2_candidates () in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (c : Candidate.t) -> Hashtbl.replace tbl c.Candidate.cid c) cands;
  let conflict a b =
    a <> b && Candidate.conflicts ~deps (Hashtbl.find tbl a) (Hashtbl.find tbl b)
  in
  let vp = Packgraph.build ~candidates:cands ~conflict in
  let c45 =
    List.find (fun (c : Candidate.t) -> Candidate.units_of c = (4, 5)) cands
  in
  let w =
    Groupgraph.weight ~vp ~conflict ~elimination:Groupgraph.Max_degree
      ~decided_packs:[] ~cand:c45
  in
  Alcotest.(check (float 1e-9)) "the paper's 2/3" (2.0 /. 3.0) w

let test_fig2_conflicts () =
  let _, _, _, deps, cands = fig2_candidates () in
  let find u1 u2 =
    List.find (fun (c : Candidate.t) -> Candidate.units_of c = (u1, u2)) cands
  in
  (* {S1,S2} and {S1,S3} share S1. *)
  Alcotest.(check bool) "shared statement conflicts" true
    (Candidate.conflicts ~deps (find 1 2) (find 1 3));
  Alcotest.(check bool) "disjoint independent groups do not" false
    (Candidate.conflicts ~deps (find 1 2) (find 4 5))

(* -- packgraph -------------------------------------------------------------- *)

let test_packgraph_updates () =
  let _, _, _, deps, cands = fig2_candidates () in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (c : Candidate.t) -> Hashtbl.replace tbl c.Candidate.cid c) cands;
  let conflict a b =
    a <> b && Candidate.conflicts ~deps (Hashtbl.find tbl a) (Hashtbl.find tbl b)
  in
  let vp = Packgraph.build ~candidates:cands ~conflict in
  let n0 = Packgraph.node_count vp in
  Alcotest.(check bool) "has nodes" true (n0 > 0);
  let c12 = List.find (fun (c : Candidate.t) -> Candidate.units_of c = (1, 2)) cands in
  (* Deciding {S1,S2} removes its nodes and its conflicting nodes
     (those of {S1,S3}); the nodes of {S4,S5} survive. *)
  Packgraph.remove_decided vp c12.Candidate.cid;
  let c45 = List.find (fun (c : Candidate.t) -> Candidate.units_of c = (4, 5)) cands in
  Alcotest.(check bool) "decided owner gone" false (Packgraph.alive vp c12.Candidate.cid);
  Alcotest.(check bool) "independent candidate survives" true
    (Packgraph.alive vp c45.Candidate.cid)

(* -- units ------------------------------------------------------------------ *)

let test_units_merge () =
  let env = fig2_env () in
  let block = fig2_block () in
  let units = List.map (Units.of_stmt ~env) block.Block.stmts in
  let u1 = List.nth units 0 and u2 = List.nth units 1 in
  let merged = Units.merge ~uid:99 u1 u2 in
  Alcotest.(check (list int)) "members" [ 1; 2 ] merged.Units.members;
  Alcotest.(check int) "lane count" 2 (Units.lane_count merged);
  Alcotest.(check int) "width" 128 (Units.width_bits merged)

let test_units_deps_acyclicity () =
  let env = fig2_env () in
  let block = fig2_block () in
  let units = List.map (Units.of_stmt ~env) block.Block.stmts in
  let deps = Units.Deps.build block units in
  (* S1 reads V3, S4 writes V3: merging {1,4} is fine on its own; the
     contraction test must also accept independent pairs. *)
  Alcotest.(check bool) "disjoint merge acyclic" true
    (Units.Deps.merged_acyclic deps [ (1, 2); (4, 5) ]);
  (* S2 reads V5 and S3 writes V5 (S2 before S3: WAR), and S3's V5 is
     read by S5... merging {2,3} with {1,2}-style overlaps is the
     grouping's job; here just check a direct cycle is rejected:
     {2,5} and {3, ...}: S2 -> S5 (V2? no) ... use reachability. *)
  Alcotest.(check bool) "dependent pair not mergeable" false
    (Units.Deps.mergeable deps 2 3)

(* -- grouping on the paper's Figure 2 --------------------------------------- *)

let test_fig2_grouping () =
  let env = fig2_env () in
  let block = fig2_block () in
  let r = Grouping.run ~env ~config block in
  (* {S1,S2} has weight 1 (its packs reused by {S4,S5}); {S4,S5}
     likewise; {S1,S3} conflicts with {S1,S2} and loses.  The final
     grouping is {{S1,S2},{S4,S5}} with S3 single. *)
  Alcotest.(check (list (list int)))
    "figure 2 grouping" [ [ 1; 2 ]; [ 4; 5 ] ]
    (List.sort compare (List.map (List.sort compare) r.Grouping.groups));
  Alcotest.(check (list int)) "S3 single" [ 3 ] r.Grouping.singles

(* -- iterative grouping ------------------------------------------------------ *)

let test_iterative_grouping_four_wide () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F32 [ 64 ];
  Env.declare_array env "B" Types.F32 [ 64 ];
  let elem base k = Operand.Elem (base, [ Affine.make [ ("i", 1) ] k ]) in
  let block =
    Block.make ~label:"quad"
      (List.init 4 (fun k ->
           let ix = Affine.make [ ("i", 1) ] k in
           Stmt.make ~id:(k + 1) ~lhs:(elem "A" k)
             ~rhs:Expr.Infix.(arr "B" [ ix ] * cst 2.0)))
  in
  let r = Grouping.run ~env ~config block in
  Alcotest.(check int) "two rounds" 2 r.Grouping.rounds;
  Alcotest.(check (list (list int)))
    "one four-wide group"
    [ [ 1; 2; 3; 4 ] ]
    (List.map (List.sort compare) r.Grouping.groups)

let test_grouping_respects_datapath () =
  (* f64 lanes on 128 bits: groups of two, never four. *)
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  let elem k = Operand.Elem ("A", [ Affine.make [ ("i", 1) ] k ]) in
  let block =
    Block.make ~label:"pairs"
      (List.init 4 (fun k ->
           Stmt.make ~id:(k + 1) ~lhs:(elem (k + 8)) ~rhs:(Expr.Leaf (elem k))))
  in
  let r = Grouping.run ~env ~config block in
  List.iter
    (fun g -> Alcotest.(check int) "group width" 2 (List.length g))
    r.Grouping.groups

let test_grouping_dependence_safety () =
  (* S2 depends on S1; they must never share a group. *)
  let env = Env.create () in
  List.iter (fun v -> Env.declare_scalar env v Types.F64) [ "x"; "y" ];
  Env.declare_array env "A" Types.F64 [ 8 ];
  let block =
    Block.of_rhs
      [
        (Operand.Scalar "x", Expr.Infix.(arr "A" [ Affine.const 0 ] + cst 1.0));
        (Operand.Scalar "y", Expr.Infix.(sc "x" + cst 1.0));
      ]
  in
  let r = Grouping.run ~env ~config block in
  Alcotest.(check (list (list int))) "no groups" [] r.Grouping.groups

(* -- live set ------------------------------------------------------------------ *)

let test_live_set () =
  let live = Live.create ~capacity:2 in
  let sw1 = [ Operand.Scalar "a"; Operand.Scalar "b" ] in
  let sw2 = [ Operand.Scalar "b"; Operand.Scalar "a" ] in
  Live.insert live sw1;
  Alcotest.(check bool) "exact hit" true (Live.mem_exact live sw1);
  Alcotest.(check bool) "exact miss on permutation" false (Live.mem_exact live sw2);
  Alcotest.(check bool) "multiset hit" true
    (Live.mem_multiset live (Pack.of_operands sw2));
  (* Same multiset replaces rather than duplicating. *)
  Live.insert live sw2;
  Alcotest.(check int) "replaced" 1 (Live.size live);
  Alcotest.(check bool) "now the permuted order is exact" true (Live.mem_exact live sw2);
  (* Capacity eviction. *)
  Live.insert live [ Operand.Scalar "c"; Operand.Scalar "d" ];
  Live.insert live [ Operand.Scalar "e"; Operand.Scalar "f" ];
  Alcotest.(check int) "bounded" 2 (Live.size live);
  Alcotest.(check bool) "oldest evicted" false
    (Live.mem_multiset live (Pack.of_operands sw1));
  (* Invalidation by definition. *)
  Live.invalidate live ~defs:[ Operand.Scalar "e" ];
  Alcotest.(check bool) "invalidated" false
    (Live.mem_multiset live (Pack.of_operands [ Operand.Scalar "e"; Operand.Scalar "f" ]))

(* -- schedule validity ----------------------------------------------------------- *)

let test_schedule_analyze_matches_run () =
  let env = fig2_env () in
  let block = fig2_block () in
  let g = Grouping.run ~env ~config block in
  let s = Schedule.run ~env ~config block g in
  let replay = Schedule.analyze ~config block s.Schedule.items in
  Alcotest.(check int) "direct reuses agree" s.Schedule.stats.Schedule.direct_reuses
    replay.Schedule.stats.Schedule.direct_reuses;
  Alcotest.(check int) "permuted reuses agree" s.Schedule.stats.Schedule.permuted_reuses
    replay.Schedule.stats.Schedule.permuted_reuses

let test_schedule_invalid_detected () =
  let env = fig2_env () in
  let block = fig2_block () in
  (* A "schedule" that reorders a dependent pair is invalid. *)
  let bogus =
    {
      Schedule.items =
        [ Schedule.Single 5; Schedule.Single 4; Schedule.Single 3; Schedule.Single 2;
          Schedule.Single 1 ];
      stats =
        { Schedule.direct_reuses = 0; permuted_reuses = 0; packed_sources = 0;
          permutations = 0 };
    }
  in
  ignore env;
  Alcotest.(check bool) "reversed order invalid" false (Schedule.is_valid block bogus)

(* -- cost model -------------------------------------------------------------------- *)

let simple_query =
  {
    Cost.contiguous =
      (fun ops ->
        match ops with
        | Operand.Elem _ :: _ ->
            let rec chain = function
              | [] | [ _ ] -> true
              | Operand.Elem (a, [ i1 ]) :: (Operand.Elem (b, [ i2 ]) :: _ as rest) ->
                  String.equal a b && Affine.diff_const i2 i1 = Some 1 && chain rest
              | _ -> false
            in
            chain ops
        | _ -> false);
    aligned = (fun _ -> true);
    scalar_live_out = (fun _ -> false);
  }

let test_cost_prefers_contiguous () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  Env.declare_array env "B" Types.F64 [ 64 ];
  let elem base k = Operand.Elem (base, [ Affine.make [ ("i", 1) ] k ]) in
  let contiguous_block =
    Block.make
      (List.init 2 (fun k ->
           let ix = Affine.make [ ("i", 1) ] k in
           Stmt.make ~id:(k + 1) ~lhs:(elem "A" k)
             ~rhs:Expr.Infix.(arr "B" [ ix ] * cst 2.0)))
  in
  let strided_block =
    Block.make
      (List.init 2 (fun k ->
           let ix = Affine.make [ ("i", 2) ] (2 * k) in
           Stmt.make ~id:(k + 1) ~lhs:(elem "A" k)
             ~rhs:Expr.Infix.(arr "B" [ ix ] * cst 2.0)))
  in
  let estimate block =
    let g = Grouping.run ~env ~config block in
    let s = Schedule.run ~env ~config block g in
    Cost.estimate ~query:simple_query block s
  in
  let c = estimate contiguous_block and s = estimate strided_block in
  Alcotest.(check bool) "contiguous cheaper than strided" true
    (c.Cost.vector_cost < s.Cost.vector_cost);
  Alcotest.(check bool) "contiguous profitable" true
    (c.Cost.vector_cost < c.Cost.scalar_cost)

let test_cost_counts_reuse () =
  (* A block where the same superword is used twice: second use free. *)
  let env = Env.create () in
  List.iter (fun v -> Env.declare_scalar env v Types.F64) [ "a"; "b"; "c"; "d" ];
  Env.declare_array env "A" Types.F64 [ 64 ];
  let elem k = Operand.Elem ("A", [ Affine.make [ ("i", 1) ] k ]) in
  let block =
    Block.of_rhs
      [
        (Operand.Scalar "a", Expr.Infix.(arr "A" [ Affine.var "i" ] + cst 1.0));
        (Operand.Scalar "b", Expr.Infix.(arr "A" [ Affine.add (Affine.var "i") (Affine.const 1) ] + cst 2.0));
        (Operand.Scalar "c", Expr.Infix.(sc "a" * cst 2.0));
        (Operand.Scalar "d", Expr.Infix.(sc "b" * cst 2.0));
      ]
  in
  ignore elem;
  let g = Grouping.run ~env ~config block in
  let s = Schedule.run ~env ~config block g in
  Alcotest.(check bool) "at least one reuse" true
    (s.Schedule.stats.Schedule.direct_reuses + s.Schedule.stats.Schedule.permuted_reuses
    >= 1)

(* -- config -------------------------------------------------------------------------- *)

let test_config () =
  Alcotest.(check int) "f64 lanes at 128" 2 (Config.max_lanes config Types.F64);
  Alcotest.(check int) "f32 lanes at 128" 4 (Config.max_lanes config Types.F32);
  Alcotest.(check int) "i8 lanes at 128" 16 (Config.max_lanes config Types.I8);
  Alcotest.check_raises "bad width"
    (Invalid_argument "Config.make: datapath_bits must be a positive multiple of 64")
    (fun () -> ignore (Config.make ~datapath_bits:100 ()))

(* -- schedule determinism ------------------------------------------------- *)

(* Two independent isomorphic pairs with no reuses between them: every
   selection step is a pure tie.  The tie-break must be program order,
   and must not depend on the order the grouping lists the groups. *)
let tie_env () =
  let env = Env.create () in
  List.iter (fun a -> Env.declare_array env a Types.F64 [ 64 ]) [ "A"; "B"; "C" ];
  env

let tie_block () =
  let e a k = Operand.Elem (a, [ Affine.const k ]) in
  let s id a k =
    Stmt.make ~id ~lhs:(e a k) ~rhs:(Expr.Bin (Types.Add, Expr.Leaf (e "B" k), Expr.Leaf (e "C" k)))
  in
  Block.make ~label:"tie" [ s 1 "A" 0; s 2 "A" 1; s 3 "A" 8; s 4 "A" 9 ]

let tie_grouping groups =
  { Grouping.groups; singles = []; rounds = 1; decisions = List.length groups }

let test_schedule_tie_break_program_order () =
  let env = tie_env () and block = tie_block () in
  let s = Schedule.run ~env ~config block (tie_grouping [ [ 1; 2 ]; [ 3; 4 ] ]) in
  Alcotest.(check (list int)) "program order on ties" [ 1; 2; 3; 4 ]
    (Schedule.scheduled_stmt_ids s)

let test_schedule_group_order_independent () =
  let env = tie_env () and block = tie_block () in
  let a = Schedule.run ~env ~config block (tie_grouping [ [ 1; 2 ]; [ 3; 4 ] ]) in
  let b = Schedule.run ~env ~config block (tie_grouping [ [ 3; 4 ]; [ 1; 2 ] ]) in
  Alcotest.(check (list int)) "grouping order irrelevant"
    (Schedule.scheduled_stmt_ids a) (Schedule.scheduled_stmt_ids b)

let test_schedule_repeatable () =
  (* Same inputs, same schedule — across options and repeated runs. *)
  let env = fig2_env () and block = fig2_block () in
  let g = Grouping.run ~env ~config block in
  List.iter
    (fun options ->
      let a = Schedule.run ~options ~env ~config block g in
      let b = Schedule.run ~options ~env ~config block g in
      Alcotest.(check (list int)) "repeatable" (Schedule.scheduled_stmt_ids a)
        (Schedule.scheduled_stmt_ids b))
    [
      Schedule.default_options;
      { Schedule.selection = Schedule.Program_order; ordering_search = Schedule.Exhaustive };
    ]

let () =
  Alcotest.run "slp_core"
    [
      ("pack", [ Alcotest.test_case "multiset semantics" `Quick test_pack_multiset ]);
      ( "figure2",
        [
          Alcotest.test_case "candidate identification" `Quick test_fig2_candidates;
          Alcotest.test_case "weight 2/3 (Figures 4-6)" `Quick test_fig2_weight;
          Alcotest.test_case "conflicts" `Quick test_fig2_conflicts;
          Alcotest.test_case "grouping decision" `Quick test_fig2_grouping;
        ] );
      ( "packgraph",
        [ Alcotest.test_case "decided-node removal" `Quick test_packgraph_updates ] );
      ( "units",
        [
          Alcotest.test_case "merge" `Quick test_units_merge;
          Alcotest.test_case "dependence safety" `Quick test_units_deps_acyclicity;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "iterative four-wide" `Quick test_iterative_grouping_four_wide;
          Alcotest.test_case "datapath bound" `Quick test_grouping_respects_datapath;
          Alcotest.test_case "dependence safety" `Quick test_grouping_dependence_safety;
        ] );
      ("live", [ Alcotest.test_case "live superword set" `Quick test_live_set ]);
      ( "schedule",
        [
          Alcotest.test_case "analyze matches run" `Quick test_schedule_analyze_matches_run;
          Alcotest.test_case "invalid schedules detected" `Quick test_schedule_invalid_detected;
          Alcotest.test_case "tie-break is program order" `Quick
            test_schedule_tie_break_program_order;
          Alcotest.test_case "independent of grouping order" `Quick
            test_schedule_group_order_independent;
          Alcotest.test_case "repeatable across runs" `Quick test_schedule_repeatable;
        ] );
      ( "cost",
        [
          Alcotest.test_case "contiguity matters" `Quick test_cost_prefers_contiguous;
          Alcotest.test_case "reuse captured" `Quick test_cost_counts_reuse;
        ] );
      ("config", [ Alcotest.test_case "lane math" `Quick test_config ]);
    ]
