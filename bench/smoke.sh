#!/bin/sh
# Perf smoke: run a benchmark subset with a tiny quota and write the
# machine-readable perf trajectory (before/after/speedup vs the seed
# interpreter baseline) to BENCH_vm.json at the repo root.
set -e
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- \
  --quota "${SMOKE_QUOTA:-0.05}" --limit 50 \
  --baseline bench/baseline_seed.json \
  --json BENCH_vm.json \
  fig16_slp_milc fig16_global_milc phase_vm_scalar_soplex \
  verify_overhead_suite_off verify_overhead_suite_on \
  obs_overhead_suite_off obs_overhead_suite_on \
  optimal_compile_suite \
  suite_wall_clock fig21_sequential_4core fig21_domains_4core \
  serve_throughput_cold serve_throughput_warm \
  telemetry_overhead_suite_off telemetry_overhead_suite_on

# Guard: the domain-parallel Figure 21 workload (NAS kernels, 4
# simulated cores, real OCaml domains) must not be slower than its
# sequential twin; 15% allowance for timer noise at smoke quotas.  On
# a single-processor host the pool spawns no workers and the entries
# measure the same code path.
awk -F'"' '
  $2 == "fig21_sequential_4core" { v = $3; sub(/^[: ]+/, "", v); seq = v + 0 }
  $2 == "fig21_domains_4core"    { v = $3; sub(/^[: ]+/, "", v); dom = v + 0 }
  END {
    if (seq <= 0 || dom <= 0) { print "fig21 guard: entries missing from BENCH_vm.json"; exit 1 }
    if (dom > seq * 1.15) {
      printf "fig21 guard FAILED: domains %.0f ns/run vs sequential %.0f ns/run\n", dom, seq
      exit 1
    }
    printf "fig21 guard ok: sequential %.0f ns/run, domains %.0f ns/run\n", seq, dom
  }' BENCH_vm.json

# Guard: the exact pack solver's full-suite compile (16 kernels under
# the Optimal scheme, default 20k-node budget) must stay under a fixed
# 2s wall budget.  Today it sits well under 0.5s; crossing the budget
# means the bounding, memoization, or canonical enumeration regressed.
awk -F'"' '
  $2 == "optimal_compile_suite" { v = $3; sub(/^[: ]+/, "", v); opt = v + 0 }
  END {
    if (opt <= 0) { print "optimal guard: optimal_compile_suite missing from BENCH_vm.json"; exit 1 }
    if (opt > 2e9) {
      printf "optimal guard FAILED: suite compile %.0f ns/run exceeds the 2s budget\n", opt
      exit 1
    }
    printf "optimal guard ok: suite compile under Optimal %.0f ns/run (budget 2s)\n", opt
  }' BENCH_vm.json

# Guard: the compile service's content-addressed cache must pay for
# itself — answering four suite kernels from the warm cache must be at
# least 5x faster than the cold path (clear + compile + execute +
# store).  A shrinking ratio means cache reads got slow or the cold
# path stopped doing real work.
awk -F'"' '
  $2 == "serve_throughput_cold" { v = $3; sub(/^[: ]+/, "", v); cold = v + 0 }
  $2 == "serve_throughput_warm" { v = $3; sub(/^[: ]+/, "", v); warm = v + 0 }
  END {
    if (cold <= 0 || warm <= 0) { print "serve guard: throughput entries missing from BENCH_vm.json"; exit 1 }
    if (cold < warm * 5) {
      printf "serve guard FAILED: cold %.0f ns/run is under 5x warm %.0f ns/run\n", cold, warm
      exit 1
    }
    printf "serve guard ok: cold %.0f ns/run, warm %.0f ns/run (%.1fx)\n", cold, warm, cold / warm
  }' BENCH_vm.json

# Guard: service telemetry must be close to free.  On an idle host
# the dormant bundle (log threshold Off, no trace hub) and the
# fully-enabled one (Debug log ring + live trace spans) both measure
# within a few percent of the plain warm serve path — the lazy log
# ring is what keeps the enabled path there.  These sub-millisecond
# entries swing +/-60% between runs under load (domain GC syncs,
# scheduler phases), so the CI-stable assertion is a 5x gross
# backstop per entry: it still catches the regression class that
# matters — state forced inside the measured loop (~600x), eager
# rendering or I/O per event on the hot path (10x+) — without
# flaking on timer noise.  Tighter claims are checked by eye against
# the BENCH_vm.json trajectory.
awk -F'"' '
  $2 == "serve_throughput_warm"         { v = $3; sub(/^[: ]+/, "", v); warm = v + 0 }
  $2 == "telemetry_overhead_suite_off"  { v = $3; sub(/^[: ]+/, "", v); off = v + 0 }
  $2 == "telemetry_overhead_suite_on"   { v = $3; sub(/^[: ]+/, "", v); on = v + 0 }
  END {
    if (warm <= 0 || off <= 0 || on <= 0) { print "telemetry guard: entries missing from BENCH_vm.json"; exit 1 }
    noise = 2e4
    if (off > warm * 5 + noise) {
      printf "telemetry guard FAILED: dormant %.0f ns/run vs warm serve %.0f ns/run (backstop 5x)\n", off, warm
      exit 1
    }
    if (on > warm * 5 + noise) {
      printf "telemetry guard FAILED: enabled %.0f ns/run vs warm serve %.0f ns/run (backstop 5x)\n", on, warm
      exit 1
    }
    printf "telemetry guard ok: warm %.0f ns/run, dormant %.0f ns/run, enabled %.0f ns/run\n", warm, off, on
  }' BENCH_vm.json
