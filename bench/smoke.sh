#!/bin/sh
# Perf smoke: run a 3-benchmark subset with a tiny quota and write the
# machine-readable perf trajectory (before/after/speedup vs the seed
# interpreter baseline) to BENCH_vm.json at the repo root.
set -e
cd "$(dirname "$0")/.."
dune build bench/main.exe
exec dune exec bench/main.exe -- \
  --quota "${SMOKE_QUOTA:-0.05}" --limit 50 \
  --baseline bench/baseline_seed.json \
  --json BENCH_vm.json \
  fig16_slp_milc fig16_global_milc phase_vm_scalar_soplex \
  verify_overhead_suite_off verify_overhead_suite_on \
  obs_overhead_suite_off obs_overhead_suite_on
