(* Bechamel benchmarks.

   One benchmark per paper table/figure (measuring the machinery that
   regenerates it on a representative kernel — run bin/experiments.exe
   for the full reproduced numbers), plus per-phase benchmarks of the
   compiler and the ablation benchmarks called out in DESIGN.md. *)

open Bechamel
open Toolkit
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Suite = Slp_benchmarks.Suite
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Config = Slp_core.Config

let intel = Machine.intel_dunnington
let amd = Machine.amd_phenom_ii

let kernel name = Suite.program (Suite.find name)

(* Benchmark loops measure the optimizer and simulator, not the
   verifier — ~verify:false everywhere except the two
   verify_overhead_* entries that measure the verifier itself. *)
let run_scheme ?(machine = intel) ?cores ~scheme name =
  let b = Suite.find name in
  let prog = Suite.program b in
  fun () ->
    let c =
      Pipeline.compile ~unroll:b.Suite.unroll ~verify:false ~scheme ~machine prog
    in
    ignore (Pipeline.execute ?cores ~check:false c)

let compile_only ?(machine = intel) ~scheme name =
  let b = Suite.find name in
  let prog = Suite.program b in
  fun () ->
    ignore (Pipeline.compile ~unroll:b.Suite.unroll ~verify:false ~scheme ~machine prog)

(* The bench guard for the verifier: full-suite Global compiles with
   verification on vs off; the JSON ratio documents the overhead. *)
let compile_suite ~verify () =
  List.iter
    (fun (b : Suite.t) ->
      ignore
        (Pipeline.compile ~unroll:b.Suite.unroll ~verify ~scheme:Pipeline.Global
           ~machine:intel (Suite.program b)))
    Suite.all

(* The bench guard for the exact scheme: every suite kernel compiled
   under Optimal at the default solver budget.  The smoke guard holds
   this under a fixed wall budget so a bounding or memoization
   regression in the solver cannot silently blow up compile time. *)
let optimal_compile_suite () =
  List.iter
    (fun (b : Suite.t) ->
      ignore
        (Pipeline.compile ~unroll:b.Suite.unroll ~verify:false
           ~scheme:Pipeline.Optimal ~machine:intel (Suite.program b)))
    Suite.all

(* The bench guard for the observability hooks: full-suite Global
   compile+run with the obs bundle disabled vs fully enabled.  The
   disabled entry is the one the ≤2% budget applies to — it measures
   what the dormant hooks cost every user. *)
let obs_suite ~obs () =
  List.iter
    (fun (b : Suite.t) ->
      let obs =
        if obs then Slp_obs.Obs.create ~trace:true ~remarks:true ~profile:true ()
        else Slp_obs.Obs.none
      in
      let c =
        Pipeline.compile ~unroll:b.Suite.unroll ~verify:false ~obs
          ~scheme:Pipeline.Global ~machine:intel (Suite.program b)
      in
      ignore (Pipeline.execute ~check:false ~obs c))
    Suite.all

(* Figure 21's workload on real domains: the six NAS kernels at four
   simulated cores, executed through the harness's shared domain pool.
   The sequential twin runs the identical workload without a pool; the
   smoke guard asserts the domain entry is not slower.  On a
   single-processor host the pool spawns no workers and the two
   entries measure the same code path. *)
let fig21_nas_4core ?pool () =
  List.iter
    (fun (b : Suite.t) ->
      let c =
        Pipeline.compile ~unroll:b.Suite.unroll ~verify:false
          ~scheme:Pipeline.Global ~machine:intel (Suite.program b)
      in
      ignore (Pipeline.execute ?pool ~cores:4 ~check:false c))
    Suite.nas

(* The suite-wide wall-clock entry: every kernel compiled under the
   paper's scheme and executed on the VM — the number every future
   representation or parallelism change is judged against (the
   before/after/speedup trajectory lives in BENCH_vm.json). *)
let suite_wall_clock () =
  List.iter
    (fun (b : Suite.t) ->
      let c =
        Pipeline.compile ~unroll:b.Suite.unroll ~verify:false
          ~scheme:Pipeline.Global ~machine:intel (Suite.program b)
      in
      ignore (Pipeline.execute ~check:false c))
    Suite.all

(* Compile-service throughput: the first four suite kernels submitted
   through a live pool.  The cold entry clears the content-addressed
   cache every run (compile + execute + store); the warm entry answers
   every job from the cache.  The smoke guard holds warm at >= 5x
   cold — the memoization dividend the service exists for. *)
let serve_specs () =
  List.filteri (fun i _ -> i < 4) Suite.all
  |> List.map (fun b ->
         let prog = Suite.program b in
         {
           (Slp_serve.Proto.default_spec
              ~kernel:(Slp_ir.Program.to_source prog)
              ~name:prog.Slp_ir.Program.name)
           with
           Slp_serve.Proto.scheme = Pipeline.Global;
         })

let serve_state =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ()) "slp-serve-bench"
     in
     let cache = Slp_serve.Cache.create ~dir in
     let pool = Slp_serve.Pool.create ~cache () in
     at_exit (fun () -> Slp_serve.Pool.shutdown pool);
     let specs = serve_specs () in
     (* Pre-warm so the warm entry never measures a first compile. *)
     List.iter
       (fun spec ->
         ignore
           (Slp_serve.Pool.run_sync pool ~op:Slp_serve.Proto.Execute ~spec ()))
       specs;
     (pool, cache, specs))

let serve_jobs () =
  let pool, _, specs = Lazy.force serve_state in
  List.iter
    (fun spec ->
      ignore (Slp_serve.Pool.run_sync pool ~op:Slp_serve.Proto.Execute ~spec ()))
    specs

let serve_throughput_cold () =
  let _, cache, _ = Lazy.force serve_state in
  Slp_serve.Cache.clear cache;
  serve_jobs ()

let serve_throughput_warm () = serve_jobs ()

(* Service telemetry overhead: the warm 4-kernel batch against pools
   whose telemetry bundle is dormant (log threshold Off, no trace
   hub) vs fully enabled (Debug log ring plus a live trace hub
   collecting spans).  On an idle host both sit within a few percent
   of serve_throughput_warm (the lazy log ring is what keeps the
   enabled path there); the smoke guard is a 5x gross backstop
   because sub-millisecond cross-entry ratios swing +/-60% under
   load — see the comment in bench/smoke.sh. *)
let telemetry_pool ~tag ~level ~hub =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ()) ("slp-telem-bench-" ^ tag)
     in
     let cache = Slp_serve.Cache.create ~dir in
     let telem =
       Slp_serve.Telemetry.create ~log:(Slp_obs.Log.create ~level ()) ?hub ()
     in
     let pool = Slp_serve.Pool.create ~telem ~cache () in
     at_exit (fun () -> Slp_serve.Pool.shutdown pool);
     let specs = serve_specs () in
     List.iter
       (fun spec ->
         ignore
           (Slp_serve.Pool.run_sync pool ~op:Slp_serve.Proto.Execute ~spec ()))
       specs;
     (pool, specs))

let telemetry_off_state = telemetry_pool ~tag:"off" ~level:Slp_obs.Log.Off ~hub:None

let telemetry_on_state =
  telemetry_pool ~tag:"on" ~level:Slp_obs.Log.Debug
    ~hub:(Some (Slp_obs.Tracehub.create ()))

let telemetry_jobs state () =
  let pool, specs = Lazy.force state in
  List.iter
    (fun spec ->
      ignore (Slp_serve.Pool.run_sync pool ~op:Slp_serve.Proto.Execute ~spec ()))
    specs

(* The Figure 15 block, used by the phase and ablation benchmarks. *)
let fig15 () =
  let open Slp_ir in
  let env = Env.create () in
  List.iter
    (fun v -> Env.declare_scalar env v Types.F64)
    [ "a"; "b"; "c"; "d"; "g"; "h"; "q"; "r" ];
  Env.declare_array env "A" Types.F64 [ 1024 ];
  Env.declare_array env "B" Types.F64 [ 4096 ];
  let open Expr.Infix in
  let i4 = 4 @* i "i" and i2 = 2 @* i "i" in
  ( env,
    Block.of_rhs ~label:"fig15"
      [
        (Operand.Scalar "a", arr "A" [ i "i" ]);
        (Operand.Scalar "c", sc "a" * arr "B" [ i4 ]);
        (Operand.Scalar "g", sc "q" * arr "B" [ i4 @+ -2 ]);
        (Operand.Scalar "b", arr "A" [ i "i" @+ 1 ]);
        (Operand.Scalar "d", sc "b" * arr "B" [ i4 @+ 4 ]);
        (Operand.Scalar "h", sc "r" * arr "B" [ i4 @+ 2 ]);
        (Operand.Elem ("A", [ i2 ]), sc "d" + (sc "a" * sc "c"));
        (Operand.Elem ("A", [ i2 @+ 2 ]), sc "g" + (sc "r" * sc "h"));
      ] )

let config = Config.make ~datapath_bits:128 ()

let grouping_with options () =
  let env, block = fig15 () in
  ignore (Grouping.run ~options ~env ~config block)

let all_tests =
  let t name f = (name, f) in
  [
    (* Tables: model construction and suite parsing. *)
    t "table1_intel_model" (fun () -> ignore (Machine.describe intel));
    t "table2_amd_model" (fun () -> ignore (Machine.describe amd));
    t "table3_suite" (fun () -> List.iter (fun b -> ignore (Suite.program b)) Suite.all);
    (* Figure 16: the competing schemes end to end on a reuse-heavy kernel. *)
    t "fig16_scalar_milc" (run_scheme ~scheme:Pipeline.Scalar "milc");
    t "fig16_native_milc" (run_scheme ~scheme:Pipeline.Native "milc");
    t "fig16_slp_milc" (run_scheme ~scheme:Pipeline.Slp "milc");
    t "fig16_global_milc" (run_scheme ~scheme:Pipeline.Global "milc");
    (* Figure 17: counter extraction on the widest-gap kernel. *)
    t "fig17_counters_povray" (fun () ->
        let b = Suite.find "povray" in
        let prog = Suite.program b in
        let c =
          Pipeline.compile ~unroll:b.Suite.unroll ~verify:false ~scheme:Pipeline.Global
            ~machine:intel prog
        in
        let r = Pipeline.execute ~check:false c in
        ignore (Slp_vm.Counters.packing_instructions r.Pipeline.counters));
    (* Figure 18: hypothetical datapath widths (iterative grouping depth). *)
    t "fig18_width_256" (fun () ->
        let machine = Machine.with_simd_bits intel 256 in
        let b = Suite.find "sp" in
        let c =
          Pipeline.compile ~unroll:(2 * b.Suite.unroll) ~verify:false
            ~scheme:Pipeline.Global ~machine (Suite.program b)
        in
        ignore (Pipeline.execute ~check:false c));
    t "fig18_width_1024" (fun () ->
        let machine = Machine.with_simd_bits intel 1024 in
        let b = Suite.find "sp" in
        let c =
          Pipeline.compile ~unroll:(8 * b.Suite.unroll) ~verify:false
            ~scheme:Pipeline.Global ~machine (Suite.program b)
        in
        ignore (Pipeline.execute ~check:false c));
    (* Figure 19: the data layout stage (replication + arbitration). *)
    t "fig19_global_calculix" (run_scheme ~scheme:Pipeline.Global "calculix");
    t "fig19_layout_calculix" (run_scheme ~scheme:Pipeline.Global_layout "calculix");
    (* Figure 20: the AMD machine model. *)
    t "fig20_amd_global_milc" (run_scheme ~machine:amd ~scheme:Pipeline.Global "milc");
    (* Figure 21: multicore execution. *)
    t "fig21_multicore_sp_4c" (run_scheme ~cores:4 ~scheme:Pipeline.Global "sp");
    t "fig21_multicore_sp_12c" (run_scheme ~cores:12 ~scheme:Pipeline.Global "sp");
    t "fig21_sequential_4core" (fig21_nas_4core ?pool:None);
    t "fig21_domains_4core" (fun () ->
        fig21_nas_4core ~pool:(Slp_harness.Runner.domain_pool ()) ());
    (* Suite-wide wall clock: all 16 kernels, Global, compile+execute. *)
    t "suite_wall_clock" suite_wall_clock;
    (* Compile-service throughput: cold recompiles, warm answers from
       the content-addressed cache (see bench/smoke.sh guard). *)
    t "serve_throughput_cold" serve_throughput_cold;
    t "serve_throughput_warm" serve_throughput_warm;
    (* Telemetry overhead on the service hot path: dormant vs fully
       enabled instruments (see bench/smoke.sh guards). *)
    t "telemetry_overhead_suite_off" (telemetry_jobs telemetry_off_state);
    t "telemetry_overhead_suite_on" (telemetry_jobs telemetry_on_state);
    (* Compilation overhead (the paper's +27% claim). *)
    t "compile_overhead_slp" (compile_only ~scheme:Pipeline.Slp "cactusADM");
    t "compile_overhead_global" (compile_only ~scheme:Pipeline.Global "cactusADM");
    (* Verifier overhead guard: the on/off gap across the whole suite
       must stay a small fraction of compile time (see EXPERIMENTS.md). *)
    t "verify_overhead_suite_off" (compile_suite ~verify:false);
    t "verify_overhead_suite_on" (compile_suite ~verify:true);
    (* Exact-solver compile-time guard: the whole suite under Optimal
       must stay under the fixed smoke budget (see bench/smoke.sh). *)
    t "optimal_compile_suite" optimal_compile_suite;
    (* Observability overhead guard: _off is compile+run with the
       dormant hooks (must stay within ~2% of the pre-obs baseline);
       _on is the same work with trace+remarks+profiler all enabled. *)
    t "obs_overhead_suite_off" (obs_suite ~obs:false);
    t "obs_overhead_suite_on" (obs_suite ~obs:true);
    (* Phase benchmarks. *)
    t "phase_grouping_fig15" (fun () ->
        let env, block = fig15 () in
        ignore (Grouping.run ~env ~config block));
    t "phase_scheduling_fig15" (fun () ->
        let env, block = fig15 () in
        let g = Grouping.run ~env ~config block in
        ignore (Schedule.run ~env ~config block g));
    t "phase_vm_scalar_soplex" (fun () ->
        ignore (Slp_vm.Scalar_exec.run ~machine:intel (kernel "soplex")));
    (* Ablations (DESIGN.md). *)
    t "ablation_recompute_weights_on"
      (grouping_with { Grouping.default_options with Grouping.recompute_weights = true });
    t "ablation_recompute_weights_off"
      (grouping_with { Grouping.default_options with Grouping.recompute_weights = false });
    t "ablation_elimination_max_degree"
      (grouping_with
         { Grouping.default_options with
           Grouping.elimination = Slp_core.Groupgraph.Max_degree });
    t "ablation_elimination_arbitrary"
      (grouping_with
         { Grouping.default_options with
           Grouping.elimination = Slp_core.Groupgraph.Arbitrary });
    t "ablation_scatter_penalty_off"
      (grouping_with { Grouping.default_options with Grouping.scatter_penalty = 0.0 });
    t "ablation_scheduling_reuse_driven" (fun () ->
        let env, block = fig15 () in
        let g = Grouping.run ~env ~config block in
        ignore
          (Schedule.run
             ~options:
               { Schedule.selection = Schedule.Reuse_driven;
                 ordering_search = Schedule.Direct_reuse_only }
             ~env ~config block g));
    t "ablation_scheduling_program_order" (fun () ->
        let env, block = fig15 () in
        let g = Grouping.run ~env ~config block in
        ignore
          (Schedule.run
             ~options:
               { Schedule.selection = Schedule.Program_order;
                 ordering_search = Schedule.Direct_reuse_only }
             ~env ~config block g));
    t "ablation_ordering_exhaustive" (fun () ->
        let env, block = fig15 () in
        let g = Grouping.run ~env ~config block in
        ignore
          (Schedule.run
             ~options:
               { Schedule.selection = Schedule.Reuse_driven;
                 ordering_search = Schedule.Exhaustive }
             ~env ~config block g));
  ]

(* Natural ("numeric by name groups") ordering: digit runs compare as
   numbers, so fig18_width_256 sorts before fig18_width_1024 and fig9
   before fig16. *)
let nat_key name =
  let n = String.length name in
  let is_digit c = c >= '0' && c <= '9' in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let j = ref i in
      if is_digit name.[i] then begin
        while !j < n && is_digit name.[!j] do
          incr j
        done;
        go !j (Either.Right (int_of_string (String.sub name i (!j - i))) :: acc)
      end
      else begin
        while !j < n && not (is_digit name.[!j]) do
          incr j
        done;
        go !j (Either.Left (String.sub name i (!j - i)) :: acc)
      end
    end
  in
  go 0 []

let nat_compare a b =
  let rec cmp xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
        let c =
          match (x, y) with
          | Either.Right a, Either.Right b -> Stdlib.compare (a : int) b
          | Either.Left a, Either.Left b -> String.compare a b
          | Either.Right _, Either.Left _ -> -1
          | Either.Left _, Either.Right _ -> 1
        in
        if c <> 0 then c else cmp xs ys
  in
  cmp (nat_key a) (nat_key b)

(* Results JSON is a flat name -> ns/run map, one pair per line; the
   same representation is accepted back via --baseline. *)
let write_json path ?baseline rows =
  let oc = open_out path in
  let pair (name, e) = Printf.sprintf "    %S: %.1f" name e in
  let obj key rows =
    if rows = [] then []
    else
      (Printf.sprintf "  %S: {" key :: [ String.concat ",\n" (List.map pair rows) ])
      @ [ "  }" ]
  in
  let sections =
    match baseline with
    | None -> [ String.concat "\n" (obj "results" rows) ]
    | Some base ->
        let before =
          List.filter_map
            (fun (name, _) ->
              Option.map (fun b -> (name, b)) (List.assoc_opt name base))
            rows
        in
        let speedup =
          List.filter_map
            (fun (name, e) ->
              match List.assoc_opt name base with
              | Some b when e > 0.0 -> Some (name, b /. e)
              | Some _ | None -> None)
            rows
        in
        List.map
          (fun s -> String.concat "\n" s)
          [ obj "before" before; obj "after" rows; obj "speedup" speedup ]
        |> List.filter (fun s -> s <> "")
  in
  Printf.fprintf oc "{\n  \"unit\": \"ns/run\",\n%s\n}\n"
    (String.concat ",\n" sections);
  close_out oc

let read_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       match Scanf.sscanf line " %S : %f" (fun n e -> (n, e)) with
       | pair -> rows := pair :: !rows
       | exception (Scanf.Scan_failure _ | End_of_file | Failure _) -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let () =
  let json_path = ref "" in
  let baseline_path = ref "" in
  let quota = ref 0.25 in
  let limit = ref 200 in
  let names = ref [] in
  let spec =
    [
      ("--json", Arg.Set_string json_path, "PATH write the results as JSON");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "PATH previous --json output to compare against (adds before/speedup)" );
      ( "--quota",
        Arg.Set_float quota,
        "SECONDS per-benchmark time quota (default 0.25)" );
      ("--limit", Arg.Set_int limit, "N max runs per benchmark (default 200)");
    ]
  in
  Arg.parse spec
    (fun n -> names := n :: !names)
    "bench [options] [benchmark names...]\n\
     With no names, every benchmark runs; otherwise only the named ones.";
  let selected =
    match !names with
    | [] -> all_tests
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n all_tests) then begin
              Printf.eprintf "bench: unknown benchmark %s\n" n;
              exit 2
            end)
          names;
        List.filter (fun (n, _) -> List.mem n names) all_tests
  in
  (* Force pool state (spawn + pre-warm) outside the measured loop:
     at smoke quotas an entry may run exactly once, and a lazy cold
     compile forced inside that one iteration would be the whole
     measurement. *)
  let warmups =
    [
      ("serve_throughput_cold", fun () -> ignore (Lazy.force serve_state));
      ("serve_throughput_warm", fun () -> ignore (Lazy.force serve_state));
      ( "telemetry_overhead_suite_off",
        fun () -> ignore (Lazy.force telemetry_off_state) );
      ( "telemetry_overhead_suite_on",
        fun () -> ignore (Lazy.force telemetry_on_state) );
    ]
  in
  List.iter
    (fun (name, warm) -> if List.mem_assoc name selected then warm ())
    warmups;
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) selected
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:!limit ~quota:(Time.second !quota) () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"slp" tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let strip name =
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        match Analyze.OLS.estimates est with
        | Some (e :: _) -> (strip name, e) :: acc
        | Some [] | None -> (strip name, nan) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> nat_compare a b)
  in
  let baseline =
    if !baseline_path = "" then None else Some (read_baseline !baseline_path)
  in
  List.iter
    (fun (name, e) ->
      match Option.map (List.assoc_opt name) baseline with
      | Some (Some b) when e > 0.0 ->
          Printf.printf "%-40s %14.0f ns/run  %14.0f before  %6.2fx\n" name e b
            (b /. e)
      | _ -> Printf.printf "%-40s %14.0f ns/run\n" name e)
    rows;
  if !json_path <> "" then write_json !json_path ?baseline rows
