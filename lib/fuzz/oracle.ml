open Slp_ir
module Pipeline = Slp_pipeline.Pipeline
module Machine = Slp_machine.Machine
module Vm = Slp_vm

type failure = { scheme : string; machine : string; stage : string; message : string }

type drift = {
  machine : string;
  predicted : (string * float) list;
  measured : (string * float) list;
}

type outcome = { failures : failure list; drifts : drift list }

let default_machines = [ Machine.intel_dunnington; Machine.amd_phenom_ii ]
let failed o = o.failures <> []

let pp_failure ppf (f : failure) =
  Format.fprintf ppf "[%s/%s/%s] %s" f.machine f.scheme f.stage f.message

(* -- deliberate miscompile for shrinker tests ---------------------- *)

let flip_binop = function
  | Types.Add -> Types.Sub
  | Types.Sub -> Types.Add
  | Types.Mul -> Types.Div
  | Types.Div -> Types.Mul
  | Types.Min -> Types.Max
  | Types.Max -> Types.Min

let miscompile (p : Vm.Visa.program) =
  let found = ref false in
  let mutate_instr (i : Vm.Visa.instr) =
    match i with
    | Vm.Visa.Vbin { dst; op; a; b } when not !found ->
        found := true;
        Vm.Visa.Vbin { dst; op = flip_binop op; a; b }
    | other -> other
  in
  let rec mutate_items items =
    List.map
      (function
        | Vm.Visa.Block instrs -> Vm.Visa.Block (List.map mutate_instr instrs)
        | Vm.Visa.Loop l -> Vm.Visa.Loop { l with Vm.Visa.body = mutate_items l.Vm.Visa.body })
      items
  in
  { p with Vm.Visa.body = mutate_items p.Vm.Visa.body }

(* -- comparison helpers -------------------------------------------- *)

let feq x y = Float.equal x y || Float.abs (x -. y) <= 1e-9

(* First diverging array element between the scalar-reference and the
   vectorized memory, restricted to the arrays the source program
   declares (layout replicas are derived state). *)
let memory_diff ~env ref_mem vec_mem =
  List.find_map
    (fun (name, _) ->
      let a = Vm.Memory.array_values ref_mem name in
      let b = Vm.Memory.array_values vec_mem name in
      if Float.Array.length a <> Float.Array.length b then
        Some
          (Printf.sprintf "array %s: size %d vs %d" name (Float.Array.length a)
             (Float.Array.length b))
      else
        let rec scan i =
          if i >= Float.Array.length a then None
          else if feq (Float.Array.get a i) (Float.Array.get b i) then scan (i + 1)
          else
            Some
              (Printf.sprintf "array %s[%d]: scalar %.17g vs vectorized %.17g" name i
                 (Float.Array.get a i) (Float.Array.get b i))
        in
        scan 0)
    (Env.arrays env)

(* A scalar's final slot value is architecturally defined only when
   every block that writes it must materialise it (liveness contract:
   values are unpacked from vector registers only when demanded).
   Scalars never written compare trivially (both sides zero). *)
let observable_scalars prog =
  let liveness = Slp_analysis.Liveness.compute prog in
  let blocks = Program.blocks prog in
  List.filter
    (fun name ->
      let defining =
        List.filter (fun b -> List.mem name (Block.scalar_defs b)) blocks
      in
      List.for_all (fun b -> Slp_analysis.Liveness.demanded liveness b name) defining)
    (List.map fst (Env.scalars prog.Program.env))

let scalar_diff ~names ref_mem vec_mem =
  List.find_map
    (fun name ->
      let a = Vm.Memory.scalar ref_mem name in
      let b = Vm.Memory.scalar vec_mem name in
      if feq a b then None
      else
        Some
          (Printf.sprintf "scalar %s: scalar-exec %.17g vs vectorized %.17g" name a b))
    names

(* -- the oracle ---------------------------------------------------- *)

let predicted_cost (plan : Slp_core.Driver.program_plan) =
  List.fold_left
    (fun acc (bp : Slp_core.Driver.block_plan) ->
      match bp.Slp_core.Driver.estimate with
      | Some e ->
          acc
          +.
          if bp.Slp_core.Driver.schedule <> None then e.Slp_core.Cost.vector_cost
          else e.Slp_core.Cost.scalar_cost
      | None -> acc)
    0.0 plan.Slp_core.Driver.plans

let run ?(schemes = Pipeline.all_schemes) ?(machines = default_machines) ?(seed = 42)
    ?solver_steps ?(mutate = fun v -> v) (prog : Program.t) =
  match Program.validate prog with
  | Error msg ->
      {
        failures = [ { scheme = "-"; machine = "-"; stage = "validate"; message = msg } ];
        drifts = [];
      }
  | Ok () ->
      let failures = ref [] and drifts = ref [] in
      let scalar_names = observable_scalars prog in
      let fail ~scheme ~machine ~stage message =
        failures := { scheme; machine; stage; message } :: !failures
      in
      (* Dynamic dependence soundness: replay the program's memory
         accesses against the static analyzer's verdicts.  Scheme- and
         machine-independent (addresses are control-flow-data-free), so
         one trace per case suffices. *)
      (match Slp_depend.Dtrace.check prog with
      | { Slp_depend.Dtrace.violations = []; _ } -> ()
      | { Slp_depend.Dtrace.violations; _ } ->
          List.iter
            (fun msg -> fail ~scheme:"-" ~machine:"-" ~stage:"dep-soundness" msg)
            violations
      | exception exn ->
          fail ~scheme:"-" ~machine:"-" ~stage:"dep-soundness"
            (Printexc.to_string exn));
      List.iter
        (fun (machine : Machine.t) ->
          let mname = machine.Machine.name in
          (* The scalar oracle runs the *original* program, so the
             unroller is inside the tested surface, not the oracle. *)
          let reference = Vm.Scalar_exec.run ~seed ~machine prog in
          let ref_cycles = Vm.Counters.total_cycles reference.Vm.Scalar_exec.counters in
          if not (Float.is_finite ref_cycles) then
            fail ~scheme:"Scalar" ~machine:mname ~stage:"cycles"
              (Printf.sprintf "non-finite scalar cycles %f" ref_cycles);
          let predicted = ref [] and measured = ref [] in
          List.iter
            (fun scheme ->
              let sname = Pipeline.scheme_name scheme in
              match
                Pipeline.compile ~verify:true ?solver_steps ~scheme ~machine
                  prog
              with
              | exception Slp_verify.Verify.Verification_failed (what, report) ->
                  fail ~scheme:sname ~machine:mname ~stage:"verify"
                    (Format.asprintf "%s:@ %a" what Slp_verify.Verify.pp_report report)
              | exception Invalid_argument msg ->
                  fail ~scheme:sname ~machine:mname ~stage:"compile" msg
              | exception exn ->
                  fail ~scheme:sname ~machine:mname ~stage:"compile"
                    (Printexc.to_string exn)
              | compiled -> begin
                  (match compiled.Pipeline.plan with
                  | Some plan ->
                      predicted := (sname, predicted_cost plan) :: !predicted
                  | None -> ());
                  match compiled.Pipeline.vector with
                  | None ->
                      (* The Scalar scheme *is* the oracle; measure the
                         prepared (unrolled) program for drift and
                         finiteness only. *)
                      let r =
                        Vm.Scalar_exec.run ~seed ~machine compiled.Pipeline.reference
                      in
                      let cycles = Vm.Counters.total_cycles r.Vm.Scalar_exec.counters in
                      measured := (sname, cycles) :: !measured;
                      if not (Float.is_finite cycles) then
                        fail ~scheme:sname ~machine:mname ~stage:"cycles"
                          (Printf.sprintf "non-finite cycles %f" cycles)
                  | Some vprog -> begin
                      let vprog = mutate vprog in
                      let memory =
                        Vm.Memory.create ~scalar_layout:compiled.Pipeline.scalar_offsets
                          ~env:vprog.Vm.Visa.env ()
                      in
                      Vm.Memory.init_arrays memory ~seed;
                      match Vm.Vector_exec.run ~seed ~memory ~machine vprog with
                      | exception exn ->
                          fail ~scheme:sname ~machine:mname ~stage:"execute"
                            (Printexc.to_string exn)
                      | r ->
                          let cycles =
                            Vm.Counters.total_cycles r.Vm.Vector_exec.counters
                          in
                          measured := (sname, cycles) :: !measured;
                          if not (Float.is_finite cycles) then
                            fail ~scheme:sname ~machine:mname ~stage:"cycles"
                              (Printf.sprintf "non-finite cycles %f" cycles);
                          let ref_mem = reference.Vm.Scalar_exec.memory in
                          let vec_mem = r.Vm.Vector_exec.memory in
                          (match memory_diff ~env:prog.Program.env ref_mem vec_mem with
                          | Some msg ->
                              fail ~scheme:sname ~machine:mname ~stage:"memory" msg
                          | None -> ());
                          (match scalar_diff ~names:scalar_names ref_mem vec_mem with
                          | Some msg ->
                              fail ~scheme:sname ~machine:mname ~stage:"scalars" msg
                          | None -> ())
                    end
                end)
            schemes;
          drifts :=
            { machine = mname; predicted = List.rev !predicted; measured = List.rev !measured }
            :: !drifts)
        machines;
      { failures = List.rev !failures; drifts = List.rev !drifts }
