(** The differential oracle stack.

    A kernel is compiled through {!Slp_pipeline.Pipeline.compile} under
    every requested scheme and machine model with the pass-by-pass
    verifier enabled, then executed; the run fails when

    - the program does not validate (a generator bug),
    - compilation raises (including {!Slp_verify.Verify.Verification_failed}
      — no verifier diagnostic may fire on generator output),
    - execution raises,
    - final array memory or final observable-scalar values diverge
      from the scalar reference execution, or
    - simulated cycle counts are not finite.

    "Observable" scalars follow the repository's liveness contract
    ({!Slp_analysis.Liveness}): a scalar is unpacked from vector
    registers only where it is demanded, so the oracle compares a
    scalar's final slot value only when every block defining it must
    materialise it.  The generator routes temporaries into array
    stores (an epilogue block), so scalar dataflow is still checked
    end-to-end through memory even where slots are unspecified.

    Alongside the pass/fail verdict, every run records the cost
    model's predicted scheme ordering next to the measured one so
    cost-model drift can be analysed offline without failing the
    fuzzer. *)

open Slp_ir
module Pipeline = Slp_pipeline.Pipeline

type failure = {
  scheme : string;  (** Scheme name, or ["-"] for program-level failures. *)
  machine : string;
  stage : string;
      (** [validate], [compile], [verify], [execute], [memory],
          [scalars] or [cycles]. *)
  message : string;
}

type drift = {
  machine : string;
  predicted : (string * float) list;
      (** Scheme name -> cost-model units (sum over planned blocks);
          vectorizing schemes only. *)
  measured : (string * float) list;  (** Scheme name -> simulated cycles. *)
}

type outcome = { failures : failure list; drifts : drift list }

val default_machines : Slp_machine.Machine.t list
(** The paper's two evaluation machines. *)

val run :
  ?schemes:Pipeline.scheme list ->
  ?machines:Slp_machine.Machine.t list ->
  ?seed:int ->
  ?solver_steps:int ->
  ?mutate:(Slp_vm.Visa.program -> Slp_vm.Visa.program) ->
  Program.t ->
  outcome
(** [mutate] (identity by default) is applied to each compiled vector
    program before execution — the hook used to inject deliberate
    miscompiles when testing the shrinker against the real oracle.

    [solver_steps] caps the [Optimal] scheme's per-block exact search
    (a fuzz campaign cannot afford a pathological kernel holding the
    full default budget); exhaustion is an advisory bail to the
    heuristic, which the oracle still checks end-to-end. *)

val failed : outcome -> bool
val pp_failure : Format.formatter -> failure -> unit

val miscompile : Slp_vm.Visa.program -> Slp_vm.Visa.program
(** A deliberate miscompile for shrinker tests: flips the operator of
    the first vector arithmetic instruction (Add<->Sub, Mul<->Div,
    Min<->Max).  Programs whose vector code contains no arithmetic are
    returned unchanged. *)
