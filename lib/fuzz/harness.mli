(** The fuzzing campaign driver: generate, cross-check, shrink.

    A campaign is fully determined by its seed: case [i] draws from
    the [i]-th split of a master {!Slp_util.Prng.t}, so any failing
    case is replayable from [(seed, index)] alone — independently of
    how many cases ran before or after it. *)

open Slp_ir
module Pipeline = Slp_pipeline.Pipeline

type config = {
  seed : int;
  count : int;
  gen_options : Gen.options;
  schemes : Pipeline.scheme list;
  machines : Slp_machine.Machine.t list;
  shrink_checks : int;  (** Predicate-evaluation budget per shrink. *)
  solver_steps : int option;
      (** Cap on the [Optimal] scheme's per-block exact search;
          [None] leaves the pipeline default. *)
}

val default_config : config
(** Seed 42, 300 cases, all six schemes, both machines, solver fuel
    capped at 4000 nodes per block. *)

type failure_report = {
  case_index : int;
  seed : int;
  program : Program.t;  (** As generated. *)
  shrunk : Program.t;  (** Minimal reproducer (still failing). *)
  failures : Oracle.failure list;  (** Of the original program. *)
}

type stats = {
  cases : int;
  reports : failure_report list;
  drift_total : int;
      (** Machine-level drift records with at least two measured schemes. *)
  drift_agreements : int;
      (** Records where the cost model's cheapest vectorizing scheme
          is also the measured-fastest one. *)
}

val case_program : config -> int -> Program.t
(** The program of case [index] under this config — replay without
    running the campaign. *)

val agreement : Oracle.drift -> bool option
(** [None] when fewer than two schemes have both predictions and
    measurements. *)

val run : ?on_case:(int -> Program.t -> unit) -> config -> stats
(** Runs the campaign; failures are shrunk with the oracle itself as
    the predicate (same schemes/machines). *)

val pp_report : Format.formatter -> failure_report -> unit
(** Failure list, replay coordinates, and the shrunken kernel as
    re-parseable source. *)
