open Slp_ir
module Pipeline = Slp_pipeline.Pipeline
module Prng = Slp_util.Prng

type config = {
  seed : int;
  count : int;
  gen_options : Gen.options;
  schemes : Pipeline.scheme list;
  machines : Slp_machine.Machine.t list;
  shrink_checks : int;
  solver_steps : int option;
}

let default_config =
  {
    seed = 42;
    count = 300;
    gen_options = Gen.default_options;
    schemes = Pipeline.all_schemes;
    machines = Oracle.default_machines;
    shrink_checks = 400;
    (* A fifth of the default budget: generated kernels are small, so
       the exact search still proves optimality on almost all of them,
       while a pathological draw bails instead of stalling the
       campaign. *)
    solver_steps = Some 4_000;
  }

type failure_report = {
  case_index : int;
  seed : int;
  program : Program.t;
  shrunk : Program.t;
  failures : Oracle.failure list;
}

type stats = {
  cases : int;
  reports : failure_report list;
  drift_total : int;
  drift_agreements : int;
}

(* Case [i] owns the [i]-th split of the master stream: replayable
   from (seed, i) without regenerating earlier cases' programs. *)
let case_prng (config : config) index =
  let master = Prng.create config.seed in
  let rec skip k = if k = 0 then Prng.split master else (ignore (Prng.split master); skip (k - 1)) in
  skip index

let case_program (config : config) index =
  Gen.program ~options:config.gen_options
    ~name:(Printf.sprintf "fuzz_%d_%d" config.seed index)
    (case_prng config index)

let argmin = function
  | [] -> None
  | (n, v) :: rest ->
      Some
        (fst
           (List.fold_left
              (fun (bn, bv) (n', v') -> if v' < bv then (n', v') else (bn, bv))
              (n, v) rest))

let agreement (d : Oracle.drift) =
  (* Compare only schemes present on both sides: the cost model only
     speaks for schemes that produced a plan. *)
  let both =
    List.filter_map
      (fun (n, p) ->
        Option.map (fun m -> (n, p, m)) (List.assoc_opt n d.Oracle.measured))
      d.Oracle.predicted
  in
  if List.length both < 2 then None
  else
    let pred = argmin (List.map (fun (n, p, _) -> (n, p)) both) in
    let meas = argmin (List.map (fun (n, _, m) -> (n, m)) both) in
    Some (pred = meas)

let run ?(on_case = fun _ _ -> ()) config =
  let reports = ref [] in
  let drift_total = ref 0 and drift_agreements = ref 0 in
  for index = 0 to config.count - 1 do
    let program = case_program config index in
    on_case index program;
    let outcome =
      Oracle.run ~schemes:config.schemes ~machines:config.machines
        ?solver_steps:config.solver_steps program
    in
    List.iter
      (fun d ->
        match agreement d with
        | Some agree ->
            incr drift_total;
            if agree then incr drift_agreements
        | None -> ())
      outcome.Oracle.drifts;
    if Oracle.failed outcome then begin
      let still_fails p =
        Oracle.failed
          (Oracle.run ~schemes:config.schemes ~machines:config.machines
             ?solver_steps:config.solver_steps p)
      in
      let shrunk = Shrink.run ~max_checks:config.shrink_checks ~still_fails program in
      reports :=
        {
          case_index = index;
          seed = config.seed;
          program;
          shrunk;
          failures = outcome.Oracle.failures;
        }
        :: !reports
    end
  done;
  {
    cases = config.count;
    reports = List.rev !reports;
    drift_total = !drift_total;
    drift_agreements = !drift_agreements;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>case %d (replay: --seed %d --index %d), %d statement(s) after \
     shrinking@,failures of the original kernel:@,"
    r.case_index r.seed r.case_index
    (Program.stmt_count r.shrunk);
  List.iter (Format.fprintf ppf "  %a@," Oracle.pp_failure) r.failures;
  Format.fprintf ppf "minimal reproducer (kernel source):@,%s@]"
    (Program.to_source r.shrunk)
