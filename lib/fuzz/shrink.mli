(** Automatic test-case reduction.

    Given a kernel on which some predicate holds (typically "the
    differential oracle reports a failure"), the shrinker greedily
    searches for a smaller kernel on which it still holds: it deletes
    statements, deletes whole loop levels (substituting the removed
    index by its lower bound), narrows loop bounds toward a single
    iteration, replaces statement right-hand sides by their subtrees,
    and finally drops unused declarations.  Each pass restarts from
    the first successful reduction, so the result is a local minimum:
    no single remaining deletion reproduces the failure.

    Candidates are always normalised (adjacent blocks merged,
    statements renumbered, empty blocks and loops dropped) so every
    intermediate program is valid and prints as re-parseable source. *)

open Slp_ir

val normalize : Program.t -> Program.t
(** Merge adjacent statement blocks, renumber statement ids 1..n per
    block, drop empty blocks and empty loops, and remove declarations
    no statement references. *)

val run :
  ?max_checks:int -> still_fails:(Program.t -> bool) -> Program.t -> Program.t
(** [run ~still_fails p] requires [still_fails p = true] and returns a
    normalised program on which [still_fails] still holds.
    [max_checks] (default 1000) bounds predicate evaluations; on
    exhaustion the best program found so far is returned. *)
