open Slp_ir
module Prng = Slp_util.Prng

type options = {
  max_stmts : int;
  max_spatial_nest : int;
  allow_f32 : bool;
  allow_rank2 : bool;
  allow_prologue : bool;
}

let default_options =
  {
    max_stmts = 8;
    max_spatial_nest = 2;
    allow_f32 = true;
    allow_rank2 = true;
    allow_prologue = true;
  }

let pick prng l = List.nth l (Prng.int prng (List.length l))

(* Weighted choice: [wpick prng [(3, a); (1, b)]] returns [a] 3/4 of
   the time. *)
let wpick prng choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let n = Prng.int prng total in
  let rec go n = function
    | [] -> assert false
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go n choices

(* -- iteration boxes ----------------------------------------------- *)

(* [box]: innermost-first (index, (vmin, vmax)) — the inclusive value
   range each enclosing loop index takes. *)
type box = (string * (int * int)) list

let range_of (box : box) a =
  List.fold_left
    (fun (mn, mx) (v, k) ->
      let lo, hi = List.assoc v box in
      if k >= 0 then (mn + (k * lo), mx + (k * hi)) else (mn + (k * hi), mx + (k * lo)))
    (Affine.const_part a, Affine.const_part a)
    (Affine.terms a)

(* An affine subscript provably inside [0, dim - 1 - extra] over the
   whole box; [extra] reserves headroom for lane shifts (+0..+extra).
   Falls back to a constant subscript when the requested term shape
   cannot fit. *)
let subscript prng ~(box : box) ~dim ~extra =
  let with_offset terms =
    let base = Affine.make terms 0 in
    let mn, mx = range_of box base in
    let lo_off = -mn and hi_off = dim - 1 - extra - mx in
    if hi_off < lo_off then None
    else
      let span = hi_off - lo_off in
      (* Prefer offsets near the low edge: small constants exercise
         misalignment without wasting the array's footprint. *)
      let off =
        if Prng.bool prng then lo_off + Prng.int prng (min span 6 + 1)
        else lo_off + Prng.int prng (span + 1)
      in
      Some (Affine.add base (Affine.const off))
  in
  let names = List.map fst box in
  let candidates =
    match names with
    | [] -> []
    | [ i0 ] -> [ (6, [ (i0, 1) ]); (2, [ (i0, 2) ]); (1, [ (i0, 3) ]) ]
    | i0 :: i1 :: _ ->
        [
          (6, [ (i0, 1) ]);
          (2, [ (i0, 2) ]);
          (1, [ (i0, 3) ]);
          (2, [ (i0, 1); (i1, 1) ]);
          (1, [ (i1, 1) ]);
        ]
  in
  let const_fallback () = Affine.const (Prng.int prng (max 1 (dim - extra))) in
  if candidates = [] then const_fallback ()
  else
    match with_offset (wpick prng candidates) with
    | Some a -> a
    | None -> begin
        (* Simplest stride-1 shape, then a constant. *)
        match with_offset [ (List.hd names, 1) ] with
        | Some a -> a
        | None -> const_fallback ()
      end

(* -- expression skeletons ------------------------------------------ *)

(* The operator skeleton shared by every statement of an isomorphic
   group; leaves are instantiation slots. *)
type shape = L | U of Types.unop * shape | B of Types.binop * shape * shape

let rec gen_shape prng depth =
  if depth = 0 then L
  else
    wpick prng
      [
        (2, `Leaf);
        (1, `Un);
        (6, `Bin);
      ]
    |> function
    | `Leaf -> L
    | `Un ->
        let op = wpick prng [ (3, Types.Neg); (3, Types.Abs); (1, Types.Sqrt) ] in
        U (op, gen_shape prng (depth - 1))
    | `Bin ->
        let op =
          wpick prng
            [
              (6, Types.Add);
              (5, Types.Sub);
              (5, Types.Mul);
              (2, Types.Min);
              (2, Types.Max);
              (1, Types.Div);
            ]
        in
        B (op, gen_shape prng (depth - 1), gen_shape prng (depth - 1))

let rec leaf_count = function
  | L -> 1
  | U (_, s) -> leaf_count s
  | B (_, a, b) -> leaf_count a + leaf_count b

let build shape leaves =
  let rec go shape leaves =
    match shape with
    | L -> (Expr.Leaf (List.hd leaves), List.tl leaves)
    | U (op, s) ->
        let e, rest = go s leaves in
        (Expr.Un (op, e), rest)
    | B (op, a, b) ->
        let ea, rest = go a leaves in
        let eb, rest = go b rest in
        (Expr.Bin (op, ea, eb), rest)
  in
  fst (go shape leaves)

(* -- operands ------------------------------------------------------ *)

type ctx = {
  prng : Prng.t;
  box : box;
  arrays : (string * int list) list;
  inputs : string list;  (** Read-only scalar names. *)
  temps : string list;  (** Writable scalar names. *)
  mutable defined : string list;  (** Temps already written in this block. *)
}

let gen_elem ctx ~extra =
  let name, dims = pick ctx.prng ctx.arrays in
  let rank = List.length dims in
  let subs =
    List.mapi
      (fun d dim ->
        subscript ctx.prng ~box:ctx.box ~dim ~extra:(if d = rank - 1 then extra else 0))
      dims
  in
  (name, subs)

let gen_operand ctx ~extra =
  match wpick ctx.prng [ (8, `Arr); (4, `Sc); (4, `Cst) ] with
  | `Arr ->
      let name, subs = gen_elem ctx ~extra in
      Operand.Elem (name, subs)
  | `Sc ->
      let from =
        if ctx.defined <> [] && Prng.bool ctx.prng then ctx.defined else ctx.inputs
      in
      Operand.Scalar (pick ctx.prng from)
  | `Cst -> Operand.Const (float_of_int (Prng.int ctx.prng 33 - 16) /. 8.0)

(* -- statement groups ---------------------------------------------- *)

(* How one rhs position is filled across the lanes of a group:
   lane-shifted array accesses become packable/contiguous loads,
   shared operands become broadcasts, independent draws exercise
   gathers. *)
type leaf_plan =
  | Shifted of string * Affine.t list
  | Shared of Operand.t
  | Indep

let shift_last lane subs =
  match List.rev subs with
  | last :: rest -> List.rev (Affine.add last (Affine.const lane) :: rest)
  | [] -> []

(* Emit an isomorphic group of [g] statements (g = 1 gives a single).
   Returns lhs/rhs pairs in lane order. *)
let gen_group ctx ~g =
  let shape = gen_shape ctx.prng (wpick ctx.prng [ (2, 1); (3, 2); (1, 3) ]) in
  let n_leaves = leaf_count shape in
  let scalar_lhs = g <= List.length ctx.temps && Prng.int ctx.prng 10 < 3 in
  let plans =
    List.init n_leaves (fun _ ->
        match wpick ctx.prng [ (4, `Shift); (3, `Share); (3, `Indep) ] with
        | `Shift ->
            let name, subs = gen_elem ctx ~extra:(g - 1) in
            Shifted (name, subs)
        | `Share -> Shared (gen_operand ctx ~extra:0)
        | `Indep -> Indep)
  in
  let lhs_plan =
    if scalar_lhs then `Temps
    else
      let name, subs = gen_elem ctx ~extra:(g - 1) in
      `Elem (name, subs)
  in
  let stmt_of_lane lane =
    let leaves =
      List.map
        (function
          | Shifted (name, subs) -> Operand.Elem (name, shift_last lane subs)
          | Shared op -> op
          | Indep -> gen_operand ctx ~extra:0)
        plans
    in
    let rhs = build shape leaves in
    let lhs =
      match lhs_plan with
      | `Temps -> Operand.Scalar (List.nth ctx.temps lane)
      | `Elem (name, subs) -> Operand.Elem (name, shift_last lane subs)
    in
    (match lhs with
    | Operand.Scalar v -> if not (List.mem v ctx.defined) then ctx.defined <- v :: ctx.defined
    | _ -> ());
    (lhs, rhs)
  in
  List.init g stmt_of_lane

let gen_block ctx ~label ~max_stmts ~scalar_only =
  let n = 1 + Prng.int ctx.prng max_stmts in
  let rec fill acc remaining =
    if remaining = 0 then List.rev acc
    else
      let g = min remaining (wpick ctx.prng [ (3, 1); (2, 2); (2, 3); (1, 4) ]) in
      let g = if scalar_only then min g (List.length ctx.temps) else g in
      let stmts =
        if scalar_only then
          (* Prologue blocks write temps only — array state stays in
             the hands of the innermost loop. *)
          List.mapi
            (fun lane (_, rhs) -> (Operand.Scalar (List.nth ctx.temps lane), rhs))
            (gen_group ctx ~g)
        else gen_group ctx ~g
      in
      List.iter
        (function
          | Operand.Scalar v, _ ->
              if not (List.mem v ctx.defined) then ctx.defined <- v :: ctx.defined
          | _ -> ())
        stmts;
      fill (List.rev_append stmts acc) (remaining - List.length stmts)
  in
  let pairs = fill [] n in
  Block.make ~label
    (List.mapi (fun k (lhs, rhs) -> Stmt.make ~id:(k + 1) ~lhs ~rhs) pairs)

(* -- whole programs ------------------------------------------------ *)

let program ?(options = default_options) ~name prng =
  let ty =
    if options.allow_f32 && Prng.int prng 3 = 0 then Types.F32 else Types.F64
  in
  let env = Env.create () in
  let rank1 = [ "A"; "B"; "C" ] in
  List.iter (fun a -> Env.declare_array env a ty [ 256 ]) rank1;
  let arrays = List.map (fun a -> (a, [ 256 ])) rank1 in
  let arrays =
    if options.allow_rank2 && Prng.int prng 3 = 0 then begin
      Env.declare_array env "D" ty [ 12; 40 ];
      arrays @ [ ("D", [ 12; 40 ]) ]
    end
    else arrays
  in
  let inputs = [ "s0"; "s1"; "s2" ] and temps = [ "t0"; "t1"; "t2" ] in
  List.iter (fun v -> Env.declare_scalar env v ty) (inputs @ temps);
  (* Loop skeleton: optional repeat loop, 1-2 spatial loops, innermost
     statement block; constant bounds give a bounded iteration box. *)
  let inner_lo = Prng.int prng 5 in
  let inner_step = if Prng.int prng 4 = 0 then 2 else 1 in
  let inner_trip = 8 + Prng.int prng 41 in
  let inner_hi =
    (* Occasionally a bound that is not lo + trip*step, to exercise
       remainder-loop emission in the unroller. *)
    let exact = inner_lo + (inner_trip * inner_step) in
    if inner_step > 1 && Prng.bool prng then exact - 1 else exact
  in
  let inner_last = inner_lo + ((inner_trip - 1) * inner_step) in
  let depth2 = options.max_spatial_nest >= 2 && Prng.int prng 3 = 0 in
  let outer_trip = 2 + Prng.int prng 7 in
  let repeat = Prng.bool prng in
  let repeat_trip = 2 + Prng.int prng 2 in
  (* The prologue sits above the spatial nest, so its box holds only
     the repeat index; the innermost block sees the full nest. *)
  let box_repeat : box = if repeat then [ ("rep", (0, repeat_trip - 1)) ] else [] in
  let box_inner : box =
    ("i0", (inner_lo, inner_last))
    :: ((if depth2 then [ ("i1", (0, outer_trip - 1)) ] else []) @ box_repeat)
  in
  let ctx_inner =
    { prng; box = box_inner; arrays; inputs; temps; defined = [] }
  in
  let inner_block =
    gen_block ctx_inner ~label:"bb1" ~max_stmts:(max 1 options.max_stmts)
      ~scalar_only:false
  in
  let inner_loop =
    Program.loop "i0" ~step:inner_step ~lo:(Affine.const inner_lo)
      ~hi:(Affine.const inner_hi)
      [ Program.Stmts inner_block ]
  in
  let spatial =
    if depth2 then
      Program.loop "i1" ~lo:(Affine.const 0) ~hi:(Affine.const outer_trip)
        [ inner_loop ]
    else inner_loop
  in
  let prologue =
    if options.allow_prologue && Prng.int prng 4 = 0 then begin
      let ctx =
        { prng; box = box_repeat; arrays; inputs; temps; defined = [] }
      in
      [ Program.Stmts (gen_block ctx ~label:"bb0" ~max_stmts:2 ~scalar_only:true) ]
    end
    else []
  in
  let body_at_repeat = prologue @ [ spatial ] in
  let body =
    if repeat then
      [
        Program.loop "rep" ~lo:(Affine.const 0) ~hi:(Affine.const repeat_trip)
          body_at_repeat;
      ]
    else body_at_repeat
  in
  (* Epilogue (usually present): store every temp to memory, so scalar
     dataflow is observable through the array oracle and the temps
     become live-out of their defining blocks (exercising unpacks and
     scalar-superword layout).  Omitting it sometimes keeps the
     dead-scalar path — discarded unpack lanes — covered too. *)
  let body =
    if Prng.int prng 4 = 0 then body
    else begin
      let dst, dims = List.hd arrays in
      let base = Prng.int prng (List.hd dims - List.length temps) in
      let stmts =
        List.mapi
          (fun k v ->
            Stmt.make ~id:(k + 1)
              ~lhs:(Operand.Elem (dst, [ Affine.const (base + k) ]))
              ~rhs:(Expr.Leaf (Operand.Scalar v)))
          temps
      in
      body @ [ Program.Stmts (Block.make ~label:"bb9" stmts) ]
    end
  in
  let prog = Program.make ~name ~env body in
  match Program.validate prog with
  | Ok () -> prog
  | Error msg ->
      invalid_arg
        (Printf.sprintf "Fuzz.Gen produced an invalid program (%s):\n%s" msg
           (Program.to_source prog))
