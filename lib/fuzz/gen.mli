(** Seeded random generation of well-formed kernel programs.

    The generator is the front half of the differential fuzzer: it
    draws bounded affine loop nests (constant iteration boxes, steps 1
    and 2, optional outer repeat loop), declarations, and basic blocks
    of scalar/array statements designed to exercise the SLP passes —
    isomorphic statement groups, scalar reuse chains, contiguous,
    misaligned and strided array accesses.  Every program it returns
    satisfies [Program.validate] and stays within its arrays' bounds
    over the whole iteration box, so any downstream diagnostic or
    divergence is a compiler bug, not a generator artifact.

    All randomness comes from an explicit {!Slp_util.Prng.t}; equal
    seeds yield equal programs. *)

type options = {
  max_stmts : int;  (** Statement budget for the innermost block (>= 1). *)
  max_spatial_nest : int;  (** Spatial loop depth: 1 or 2. *)
  allow_f32 : bool;  (** Draw F32 element types (4 lanes at 128 bits). *)
  allow_rank2 : bool;  (** Declare and access a rank-2 array. *)
  allow_prologue : bool;  (** Scalar-statement block above the innermost loop. *)
}

val default_options : options
(** 8 statements, depth 2, f32/rank-2/prologue all enabled. *)

val program : ?options:options -> name:string -> Slp_util.Prng.t -> Slp_ir.Program.t
(** Draw one kernel.  The result validates; violations raise
    [Invalid_argument] (a generator bug worth a report). *)
