open Slp_ir

(* -- normalisation ------------------------------------------------- *)

let used_names prog =
  let scalars = Hashtbl.create 8 and arrays = Hashtbl.create 8 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (s : Stmt.t) ->
          List.iter
            (function
              | Operand.Scalar v -> Hashtbl.replace scalars v ()
              | Operand.Elem (a, _) -> Hashtbl.replace arrays a ()
              | Operand.Const _ -> ())
            (Stmt.positions s))
        b.Block.stmts)
    (Program.blocks prog);
  (Hashtbl.mem scalars, Hashtbl.mem arrays)

let gc_env (prog : Program.t) =
  let scalar_used, array_used = used_names prog in
  let env = Env.create () in
  List.iter
    (fun (v, ty) ->
      (* Loop indices never appear in the declaration table, so every
         used scalar here is a declared one. *)
      if scalar_used v then Env.declare_scalar env v ty)
    (Env.scalars prog.Program.env);
  List.iter
    (fun (a, info) ->
      if array_used a then Env.declare_array env a info.Env.elem_ty info.Env.dims)
    (Env.arrays prog.Program.env);
  { prog with Program.env }

let normalize (prog : Program.t) =
  let rec go items =
    let items =
      List.filter_map
        (function
          | Program.Stmts b -> if b.Block.stmts = [] then None else Some (Program.Stmts b)
          | Program.Loop l -> begin
              match go l.Program.body with
              | [] -> None
              | body -> Some (Program.Loop { l with Program.body })
            end)
        items
    in
    let rec merge = function
      | Program.Stmts a :: Program.Stmts b :: rest ->
          merge
            (Program.Stmts { a with Block.stmts = a.Block.stmts @ b.Block.stmts }
            :: rest)
      | x :: rest -> x :: merge rest
      | [] -> []
    in
    List.map
      (function
        | Program.Stmts b ->
            Program.Stmts
              (Block.make ~label:b.Block.label
                 (List.mapi
                    (fun k (s : Stmt.t) ->
                      Stmt.make ~id:(k + 1) ~lhs:s.Stmt.lhs ~rhs:s.Stmt.rhs)
                    b.Block.stmts))
        | loop -> loop)
      (merge items)
  in
  gc_env { prog with Program.body = go prog.Program.body }

(* -- candidate enumeration ----------------------------------------- *)

(* Apply [f] at every item position, collecting one candidate body per
   rewrite [f] proposes; recursion also proposes rewrites inside loop
   bodies. *)
let rec rewrites (f : Program.item -> Program.item list list) items =
  match items with
  | [] -> []
  | item :: rest ->
      let here = List.map (fun repl -> repl @ rest) (f item) in
      let inside =
        match item with
        | Program.Stmts _ -> []
        | Program.Loop l ->
            List.map
              (fun body -> Program.Loop { l with Program.body } :: rest)
              (rewrites f l.Program.body)
      in
      let later = List.map (fun r -> item :: r) (rewrites f rest) in
      here @ inside @ later

let rec subst_items v a items =
  List.map
    (function
      | Program.Stmts b ->
          Program.Stmts
            {
              b with
              Block.stmts = List.map (fun s -> Stmt.subst_index s v a) b.Block.stmts;
            }
      | Program.Loop l ->
          Program.Loop
            {
              l with
              Program.lo = Affine.subst l.Program.lo v a;
              Program.hi = Affine.subst l.Program.hi v a;
              Program.body = subst_items v a l.Program.body;
            })
    items

(* Delete one statement. *)
let stmt_deletions =
  rewrites (function
    | Program.Stmts b ->
        List.mapi
          (fun i _ ->
            [
              Program.Stmts
                { b with Block.stmts = List.filteri (fun j _ -> j <> i) b.Block.stmts };
            ])
          b.Block.stmts
    | Program.Loop _ -> [])

(* Delete one loop level, pinning its index at the lower bound. *)
let loop_removals =
  rewrites (function
    | Program.Loop l -> begin
        match Affine.to_const l.Program.lo with
        | Some lo -> [ subst_items l.Program.index (Affine.const lo) l.Program.body ]
        | None -> []
      end
    | Program.Stmts _ -> [])

(* Narrow a loop's trip count: straight to one iteration, then halves. *)
let narrowings =
  rewrites (function
    | Program.Loop l -> begin
        match (Affine.to_const l.Program.lo, Affine.to_const l.Program.hi) with
        | Some lo, Some hi ->
            let step = l.Program.step in
            let trip = if hi <= lo then 0 else ((hi - lo) + step - 1) / step in
            if trip <= 1 then []
            else
              let cand t = Program.Loop { l with Program.hi = Affine.const (lo + (t * step)) } in
              let half = (trip + 1) / 2 in
              [ [ cand 1 ] ] @ (if half < trip then [ [ cand half ] ] else [])
        | _, _ -> []
      end
    | Program.Stmts _ -> [])

(* Replace a statement's rhs by one of its immediate subtrees. *)
let rhs_cuts =
  rewrites (function
    | Program.Stmts b ->
        List.concat
          (List.mapi
             (fun i (s : Stmt.t) ->
               let children =
                 match s.Stmt.rhs with
                 | Expr.Leaf _ -> []
                 | Expr.Un (_, e) -> [ e ]
                 | Expr.Bin (_, a, b) -> [ a; b ]
               in
               List.map
                 (fun rhs ->
                   [
                     Program.Stmts
                       {
                         b with
                         Block.stmts =
                           List.mapi
                             (fun j (s' : Stmt.t) ->
                               if i = j then { s' with Stmt.rhs } else s')
                             b.Block.stmts;
                       };
                   ])
                 children)
             b.Block.stmts)
    | Program.Loop _ -> [])

(* -- the greedy loop ----------------------------------------------- *)

let run ?(max_checks = 1000) ~still_fails prog =
  let checks = ref 0 in
  let ok p =
    !checks < max_checks
    && begin
         incr checks;
         match Program.validate p with Ok () -> still_fails p | Error _ -> false
       end
  in
  let passes = [ stmt_deletions; loop_removals; narrowings; rhs_cuts ] in
  let rec go p =
    if !checks >= max_checks then p
    else
      let candidate =
        List.find_map
          (fun pass ->
            List.find_map
              (fun body ->
                let c = normalize { p with Program.body } in
                if ok c then Some c else None)
              (pass p.Program.body))
          passes
      in
      match candidate with Some c -> go c | None -> p
  in
  let start =
    let n = normalize prog in
    if ok n then n else prog
  in
  go start
