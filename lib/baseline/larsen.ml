open Slp_ir
module Graph = Slp_util.Graph
module E = Slp_util.Slp_error
module Units = Slp_core.Units
module Config = Slp_core.Config
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Cost = Slp_core.Cost
module Driver = Slp_core.Driver
module Chains = Slp_analysis.Chains

let stmt_elem_ty ~env (s : Stmt.t) =
  match Env.operand_ty env s.Stmt.lhs with Some ty -> ty | None -> assert false

let group ~env ~config (block : Block.t) =
  let stmts = Array.of_list block.Block.stmts in
  let units = List.map (Units.of_stmt ~env) block.Block.stmts in
  let deps = Units.Deps.build block units in
  let chains = Chains.compute block in
  let row_size = Env.row_size env in
  let packed = Hashtbl.create 16 in
  let decided = ref [] in
  let packs = ref [] in
  let queue = Queue.create () in
  let find id = Block.find block id in
  let commit lanes =
    List.iter (fun s -> Hashtbl.replace packed s ()) lanes;
    (match lanes with
    | a :: rest -> List.iter (fun b -> decided := (a, b) :: !decided) rest
    | [] -> ());
    packs := !packs @ [ lanes ];
    Queue.add lanes queue
  in
  let can_pair s t =
    s <> t
    && (not (Hashtbl.mem packed s))
    && (not (Hashtbl.mem packed t))
    && Stmt.isomorphic ~env (find s) (find t)
    && Config.max_lanes config (stmt_elem_ty ~env (find s)) >= 2
    && Units.Deps.mergeable deps s t
    && Units.Deps.merged_acyclic deps ((s, t) :: !decided)
  in
  (* Seed phase: adjacent memory references, greedy in program order
     (the local heuristic the holistic framework replaces). *)
  let adjacency_order s t =
    (* Some position holds adjacent array elements: lane order follows
       the addresses. *)
    let ps = Stmt.positions (find s) and pt = Stmt.positions (find t) in
    let rec scan = function
      | [], [] -> None
      | a :: ra, b :: rb ->
          if Operand.adjacent_in_memory ~row_size a b then Some (s, t)
          else if Operand.adjacent_in_memory ~row_size b a then Some (t, s)
          else scan (ra, rb)
      | _ -> None
    in
    scan (ps, pt)
  in
  let n = Array.length stmts in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s = stmts.(i).Stmt.id and t = stmts.(j).Stmt.id in
      if can_pair s t then
        match adjacency_order s t with
        | Some (first, second) -> commit [ first; second ]
        | None -> ()
    done
  done;
  (* Extension phase: def-use and use-def chains from committed packs. *)
  let try_pair u v = if can_pair u v then commit [ u; v ] in
  let extend lanes =
    match lanes with
    | [ s; t ] -> begin
        (* def-use: statements consuming the packed definitions at the
           same operand position. *)
        (match (Stmt.def (find s), Stmt.def (find t)) with
        | Operand.Scalar x, Operand.Scalar y when not (String.equal x y) ->
            let consumers def_var def_site =
              List.filter
                (fun uid ->
                  match Chains.reaching_def chains ~var:def_var ~before:uid with
                  | Some d -> d = def_site
                  | None -> false)
                (Chains.def_use chains def_site)
            in
            let us = consumers x s and vs = consumers y t in
            List.iter
              (fun u ->
                List.iter
                  (fun v ->
                    if u <> v then begin
                      let pu = Stmt.positions (find u) and pv = Stmt.positions (find v) in
                      (* same-position use required *)
                      if
                        List.length pu = List.length pv
                        && List.exists2
                             (fun a b ->
                               Operand.equal a (Operand.Scalar x)
                               && Operand.equal b (Operand.Scalar y))
                             pu pv
                      then try_pair u v
                    end)
                  vs)
              us
        | _ -> ());
        (* use-def: producers of the scalars read at the same position. *)
        let ps = Stmt.positions (find s) and pt = Stmt.positions (find t) in
        List.iteri
          (fun k a ->
            if k > 0 then
              match (a, List.nth pt k) with
              | Operand.Scalar x, Operand.Scalar y when not (String.equal x y) -> begin
                  match
                    ( Chains.reaching_def chains ~var:x ~before:s,
                      Chains.reaching_def chains ~var:y ~before:t )
                  with
                  | Some u, Some v when u <> v -> try_pair u v
                  | _ -> ()
                end
              | _ -> ())
          ps
      end
    | _ -> ()
  in
  (* The queue only ever holds pairs here; extension of a pair can
     enqueue further pairs (transitive chain following). *)
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some lanes ->
        extend lanes;
        drain ()
  in
  drain ();
  (* Combination phase: merge address-consecutive packs while the
     datapath allows. *)
  let max_lanes_of lanes =
    Config.max_lanes config (stmt_elem_ty ~env (find (List.hd lanes)))
  in
  let continues p q =
    (* q's first lane continues p's last lane at some memory position *)
    let last_p = List.nth p (List.length p - 1) and first_q = List.hd q in
    let pa = Stmt.positions (find last_p) and pb = Stmt.positions (find first_q) in
    List.length pa = List.length pb
    && List.exists2 (fun a b -> Operand.adjacent_in_memory ~row_size a b) pa pb
  in
  (* Every member of the merged pack must stay isomorphic to its first
     lane (constraint 3): adjacency of the seam lanes says nothing
     about the shapes across packs — two internally-isomorphic pairs
     over address-consecutive stores can still differ (e.g. a constant
     store next to a negation). *)
  let isomorphic_packs p q =
    let first = find (List.hd p) in
    List.for_all (fun m -> Stmt.isomorphic ~env first (find m)) q
  in
  (* Members of the merged pack must stay pairwise independent
     (constraint 1): the contraction test below collapses intra-pack
     dependences into self-loops and cannot see them — e.g. two
     unrolled copies storing to the same element (WAW) would otherwise
     merge and fail scheduling. *)
  let independent_packs p q =
    List.for_all
      (fun u ->
        List.for_all
          (fun v -> (not (Units.Deps.depends deps u v)) && not (Units.Deps.depends deps v u))
          q)
      p
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let rec merge_scan before = function
      | [] -> ()
      | p :: rest ->
          let candidate =
            List.find_opt
              (fun q ->
                List.length q = List.length p
                && List.length p + List.length q <= max_lanes_of p
                && continues p q
                && isomorphic_packs p q
                && independent_packs p q
                && Units.Deps.merged_acyclic deps
                     ((List.hd p, List.hd q) :: !decided))
              rest
          in
          (match candidate with
          | Some q ->
              decided := (List.hd p, List.hd q) :: !decided;
              let merged = p @ q in
              packs :=
                List.rev before
                @ [ merged ]
                @ List.filter (fun r -> r != q) rest;
              changed := true
          | None -> merge_scan (p :: before) rest)
    in
    merge_scan [] !packs
  done;
  let grouped = List.concat !packs in
  let singles =
    List.filter_map
      (fun (s : Stmt.t) ->
        if List.mem s.Stmt.id grouped then None else Some s.Stmt.id)
      block.Block.stmts
  in
  {
    Grouping.groups = !packs;
    singles;
    rounds = (if !packs = [] then 0 else 1);
    decisions = List.length !decided;
  }

let schedule ~env:_ ~config (block : Block.t) (grouping : Grouping.result) =
  (* Dependence-respecting program order; lane order as committed. *)
  let nodes = ref [] in
  let next = ref 0 in
  let add members =
    let gid = !next in
    incr next;
    nodes := (gid, members) :: !nodes
  in
  List.iter add grouping.Grouping.groups;
  List.iter (fun s -> add [ s ]) grouping.Grouping.singles;
  let nodes = List.rev !nodes in
  let owner = Hashtbl.create 32 in
  List.iter (fun (gid, ms) -> List.iter (fun m -> Hashtbl.replace owner m gid) ms) nodes;
  let dg = Graph.Directed.create () in
  List.iter (fun (gid, ms) -> Graph.Directed.add_node dg gid ms) nodes;
  List.iter
    (fun (p, q) ->
      let gp = Hashtbl.find owner p and gq = Hashtbl.find owner q in
      if gp <> gq && not (Graph.Directed.mem_edge dg gp gq) then
        Graph.Directed.add_edge dg gp gq)
    (Block.dep_pairs block);
  if Graph.Directed.has_cycle dg then
    E.fail ~pass:E.Scheduling E.Schedule_failed
      "Larsen.schedule: packs are not schedulable";
  let items = ref [] in
  let remaining = ref (List.length nodes) in
  while !remaining > 0 do
    let ready =
      List.map (fun gid -> (gid, Graph.Directed.label dg gid)) (Graph.Directed.sources dg)
    in
    let best =
      List.fold_left
        (fun acc (gid, ms) ->
          let first = List.fold_left min max_int ms in
          match acc with
          | Some (bf, _, _) when bf <= first -> acc
          | _ -> Some (first, gid, ms))
        None ready
    in
    match best with
    | None -> E.fail ~pass:E.Scheduling E.Schedule_failed "Larsen.schedule: no ready group"
    | Some (_, gid, ms) ->
        items :=
          (match ms with
          | [ s ] -> Schedule.Single s
          | _ -> Schedule.Superword ms)
          :: !items;
        Graph.Directed.remove_node dg gid;
        decr remaining
  done;
  Schedule.analyze ~config block (List.rev !items)

let plan_block ?params ~env ~config ~query ~nest (block : Block.t) =
  let grouping = group ~env ~config block in
  if grouping.Grouping.groups = [] then
    { Driver.block = block; nest; deps = Block.dep_pairs block; grouping; schedule = None; estimate = None }
  else begin
    let sched = schedule ~env ~config block grouping in
    if not (Schedule.is_valid block sched) then
      E.fail ~pass:E.Scheduling E.Schedule_failed
        "Larsen.plan_block: invalid schedule for %s" block.Block.label;
    let estimate = Cost.estimate ?params ~query block sched in
    if estimate.Cost.vector_cost < estimate.Cost.scalar_cost then
      { Driver.block = block; nest; deps = Block.dep_pairs block; grouping; schedule = Some sched; estimate = Some estimate }
    else
      { Driver.block = block; nest; deps = Block.dep_pairs block; grouping; schedule = None; estimate = Some estimate }
  end
