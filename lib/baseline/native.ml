open Slp_ir
module E = Slp_util.Slp_error
module Units = Slp_core.Units
module Config = Slp_core.Config
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Cost = Slp_core.Cost
module Driver = Slp_core.Driver

let stmt_elem_ty ~env (s : Stmt.t) =
  match Env.operand_ty env s.Stmt.lhs with Some ty -> ty | None -> assert false

(* Every position of the lane sequence must be contiguous memory, an
   identical scalar broadcast, or all-constant. *)
let lanes_vectorizable ~env block lanes =
  let row_size = Env.row_size env in
  let stmts = List.map (Block.find block) lanes in
  let npos = Stmt.position_count (List.hd stmts) in
  let ok = ref true in
  for pos = 0 to npos - 1 do
    let ops = List.map (fun s -> List.nth (Stmt.positions s) pos) stmts in
    let contiguous =
      let rec chain = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) ->
            Operand.adjacent_in_memory ~row_size a b && chain rest
      in
      (match ops with Operand.Elem _ :: _ -> chain ops | _ -> false)
    in
    let broadcast =
      match ops with
      | (Operand.Scalar _ as first) :: rest -> List.for_all (Operand.equal first) rest
      | _ -> false
    in
    let constant =
      List.for_all
        (function Operand.Const _ -> true | Operand.Scalar _ | Operand.Elem _ -> false)
        ops
    in
    if pos = 0 then begin
      (* Store target must be contiguous memory or a scalar pack is
         not vectorizable for this conservative scheme. *)
      if not contiguous then ok := false
    end
    else if not (contiguous || broadcast || constant) then ok := false
  done;
  !ok

let group ~env ~config (block : Block.t) =
  let stmts = Array.of_list block.Block.stmts in
  let units = List.map (Units.of_stmt ~env) block.Block.stmts in
  let deps = Units.Deps.build block units in
  let n = Array.length stmts in
  let used = Hashtbl.create 16 in
  let decided = ref [] in
  let packs = ref [] in
  (* Greedy runs of maximal width starting at each unused statement. *)
  for i = 0 to n - 1 do
    let s = stmts.(i) in
    if not (Hashtbl.mem used s.Stmt.id) then begin
      let lanes_max = Config.max_lanes config (stmt_elem_ty ~env s) in
      let rec grow lanes width j =
        if width >= lanes_max || j >= n then List.rev lanes
        else begin
          let t = stmts.(j) in
          if
            (not (Hashtbl.mem used t.Stmt.id))
            && Stmt.isomorphic ~env s t
            && List.for_all (fun prev -> Units.Deps.mergeable deps prev t.Stmt.id) lanes
            && lanes_vectorizable ~env block (List.rev (t.Stmt.id :: lanes))
            && (* Contract the whole partial pack, not just its seam:
                  the pairs of the run under construction are not in
                  [decided] yet, and a cycle may run through a middle
                  lane. *)
            Units.Deps.merged_acyclic deps
              (List.map
                 (fun l -> (s.Stmt.id, l))
                 (t.Stmt.id :: List.filter (fun l -> l <> s.Stmt.id) lanes)
              @ !decided)
          then grow (t.Stmt.id :: lanes) (width + 1) (j + 1)
          else grow lanes width (j + 1)
        end
      in
      let run = grow [ s.Stmt.id ] 1 (i + 1) in
      if List.length run >= 2 then begin
        List.iter (fun id -> Hashtbl.replace used id ()) run;
        (match run with
        | a :: rest -> List.iter (fun b -> decided := (a, b) :: !decided) rest
        | [] -> ());
        packs := !packs @ [ run ]
      end
    end
  done;
  let grouped = List.concat !packs in
  let singles =
    List.filter_map
      (fun (s : Stmt.t) ->
        if List.mem s.Stmt.id grouped then None else Some s.Stmt.id)
      block.Block.stmts
  in
  {
    Grouping.groups = !packs;
    singles;
    rounds = (if !packs = [] then 0 else 1);
    decisions = List.length !decided;
  }

let plan_block ?params ~env ~config ~query ~nest (block : Block.t) =
  let grouping = group ~env ~config block in
  if grouping.Grouping.groups = [] then
    { Driver.block = block; nest; deps = Block.dep_pairs block; grouping; schedule = None; estimate = None }
  else begin
    let sched = Larsen.schedule ~env ~config block grouping in
    if not (Schedule.is_valid block sched) then
      E.fail ~pass:E.Scheduling E.Schedule_failed
        "Native.plan_block: invalid schedule for %s" block.Block.label;
    let estimate = Cost.estimate ?params ~query block sched in
    if estimate.Cost.vector_cost < estimate.Cost.scalar_cost then
      { Driver.block = block; nest; deps = Block.dep_pairs block; grouping; schedule = Some sched; estimate = Some estimate }
    else
      { Driver.block = block; nest; deps = Block.dep_pairs block; grouping; schedule = None; estimate = Some estimate }
  end
