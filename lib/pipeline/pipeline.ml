open Slp_ir
module E = Slp_util.Slp_error
module M = Slp_machine.Machine
module Config = Slp_core.Config
module Driver = Slp_core.Driver
module Cost = Slp_core.Cost
module Verify = Slp_verify.Verify
module D = Slp_verify.Diagnostic
module Obs = Slp_obs.Obs
module Remark = Slp_obs.Remark
module Clock = Slp_obs.Clock

type scheme = Scalar | Native | Slp | Global | Global_layout | Optimal

let scheme_name = function
  | Scalar -> "Scalar"
  | Native -> "Native"
  | Slp -> "SLP"
  | Global -> "Global"
  | Global_layout -> "Global+Layout"
  | Optimal -> "Optimal"

let all_schemes = [ Scalar; Native; Slp; Global; Global_layout; Optimal ]

type compiled = {
  scheme : scheme;
  machine : M.t;
  reference : Program.t;
  vector : Slp_vm.Visa.program option;
  scalar_offsets : (string * int) list;
  plan : Driver.program_plan option;
  compile_seconds : float;
  replica_count : int;
  unroll_factor : int;
  spill_stats : Slp_codegen.Regalloc.stats;
  verify_report : Slp_verify.Verify.report option;
  verify_seconds : float;
  origins : Slp_obs.Profile.key array list;
  solver_bails : E.t list;
}

(* The gate should predict the simulator: derive its per-instruction
   costs from the machine model, with memory operations priced at an
   L1-hit (the common case inside a vectorizable loop). *)
let params_of_machine (m : M.t) =
  let c = m.M.costs in
  let l1 = float_of_int m.M.l1.M.latency in
  {
    Cost.scalar_op = float_of_int c.M.scalar_op;
    vector_op = float_of_int c.M.vector_op;
    divide = float_of_int c.M.divide;
    square_root = float_of_int c.M.square_root;
    scalar_load = float_of_int c.M.load_issue +. l1;
    scalar_store = float_of_int c.M.store_issue +. l1;
    vector_load = float_of_int c.M.load_issue +. l1;
    vector_store = float_of_int c.M.store_issue +. l1;
    unaligned_extra = 1.0;
    insert = float_of_int c.M.insert;
    extract = float_of_int c.M.extract;
    permute = float_of_int c.M.permute;
    broadcast = float_of_int c.M.broadcast;
  }

let config_of_machine (m : M.t) =
  Config.make ~vector_registers:m.M.vector_registers ~datapath_bits:m.M.simd_bits ()

let query_for ?(layout_aware = false) ~config (prog : Program.t) =
  let env = prog.Program.env in
  let lanes = max 2 (config.Config.datapath_bits / 64) in
  let liveness = Slp_analysis.Liveness.compute prog in
  let written = Slp_layout.Array_layout.written_set prog in
  fun ~nest (block : Slp_ir.Block.t) ->
    let q = Cost.default_query ~env ~nest ~lanes in
    let innermost = List.nth_opt (List.rev nest) 0 in
    let repeat =
      Slp_layout.Array_layout.outer_repeat_of_block prog block.Slp_ir.Block.label
    in
    let will_replicate ops =
      Slp_layout.Array_layout.replicable_pack ~env ~written ~innermost ops
      && Slp_layout.Array_layout.amortizes ~lanes:(List.length ops) ~repeat
    in
    let contiguous ops = q.Cost.contiguous ops || (layout_aware && will_replicate ops) in
    let aligned ops =
      q.Cost.aligned ops
      || (layout_aware && (not (q.Cost.contiguous ops)) && will_replicate ops)
    in
    {
      Cost.contiguous = (if layout_aware then contiguous else q.Cost.contiguous);
      aligned = (if layout_aware then aligned else q.Cost.aligned);
      scalar_live_out = Slp_analysis.Liveness.demanded liveness block;
    }

let plan_with f ~config ~params (prog : Program.t) =
  let query_of = query_for ~config prog in
  let env = prog.Program.env in
  let plans =
    List.map
      (fun (block, nest) ->
        f ~params ~env ~config ~query:(query_of ~nest block) ~nest block)
      (Driver.blocks_with_nest prog)
  in
  { Driver.program = prog; plans }

(* Stage hook points, in pipeline order.  [compile ~on_stage] calls
   the hook with each name just before the stage runs — the seeded
   fault-injection harness raises from the hook to simulate that stage
   failing. *)
let stage_hook_points = [ "prepare"; "plan"; "layout"; "lower"; "regalloc"; "verify" ]

let compile ?unroll ?grouping_options ?schedule_options ?(register_reuse = true)
    ?(verify = true) ?on_stage ?max_steps ?deadline ?solver_steps
    ?(obs = Obs.none) ~scheme ~machine (prog : Program.t) =
  let stage name =
    (* Cooperative deadline enforcement at every stage boundary; the
       fuel below additionally checks mid-pass. *)
    Option.iter (fun d -> E.Deadline.check d) deadline;
    match on_stage with Some f -> f name | None -> ()
  in
  (* Independent per-pass step budgets from the single user-facing
     knob; [None] means unbounded (the historical behavior).  A
     deadline with no step budget still wants mid-pass checks, so it
     rides on an effectively-unbounded fuel. *)
  let fuel pass =
    match (max_steps, deadline) with
    | None, None -> None
    | budget, _ ->
        Some
          (E.Fuel.create ?deadline ~pass
             ~budget:(Option.value budget ~default:max_int)
             ())
  in
  let grouping_fuel = fuel E.Grouping in
  let schedule_fuel = fuel E.Scheduling in
  let unroll_factor =
    match unroll with Some u -> u | None -> max 1 (machine.M.simd_bits / 64)
  in
  let config = config_of_machine machine in
  let params = params_of_machine machine in
  stage "prepare";
  let prepared =
    Obs.span obs "prepare" (fun () ->
        Slp_transform.Simplify.fold_program prog
        |> Slp_transform.Unroll.program ~factor:unroll_factor)
  in
  let t0 = Clock.now () in
  let lower_o = Slp_codegen.Lower.lower_with_origins ~obs ~machine in
  (* Advisory bailouts of the exact pack solver: the compile still
     succeeds (the affected blocks carry the heuristic's plan), but the
     BAIL15 records surface on the result for reporting. *)
  let solver_bails = ref [] in
  let vector, plan, scalar_offsets, replica_count, origins =
    match scheme with
    | Scalar -> (None, None, [], 0, [])
    | Native ->
        stage "plan";
        let plan =
          Obs.span obs "plan" (fun () ->
              plan_with
                (fun ~params ~env ~config ~query ~nest b ->
                  Slp_baseline.Native.plan_block ~params ~env ~config ~query ~nest b)
                ~config ~params prepared)
        in
        stage "lower";
        let vec, origins =
          Obs.span obs "lower" (fun () -> lower_o ~reuse:register_reuse plan)
        in
        (Some vec, Some plan, [], 0, origins)
    | Slp ->
        stage "plan";
        let plan =
          Obs.span obs "plan" (fun () ->
              plan_with
                (fun ~params ~env ~config ~query ~nest b ->
                  Slp_baseline.Larsen.plan_block ~params ~env ~config ~query ~nest b)
                ~config ~params prepared)
        in
        stage "lower";
        let vec, origins =
          Obs.span obs "lower" (fun () -> lower_o ~reuse:register_reuse plan)
        in
        (Some vec, Some plan, [], 0, origins)
    | Global ->
        let query_of = query_for ~config prepared in
        stage "plan";
        let plan =
          Obs.span obs "plan" (fun () ->
              Driver.optimize_program ~obs ?options:grouping_options
                ?schedule_options ?grouping_fuel ?schedule_fuel ~params
                ~query_of:(fun ~nest block -> query_of ~nest block)
                ~config prepared)
        in
        stage "lower";
        let vec, origins =
          Obs.span obs "lower" (fun () -> lower_o ~reuse:register_reuse plan)
        in
        (Some vec, Some plan, [], 0, origins)
    | Optimal ->
        let query_of = query_for ~config prepared in
        stage "plan";
        let plan =
          Obs.span obs "plan" (fun () ->
              (* Committed schedules of the baseline heuristics ride
                 along as incumbents, so the exact scheme can never end
                 up worse than either on the modeled cost — even when a
                 block's search bails on fuel. *)
              let seed_plan f =
                match plan_with f ~config ~params prepared with
                | p -> Some p
                | exception _ -> None
              in
              let native =
                seed_plan (fun ~params ~env ~config ~query ~nest b ->
                    Slp_baseline.Native.plan_block ~params ~env ~config ~query
                      ~nest b)
              in
              let larsen =
                seed_plan (fun ~params ~env ~config ~query ~nest b ->
                    Slp_baseline.Larsen.plan_block ~params ~env ~config ~query
                      ~nest b)
              in
              let seeds_of i =
                List.filter_map
                  (fun plan ->
                    Option.bind plan (fun (p : Driver.program_plan) ->
                        Option.bind
                          (List.nth_opt p.Driver.plans i)
                          (fun bp -> bp.Driver.schedule)))
                  [ native; larsen ]
              in
              let plan, bails, _stats =
                Slp_core.Optimal.optimize_program ~obs ~params ~seeds_of
                  ?solver_steps ?grouping_fuel ?schedule_fuel
                  ~query_of:(fun ~nest block -> query_of ~nest block)
                  ~config prepared
              in
              solver_bails :=
                List.map (fun (b : Slp_core.Optimal.bail) -> b.Slp_core.Optimal.error) bails;
              plan)
        in
        stage "lower";
        let vec, origins =
          Obs.span obs "lower" (fun () -> lower_o ~reuse:register_reuse plan)
        in
        (Some vec, Some plan, [], 0, origins)
    | Global_layout ->
        (* Stage 1 planned under a layout-aware cost gate, then stage 2
           applied; the analytic amortisation rule cannot see cache
           footprint effects, so the final arbitration is measured: the
           laid-out variant must actually beat the plain Global variant
           on the simulator, else layout is skipped (the paper:
           "the benefit of layout optimization has to outweigh the
           cost; otherwise we skip the data optimization phase").
           Remarks and per-pass spans follow the layout-aware plan (the
           scheme's primary artifact); the plain variant is planned and
           lowered silently for the arbitration baseline. *)
        let plain_query = query_for ~config prepared in
        stage "plan";
        let plain_plan, plan =
          Obs.span obs "plan" (fun () ->
              let plain_plan =
                Driver.optimize_program ?options:grouping_options
                  ?schedule_options ?grouping_fuel ?schedule_fuel ~params
                  ~query_of:(fun ~nest block -> plain_query ~nest block)
                  ~config prepared
              in
              let query_of = query_for ~layout_aware:true ~config prepared in
              let plan =
                Driver.optimize_program ~obs ?options:grouping_options
                  ?schedule_options ?grouping_fuel ?schedule_fuel ~params
                  ~query_of:(fun ~nest block -> query_of ~nest block)
                  ~config prepared
              in
              (plain_plan, plan))
        in
        let plain_vec, plain_origins =
          Slp_codegen.Lower.lower_with_origins ~machine plain_plan
        in
        stage "layout";
        let placement, arr =
          Obs.span obs "layout" (fun () ->
              let placement =
                Slp_layout.Scalar_layout.place ~env:prepared.Program.env plan
              in
              let arr = Slp_layout.Array_layout.apply ~obs plan in
              (placement, arr))
        in
        stage "lower";
        let laid_vec, laid_origins =
          Obs.span obs "lower" (fun () ->
              lower_o
                ~scalar_offsets:placement.Slp_layout.Scalar_layout.offsets
                ~setup:arr.Slp_layout.Array_layout.setup
                arr.Slp_layout.Array_layout.plan)
        in
        let probe vec offsets =
          let memory =
            Slp_vm.Memory.create ~scalar_layout:offsets ~env:vec.Slp_vm.Visa.env ()
          in
          Slp_vm.Memory.init_arrays memory ~seed:42;
          let r = Slp_vm.Vector_exec.run ~memory ~machine vec in
          Slp_vm.Counters.total_cycles r.Slp_vm.Vector_exec.counters
        in
        let offsets = placement.Slp_layout.Scalar_layout.offsets in
        let trivial =
          List.length arr.Slp_layout.Array_layout.replicas = 0 && offsets = []
        in
        let use_layout, measured =
          if trivial then (true, None)
          else
            Obs.span obs "arbitrate" (fun () ->
                let laid = probe laid_vec offsets in
                let plain = probe plain_vec [] in
                (laid < plain, Some (laid, plain)))
        in
        (match measured with
        | None -> ()
        | Some (laid, plain) when use_layout ->
            Obs.remark obs
              (Remark.make ~id:"LAYOUT-ARBITRATE-APPLY" ~pass:"layout"
                 (Printf.sprintf
                    "measured arbitration kept the laid-out variant (%.1f \
                     cycles vs %.1f plain)"
                    laid plain))
        | Some (laid, plain) ->
            Obs.remark obs
              (Remark.make ~id:"LAYOUT-ARBITRATE-SKIP" ~pass:"layout"
                 (Printf.sprintf
                    "measured arbitration discarded the layout transforms \
                     (%.1f cycles vs %.1f plain)"
                    laid plain)));
        if use_layout then
          ( Some laid_vec,
            Some arr.Slp_layout.Array_layout.plan,
            offsets,
            List.length arr.Slp_layout.Array_layout.replicas,
            laid_origins )
        else (Some plain_vec, Some plain_plan, [], 0, plain_origins)
  in
  (* Post-processing: map virtual vector registers onto the machine's
     register file (paper Figure 3's register allocation box). *)
  let unallocated = vector in
  let vector, spill_stats, origins =
    match vector with
    | None -> (None, Slp_codegen.Regalloc.zero_stats, origins)
    | Some v ->
        stage "regalloc";
        let v', st, origins' =
          Obs.span obs "regalloc" (fun () ->
              Slp_codegen.Regalloc.program_with_origins
                ~registers:machine.M.vector_registers ~origins v)
        in
        (Some v', st, origins')
  in
  let compile_seconds = Clock.now () -. t0 in
  (* Pass-by-pass verification (the -verify-each hook points): the
     prepared scalar IR, the chosen plan (pack + schedule legality,
     plus the rewritten program when layout transformed it), the Visa
     bytecode as lowered, and the bytecode again after register
     allocation.  Error findings abort via Verification_failed. *)
  let t1 = Clock.now () in
  let verify_report =
    if not verify then None
    else begin
      stage "verify";
      Obs.span obs "verify" (fun () ->
          let diags = ref (Verify.check_ir ~stage:D.Prepared_ir prepared) in
          let add ds = diags := !diags @ ds in
          add (Verify.check_deps ~stage:D.Prepared_ir prepared);
          (match plan with
          | Some p ->
              if p.Driver.program != prepared then
                add (Verify.check_ir ~stage:D.Layout p.Driver.program);
              add (Verify.check_plan ~config p)
          | None -> ());
          (match unallocated with
          | Some v ->
              add (Verify.check_visa ~stage:D.Lowering ~scalar_offsets ~machine v)
          | None -> ());
          (match vector with
          | Some v ->
              add
                (Verify.check_visa ~stage:D.Regalloc ~stats:spill_stats
                   ~scalar_offsets ~machine v)
          | None -> ());
          Some (Verify.of_diagnostics !diags))
    end
  in
  let verify_seconds = if verify then Clock.now () -. t1 else 0.0 in
  Option.iter (Verify.raise_if_errors ~what:prog.Program.name) verify_report;
  {
    scheme;
    machine;
    reference = prepared;
    vector;
    scalar_offsets;
    plan;
    compile_seconds;
    replica_count;
    unroll_factor;
    spill_stats;
    verify_report;
    verify_seconds;
    origins;
    solver_bails = !solver_bails;
  }

type exec_result = { counters : Slp_vm.Counters.t; correct : bool }

(* The profiler attaches only to the measured run: the correctness
   reference run below stays unprofiled, so attributed cycles describe
   exactly the execution whose counters are returned. *)
let execute ?(cores = 1) ?(seed = 42) ?(check = true) ?(obs = Obs.none) ?pool
    (c : compiled) =
  Obs.span obs "execute" (fun () ->
      let profile = obs.Obs.profile in
      match c.vector with
      | None ->
          let r =
            Slp_vm.Scalar_exec.run ~cores ~seed ?profile ?pool ~machine:c.machine
              c.reference
          in
          { counters = r.Slp_vm.Scalar_exec.counters; correct = true }
      | Some vprog ->
          let memory =
            Slp_vm.Memory.create ~scalar_layout:c.scalar_offsets
              ~env:vprog.Slp_vm.Visa.env ()
          in
          Slp_vm.Memory.init_arrays memory ~seed;
          let r =
            Slp_vm.Vector_exec.run ~cores ~seed ~memory ?profile
              ~origins:c.origins ?pool ~machine:c.machine vprog
          in
          let correct =
            if not check then true
            else begin
              let ref_run =
                Slp_vm.Scalar_exec.run ~cores:1 ~seed ~machine:c.machine
                  c.reference
              in
              Slp_vm.Memory.same_contents ref_run.Slp_vm.Scalar_exec.memory
                r.Slp_vm.Vector_exec.memory
            end
          in
          { counters = r.Slp_vm.Vector_exec.counters; correct })

let cycles_of ?(cores = 1) ?(seed = 42) ?pool (c : compiled) =
  let r = execute ~cores ~seed ~check:false ?pool c in
  Slp_vm.Counters.total_cycles r.counters

let speedup_over_scalar ?(cores = 1) ?(seed = 42) ?pool (c : compiled) =
  let scalar = { c with scheme = Scalar; vector = None } in
  let s = cycles_of ~cores ~seed ?pool scalar in
  let v = cycles_of ~cores ~seed ?pool c in
  s /. v

let reduction_over_scalar ?cores ?seed ?pool c =
  1.0 -. (1.0 /. speedup_over_scalar ?cores ?seed ?pool c)

(* -- fault-tolerant compilation ------------------------------------- *)

(* Classify any exception escaping the compile path into a structured
   error.  Typed errors pass through; the known foreign exceptions map
   to their reason codes; everything else is an internal error. *)
let error_of_exn = function
  | E.Error t -> t
  | Verify.Verification_failed (what, _report) ->
      E.make ~pass:E.Verification E.Verify_rejected
        (Printf.sprintf "verifier rejected %s" what)
  | Slp_vm.Trap.Trap info ->
      E.make ~pass:E.Vm E.Vm_trap (Slp_vm.Trap.to_string info)
  | Slp_frontend.Parser.Error (msg, line, col) ->
      E.make ~span:{ E.line; col } ~pass:E.Frontend E.Parse_error msg
  | Slp_frontend.Lexer.Error (msg, line, col) ->
      E.make ~span:{ E.line; col } ~pass:E.Frontend E.Lex_error msg
  | Invalid_argument msg -> E.make ~pass:E.Pipeline E.Internal msg
  | Failure msg -> E.make ~pass:E.Pipeline E.Internal msg
  | exn -> E.make ~pass:E.Pipeline E.Internal (Printexc.to_string exn)

type bailout = { kernel : string; scheme : scheme; machine : string; error : E.t }

let bailout_to_json (b : bailout) =
  Printf.sprintf
    "{\"kernel\": \"%s\", \"scheme\": \"%s\", \"machine\": \"%s\", \"error\": %s}"
    (E.json_escape b.kernel)
    (E.json_escape (scheme_name b.scheme))
    (E.json_escape b.machine) (E.to_json b.error)

let bailout_report_json bailouts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"bailouts\": %d, \"reports\": [" (List.length bailouts));
  List.iteri
    (fun i b ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (bailout_to_json b))
    bailouts;
  Buffer.add_string buf "]}";
  Buffer.contents buf

type resilient = { result : compiled; degraded : bool; bailouts : bailout list }

(* The unconditional last resort: the unprocessed scalar program with
   no vector code.  Building this record cannot raise. *)
let identity_compiled ~machine (prog : Program.t) =
  {
    scheme = Scalar;
    machine;
    reference = prog;
    vector = None;
    scalar_offsets = [];
    plan = None;
    compile_seconds = 0.0;
    replica_count = 0;
    unroll_factor = 1;
    spill_stats = Slp_codegen.Regalloc.zero_stats;
    verify_report = None;
    verify_seconds = 0.0;
    origins = [];
    solver_bails = [];
  }

let compile_resilient ?unroll ?grouping_options ?schedule_options ?register_reuse
    ?verify ?on_stage ?(max_steps = 2_000_000) ?deadline ?solver_steps ?obs
    ~scheme ~machine (prog : Program.t) =
  let bail exn =
    { kernel = prog.Program.name; scheme; machine = machine.M.name;
      error = error_of_exn exn }
  in
  match
    compile ?unroll ?grouping_options ?schedule_options ?register_reuse ?verify
      ?on_stage ~max_steps ?deadline ?solver_steps ?obs ~scheme ~machine prog
  with
  | c -> { result = c; degraded = false; bailouts = [] }
  | exception exn -> begin
      let first = bail exn in
      (* Degrade the kernel to verified scalar code.  The fallback
         compile gets no stage hooks and no fuel: the scalar path does
         no grouping or scheduling, so the budget cannot apply, and
         re-running injection hooks would defeat the fallback. *)
      match compile ?unroll ~scheme:Scalar ~machine prog with
      | c -> { result = c; degraded = true; bailouts = [ first ] }
      | exception exn2 ->
          (* Even the scalar compile failed (preparation or the IR
             verifier).  Ship the unprocessed program. *)
          let second =
            { (bail exn2) with scheme = Scalar; error = error_of_exn exn2 }
          in
          { result = identity_compiled ~machine prog;
            degraded = true;
            bailouts = [ first; second ] }
    end

(* Execute with the same discipline: a trap (including an injected VM
   fault) during vectorized execution falls back to a clean scalar run
   of the reference program.  Injected faults are one-shot — they
   disarm when they fire — so the re-execution cannot re-trap on the
   same fault. *)
let execute_resilient ?cores ?seed ?check (c : compiled) =
  match execute ?cores ?seed ?check c with
  | r -> (r, None)
  | exception exn -> begin
      let error = error_of_exn exn in
      let scalar = { c with scheme = Scalar; vector = None } in
      match execute ?cores ?seed ~check:false scalar with
      | r -> (r, Some error)
      | exception exn2 ->
          (* A scalar re-run can only fail on a genuine program trap
             (e.g. an out-of-bounds subscript): surface it as an
             incorrect run rather than raising. *)
          ignore (error_of_exn exn2);
          ( { counters = Slp_vm.Counters.create (); correct = false },
            Some error )
    end
