(** End-to-end compilation pipelines — the five schemes compared in the
    paper's evaluation, plus the exact oracle scheme.

    - [Scalar]: no SLP optimization (the normalisation baseline);
    - [Native]: the conservative contiguous-only vectorizer;
    - [Slp]: Larsen & Amarasinghe PLDI 2000;
    - [Global]: the paper's superword statement generation (stage 1);
    - [Global_layout]: stage 1 plus the data layout optimization
      (stage 2);
    - [Optimal]: exact goSLP-style pack selection by branch-and-bound
      ({!Slp_core.Optimal}) — never worse than any heuristic on the
      modeled cost, used as the test oracle.

    Every scheme shares the same pre-processing (constant folding +
    loop unrolling), code generator, and simulator, so measured
    differences come only from grouping/scheduling/layout decisions —
    mirroring the paper's methodology (§7.1: "both the implementations
    use exactly the same pre-processing steps"). *)

open Slp_ir

type scheme = Scalar | Native | Slp | Global | Global_layout | Optimal

val scheme_name : scheme -> string
val all_schemes : scheme list

type compiled = {
  scheme : scheme;
  machine : Slp_machine.Machine.t;
  reference : Program.t;  (** Unrolled + folded program (scalar semantics). *)
  vector : Slp_vm.Visa.program option;  (** [None] for [Scalar]. *)
  scalar_offsets : (string * int) list;
  plan : Slp_core.Driver.program_plan option;
  compile_seconds : float;  (** Time spent inside the optimizer. *)
  replica_count : int;
  unroll_factor : int;
  spill_stats : Slp_codegen.Regalloc.stats;
      (** Register-allocation outcome of the post-processing pass. *)
  verify_report : Slp_verify.Verify.report option;
      (** Pass-by-pass verifier findings; [None] when compiled with
          [~verify:false].  A returned report never contains errors —
          those raise {!Slp_verify.Verify.Verification_failed} — so
          what remains are warnings. *)
  verify_seconds : float;
      (** Time spent inside the verifier (0 when disabled). *)
  origins : Slp_obs.Profile.key array list;
      (** Profiling origins of the vector body: one key array per
          [Visa.Block] in pre-order, entry [i] naming the statement or
          pack that produced instruction [i] (spills and reloads
          inherit the origin of the instruction that forced them).
          Empty for [Scalar]. *)
  solver_bails : Slp_util.Slp_error.t list;
      (** Advisory [BAIL15-optimal] records from the [Optimal] scheme:
          one per block whose exact search ran out of solver fuel and
          fell back to the holistic heuristic.  The compile itself
          still succeeds (the result is not degraded), so these never
          appear in {!resilient.bailouts}.  Empty for every other
          scheme. *)
}

val params_of_machine : Slp_machine.Machine.t -> Slp_core.Cost.params
(** The cost-model parameters the compile derives from a machine model
    (memory operations priced at an L1 hit).  Exposed so reports and
    tests can price plans exactly as the pipeline's gate does. *)

val config_of_machine : Slp_machine.Machine.t -> Slp_core.Config.t
(** Datapath width and register count of a machine model. *)

val stage_hook_points : string list
(** The names passed to [compile ~on_stage], in pipeline order:
    ["prepare"], ["plan"], ["layout"], ["lower"], ["regalloc"],
    ["verify"].  The seeded fault-injection harness iterates this
    list. *)

val compile :
  ?unroll:int ->
  ?grouping_options:Slp_core.Grouping.options ->
  ?schedule_options:Slp_core.Schedule.options ->
  ?register_reuse:bool ->
  ?verify:bool ->
  ?on_stage:(string -> unit) ->
  ?max_steps:int ->
  ?deadline:Slp_util.Slp_error.Deadline.t ->
  ?solver_steps:int ->
  ?obs:Slp_obs.Obs.t ->
  scheme:scheme ->
  machine:Slp_machine.Machine.t ->
  Program.t ->
  compiled
(** Default [unroll]: the machine's f64 lane count ([simd_bits/64]),
    the factor that exactly fills the datapath for double kernels and
    half-fills it for floats.

    [verify] (default true) runs the {!Slp_verify} checkers after
    every stage — prepared IR, plan (pack/schedule legality), lowered
    Visa, allocated Visa — and raises
    {!Slp_verify.Verify.Verification_failed} on any error-severity
    finding.  Disable inside benchmark loops.

    [on_stage] is called with each of {!stage_hook_points} just before
    the stage runs; an exception raised from the hook aborts the
    compile (the fault-injection harness's entry point).

    [max_steps] bounds the grouping and scheduling passes with
    independent step budgets; exhaustion raises
    {!Slp_util.Slp_error.Error} with code [Fuel_exhausted].  Omitted:
    unbounded.

    [deadline] enforces a per-job wall-clock budget cooperatively: it
    is checked at every stage boundary and every few hundred fuel
    ticks inside grouping/scheduling, raising
    {!Slp_util.Slp_error.Error} with code [Deadline_exceeded]
    (BAIL16).  The compile service and [slpc --timeout] build one over
    {!Slp_obs.Clock.now}.

    [solver_steps] bounds the per-block exact search of the [Optimal]
    scheme (default {!Slp_core.Optimal.default_solver_steps});
    exhaustion does not fail the compile — the block falls back to the
    holistic heuristic and a [BAIL15] record lands in
    [compiled.solver_bails].

    [obs] (default {!Slp_obs.Obs.none}, a no-op) attaches the
    observability bundle: every stage of {!stage_hook_points} (plus
    the [Global_layout] measured arbitration, as ["arbitrate"]) runs
    inside a trace span, the optimizer emits structured remarks, and
    lowering records per-instruction profiling origins. *)

type exec_result = {
  counters : Slp_vm.Counters.t;
  correct : bool;
      (** Vectorized memory state matches scalar execution (always
          true for [Scalar]). *)
}

val execute :
  ?cores:int ->
  ?seed:int ->
  ?check:bool ->
  ?obs:Slp_obs.Obs.t ->
  ?pool:Slp_vm.Dpool.t ->
  compiled ->
  exec_result
(** [check] (default true) runs the scalar reference and compares
    array contents; disable inside benchmark loops.

    [pool]: with [cores > 1], simulate the cores on real OCaml domains
    (see {!Slp_vm.Engine.run_vector}); counters are bit-identical to
    the sequential simulation.

    [obs]: the run executes inside an ["execute"] span, and when the
    bundle carries a profiler the measured run (vector, or scalar for
    [Scalar]) attributes cycles and cache accesses per statement/pack
    via [compiled.origins].  The correctness reference run is never
    profiled. *)

val speedup_over_scalar :
  ?cores:int -> ?seed:int -> ?pool:Slp_vm.Dpool.t -> compiled -> float
(** [scalar_cycles / scheme_cycles] on the same input. *)

val reduction_over_scalar :
  ?cores:int -> ?seed:int -> ?pool:Slp_vm.Dpool.t -> compiled -> float
(** Execution-time reduction [1 - scheme/scalar] — the paper's
    y-axis. *)

(** {1 Fault-tolerant compilation}

    The resilient entry points never raise: any failure in the compile
    or execute path — a pack that will not schedule, a layout plan out
    of sync, a verifier rejection, an exhausted step budget, an
    injected fault — degrades the kernel to verified scalar code and
    is reported as a structured bailout. *)

val error_of_exn : exn -> Slp_util.Slp_error.t
(** Classify an exception escaping the compile/execute path: typed
    errors pass through, verifier rejections become [BAIL10], VM traps
    [BAIL12], frontend errors [BAIL01]/[BAIL02], anything else
    [BAIL13]. *)

type bailout = {
  kernel : string;
  scheme : scheme;  (** The scheme that was attempted, not the fallback. *)
  machine : string;
  error : Slp_util.Slp_error.t;
}

val bailout_to_json : bailout -> string

val bailout_report_json : bailout list -> string
(** The machine-readable bailout report written by
    [slpc --bailout-report] and the harness runner. *)

type resilient = {
  result : compiled;
  degraded : bool;  (** The requested scheme failed; [result] is scalar. *)
  bailouts : bailout list;  (** Empty iff [degraded] is false. *)
}

val compile_resilient :
  ?unroll:int ->
  ?grouping_options:Slp_core.Grouping.options ->
  ?schedule_options:Slp_core.Schedule.options ->
  ?register_reuse:bool ->
  ?verify:bool ->
  ?on_stage:(string -> unit) ->
  ?max_steps:int ->
  ?deadline:Slp_util.Slp_error.Deadline.t ->
  ?solver_steps:int ->
  ?obs:Slp_obs.Obs.t ->
  scheme:scheme ->
  machine:Slp_machine.Machine.t ->
  Program.t ->
  resilient
(** Like {!compile}, but a failing kernel degrades gracefully: the
    kernel is recompiled under [Scalar] (without hooks, fuel,
    [deadline], or [obs] — the fallback must not inherit the failure
    trigger), and if even that fails the unprocessed program ships
    with no vector code.  [max_steps] defaults to [2_000_000].  Never
    raises. *)

val execute_resilient :
  ?cores:int ->
  ?seed:int ->
  ?check:bool ->
  compiled ->
  exec_result * Slp_util.Slp_error.t option
(** Like {!execute}, but a trap during vectorized execution (including
    an injected one-shot VM fault) falls back to a clean scalar run of
    the reference program; the classified error rides along.  Never
    raises. *)
