open Slp_ir
module E = Slp_util.Slp_error

let renamed v ~copy = Printf.sprintf "%s__u%d" v copy

let privatisable block =
  let seen_use = Hashtbl.create 16 in
  let result = ref [] in
  let decided = Hashtbl.create 16 in
  List.iter
    (fun (s : Stmt.t) ->
      (* Reads happen before the write of the same statement. *)
      List.iter
        (function
          | Operand.Scalar v -> Hashtbl.replace seen_use v ()
          | Operand.Const _ | Operand.Elem _ -> ())
        (Stmt.uses s);
      (* Subscript variables of an array store are reads as well, but
         they are loop indices, never block temporaries. *)
      match s.Stmt.lhs with
      | Operand.Scalar v ->
          if not (Hashtbl.mem decided v) then begin
            Hashtbl.replace decided v ();
            if not (Hashtbl.mem seen_use v) then result := v :: !result
          end
      | Operand.Const _ | Operand.Elem _ -> ())
    block.Block.stmts;
  List.sort String.compare !result

let rename_stmt_scalars stmt ~targets ~copy =
  List.fold_left
    (fun s v -> Stmt.rename_scalar s ~old_name:v ~new_name:(renamed v ~copy))
    stmt targets

let unroll_block block ~index ~factor ~copy_step =
  if factor < 1 then
    E.fail ~pass:E.Transform E.Unsupported "Unroll.unroll_block: factor must be >= 1";
  let targets = privatisable block in
  let next_id = ref 0 in
  let copies =
    List.concat_map
      (fun k ->
        List.map
          (fun (s : Stmt.t) ->
            let shift = Affine.add (Affine.var index) (Affine.const (k * copy_step)) in
            let s = Stmt.subst_index s index shift in
            let s =
              if k < factor - 1 then rename_stmt_scalars s ~targets ~copy:k else s
            in
            incr next_id;
            { s with Stmt.id = !next_id })
          block.Block.stmts)
      (List.init factor (fun k -> k))
  in
  Block.make ~label:block.Block.label copies

let fuse_blocks label blocks =
  let next_id = ref 0 in
  let stmts =
    List.concat_map
      (fun (b : Block.t) ->
        List.map
          (fun (s : Stmt.t) ->
            incr next_id;
            { s with Stmt.id = !next_id })
          b.Block.stmts)
      blocks
  in
  Block.make ~label stmts

let is_innermost (l : Program.loop) =
  List.for_all
    (function Program.Stmts _ -> true | Program.Loop _ -> false)
    l.Program.body

let declare_copies env block ~factor =
  List.iter
    (fun v ->
      match Env.scalar_ty env v with
      | Some ty ->
          for k = 0 to factor - 2 do
            Env.declare_scalar env (renamed v ~copy:k) ty
          done
      | None -> ())
    (privatisable block)

let program ~factor prog =
  if factor < 1 then
    E.fail ~pass:E.Transform E.Unsupported "Unroll.program: factor must be >= 1";
  if factor = 1 then prog
  else begin
    let env = Env.copy prog.Program.env in
    let rec walk items =
      List.concat_map
        (function
          | Program.Stmts b -> [ Program.Stmts b ]
          | Program.Loop l when is_innermost l -> unroll_loop l
          | Program.Loop l -> [ Program.Loop { l with Program.body = walk l.Program.body } ])
        items
    and unroll_loop (l : Program.loop) =
      match Program.trip_count l with
      | None -> [ Program.Loop l ]
      | Some trip when trip < factor -> [ Program.Loop l ]
      | Some trip ->
          let blocks =
            List.filter_map
              (function Program.Stmts b -> Some b | Program.Loop _ -> None)
              l.Program.body
          in
          let body =
            match blocks with
            | [ b ] -> b
            | bs -> fuse_blocks (Printf.sprintf "%s_fused" l.Program.index) bs
          in
          declare_copies env body ~factor;
          let unrolled =
            unroll_block
              { body with Block.label = body.Block.label ^ "_u" }
              ~index:l.Program.index ~factor ~copy_step:l.Program.step
          in
          let main_iters = trip / factor in
          let lo = Affine.to_const l.Program.lo |> Option.get in
          let main_hi = lo + (main_iters * factor * l.Program.step) in
          let main =
            Program.Loop
              {
                l with
                Program.hi = Affine.const main_hi;
                step = l.Program.step * factor;
                body = [ Program.Stmts unrolled ];
              }
          in
          let remainder_trip = trip mod factor in
          if remainder_trip = 0 then [ main ]
          else begin
            let relabel =
              List.map (function
                | Program.Stmts b ->
                    Program.Stmts { b with Block.label = b.Block.label ^ "_rem" }
                | Program.Loop _ as item -> item)
            in
            [
              main;
              Program.Loop
                {
                  l with
                  Program.lo = Affine.const main_hi;
                  body = relabel l.Program.body;
                };
            ]
          end
    in
    { prog with Program.env; body = walk prog.Program.body }
  end
