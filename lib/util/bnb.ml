(* A small reusable branch-and-bound core for exact set-partition
   optimisation (minimisation), the combinatorial heart of 0-1 pack
   selection.  Zero dependencies: the client supplies the universe of
   element ids, the legal multi-element parts containing a given
   element, admissible lower bounds, a joint-feasibility check and the
   exact objective of a complete partition.

   Enumeration is canonical and therefore exhaustive without
   duplicates: at every node the solver branches on the *lowest*
   uncovered element, which either stays single or joins one of the
   legal parts in which it is the minimum member.  Every partition of
   the universe into legal parts is generated exactly once.

   Bounding is LP-free: the accumulated bound of the chosen parts plus
   a per-element relaxation of the uncovered set must stay below the
   incumbent.  The relaxation is memoised on the signature of the
   uncovered set (a bitset rendered as a string), so revisits of the
   same residual problem under different prefixes are free. *)

type 'a choice = {
  part : 'a;  (** client's part descriptor (opaque to the solver) *)
  members : int list;  (** element ids covered by this part *)
  bound : float;  (** admissible lower bound on the part's cost *)
}

type stats = {
  mutable nodes : int;  (** branch nodes expanded *)
  mutable leaves : int;  (** complete partitions evaluated *)
  mutable memo_hits : int;  (** relaxation cache hits *)
  mutable pruned : int;  (** subtrees cut by the bound *)
}

type 'a outcome = {
  best : ('a list * float) option;
      (** best complete partition found that beats the incumbent, with
          its exact objective; [None] when the incumbent was already
          optimal (or no feasible partition exists below it) *)
  stats : stats;
}

let epsilon = 1e-9

(* [solve] minimises over all partitions of [universe] into parts.
   [choices e ~available] must list every legal multi-element part
   whose minimum member is [e], drawn from elements for which
   [available] holds; [single e] is the always-legal singleton part.
   [relax e ~available] is an admissible per-element lower bound given
   the residual availability.  [feasible parts] jointly checks the
   chosen parts (e.g. acyclicity after contraction); it is invoked
   incrementally each time a multi-element part is added.  [leaf] maps
   a complete choice list to its exact objective ([None] =
   infeasible).  [tick] is called once per node so the caller can
   meter fuel; letting it raise aborts the search. *)
let solve ~universe ~choices ~single ~relax ~feasible ~leaf
    ?(incumbent = Float.infinity) ?(tick = fun () -> ()) () =
  let stats = { nodes = 0; leaves = 0; memo_hits = 0; pruned = 0 } in
  let max_id = List.fold_left (fun acc e -> max acc e) 0 universe in
  let avail = Array.make (max_id + 1) false in
  List.iter (fun e -> avail.(e) <- true) universe;
  let in_universe = Array.copy avail in
  let sorted = List.sort_uniq compare universe in
  let best_cost = ref incumbent in
  let best_parts = ref None in
  let memo : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let signature () =
    let bytes = Bytes.make ((max_id / 8) + 1) '\000' in
    Array.iteri
      (fun i on ->
        if on then
          Bytes.set bytes (i / 8)
            (Char.chr (Char.code (Bytes.get bytes (i / 8)) lor (1 lsl (i mod 8)))))
      avail;
    Bytes.unsafe_to_string bytes
  in
  let relax_uncovered () =
    let key = signature () in
    match Hashtbl.find_opt memo key with
    | Some v ->
        stats.memo_hits <- stats.memo_hits + 1;
        v
    | None ->
        let v =
          List.fold_left
            (fun acc e ->
              if avail.(e) then acc +. relax e ~available:(fun i -> avail.(i))
              else acc)
            0.0 sorted
        in
        Hashtbl.add memo key v;
        v
  in
  let rec descend chosen acc_bound uncovered =
    tick ();
    stats.nodes <- stats.nodes + 1;
    match uncovered with
    | [] ->
        stats.leaves <- stats.leaves + 1;
        (match leaf (List.rev_map (fun c -> c.part) chosen) with
        | Some cost when cost < !best_cost -. epsilon ->
            best_cost := cost;
            best_parts := Some (List.rev chosen)
        | Some _ | None -> ())
    | e :: _ when not avail.(e) ->
        (* already covered by an earlier multi-element part *)
        descend chosen acc_bound (List.tl uncovered)
    | e :: rest ->
        if acc_bound +. relax_uncovered () >= !best_cost -. epsilon then
          stats.pruned <- stats.pruned + 1
        else begin
          let multi =
            choices e ~available:(fun i -> i <> e && avail.(i) && in_universe.(i))
          in
          let all =
            List.sort (fun a b -> Float.compare a.bound b.bound) (single e :: multi)
          in
          List.iter
            (fun c ->
              List.iter (fun m -> avail.(m) <- false) c.members;
              let ok =
                match c.members with
                | [ _ ] -> true
                | _ -> feasible (List.rev_map (fun x -> x.part) (c :: chosen))
              in
              if ok then descend (c :: chosen) (acc_bound +. c.bound) rest;
              List.iter (fun m -> avail.(m) <- true) c.members)
            all
        end
  in
  descend [] 0.0 sorted;
  let best =
    match !best_parts with
    | Some parts -> Some (List.map (fun c -> c.part) parts, !best_cost)
    | None -> None
  in
  { best; stats }
