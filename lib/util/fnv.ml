let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let string_into h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h c) s;
  !h

let hash64 s = string_into offset_basis s

(* Length framing: hash the decimal length, a ':' separator, then the
   bytes, so concatenation cannot alias across field boundaries. *)
let combine h s =
  let h = string_into h (string_of_int (String.length s)) in
  let h = byte h ':' in
  string_into h s

let hash_fields fields = List.fold_left combine offset_basis fields

let to_hex h = Printf.sprintf "%016Lx" h

let of_hex s =
  if String.length s <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v -> Some v
    | None -> None
