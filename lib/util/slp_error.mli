(** Structured compile-path errors: every bailout carries the pass it
    came from, a stable reason code ([BAIL01]..[BAIL15]), an optional
    source span, and whether the pipeline can recover by degrading the
    kernel to scalar code.

    The resilient pipeline driver ({!Slp_pipeline.Pipeline}) catches
    {!Error} (and classifies foreign exceptions into one) and falls
    back to verified scalar codegen instead of aborting the whole
    compile — the paper's framework always has the original scalar
    statements as a legal answer. *)

type pass =
  | Frontend
  | Analysis
  | Transform
  | Grouping
  | Scheduling
  | Layout
  | Lowering
  | Regalloc
  | Verification
  | Vm
  | Pipeline

val pass_name : pass -> string

(** Stable reason codes.  The wire name is [BAILnn-mnemonic]; see
    {!catalogue} for descriptions (also reproduced in DESIGN.md). *)
type code =
  | Parse_error  (** BAIL01 *)
  | Lex_error  (** BAIL02 *)
  | Validation  (** BAIL03 *)
  | Unsupported  (** BAIL04 *)
  | Grouping_failed  (** BAIL05 *)
  | Schedule_failed  (** BAIL06 *)
  | Layout_failed  (** BAIL07 *)
  | Lowering_failed  (** BAIL08 *)
  | Regalloc_failed  (** BAIL09 *)
  | Verify_rejected  (** BAIL10 *)
  | Fuel_exhausted  (** BAIL11 *)
  | Vm_trap  (** BAIL12 *)
  | Internal  (** BAIL13 *)
  | Injected  (** BAIL14 *)
  | Optimal_bailed  (** BAIL15 *)
  | Deadline_exceeded  (** BAIL16 *)

val code_id : code -> string
(** ["BAIL05"]. *)

val code_mnemonic : code -> string
(** ["group"]. *)

val code_name : code -> string
(** ["BAIL05-group"]. *)

val catalogue : (code * string) list
(** Every code with its one-line description, in BAIL order. *)

type span = { line : int; col : int }

type t = {
  code : code;
  pass : pass;
  span : span option;
  recoverable : bool;
  message : string;
}

exception Error of t

val make : ?span:span -> ?recoverable:bool -> pass:pass -> code -> string -> t
(** [recoverable] defaults to [true] — almost every compile failure
    leaves scalar fallback available. *)

val fail :
  ?span:span ->
  ?recoverable:bool ->
  pass:pass ->
  code ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Format, build, raise. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One JSON object (no trailing newline); strings are escaped. *)

val json_escape : string -> string

(** Per-job wall-clock deadlines, enforced cooperatively: the pipeline
    calls {!check} at stage boundaries and {!Fuel.tick} consults the
    clock periodically, so a runaway pass surfaces as a structured
    [BAIL16] ({!code.Deadline_exceeded}) instead of wedging its caller.
    The clock is injected (pass {!Slp_obs.Clock.now}, or a counter in
    tests), keeping this module dependency-free and the enforcement
    deterministic under a frozen clock. *)
module Deadline : sig
  type error = t
  type t

  val never : t
  (** Never expires; checks are almost free. *)

  val create : clock:(unit -> float) -> seconds:float -> t
  (** Expires [seconds] after creation on [clock]'s timeline.
      [seconds = infinity] returns {!never}. *)

  val expired : t -> bool
  val remaining : t -> float
  (** Seconds until expiry; [infinity] for {!never}, negative when
      already breached. *)

  val check : ?pass:pass -> t -> unit
  (** Raise {!Error} with code [Deadline_exceeded] once expired
      ([pass] defaults to [Pipeline]). *)
end

(** Per-pass step budgets: a cheap guard against grouping-graph blowup
    and scheduler loops.  [tick] raises {!Error} with
    {!code.Fuel_exhausted} once the budget runs dry, and — when a
    deadline rides along — checks the wall clock every few hundred
    ticks, raising [Deadline_exceeded] from inside long passes. *)
module Fuel : sig
  type error = t
  type t

  val create : ?deadline:Deadline.t -> pass:pass -> budget:int -> unit -> t
  val tick : t -> unit
  val remaining : t -> int
end
