type policy = { base : float; factor : float; cap : float; jitter : float }

let default = { base = 0.05; factor = 2.0; cap = 2.0; jitter = 0.5 }

let delay p ~prng ~attempt =
  let attempt = max 1 attempt in
  let d = p.base *. (p.factor ** float_of_int (attempt - 1)) in
  let d = Float.min d p.cap in
  let j = p.jitter *. Prng.float prng 1.0 in
  d *. (1.0 -. j)
