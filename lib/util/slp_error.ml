type pass =
  | Frontend
  | Analysis
  | Transform
  | Grouping
  | Scheduling
  | Layout
  | Lowering
  | Regalloc
  | Verification
  | Vm
  | Pipeline

let pass_name = function
  | Frontend -> "frontend"
  | Analysis -> "analysis"
  | Transform -> "transform"
  | Grouping -> "grouping"
  | Scheduling -> "scheduling"
  | Layout -> "layout"
  | Lowering -> "lowering"
  | Regalloc -> "regalloc"
  | Verification -> "verification"
  | Vm -> "vm"
  | Pipeline -> "pipeline"

type code =
  | Parse_error
  | Lex_error
  | Validation
  | Unsupported
  | Grouping_failed
  | Schedule_failed
  | Layout_failed
  | Lowering_failed
  | Regalloc_failed
  | Verify_rejected
  | Fuel_exhausted
  | Vm_trap
  | Internal
  | Injected
  | Optimal_bailed
  | Deadline_exceeded

let code_id = function
  | Parse_error -> "BAIL01"
  | Lex_error -> "BAIL02"
  | Validation -> "BAIL03"
  | Unsupported -> "BAIL04"
  | Grouping_failed -> "BAIL05"
  | Schedule_failed -> "BAIL06"
  | Layout_failed -> "BAIL07"
  | Lowering_failed -> "BAIL08"
  | Regalloc_failed -> "BAIL09"
  | Verify_rejected -> "BAIL10"
  | Fuel_exhausted -> "BAIL11"
  | Vm_trap -> "BAIL12"
  | Internal -> "BAIL13"
  | Injected -> "BAIL14"
  | Optimal_bailed -> "BAIL15"
  | Deadline_exceeded -> "BAIL16"

let code_mnemonic = function
  | Parse_error -> "parse"
  | Lex_error -> "lex"
  | Validation -> "validate"
  | Unsupported -> "unsupported"
  | Grouping_failed -> "group"
  | Schedule_failed -> "schedule"
  | Layout_failed -> "layout"
  | Lowering_failed -> "lower"
  | Regalloc_failed -> "regalloc"
  | Verify_rejected -> "verify"
  | Fuel_exhausted -> "fuel"
  | Vm_trap -> "trap"
  | Internal -> "internal"
  | Injected -> "injected"
  | Optimal_bailed -> "optimal"
  | Deadline_exceeded -> "deadline"

let code_name c = code_id c ^ "-" ^ code_mnemonic c

let catalogue =
  [
    (Parse_error, "syntax error in the kernel source");
    (Lex_error, "unreadable token in the kernel source");
    (Validation, "the parsed program failed semantic validation");
    (Unsupported, "a construct outside the compilable subset");
    (Grouping_failed, "superword grouping could not form a legal pack set");
    (Schedule_failed, "no dependence-respecting schedule for the chosen packs");
    (Layout_failed, "the data layout transformation could not be applied");
    (Lowering_failed, "lowering the plan to Visa bytecode failed");
    (Regalloc_failed, "vector register allocation failed");
    (Verify_rejected, "the pass-by-pass verifier rejected a stage's output");
    (Fuel_exhausted, "a per-pass step budget ran out (blowup guard)");
    (Vm_trap, "the VM trapped: out-of-bounds or unknown storage access");
    (Internal, "an unclassified internal failure");
    (Injected, "a deliberately injected fault (testing only)");
    ( Optimal_bailed,
      "the exact pack solver ran out of budget and fell back to the heuristic" );
    ( Deadline_exceeded,
      "the per-job wall-clock deadline passed before compilation finished" );
  ]

type span = { line : int; col : int }

type t = {
  code : code;
  pass : pass;
  span : span option;
  recoverable : bool;
  message : string;
}

exception Error of t

let make ?span ?(recoverable = true) ~pass code message =
  { code; pass; span; recoverable; message }

let fail ?span ?recoverable ~pass code fmt =
  Format.kasprintf
    (fun message -> raise (Error (make ?span ?recoverable ~pass code message)))
    fmt

let to_string t =
  Printf.sprintf "%s [%s]%s: %s" (code_name t.code) (pass_name t.pass)
    (match t.span with
    | Some { line; col } -> Printf.sprintf " at %d:%d" line col
    | None -> "")
    t.message

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Hand-rolled JSON: the toolchain has no JSON library, and bailout
   reports must stay machine-readable, so escaping is done here. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let span =
    match t.span with
    | Some { line; col } -> Printf.sprintf ",\"line\":%d,\"col\":%d" line col
    | None -> ""
  in
  Printf.sprintf
    "{\"code\":\"%s\",\"reason\":\"%s\",\"pass\":\"%s\",\"recoverable\":%b%s,\"message\":\"%s\"}"
    (code_id t.code) (code_mnemonic t.code) (pass_name t.pass) t.recoverable span
    (json_escape t.message)

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Slp_error.Error: " ^ to_string t)
    | _ -> None)

module Deadline = struct
  type error = t

  type t = {
    clock : unit -> float;
    expires : float;  (** Absolute clock reading; [infinity] never fires. *)
    seconds : float;
  }

  let never = { clock = (fun () -> 0.0); expires = infinity; seconds = infinity }

  let create ~clock ~seconds =
    if seconds = infinity then never
    else { clock; expires = clock () +. seconds; seconds }

  let expired t = t.expires < infinity && t.clock () > t.expires
  let remaining t = if t.expires = infinity then infinity else t.expires -. t.clock ()

  let breach ?(pass = Pipeline) t : error =
    make ~pass Deadline_exceeded
      (Printf.sprintf "wall-clock deadline of %.3fs exceeded in %s" t.seconds
         (pass_name pass))

  let check ?pass t = if expired t then raise (Error (breach ?pass t))
end

module Fuel = struct
  type error = t

  type t = {
    fuel_pass : pass;
    budget : int;
    mutable left : int;
    deadline : Deadline.t option;
    mutable until_clock : int;  (** Ticks left before the next deadline read. *)
  }

  (* Reading the clock on every tick would dominate tight grouping
     loops, so the deadline is consulted once per [clock_stride]
     ticks — cooperative enforcement with bounded slack. *)
  let clock_stride = 256

  let create ?deadline ~pass ~budget () =
    {
      fuel_pass = pass;
      budget;
      left = max 0 budget;
      deadline;
      until_clock = clock_stride;
    }

  let exhausted t : error =
    make ~pass:t.fuel_pass Fuel_exhausted
      (Printf.sprintf "step budget of %d exhausted in %s" t.budget
         (pass_name t.fuel_pass))

  let tick t =
    if t.left <= 0 then raise (Error (exhausted t)) else t.left <- t.left - 1;
    match t.deadline with
    | None -> ()
    | Some d ->
        t.until_clock <- t.until_clock - 1;
        if t.until_clock <= 0 then begin
          t.until_clock <- clock_stride;
          Deadline.check ~pass:t.fuel_pass d
        end

  let remaining t = t.left
end
