(** Capped exponential retry backoff with seeded jitter.

    The compile service retries jobs whose worker died or whose
    attempt failed; naive fixed delays synchronise retries into
    thundering herds, so each delay is [base * factor^attempt] capped
    at [cap], with a uniformly-drawn jitter fraction subtracted.  All
    randomness comes from an explicit {!Prng.t}: equal seeds yield
    equal delay sequences, which is what makes the service fault
    matrix reproducible bit-for-bit. *)

type policy = {
  base : float;  (** First-retry delay, seconds. *)
  factor : float;  (** Growth per attempt ([>= 1]). *)
  cap : float;  (** Upper bound on any delay, seconds. *)
  jitter : float;  (** Fraction of the delay randomised away, [0, 1]. *)
}

val default : policy
(** 50 ms base, doubling, capped at 2 s, half jittered. *)

val delay : policy -> prng:Prng.t -> attempt:int -> float
(** Delay before retry number [attempt] (1-based: the first retry is
    [attempt = 1]).  Always in [(1 - jitter) * d, d] where [d] is the
    capped exponential; deterministic in the prng state. *)
