(** FNV-1a 64-bit content hashing.

    The compile service addresses its result cache by a hash of the
    job's semantic inputs and stamps every cache entry with an
    integrity digest that is re-verified on read.  Both uses need a
    deterministic, dependency-free, cheap hash over byte strings with
    good avalanche behaviour — cryptographic strength is not required
    (the cache defends against corruption and aliasing accidents, not
    adversaries), so FNV-1a at 64 bits fits.

    All functions are pure; equal inputs hash equal across runs,
    architectures and OCaml versions (the arithmetic is explicit
    [Int64]). *)

val hash64 : string -> int64
(** FNV-1a over the bytes of the string, standard offset basis and
    prime. *)

val combine : int64 -> string -> int64
(** Continue a running hash with a length prefix followed by the
    field's bytes.  The length framing keeps field boundaries
    significant, so [["ab"; "c"]] and [["a"; "bc"]] combine to
    different digests. *)

val hash_fields : string list -> int64
(** Fold {!combine} over the fields from the FNV offset basis — the
    cache-key helper. *)

val to_hex : int64 -> string
(** Fixed-width 16-digit lowercase hex. *)

val of_hex : string -> int64 option
(** Inverse of {!to_hex}; [None] on malformed input. *)
