type report = { diagnostics : Diagnostic.t list }

let empty = { diagnostics = [] }
let of_diagnostics diagnostics = { diagnostics }
let merge a b = { diagnostics = a.diagnostics @ b.diagnostics }
let errors r = List.filter Diagnostic.is_error r.diagnostics
let warnings r = List.filter (fun d -> not (Diagnostic.is_error d)) r.diagnostics
let is_clean r = errors r = []

let pp_report ppf r =
  match r.diagnostics with
  | [] -> Format.fprintf ppf "verification clean"
  | ds ->
      Format.fprintf ppf "@[<v>";
      List.iteri
        (fun i d ->
          if i > 0 then Format.fprintf ppf "@,";
          Diagnostic.pp ppf d)
        ds;
      Format.fprintf ppf "@]"

let report_to_string r = Format.asprintf "%a" pp_report r

exception Verification_failed of string * report

let () =
  Printexc.register_printer (function
    | Verification_failed (what, r) ->
        Some
          (Printf.sprintf "Verification_failed(%s):\n%s" what (report_to_string r))
    | _ -> None)

let raise_if_errors ~what r =
  if not (is_clean r) then raise (Verification_failed (what, r))

(* Stage-tagged checker entry points, re-exported so callers need only
   this module. *)
let check_ir = Ir_verify.check
let check_plan = Plan_verify.check
let check_visa = Visa_verify.check
let check_deps = Dep_verify.check
