type severity = Error | Warning

type stage =
  | Prepared_ir
  | Grouping
  | Scheduling
  | Layout
  | Lowering
  | Regalloc

let stage_name = function
  | Prepared_ir -> "prepared-ir"
  | Grouping -> "grouping"
  | Scheduling -> "scheduling"
  | Layout -> "layout"
  | Lowering -> "lowering"
  | Regalloc -> "regalloc"

type t = {
  rule : string;
  severity : severity;
  stage : stage;
  where : string;
  message : string;
}

let make ?(severity = Error) ~rule ~stage ~where fmt =
  Format.kasprintf (fun message -> { rule; severity; stage; where; message }) fmt

let error ~rule ~stage ~where fmt = make ~severity:Error ~rule ~stage ~where fmt
let warning ~rule ~stage ~where fmt = make ~severity:Warning ~rule ~stage ~where fmt

let is_error d = d.severity = Error

let pp ppf d =
  Format.fprintf ppf "[%s] %s %s: %s%s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    (stage_name d.stage) d.rule d.message
    (if d.where = "" then "" else Printf.sprintf " (at %s)" d.where)

let to_string d = Format.asprintf "%a" pp d
