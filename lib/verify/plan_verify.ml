open Slp_ir
module D = Diagnostic
module Driver = Slp_core.Driver
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Config = Slp_core.Config
module Chains = Slp_analysis.Chains
module Alignment = Slp_analysis.Alignment

let r_isomorphic = "PACK01-isomorphic"
let r_intra_dep = "PACK02-intra-dep"
let r_width = "PACK03-width"
let r_partition = "PACK04-partition"
let r_alignment = "PACK05-alignment"
let r_coverage = "SCHED01-coverage"
let r_dep_order = "SCHED02-dep-order"
let r_def_use = "SCHED03-def-use"

let where_of_super ms =
  Printf.sprintf "<%s>" (String.concat ", " (List.map (fun m -> "S" ^ string_of_int m) ms))

(* Lane budget for the elements of a statement: how many of its values
   fit the SIMD datapath.  Statements always have a typed lhs; an
   untyped lookup (undeclared operand) is an IR-level error reported by
   {!Ir_verify}, so fall back to the f64 budget here. *)
let lane_budget ~env ~config (s : Stmt.t) =
  let bits =
    match Env.operand_ty env s.Stmt.lhs with
    | Some ty -> Types.bits ty
    | None | (exception Invalid_argument _) -> 64
  in
  max 1 (config.Config.datapath_bits / bits)

let check_partition ~report (block : Block.t) (g : Grouping.result) =
  let counts = Hashtbl.create 16 in
  let bump id = Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)) in
  List.iter (fun ms -> List.iter bump ms) g.Grouping.groups;
  List.iter bump g.Grouping.singles;
  List.iter
    (fun ms ->
      if List.length ms < 2 then
        report
          (D.error ~rule:r_partition ~stage:D.Grouping ~where:(where_of_super ms)
             "group of size %d (groups need at least two members)" (List.length ms)))
    g.Grouping.groups;
  let ids = Block.stmt_ids block in
  let in_block = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_block id ()) ids;
  List.iter
    (fun id ->
      match Hashtbl.find_opt counts id with
      | Some 1 -> ()
      | Some n ->
          report
            (D.error ~rule:r_partition ~stage:D.Grouping
               ~where:(Printf.sprintf "S%d" id)
               "statement claimed by %d groups/singles" n)
      | None ->
          report
            (D.error ~rule:r_partition ~stage:D.Grouping
               ~where:(Printf.sprintf "S%d" id)
               "statement missing from grouping (neither grouped nor single)"))
    ids;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem in_block id) then
        report
          (D.error ~rule:r_partition ~stage:D.Grouping
             ~where:(Printf.sprintf "S%d" id)
             "grouping references a statement not in block %s" block.Block.label))
    counts

let check_superword ~report ~env ~config ~nest ~deps (block : Block.t) ms =
  let where = where_of_super ms in
  match List.map (fun m -> (m, Block.find block m)) ms with
  | exception Not_found ->
      report
        (D.error ~rule:r_coverage ~stage:D.Scheduling ~where
           "superword references a statement not in block %s" block.Block.label)
  | members ->
      let stmts = List.map snd members in
      let first = List.hd stmts in
      (* Width: 2 <= |ms| <= datapath lanes for the member type. *)
      let budget = lane_budget ~env ~config first in
      if List.length ms < 2 || List.length ms > budget then
        report
          (D.error ~rule:r_width ~stage:D.Grouping ~where
             "superword width %d outside [2, %d] for a %d-bit datapath"
             (List.length ms) budget config.Config.datapath_bits);
      (* Pairwise independence (paper §4.1 constraints 1-2), judged
         against the dependence pairs the plan was built from. *)
      let related a b =
        List.exists (fun (p, q) -> (p = a && q = b) || (p = b && q = a)) deps
      in
      let rec indep = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                if related a b then
                  report
                    (D.error ~rule:r_intra_dep ~stage:D.Grouping ~where
                       "members S%d and S%d are dependent" a b))
              rest;
            indep rest
      in
      indep ms;
      (* Isomorphism (constraint 3). *)
      let isomorphic =
        List.for_all
          (fun (m, s) ->
            let ok = Stmt.isomorphic ~env first s in
            if not ok then
              report
                (D.error ~rule:r_isomorphic ~stage:D.Grouping ~where
                   "member S%d is not isomorphic to S%d" m
                   first.Stmt.id);
            ok)
          (List.tl members)
      in
      (* Alignment internal consistency of contiguous packs (positions
         exist only for isomorphic groups).  Transposed walk: the
         per-member position lists are computed once, and the verdict
         machinery runs only on packs whose head is a memory element. *)
      if isomorphic then begin
        let lanes = List.length stmts in
        let check_pack pos pack =
          match pack with
          | Operand.Elem _ :: _ when Alignment.contiguous_pack ~env pack -> (
              match Alignment.of_operand ~env ~nest ~lanes (List.hd pack) with
              | Some (Alignment.Misaligned k) when k <= 0 || k >= lanes ->
                  report
                    (D.error ~rule:r_alignment ~stage:D.Grouping ~where
                       "contiguous pack at position %d claims misalignment %d outside (0, %d)"
                       pos k lanes)
              | Some _ -> ()
              | None ->
                  report
                    (D.error ~rule:r_alignment ~stage:D.Grouping ~where
                       "contiguous pack at position %d has no alignment verdict" pos))
          | _ -> ()
        in
        let rec walk pos rows =
          if not (List.exists (fun r -> r = []) rows) then begin
            check_pack pos (List.map List.hd rows);
            walk (pos + 1) (List.map List.tl rows)
          end
        in
        walk 0 (List.map Stmt.positions stmts)
      end

let check_schedule ~report ~deps (block : Block.t) (sched : Schedule.t) =
  let order_of = Hashtbl.create 32 in
  List.iteri
    (fun idx item ->
      List.iter
        (fun m -> Hashtbl.replace order_of m idx)
        (match item with Schedule.Single s -> [ s ] | Schedule.Superword ms -> ms))
    sched.Schedule.items;
  let scheduled = Schedule.scheduled_stmt_ids sched in
  let ids = Block.stmt_ids block in
  if List.sort compare scheduled <> List.sort compare ids then
    report
      (D.error ~rule:r_coverage ~stage:D.Scheduling ~where:block.Block.label
         "schedule covers {%s}, block has {%s}"
         (String.concat "," (List.map string_of_int (List.sort compare scheduled)))
         (String.concat "," (List.map string_of_int (List.sort compare ids))))
  else begin
    (* Every dependence goes forward across items (an intra-item
       dependence is PACK02's finding, not repeated here). *)
    List.iter
      (fun (p, q) ->
        match (Hashtbl.find_opt order_of p, Hashtbl.find_opt order_of q) with
        | Some ip, Some iq ->
            if ip > iq then
              report
                (D.error ~rule:r_dep_order ~stage:D.Scheduling
                   ~where:(Printf.sprintf "S%d -> S%d" p q)
                   "dependence runs backward in the schedule (item %d after %d)" ip iq)
        | _ -> ())
      deps;
    (* Reaching scalar definitions must be untouched by the reorder: a
       second, independent witness computed through Analysis.Chains.
       An identity order cannot change anything — skip the recompute. *)
    if scheduled = ids then ()
    else
      match
        Block.make ~label:block.Block.label (List.map (Block.find block) scheduled)
      with
    | exception Invalid_argument _ -> ()
    | reordered ->
        let before = Chains.compute block and after = Chains.compute reordered in
        List.iter
          (fun id ->
            let norm l = List.sort compare l in
            if norm (Chains.use_def before id) <> norm (Chains.use_def after id) then
              report
                (D.error ~rule:r_def_use ~stage:D.Scheduling
                   ~where:(Stmt.to_string (Block.find block id))
                   "scheduled order changes a reaching definition of S%d" id))
          ids
  end

let check_block_plan ~env ~config (p : Driver.block_plan) =
  let diags = ref [] in
  let report d = diags := d :: !diags in
  check_partition ~report p.Driver.block p.Driver.grouping;
  (match p.Driver.schedule with
  | None -> ()
  | Some sched ->
      List.iter
        (function
          | Schedule.Single _ -> ()
          | Schedule.Superword ms ->
              check_superword ~report ~env ~config ~nest:p.Driver.nest
                ~deps:p.Driver.deps p.Driver.block ms)
        sched.Schedule.items;
      check_schedule ~report ~deps:p.Driver.deps p.Driver.block sched);
  List.rev !diags

let check ~config (plan : Driver.program_plan) =
  let env = plan.Driver.program.Program.env in
  List.concat_map (check_block_plan ~env ~config) plan.Driver.plans
