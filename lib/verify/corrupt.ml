open Slp_ir
module D = Diagnostic
module Driver = Slp_core.Driver
module Grouping = Slp_core.Grouping
module Schedule = Slp_core.Schedule
module Config = Slp_core.Config
module Visa = Slp_vm.Visa
module M = Slp_machine.Machine

type case = {
  name : string;
  expected_rule : string;
  diags : unit -> Diagnostic.t list;
}

let config = Config.make ~datapath_bits:128 ()

let base_env () =
  let env = Env.create () in
  Env.declare_array env "A" Types.F64 [ 64 ];
  Env.declare_array env "B" Types.F64 [ 64 ];
  Env.declare_array env "C" Types.F64 [ 64 ];
  Env.declare_scalar env "t" Types.F64;
  env

let elem b k = Operand.Elem (b, [ Affine.const k ])
let leaf op = Expr.Leaf op
let stmt ~id ~lhs ~rhs = Stmt.make ~id ~lhs ~rhs

(* -- scalar IR corruptions ------------------------------------------ *)

let ir_program stmts =
  let env = base_env () in
  Program.make ~name:"corrupt" ~env [ Program.Stmts (Block.make ~label:"bb" stmts) ]

let ir_undeclared () =
  Ir_verify.check
    (ir_program
       [ stmt ~id:1 ~lhs:(elem "A" 0) ~rhs:Expr.(Bin (Types.Add, leaf (Operand.Scalar "zz"), leaf (Operand.Const 1.0))) ])

let ir_rank () =
  Ir_verify.check
    (ir_program
       [ stmt ~id:1 ~lhs:(Operand.Elem ("A", [ Affine.const 0; Affine.const 1 ])) ~rhs:(leaf (elem "B" 0)) ])

let ir_type_mix () =
  let env = base_env () in
  Env.declare_scalar env "s32" Types.F32;
  Ir_verify.check
    (Program.make ~name:"corrupt" ~env
       [
         Program.Stmts
           (Block.make ~label:"bb"
              [ stmt ~id:1 ~lhs:(elem "A" 0) ~rhs:(leaf (Operand.Scalar "s32")) ]);
       ])

let ir_dup_id () =
  (* Forged via the record representation: Block.make would reject it,
     which is exactly why the verifier re-checks. *)
  let env = base_env () in
  let s k = stmt ~id:1 ~lhs:(elem "A" k) ~rhs:(leaf (elem "B" k)) in
  let block = { Block.label = "bb"; stmts = [ s 0; s 1 ] } in
  Ir_verify.check (Program.make ~name:"corrupt" ~env [ Program.Stmts block ])

let ir_oob () =
  let env = base_env () in
  let body =
    Block.make ~label:"bb"
      [
        stmt ~id:1
          ~lhs:(Operand.Elem ("A", [ Affine.make [ ("i", 1) ] 1 ]))
          ~rhs:(leaf (Operand.Elem ("B", [ Affine.var "i" ])));
      ]
  in
  Ir_verify.check
    (Program.make ~name:"corrupt" ~env
       [ Program.loop "i" ~lo:(Affine.const 0) ~hi:(Affine.const 64) [ Program.Stmts body ] ])

let ir_index_assign () =
  let env = base_env () in
  let body =
    Block.make ~label:"bb"
      [ stmt ~id:1 ~lhs:(Operand.Scalar "i") ~rhs:(leaf (Operand.Const 0.0)) ]
  in
  Ir_verify.check
    (Program.make ~name:"corrupt" ~env
       [ Program.loop "i" ~lo:(Affine.const 0) ~hi:(Affine.const 8) [ Program.Stmts body ] ])

(* -- pack / schedule corruptions ------------------------------------ *)

let plan_of ~env block items groups singles =
  let grouping =
    { Grouping.groups; singles; rounds = 1; decisions = List.length groups }
  in
  let stats =
    { Schedule.direct_reuses = 0; permuted_reuses = 0; packed_sources = 0; permutations = 0 }
  in
  let plan =
    {
      Driver.block;
      nest = [];
      deps = Block.dep_pairs block;
      grouping;
      schedule = Some { Schedule.items; stats };
      estimate = None;
    }
  in
  Plan_verify.check_block_plan ~env ~config plan

let pack_not_isomorphic () =
  let env = base_env () in
  let block =
    Block.make ~label:"bb"
      [
        stmt ~id:1 ~lhs:(elem "A" 0)
          ~rhs:Expr.(Bin (Types.Add, leaf (elem "B" 0), leaf (elem "C" 0)));
        stmt ~id:2 ~lhs:(elem "A" 1) ~rhs:Expr.(Un (Types.Neg, leaf (elem "B" 1)));
      ]
  in
  plan_of ~env block [ Schedule.Superword [ 1; 2 ] ] [ [ 1; 2 ] ] []

let pack_intra_dep () =
  let env = base_env () in
  let block =
    Block.make ~label:"bb"
      [
        stmt ~id:1 ~lhs:(Operand.Scalar "t")
          ~rhs:Expr.(Bin (Types.Add, leaf (elem "B" 0), leaf (elem "C" 0)));
        stmt ~id:2 ~lhs:(elem "A" 0)
          ~rhs:Expr.(Bin (Types.Add, leaf (Operand.Scalar "t"), leaf (elem "C" 1)));
      ]
  in
  plan_of ~env block [ Schedule.Superword [ 1; 2 ] ] [ [ 1; 2 ] ] []

let pack_too_wide () =
  let env = base_env () in
  let s k =
    stmt ~id:(k + 1) ~lhs:(elem "A" k)
      ~rhs:Expr.(Bin (Types.Add, leaf (elem "B" k), leaf (elem "C" k)))
  in
  let block = Block.make ~label:"bb" [ s 0; s 1; s 2; s 3 ] in
  plan_of ~env block [ Schedule.Superword [ 1; 2; 3; 4 ] ] [ [ 1; 2; 3; 4 ] ] []

let sched_reordered_dependent_stores () =
  let env = base_env () in
  let block =
    Block.make ~label:"bb"
      [
        stmt ~id:1 ~lhs:(elem "A" 0) ~rhs:(leaf (elem "B" 0));
        stmt ~id:2 ~lhs:(elem "A" 0)
          ~rhs:Expr.(Bin (Types.Add, leaf (elem "A" 0), leaf (elem "C" 0)));
      ]
  in
  plan_of ~env block [ Schedule.Single 2; Schedule.Single 1 ] [] [ 1; 2 ]

let sched_def_use_broken () =
  let env = base_env () in
  let block =
    Block.make ~label:"bb"
      [
        stmt ~id:1 ~lhs:(Operand.Scalar "t") ~rhs:(leaf (elem "B" 0));
        stmt ~id:2 ~lhs:(Operand.Scalar "t") ~rhs:(leaf (elem "B" 1));
        stmt ~id:3 ~lhs:(elem "A" 0) ~rhs:(leaf (Operand.Scalar "t"));
      ]
  in
  plan_of ~env block [ Schedule.Single 2; Schedule.Single 1; Schedule.Single 3 ] []
    [ 1; 2; 3 ]

(* -- Visa corruptions ----------------------------------------------- *)

let machine = M.intel_dunnington

let visa_check ?stats instrs =
  let env = base_env () in
  Visa_verify.check ?stats ~machine
    { Visa.name = "corrupt"; env; setup = []; body = [ Visa.Block instrs ] }

let vload dst k n = Visa.Vload { dst; elems = List.init n (fun j -> elem "A" (k + j)) }
let vstore src k n = Visa.Vstore { src; elems = List.init n (fun j -> elem "C" (k + j)) }

let visa_undef_vreg () =
  visa_check [ Visa.Vbin { dst = 1; op = Types.Add; a = 0; b = 0 }; vstore 1 0 2 ]

let visa_selector_oob () =
  visa_check
    [
      vload 0 0 2;
      Visa.Vpermute { dst = 1; src = 0; sel = [| 0; 5 |] };
      vstore 1 0 2;
    ]

let visa_swapped_operand_lanes () =
  visa_check
    [
      vload 0 0 2;
      Visa.Vgather { dst = 1; srcs = [ Visa.Imm 1.0; Visa.Imm 2.0; Visa.Imm 3.0; Visa.Imm 4.0 ] };
      Visa.Vbin { dst = 2; op = Types.Mul; a = 0; b = 1 };
      vstore 2 0 2;
    ]

let visa_noncontig_load () =
  visa_check
    [ Visa.Vload { dst = 0; elems = [ elem "A" 0; elem "A" 2 ] }; vstore 0 0 2 ]

let visa_dropped_spill () =
  visa_check [ Visa.Vreload { dst = 0; slot = 0 }; vstore 0 0 2 ]

let visa_spill_stats () =
  visa_check ~stats:Slp_codegen.Regalloc.zero_stats
    [
      vload 0 0 2;
      Visa.Vspill { src = 0; slot = 0 };
      Visa.Vreload { dst = 1; slot = 0 };
      vstore 1 0 2;
    ]

let visa_too_wide () =
  visa_check [ vload 0 0 4; vstore 0 0 4 ]

let visa_undeclared_scalar () =
  visa_check
    [
      Visa.Vgather { dst = 0; srcs = [ Visa.Reg "nope"; Visa.Reg "t" ] };
      vstore 0 0 2;
    ]

let cases =
  [
    { name = "ir_undeclared_scalar"; expected_rule = "IR01-undeclared"; diags = ir_undeclared };
    { name = "ir_rank_mismatch"; expected_rule = "IR02-rank"; diags = ir_rank };
    { name = "ir_type_mix"; expected_rule = "IR04-type-mix"; diags = ir_type_mix };
    { name = "ir_duplicate_id"; expected_rule = "IR05-dup-id"; diags = ir_dup_id };
    { name = "ir_out_of_bounds"; expected_rule = "IR07-bounds"; diags = ir_oob };
    { name = "ir_index_assign"; expected_rule = "IR08-index-assign"; diags = ir_index_assign };
    { name = "pack_not_isomorphic"; expected_rule = "PACK01-isomorphic"; diags = pack_not_isomorphic };
    { name = "pack_intra_dependence"; expected_rule = "PACK02-intra-dep"; diags = pack_intra_dep };
    { name = "pack_too_wide"; expected_rule = "PACK03-width"; diags = pack_too_wide };
    {
      name = "sched_reordered_dependent_stores";
      expected_rule = "SCHED02-dep-order";
      diags = sched_reordered_dependent_stores;
    };
    { name = "sched_def_use_broken"; expected_rule = "SCHED03-def-use"; diags = sched_def_use_broken };
    { name = "visa_undef_vreg"; expected_rule = "VISA01-vreg-undef"; diags = visa_undef_vreg };
    {
      name = "visa_swapped_operand_lanes";
      expected_rule = "VISA02-lanes";
      diags = visa_swapped_operand_lanes;
    };
    { name = "visa_selector_oob"; expected_rule = "VISA03-selector"; diags = visa_selector_oob };
    { name = "visa_noncontiguous_load"; expected_rule = "VISA04-contiguity"; diags = visa_noncontig_load };
    { name = "visa_dropped_spill"; expected_rule = "VISA05-spill-pair"; diags = visa_dropped_spill };
    { name = "visa_spill_stats_mismatch"; expected_rule = "VISA06-spill-stats"; diags = visa_spill_stats };
    { name = "visa_undeclared_scalar"; expected_rule = "VISA07-names"; diags = visa_undeclared_scalar };
    { name = "visa_too_wide"; expected_rule = "VISA08-width"; diags = visa_too_wide };
  ]
