(** Visa bytecode verifier — runs on the lowered vector program both
    before ([Lowering]) and after ([Regalloc]) register allocation.
    Registers are validated per straight-line block (code generation
    never carries a vector register across block boundaries).

    Rules:
    - [VISA01-vreg-undef]: vector register used before definition;
    - [VISA02-lanes]: lane-count (or element-type) disagreement
      between an instruction's operands;
    - [VISA03-selector]: [Vpermute]/[Vshuffle2] selector indices out
      of bounds;
    - [VISA04-contiguity]: [Vload]/[Vstore] lanes not contiguous in
      row-major memory;
    - [VISA05-spill-pair]: [Vreload] from a slot never spilled in the
      block;
    - [VISA06-spill-stats]: spill/reload instruction counts disagree
      with {!Slp_codegen.Regalloc.stats} (post-regalloc only);
    - [VISA07-names]: undeclared scalars/arrays, or scalar-slot
      accesses inconsistent with the placed scalar layout;
    - [VISA08-width]: register lane count exceeds the machine's SIMD
      datapath. *)

val check :
  ?stage:Diagnostic.stage ->
  ?stats:Slp_codegen.Regalloc.stats ->
  ?scalar_offsets:(string * int) list ->
  machine:Slp_machine.Machine.t ->
  Slp_vm.Visa.program ->
  Diagnostic.t list
(** Default [stage] is [Lowering]; pass [stats] (and the same
    [scalar_offsets] given to the lowerer) when checking
    post-allocation code. *)
