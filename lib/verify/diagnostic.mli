(** Structured verifier diagnostics.

    Every finding carries a stable rule id (the catalogue lives in
    DESIGN.md and is asserted by the mutation tests), a severity, the
    pipeline stage whose output was being checked, the offending
    statement or instruction rendered as text, and a human message. *)

type severity = Error | Warning

type stage =
  | Prepared_ir  (** After constant folding + unrolling. *)
  | Grouping  (** Pack legality of a block plan. *)
  | Scheduling  (** Order legality of a block plan. *)
  | Layout  (** The rewritten program of [Global_layout]. *)
  | Lowering  (** Visa bytecode before register allocation. *)
  | Regalloc  (** Visa bytecode after register allocation. *)

val stage_name : stage -> string

type t = {
  rule : string;  (** Stable id, e.g. ["VISA03-selector"]. *)
  severity : severity;
  stage : stage;
  where : string;  (** Offending stmt/instr, rendered; may be empty. *)
  message : string;
}

val error :
  rule:string -> stage:stage -> where:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  rule:string -> stage:stage -> where:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
