(** The corruptor: a corpus of deliberately-broken IR, plans, and Visa
    bytecode, each annotated with the rule id that must reject it.

    The mutation tests iterate {!cases} and assert that running the
    relevant checker on the corrupted artifact produces a diagnostic
    with [expected_rule] — proving every checker actually fires, not
    just that clean code passes. *)

type case = {
  name : string;
  expected_rule : string;
  diags : unit -> Diagnostic.t list;  (** Runs the checker on the corrupted artifact. *)
}

val cases : case list
(** 19 corruptions spanning scalar IR, pack, schedule, and Visa
    layers. *)
