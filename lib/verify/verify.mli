(** Pass-by-pass verification driver (LLVM's [-verify-each] analogue).

    The pipeline runs a checker after every stage — scalar IR after
    pre-processing ({!Ir_verify}), pack and schedule legality after
    planning ({!Plan_verify}), Visa bytecode after lowering and again
    after register allocation ({!Visa_verify}) — and aggregates the
    findings into a [report].  Error-severity findings abort
    compilation via {!Verification_failed}; warnings ride along. *)

type report = { diagnostics : Diagnostic.t list }

val empty : report
val of_diagnostics : Diagnostic.t list -> report
val merge : report -> report -> report
val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list
val is_clean : report -> bool
(** No error-severity diagnostics (warnings allowed). *)

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

exception Verification_failed of string * report
(** [(what, report)] — [what] names the program being compiled. *)

val raise_if_errors : what:string -> report -> unit

val check_ir : ?stage:Diagnostic.stage -> Slp_ir.Program.t -> Diagnostic.t list
(** {!Ir_verify.check}. *)

val check_plan :
  config:Slp_core.Config.t -> Slp_core.Driver.program_plan -> Diagnostic.t list
(** {!Plan_verify.check}. *)

val check_visa :
  ?stage:Diagnostic.stage ->
  ?stats:Slp_codegen.Regalloc.stats ->
  ?scalar_offsets:(string * int) list ->
  machine:Slp_machine.Machine.t ->
  Slp_vm.Visa.program ->
  Diagnostic.t list
(** {!Visa_verify.check}. *)

val check_deps : ?stage:Diagnostic.stage -> Slp_ir.Program.t -> Diagnostic.t list
(** {!Dep_verify.check} — DEP01–DEP05 over the dependence graph. *)
