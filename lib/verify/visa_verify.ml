open Slp_ir
module D = Diagnostic
module M = Slp_machine.Machine
module Visa = Slp_vm.Visa
module Alignment = Slp_analysis.Alignment

let r_vreg = "VISA01-vreg-undef"
let r_lanes = "VISA02-lanes"
let r_selector = "VISA03-selector"
let r_contiguity = "VISA04-contiguity"
let r_spill_pair = "VISA05-spill-pair"
let r_spill_stats = "VISA06-spill-stats"
let r_names = "VISA07-names"
let r_width = "VISA08-width"

type vreg_info = { lanes : int; ty : Types.scalar_ty option }

let check ?(stage = D.Lowering) ?stats ?(scalar_offsets = []) ~machine
    (p : Visa.program) =
  let env = p.Visa.env in
  let diags = ref [] in
  let report d = diags := d :: !diags in
  (* [where] is lazy: rendering an instruction dominates the cost of
     checking it, so only pay on the error path. *)
  let err ~rule ~where fmt =
    Format.kasprintf
      (fun m -> report (D.error ~rule ~stage ~where:(Lazy.force where) "%s" m))
      fmt
  in
  let spills = ref 0 and reloads = ref 0 in
  let offsets = Hashtbl.create 16 in
  List.iter (fun (v, o) -> Hashtbl.replace offsets v o) scalar_offsets;
  let where_of i = Format.asprintf "%a" Visa.pp_instr i in
  (* -- name resolution ---------------------------------------------- *)
  let check_scalar_name ~nest ~where v =
    if (not (List.mem v nest)) && Env.scalar_ty env v = None then
      err ~rule:r_names ~where "undeclared scalar %s" v
  in
  let check_mem ~where op =
    match op with
    | Operand.Elem (b, _) ->
        if Env.array_info env b = None then err ~rule:r_names ~where "undeclared array %s" b
    | Operand.Scalar _ | Operand.Const _ ->
        err ~rule:r_names ~where "memory lane is not an array element: %s"
          (Operand.to_string op)
  in
  let ty_of_mem = function
    | Operand.Elem (b, _) -> Option.map (fun i -> i.Env.elem_ty) (Env.array_info env b)
    | Operand.Scalar _ | Operand.Const _ -> None
  in
  let check_lane_src ~nest ~where = function
    | Visa.Mem op ->
        check_mem ~where op;
        ty_of_mem op
    | Visa.Reg v ->
        check_scalar_name ~nest ~where v;
        if List.mem v nest then Some Types.I64 else Env.scalar_ty env v
    | Visa.Imm _ -> None
  in
  (* -- per-block verification --------------------------------------- *)
  let check_block ~nest instrs =
    let vregs : (Visa.vreg, vreg_info) Hashtbl.t = Hashtbl.create 32 in
    let slots : (int, vreg_info) Hashtbl.t = Hashtbl.create 8 in
    let use ~where v =
      match Hashtbl.find_opt vregs v with
      | Some info -> Some info
      | None ->
          err ~rule:r_vreg ~where "v%d used before any definition in this block" v;
          None
    in
    let unify ~where a b =
      match (a, b) with
      | Some ta, Some tb when ta <> tb ->
          err ~rule:r_lanes ~where "operand element types disagree (%s vs %s)"
            (Types.scalar_ty_to_string ta) (Types.scalar_ty_to_string tb);
          Some ta
      | Some t, _ | _, Some t -> Some t
      | None, None -> None
    in
    let check_width ~where { lanes; ty } =
      let over =
        match ty with
        | Some ty -> lanes * Types.bits ty > machine.M.simd_bits
        | None -> lanes * 8 > machine.M.simd_bits
      in
      if over then
        err ~rule:r_width ~where "%d lanes%s exceed the %d-bit datapath" lanes
          (match ty with
          | Some ty -> Printf.sprintf " of %s" (Types.scalar_ty_to_string ty)
          | None -> "")
          machine.M.simd_bits
    in
    let def ~where v info =
      check_width ~where info;
      Hashtbl.replace vregs v info
    in
    let check_scalar_slots ~where names =
      let lanes = List.length names in
      List.iter (check_scalar_name ~nest ~where) names;
      match List.map (fun v -> Hashtbl.find_opt offsets v) names with
      | offs when List.for_all Option.is_some offs -> (
          match List.map Option.get offs with
          | first :: _ as offs ->
              if first mod (8 * lanes) <> 0 then
                err ~rule:r_names ~where "scalar slot base offset %d not %d-byte aligned"
                  first (8 * lanes);
              List.iteri
                (fun k o ->
                  if o <> first + (8 * k) then
                    err ~rule:r_names ~where
                      "scalar slots are not contiguous (lane %d at offset %d, expected %d)"
                      k o
                      (first + (8 * k)))
                offs
          | [] -> err ~rule:r_names ~where "empty scalar lane list")
      | _ ->
          err ~rule:r_names ~where
            "scalar-slot access without a placed scalar layout"
    in
    let check_contiguous ~where elems =
      let contiguous =
        match elems with
        | Operand.Elem _ :: _ -> (
            try Alignment.contiguous_pack ~env elems with Invalid_argument _ -> false)
        | _ -> false
      in
      if not contiguous then
        err ~rule:r_contiguity ~where "lanes are not contiguous in memory: [%s]"
          (String.concat ", " (List.map Operand.to_string elems))
    in
    List.iter
      (fun instr ->
        let where = lazy (where_of instr) in
        match instr with
        | Visa.Vload { dst; elems } ->
            List.iter (check_mem ~where) elems;
            check_contiguous ~where elems;
            def ~where dst { lanes = List.length elems; ty = ty_of_mem (List.hd elems) }
        | Visa.Vstore { src; elems } ->
            List.iter (check_mem ~where) elems;
            check_contiguous ~where elems;
            (match use ~where src with
            | Some { lanes; _ } ->
                if lanes <> List.length elems then
                  err ~rule:r_lanes ~where "storing %d lanes from a %d-lane register"
                    (List.length elems) lanes
            | None -> ())
        | Visa.Vgather { dst; srcs } ->
            let tys = List.map (check_lane_src ~nest ~where) srcs in
            let ty = List.fold_left (unify ~where) None tys in
            def ~where dst { lanes = List.length srcs; ty }
        | Visa.Vunpack { src; dsts } -> (
            List.iter
              (function
                | Some (Visa.To_mem op) -> check_mem ~where op
                | Some (Visa.To_reg v) -> check_scalar_name ~nest ~where v
                | None -> ())
              dsts;
            match use ~where src with
            | Some { lanes; _ } ->
                if lanes <> List.length dsts then
                  err ~rule:r_lanes ~where "unpacking %d lanes from a %d-lane register"
                    (List.length dsts) lanes
            | None -> ())
        | Visa.Vbroadcast { dst; src; lanes } ->
            let ty = check_lane_src ~nest ~where src in
            if lanes < 1 then err ~rule:r_lanes ~where "broadcast to %d lanes" lanes;
            def ~where dst { lanes; ty }
        | Visa.Vpermute { dst; src; sel } -> (
            if Array.length sel = 0 then err ~rule:r_selector ~where "empty selector";
            match use ~where src with
            | Some { lanes; ty } ->
                Array.iter
                  (fun s ->
                    if s < 0 || s >= lanes then
                      err ~rule:r_selector ~where
                        "selector index %d out of bounds for %d lanes" s lanes)
                  sel;
                def ~where dst { lanes = Array.length sel; ty }
            | None -> def ~where dst { lanes = Array.length sel; ty = None })
        | Visa.Vshuffle2 { dst; a; b; sel } ->
            if Array.length sel = 0 then err ~rule:r_selector ~where "empty selector";
            let ia = use ~where a and ib = use ~where b in
            Array.iter
              (fun (side, lane) ->
                if side <> 0 && side <> 1 then
                  err ~rule:r_selector ~where "selector source %d is not 0 or 1" side
                else
                  match if side = 0 then ia else ib with
                  | Some { lanes; _ } ->
                      if lane < 0 || lane >= lanes then
                        err ~rule:r_selector ~where
                          "selector lane %d.%d out of bounds for %d lanes" side lane lanes
                  | None -> ())
              sel;
            let ty =
              unify ~where
                (Option.bind ia (fun i -> i.ty))
                (Option.bind ib (fun i -> i.ty))
            in
            def ~where dst { lanes = Array.length sel; ty }
        | Visa.Vbin { dst; op = _; a; b } ->
            let ia = use ~where a and ib = use ~where b in
            (match (ia, ib) with
            | Some { lanes = la; _ }, Some { lanes = lb; _ } when la <> lb ->
                err ~rule:r_lanes ~where "operands have %d and %d lanes" la lb
            | _ -> ());
            let lanes =
              match (ia, ib) with
              | Some { lanes; _ }, _ | _, Some { lanes; _ } -> lanes
              | None, None -> 0
            in
            let ty =
              unify ~where
                (Option.bind ia (fun i -> i.ty))
                (Option.bind ib (fun i -> i.ty))
            in
            if lanes > 0 then def ~where dst { lanes; ty }
        | Visa.Vun { dst; op = _; a } -> (
            match use ~where a with
            | Some info -> def ~where dst info
            | None -> ())
        | Visa.Vspill { src; slot } -> (
            incr spills;
            match use ~where src with
            | Some info -> Hashtbl.replace slots slot info
            | None -> ())
        | Visa.Vreload { dst; slot } -> (
            incr reloads;
            match Hashtbl.find_opt slots slot with
            | Some info -> def ~where dst info
            | None ->
                err ~rule:r_spill_pair ~where
                  "reload from slot %d, which was never spilled in this block" slot)
        | Visa.Vload_scalars { dst; sources } ->
            check_scalar_slots ~where sources;
            let ty =
              match sources with v :: _ -> Env.scalar_ty env v | [] -> None
            in
            def ~where dst { lanes = List.length sources; ty }
        | Visa.Vstore_scalars { src; targets } ->
            check_scalar_slots ~where targets;
            (match use ~where src with
            | Some { lanes; _ } ->
                if lanes <> List.length targets then
                  err ~rule:r_lanes ~where "storing %d lanes from a %d-lane register"
                    (List.length targets) lanes
            | None -> ())
        | Visa.Sstmt s ->
            (* Scalar statements embedded in vector code: name checks
               only — full statement legality is the IR verifier's job. *)
            List.iter
              (function
                | Operand.Scalar v ->
                    if (not (List.mem v nest)) && Env.scalar_ty env v = None then
                      err ~rule:r_names ~where "undeclared scalar %s" v
                | Operand.Elem (b, _) ->
                    if Env.array_info env b = None then
                      err ~rule:r_names ~where "undeclared array %s" b
                | Operand.Const _ -> ())
              (Stmt.positions s))
      instrs
  in
  let rec walk ~nest items =
    List.iter
      (function
        | Visa.Block instrs -> check_block ~nest instrs
        | Visa.Loop l -> walk ~nest:(l.Visa.index :: nest) l.Visa.body)
      items
  in
  walk ~nest:[] p.Visa.setup;
  walk ~nest:[] p.Visa.body;
  (match stats with
  | None -> ()
  | Some (st : Slp_codegen.Regalloc.stats) ->
      if !spills <> st.Slp_codegen.Regalloc.spills then
        err ~rule:r_spill_stats ~where:(lazy p.Visa.name)
          "program contains %d spill instructions, allocator reported %d" !spills
          st.Slp_codegen.Regalloc.spills;
      if !reloads <> st.Slp_codegen.Regalloc.reloads then
        err ~rule:r_spill_stats ~where:(lazy p.Visa.name)
          "program contains %d reload instructions, allocator reported %d" !reloads
          st.Slp_codegen.Regalloc.reloads);
  List.rev !diags
