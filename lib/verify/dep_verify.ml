open Slp_ir
module D = Diagnostic
module Depend = Slp_depend.Depend

let r_li_order = "DEP01-li-order"
let r_distance = "DEP02-distance"
let r_reduction = "DEP03-reduction"
let r_parallel = "DEP04-parallel"
let r_reason = "DEP05-reason"

let where_of_edge (e : Depend.edge) =
  Printf.sprintf "S%d -> S%d (%s, %s%s)" e.Depend.src e.Depend.dst
    e.Depend.array
    (Depend.kind_string e.Depend.ekind)
    (match e.Depend.carrier with
    | None -> ""
    | Some c -> ", carried on " ^ c)

(* Per-block statement positions — statement ids are only unique
   within a block (unrolled replicas reuse ids), so DEP01 checks
   ordering inside each block rather than against one global table. *)
let block_positions (prog : Program.t) =
  List.map
    (fun (b : Block.t) ->
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun i (s : Stmt.t) -> Hashtbl.replace tbl s.Stmt.id i)
        b.Block.stmts;
      tbl)
    (Program.blocks prog)

(* Largest constant trip count per loop index name.  Unrolling can
   leave several loops sharing a name (main + remainder); a carried
   edge can only originate from one with trip >= 2, so bounding the
   distance by the maximum stays sound. *)
let trips (prog : Program.t) =
  let tbl = Hashtbl.create 8 in
  let symbolic = Hashtbl.create 4 in
  let rec go items =
    List.iter
      (function
        | Program.Stmts _ -> ()
        | Program.Loop l ->
            (match
               Depend.Box.trip
                 (Depend.Box.of_bounds ~lo:l.Program.lo ~hi:l.Program.hi
                    ~step:l.Program.step)
             with
            | Some t ->
                let prev =
                  Option.value ~default:0 (Hashtbl.find_opt tbl l.Program.index)
                in
                Hashtbl.replace tbl l.Program.index (max prev t)
            | None -> Hashtbl.replace symbolic l.Program.index ());
            go l.Program.body)
      items
  in
  go prog.Program.body;
  Hashtbl.iter (fun name () -> Hashtbl.remove tbl name) symbolic;
  tbl

(* A reduction update statement must read its own scalar exactly as
   [s = s ⊕ e] (or the mirrored form) with the reported operator. *)
let is_reduction_update ~scalar ~op (s : Stmt.t) =
  (match s.Stmt.lhs with
  | Operand.Scalar v -> String.equal v scalar
  | _ -> false)
  &&
  match s.Stmt.rhs with
  | Expr.Bin (o, l, r) when o = op ->
      let is_self = function
        | Expr.Leaf (Operand.Scalar v) -> String.equal v scalar
        | _ -> false
      in
      is_self l || is_self r
  | _ -> false

let known_reasons = [ "symbolic-bounds"; "banerjee-inconclusive" ]

let check ?(stage = D.Prepared_ir) (prog : Program.t) =
  let graph = Depend.of_program prog in
  let diags = ref [] in
  let report d = diags := d :: !diags in
  let block_pos = block_positions prog in
  (* A loop-independent edge is in order when some block lists its
     source strictly before its destination. *)
  let li_forward src dst =
    List.exists
      (fun tbl ->
        match (Hashtbl.find_opt tbl src, Hashtbl.find_opt tbl dst) with
        | Some ps, Some pd -> ps < pd
        | _ -> false)
      block_pos
  in
  let li_known src dst =
    List.exists
      (fun tbl -> Hashtbl.mem tbl src && Hashtbl.mem tbl dst)
      block_pos
  in
  let trip_tbl = trips prog in
  List.iter
    (fun (e : Depend.edge) ->
      let where = where_of_edge e in
      (match e.Depend.carrier with
      | None ->
          (* DEP01: loop-independent edges run forward in program
             order (self edges are carried by construction). *)
          if not (li_known e.Depend.src e.Depend.dst) then
            report
              (D.error ~rule:r_li_order ~stage ~where
                 "edge references statements that share no block")
          else if not (li_forward e.Depend.src e.Depend.dst) then
            report
              (D.error ~rule:r_li_order ~stage ~where
                 "loop-independent edge does not run forward in program order")
      | Some carrier -> begin
          (* DEP02: a carried edge crosses at least one carrier
             iteration and no more than trip - 1; its direction vector
             pins outer loops equal and the carrier to [<]. *)
          (match e.Depend.distance with
          | Some d ->
              if d < 1 then
                report
                  (D.error ~rule:r_distance ~stage ~where
                     "carried edge has non-positive distance %d" d);
              (match Hashtbl.find_opt trip_tbl carrier with
              | Some trip when d > trip - 1 ->
                  report
                    (D.error ~rule:r_distance ~stage ~where
                       "distance %d exceeds the carrier's trip count %d - 1" d
                       trip)
              | _ -> ())
          | None -> ());
          match List.assoc_opt carrier e.Depend.directions with
          | Some Depend.Lt ->
              let rec outer_eq = function
                | [] -> ()
                | (v, dir) :: rest ->
                    if String.equal v carrier then ()
                    else begin
                      if dir <> Depend.Eq then
                        report
                          (D.error ~rule:r_distance ~stage ~where
                             "loop %s outside the carrier is not pinned [=]" v);
                      outer_eq rest
                    end
              in
              outer_eq e.Depend.directions
          | Some _ ->
              report
                (D.error ~rule:r_distance ~stage ~where
                   "carrier %s direction is not [<]" carrier)
          | None ->
              report
                (D.error ~rule:r_distance ~stage ~where
                   "direction vector does not mention carrier %s" carrier)
        end);
      (* DEP05: conservative edges carry a catalogued reason; exact
         edges carry none. *)
      if e.Depend.exact then begin
        if e.Depend.reason <> None then
          report
            (D.error ~rule:r_reason ~stage ~where
               "exact edge carries a conservativeness reason")
      end
      else
        match e.Depend.reason with
        | Some r when List.mem r known_reasons -> ()
        | Some r ->
            report
              (D.error ~rule:r_reason ~stage ~where
                 "inexact edge has uncatalogued reason %S" r)
        | None ->
            report
              (D.error ~rule:r_reason ~stage ~where
                 "inexact edge has no reason code"))
    graph.Depend.edges;
  (* DEP03: every reported reduction is an associative self-update of
     its scalar at each listed statement. *)
  let stmt_tbl = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (s : Stmt.t) -> Hashtbl.replace stmt_tbl s.Stmt.id s)
        b.Block.stmts)
    (Program.blocks prog);
  List.iter
    (fun (scalar, op, ids) ->
      let where = Printf.sprintf "%s (%s)" scalar (Depend.op_string op) in
      if not (Depend.associative op) then
        report
          (D.error ~rule:r_reduction ~stage ~where
             "reduction reported with non-associative operator");
      if ids = [] then
        report
          (D.error ~rule:r_reduction ~stage ~where
             "reduction has no update statements");
      List.iter
        (fun id ->
          match Hashtbl.find_opt stmt_tbl id with
          | None ->
              report
                (D.error ~rule:r_reduction ~stage ~where
                   "update statement S%d is missing from the program" id)
          | Some s ->
              if not (is_reduction_update ~scalar ~op s) then
                report
                  (D.error ~rule:r_reduction ~stage ~where
                     "S%d is not a %s self-update of %s" id
                     (Depend.op_string op) scalar))
        ids)
    graph.Depend.reductions;
  (* DEP04: a Parallel verdict promises chunks of the outermost loop
     are independent — the graph must agree (no array edge carried on
     the partition variable). *)
  (match (Depend.scalar_parallel_verdict prog, prog.Program.body) with
  | Depend.Parallel _, [ Program.Loop l ] ->
      List.iter
        (fun (e : Depend.edge) ->
          if e.Depend.carrier = Some l.Program.index then
            report
              (D.error ~rule:r_parallel ~stage ~where:(where_of_edge e)
                 "Parallel verdict but an edge is carried on the partition \
                  loop %s"
                 l.Program.index))
        graph.Depend.edges
  | _ -> ());
  List.rev !diags
