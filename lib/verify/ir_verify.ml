open Slp_ir
module D = Diagnostic

(* Rule ids (catalogued in DESIGN.md). *)
let r_undeclared = "IR01-undeclared"
let r_rank = "IR02-rank"
let r_subscript_var = "IR03-subscript-var"
let r_type_mix = "IR04-type-mix"
let r_dup_id = "IR05-dup-id"
let r_loop_form = "IR06-loop-form"
let r_bounds = "IR07-bounds"
let r_index_assign = "IR08-index-assign"
let r_live_in = "IR09-live-in-scalar"

(* Enclosing loop indices, innermost last.  The const range is the
   inclusive [lo, last] value interval when both bounds are constant
   (and the loop runs at least once); [None] disables interval
   reasoning for subscripts mentioning that index. *)
type index_info = { var : string; range : (int * int) option }

let const_range ~lo ~hi ~step =
  match (Affine.to_const lo, Affine.to_const hi) with
  | Some l, Some h when h > l && step > 0 -> Some (l, l + ((h - 1 - l) / step * step))
  | _ -> None

(* Inclusive [min, max] interval of an affine expression over the
   iteration box; [None] when some variable has no constant range. *)
let interval indices a =
  List.fold_left
    (fun acc (v, c) ->
      match acc with
      | None -> None
      | Some (mn, mx) -> (
          match List.find_opt (fun ix -> String.equal ix.var v) indices with
          | Some { range = Some (lo, last); _ } ->
              let a1 = c * lo and a2 = c * last in
              Some (mn + min a1 a2, mx + max a1 a2)
          | Some { range = None; _ } | None -> None))
    (Some (Affine.const_part a, Affine.const_part a))
    (Affine.terms a)

let check ?(stage = D.Prepared_ir) (prog : Program.t) =
  let env = prog.Program.env in
  let diags = ref [] in
  let report d = diags := d :: !diags in
  (* [where] is lazy: rendering the offending stmt costs more than the
     checks themselves, so pay it only when a diagnostic actually
     fires. *)
  let err ~rule ~where fmt =
    Format.kasprintf
      (fun m -> report (D.error ~rule ~stage ~where:(Lazy.force where) "%s" m))
      fmt
  in
  let is_index indices v = List.exists (fun ix -> String.equal ix.var v) indices in
  let check_operand ~indices ~where op =
    match op with
    | Operand.Const _ -> ()
    | Operand.Scalar v ->
        if (not (is_index indices v)) && Env.scalar_ty env v = None then
          err ~rule:r_undeclared ~where "undeclared scalar %s" v
    | Operand.Elem (b, idxs) -> (
        match Env.array_info env b with
        | None -> err ~rule:r_undeclared ~where "undeclared array %s" b
        | Some info ->
            if List.length idxs <> List.length info.Env.dims then
              err ~rule:r_rank ~where "array %s used with rank %d, declared rank %d" b
                (List.length idxs)
                (List.length info.Env.dims)
            else
              List.iter2
                (fun ix dim ->
                  List.iter
                    (fun v ->
                      if not (is_index indices v) then
                        err ~rule:r_subscript_var ~where
                          "subscript variable %s of %s is not an enclosing loop index" v b)
                    (Affine.vars ix);
                  match interval indices ix with
                  | Some (mn, mx) when mn < 0 || mx >= dim ->
                      err ~rule:r_bounds ~where
                        "subscript %s of %s ranges over [%d, %d], outside [0, %d)"
                        (Affine.to_string ix) b mn mx dim
                  | Some _ | None -> ())
                idxs info.Env.dims)
  in
  let operand_ty ~indices op =
    match op with
    | Operand.Const _ -> None
    | Operand.Scalar v when is_index indices v -> Some Types.I64
    | Operand.Scalar v -> Env.scalar_ty env v
    | Operand.Elem (b, _) -> Option.map (fun i -> i.Env.elem_ty) (Env.array_info env b)
  in
  let check_stmt ~indices (s : Stmt.t) =
    let where = lazy (Stmt.to_string s) in
    (match s.Stmt.lhs with
    | Operand.Scalar v when is_index indices v ->
        err ~rule:r_index_assign ~where "loop index %s assigned" v
    | _ -> ());
    List.iter (check_operand ~indices ~where) (Stmt.positions s);
    match List.filter_map (operand_ty ~indices) (Stmt.positions s) with
    | [] -> ()
    | ty :: rest ->
        if not (List.for_all (fun ty' -> ty' = ty) rest) then
          err ~rule:r_type_mix ~where "statement mixes scalar types"
  in
  let check_block ~indices (b : Block.t) =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (s : Stmt.t) ->
        if Hashtbl.mem seen s.Stmt.id then
          err ~rule:r_dup_id
            ~where:(lazy (Stmt.to_string s))
            "duplicate statement id %d in block %s" s.Stmt.id b.Block.label
        else Hashtbl.replace seen s.Stmt.id ();
        check_stmt ~indices s)
      b.Block.stmts
  in
  let check_bound ~indices ~loop which a =
    List.iter
      (fun v ->
        if not (is_index indices v) then
          err ~rule:r_loop_form ~where:(lazy loop) "%s bound uses unbound variable %s"
            which v)
      (Affine.vars a)
  in
  let rec check_items ~indices items =
    List.iter
      (function
        | Program.Stmts b -> check_block ~indices b
        | Program.Loop l ->
            let loop = Printf.sprintf "loop %s" l.Program.index in
            if l.Program.step <= 0 then
              err ~rule:r_loop_form ~where:(lazy loop) "non-positive step %d"
                l.Program.step;
            if is_index indices l.Program.index then
              err ~rule:r_loop_form ~where:(lazy loop) "index shadows an enclosing index";
            if Env.is_declared env l.Program.index then
              err ~rule:r_loop_form ~where:(lazy loop)
                "index collides with a declaration";
            check_bound ~indices ~loop "lower" l.Program.lo;
            check_bound ~indices ~loop "upper" l.Program.hi;
            let info =
              {
                var = l.Program.index;
                range = const_range ~lo:l.Program.lo ~hi:l.Program.hi ~step:l.Program.step;
              }
            in
            check_items ~indices:(indices @ [ info ]) l.Program.body)
      items
  in
  check_items ~indices:[] prog.Program.body;
  (* Declared scalars that are read somewhere but never written: legal
     (scalar slots are memory-initialised live-ins) yet worth surfacing
     — a typo'd accumulator name shows up here. *)
  let defined = Hashtbl.create 16 and read = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (s : Stmt.t) ->
          (match s.Stmt.lhs with
          | Operand.Scalar v -> Hashtbl.replace defined v ()
          | Operand.Const _ | Operand.Elem _ -> ());
          List.iter
            (function
              | Operand.Scalar v ->
                  if Env.scalar_ty env v <> None && not (Hashtbl.mem read v) then
                    Hashtbl.replace read v ()
              | Operand.Const _ | Operand.Elem _ -> ())
            (Stmt.uses s))
        b.Block.stmts)
    (Program.blocks prog);
  Hashtbl.iter
    (fun v () ->
      if not (Hashtbl.mem defined v) then
        report
          (D.warning ~rule:r_live_in ~stage ~where:v
             "scalar %s is read but never defined (treated as live-in)" v))
    read;
  List.rev !diags
