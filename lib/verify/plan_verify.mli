(** Pack and schedule legality checker over a program plan.

    Pack rules (stage [Grouping]):
    - [PACK01-isomorphic]: superword members must be isomorphic;
    - [PACK02-intra-dep]: members must be pairwise independent;
    - [PACK03-width]: 2 <= width <= datapath lanes for the member type;
    - [PACK04-partition]: groups and singles partition the block;
    - [PACK05-alignment]: contiguous packs carry a sane alignment
      verdict from {!Slp_analysis.Alignment}.

    Schedule rules (stage [Scheduling]):
    - [SCHED01-coverage]: scheduled statements are exactly the block's;
    - [SCHED02-dep-order]: every RAW/WAR/WAW dependence of the original
      block runs forward across scheduled items;
    - [SCHED03-def-use]: reaching scalar definitions (via
      {!Slp_analysis.Chains}) are identical before and after
      scheduling. *)

val check_block_plan :
  env:Slp_ir.Env.t -> config:Slp_core.Config.t -> Slp_core.Driver.block_plan -> Diagnostic.t list

val check : config:Slp_core.Config.t -> Slp_core.Driver.program_plan -> Diagnostic.t list
