(** Internal-consistency checks over the dependence analyzer's output
    (rules DEP01–DEP05, catalogued in DESIGN.md).

    The graph of {!Slp_depend.Depend.of_program} is self-describing —
    edges carry program positions, distance/direction vectors, and
    conservativeness reasons — so most invariants can be validated
    against the program without re-running the solver:

    - [DEP01-li-order]: loop-independent edges run forward in program
      order.
    - [DEP02-distance]: carried edges have distance in [1, trip - 1]
      (when both are known), direction [<] on the carrier, and [=] on
      every loop outside it.
    - [DEP03-reduction]: reported reductions use an associative
      operator and each update statement is a self-update of the
      scalar with that operator.
    - [DEP04-parallel]: a [Parallel] verdict coexists with no edge
      carried on the partition loop.
    - [DEP05-reason]: inexact edges carry a catalogued reason code;
      exact edges carry none. *)

val check :
  ?stage:Diagnostic.stage -> Slp_ir.Program.t -> Diagnostic.t list
(** Analyze [prog] and validate the resulting dependence graph.
    [stage] defaults to [Prepared_ir] (the pipeline checks the
    unrolled, folded reference program). *)
