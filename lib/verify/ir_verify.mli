(** Scalar IR well-formedness checker.

    Runs on the unrolled [reference] program (and, for
    [Global_layout], on the rewritten program after the layout
    transformation).  Rules:

    - [IR01-undeclared]: operand references an undeclared variable;
    - [IR02-rank]: array used with the wrong rank;
    - [IR03-subscript-var]: subscript variable is not an enclosing
      loop index;
    - [IR04-type-mix]: statement mixes incompatible scalar types;
    - [IR05-dup-id]: duplicate statement id within a block;
    - [IR06-loop-form]: non-positive step, shadowed/colliding index,
      or loop bound over unbound variables;
    - [IR07-bounds]: subscript interval provably escapes the declared
      dimension over a constant iteration box;
    - [IR08-index-assign]: assignment to a loop index;
    - [IR09-live-in-scalar] (warning): scalar read but never written
      anywhere in the program. *)

val check : ?stage:Diagnostic.stage -> Slp_ir.Program.t -> Diagnostic.t list
(** Default [stage] is [Prepared_ir]. *)
