module E = Slp_util.Slp_error
module Visa = Slp_vm.Visa
module Profile = Slp_obs.Profile

type stats = { spills : int; reloads : int; max_pressure : int }

let zero_stats = { spills = 0; reloads = 0; max_pressure = 0 }

let add_stats a b =
  {
    spills = a.spills + b.spills;
    reloads = a.reloads + b.reloads;
    max_pressure = max a.max_pressure b.max_pressure;
  }

let instr_uses = function
  | Visa.Vload _ | Visa.Vgather _ | Visa.Vbroadcast _ | Visa.Vload_scalars _
  | Visa.Vreload _ | Visa.Sstmt _ ->
      []
  | Visa.Vstore { src; _ }
  | Visa.Vunpack { src; _ }
  | Visa.Vpermute { src; _ }
  | Visa.Vstore_scalars { src; _ }
  | Visa.Vspill { src; _ }
  | Visa.Vun { a = src; _ } ->
      [ src ]
  | Visa.Vshuffle2 { a; b; _ } | Visa.Vbin { a; b; _ } ->
      if a = b then [ a ] else [ a; b ]

let instr_def = function
  | Visa.Vload { dst; _ }
  | Visa.Vgather { dst; _ }
  | Visa.Vbroadcast { dst; _ }
  | Visa.Vpermute { dst; _ }
  | Visa.Vshuffle2 { dst; _ }
  | Visa.Vbin { dst; _ }
  | Visa.Vun { dst; _ }
  | Visa.Vreload { dst; _ }
  | Visa.Vload_scalars { dst; _ } ->
      Some dst
  | Visa.Vstore _ | Visa.Vunpack _ | Visa.Vstore_scalars _ | Visa.Vspill _
  | Visa.Sstmt _ ->
      None

let rewrite instr ~use ~def =
  match instr with
  | Visa.Vload { dst; elems } -> Visa.Vload { dst = def dst; elems }
  | Visa.Vstore { src; elems } -> Visa.Vstore { src = use src; elems }
  | Visa.Vgather { dst; srcs } -> Visa.Vgather { dst = def dst; srcs }
  | Visa.Vunpack { src; dsts } -> Visa.Vunpack { src = use src; dsts }
  | Visa.Vbroadcast { dst; src; lanes } -> Visa.Vbroadcast { dst = def dst; src; lanes }
  | Visa.Vpermute { dst; src; sel } ->
      let src = use src in
      Visa.Vpermute { dst = def dst; src; sel }
  | Visa.Vshuffle2 { dst; a; b; sel } ->
      let a = use a and b = use b in
      Visa.Vshuffle2 { dst = def dst; a; b; sel }
  | Visa.Vbin { dst; op; a; b } ->
      let a = use a and b = use b in
      Visa.Vbin { dst = def dst; op; a; b }
  | Visa.Vun { dst; op; a } ->
      let a = use a in
      Visa.Vun { dst = def dst; op; a }
  | Visa.Vspill { src; slot } -> Visa.Vspill { src = use src; slot }
  | Visa.Vreload { dst; slot } -> Visa.Vreload { dst = def dst; slot }
  | Visa.Vload_scalars { dst; sources } -> Visa.Vload_scalars { dst = def dst; sources }
  | Visa.Vstore_scalars { src; targets } -> Visa.Vstore_scalars { src = use src; targets }
  | Visa.Sstmt _ -> instr

let key_fallback = function
  | Visa.Sstmt s -> Profile.Stmt s.Slp_ir.Stmt.id
  | _ -> Profile.Op "alloc"

(* [okeys.(idx)] is the profiling origin of input instruction [idx];
   every instruction this pass emits while processing input [idx] —
   the rewritten instruction itself, plus any spills and reloads its
   register needs force — inherits that origin, so spill traffic is
   charged to the statement or pack that caused it. *)
let allocate_block_keyed ~registers ~okeys instrs =
  if registers < 2 then invalid_arg "Regalloc.allocate_block: need at least 2 registers";
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  (* Use positions per virtual register, for next-use queries and
     last-use freeing. *)
  let use_positions : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  for idx = n - 1 downto 0 do
    List.iter
      (fun v ->
        let tail = Option.value (Hashtbl.find_opt use_positions v) ~default:[] in
        Hashtbl.replace use_positions v (idx :: tail))
      (instr_uses arr.(idx))
  done;
  let next_use v ~after =
    let rec go = function
      | [] -> max_int
      | p :: rest -> if p > after then p else go rest
    in
    go (Option.value (Hashtbl.find_opt use_positions v) ~default:[])
  in
  let last_use v =
    match Hashtbl.find_opt use_positions v with
    | Some l -> List.fold_left max (-1) l
    | None -> -1
  in
  (* Allocation state. *)
  let phys_owner = Array.make registers None in
  let loc : (int, [ `Phys of int | `Spilled ]) Hashtbl.t = Hashtbl.create 32 in
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_slot = ref 0 in
  let spills = ref 0 and reloads = ref 0 and pressure = ref 0 and max_pressure = ref 0 in
  let out = ref [] in
  let kout = ref [] in
  let cur = ref (Profile.Op "alloc") in
  let emit i =
    out := i :: !out;
    kout := !cur :: !kout
  in
  let slot_for v =
    match Hashtbl.find_opt slot_of v with
    | Some s -> s
    | None ->
        let s = !next_slot in
        incr next_slot;
        Hashtbl.replace slot_of v s;
        s
  in
  let free_phys p = phys_owner.(p) <- None in
  let find_free () =
    let rec go p = if p >= registers then None else if phys_owner.(p) = None then Some p else go (p + 1) in
    go 0
  in
  (* Acquire a physical register at instruction [idx], never evicting a
     register in [protect].  Distances count uses *at* [idx] as well:
     a value consumed by the current instruction is the nearest
     possible use, never dead. *)
  let acquire ~idx ~protect =
    match find_free () with
    | Some p -> p
    | None ->
        (* Belady: evict the owner with the furthest next use. *)
        let victim = ref (-1) in
        let victim_dist = ref (-1) in
        for p = 0 to registers - 1 do
          if not (List.mem p protect) then
            match phys_owner.(p) with
            | Some v ->
                let d = next_use v ~after:(idx - 1) in
                if d > !victim_dist then begin
                  victim_dist := d;
                  victim := p
                end
            | None -> ()
        done;
        if !victim < 0 then
          E.fail ~pass:E.Regalloc E.Regalloc_failed
            "Regalloc: register pressure unsatisfiable";
        let p = !victim in
        (match phys_owner.(p) with
        | Some v ->
            (* Only values still needed must be saved. *)
            if next_use v ~after:(idx - 1) < max_int then begin
              emit (Visa.Vspill { src = p; slot = slot_for v });
              incr spills;
              Hashtbl.replace loc v `Spilled
            end
            else Hashtbl.remove loc v
        | None -> ());
        free_phys p;
        p
  in
  Array.iteri
    (fun idx instr ->
      cur :=
        (if idx < Array.length okeys then okeys.(idx) else key_fallback instr);
      match instr with
      | Visa.Sstmt _ -> emit instr
      | _ ->
          let uses = instr_uses instr in
          (* Bring spilled sources back. *)
          let protect = ref [] in
          List.iter
            (fun v ->
              match Hashtbl.find_opt loc v with
              | Some (`Phys p) -> protect := p :: !protect
              | Some `Spilled ->
                  let p = acquire ~idx ~protect:!protect in
                  emit (Visa.Vreload { dst = p; slot = Hashtbl.find slot_of v });
                  incr reloads;
                  Hashtbl.replace loc v (`Phys p);
                  phys_owner.(p) <- Some v;
                  protect := p :: !protect
              | None ->
                  E.fail ~pass:E.Regalloc E.Regalloc_failed
                    "Regalloc: v%d used before definition" v)
            uses;
          let use v =
            match Hashtbl.find_opt loc v with
            | Some (`Phys p) -> p
            | _ -> assert false
          in
          (* Sources that die at this instruction free their registers
             before the destination allocates; the destination may then
             reuse a dying source's register — the VM computes all
             lanes before writing.  Evicting a live (non-dying) source
             is also value-safe: the spill copies it out before the
             instruction executes. *)
          let dying = List.filter (fun v -> last_use v = idx) uses in
          let def_phys = ref None in
          let def v =
            List.iter
              (fun dv ->
                match Hashtbl.find_opt loc dv with
                | Some (`Phys p) ->
                    Hashtbl.remove loc dv;
                    free_phys p
                | _ -> ())
              dying;
            let p = acquire ~idx ~protect:[] in
            Hashtbl.replace loc v (`Phys p);
            phys_owner.(p) <- Some v;
            def_phys := Some p;
            p
          in
          emit (rewrite instr ~use ~def);
          (* A destination that is never used dies immediately. *)
          (match (instr_def instr, !def_phys) with
          | Some v, Some p when last_use v < 0 ->
              Hashtbl.remove loc v;
              free_phys p
          | _ -> ());
          (* Track pressure. *)
          pressure := 0;
          Array.iter (fun o -> if o <> None then incr pressure) phys_owner;
          let spilled_live =
            Hashtbl.fold (fun _ l acc -> if l = `Spilled then acc + 1 else acc) loc 0
          in
          max_pressure := max !max_pressure (!pressure + spilled_live))
    arr;
  ( List.rev !out,
    Array.of_list (List.rev !kout),
    { spills = !spills; reloads = !reloads; max_pressure = !max_pressure } )

let allocate_block ~registers instrs =
  let instrs', _, stats = allocate_block_keyed ~registers ~okeys:[||] instrs in
  (instrs', stats)

(* [queue] pops one origin array per block in pre-order (the order
   [Lower.lower_with_origins] records them); [push] receives the
   transformed array in the same order. *)
let rec allocate_items ~registers ~queue ~push items =
  List.fold_left_map
    (fun acc item ->
      match item with
      | Visa.Block instrs ->
          let okeys =
            match !queue with
            | arr :: rest ->
                queue := rest;
                arr
            | [] -> [||]
          in
          let instrs', okeys', st =
            allocate_block_keyed ~registers ~okeys instrs
          in
          push okeys';
          (add_stats acc st, Visa.Block instrs')
      | Visa.Loop l ->
          let nested, body = allocate_items ~registers ~queue ~push l.Visa.body in
          (add_stats acc nested, Visa.Loop { l with Visa.body }))
    zero_stats items

let program ~registers (p : Visa.program) =
  let stats, body =
    allocate_items ~registers ~queue:(ref []) ~push:ignore p.Visa.body
  in
  ({ p with Visa.body }, stats)

let program_with_origins ~registers ~origins (p : Visa.program) =
  let queue = ref origins in
  let out = ref [] in
  let stats, body =
    allocate_items ~registers ~queue
      ~push:(fun o -> out := o :: !out)
      p.Visa.body
  in
  ({ p with Visa.body }, stats, List.rev !out)
