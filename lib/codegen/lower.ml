open Slp_ir
module E = Slp_util.Slp_error
module M = Slp_machine.Machine
module Visa = Slp_vm.Visa
module Sched = Slp_core.Schedule
module Pack = Slp_core.Pack
module Driver = Slp_core.Driver
module Obs = Slp_obs.Obs
module Remark = Slp_obs.Remark
module Profile = Slp_obs.Profile

(* -- register tracker ----------------------------------------------- *)

type tracker = {
  capacity : int;
  mutable regs : (Operand.t list * Visa.vreg) list;  (** MRU first. *)
}

let tracker_find_exact t ordered =
  List.find_map
    (fun (o, r) -> if List.equal Operand.equal o ordered then Some r else None)
    t.regs

let tracker_find_multiset t pack =
  List.find_opt (fun (o, _) -> Pack.equal (Pack.of_operands o) pack) t.regs

(* A live superword whose lanes contain the wanted multiset — a
   narrower vector can be produced from it with one permute. *)
let tracker_find_submultiset t pack =
  let contains ordered =
    let remaining = ref (Pack.operands (Pack.of_operands ordered)) in
    List.for_all
      (fun want ->
        let rec take acc = function
          | [] -> None
          | x :: rest ->
              if Operand.equal x want then Some (List.rev_append acc rest)
              else take (x :: acc) rest
        in
        match take [] !remaining with
        | Some rest ->
            remaining := rest;
            true
        | None -> false)
      (Pack.operands pack)
  in
  List.find_opt (fun (o, _) -> List.length o > Pack.size pack && contains o) t.regs

(* Two live superwords whose lanes jointly cover the wanted operands:
   realisable with one two-source shuffle. *)
let tracker_find_pair t ordered =
  let try_pair (o1, r1) (o2, r2) =
    let used1 = Array.make (List.length o1) false in
    let used2 = Array.make (List.length o2) false in
    let a1 = Array.of_list o1 and a2 = Array.of_list o2 in
    let pick want =
      let rec find src arr used j =
        if j >= Array.length arr then None
        else if (not used.(j)) && Operand.equal arr.(j) want then begin
          used.(j) <- true;
          Some (src, j)
        end
        else find src arr used (j + 1)
      in
      match find 0 a1 used1 0 with Some hit -> Some hit | None -> find 1 a2 used2 0
    in
    let sel = List.map pick ordered in
    if List.for_all Option.is_some sel then
      Some (r1, r2, Array.of_list (List.map Option.get sel))
    else None
  in
  let rec scan = function
    | [] -> None
    | entry :: rest ->
        let hit =
          List.find_map
            (fun other ->
              match try_pair entry other with
              | Some r -> Some r
              | None -> try_pair other entry)
            rest
        in
        (match hit with Some r -> Some r | None -> scan rest)
  in
  scan t.regs

let tracker_insert t ordered vreg =
  let pack = Pack.of_operands ordered in
  t.regs <-
    (ordered, vreg)
    :: List.filter (fun (o, _) -> not (Pack.equal (Pack.of_operands o) pack)) t.regs;
  if List.length t.regs > t.capacity then
    t.regs <- List.filteri (fun i _ -> i < t.capacity) t.regs

let tracker_invalidate t defs =
  t.regs <-
    List.filter
      (fun (o, _) ->
        not (List.exists (fun d -> List.exists (Operand.may_alias d) o) defs))
      t.regs

(* -- block lowering -------------------------------------------------- *)

type ctx = {
  env : Env.t;
  machine : M.t;
  scalar_offset : string -> int option;
  live_out : string -> bool;
  reuse_enabled : bool;
      (** When false, no superword is ever served from a register —
          isolates the value of register-resident reuse. *)
  track : tracker;
  mutable next_vreg : int;
  mutable code : Visa.instr list;  (** Reversed. *)
  mutable okeys : Profile.key list;
      (** Profiling origin of each emitted instruction, parallel to
          [code] (reversed with it). *)
  mutable cur_key : Profile.key;
      (** Origin stamped on emissions: the statement or pack being
          lowered. *)
  block_label : string;
  rbuf : Remark.t list ref;
      (** Remarks buffered per lowering attempt; only the final
          attempt's buffer survives the forced-unpack fixpoint (earlier
          attempts' code is discarded, their remarks must be too). *)
  remarks_wanted : bool;
  stale : (string, unit) Hashtbl.t;
      (** Scalars defined earlier in this block by a superword that did
          not materialise them — their scalar registers are invalid. *)
  forced : (string, unit) Hashtbl.t;
      (** Scalars that must be unpacked because some later gather reads
          them from the scalar register file (fixpoint input). *)
  mutable needs_retry : bool;
}

let fresh ctx =
  let r = ctx.next_vreg in
  ctx.next_vreg <- r + 1;
  r

let emit ctx i =
  ctx.code <- i :: ctx.code;
  ctx.okeys <- ctx.cur_key :: ctx.okeys

let remark ctx id ~stmts message =
  if ctx.remarks_wanted then
    ctx.rbuf :=
      Remark.make ~id ~pass:"lowering" ~block:ctx.block_label ~stmts message
      :: !(ctx.rbuf)

let stmts_of_key = function
  | Profile.Pack ids -> ids
  | Profile.Stmt id -> [ id ]
  | Profile.Setup | Profile.Op _ -> []

let all_const ops =
  List.for_all (function Operand.Const _ -> true | _ -> false) ops

let all_equal ops =
  match ops with [] -> false | first :: rest -> List.for_all (Operand.equal first) rest

let contiguous_elems ctx ops =
  match ops with
  | Operand.Elem _ :: _ -> Slp_analysis.Alignment.contiguous_pack ~env:ctx.env ops
  | _ -> false

(* Memory-sorted version of an all-Elem pack when addresses are
   pairwise constant-comparable; returns the sorted operand list. *)
let mem_sorted ops =
  match ops with
  | Operand.Elem (base0, ix0) :: rest
    when List.for_all
           (function
             | Operand.Elem (b, ix) ->
                 String.equal b base0 && List.length ix = List.length ix0
             | Operand.Const _ | Operand.Scalar _ -> false)
           rest -> begin
      let key op =
        match op with
        | Operand.Elem (_, ix) -> List.map2 (fun a b -> Affine.diff_const a b) ix ix0
        | _ -> assert false
      in
      let keys = List.map key ops in
      if List.exists (List.exists Option.is_none) keys then None
      else
        Some
          (List.stable_sort
             (fun a b -> compare (key a) (key b))
             ops)
    end
  | _ -> None

let scalar_names ops =
  List.map
    (function Operand.Scalar v -> v | Operand.Const _ | Operand.Elem _ -> assert false)
    ops

let scalars_contiguous ctx names =
  let lanes = List.length names in
  match List.map ctx.scalar_offset names with
  | offs when List.for_all Option.is_some offs -> begin
      let offs = List.map Option.get offs in
      match offs with
      | first :: _ ->
          first mod (8 * lanes) = 0
          && List.for_all2 (fun o k -> o = first + (8 * k)) offs
               (List.init lanes (fun k -> k))
      | [] -> false
    end
  | _ -> false

(* Permutation selector producing [target] from [source] (same
   multiset). *)
let selector ~source ~target =
  let used = Array.make (List.length source) false in
  let src = Array.of_list source in
  Array.of_list
    (List.map
       (fun want ->
         let rec find j =
           if j >= Array.length src then
             E.fail ~pass:E.Lowering E.Lowering_failed
               "Lower.selector: multiset mismatch"
           else if (not used.(j)) && Operand.equal src.(j) want then begin
             used.(j) <- true;
             j
           end
           else find (j + 1)
         in
         find 0)
       target)

let lane_src_of ctx = function
  | Operand.Const f -> Visa.Imm f
  | Operand.Scalar v ->
      if Hashtbl.mem ctx.stale v then begin
        (* The register does not hold the value: force the defining
           superword to unpack it and re-lower the block. *)
        Hashtbl.replace ctx.forced v ();
        ctx.needs_retry <- true
      end;
      Visa.Reg v
  | Operand.Elem _ as e -> Visa.Mem e

(* Bring an ordered source pack into a vector register. *)
let materialize ctx ordered =
  let pack = Pack.of_operands ordered in
  match if ctx.reuse_enabled then tracker_find_exact ctx.track ordered else None with
  | Some r -> r
  | None -> begin
      match
        (if not ctx.reuse_enabled then None
         else
           match tracker_find_multiset ctx.track pack with
           | Some hit -> Some hit
           | None -> tracker_find_submultiset ctx.track pack)
      with
      | Some (live_ordered, live_reg) ->
          let dst = fresh ctx in
          emit ctx
            (Visa.Vpermute
               { dst; src = live_reg; sel = selector ~source:live_ordered ~target:ordered });
          tracker_insert ctx.track ordered dst;
          dst
      | None ->
      match if ctx.reuse_enabled then tracker_find_pair ctx.track ordered else None with
      | Some (r1, r2, sel) ->
          let dst = fresh ctx in
          emit ctx (Visa.Vshuffle2 { dst; a = r1; b = r2; sel });
          tracker_insert ctx.track ordered dst;
          dst
      | None ->
          let dst = fresh ctx in
          let lanes = List.length ordered in
          (if all_const ordered then
             if all_equal ordered then
               emit ctx
                 (Visa.Vbroadcast { dst; src = lane_src_of ctx (List.hd ordered); lanes })
             else emit ctx (Visa.Vgather { dst; srcs = List.map (lane_src_of ctx) ordered })
           else if all_equal ordered then
             emit ctx (Visa.Vbroadcast { dst; src = lane_src_of ctx (List.hd ordered); lanes })
           else if contiguous_elems ctx ordered then
             emit ctx (Visa.Vload { dst; elems = ordered })
           else begin
             match mem_sorted ordered with
             | Some sorted when contiguous_elems ctx sorted ->
                 let tmp = fresh ctx in
                 emit ctx (Visa.Vload { dst = tmp; elems = sorted });
                 tracker_insert ctx.track sorted tmp;
                 emit ctx
                   (Visa.Vpermute
                      { dst; src = tmp; sel = selector ~source:sorted ~target:ordered })
             | Some _ | None ->
                 let all_scalar =
                   List.for_all
                     (function Operand.Scalar _ -> true | _ -> false)
                     ordered
                 in
                 if all_scalar && scalars_contiguous ctx (scalar_names ordered) then begin
                   (* The slots are only valid if every scalar was
                      materialised by its defining superword. *)
                   List.iter
                     (fun v ->
                       if Hashtbl.mem ctx.stale v then begin
                         Hashtbl.replace ctx.forced v ();
                         ctx.needs_retry <- true
                       end)
                     (scalar_names ordered);
                   emit ctx (Visa.Vload_scalars { dst; sources = scalar_names ordered })
                 end
                 else begin
                   (if
                      List.exists
                        (function Operand.Elem _ -> true | _ -> false)
                        ordered
                    then
                      remark ctx "PACK-DROP-ALIGN"
                        ~stmts:(stmts_of_key ctx.cur_key)
                        (Printf.sprintf
                           "no aligned contiguous load for source pack %s; \
                            gathering element-wise"
                           (String.concat ","
                              (List.map Operand.to_string ordered))));
                   emit ctx
                     (Visa.Vgather { dst; srcs = List.map (lane_src_of ctx) ordered })
                 end
           end);
          tracker_insert ctx.track ordered dst;
          dst
    end

(* Commit a destination pack held in [src]. *)
let commit ctx ~scalar_demanded ordered src =
  let mark_stale materialised =
    List.iter
      (function
        | Operand.Scalar v ->
            if materialised v then Hashtbl.remove ctx.stale v
            else Hashtbl.replace ctx.stale v ()
        | Operand.Const _ | Operand.Elem _ -> ())
      ordered
  in
  (if List.for_all (function Operand.Elem _ -> true | _ -> false) ordered then begin
     if contiguous_elems ctx ordered then emit ctx (Visa.Vstore { src; elems = ordered })
     else
       match mem_sorted ordered with
       | Some sorted when contiguous_elems ctx sorted ->
           let tmp = fresh ctx in
           emit ctx
             (Visa.Vpermute { dst = tmp; src; sel = selector ~source:ordered ~target:sorted });
           emit ctx (Visa.Vstore { src = tmp; elems = sorted })
       | Some _ | None ->
           remark ctx "PACK-SCATTER" ~stmts:(stmts_of_key ctx.cur_key)
             (Printf.sprintf
                "destination pack %s scatters over memory; unpacking \
                 element-wise"
                (String.concat "," (List.map Operand.to_string ordered)));
           emit ctx
             (Visa.Vunpack
                { src; dsts = List.map (fun op -> Some (Visa.To_mem op)) ordered })
   end
   else begin
     (* Scalar (or mixed) destination: materialise only demanded lanes. *)
     let demanded =
       List.map
         (fun op ->
           match op with
           | Operand.Elem _ -> Some (Visa.To_mem op)
           | Operand.Scalar v ->
               if scalar_demanded v then Some (Visa.To_reg v) else None
           | Operand.Const _ -> assert false)
         ordered
     in
     let all_scalar =
       List.for_all (function Operand.Scalar _ -> true | _ -> false) ordered
     in
     let demanded_count = List.length (List.filter Option.is_some demanded) in
     if
       all_scalar
       && demanded_count = List.length ordered
       && scalars_contiguous ctx (scalar_names ordered)
     then begin
       emit ctx (Visa.Vstore_scalars { src; targets = scalar_names ordered });
       mark_stale (fun _ -> true)
     end
     else begin
       if demanded_count > 0 then emit ctx (Visa.Vunpack { src; dsts = demanded });
       mark_stale scalar_demanded
     end
   end);
  tracker_invalidate ctx.track ordered;
  tracker_insert ctx.track ordered src

let lower_block ctx (block : Block.t) (sched : Sched.t) =
  let items = Array.of_list sched.Sched.items in
  (* For each item index, the scalars read by later Singles. *)
  let later_single_reads = Array.make (Array.length items + 1) [] in
  for idx = Array.length items - 1 downto 0 do
    let extra =
      match items.(idx) with
      | Sched.Single sid ->
          List.filter_map
            (function Operand.Scalar v -> Some v | _ -> None)
            (Stmt.uses (Block.find block sid))
      | Sched.Superword _ -> []
    in
    later_single_reads.(idx) <- extra @ later_single_reads.(idx + 1)
  done;
  Array.iteri
    (fun idx item ->
      match item with
      | Sched.Single sid ->
          let s = Block.find block sid in
          ctx.cur_key <- Profile.Stmt sid;
          emit ctx (Visa.Sstmt s);
          (match Stmt.def s with
          | Operand.Scalar v -> Hashtbl.remove ctx.stale v
          | Operand.Const _ | Operand.Elem _ -> ());
          tracker_invalidate ctx.track [ Stmt.def s ]
      | Sched.Superword order ->
          ctx.cur_key <- Profile.Pack order;
          let stmts = List.map (Block.find block) order in
          let first = List.hd stmts in
          let npos = Stmt.position_count first in
          (* Materialise each source position. *)
          let leaf_regs =
            List.init (npos - 1) (fun leaf ->
                let pos = leaf + 1 in
                let ordered = List.map (fun s -> List.nth (Stmt.positions s) pos) stmts in
                materialize ctx ordered)
          in
          (* Evaluate the operator tree over leaf registers. *)
          let cursor = ref leaf_regs in
          let next_leaf () =
            match !cursor with
            | r :: rest ->
                cursor := rest;
                r
            | [] -> assert false
          in
          let rec tree (e : Expr.t) =
            match e with
            | Expr.Leaf _ -> next_leaf ()
            | Expr.Un (op, inner) ->
                let a = tree inner in
                let dst = fresh ctx in
                emit ctx (Visa.Vun { dst; op; a });
                dst
            | Expr.Bin (op, l, r) ->
                let a = tree l in
                let b = tree r in
                let dst = fresh ctx in
                emit ctx (Visa.Vbin { dst; op; a; b });
                dst
          in
          let result = tree first.Stmt.rhs in
          let defs = List.map Stmt.def stmts in
          let scalar_demanded v =
            ctx.live_out v
            || List.mem v later_single_reads.(idx + 1)
            || Hashtbl.mem ctx.forced v
          in
          commit ctx ~scalar_demanded defs result)
    items;
  let code = List.rev ctx.code in
  let okeys = Array.of_list (List.rev ctx.okeys) in
  ctx.code <- [];
  ctx.okeys <- [];
  (code, okeys)

(* -- program lowering ------------------------------------------------ *)

let lower_with_origins ?(obs = Obs.none) ~machine ?(reuse = true)
    ?(scalar_offsets = []) ?(setup = []) (plan : Driver.program_plan) =
  let prog = plan.Driver.program in
  let env = prog.Program.env in
  let liveness = Slp_analysis.Liveness.compute prog in
  let per_block_live_out b v = Slp_analysis.Liveness.demanded liveness b v in
  let offsets = Hashtbl.create 16 in
  List.iter (fun (v, o) -> Hashtbl.replace offsets v o) scalar_offsets;
  let plans = ref plan.Driver.plans in
  let pop_plan (b : Block.t) =
    match !plans with
    | p :: rest when p.Driver.block == b || p.Driver.block.Block.label = b.Block.label ->
        plans := rest;
        p
    | _ ->
        E.fail ~pass:E.Lowering E.Lowering_failed
          "Lower.lower: plan list out of sync with program"
  in
  (* One origin array per emitted [Visa.Block], in pre-order — the
     order the engine pops them back off. *)
  let origins = ref [] in
  let push_origins arr = origins := arr :: !origins in
  let rec walk items =
    List.map
      (function
        | Program.Stmts b -> begin
            let p = pop_plan b in
            match p.Driver.schedule with
            | None ->
                push_origins
                  (Array.of_list
                     (List.map
                        (fun (s : Stmt.t) -> Profile.Stmt s.Stmt.id)
                        b.Block.stmts));
                Visa.Block
                  (List.map (fun s -> Visa.Sstmt s) b.Block.stmts)
            | Some sched ->
                (* Fixpoint over forced unpacks: a lowering attempt that
                   reads a stale scalar register schedules that scalar
                   for unpacking and retries (converges because the
                   forced set only grows). *)
                let forced = Hashtbl.create 4 in
                let rec attempt n =
                  let ctx =
                    {
                      env;
                      machine;
                      scalar_offset = Hashtbl.find_opt offsets;
                      live_out = per_block_live_out b;
                      reuse_enabled = reuse;
                      track = { capacity = machine.M.vector_registers; regs = [] };
                      next_vreg = 0;
                      code = [];
                      okeys = [];
                      cur_key = Profile.Op "?";
                      block_label = b.Block.label;
                      rbuf = ref [];
                      remarks_wanted = Obs.remarks_on obs;
                      stale = Hashtbl.create 8;
                      forced;
                      needs_retry = false;
                    }
                  in
                  let code, okeys = lower_block ctx b sched in
                  if ctx.needs_retry && n < 8 then attempt (n + 1)
                  else begin
                    (* Only the surviving attempt's remarks are real. *)
                    List.iter (Obs.remark obs) (List.rev !(ctx.rbuf));
                    push_origins okeys;
                    code
                  end
                in
                Visa.Block (attempt 0)
          end
        | Program.Loop l ->
            Visa.Loop
              {
                Visa.index = l.Program.index;
                lo = l.Program.lo;
                hi = l.Program.hi;
                step = l.Program.step;
                body = walk l.Program.body;
              })
      items
  in
  let body = walk prog.Program.body in
  ({ Visa.name = prog.Program.name; env; setup; body }, List.rev !origins)

let lower ~machine ?reuse ?scalar_offsets ?setup plan =
  fst (lower_with_origins ~machine ?reuse ?scalar_offsets ?setup plan)
