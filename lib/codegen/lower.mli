(** Code generation: lowering scheduled superword statements to the
    vector ISA.

    Each superword statement becomes: materialisation of its source
    packs (register reuse when the live tracker holds the superword —
    directly or via one permutation; otherwise a vector load for
    contiguous packs, a scalar-segment vector load for
    layout-optimised scalar packs, or a lane-by-lane gather), a tree
    of vector ALU operations, and a destination commit (vector store,
    permute+store, scatter, or scalar unpacks limited to lanes whose
    scalars are actually demanded).  The register tracker capacity is
    the machine's vector register file size; evicted superwords are
    simply repacked on next use. *)

val lower :
  machine:Slp_machine.Machine.t ->
  ?reuse:bool ->
  ?scalar_offsets:(string * int) list ->
  ?setup:Slp_vm.Visa.item list ->
  Slp_core.Driver.program_plan ->
  Slp_vm.Visa.program
(** [reuse] (default true) enables register-resident superword reuse;
    disabling it forces every source pack to be rebuilt from
    memory/scalars — the knob behind the reuse-value experiment.
    [scalar_offsets]: byte offsets of layout-optimised scalars within
    the scalar segment (paper §5.1) — consecutive 8-byte slots make a
    scalar superword eligible for single vector memory operations.
    [setup] is prepended replication code from the array layout
    optimizer (§5.2). *)

val lower_with_origins :
  ?obs:Slp_obs.Obs.t ->
  machine:Slp_machine.Machine.t ->
  ?reuse:bool ->
  ?scalar_offsets:(string * int) list ->
  ?setup:Slp_vm.Visa.item list ->
  Slp_core.Driver.program_plan ->
  Slp_vm.Visa.program * Slp_obs.Profile.key array list
(** Like {!lower}, and additionally returns the profiling origin of
    every emitted instruction: one key array per [Visa.Block] of the
    body in pre-order, entry [i] naming the statement or pack that
    produced instruction [i] of that block.  [obs] collects one
    [PACK-DROP-ALIGN] remark per source pack that fell back to an
    element-wise gather and one [PACK-SCATTER] remark per destination
    pack unpacked element-wise to memory (from the surviving
    forced-unpack fixpoint attempt only). *)
