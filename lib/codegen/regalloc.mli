(** Vector register allocation — the paper's post-processing module
    ("the post-processing module performs register allocation and
    other low-level optimizations", §3).

    Code generation emits unbounded virtual vector registers; this
    pass maps each straight-line block onto the machine's physical
    register file with a forward linear scan, spilling the live value
    with the furthest next use (Belady) to dedicated 64-byte spill
    slots when pressure exceeds the file.  Spills and reloads are real
    instructions ({!Slp_vm.Visa.Vspill}/[Vreload]) charged like vector
    memory operations by the simulator. *)

type stats = {
  spills : int;  (** Static spill instructions inserted. *)
  reloads : int;
  max_pressure : int;  (** Peak simultaneously-live virtual registers. *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val instr_uses : Slp_vm.Visa.instr -> Slp_vm.Visa.vreg list
val instr_def : Slp_vm.Visa.instr -> Slp_vm.Visa.vreg option

val allocate_block :
  registers:int -> Slp_vm.Visa.instr list -> Slp_vm.Visa.instr list * stats
(** Raises [Invalid_argument] when [registers < 2] (an instruction can
    need two simultaneous sources). *)

val program :
  registers:int -> Slp_vm.Visa.program -> Slp_vm.Visa.program * stats
(** Allocate every block of the body (setup code contains no vector
    instructions). *)

val program_with_origins :
  registers:int ->
  origins:Slp_obs.Profile.key array list ->
  Slp_vm.Visa.program ->
  Slp_vm.Visa.program * stats * Slp_obs.Profile.key array list
(** Like {!program}, additionally transforming the profiling origins
    from {!Lower.lower_with_origins} alongside the code: every spill
    or reload inserted while processing an instruction inherits that
    instruction's origin, so the returned arrays stay parallel to the
    allocated blocks (pre-order). *)
