open Slp_ir
module E = Slp_util.Slp_error
module Visa = Slp_vm.Visa
module Sched = Slp_core.Schedule
module Driver = Slp_core.Driver
module Obs = Slp_obs.Obs
module Remark = Slp_obs.Remark

type replica = {
  source : string;
  name : string;
  lanes : int;
  stride : int;
  lane_offsets : int list;
  loop_index : string;
  lo : int;
  hi : int;
  step : int;
  coeff : int;
  size : int;  (** Elements of the innermost (strided) dimension. *)
  outer_dim : int option;
      (** For rank-2 sources: the size of the leading dimension, which
          the replica keeps; [None] for rank-1 sources. *)
  outer_sub : Affine.t option;
      (** The (lane-invariant) leading subscript of the rewritten
          references. *)
}

type result = {
  plan : Driver.program_plan;
  setup : Visa.item list;
  replicas : replica list;
}

let written_arrays (prog : Program.t) =
  let written = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (s : Stmt.t) ->
          match s.Stmt.lhs with
          | Operand.Elem (base, _) -> Hashtbl.replace written base ()
          | Operand.Scalar _ | Operand.Const _ -> ())
        b.Block.stmts)
    (Program.blocks prog);
  written

(* Split a reference's subscripts into (outer leading subscript, the
   strided innermost subscript): rank-1 arrays have no outer part;
   rank-2 arrays replicate per leading row when the leading subscript
   is lane-invariant and free of the innermost index. *)
let split_subscripts ~index = function
  | Operand.Elem (b, [ ix ]) -> Some (b, None, ix)
  | Operand.Elem (b, [ outer; ix ])
    when not (List.mem index (Affine.vars outer)) ->
      Some (b, Some outer, ix)
  | Operand.Elem _ | Operand.Scalar _ | Operand.Const _ -> None

(* A candidate pack: ordered lanes reading A[a·i + b_k] (rank 1) or
   A[f(outer)][a·i + b_k] (rank 2, lane-invariant leading subscript)
   of a read-only array within loop [l]. *)
let candidate ~env ~written (l : Program.loop) ordered =
  let lanes = List.length ordered in
  if lanes < 2 then None
  else begin
    let split = List.map (split_subscripts ~index:l.Program.index) ordered in
    if List.exists Option.is_none split then None
    else begin
      let split = List.map Option.get split in
      let base, outer0, _ = List.hd split in
      let same_shape =
        (not (Hashtbl.mem written base))
        && List.for_all
             (fun (b, outer, _) ->
               String.equal b base
               &&
               match (outer0, outer) with
               | None, None -> true
               | Some a, Some b -> Affine.equal a b
               | _, _ -> false)
             split
      in
      if not same_shape then None
      else begin
        let decompose (_, _, ix) =
          let vars = Affine.vars ix in
          if List.for_all (String.equal l.Program.index) vars then
            Some (Affine.coeff ix l.Program.index, Affine.const_part ix)
          else None
        in
        match List.map decompose split with
        | parts when List.for_all Option.is_some parts -> begin
            let parts = List.map Option.get parts in
            let a = fst (List.hd parts) in
            if a = 0 || not (List.for_all (fun (a', _) -> a' = a) parts) then None
            else begin
              let offsets = List.map snd parts in
              (* Already-contiguous ascending packs gain nothing. *)
              let contiguous =
                List.for_all2
                  (fun b k -> b = List.hd offsets + k)
                  offsets
                  (List.init lanes (fun k -> k))
              in
              if contiguous && abs a = 1 then None
              else begin
                let rank_matches =
                  match (Env.array_info env base, outer0) with
                  | Some info, None -> List.length info.Env.dims = 1
                  | Some info, Some _ -> List.length info.Env.dims = 2
                  | None, _ -> false
                in
                if not rank_matches then None
                else
                  match (Affine.to_const l.Program.lo, Affine.to_const l.Program.hi) with
                  | Some lo, Some hi when hi > lo && lanes mod l.Program.step = 0 ->
                      Some (base, a, offsets, lo, hi, outer0)
                  | _ -> None
              end
            end
          end
        | _ -> None
      end
    end
  end

let amortizes ~lanes ~repeat =
  (* Warm-cache per-iteration saving of a vector load over a gather,
     against a cold-miss copy (load+store per element, ~40 cycles of
     DRAM latency dominating). *)
  let gather_cost = lanes * 6 and vload_cost = 4 in
  let setup_cost = lanes * 40 in
  (repeat * (gather_cost - vload_cost)) > setup_cost

let outer_repeat_of_loops loop_stack =
  match loop_stack with
  | [] -> 1
  | _ :: outer ->
      List.fold_left
        (fun acc (l : Program.loop) ->
          acc * Option.value (Program.trip_count l) ~default:1)
        1 outer

let outer_repeat_of_block prog label =
  let result = ref 1 in
  let rec walk stack items =
    List.iter
      (function
        | Program.Stmts (b : Block.t) ->
            if String.equal b.Block.label label then result := outer_repeat_of_loops stack
        | Program.Loop l -> walk (l :: stack) l.Program.body)
      items
  in
  walk [] prog.Program.body;
  !result

let written_set prog =
  let tbl = written_arrays prog in
  fun base -> Hashtbl.mem tbl base

let replicable_pack ~env ~written ~innermost ordered =
  match innermost with
  | None -> false
  | Some index ->
      if List.length ordered < 2 then false
      else begin
        let split = List.map (split_subscripts ~index) ordered in
        if List.exists Option.is_none split then false
        else begin
          let split = List.map Option.get split in
          let base, outer0, _ = List.hd split in
          let rank_matches =
            match (Env.array_info env base, outer0) with
            | Some info, None -> List.length info.Env.dims = 1
            | Some info, Some _ -> List.length info.Env.dims = 2
            | None, _ -> false
          in
          (not (written base))
          && rank_matches
          && List.for_all
               (fun (b, outer, _) ->
                 String.equal b base
                 &&
                 match (outer0, outer) with
                 | None, None -> true
                 | Some a, Some b -> Affine.equal a b
                 | _, _ -> false)
               split
          &&
          let strides =
            List.map
              (fun (_, _, ix) ->
                if List.for_all (String.equal index) (Affine.vars ix) then
                  Some (Affine.coeff ix index)
                else None)
              split
          in
          List.for_all Option.is_some strides
          &&
          let strides = List.map Option.get strides in
          let a = List.hd strides in
          a <> 0 && List.for_all (fun a' -> a' = a) strides
        end
      end

let apply ?(obs = Obs.none) ?(max_replica_elems = 4 * 1024 * 1024)
    (plan : Driver.program_plan) =
  let remark id ~block ~stmts message =
    if Obs.remarks_on obs then
      Obs.remark obs (Remark.make ~id ~pass:"layout" ~block ~stmts message)
  in
  let prog = plan.Driver.program in
  let env = Env.copy prog.Program.env in
  let written = written_arrays prog in
  let replicas = ref [] in
  let replica_count = ref 0 in
  let by_signature = Hashtbl.create 8 in
  (* Rewrites: (block label, stmt id) -> (position -> operand). *)
  let rewrites = Hashtbl.create 32 in
  let add_rewrite block_label sid pos op =
    let key = (block_label, sid) in
    let m = Option.value (Hashtbl.find_opt rewrites key) ~default:[] in
    Hashtbl.replace rewrites key ((pos, op) :: m)
  in
  let plans = ref plan.Driver.plans in
  let pop_plan () =
    match !plans with
    | p :: rest ->
        plans := rest;
        p
    | [] -> E.fail ~pass:E.Layout E.Layout_failed "Array_layout.apply: plan list exhausted"
  in
  let replication_profitable ~lanes ~repeat = amortizes ~lanes ~repeat in
  (* Pass 1: find candidates and record rewrites. *)
  let rec scan loop_stack items =
    List.iter
      (function
        | Program.Stmts b -> begin
            let p = pop_plan () in
            match (p.Driver.schedule, loop_stack) with
            | Some sched, (l : Program.loop) :: _ ->
                List.iter
                  (function
                    | Sched.Single _ -> ()
                    | Sched.Superword order ->
                        let stmts = List.map (Block.find b) order in
                        let npos = Stmt.position_count (List.hd stmts) in
                        for pos = 1 to npos - 1 do
                          let ordered =
                            List.map (fun s -> List.nth (Stmt.positions s) pos) stmts
                          in
                          match candidate ~env ~written l ordered with
                          | None -> ()
                          | Some (base, a, offsets, lo, hi, outer_sub) ->
                              let lanes = List.length ordered in
                              let trip = ((hi - lo) + l.Program.step - 1) / l.Program.step in
                              let size = lanes * trip in
                              let outer_dim =
                                match outer_sub with
                                | None -> None
                                | Some _ ->
                                    Some
                                      (List.hd
                                         (Option.get (Env.array_info env base)).Env.dims)
                              in
                              let total =
                                size * Option.value outer_dim ~default:1
                              in
                              (* Loops whose index feeds the leading
                                 subscript select a different replica row
                                 each iteration, so they do not amortise
                                 the copy. *)
                              let repeat =
                                let outer_vars =
                                  match outer_sub with
                                  | Some o -> Affine.vars o
                                  | None -> []
                                in
                                match loop_stack with
                                | [] -> 1
                                | _ :: outer ->
                                    List.fold_left
                                      (fun acc (ol : Program.loop) ->
                                        if List.mem ol.Program.index outer_vars then acc
                                        else
                                          acc
                                          * Option.value (Program.trip_count ol)
                                              ~default:1)
                                      1 outer
                              in
                              if
                                not
                                  (total <= max_replica_elems
                                  && replication_profitable ~lanes ~repeat)
                              then
                                remark "LAYOUT-SKIP-SIZE" ~block:b.Block.label
                                  ~stmts:order
                                  (Printf.sprintf
                                     "replica of %s skipped: %d elements \
                                      against cap %d, repeat factor %d"
                                     base total max_replica_elems repeat)
                              else begin
                                let signature =
                                  ( base, a, offsets, lo, hi, l.Program.step,
                                    l.Program.index,
                                    Option.map Affine.to_string outer_sub )
                                in
                                let rep =
                                  match Hashtbl.find_opt by_signature signature with
                                  | Some rep -> rep
                                  | None ->
                                      let name =
                                        Printf.sprintf "%s__r%d" base !replica_count
                                      in
                                      incr replica_count;
                                      let info =
                                        Option.get (Env.array_info env base)
                                      in
                                      let dims =
                                        match outer_dim with
                                        | None -> [ size ]
                                        | Some d -> [ d; size ]
                                      in
                                      Env.declare_array env name info.Env.elem_ty dims;
                                      let rep =
                                        {
                                          source = base;
                                          name;
                                          lanes;
                                          stride = a;
                                          lane_offsets = offsets;
                                          loop_index = l.Program.index;
                                          lo;
                                          hi;
                                          step = l.Program.step;
                                          coeff = lanes / l.Program.step;
                                          size;
                                          outer_dim;
                                          outer_sub;
                                        }
                                      in
                                      Hashtbl.replace by_signature signature rep;
                                      replicas := rep :: !replicas;
                                      remark "LAYOUT-REPLICATE"
                                        ~block:b.Block.label ~stmts:order
                                        (Printf.sprintf
                                           "replicated %s as %s (%d lanes, \
                                            stride %d, %d elements)"
                                           base name lanes a size);
                                      rep
                                in
                                (* Rewrite lane k of member k. *)
                                List.iteri
                                  (fun k (s : Stmt.t) ->
                                    let ix =
                                      Affine.make
                                        [ (rep.loop_index, rep.coeff) ]
                                        (k - (rep.coeff * rep.lo))
                                    in
                                    let subs =
                                      match rep.outer_sub with
                                      | None -> [ ix ]
                                      | Some o -> [ o; ix ]
                                    in
                                    add_rewrite b.Block.label s.Stmt.id pos
                                      (Operand.Elem (rep.name, subs)))
                                  stmts
                              end
                        done)
                  sched.Sched.items
            | _, _ -> ()
          end
        | Program.Loop l -> scan (l :: loop_stack) l.Program.body)
      items
  in
  scan [] prog.Program.body;
  (* Pass 2: rebuild the program with rewritten operands. *)
  let rewrite_block (b : Block.t) =
    {
      b with
      Block.stmts =
        List.map
          (fun (s : Stmt.t) ->
            match Hashtbl.find_opt rewrites (b.Block.label, s.Stmt.id) with
            | None -> s
            | Some changes ->
                let leaves = Expr.leaves s.Stmt.rhs in
                let leaves' =
                  List.mapi
                    (fun leaf op ->
                      match List.assoc_opt (leaf + 1) changes with
                      | Some op' -> op'
                      | None -> op)
                    leaves
                in
                { s with Stmt.rhs = Expr.replace_leaves s.Stmt.rhs leaves' })
          b.Block.stmts;
    }
  in
  let rewritten =
    Program.map_blocks { prog with Program.env } ~f:rewrite_block
  in
  let new_plans =
    List.map2
      (fun (p : Driver.block_plan) (b, _) -> { p with Driver.block = b })
      plan.Driver.plans
      (List.map (fun (b, n) -> (b, n)) (Driver.blocks_with_nest rewritten))
  in
  (* Setup: one replication loop (nest) per replica.  Rank-2 sources
     copy every leading row — a superset of the rows the kernel
     touches, which is safe because the source is read-only. *)
  let setup =
    List.rev_map
      (fun rep ->
        let row = "__row" in
        let wrap_outer inner =
          match rep.outer_dim with
          | None -> inner
          | Some d ->
              Visa.Loop
                {
                  Visa.index = row;
                  lo = Affine.const 0;
                  hi = Affine.const d;
                  step = 1;
                  body = [ inner ];
                }
        in
        let copies =
          List.mapi
            (fun k b_k ->
              let dst_ix =
                Affine.make [ (rep.loop_index, rep.coeff) ] (k - (rep.coeff * rep.lo))
              in
              let src_ix = Affine.make [ (rep.loop_index, rep.stride) ] b_k in
              let dst_subs, src_subs =
                match rep.outer_dim with
                | None -> ([ dst_ix ], [ src_ix ])
                | Some _ -> ([ Affine.var row; dst_ix ], [ Affine.var row; src_ix ])
              in
              Visa.Sstmt
                (Stmt.make ~id:(k + 1)
                   ~lhs:(Operand.Elem (rep.name, dst_subs))
                   ~rhs:(Expr.Leaf (Operand.Elem (rep.source, src_subs)))))
            rep.lane_offsets
        in
        wrap_outer
          (Visa.Loop
             {
               Visa.index = rep.loop_index;
               lo = Affine.const rep.lo;
               hi = Affine.const rep.hi;
               step = rep.step;
               body = [ Visa.Block copies ];
             }))
      !replicas
  in
  {
    plan = { Driver.program = rewritten; plans = new_plans };
    setup;
    replicas = List.rev !replicas;
  }
