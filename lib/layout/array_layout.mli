(** Data layout optimization for array reference superwords (paper
    §5.2).

    A read-only, intra-array source pack whose lanes access
    [A[a·i + b_k]] in the innermost loop is mapped/replicated onto a
    fresh array [R] holding the accessed elements in an interleaved
    strided layout — lane [k] of iteration [t] at [R[L·t + k]]
    (Figure 14, Equation 4) — so the pack becomes one aligned vector
    load.  Replication is legal only for read-only references and may
    duplicate data; packs larger than [max_replica_elems] are skipped
    ("in case the input data sizes are too large ... we can skip the
    layout transformation").

    This module implements the executable one-dimensional
    innermost-loop case; the general multi-dimensional mapping
    functions (Equations 5-8) live in {!Transform} and are exercised
    analytically. *)


type replica = {
  source : string;
  name : string;
  lanes : int;
  stride : int;  (** Original innermost stride [a]. *)
  lane_offsets : int list;  (** [b_k] per lane. *)
  loop_index : string;
  lo : int;
  hi : int;
  step : int;
  coeff : int;  (** Rewritten stride [c = lanes / step]. *)
  size : int;  (** Elements of the strided dimension. *)
  outer_dim : int option;
      (** Rank-2 sources: size of the preserved leading dimension. *)
  outer_sub : Slp_ir.Affine.t option;
      (** Rank-2 sources: the lane-invariant leading subscript. *)
}

type result = {
  plan : Slp_core.Driver.program_plan;  (** Rewritten program and plans. *)
  setup : Slp_vm.Visa.item list;  (** Replication loops, run once. *)
  replicas : replica list;
}

val apply :
  ?obs:Slp_obs.Obs.t ->
  ?max_replica_elems:int ->
  Slp_core.Driver.program_plan ->
  result
(** Default [max_replica_elems] is 4M elements.  [obs] collects a
    [LAYOUT-REPLICATE] remark per replica created and a
    [LAYOUT-SKIP-SIZE] remark per candidate rejected on size or
    amortisation grounds. *)

val replicable_pack :
  env:Slp_ir.Env.t ->
  written:(string -> bool) ->
  innermost:string option ->
  Slp_ir.Operand.t list ->
  bool
(** Structural test (without bounds/profitability): could this ordered
    pack be mapped onto a strided replica?  Used by the Global+Layout
    cost gate to anticipate stage 2 ("layout-aware" profitability). *)

val written_set : Slp_ir.Program.t -> string -> bool
(** Arrays stored to anywhere in the program. *)

val amortizes : lanes:int -> repeat:int -> bool
(** The replication profitability rule: copying costs roughly a cold
    miss per element once, each re-run of the loop saves a gather
    minus a vector load per iteration; [repeat] is the product of the
    enclosing loops' trip counts. *)

val outer_repeat_of_block : Slp_ir.Program.t -> string -> int
(** Product of the trip counts of every loop enclosing the named block
    except the innermost (1 when unknown). *)
