(** Self-healing content-addressed result cache.

    One file per {!Ckey.t} under the cache directory, holding a single
    line [<digest-hex> <payload>] where the digest is the FNV-1a hash
    of the payload bytes.  Every read recomputes the digest: a
    mismatch (bit rot, torn write, injected corruption) evicts the
    entry and reports a miss, so the caller recompiles and the next
    store heals the cache — a corrupt entry can cost one recompile but
    can never serve a wrong answer.  Writes go through a temp file and
    [rename] so readers never observe a half-written entry. *)

type t

type stats = {
  hits : int;
  misses : int;
  stores : int;
  corrupt_evictions : int;
}

val create : dir:string -> t
(** Creates [dir] (and parents) when missing. *)

val dir : t -> string

val find : t -> Ckey.t -> string option
(** The stored payload, or [None] on miss {e or} after evicting a
    corrupt entry. *)

val store : t -> Ckey.t -> string -> unit
(** Idempotent; later stores for the same key overwrite. *)

val clear : t -> unit
(** Remove every entry (stats are kept). *)

val stats : t -> stats
