module E = Slp_util.Slp_error
module Backoff = Slp_util.Backoff
module Prng = Slp_util.Prng
module Json = Slp_obs.Json
module Clock = Slp_obs.Clock
module Log = Slp_obs.Log

type config = {
  workers : int;
  queue_depth : int;
  max_attempts : int;
  backoff : Backoff.policy;
  sleep : float -> unit;
  seed : int;
  default_timeout : float option;
}

let default_config =
  {
    workers = 2;
    queue_depth = 64;
    max_attempts = 3;
    backoff = Backoff.default;
    sleep = Unix.sleepf;
    seed = 42;
    default_timeout = None;
  }

type jobrec = {
  job_id : int;
  trace_id : string;
  op : Proto.jobop;
  spec : Proto.spec;
  key : Ckey.t;
  prog : Slp_ir.Program.t;
  reply : Proto.reply -> unit;
  mutable enqueued_at : float;
  mutable attempts : int;
  mutable errors : E.t list;  (** Reverse chronological. *)
}

type event = Died of int * jobrec | Stop

type slot_state = Idle | Busy | Dead

type t = {
  config : config;
  job_cache : Cache.t;
  telem : Telemetry.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : jobrec Queue.t;
  mutable in_flight : int;  (** Queued + running, until the reply lands. *)
  mutable paused : bool;
  mutable stopping : bool;
  mutable shut : bool;
  prng : Prng.t;  (** Jitter source; guarded by [mutex]. *)
  quarantine : (Ckey.t, string) Hashtbl.t;  (** Guarded by [mutex]. *)
  handles : unit Domain.t option array;  (** Guarded by [mutex]. *)
  slots : slot_state array;  (** Guarded by [mutex]. *)
  seq : int Atomic.t;  (** Fallback trace-id counter. *)
  ev_mutex : Mutex.t;
  ev_nonempty : Condition.t;
  events : event Queue.t;
  mutable supervisor : unit Domain.t option;
}

let metrics t = Telemetry.registry t.telem
let telemetry t = t.telem
let cache t = t.job_cache
let logger t = Telemetry.log t.telem

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_event t ev =
  Mutex.lock t.ev_mutex;
  Queue.push ev t.events;
  Condition.signal t.ev_nonempty;
  Mutex.unlock t.ev_mutex

let backoff_delay t ~attempt =
  locked t (fun () -> Backoff.delay t.config.backoff ~prng:t.prng ~attempt)

type health = {
  live_workers : int;
  queue_len : int;
  queue_limit : int;
  stopping : bool;
}

let health t =
  locked t (fun () ->
      {
        live_workers =
          Array.fold_left
            (fun acc s -> if s = Dead then acc else acc + 1)
            0 t.slots;
        queue_len = Queue.length t.queue;
        queue_limit = t.config.queue_depth;
        stopping = t.stopping;
      })

(* Every reply funnels through here so client-disconnect faults are
   observed (and survived) uniformly: the job's work is already done
   and cached by the time the callback runs, so a vanished client
   costs nothing but the reply bytes. *)
let guard_reply t cb reply =
  match
    Fault.reply_hook ();
    cb reply
  with
  | () -> Telemetry.reply t.telem ~outcome:"delivered"
  | exception _ ->
      Telemetry.reply t.telem ~outcome:"dropped";
      Log.warn (logger t) "reply_dropped"
        [ ("id", Json.Num (float_of_int reply.Proto.id)) ]

(* Reply for an in-flight job: deliver, then retire it from the
   drain accounting. *)
let deliver t (job : jobrec) reply =
  Telemetry.observe_latency t.telem
    ~op:(Proto.jobop_name job.op)
    (Clock.now () -. job.enqueued_at);
  guard_reply t job.reply reply;
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 then Condition.broadcast t.idle)

let job_fields (job : jobrec) =
  [
    ("trace", Json.Str job.trace_id);
    ("job", Json.Str job.spec.Proto.name);
    ("id", Json.Num (float_of_int job.job_id));
  ]

let quarantine_and_degrade t (job : jobrec) =
  let fresh =
    locked t (fun () ->
        if Hashtbl.mem t.quarantine job.key then false
        else (
          Hashtbl.replace t.quarantine job.key job.spec.Proto.name;
          true))
  in
  if fresh then (
    Telemetry.quarantine t.telem;
    Log.error (logger t) "quarantine"
      (job_fields job @ [ ("key", Json.Str (Ckey.to_hex job.key)) ]));
  let payload, fallback_errors = Job.run_degraded ~op:job.op ~spec:job.spec job.prog in
  Telemetry.job t.telem
    ~scheme:(Proto.scheme_to_string job.spec.Proto.scheme)
    ~outcome:"degraded";
  deliver t job
    {
      Proto.id = job.job_id;
      status = Proto.Degraded;
      cached = false;
      quarantined = true;
      attempts = job.attempts;
      errors = List.rev job.errors @ fallback_errors;
      payload;
    }

let is_quarantined t key = locked t (fun () -> Hashtbl.mem t.quarantine key)

(* One attempt plus in-place retries.  [Fault.Worker_killed] escapes to
   the worker loop — the supervisor owns that recovery. *)
let rec run_job t (job : jobrec) =
  if is_quarantined t job.key then quarantine_and_degrade t job
  else
    let obs = Telemetry.obs t.telem in
    match Job.run ~obs ~op:job.op ~spec:job.spec job.prog with
    | Result.Ok payload ->
        job.attempts <- job.attempts + 1;
        Cache.store t.job_cache job.key (Json.to_string payload);
        Telemetry.job t.telem
          ~scheme:(Proto.scheme_to_string job.spec.Proto.scheme)
          ~outcome:"ok";
        Log.debug (logger t) "job_ok"
          (job_fields job @ [ ("attempts", Json.Num (float_of_int job.attempts)) ]);
        deliver t job
          (Proto.ok_reply ~attempts:job.attempts ~errors:(List.rev job.errors)
             ~id:job.job_id payload)
    | Result.Error err ->
        job.attempts <- job.attempts + 1;
        job.errors <- err :: job.errors;
        if job.attempts >= t.config.max_attempts then quarantine_and_degrade t job
        else (
          Telemetry.retry t.telem ~reason:"failure";
          Log.warn (logger t) "job_retry"
            (job_fields job
            @ [
                ("attempt", Json.Num (float_of_int job.attempts));
                ("error", Json.Str (E.to_string err));
              ]);
          t.config.sleep (backoff_delay t ~attempt:job.attempts);
          run_job t job)

let set_slot t slot state = locked t (fun () -> t.slots.(slot) <- state)

let rec worker_loop t slot =
  let job =
    locked t (fun () ->
        let rec await () =
          if t.stopping && Queue.is_empty t.queue then None
          else if Queue.is_empty t.queue || (t.paused && not t.stopping) then (
            Condition.wait t.nonempty t.mutex;
            await ())
          else (
            let job = Queue.pop t.queue in
            t.slots.(slot) <- Busy;
            Some job)
        in
        await ())
  in
  match job with
  | None -> ()
  | Some job -> (
      Telemetry.observe_queue_wait t.telem (Clock.now () -. job.enqueued_at);
      let run () =
        Telemetry.span t.telem
          ~args:
            [
              ("trace", job.trace_id);
              ("kernel", job.spec.Proto.name);
              ("scheme", Proto.scheme_to_string job.spec.Proto.scheme);
              ("op", Proto.jobop_name job.op);
            ]
          "job"
          (fun () -> run_job t job)
      in
      match run () with
      | () ->
          set_slot t slot Idle;
          worker_loop t slot
      | exception Fault.Worker_killed ->
          (* This worker is "dead": hand the job to the supervisor and
             let the domain terminate. *)
          push_event t (Died (slot, job)))

let spawn_worker t slot = Domain.spawn (fun () -> worker_loop t slot)

let rec supervisor_loop t =
  let ev =
    Mutex.lock t.ev_mutex;
    while Queue.is_empty t.events do
      Condition.wait t.ev_nonempty t.ev_mutex
    done;
    let ev = Queue.pop t.events in
    Mutex.unlock t.ev_mutex;
    ev
  in
  match ev with
  | Stop -> ()
  | Died (slot, job) ->
      set_slot t slot Dead;
      Telemetry.worker_restart t.telem;
      Log.error (logger t) "worker_death"
        (job_fields job @ [ ("slot", Json.Num (float_of_int slot)) ]);
      (* Join the corpse, then bring the slot back up. *)
      (match locked t (fun () -> t.handles.(slot)) with
      | Some d -> Domain.join d
      | None -> ());
      let replacement =
        if locked t (fun () -> t.stopping) then None
        else Some (spawn_worker t slot)
      in
      locked t (fun () ->
          t.handles.(slot) <- replacement;
          if replacement <> None then t.slots.(slot) <- Idle);
      if replacement <> None then
        Log.info (logger t) "worker_respawn"
          [ ("slot", Json.Num (float_of_int slot)) ];
      job.attempts <- job.attempts + 1;
      job.errors <-
        E.make ~pass:E.Pipeline E.Internal
          "worker died mid-job; worker restarted, job retried"
        :: job.errors;
      if job.attempts >= t.config.max_attempts then quarantine_and_degrade t job
      else (
        Telemetry.retry t.telem ~reason:"worker_death";
        Log.warn (logger t) "job_retry"
          (job_fields job
          @ [
              ("attempt", Json.Num (float_of_int job.attempts));
              ("error", Json.Str "worker died mid-job");
            ]);
        t.config.sleep (backoff_delay t ~attempt:job.attempts);
        locked t (fun () ->
            Queue.push job t.queue;
            Condition.signal t.nonempty));
      supervisor_loop t

let create ?(config = default_config) ?telem ~cache () =
  let telem = match telem with Some tm -> tm | None -> Telemetry.create () in
  let t =
    {
      config;
      job_cache = cache;
      telem;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      in_flight = 0;
      paused = false;
      stopping = false;
      shut = false;
      prng = Prng.create config.seed;
      quarantine = Hashtbl.create 16;
      handles = Array.make (max 1 config.workers) None;
      slots = Array.make (max 1 config.workers) Idle;
      seq = Atomic.make 0;
      ev_mutex = Mutex.create ();
      ev_nonempty = Condition.create ();
      events = Queue.create ();
      supervisor = None;
    }
  in
  (* Scrape-derived gauges: refreshed by the registry's collect hook
     just before each snapshot, so stats/metrics reads see live queue
     and cache state without any hot-path bookkeeping. *)
  let registry = Telemetry.registry telem in
  let module Metric = Slp_obs.Metric in
  let g name help = Metric.Gauge.plain registry ~help name in
  let cache_hits = g "cache_hits" "Result-cache lookups served" in
  let cache_misses = g "cache_misses" "Result-cache lookups missed" in
  let cache_stores = g "cache_stores" "Result-cache entries written" in
  let cache_corrupt = g "cache_corrupt_evictions" "Corrupt entries evicted" in
  let cache_hit_rate = g "cache_hit_rate" "hits / (hits + misses)" in
  Metric.on_collect registry (fun () ->
      let depth, inflight = locked t (fun () -> (Queue.length t.queue, t.in_flight)) in
      let h = health t in
      Telemetry.set_queue_depth telem depth;
      Telemetry.set_in_flight telem inflight;
      Telemetry.set_workers_live telem h.live_workers;
      let cs = Cache.stats t.job_cache in
      let hits = float_of_int cs.Cache.hits in
      let misses = float_of_int cs.Cache.misses in
      Metric.Gauge.set cache_hits hits;
      Metric.Gauge.set cache_misses misses;
      Metric.Gauge.set cache_stores (float_of_int cs.Cache.stores);
      Metric.Gauge.set cache_corrupt (float_of_int cs.Cache.corrupt_evictions);
      Metric.Gauge.set cache_hit_rate
        (if hits +. misses > 0.0 then hits /. (hits +. misses) else 0.0));
  for slot = 0 to max 1 config.workers - 1 do
    t.handles.(slot) <- Some (spawn_worker t slot)
  done;
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  t

let submit ?trace_id t ~id ~op ~spec ~reply =
  let trace_id =
    match trace_id with
    | Some tid -> tid
    | None -> Printf.sprintf "job-%d" (Atomic.fetch_and_add t.seq 1)
  in
  let scheme = Proto.scheme_to_string spec.Proto.scheme in
  let spec =
    match (spec.Proto.timeout, t.config.default_timeout) with
    | None, Some s -> { spec with Proto.timeout = Some s }
    | _ -> spec
  in
  match Ckey.of_spec ~op spec with
  | Result.Error err ->
      Telemetry.job t.telem ~scheme ~outcome:"bad";
      Log.warn (logger t) "job_rejected"
        [
          ("trace", Json.Str trace_id);
          ("job", Json.Str spec.Proto.name);
          ("error", Json.Str (E.to_string err));
        ];
      guard_reply t reply
        (Proto.error_reply ~errors:[ err ] ~message:"kernel rejected" ~id
           Proto.Bad_request)
  | Result.Ok (key, prog) -> (
      match Cache.find t.job_cache key with
      | Some stored ->
          Telemetry.job t.telem ~scheme ~outcome:"cached";
          Log.debug (logger t) "cache_hit"
            [
              ("trace", Json.Str trace_id);
              ("job", Json.Str spec.Proto.name);
              ("key", Json.Str (Ckey.to_hex key));
            ];
          let payload =
            match Json.parse stored with
            | Result.Ok j -> j
            | Result.Error _ -> Json.Null
          in
          guard_reply t reply (Proto.ok_reply ~cached:true ~attempts:0 ~id payload)
      | None ->
          let job =
            {
              job_id = id;
              trace_id;
              op;
              spec;
              key;
              prog;
              reply;
              enqueued_at = Clock.now ();
              attempts = 0;
              errors = [];
            }
          in
          let verdict =
            locked t (fun () ->
                if t.stopping then `Draining
                else if Queue.length t.queue >= t.config.queue_depth then `Shed
                else (
                  Queue.push job t.queue;
                  t.in_flight <- t.in_flight + 1;
                  Condition.signal t.nonempty;
                  `Queued))
          in
          (match verdict with
          | `Queued -> Log.debug (logger t) "job_enqueue" (job_fields job)
          | `Draining ->
              Telemetry.job t.telem ~scheme ~outcome:"draining";
              Log.warn (logger t) "job_draining" (job_fields job);
              guard_reply t reply
                (Proto.error_reply ~message:"service is draining" ~id
                   Proto.Draining)
          | `Shed ->
              Telemetry.job t.telem ~scheme ~outcome:"shed";
              Log.warn (logger t) "job_shed" (job_fields job);
              guard_reply t reply
                (Proto.error_reply ~message:"queue full, job shed" ~id
                   Proto.Overloaded)))

let run_sync t ?(id = 0) ?trace_id ~op ~spec () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let slot = ref None in
  submit t ?trace_id ~id ~op ~spec ~reply:(fun r ->
      Mutex.lock m;
      slot := Some r;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while Option.is_none !slot do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Option.get !slot

let pause t =
  locked t (fun () -> t.paused <- true)

let resume t =
  locked t (fun () ->
      t.paused <- false;
      Condition.broadcast t.nonempty)

let quarantined t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.quarantine []
      |> List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b))

let drain t =
  locked t (fun () ->
      while t.in_flight > 0 do
        Condition.wait t.idle t.mutex
      done)

let shutdown t =
  drain t;
  let already =
    locked t (fun () ->
        if t.shut then true
        else (
          t.shut <- true;
          t.stopping <- true;
          Condition.broadcast t.nonempty;
          false))
  in
  if not already then (
    Array.iteri
      (fun slot handle ->
        match handle with
        | Some d ->
            Domain.join d;
            t.handles.(slot) <- None
        | None -> ())
      (locked t (fun () -> Array.copy t.handles));
    push_event t Stop;
    match t.supervisor with
    | Some d ->
        Domain.join d;
        t.supervisor <- None
    | None -> ())
