module E = Slp_util.Slp_error
module Backoff = Slp_util.Backoff
module Prng = Slp_util.Prng
module Json = Slp_obs.Json
module Metrics = Slp_obs.Metrics

type config = {
  workers : int;
  queue_depth : int;
  max_attempts : int;
  backoff : Backoff.policy;
  sleep : float -> unit;
  seed : int;
  default_timeout : float option;
}

let default_config =
  {
    workers = 2;
    queue_depth = 64;
    max_attempts = 3;
    backoff = Backoff.default;
    sleep = Unix.sleepf;
    seed = 42;
    default_timeout = None;
  }

type jobrec = {
  job_id : int;
  op : Proto.jobop;
  spec : Proto.spec;
  key : Ckey.t;
  prog : Slp_ir.Program.t;
  reply : Proto.reply -> unit;
  mutable attempts : int;
  mutable errors : E.t list;  (** Reverse chronological. *)
}

type event = Died of int * jobrec | Stop

type t = {
  config : config;
  job_cache : Cache.t;
  metrics : Metrics.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : jobrec Queue.t;
  mutable in_flight : int;  (** Queued + running, until the reply lands. *)
  mutable paused : bool;
  mutable stopping : bool;
  mutable shut : bool;
  prng : Prng.t;  (** Jitter source; guarded by [mutex]. *)
  quarantine : (Ckey.t, string) Hashtbl.t;  (** Guarded by [mutex]. *)
  handles : unit Domain.t option array;  (** Guarded by [mutex]. *)
  ev_mutex : Mutex.t;
  ev_nonempty : Condition.t;
  events : event Queue.t;
  mutable supervisor : unit Domain.t option;
}

let metrics t = t.metrics
let cache t = t.job_cache

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_event t ev =
  Mutex.lock t.ev_mutex;
  Queue.push ev t.events;
  Condition.signal t.ev_nonempty;
  Mutex.unlock t.ev_mutex

let backoff_delay t ~attempt =
  locked t (fun () -> Backoff.delay t.config.backoff ~prng:t.prng ~attempt)

(* Every reply funnels through here so client-disconnect faults are
   observed (and survived) uniformly: the job's work is already done
   and cached by the time the callback runs, so a vanished client
   costs nothing but the reply bytes. *)
let guard_reply t cb reply =
  try
    Fault.reply_hook ();
    cb reply
  with _ -> Metrics.incr t.metrics "replies_dropped"

(* Reply for an in-flight job: deliver, then retire it from the
   drain accounting. *)
let deliver t (job : jobrec) reply =
  guard_reply t job.reply reply;
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 then Condition.broadcast t.idle)

let quarantine_and_degrade t (job : jobrec) =
  locked t (fun () ->
      if not (Hashtbl.mem t.quarantine job.key) then (
        Hashtbl.replace t.quarantine job.key job.spec.Proto.name;
        Metrics.incr t.metrics "quarantined"));
  let payload, fallback_errors = Job.run_degraded ~op:job.op ~spec:job.spec job.prog in
  Metrics.incr t.metrics "jobs_degraded";
  deliver t job
    {
      Proto.id = job.job_id;
      status = Proto.Degraded;
      cached = false;
      quarantined = true;
      attempts = job.attempts;
      errors = List.rev job.errors @ fallback_errors;
      payload;
    }

let is_quarantined t key = locked t (fun () -> Hashtbl.mem t.quarantine key)

(* One attempt plus in-place retries.  [Fault.Worker_killed] escapes to
   the worker loop — the supervisor owns that recovery. *)
let rec run_job t (job : jobrec) =
  if is_quarantined t job.key then quarantine_and_degrade t job
  else
    match Job.run ~op:job.op ~spec:job.spec job.prog with
    | Result.Ok payload ->
        job.attempts <- job.attempts + 1;
        Cache.store t.job_cache job.key (Json.to_string payload);
        Metrics.incr t.metrics "jobs_ok";
        deliver t job
          (Proto.ok_reply ~attempts:job.attempts ~errors:(List.rev job.errors)
             ~id:job.job_id payload)
    | Result.Error err ->
        job.attempts <- job.attempts + 1;
        job.errors <- err :: job.errors;
        if job.attempts >= t.config.max_attempts then quarantine_and_degrade t job
        else (
          Metrics.incr t.metrics "retries";
          t.config.sleep (backoff_delay t ~attempt:job.attempts);
          run_job t job)

let rec worker_loop t slot =
  let job =
    locked t (fun () ->
        let rec await () =
          if t.stopping && Queue.is_empty t.queue then None
          else if Queue.is_empty t.queue || (t.paused && not t.stopping) then (
            Condition.wait t.nonempty t.mutex;
            await ())
          else Some (Queue.pop t.queue)
        in
        await ())
  in
  match job with
  | None -> ()
  | Some job -> (
      match run_job t job with
      | () -> worker_loop t slot
      | exception Fault.Worker_killed ->
          (* This worker is "dead": hand the job to the supervisor and
             let the domain terminate. *)
          push_event t (Died (slot, job)))

let spawn_worker t slot = Domain.spawn (fun () -> worker_loop t slot)

let rec supervisor_loop t =
  let ev =
    Mutex.lock t.ev_mutex;
    while Queue.is_empty t.events do
      Condition.wait t.ev_nonempty t.ev_mutex
    done;
    let ev = Queue.pop t.events in
    Mutex.unlock t.ev_mutex;
    ev
  in
  match ev with
  | Stop -> ()
  | Died (slot, job) ->
      Metrics.incr t.metrics "worker_restarts";
      (* Join the corpse, then bring the slot back up. *)
      (match locked t (fun () -> t.handles.(slot)) with
      | Some d -> Domain.join d
      | None -> ());
      let replacement =
        if locked t (fun () -> t.stopping) then None
        else Some (spawn_worker t slot)
      in
      locked t (fun () -> t.handles.(slot) <- replacement);
      job.attempts <- job.attempts + 1;
      job.errors <-
        E.make ~pass:E.Pipeline E.Internal
          "worker died mid-job; worker restarted, job retried"
        :: job.errors;
      if job.attempts >= t.config.max_attempts then quarantine_and_degrade t job
      else (
        Metrics.incr t.metrics "retries";
        t.config.sleep (backoff_delay t ~attempt:job.attempts);
        locked t (fun () ->
            Queue.push job t.queue;
            Condition.signal t.nonempty));
      supervisor_loop t

let create ?(config = default_config) ~cache () =
  let t =
    {
      config;
      job_cache = cache;
      metrics = Metrics.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      in_flight = 0;
      paused = false;
      stopping = false;
      shut = false;
      prng = Prng.create config.seed;
      quarantine = Hashtbl.create 16;
      handles = Array.make (max 1 config.workers) None;
      ev_mutex = Mutex.create ();
      ev_nonempty = Condition.create ();
      events = Queue.create ();
      supervisor = None;
    }
  in
  for slot = 0 to max 1 config.workers - 1 do
    t.handles.(slot) <- Some (spawn_worker t slot)
  done;
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  t

let submit t ~id ~op ~spec ~reply =
  let spec =
    match (spec.Proto.timeout, t.config.default_timeout) with
    | None, Some s -> { spec with Proto.timeout = Some s }
    | _ -> spec
  in
  match Ckey.of_spec ~op spec with
  | Result.Error err ->
      Metrics.incr t.metrics "jobs_bad";
      guard_reply t reply
        (Proto.error_reply ~errors:[ err ] ~message:"kernel rejected" ~id
           Proto.Bad_request)
  | Result.Ok (key, prog) -> (
      match Cache.find t.job_cache key with
      | Some stored ->
          Metrics.incr t.metrics "jobs_cached";
          let payload =
            match Json.parse stored with
            | Result.Ok j -> j
            | Result.Error _ -> Json.Null
          in
          guard_reply t reply (Proto.ok_reply ~cached:true ~attempts:0 ~id payload)
      | None ->
          let verdict =
            locked t (fun () ->
                if t.stopping then `Draining
                else if Queue.length t.queue >= t.config.queue_depth then `Shed
                else (
                  Queue.push
                    {
                      job_id = id;
                      op;
                      spec;
                      key;
                      prog;
                      reply;
                      attempts = 0;
                      errors = [];
                    }
                    t.queue;
                  t.in_flight <- t.in_flight + 1;
                  Condition.signal t.nonempty;
                  `Queued))
          in
          (match verdict with
          | `Queued -> ()
          | `Draining ->
              Metrics.incr t.metrics "jobs_draining";
              guard_reply t reply
                (Proto.error_reply ~message:"service is draining" ~id
                   Proto.Draining)
          | `Shed ->
              Metrics.incr t.metrics "jobs_shed";
              guard_reply t reply
                (Proto.error_reply ~message:"queue full, job shed" ~id
                   Proto.Overloaded)))

let run_sync t ?(id = 0) ~op ~spec () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let slot = ref None in
  submit t ~id ~op ~spec ~reply:(fun r ->
      Mutex.lock m;
      slot := Some r;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while Option.is_none !slot do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Option.get !slot

let pause t =
  locked t (fun () -> t.paused <- true)

let resume t =
  locked t (fun () ->
      t.paused <- false;
      Condition.broadcast t.nonempty)

let quarantined t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.quarantine []
      |> List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b))

let drain t =
  locked t (fun () ->
      while t.in_flight > 0 do
        Condition.wait t.idle t.mutex
      done)

let shutdown t =
  drain t;
  let already =
    locked t (fun () ->
        if t.shut then true
        else (
          t.shut <- true;
          t.stopping <- true;
          Condition.broadcast t.nonempty;
          false))
  in
  if not already then (
    Array.iteri
      (fun slot handle ->
        match handle with
        | Some d ->
            Domain.join d;
            t.handles.(slot) <- None
        | None -> ())
      (locked t (fun () -> Array.copy t.handles));
    push_event t Stop;
    match t.supervisor with
    | Some d ->
        Domain.join d;
        t.supervisor <- None
    | None -> ())
