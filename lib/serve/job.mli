(** One job attempt, and its degraded fallback.

    [run] is what a pool worker executes: a single compile (optionally
    followed by execution) of an already-parsed kernel, under the
    spec's wall-clock deadline and with the service fault hooks
    installed.  Its payload is deterministic — memory contents and
    vector code are folded into FNV digests, and nothing wall-clock
    dependent (compile seconds, timestamps) is included — so a cached
    payload, a retried payload, and a fresh one-shot payload for the
    same key are bit-identical, which is exactly what the fault matrix
    asserts. *)

val run :
  ?clock:(unit -> float) ->
  ?obs:Slp_obs.Obs.t ->
  op:Proto.jobop ->
  spec:Proto.spec ->
  Slp_ir.Program.t ->
  (Slp_obs.Json.t, Slp_util.Slp_error.t) result
(** One attempt.  [clock] (default {!Fault.now}, which folds injected
    skew in) seeds the deadline when [spec.timeout] is set; [obs]
    (default off) carries the worker's trace row so pipeline stage
    spans land on the job's timeline.  Pipeline and deadline failures
    come back as structured errors; {!Fault.Worker_killed} is
    re-raised so the supervisor can tell a dead worker from a failed
    job. *)

val run_degraded :
  op:Proto.jobop ->
  spec:Proto.spec ->
  Slp_ir.Program.t ->
  Slp_obs.Json.t * Slp_util.Slp_error.t list
(** Quarantine fallback: [compile_resilient] scalar degradation with
    no deadline, hooks, or faults.  Never raises; the errors are the
    bailouts the degradation recorded. *)
