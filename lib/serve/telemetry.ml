(* The daemon's telemetry bundle: one registry of typed instruments,
   one structured log, and (optionally) one trace hub, created
   together and threaded through the pool and the reactor.

   Instrument families are registered once here, and the hot paths
   hold pre-resolved handles where the label set is static.  Label
   cardinality is bounded by construction: schemes and outcomes are
   closed enumerations, never client-supplied strings. *)

module Clock = Slp_obs.Clock
module Metric = Slp_obs.Metric
module Log = Slp_obs.Log
module Tracehub = Slp_obs.Tracehub
module Obs = Slp_obs.Obs

type t = {
  registry : Metric.t;
  log : Log.t;
  hub : Tracehub.t option;
  started_at : float;
  jobs : Metric.Counter.family;  (* jobs_total{scheme,outcome} *)
  retries : Metric.Counter.family;  (* job_retries_total{reason} *)
  replies : Metric.Counter.family;  (* replies_total{outcome} *)
  worker_restarts : Metric.Counter.handle;
  quarantined_total : Metric.Counter.handle;
  latency : Metric.Histogram.family;  (* job_latency_seconds{op} *)
  queue_wait : Metric.Histogram.handle;
  queue_depth : Metric.Gauge.handle;
  in_flight : Metric.Gauge.handle;
  workers_live : Metric.Gauge.handle;
  uptime : Metric.Gauge.handle;
}

let create ?log ?hub ?registry () =
  let registry = match registry with Some r -> r | None -> Metric.create () in
  let log = match log with Some l -> l | None -> Log.create () in
  let started_at = Clock.now () in
  let t =
    {
      registry;
      log;
      hub;
      started_at;
      jobs =
        Metric.Counter.family registry ~help:"Jobs by scheme and outcome"
          ~labels:[ "scheme"; "outcome" ] "jobs_total";
      retries =
        Metric.Counter.family registry ~help:"Job retries by reason"
          ~labels:[ "reason" ] "job_retries_total";
      replies =
        Metric.Counter.family registry ~help:"Reply routing outcomes"
          ~labels:[ "outcome" ] "replies_total";
      worker_restarts =
        Metric.Counter.plain registry
          ~help:"Worker domains respawned after a death" "worker_restarts_total";
      quarantined_total =
        Metric.Counter.plain registry ~help:"Job keys quarantined"
          "jobs_quarantined_total";
      latency =
        Metric.Histogram.family registry
          ~help:"Enqueue-to-reply latency by job op" ~labels:[ "op" ]
          "job_latency_seconds";
      queue_wait =
        Metric.Histogram.plain registry
          ~help:"Time jobs spend queued before a worker picks them up"
          "queue_wait_seconds";
      queue_depth =
        Metric.Gauge.plain registry ~help:"Jobs currently queued" "queue_depth";
      in_flight =
        Metric.Gauge.plain registry ~help:"Jobs queued or running"
          "jobs_in_flight";
      workers_live =
        Metric.Gauge.plain registry ~help:"Worker domains not currently dead"
          "workers_live";
      uptime =
        Metric.Gauge.plain registry ~help:"Seconds since telemetry start"
          "uptime_seconds";
    }
  in
  Metric.on_collect registry (fun () ->
      Metric.Gauge.set t.uptime (Clock.now () -. started_at));
  t

let registry t = t.registry
let log t = t.log
let hub t = t.hub
let started_at t = t.started_at

(* -- hot-path helpers ------------------------------------------------- *)

let job t ~scheme ~outcome =
  Metric.Counter.incr (Metric.Counter.handle t.jobs [ scheme; outcome ])

let retry t ~reason =
  Metric.Counter.incr (Metric.Counter.handle t.retries [ reason ])

let reply t ~outcome =
  Metric.Counter.incr (Metric.Counter.handle t.replies [ outcome ])

let worker_restart t = Metric.Counter.incr t.worker_restarts
let quarantine t = Metric.Counter.incr t.quarantined_total

let observe_latency t ~op seconds =
  Metric.Histogram.observe (Metric.Histogram.handle t.latency [ op ]) seconds

let observe_queue_wait t seconds = Metric.Histogram.observe t.queue_wait seconds

let set_queue_depth t v = Metric.Gauge.set t.queue_depth (float_of_int v)
let set_in_flight t v = Metric.Gauge.set t.in_flight (float_of_int v)
let set_workers_live t v = Metric.Gauge.set t.workers_live (float_of_int v)

(* -- tracing ---------------------------------------------------------- *)

let span t ?args name f =
  match t.hub with None -> f () | Some hub -> Tracehub.span hub ?args name f

(* An [Obs.t] whose trace is the calling domain's row of the hub, so
   pipeline stage spans land on the worker's own timeline. *)
let obs t =
  match t.hub with
  | None -> Obs.none
  | Some hub -> { Obs.none with Obs.trace = Some (Tracehub.trace hub) }
