(** The supervised worker pool.

    Jobs flow: [submit] parses and keys the spec, answers straight
    from the cache on a hit, sheds with [Overloaded] when the bounded
    queue is full, and otherwise enqueues.  Worker domains pull jobs
    and run {!Job.run}; a structured failure is retried in place with
    capped exponential backoff (seeded jitter, so tests are
    deterministic) up to [max_attempts], after which the key is
    quarantined and the job falls back to {!Job.run_degraded}.  A
    worker that dies under a job ({!Fault.Worker_killed} escaping) is
    detected by the supervisor domain, which joins the corpse, spawns
    a replacement, and re-enqueues the job with its attempt count
    advanced — a dying worker costs a retry, never a lost job.

    Every reply — success, degraded, shed — goes through the job's
    callback exactly once; a callback that raises {!Fault.Client_gone}
    (client vanished mid-reply) is counted and swallowed, and since
    successful payloads are cached before delivery, the client can
    replay the request and hit the cache.

    Deadlines are cooperative: {!Job.run} arms them over the service
    clock and the pipeline checks them at stage boundaries and fuel
    ticks.  A breach is a structured [BAIL16] failure and takes the
    ordinary retry path; the supervisor cannot preempt a domain. *)

type config = {
  workers : int;
  queue_depth : int;  (** Jobs beyond this are shed, not queued. *)
  max_attempts : int;  (** Attempts before quarantine. *)
  backoff : Slp_util.Backoff.policy;
  sleep : float -> unit;
      (** Backoff sleeper; tests pass [ignore] to retry instantly. *)
  seed : int;  (** Seeds the jitter PRNG. *)
  default_timeout : float option;
      (** Applied when a spec carries no [timeout]. *)
}

val default_config : config
(** 2 workers, depth 64, 3 attempts, {!Slp_util.Backoff.default},
    [Unix.sleepf], seed 42, no default timeout. *)

type t

val create : ?config:config -> ?telem:Telemetry.t -> cache:Cache.t -> unit -> t
(** [telem] defaults to a fresh {!Telemetry.create} bundle; the pool
    registers a collect hook on its registry that refreshes queue,
    worker, and cache gauges at every scrape. *)

val submit :
  ?trace_id:string -> t -> id:int -> op:Proto.jobop -> spec:Proto.spec ->
  reply:(Proto.reply -> unit) -> unit
(** Never blocks for the job itself (cache hits, sheds and parse
    failures reply on the caller's thread; queued jobs reply from a
    worker or supervisor thread — the callback must be thread-safe). *)

val run_sync :
  t -> ?id:int -> ?trace_id:string -> op:Proto.jobop -> spec:Proto.spec ->
  unit -> Proto.reply
(** Submit and wait for this job's reply — the in-process convenience
    used by benchmarks and tests. *)

val pause : t -> unit
(** Test affordance: workers finish their current job and then hold
    before picking up another, so a test can fill the queue to a known
    depth.  Not a fault point — nothing is lost or reordered. *)

val resume : t -> unit

val quarantined : t -> (Ckey.t * string) list
(** Quarantined keys with the job name first seen, sorted by key. *)

val drain : t -> unit
(** Block until no job is queued or in flight. *)

val shutdown : t -> unit
(** [drain], then stop and join every worker and the supervisor.
    Idempotent. *)

type health = {
  live_workers : int;  (** Worker slots not currently dead. *)
  queue_len : int;
  queue_limit : int;
  stopping : bool;
}

val health : t -> health
(** Readiness inputs: the server reports ready iff workers are live,
    the queue is below the shed threshold, and nothing is stopping. *)

val metrics : t -> Slp_obs.Metrics.t
val telemetry : t -> Telemetry.t
val cache : t -> Cache.t
