(** The daemon's telemetry bundle: typed metrics, structured log, and
    the cross-domain trace hub, created together and threaded through
    {!Pool} and {!Server}.

    Instrument families are fixed here (the label catalogue lives in
    DESIGN.md); the pool reports through the helpers below rather than
    touching the registry, so series names and label sets stay in one
    place.  All helpers are safe from any domain: counters and
    histograms stripe per domain, spans record on the calling domain's
    own trace row. *)

type t

val create :
  ?log:Slp_obs.Log.t ->
  ?hub:Slp_obs.Tracehub.t ->
  ?registry:Slp_obs.Metric.t ->
  unit ->
  t
(** Fresh registry (with the service families pre-registered), default
    [Info] log, and no trace hub unless one is supplied. *)

val registry : t -> Slp_obs.Metric.t
val log : t -> Slp_obs.Log.t
val hub : t -> Slp_obs.Tracehub.t option
val started_at : t -> float

val job : t -> scheme:string -> outcome:string -> unit
(** Bump [jobs_total{scheme,outcome}]; outcome is one of ok / cached /
    degraded / shed / draining / bad. *)

val retry : t -> reason:string -> unit
(** [job_retries_total{reason}]: failure or worker_death. *)

val reply : t -> outcome:string -> unit
(** [replies_total{outcome}]: delivered / dropped / unroutable. *)

val worker_restart : t -> unit
val quarantine : t -> unit

val observe_latency : t -> op:string -> float -> unit
(** [job_latency_seconds{op}]: enqueue-to-reply seconds. *)

val observe_queue_wait : t -> float -> unit

val set_queue_depth : t -> int -> unit
val set_in_flight : t -> int -> unit
val set_workers_live : t -> int -> unit

val span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Span on the calling domain's trace row; just runs [f] without a
    hub. *)

val obs : t -> Slp_obs.Obs.t
(** An observability bundle whose trace is the calling domain's hub
    row — what workers pass to {!Job.run} so pipeline stage spans land
    on the right timeline.  {!Slp_obs.Obs.none} without a hub. *)
