type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mailbox : (int, Proto.reply) Hashtbl.t;
}

let connect ~socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    mailbox = Hashtbl.create 8;
  }

let close t =
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t request =
  output_string t.oc (Proto.request_to_line request);
  output_char t.oc '\n';
  flush t.oc

let rec wait t ~id =
  match Hashtbl.find_opt t.mailbox id with
  | Some reply ->
      Hashtbl.remove t.mailbox id;
      reply
  | None -> (
      let line = input_line t.ic in
      match Proto.reply_of_line line with
      | Result.Ok reply ->
          if reply.Proto.id = id then reply
          else (
            Hashtbl.replace t.mailbox reply.Proto.id reply;
            wait t ~id)
      | Result.Error msg -> failwith ("slpd client: " ^ msg))

let call t request =
  send t request;
  wait t ~id:request.Proto.id
