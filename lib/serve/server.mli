(** The slpd daemon loop: a [select]-based reactor on a Unix socket.

    One thread owns all sockets; worker domains never touch a fd.
    Pool replies land in per-client output queues via a callback and a
    self-pipe wakes the reactor to flush them, so a slow or vanished
    client can never block a worker.  Clients are addressed by a
    generation token, not their fd, so a reply to a disconnected
    client is counted and dropped rather than written to whoever
    inherited the descriptor.

    SIGTERM, SIGINT, and the [shutdown] op all trigger the same
    graceful drain: stop accepting work (new jobs get [Draining]),
    wait for every in-flight job, flush outstanding replies, then tear
    the pool down and unlink the socket. *)

type config = {
  socket_path : string;
  accept_backlog : int;
}

val default_config : socket_path:string -> config

val stats_json : Pool.t -> Slp_obs.Json.t
(** The [stats] op's payload, also printed by [slpd] on exit: uptime,
    queue and worker state, the flat legacy metric view ("pool"), the
    full typed registry ("metrics"), cache stats with hit rate, log
    counts, and quarantined keys. *)

val metrics_text : Pool.t -> string
(** The [metrics] op's payload: Prometheus text exposition of the
    pool's registry, with collect hooks (queue/worker/cache gauges)
    run first. *)

val health_json : ?draining:bool -> Pool.t -> Slp_obs.Json.t
(** The [health] op's payload.  [live] is always true from a running
    reactor; [ready] requires live workers, a queue below the shed
    threshold, and no drain in progress. *)

val run : ?config:config -> pool:Pool.t -> socket:string -> unit -> unit
(** Serve until a shutdown trigger, then drain and return.  Installs
    SIGTERM/SIGINT handlers for the duration and ignores SIGPIPE. *)
