module Json = Slp_obs.Json
module Metrics = Slp_obs.Metrics
module Metric = Slp_obs.Metric
module Log = Slp_obs.Log
module Clock = Slp_obs.Clock

type config = { socket_path : string; accept_backlog : int }

let default_config ~socket_path = { socket_path; accept_backlog = 16 }

(* The full snapshot: flat legacy view under "pool", the typed
   registry under "metrics", plus queue/worker/cache/log summaries.
   Quarantine keys ride along so operators can clear them by hand. *)
let stats_json pool =
  let telem = Pool.telemetry pool in
  let h = Pool.health pool in
  let cache_stats = Cache.stats (Pool.cache pool) in
  let hits = float_of_int cache_stats.Cache.hits in
  let misses = float_of_int cache_stats.Cache.misses in
  Json.Obj
    [
      ( "uptime_seconds",
        Json.Num (Clock.now () -. Telemetry.started_at telem) );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Num (float_of_int h.Pool.queue_len));
            ("limit", Json.Num (float_of_int h.Pool.queue_limit));
          ] );
      ( "workers",
        Json.Obj [ ("live", Json.Num (float_of_int h.Pool.live_workers)) ] );
      ("pool", Metrics.to_json (Pool.metrics pool));
      ("metrics", Metric.to_json (Telemetry.registry telem));
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Num hits);
            ("misses", Json.Num misses);
            ("stores", Json.Num (float_of_int cache_stats.Cache.stores));
            ( "corrupt_evictions",
              Json.Num (float_of_int cache_stats.Cache.corrupt_evictions) );
            ( "hit_rate",
              Json.Num
                (if hits +. misses > 0.0 then hits /. (hits +. misses) else 0.0)
            );
          ] );
      ("log", Log.stats_json (Telemetry.log telem));
      ( "quarantined",
        Json.Arr
          (List.map
             (fun (key, name) ->
               Json.Obj
                 [ ("key", Json.Str (Ckey.to_hex key)); ("name", Json.Str name) ])
             (Pool.quarantined pool)) );
    ]

let metrics_text pool =
  Metric.to_prometheus (Telemetry.registry (Pool.telemetry pool))

let health_json ?(draining = false) pool =
  let h = Pool.health pool in
  let ready =
    h.Pool.live_workers > 0
    && h.Pool.queue_len < h.Pool.queue_limit
    && (not h.Pool.stopping)
    && not draining
  in
  Json.Obj
    [
      ("live", Json.Bool true);
      ("ready", Json.Bool ready);
      ("workers_live", Json.Num (float_of_int h.Pool.live_workers));
      ("queue_depth", Json.Num (float_of_int h.Pool.queue_len));
      ("queue_limit", Json.Num (float_of_int h.Pool.queue_limit));
      ("draining", Json.Bool (h.Pool.stopping || draining));
    ]

type client = {
  token : int;
  fd : Unix.file_descr;
  buf : Buffer.t;  (** Partial input line. *)
  out : string Queue.t;  (** Guarded by the server mutex. *)
  mutable gone : bool;
}

type t = {
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutex : Mutex.t;  (** Guards [clients] and every client's [out]. *)
  clients : (int, client) Hashtbl.t;
  mutable next_token : int;
  mutable draining : bool;
  stop : bool Atomic.t;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

(* Runs on worker/supervisor domains: queue the line for the reactor
   to flush.  A token that no longer resolves means the client hung up
   first — count it, the job's result is in the cache regardless. *)
let enqueue_reply t token line =
  let found =
    locked t (fun () ->
        match Hashtbl.find_opt t.clients token with
        | Some c when not c.gone ->
            Queue.push (line ^ "\n") c.out;
            true
        | _ -> false)
  in
  if found then wake t
  else begin
    Telemetry.reply (Pool.telemetry t.pool) ~outcome:"unroutable";
    Log.warn
      (Telemetry.log (Pool.telemetry t.pool))
      "reply_unroutable"
      [ ("token", Json.Num (float_of_int token)) ]
  end

let drop_client t (c : client) =
  locked t (fun () ->
      c.gone <- true;
      Hashtbl.remove t.clients c.token);
  Log.debug
    (Telemetry.log (Pool.telemetry t.pool))
    "client_gone"
    [ ("token", Json.Num (float_of_int c.token)) ];
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* The job's trace id, minted here at the reactor and carried into the
   worker domain: client token + request id names the span family a
   whole request tree shares. *)
let trace_id_of (c : client) id = Printf.sprintf "c%d-r%d" c.token id

let handle_line t (c : client) line =
  let telem = Pool.telemetry t.pool in
  match Proto.request_of_line line with
  | Result.Error (id, msg) ->
      Log.warn (Telemetry.log telem) "bad_request"
        [
          ("token", Json.Num (float_of_int c.token)); ("error", Json.Str msg);
        ];
      enqueue_reply t c.token
        (Proto.reply_to_line (Proto.error_reply ~message:msg ~id Proto.Bad_request))
  | Result.Ok { Proto.id; op } -> (
      let trace = trace_id_of c id in
      let rx name f =
        Telemetry.span telem ~args:[ ("trace", trace); ("op", name) ] "rx" f
      in
      match op with
      | Proto.Ping ->
          rx "ping" (fun () ->
              enqueue_reply t c.token
                (Proto.reply_to_line (Proto.ok_reply ~id (Json.Str "pong"))))
      | Proto.Stats ->
          rx "stats" (fun () ->
              enqueue_reply t c.token
                (Proto.reply_to_line (Proto.ok_reply ~id (stats_json t.pool))))
      | Proto.Metrics ->
          rx "metrics" (fun () ->
              enqueue_reply t c.token
                (Proto.reply_to_line
                   (Proto.ok_reply ~id (Json.Str (metrics_text t.pool)))))
      | Proto.Health ->
          rx "health" (fun () ->
              enqueue_reply t c.token
                (Proto.reply_to_line
                   (Proto.ok_reply ~id
                      (health_json ~draining:t.draining t.pool))))
      | Proto.Shutdown ->
          Log.info (Telemetry.log telem) "shutdown_requested"
            [ ("token", Json.Num (float_of_int c.token)) ];
          enqueue_reply t c.token
            (Proto.reply_to_line (Proto.ok_reply ~id (Json.Str "draining")));
          Atomic.set t.stop true
      | Proto.Job (jop, spec) ->
          if t.draining then
            enqueue_reply t c.token
              (Proto.reply_to_line
                 (Proto.error_reply ~message:"service is draining" ~id
                    Proto.Draining))
          else
            let token = c.token in
            rx (Proto.jobop_name jop) (fun () ->
                Pool.submit t.pool ~trace_id:trace ~id ~op:jop ~spec
                  ~reply:(fun reply ->
                    enqueue_reply t token (Proto.reply_to_line reply))))

let handle_readable t (c : client) =
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_client t c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop_client t c
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
  | n ->
      Buffer.add_subbytes c.buf chunk 0 n;
      let data = Buffer.contents c.buf in
      Buffer.clear c.buf;
      let lines = String.split_on_char '\n' data in
      let rec feed = function
        | [] -> ()
        | [ tail ] -> Buffer.add_string c.buf tail
        | line :: rest ->
            if String.length line > 0 then handle_line t c line;
            feed rest
      in
      feed lines

let handle_writable t (c : client) =
  let next = locked t (fun () -> Queue.peek_opt c.out) in
  match next with
  | None -> ()
  | Some line -> (
      match Unix.write_substring c.fd line 0 (String.length line) with
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          drop_client t c
      | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
      | n ->
          locked t (fun () ->
              ignore (Queue.pop c.out);
              if n < String.length line then
                (* Partial write: requeue the remainder at the front by
                   draining into a fresh queue. *)
                let rest = String.sub line n (String.length line - n) in
                let tmp = Queue.copy c.out in
                Queue.clear c.out;
                Queue.push rest c.out;
                Queue.transfer tmp c.out))

let accept_client t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      let token =
        locked t (fun () ->
            let token = t.next_token in
            t.next_token <- token + 1;
            Hashtbl.replace t.clients token
              {
                token;
                fd;
                buf = Buffer.create 256;
                out = Queue.create ();
                gone = false;
              };
            token)
      in
      Log.info
        (Telemetry.log (Pool.telemetry t.pool))
        "client_accept"
        [ ("token", Json.Num (float_of_int token)) ]

let drain_wake_pipe t =
  let junk = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r junk 0 (Bytes.length junk) with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
  in
  go ()

let select_once t ~timeout =
  let clients = locked t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.clients []) in
  let reads = t.listen_fd :: t.wake_r :: List.map (fun c -> c.fd) clients in
  let writes =
    List.filter_map
      (fun c -> if locked t (fun () -> not (Queue.is_empty c.out)) then Some c.fd else None)
      clients
  in
  match Unix.select reads writes [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, writable, _ ->
      if List.mem t.wake_r readable then drain_wake_pipe t;
      if List.mem t.listen_fd readable then accept_client t;
      List.iter
        (fun c -> if List.mem c.fd readable && not c.gone then handle_readable t c)
        clients;
      List.iter
        (fun c -> if List.mem c.fd writable && not c.gone then handle_writable t c)
        clients

let pending_output t =
  locked t (fun () ->
      Hashtbl.fold (fun _ c acc -> acc || not (Queue.is_empty c.out)) t.clients false)

let run ?config ~pool ~socket () =
  let config = Option.value config ~default:(default_config ~socket_path:socket) in
  let path = config.socket_path in
  if Sys.file_exists path then Unix.unlink path;
  (let dir = Filename.dirname path in
   if not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd config.accept_backlog;
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  let t =
    {
      pool;
      listen_fd;
      wake_r;
      wake_w;
      mutex = Mutex.create ();
      clients = Hashtbl.create 16;
      next_token = 1;
      draining = false;
      stop = Atomic.make false;
    }
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let stop_handler = Sys.Signal_handle (fun _ -> Atomic.set t.stop true; wake t) in
  let prev_term = Sys.signal Sys.sigterm stop_handler in
  let prev_int = Sys.signal Sys.sigint stop_handler in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigpipe prev_pipe;
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ listen_fd; wake_r; wake_w ];
      locked t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [])
      |> List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ());
      if Sys.file_exists path then try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      (* Serve until a stop trigger flips the flag... *)
      while not (Atomic.get t.stop) do
        select_once t ~timeout:0.5
      done;
      (* ...then drain: no new jobs, finish what's in flight (reply
         callbacks run on worker domains, so the reactor need not spin
         while we wait), flush what queued up, and tear down. *)
      t.draining <- true;
      let telem = Pool.telemetry pool in
      Log.info (Telemetry.log telem) "drain_start" [];
      Telemetry.span telem "drain" (fun () ->
          Pool.drain pool;
          let flush_rounds = ref 0 in
          while pending_output t && !flush_rounds < 50 do
            incr flush_rounds;
            select_once t ~timeout:0.1
          done);
      Log.info (Telemetry.log telem) "drain_done" [];
      Pool.shutdown pool)
