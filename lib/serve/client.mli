(** Blocking slpd client — used by [slpd submit]/[slpd campaign], the
    benchmarks, and the tests.

    Replies may arrive out of submission order; {!call} and {!wait}
    match on the request id and park strays in an internal mailbox, so
    interleaved use from one thread stays correct. *)

type t

val connect : socket:string -> t
(** Raises [Unix.Unix_error] when the daemon is not listening. *)

val close : t -> unit

val send : t -> Proto.request -> unit

val wait : t -> id:int -> Proto.reply
(** Block until the reply for [id] arrives.  Raises [End_of_file] when
    the daemon closes the connection first. *)

val call : t -> Proto.request -> Proto.reply
(** [send] then [wait] on the request's id. *)
