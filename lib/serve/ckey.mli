(** Content-addressed cache keys for compile/execute jobs.

    The key hashes every input that determines a job's result — and
    nothing else.  The kernel source is canonicalised first (parse,
    then {!Slp_ir.Program.to_source}), so textual noise (whitespace,
    comments, statement-id numbering) cannot split the cache, while
    any semantic change reaches the hash.  Scheme, machine (name and
    SIMD width), unroll, budgets, cores and data seed are framed
    fields of the digest; the wall-clock [timeout] is deliberately
    excluded — a deadline changes whether a job finishes, never what
    it computes.  Job names are labels, not inputs. *)

type t = int64

val of_program :
  op:Proto.jobop -> spec:Proto.spec -> Slp_ir.Program.t -> t
(** Key for an already-parsed kernel (the canonical source is printed
    from the program, so equal structures key equal). *)

val of_spec : op:Proto.jobop -> Proto.spec -> (t * Slp_ir.Program.t, Slp_util.Slp_error.t) result
(** Parse the spec's kernel and key it; a kernel that does not parse
    has no key (and no cacheable result) — the structured frontend
    error comes back instead. *)

val to_hex : t -> string
