(** Service-layer fault injection.

    The pipeline's {!Slp_faultinject} hooks fire {e inside} compilation
    passes; these points fire in the machinery {e around} them — the
    worker pool, the cache, the reply path — which is where a service
    actually breaks in production.  Each armed point is one-shot (like
    [Trap.with_fault]): it decrements on every opportunity and fires
    exactly once when the counter reaches zero, so a seeded matrix can
    aim a fault at the n-th job deterministically.

    Points:
    - [Kill_worker n]: the n-th job a worker picks up raises
      {!Worker_killed} mid-compile (at the ["prepare"] stage hook),
      simulating the domain dying under the job.
    - [Clock_skip (s, n)]: the service clock jumps forward [s] seconds
      at the n-th stage-boundary read, blowing any armed deadline.
    - [Corrupt_store n]: the n-th cache write flips a byte of the
      stored payload, so the integrity digest no longer matches.
    - [Drop_client n]: the n-th reply delivery raises {!Client_gone}
      before the bytes reach the client (the job itself completed and
      was cached). *)

exception Worker_killed
exception Client_gone

type point =
  | Kill_worker of int
  | Clock_skip of float * int
  | Corrupt_store of int
  | Drop_client of int

val arm : point -> unit
(** Replaces any armed point of the same constructor. *)

val disarm : unit -> unit
(** Clear every armed point and pending skew. *)

val now : unit -> float
(** {!Slp_obs.Clock.now} plus any accumulated injected skew. *)

val stage_hook : string -> unit
(** Installed as the pipeline [on_stage] hook inside workers: applies
    [Kill_worker] and [Clock_skip] at the ["prepare"] boundary. *)

val store_hook : bytes -> unit
(** Called by the cache on the payload bytes about to be written;
    mutates them in place when [Corrupt_store] fires. *)

val reply_hook : unit -> unit
(** Called before a reply is handed back; raises {!Client_gone} when
    [Drop_client] fires. *)
