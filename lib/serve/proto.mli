(** The slpd wire protocol: line-delimited JSON over a Unix socket.

    One request per line, one reply per line; replies carry the
    request's [id] and may arrive out of submission order (jobs finish
    when they finish).  The grammar is documented in DESIGN.md's
    "Compile service" section; encoding and decoding both live here so
    the daemon, the client, and the tests share one definition. *)

type jobop = Compile | Execute

val jobop_name : jobop -> string

type spec = {
  kernel : string;  (** Kernel source text (the frontend language). *)
  name : string;  (** Job label; not part of the cache key. *)
  scheme : Slp_pipeline.Pipeline.scheme;
  machine : Slp_machine.Machine.t;
  unroll : int option;
  max_steps : int option;
  solver_steps : int option;
  timeout : float option;  (** Per-job wall-clock deadline, seconds. *)
  cores : int;
  seed : int;
}

val default_spec : kernel:string -> name:string -> spec
(** Global scheme, Intel machine, no budgets, 1 core, seed 42. *)

type op =
  | Job of jobop * spec
  | Ping
  | Stats
  | Metrics  (** Prometheus text exposition; payload is one string. *)
  | Health  (** Liveness/readiness snapshot. *)
  | Shutdown  (** Drain-then-exit, same as SIGTERM. *)

type request = { id : int; op : op }

type status =
  | Ok  (** Payload is the full result. *)
  | Degraded
      (** The job was quarantined after repeated failures and fell
          back to [compile_resilient] scalar degradation; [errors]
          carries every catalogued failure. *)
  | Overloaded  (** Queue full — the job was shed, not run. *)
  | Draining  (** Submitted during shutdown; not run. *)
  | Bad_request  (** Malformed request line or unknown fields. *)

val status_name : status -> string

type reply = {
  id : int;
  status : status;
  cached : bool;  (** Served from the content-addressed cache. *)
  quarantined : bool;
  attempts : int;  (** Attempts consumed (0 for cache hits and sheds). *)
  errors : Slp_util.Slp_error.t list;
      (** Every structured error seen across attempts, catalogue
          order preserved; non-empty on [Degraded], and may accompany
          [Ok] when earlier attempts failed before a retry
          succeeded. *)
  payload : Slp_obs.Json.t;  (** Op-specific result; [Null] when none. *)
}

val ok_reply : ?cached:bool -> ?attempts:int -> ?errors:Slp_util.Slp_error.t list -> id:int -> Slp_obs.Json.t -> reply
val error_reply : ?errors:Slp_util.Slp_error.t list -> ?message:string -> id:int -> status -> reply

val scheme_of_string : string -> Slp_pipeline.Pipeline.scheme option
val scheme_to_string : Slp_pipeline.Pipeline.scheme -> string
val machine_of_string : string -> Slp_machine.Machine.t option
val machine_to_string : Slp_machine.Machine.t -> string
(** Short wire names ["intel"] and ["amd"]. *)

val request_to_line : request -> string
(** One line, no trailing newline. *)

val request_of_line : string -> (request, int * string) result
(** The error carries the request id when one could be read (so the
    server can address its [Bad_request] reply), else [-1]. *)

val reply_to_line : reply -> string
val reply_of_line : string -> (reply, string) result

val error_to_json : Slp_util.Slp_error.t -> Slp_obs.Json.t
