exception Worker_killed
exception Client_gone

type point =
  | Kill_worker of int
  | Clock_skip of float * int
  | Corrupt_store of int
  | Drop_client of int

(* All state sits behind one mutex: points are armed from the test /
   driver thread and consumed from worker and server domains. *)
let mutex = Mutex.create ()
let kill : int option ref = ref None
let skip : (float * int) option ref = ref None
let corrupt : int option ref = ref None
let drop : int option ref = ref None
let skew = ref 0.0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let arm point =
  locked (fun () ->
      match point with
      | Kill_worker n -> kill := Some n
      | Clock_skip (s, n) -> skip := Some (s, n)
      | Corrupt_store n -> corrupt := Some n
      | Drop_client n -> drop := Some n)

let disarm () =
  locked (fun () ->
      kill := None;
      skip := None;
      corrupt := None;
      drop := None;
      skew := 0.0)

let now () = Slp_obs.Clock.now () +. locked (fun () -> !skew)

(* Decrement a one-shot counter under the lock; true exactly once. *)
let fires cell =
  match !cell with
  | None -> false
  | Some n when n <= 1 ->
      cell := None;
      true
  | Some n ->
      cell := Some (n - 1);
      false

let stage_hook stage =
  if stage = "prepare" then (
    let killed =
      locked (fun () ->
          (match !skip with
          | Some (s, n) when n <= 1 ->
              skip := None;
              skew := !skew +. s
          | Some (s, n) -> skip := Some (s, n - 1)
          | None -> ());
          fires kill)
    in
    if killed then raise Worker_killed)

let store_hook payload =
  if locked (fun () -> fires corrupt) && Bytes.length payload > 0 then
    Bytes.set payload 0 (Char.chr (Char.code (Bytes.get payload 0) lxor 0x55))

let reply_hook () = if locked (fun () -> fires drop) then raise Client_gone
