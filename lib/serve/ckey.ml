module E = Slp_util.Slp_error
module Fnv = Slp_util.Fnv
module M = Slp_machine.Machine

type t = int64

let opt_int = function None -> "-" | Some v -> string_of_int v

let of_program ~op ~(spec : Proto.spec) prog =
  Fnv.hash_fields
    [
      Proto.jobop_name op;
      Slp_ir.Program.to_source prog;
      Proto.scheme_to_string spec.Proto.scheme;
      spec.Proto.machine.M.name;
      string_of_int spec.Proto.machine.M.simd_bits;
      opt_int spec.Proto.unroll;
      opt_int spec.Proto.max_steps;
      opt_int spec.Proto.solver_steps;
      string_of_int spec.Proto.cores;
      string_of_int spec.Proto.seed;
    ]

let of_spec ~op (spec : Proto.spec) =
  match
    Slp_frontend.Parser.parse_all ~max_errors:1 ~name:spec.Proto.name
      spec.Proto.kernel
  with
  | Result.Ok prog -> Result.Ok (of_program ~op ~spec prog, prog)
  | Result.Error [] ->
      Result.Error (E.make ~pass:E.Frontend E.Parse_error "empty kernel source")
  | Result.Error (d :: _) ->
      Result.Error
        (E.make
           ~span:{ E.line = d.Slp_frontend.Parser.line; col = d.Slp_frontend.Parser.col }
           ~pass:E.Frontend E.Parse_error d.Slp_frontend.Parser.message)
  | exception exn -> Result.Error (Slp_pipeline.Pipeline.error_of_exn exn)

let to_hex = Fnv.to_hex
