module Fnv = Slp_util.Fnv

type stats = {
  hits : int;
  misses : int;
  stores : int;
  corrupt_evictions : int;
}

type t = {
  cache_dir : string;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt_evictions : int;
}

let rec mkdir_p path =
  if not (Sys.file_exists path) then (
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let create ~dir =
  mkdir_p dir;
  {
    cache_dir = dir;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    corrupt_evictions = 0;
  }

let dir t = t.cache_dir

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let path t key = Filename.concat t.cache_dir (Fnv.to_hex key ^ ".entry")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t key =
  locked t (fun () ->
      let file = path t key in
      if not (Sys.file_exists file) then (
        t.misses <- t.misses + 1;
        None)
      else
        let verified =
          match read_file file with
          | exception Sys_error _ -> None
          | line -> (
              match String.index_opt line ' ' with
              | None -> None
              | Some cut -> (
                  let payload =
                    String.sub line (cut + 1) (String.length line - cut - 1)
                  in
                  let payload =
                    if String.length payload > 0
                       && payload.[String.length payload - 1] = '\n'
                    then String.sub payload 0 (String.length payload - 1)
                    else payload
                  in
                  match Fnv.of_hex (String.sub line 0 cut) with
                  | Some digest when digest = Fnv.hash64 payload -> Some payload
                  | _ -> None))
        in
        match verified with
        | Some payload ->
            t.hits <- t.hits + 1;
            Some payload
        | None ->
            (* Integrity breach: evict so the next compile heals it. *)
            (try Sys.remove file with Sys_error _ -> ());
            t.corrupt_evictions <- t.corrupt_evictions + 1;
            t.misses <- t.misses + 1;
            None)

let store t key payload =
  locked t (fun () ->
      let bytes = Bytes.of_string payload in
      Fault.store_hook bytes;
      let line = Fnv.to_hex (Fnv.hash64 payload) ^ " " ^ Bytes.to_string bytes ^ "\n" in
      let file = path t key in
      let tmp = file ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc line);
      Sys.rename tmp file;
      t.stores <- t.stores + 1)

let clear t =
  locked t (fun () ->
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".entry" then
            try Sys.remove (Filename.concat t.cache_dir name) with Sys_error _ -> ())
        (try Sys.readdir t.cache_dir with Sys_error _ -> [||]))

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        corrupt_evictions = t.corrupt_evictions;
      })
