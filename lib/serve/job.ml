module E = Slp_util.Slp_error
module Fnv = Slp_util.Fnv
module P = Slp_pipeline.Pipeline
module Json = Slp_obs.Json
module Env = Slp_ir.Env
module Memory = Slp_vm.Memory
module Scalar_exec = Slp_vm.Scalar_exec
module Vector_exec = Slp_vm.Vector_exec

(* Fold the final memory image into one digest.  Values go in as the
   raw bit patterns of sorted arrays then sorted scalars, so two runs
   agree iff their memories are bit-identical — the same criterion
   [Memory.same_contents] applies, compressed to 64 bits for the wire. *)
let memory_digest mem ~(env : Env.t) =
  let buf = Buffer.create 1024 in
  let add_value v =
    Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float v))
  in
  let names_of l = List.sort String.compare (List.map fst l) in
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf ':';
      Float.Array.iter add_value (Memory.array_values mem name))
    (names_of (Env.arrays env));
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      add_value (Memory.scalar mem name))
    (names_of (Env.scalars env));
  Fnv.to_hex (Fnv.hash64 (Buffer.contents buf))

let vector_digest = function
  | None -> "scalar"
  | Some v -> Fnv.to_hex (Fnv.hash64 (Format.asprintf "%a" Slp_vm.Visa.pp_program v))

let compile_payload ~(spec : Proto.spec) (c : P.compiled) =
  Json.Obj
    [
      ("op", Json.Str "compile");
      ("name", Json.Str spec.Proto.name);
      ("scheme", Json.Str (Proto.scheme_to_string c.P.scheme));
      ("machine", Json.Str (Proto.machine_to_string c.P.machine));
      ("unroll", Json.Num (float_of_int c.P.unroll_factor));
      ("vector", Json.Str (vector_digest c.P.vector));
      ("spills", Json.Num (float_of_int c.P.spill_stats.Slp_codegen.Regalloc.spills));
      ("solver_bails", Json.Num (float_of_int (List.length c.P.solver_bails)));
    ]

(* Execute by hand rather than through [Pipeline.execute] so the final
   memory image is available for the digest; the correctness check is
   the same [Memory.same_contents] comparison [execute ~check] runs. *)
let execute_payload ~(spec : Proto.spec) (c : P.compiled) =
  let seed = spec.Proto.seed and cores = spec.Proto.cores in
  let machine = c.P.machine in
  let scalar = Scalar_exec.run ~cores ~seed ~machine c.P.reference in
  let counters, final_memory, correct, env =
    match c.P.vector with
    | None ->
        ( scalar.Scalar_exec.counters,
          scalar.Scalar_exec.memory,
          true,
          c.P.reference.Slp_ir.Program.env )
    | Some v ->
        let memory =
          Memory.create ~scalar_layout:c.P.scalar_offsets ~env:v.Slp_vm.Visa.env ()
        in
        Memory.init_arrays memory ~seed;
        let r = Vector_exec.run ~cores ~seed ~memory ~machine v in
        ( r.Vector_exec.counters,
          r.Vector_exec.memory,
          Memory.same_contents r.Vector_exec.memory scalar.Scalar_exec.memory,
          v.Slp_vm.Visa.env )
  in
  Json.Obj
    [
      ("op", Json.Str "execute");
      ("name", Json.Str spec.Proto.name);
      ("scheme", Json.Str (Proto.scheme_to_string c.P.scheme));
      ("machine", Json.Str (Proto.machine_to_string c.P.machine));
      ("unroll", Json.Num (float_of_int c.P.unroll_factor));
      ("memory", Json.Str (memory_digest final_memory ~env));
      ( "cycles",
        Json.Str
          (Printf.sprintf "%Lx"
             (Int64.bits_of_float (Slp_vm.Counters.total_cycles counters))) );
      ( "instructions",
        Json.Num (float_of_int (Slp_vm.Counters.total_instructions counters)) );
      ("correct", Json.Bool correct);
    ]

let payload ~op ~spec c =
  match (op : Proto.jobop) with
  | Proto.Compile -> compile_payload ~spec c
  | Proto.Execute -> execute_payload ~spec c

let deadline_of ?(clock = Fault.now) (spec : Proto.spec) =
  Option.map (fun seconds -> E.Deadline.create ~clock ~seconds) spec.Proto.timeout

let run ?clock ?obs ~op ~(spec : Proto.spec) prog =
  let deadline = deadline_of ?clock spec in
  match
    P.compile ?unroll:spec.Proto.unroll ?max_steps:spec.Proto.max_steps
      ?solver_steps:spec.Proto.solver_steps ?deadline ?obs
      ~on_stage:Fault.stage_hook ~scheme:spec.Proto.scheme
      ~machine:spec.Proto.machine prog
  with
  | c -> ( try Result.Ok (payload ~op ~spec c) with
      | Fault.Worker_killed -> raise Fault.Worker_killed
      | exn -> Result.Error (P.error_of_exn exn))
  | exception Fault.Worker_killed -> raise Fault.Worker_killed
  | exception exn -> Result.Error (P.error_of_exn exn)

let run_degraded ~op ~(spec : Proto.spec) prog =
  let r =
    P.compile_resilient ?unroll:spec.Proto.unroll ?max_steps:spec.Proto.max_steps
      ?solver_steps:spec.Proto.solver_steps ~scheme:spec.Proto.scheme
      ~machine:spec.Proto.machine prog
  in
  let errors = List.map (fun b -> b.P.error) r.P.bailouts in
  match payload ~op ~spec r.P.result with
  | p -> (p, errors)
  | exception exn ->
      (* Even the scalar fallback failed to run; ship the errors alone. *)
      (Json.Null, errors @ [ P.error_of_exn exn ])
