module Pipeline = Slp_pipeline.Pipeline
module M = Slp_machine.Machine
module E = Slp_util.Slp_error
module Json = Slp_obs.Json

type jobop = Compile | Execute

let jobop_name = function Compile -> "compile" | Execute -> "execute"

type spec = {
  kernel : string;
  name : string;
  scheme : Pipeline.scheme;
  machine : M.t;
  unroll : int option;
  max_steps : int option;
  solver_steps : int option;
  timeout : float option;
  cores : int;
  seed : int;
}

let default_spec ~kernel ~name =
  {
    kernel;
    name;
    scheme = Pipeline.Global;
    machine = M.intel_dunnington;
    unroll = None;
    max_steps = None;
    solver_steps = None;
    timeout = None;
    cores = 1;
    seed = 42;
  }

type op = Job of jobop * spec | Ping | Stats | Metrics | Health | Shutdown

type request = { id : int; op : op }

type status = Ok | Degraded | Overloaded | Draining | Bad_request

let status_name = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Bad_request -> "bad-request"

let status_of_name = function
  | "ok" -> Some Ok
  | "degraded" -> Some Degraded
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | "bad-request" -> Some Bad_request
  | _ -> None

type reply = {
  id : int;
  status : status;
  cached : bool;
  quarantined : bool;
  attempts : int;
  errors : E.t list;
  payload : Json.t;
}

let ok_reply ?(cached = false) ?(attempts = 1) ?(errors = []) ~id payload =
  { id; status = Ok; cached; quarantined = false; attempts; errors; payload }

let error_reply ?(errors = []) ?message ~id status =
  let payload =
    match message with
    | Some m -> Json.Obj [ ("message", Json.Str m) ]
    | None -> Json.Null
  in
  { id; status; cached = false; quarantined = false; attempts = 0; errors; payload }

(* -- scheme / machine wire names ------------------------------------ *)

let scheme_of_string = function
  | "scalar" -> Some Pipeline.Scalar
  | "native" -> Some Pipeline.Native
  | "slp" -> Some Pipeline.Slp
  | "global" -> Some Pipeline.Global
  | "global-layout" | "layout" -> Some Pipeline.Global_layout
  | "optimal" -> Some Pipeline.Optimal
  | _ -> None

let scheme_to_string = function
  | Pipeline.Scalar -> "scalar"
  | Pipeline.Native -> "native"
  | Pipeline.Slp -> "slp"
  | Pipeline.Global -> "global"
  | Pipeline.Global_layout -> "global-layout"
  | Pipeline.Optimal -> "optimal"

let machine_of_string = function
  | "intel" | "dunnington" -> Some M.intel_dunnington
  | "amd" | "phenom" -> Some M.amd_phenom_ii
  | _ -> None

let machine_to_string (m : M.t) =
  if m.M.name = M.amd_phenom_ii.M.name then "amd" else "intel"

(* -- encoding -------------------------------------------------------- *)

let opt_int f = function None -> [] | Some v -> [ (f, Json.Num (float_of_int v)) ]
let opt_float f = function None -> [] | Some v -> [ (f, Json.Num v) ]

let spec_fields (s : spec) =
  [
    ("kernel", Json.Str s.kernel);
    ("name", Json.Str s.name);
    ("scheme", Json.Str (scheme_to_string s.scheme));
    ("machine", Json.Str (machine_to_string s.machine));
  ]
  @ opt_int "unroll" s.unroll
  @ opt_int "max_steps" s.max_steps
  @ opt_int "solver_steps" s.solver_steps
  @ opt_float "timeout" s.timeout
  @ [
      ("cores", Json.Num (float_of_int s.cores));
      ("seed", Json.Num (float_of_int s.seed));
    ]

let request_to_line (r : request) =
  let fields =
    match r.op with
    | Ping -> [ ("op", Json.Str "ping") ]
    | Stats -> [ ("op", Json.Str "stats") ]
    | Metrics -> [ ("op", Json.Str "metrics") ]
    | Health -> [ ("op", Json.Str "health") ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
    | Job (jop, spec) -> (("op", Json.Str (jobop_name jop)) :: spec_fields spec)
  in
  Json.to_string (Json.Obj (("id", Json.Num (float_of_int r.id)) :: fields))

let error_to_json (e : E.t) =
  Json.Obj
    ([
       ("code", Json.Str (E.code_name e.E.code));
       ("pass", Json.Str (E.pass_name e.E.pass));
       ("recoverable", Json.Bool e.E.recoverable);
       ("message", Json.Str e.E.message);
     ]
    @
    match e.E.span with
    | Some { E.line; col } ->
        [ ("line", Json.Num (float_of_int line)); ("col", Json.Num (float_of_int col)) ]
    | None -> [])

let reply_to_line (r : reply) =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Num (float_of_int r.id));
         ("status", Json.Str (status_name r.status));
         ("cached", Json.Bool r.cached);
         ("quarantined", Json.Bool r.quarantined);
         ("attempts", Json.Num (float_of_int r.attempts));
         ("errors", Json.Arr (List.map error_to_json r.errors));
         ("payload", r.payload);
       ])

(* -- decoding -------------------------------------------------------- *)

let str_field name obj =
  match Json.member name obj with Some (Json.Str s) -> Some s | _ -> None

let num_field name obj =
  match Json.member name obj with Some (Json.Num n) -> Some n | _ -> None

let int_field name obj = Option.map int_of_float (num_field name obj)

let bool_field name obj =
  match Json.member name obj with Some (Json.Bool b) -> Some b | _ -> None

let spec_of_json obj =
  let ( let* ) r f = Result.bind r f in
  let require what = function
    | Some v -> Result.Ok v
    | None -> Result.Error (Printf.sprintf "missing or malformed field %S" what)
  in
  let* kernel = require "kernel" (str_field "kernel" obj) in
  let name = Option.value ~default:"job" (str_field "name" obj) in
  let* scheme =
    let s = Option.value ~default:"global" (str_field "scheme" obj) in
    require ("scheme " ^ s) (scheme_of_string s)
  in
  let* machine =
    let s = Option.value ~default:"intel" (str_field "machine" obj) in
    require ("machine " ^ s) (machine_of_string s)
  in
  Result.Ok
    {
      kernel;
      name;
      scheme;
      machine;
      unroll = int_field "unroll" obj;
      max_steps = int_field "max_steps" obj;
      solver_steps = int_field "solver_steps" obj;
      timeout = num_field "timeout" obj;
      cores = Option.value ~default:1 (int_field "cores" obj);
      seed = Option.value ~default:42 (int_field "seed" obj);
    }

let request_of_line line =
  match Json.parse line with
  | Result.Error msg -> Result.Error (-1, "unparsable request: " ^ msg)
  | Result.Ok obj -> (
      let id = Option.value ~default:(-1) (int_field "id" obj) in
      let fail msg = Result.Error (id, msg) in
      match str_field "op" obj with
      | None -> fail "missing field \"op\""
      | Some "ping" -> Result.Ok { id; op = Ping }
      | Some "stats" -> Result.Ok { id; op = Stats }
      | Some "metrics" -> Result.Ok { id; op = Metrics }
      | Some "health" -> Result.Ok { id; op = Health }
      | Some "shutdown" -> Result.Ok { id; op = Shutdown }
      | Some (("compile" | "execute") as opname) -> (
          match spec_of_json obj with
          | Result.Ok spec ->
              let jop = if opname = "compile" then Compile else Execute in
              Result.Ok { id; op = Job (jop, spec) }
          | Result.Error msg -> fail msg)
      | Some op -> fail (Printf.sprintf "unknown op %S" op))

let error_of_json obj =
  let code_of_wire name =
    List.find_map
      (fun (c, _) -> if E.code_name c = name then Some c else None)
      E.catalogue
  in
  let pass_of_wire name =
    List.find_opt
      (fun p -> E.pass_name p = name)
      [
        E.Frontend; E.Analysis; E.Transform; E.Grouping; E.Scheduling; E.Layout;
        E.Lowering; E.Regalloc; E.Verification; E.Vm; E.Pipeline;
      ]
  in
  let code =
    Option.value ~default:E.Internal
      (Option.bind (str_field "code" obj) code_of_wire)
  in
  let pass =
    Option.value ~default:E.Pipeline
      (Option.bind (str_field "pass" obj) pass_of_wire)
  in
  let span =
    match (int_field "line" obj, int_field "col" obj) with
    | Some line, Some col -> Some { E.line; col }
    | _ -> None
  in
  E.make ?span
    ~recoverable:(Option.value ~default:true (bool_field "recoverable" obj))
    ~pass code
    (Option.value ~default:"" (str_field "message" obj))

let reply_of_line line =
  match Json.parse line with
  | Result.Error msg -> Result.Error ("unparsable reply: " ^ msg)
  | Result.Ok obj -> (
      match (int_field "id" obj, Option.bind (str_field "status" obj) status_of_name) with
      | Some id, Some status ->
          let errors =
            match Json.member "errors" obj with
            | Some (Json.Arr es) -> List.map error_of_json es
            | _ -> []
          in
          Result.Ok
            {
              id;
              status;
              cached = Option.value ~default:false (bool_field "cached" obj);
              quarantined =
                Option.value ~default:false (bool_field "quarantined" obj);
              attempts = Option.value ~default:0 (int_field "attempts" obj);
              errors;
              payload =
                Option.value ~default:Json.Null (Json.member "payload" obj);
            }
      | _ -> Result.Error "reply missing id or status")
