module E = Slp_util.Slp_error

type kind =
  | Out_of_bounds of { index : int; bound : int }
  | Rank_mismatch
  | Unknown_array
  | Unset_spill of { slot : int }
  | Injected_fault

type info = { kind : kind; array : string; stmt : int option }

exception Trap of info

let to_string i =
  let at =
    match i.stmt with Some s -> Printf.sprintf " at statement S%d" s | None -> ""
  in
  match i.kind with
  | Out_of_bounds { index; bound } ->
      Printf.sprintf "out-of-bounds: %s index %d out of [0,%d)%s" i.array index
        bound at
  | Rank_mismatch -> Printf.sprintf "rank mismatch on %s%s" i.array at
  | Unknown_array -> Printf.sprintf "unknown array %s%s" i.array at
  | Unset_spill { slot } ->
      Printf.sprintf "spill slot %d reloaded before any store%s" slot at
  | Injected_fault -> Printf.sprintf "injected memory fault on %s%s" i.array at

let pp ppf i = Format.pp_print_string ppf (to_string i)

let oob ?stmt ~array ~index ~bound () =
  raise (Trap { kind = Out_of_bounds { index; bound }; array; stmt })

let rank_mismatch ?stmt ~array () = raise (Trap { kind = Rank_mismatch; array; stmt })
let unknown_array ?stmt ~array () = raise (Trap { kind = Unknown_array; array; stmt })

let unset_spill ?stmt ~slot () =
  raise (Trap { kind = Unset_spill { slot }; array = "<spill>"; stmt })

let () =
  Printexc.register_printer (function
    | Trap i -> Some ("Trap: " ^ to_string i)
    | _ -> None)

(* -- deterministic fault injection --------------------------------- *)

type fault = Memory_fault | Cache_fault

let fault_enabled = ref false
let pending : (fault * int) option ref = ref None

let arm_fault ~fault ~after =
  pending := Some (fault, max 0 after);
  fault_enabled := true

let disarm_fault () =
  pending := None;
  fault_enabled := false

(* Called from [Cache.access] (the single chokepoint every memory
   access of both the interpreters and the compiled engine goes
   through) when [fault_enabled].  Counts down [after] accesses, then
   fires exactly once and disarms itself, so the scalar fallback that
   follows a fault runs clean. *)
let fault_tick () =
  match !pending with
  | None -> ()
  | Some (fault, n) ->
      if n > 0 then pending := Some (fault, n - 1)
      else begin
        disarm_fault ();
        match fault with
        | Memory_fault ->
            raise (Trap { kind = Injected_fault; array = "<injected>"; stmt = None })
        | Cache_fault ->
            raise
              (E.Error
                 (E.make ~pass:E.Vm E.Injected
                    "injected cache fault (seeded fault-injection harness)"))
      end

let with_fault ~fault ~after f =
  arm_fault ~fault ~after;
  Fun.protect ~finally:disarm_fault f
