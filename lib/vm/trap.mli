(** Structured VM traps.

    Out-of-bounds accesses, rank mismatches, unknown arrays and
    never-stored spill slots used to surface as bare
    [Invalid_argument] strings; a {!Trap} carries the array name, the
    offending index and bound, and — when the executing site knows it —
    the originating statement id, so the resilient pipeline can emit a
    precise bailout record instead of a raw [Failure] string. *)

type kind =
  | Out_of_bounds of { index : int; bound : int }
  | Rank_mismatch
  | Unknown_array
  | Unset_spill of { slot : int }
  | Injected_fault  (** Raised only by the fault-injection harness. *)

type info = { kind : kind; array : string; stmt : int option }

exception Trap of info

val to_string : info -> string
val pp : Format.formatter -> info -> unit

val oob : ?stmt:int -> array:string -> index:int -> bound:int -> unit -> 'a
val rank_mismatch : ?stmt:int -> array:string -> unit -> 'a
val unknown_array : ?stmt:int -> array:string -> unit -> 'a
val unset_spill : ?stmt:int -> slot:int -> unit -> 'a

(** {2 Seeded fault injection}

    The harness arms a one-shot fault; the [after]-th subsequent cache
    access (every memory access of every execution mode passes through
    {!Cache.access}) raises and the fault disarms itself, so the
    scalar fallback re-execution runs clean.  [Memory_fault] raises
    {!Trap} with [Injected_fault]; [Cache_fault] raises
    {!Slp_util.Slp_error.Error} with code [Injected]. *)

type fault = Memory_fault | Cache_fault

val fault_enabled : bool ref
(** Cheap guard read on the cache hot path; treat as read-only and use
    {!arm_fault}/{!disarm_fault}. *)

val arm_fault : fault:fault -> after:int -> unit
val disarm_fault : unit -> unit
val fault_tick : unit -> unit
val with_fault : fault:fault -> after:int -> (unit -> 'a) -> 'a
(** Arm, run, always disarm (even on exception). *)
