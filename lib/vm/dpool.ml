(* A persistent pool of OCaml 5 domains for running the per-core legs
   of a multicore simulation concurrently.

   Domains are expensive to spawn (fresh minor heaps, GC
   registration), so the pool spawns its workers once and parcels out
   many [run] calls to them.  Work distribution is an atomic
   next-index counter over [0, n): cores whose chunks finish early
   steal nothing (each index is one simulated core), but the counter
   keeps the dispatch wait-free.  The caller participates as a worker,
   so a pool with zero spawned workers degrades to plain sequential
   execution — which is also the fallback on single-processor hosts,
   where [Domain.recommended_domain_count] is 1 and spawning would
   only add scheduling overhead.

   Each [run] allocates a fresh job record carrying its own atomic
   cursor and completion count, so a worker that wakes late and drains
   an already-exhausted job cannot touch the indices of a subsequent
   one.  The first exception a task raises is captured and re-raised
   from [run] after every task has finished; later exceptions in the
   same job are dropped (deterministic runs re-raise the same one). *)

type job = {
  f : int -> unit;
  n : int;
  next : int Atomic.t;
  mutable pending : int;  (* tasks not yet finished; guarded by the pool lock *)
  mutable failure : exn option;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* a new job generation was posted *)
  idle : Condition.t;  (* a task finished (pending may have hit 0) *)
  mutable generation : int;
  mutable job : job option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  nworkers : int;
}

let drain t (j : job) =
  let rec go () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.n then begin
      (try j.f i
       with e ->
         Mutex.lock t.lock;
         if j.failure = None then j.failure <- Some e;
         Mutex.unlock t.lock);
      Mutex.lock t.lock;
      j.pending <- j.pending - 1;
      if j.pending = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.lock;
      go ()
    end
  in
  go ()

let worker t =
  let rec loop gen =
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = gen do
      Condition.wait t.work t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      let gen' = t.generation in
      let j = t.job in
      Mutex.unlock t.lock;
      (match j with Some j -> drain t j | None -> ());
      loop gen'
    end
  in
  loop 0

let create ?workers () =
  let nworkers =
    match workers with
    | Some w -> max 0 w
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      generation = 0;
      job = None;
      stop = false;
      domains = [];
      nworkers;
    }
  in
  t.domains <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let workers t = t.nworkers

let run t n f =
  if n > 0 then
    if t.nworkers = 0 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let j = { f; n; next = Atomic.make 0; pending = n; failure = None } in
      Mutex.lock t.lock;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      drain t j;
      Mutex.lock t.lock;
      while j.pending > 0 do
        Condition.wait t.idle t.lock
      done;
      (match t.job with Some j' when j' == j -> t.job <- None | _ -> ());
      Mutex.unlock t.lock;
      match j.failure with Some e -> raise e | None -> ()
    end

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []
