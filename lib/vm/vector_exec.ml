open Slp_ir
module M = Slp_machine.Machine

type result = { counters : Counters.t; memory : Memory.t }

type state = {
  memory : Memory.t;
  cache : Cache.t;
  counters : Counters.t;
  machine : M.t;
  vregs : float array array;  (* dense register file; [unwritten] marks unset *)
}

(* Physically unique sentinel for registers never written; a real
   register value always has at least one lane. *)
let unwritten : float array = [||]

let charge st c = st.counters.Counters.cycles <- st.counters.Counters.cycles +. c

let elem_location st ~index_env op =
  match op with
  | Operand.Elem (b, idxs) ->
      let concrete = List.map (fun ix -> Affine.eval ix index_env) idxs in
      let flat = Memory.flat_index st.memory b concrete in
      let bytes = Memory.elem_bytes st.memory b in
      (b, flat, Memory.array_base st.memory b + (flat * bytes), bytes)
  | Operand.Const _ | Operand.Scalar _ ->
      invalid_arg "Vector_exec: expected an array element operand"

let read_scalar st ~index_env v =
  match index_env v with
  | i -> float_of_int i
  | exception Not_found -> Memory.scalar st.memory v

let vreg st r =
  let lanes = if r < Array.length st.vregs then st.vregs.(r) else unwritten in
  if lanes == unwritten then
    invalid_arg (Printf.sprintf "Vector_exec: v%d read before write" r)
  else lanes

let exec_instr st ~index_env instr =
  let costs = st.machine.M.costs in
  match instr with
  | Visa.Vload { dst; elems } ->
      let locs = List.map (elem_location st ~index_env) elems in
      let values =
        Array.of_list (List.map (fun (b, flat, _, _) -> Memory.load st.memory b flat) locs)
      in
      let _, _, addr0, bytes = List.hd locs in
      st.counters.Counters.vector_loads <- st.counters.Counters.vector_loads + 1;
      charge st
        (float_of_int costs.M.load_issue
        +. Cache.access st.cache ~addr:addr0 ~bytes:(bytes * List.length elems)
             ~write:false);
      st.vregs.(dst) <- values
  | Visa.Vstore { src; elems } ->
      let lanes = vreg st src in
      let locs = List.map (elem_location st ~index_env) elems in
      List.iteri
        (fun i (b, flat, _, _) -> Memory.store st.memory b flat lanes.(i))
        locs;
      let _, _, addr0, bytes = List.hd locs in
      st.counters.Counters.vector_stores <- st.counters.Counters.vector_stores + 1;
      charge st
        (float_of_int costs.M.store_issue
        +. Cache.access st.cache ~addr:addr0 ~bytes:(bytes * List.length elems)
             ~write:true)
  | Visa.Vgather { dst; srcs } ->
      let values =
        Array.of_list
          (List.map
             (fun src ->
               match src with
               | Visa.Imm f -> f
               | Visa.Reg v -> read_scalar st ~index_env v
               | Visa.Mem op ->
                   let b, flat, addr, bytes = elem_location st ~index_env op in
                   st.counters.Counters.pack_loads <-
                     st.counters.Counters.pack_loads + 1;
                   charge st
                     (float_of_int costs.M.load_issue
                     +. Cache.access st.cache ~addr ~bytes ~write:false);
                   Memory.load st.memory b flat)
             srcs)
      in
      st.counters.Counters.inserts <- st.counters.Counters.inserts + List.length srcs;
      charge st (float_of_int (List.length srcs * costs.M.insert));
      st.vregs.(dst) <- values
  | Visa.Vunpack { src; dsts } ->
      let lanes = vreg st src in
      List.iteri
        (fun i dst ->
          match dst with
          | None -> ()
          | Some d -> begin
              st.counters.Counters.extracts <- st.counters.Counters.extracts + 1;
              charge st (float_of_int costs.M.extract);
              match d with
              | Visa.To_reg v -> Memory.set_scalar st.memory v lanes.(i)
              | Visa.To_mem op ->
                  let b, flat, addr, bytes = elem_location st ~index_env op in
                  st.counters.Counters.pack_stores <-
                    st.counters.Counters.pack_stores + 1;
                  charge st
                    (float_of_int costs.M.store_issue
                    +. Cache.access st.cache ~addr ~bytes ~write:true);
                  Memory.store st.memory b flat lanes.(i)
            end)
        dsts
  | Visa.Vbroadcast { dst; src; lanes } ->
      let value =
        match src with
        | Visa.Imm f -> f
        | Visa.Reg v -> read_scalar st ~index_env v
        | Visa.Mem op ->
            let b, flat, addr, bytes = elem_location st ~index_env op in
            st.counters.Counters.pack_loads <- st.counters.Counters.pack_loads + 1;
            charge st
              (float_of_int costs.M.load_issue
              +. Cache.access st.cache ~addr ~bytes ~write:false);
            Memory.load st.memory b flat
      in
      st.counters.Counters.broadcasts <- st.counters.Counters.broadcasts + 1;
      charge st (float_of_int costs.M.broadcast);
      st.vregs.(dst) <- (Array.make lanes value)
  | Visa.Vpermute { dst; src; sel } ->
      let lanes = vreg st src in
      st.counters.Counters.permutes <- st.counters.Counters.permutes + 1;
      charge st (float_of_int costs.M.permute);
      st.vregs.(dst) <- (Array.map (fun i -> lanes.(i)) sel)
  | Visa.Vshuffle2 { dst; a; b; sel } ->
      let la = vreg st a and lb = vreg st b in
      st.counters.Counters.permutes <- st.counters.Counters.permutes + 1;
      charge st (float_of_int costs.M.permute);
      st.vregs.(dst) <-
        (Array.map (fun (src, lane) -> if src = 0 then la.(lane) else lb.(lane)) sel)
  | Visa.Vbin { dst; op; a; b } ->
      let la = vreg st a and lb = vreg st b in
      st.counters.Counters.vector_ops <- st.counters.Counters.vector_ops + 1;
      charge st
        (float_of_int
           (match op with Types.Div -> costs.M.divide | _ -> costs.M.vector_op));
      st.vregs.(dst) <-
        (Array.init (Array.length la) (fun i -> Types.eval_binop op la.(i) lb.(i)))
  | Visa.Vun { dst; op; a } ->
      let la = vreg st a in
      st.counters.Counters.vector_ops <- st.counters.Counters.vector_ops + 1;
      charge st
        (float_of_int
           (match op with
           | Types.Sqrt -> costs.M.square_root
           | Types.Neg | Types.Abs -> costs.M.vector_op));
      st.vregs.(dst) <- (Array.map (Types.eval_unop op) la)
  | Visa.Vspill { src; slot } ->
      let lanes = vreg st src in
      Memory.spill_store st.memory ~slot lanes;
      st.counters.Counters.vector_stores <- st.counters.Counters.vector_stores + 1;
      charge st
        (float_of_int costs.M.store_issue
        +. Cache.access st.cache
             ~addr:(Memory.spill_addr st.memory ~slot)
             ~bytes:(8 * Array.length lanes) ~write:true)
  | Visa.Vreload { dst; slot } ->
      let lanes = Memory.spill_load st.memory ~slot in
      st.counters.Counters.vector_loads <- st.counters.Counters.vector_loads + 1;
      charge st
        (float_of_int costs.M.load_issue
        +. Cache.access st.cache
             ~addr:(Memory.spill_addr st.memory ~slot)
             ~bytes:(8 * Array.length lanes) ~write:false);
      st.vregs.(dst) <- lanes
  | Visa.Vload_scalars { dst; sources } ->
      let values =
        Array.of_list (List.map (fun v -> Memory.scalar st.memory v) sources)
      in
      st.counters.Counters.vector_loads <- st.counters.Counters.vector_loads + 1;
      charge st
        (float_of_int costs.M.load_issue
        +. Cache.access st.cache
             ~addr:(Memory.scalar_addr st.memory (List.hd sources))
             ~bytes:(8 * List.length sources) ~write:false);
      st.vregs.(dst) <- values
  | Visa.Vstore_scalars { src; targets } ->
      let lanes = vreg st src in
      List.iteri (fun i v -> Memory.set_scalar st.memory v lanes.(i)) targets;
      st.counters.Counters.vector_stores <- st.counters.Counters.vector_stores + 1;
      charge st
        (float_of_int costs.M.store_issue
        +. Cache.access st.cache
             ~addr:(Memory.scalar_addr st.memory (List.hd targets))
             ~bytes:(8 * List.length targets) ~write:true)
  | Visa.Sstmt s ->
      Scalar_exec.exec_stmt ~memory:st.memory ~cache:st.cache ~counters:st.counters
        ~machine:st.machine ~index_env s

let rec exec_items st ~bindings ~override items =
  let index_env v =
    match List.assoc_opt v bindings with Some i -> i | None -> raise Not_found
  in
  List.iter
    (fun item ->
      match item with
      | Visa.Block instrs -> List.iter (exec_instr st ~index_env) instrs
      | Visa.Loop l ->
          let lo, hi =
            match override with
            | Some (lo, hi) -> (lo, hi)
            | None -> (Affine.eval l.Visa.lo index_env, Affine.eval l.Visa.hi index_env)
          in
          let i = ref lo in
          while !i < hi do
            exec_items st
              ~bindings:((l.Visa.index, !i) :: bindings)
              ~override:None l.Visa.body;
            i := !i + l.Visa.step
          done)
    items

let rec run_interpreter ?(cores = 1) ?(seed = 42) ?memory ~machine (prog : Visa.program) =
  let memory =
    match memory with
    | Some m -> m
    | None ->
        let m = Memory.create ~env:prog.Visa.env () in
        Memory.init_arrays m ~seed;
        m
  in
  let nvregs = max 1 (Engine.program_vregs prog) in
  Memory.reserve_spills memory ~slots:(Engine.program_spill_slots prog)
    ~max_lanes:(Engine.program_lane_stride prog);
  let setup_state =
    {
      memory;
      cache = Cache.create machine;
      counters = Counters.create ();
      machine;
      vregs = Array.make nvregs unwritten;
    }
  in
  (* Setup (layout replication) runs once.  Replication loops are data
     parallel, so under multicore execution each one is partitioned
     like the main loop and its time is the slowest core's share. *)
  let setup_cycles =
    if cores <= 1 then begin
      exec_items setup_state ~bindings:[] ~override:None prog.Visa.setup;
      let c = setup_state.counters.Counters.cycles in
      setup_state.counters.Counters.cycles <- 0.0;
      c
    end
    else begin
      let total = ref 0.0 in
      List.iter
        (fun item ->
          match item with
          | Visa.Loop l -> begin
              match
                ( Affine.eval l.Visa.lo (fun _ -> raise Not_found),
                  Affine.eval l.Visa.hi (fun _ -> raise Not_found) )
              with
              | lo, hi ->
                  let ranges =
                    Scalar_exec.chunk_ranges ~lo ~hi ~step:l.Visa.step ~cores
                  in
                  let slowest = ref 0.0 in
                  List.iter
                    (fun (clo, chi) ->
                      let before = setup_state.counters.Counters.cycles in
                      exec_items setup_state ~bindings:[]
                        ~override:(Some (clo, chi))
                        [ Visa.Loop l ];
                      let spent = setup_state.counters.Counters.cycles -. before in
                      slowest := Float.max !slowest spent)
                    ranges;
                  total := !total +. !slowest
              | exception Not_found ->
                  exec_items setup_state ~bindings:[] ~override:None [ item ]
            end
          | Visa.Block _ ->
              exec_items setup_state ~bindings:[] ~override:None [ item ])
        prog.Visa.setup;
      setup_state.counters.Counters.cycles <- 0.0;
      !total
    end
  in
  setup_state.counters.Counters.setup_cycles <- setup_cycles;
  if cores <= 1 then begin
    exec_items setup_state ~bindings:[] ~override:None prog.Visa.body;
    { counters = setup_state.counters; memory }
  end
  else begin
    let contention = 1.0 +. (float_of_int (cores - 1) *. machine.M.contention_per_core) in
    match
      List.find_map
        (function Visa.Loop l -> Some l | Visa.Block _ -> None)
        prog.Visa.body
    with
    | None ->
        let r = run_interpreter ~cores:1 ~seed ~memory ~machine { prog with Visa.setup = [] } in
        r.counters.Counters.setup_cycles <- setup_cycles;
        r
    | Some main_loop ->
        let lo = Affine.eval main_loop.Visa.lo (fun _ -> raise Not_found) in
        let hi = Affine.eval main_loop.Visa.hi (fun _ -> raise Not_found) in
        let ranges = Scalar_exec.chunk_ranges ~lo ~hi ~step:main_loop.Visa.step ~cores in
        (* same chunk semantics as the engine: with a [Parallel]
           verdict each core runs on a privatized scalar store and
           recognised reductions merge from per-core partials; the
           entry snapshot is taken after setup has run *)
        List.iter
          (fun v -> ignore (Memory.scalar_slot memory v))
          (Engine.vector_prog_names
             (Engine.vector_prog_names [] prog.Visa.setup)
             prog.Visa.body);
        let priv =
          Engine.make_privatizer ~memory ~ranges
            ~verdict:(Parcheck.analyze_vector prog)
        in
        let all = setup_state.counters in
        let max_cycles = ref 0.0 in
        List.iteri
          (fun core (clo, chi) ->
            let st =
              {
                memory;
                cache = Cache.create ~contention machine;
                counters = Counters.create ();
                machine;
                vregs = Array.make nvregs unwritten;
              }
            in
            priv.Engine.p_enter core;
            List.iter
              (fun item ->
                match item with
                | Visa.Loop l when l == main_loop ->
                    exec_items st ~bindings:[] ~override:(Some (clo, chi))
                      [ Visa.Loop l ]
                | Visa.Loop _ | Visa.Block _ ->
                    if core = 0 then exec_items st ~bindings:[] ~override:None [ item ])
              prog.Visa.body;
            priv.Engine.p_exit core;
            max_cycles := Float.max !max_cycles st.counters.Counters.cycles;
            st.counters.Counters.cycles <- 0.0;
            Counters.merge_into ~into:all st.counters)
          ranges;
        priv.Engine.p_finish ();
        all.Counters.cycles <- !max_cycles;
        { counters = all; memory }
  end

(* The compiled engine is the production path; the interpreter above
   stays as the reference oracle (the fuzz suite runs both and asserts
   identical results). *)
let run ?cores ?seed ?memory ?profile ?origins ?pool ~machine prog =
  let r =
    Engine.run_vector ?cores ?seed ?memory ?profile ?origins ?pool ~machine prog
  in
  { counters = r.Engine.counters; memory = r.Engine.memory }
