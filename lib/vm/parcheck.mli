(** Chunk-independence analysis for domain-parallel execution.

    The multicore model runs the partitioned chunks of the first
    top-level loop sequentially on shared memory; {!Engine} may run
    them on concurrent OCaml domains only when no chunk can observe
    another chunk's writes.  The analysis is dependence-based (see
    {!Depend}): array chunk independence is proved by the
    cross-instance solver (no loop-carried conflict on the partitioned
    index), recognised scalar reductions ([s = s ⊕ e],
    ⊕ ∈ {+, *, min, max}) run on per-core partial accumulators merged
    in core order, and remaining written scalars must be privatizable
    (written before read within each iteration).  [Serial] carries a
    stable reason code and never breaks anything — the engine keeps
    its sequential legs. *)

open Slp_ir
open Slp_depend

type verdict = Depend.verdict =
  | Serial of string
      (** reason code: ["par-shape"], ["par-array-dep:<arr>"],
          ["par-scalar:<name>"], ["par-nonassoc:<name>"] *)
  | Parallel of { reductions : (string * Types.binop) list }

val analyze_scalar : Program.t -> verdict
(** Alias of {!Depend.scalar_parallel_verdict}. *)

val analyze_vector : Visa.program -> verdict
(** Same rules over a lowered vector program ([setup] is ignored: it
    always runs before the parallel leg).  Reductions are recognised
    only from scalar [Sstmt] update chains; any other instruction
    touching the scalar disqualifies it. *)

val scalar_parallel_safe : Program.t -> bool
(** [analyze_scalar p <> Serial _]. *)

val vector_parallel_safe : Visa.program -> bool
