(** Static chunk-independence analysis for domain-parallel execution.

    The multicore model runs the partitioned chunks of the first
    top-level loop sequentially on shared memory; {!Engine} may run
    them on concurrent OCaml domains only when no chunk can observe
    another chunk's writes.  These checks are syntactic, conservative
    and sound: arrays written by the loop must be accessed only
    through a leading subscript equal to the partitioned index
    (disjoint rows per iteration), scalars written by the loop must be
    written before read within each iteration (privatizable
    temporaries — a [s = s + ...] recurrence is rejected), and the
    body must be the partitioned loop alone. *)

open Slp_ir

val scalar_parallel_safe : Program.t -> bool
(** May the scalar program's per-core legs run concurrently (with
    privatized scalar slots) and still produce bit-identical memory,
    counters and cycles? *)

val vector_parallel_safe : Visa.program -> bool
(** Same question for a lowered vector program ([setup] is ignored:
    it always runs before the parallel leg). *)
