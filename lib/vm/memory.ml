open Slp_ir

type array_box = {
  data : float array;
  base : int;
  dims : int list;
  elem_bytes : int;
}

type t = {
  arrays : (string, array_box) Hashtbl.t;
  scalar_addrs : (string, int) Hashtbl.t;
  scalar_slots : (string, int) Hashtbl.t;
  mutable scalar_data : float array;
  mutable scalar_count : int;
  scalar_base : int;
  spill_base : int;
  spills : (int, float array) Hashtbl.t;
}

let align a n = (a + n - 1) / n * n

let create ?(scalar_layout = []) ~env () =
  let arrays = Hashtbl.create 16 in
  let brk = ref 64 in
  List.iter
    (fun (name, info) ->
      let total = List.fold_left ( * ) 1 info.Env.dims in
      let elem_bytes = Types.bytes info.Env.elem_ty in
      let base = align !brk 64 in
      brk := base + (total * elem_bytes);
      Hashtbl.replace arrays name
        { data = Array.make total 0.0; base; dims = info.Env.dims; elem_bytes })
    (Env.arrays env);
  let scalar_base = align !brk 64 in
  let scalar_addrs = Hashtbl.create 16 in
  (* Validate and apply the explicit layout. *)
  let used = Hashtbl.create 16 in
  List.iter
    (fun (name, off) ->
      if off < 0 || off mod 8 <> 0 then
        invalid_arg "Memory.create: scalar offsets must be non-negative multiples of 8";
      if Hashtbl.mem used off then invalid_arg "Memory.create: duplicate scalar offset";
      Hashtbl.replace used off ();
      Hashtbl.replace scalar_addrs name (scalar_base + off))
    scalar_layout;
  let next = ref (List.fold_left (fun acc (_, off) -> max acc (off + 8)) 0 scalar_layout) in
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem scalar_addrs name) then begin
        Hashtbl.replace scalar_addrs name (scalar_base + !next);
        next := !next + 8
      end)
    (Env.scalars env);
  (* The scalar area is sized exactly from the declared scalars plus
     the explicit layout, so the spill segment can never alias a
     scalar address. *)
  let scalar_area = !next in
  let spill_base = align (scalar_base + scalar_area) 64 in
  Hashtbl.iter
    (fun name addr ->
      if addr + 8 > scalar_base + scalar_area then
        invalid_arg
          (Printf.sprintf "Memory.create: scalar %s overflows the scalar area" name))
    scalar_addrs;
  let scalar_slots = Hashtbl.create 16 in
  let n = List.fold_left (fun i (name, _) ->
      Hashtbl.replace scalar_slots name i;
      i + 1)
      0 (Env.scalars env)
  in
  {
    arrays;
    scalar_addrs;
    scalar_slots;
    scalar_data = Array.make (max 8 n) 0.0;
    scalar_count = n;
    scalar_base;
    spill_base;
    spills = Hashtbl.create 16;
  }

let box t name =
  match Hashtbl.find_opt t.arrays name with
  | Some b -> b
  | None -> Trap.unknown_array ~array:name ()

let init_arrays t ~seed =
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.arrays [] |> List.sort String.compare
  in
  List.iter
    (fun name ->
      let b = box t name in
      let rng = Slp_util.Prng.create (seed lxor Hashtbl.hash name) in
      Array.iteri (fun i _ -> b.data.(i) <- Slp_util.Prng.float rng 1.0) b.data)
    names

let load t name idx =
  let b = box t name in
  if idx < 0 || idx >= Array.length b.data then
    Trap.oob ~array:name ~index:idx ~bound:(Array.length b.data) ();
  b.data.(idx)

let store t name idx v =
  let b = box t name in
  if idx < 0 || idx >= Array.length b.data then
    Trap.oob ~array:name ~index:idx ~bound:(Array.length b.data) ();
  b.data.(idx) <- v

let scalar_slot t name =
  match Hashtbl.find_opt t.scalar_slots name with
  | Some s -> s
  | None ->
      let s = t.scalar_count in
      if s >= Array.length t.scalar_data then begin
        let grown = Array.make (2 * Array.length t.scalar_data) 0.0 in
        Array.blit t.scalar_data 0 grown 0 (Array.length t.scalar_data);
        t.scalar_data <- grown
      end;
      Hashtbl.replace t.scalar_slots name s;
      t.scalar_count <- s + 1;
      s

let scalar t name =
  match Hashtbl.find_opt t.scalar_slots name with
  | Some s -> t.scalar_data.(s)
  | None -> 0.0

let set_scalar t name v = t.scalar_data.(scalar_slot t name) <- v
let scalar_values t = t.scalar_data
let array_base t name = (box t name).base

let scalar_addr t name =
  match Hashtbl.find_opt t.scalar_addrs name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Memory.scalar_addr: unknown scalar %s" name)

let elem_bytes t name = (box t name).elem_bytes

let flat_index t name idxs =
  let b = box t name in
  if List.length idxs <> List.length b.dims then
    Trap.rank_mismatch ~array:name ();
  List.fold_left2
    (fun acc i d ->
      if i < 0 || i >= d then Trap.oob ~array:name ~index:i ~bound:d ();
      (acc * d) + i)
    0 idxs b.dims

let addr_of_elem t name idxs =
  let b = box t name in
  b.base + (flat_index t name idxs * b.elem_bytes)

let array_values t name = (box t name).data
let dims t name = (box t name).dims

let spill_addr t ~slot = t.spill_base + (slot * 64)
let spill_store t ~slot lanes = Hashtbl.replace t.spills slot (Array.copy lanes)

let spill_load t ~slot =
  match Hashtbl.find_opt t.spills slot with
  | Some lanes -> Array.copy lanes
  | None -> Trap.unset_spill ~slot ()

let same_contents a b =
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) a.arrays [] |> List.sort String.compare
  in
  List.for_all
    (fun name ->
      match Hashtbl.find_opt b.arrays name with
      | None -> false
      | Some bb ->
          let ba = box a name in
          Array.length ba.data = Array.length bb.data
          && Array.for_all2
               (fun x y ->
                 (* Identical NaNs/infinities count as equal: both
                    executions overflowing the same way is agreement. *)
                 Float.equal x y || Float.abs (x -. y) <= 1e-9)
               ba.data bb.data)
    names
