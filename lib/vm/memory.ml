open Slp_ir
module FA = Float.Array

type array_box = {
  data : floatarray;
  base : int;
  dims : int list;
  elem_bytes : int;
}

(* Spill slots live in a single flat arena of [spill_stride] lanes per
   slot instead of a hash table of boxed lane arrays: storing a
   superword is a blit into the arena and reloading is a blit out,
   with no allocation and no hashing on the VM's register-pressure hot
   path.  [spill_lanes.(slot)] records the lane count of the value the
   slot holds, or -1 when the slot was never stored (reloading such a
   slot traps, like the hash-table miss used to). *)
type t = {
  arrays : (string, array_box) Hashtbl.t;
  scalar_addrs : (string, int) Hashtbl.t;
  scalar_slots : (string, int) Hashtbl.t;
  mutable scalar_data : floatarray;
  mutable scalar_count : int;
  scalar_base : int;
  spill_base : int;
  mutable spill_data : floatarray;
  mutable spill_lanes : int array;
  mutable spill_stride : int;
}

let align a n = (a + n - 1) / n * n

let create ?(scalar_layout = []) ~env () =
  let arrays = Hashtbl.create 16 in
  let brk = ref 64 in
  List.iter
    (fun (name, info) ->
      let total = List.fold_left ( * ) 1 info.Env.dims in
      let elem_bytes = Types.bytes info.Env.elem_ty in
      let base = align !brk 64 in
      brk := base + (total * elem_bytes);
      Hashtbl.replace arrays name
        { data = FA.make total 0.0; base; dims = info.Env.dims; elem_bytes })
    (Env.arrays env);
  let scalar_base = align !brk 64 in
  let scalar_addrs = Hashtbl.create 16 in
  (* Validate and apply the explicit layout. *)
  let used = Hashtbl.create 16 in
  List.iter
    (fun (name, off) ->
      if off < 0 || off mod 8 <> 0 then
        invalid_arg "Memory.create: scalar offsets must be non-negative multiples of 8";
      if Hashtbl.mem used off then invalid_arg "Memory.create: duplicate scalar offset";
      Hashtbl.replace used off ();
      Hashtbl.replace scalar_addrs name (scalar_base + off))
    scalar_layout;
  let next = ref (List.fold_left (fun acc (_, off) -> max acc (off + 8)) 0 scalar_layout) in
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem scalar_addrs name) then begin
        Hashtbl.replace scalar_addrs name (scalar_base + !next);
        next := !next + 8
      end)
    (Env.scalars env);
  (* The scalar area is sized exactly from the declared scalars plus
     the explicit layout, so the spill segment can never alias a
     scalar address. *)
  let scalar_area = !next in
  let spill_base = align (scalar_base + scalar_area) 64 in
  Hashtbl.iter
    (fun name addr ->
      if addr + 8 > scalar_base + scalar_area then
        invalid_arg
          (Printf.sprintf "Memory.create: scalar %s overflows the scalar area" name))
    scalar_addrs;
  let scalar_slots = Hashtbl.create 16 in
  let n = List.fold_left (fun i (name, _) ->
      Hashtbl.replace scalar_slots name i;
      i + 1)
      0 (Env.scalars env)
  in
  {
    arrays;
    scalar_addrs;
    scalar_slots;
    scalar_data = FA.make (max 8 n) 0.0;
    scalar_count = n;
    scalar_base;
    spill_base;
    spill_data = FA.make 0 0.0;
    spill_lanes = [||];
    spill_stride = 8;
  }

let box t name =
  match Hashtbl.find_opt t.arrays name with
  | Some b -> b
  | None -> Trap.unknown_array ~array:name ()

let init_arrays t ~seed =
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.arrays [] |> List.sort String.compare
  in
  List.iter
    (fun name ->
      let b = box t name in
      let rng = Slp_util.Prng.create (seed lxor Hashtbl.hash name) in
      for i = 0 to FA.length b.data - 1 do
        FA.unsafe_set b.data i (Slp_util.Prng.float rng 1.0)
      done)
    names

let load t name idx =
  let b = box t name in
  if idx < 0 || idx >= FA.length b.data then
    Trap.oob ~array:name ~index:idx ~bound:(FA.length b.data) ();
  FA.unsafe_get b.data idx

let store t name idx v =
  let b = box t name in
  if idx < 0 || idx >= FA.length b.data then
    Trap.oob ~array:name ~index:idx ~bound:(FA.length b.data) ();
  FA.unsafe_set b.data idx v

let scalar_slot t name =
  match Hashtbl.find_opt t.scalar_slots name with
  | Some s -> s
  | None ->
      let s = t.scalar_count in
      if s >= FA.length t.scalar_data then begin
        let grown = FA.make (2 * FA.length t.scalar_data) 0.0 in
        FA.blit t.scalar_data 0 grown 0 (FA.length t.scalar_data);
        t.scalar_data <- grown
      end;
      Hashtbl.replace t.scalar_slots name s;
      t.scalar_count <- s + 1;
      s

let scalar t name =
  match Hashtbl.find_opt t.scalar_slots name with
  | Some s -> FA.get t.scalar_data s
  | None -> 0.0

let set_scalar t name v = FA.set t.scalar_data (scalar_slot t name) v
let scalar_values t = t.scalar_data
let array_base t name = (box t name).base

let scalar_addr t name =
  match Hashtbl.find_opt t.scalar_addrs name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Memory.scalar_addr: unknown scalar %s" name)

let elem_bytes t name = (box t name).elem_bytes

let flat_index t name idxs =
  let b = box t name in
  if List.length idxs <> List.length b.dims then
    Trap.rank_mismatch ~array:name ();
  List.fold_left2
    (fun acc i d ->
      if i < 0 || i >= d then Trap.oob ~array:name ~index:i ~bound:d ();
      (acc * d) + i)
    0 idxs b.dims

let addr_of_elem t name idxs =
  let b = box t name in
  b.base + (flat_index t name idxs * b.elem_bytes)

let array_values t name = (box t name).data
let dims t name = (box t name).dims

(* -- spill arena ---------------------------------------------------- *)

let spill_addr t ~slot = t.spill_base + (slot * 64)

(* Grow the arena to hold [slot] at [lanes] lanes.  Widening the
   stride re-lays existing rows out at the new pitch so live values
   survive; both growths double to amortise. *)
let ensure_spill t ~slot ~lanes =
  let cap = Array.length t.spill_lanes in
  if lanes > t.spill_stride then begin
    let stride = max lanes (2 * t.spill_stride) in
    let data = FA.make (max cap 1 * stride) 0.0 in
    for s = 0 to cap - 1 do
      if t.spill_lanes.(s) >= 0 then
        FA.blit t.spill_data (s * t.spill_stride) data (s * stride)
          t.spill_lanes.(s)
    done;
    t.spill_data <- data;
    t.spill_stride <- stride
  end;
  if slot >= cap then begin
    let cap' = max (slot + 1) (max 16 (2 * cap)) in
    let data = FA.make (cap' * t.spill_stride) 0.0 in
    FA.blit t.spill_data 0 data 0 (cap * t.spill_stride);
    let lanes' = Array.make cap' (-1) in
    Array.blit t.spill_lanes 0 lanes' 0 cap;
    t.spill_data <- data;
    t.spill_lanes <- lanes'
  end

let reserve_spills t ~slots ~max_lanes =
  if slots > 0 then ensure_spill t ~slot:(slots - 1) ~lanes:(max 1 max_lanes)

let spill_store_from t ~slot ~src ~pos ~lanes =
  if slot >= Array.length t.spill_lanes || lanes > t.spill_stride then
    ensure_spill t ~slot ~lanes;
  FA.blit src pos t.spill_data (slot * t.spill_stride) lanes;
  t.spill_lanes.(slot) <- lanes

let spill_lanes_of t ~slot =
  if slot < 0 || slot >= Array.length t.spill_lanes then -1
  else Array.unsafe_get t.spill_lanes slot

let spill_load_into t ~slot ~dst ~pos =
  let lanes = spill_lanes_of t ~slot in
  if lanes < 0 then Trap.unset_spill ~slot ();
  FA.blit t.spill_data (slot * t.spill_stride) dst pos lanes;
  lanes

let spill_store t ~slot lanes =
  let n = Array.length lanes in
  if slot >= Array.length t.spill_lanes || n > t.spill_stride then
    ensure_spill t ~slot ~lanes:n;
  let base = slot * t.spill_stride in
  for k = 0 to n - 1 do
    FA.unsafe_set t.spill_data (base + k) (Array.unsafe_get lanes k)
  done;
  t.spill_lanes.(slot) <- n

let spill_load t ~slot =
  let lanes = spill_lanes_of t ~slot in
  if lanes < 0 then Trap.unset_spill ~slot ();
  let base = slot * t.spill_stride in
  Array.init lanes (fun k -> FA.unsafe_get t.spill_data (base + k))

let same_contents a b =
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) a.arrays [] |> List.sort String.compare
  in
  List.for_all
    (fun name ->
      match Hashtbl.find_opt b.arrays name with
      | None -> false
      | Some bb ->
          let ba = box a name in
          FA.length ba.data = FA.length bb.data
          &&
          let rec scan i =
            if i >= FA.length ba.data then true
            else begin
              let x = FA.unsafe_get ba.data i and y = FA.unsafe_get bb.data i in
              (* Identical NaNs/infinities count as equal: both
                 executions overflowing the same way is agreement. *)
              (Float.equal x y || Float.abs (x -. y) <= 1e-9) && scan (i + 1)
            end
          in
          scan 0)
    names
