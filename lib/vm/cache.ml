module M = Slp_machine.Machine

type level = {
  sets : int array array;  (** Per set: tags in LRU order (front = MRU). *)
  fill : int array;  (** Number of valid tags per set. *)
  set_count : int;
  set_mask : int;
      (** [set_count - 1] when the count is a power of two (all modeled
          machines), letting set selection be a mask instead of a
          division; [-1] otherwise. *)
  line_bytes : int;
  latency : int;
}

type t = {
  levels : level array;
  line_shift : int;
      (** log2 of the L1 line size when it is a power of two, for
          shift-based line splitting; [-1] otherwise. *)
  memory_latency : float;
  bus_penalty : float;
      (** Extra cycles per line access from shared-bus/coherence
          contention when several cores are active. *)
  mutable level_hits : int array;
  mutable memory_accesses : int;
  mutable total : int;
  mutable observer : (int -> int -> unit) option;
      (** Profiler hook: called per line access with the line's base
          address and the resolving level (0-based; one past the last
          cache level means memory).  One option match when absent. *)
}

let log2_pow2 n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  if n <= 0 then -1 else go 0

let make_level (c : M.cache_level) =
  let set_count = max 1 (c.M.size_bytes / (c.M.ways * c.M.line_bytes)) in
  {
    sets = Array.init set_count (fun _ -> Array.make c.M.ways (-1));
    fill = Array.make set_count 0;
    set_count;
    set_mask = (if log2_pow2 set_count >= 0 then set_count - 1 else -1);
    line_bytes = c.M.line_bytes;
    latency = c.M.latency;
  }

let set_of level line =
  if level.set_mask >= 0 then line land level.set_mask else line mod level.set_count

let create ?(contention = 1.0) (m : M.t) =
  let levels = [| make_level m.M.l1; make_level m.M.l2; make_level m.M.l3 |] in
  {
    levels;
    line_shift = log2_pow2 levels.(0).line_bytes;
    memory_latency = float_of_int m.M.memory_latency *. contention;
    (* Every access occupies the shared memory subsystem briefly; under
       contention that occupancy turns into queueing delay even on
       cache hits (this is what makes the scalar code scale worse than
       the vectorized code in Figure 21). *)
    bus_penalty = (contention -. 1.0) *. 8.0;
    level_hits = Array.make 3 0;
    memory_accesses = 0;
    total = 0;
    observer = None;
  }

let set_observer t f = t.observer <- f

let line_addr t line =
  if t.line_shift >= 0 then line lsl t.line_shift
  else line * t.levels.(0).line_bytes

let notify t line level =
  match t.observer with
  | None -> ()
  | Some f -> f (line_addr t line) level

(* Probe one level for a line: returns true on hit; on hit or fill the
   line becomes MRU. *)
(* The hot loops below use unsafe array accesses: [set] comes out of
   [set_of] so it is always < [set_count] = length of [sets]/[fill],
   and every tag index is bounded by [fill.(set)] <= ways = length of
   the tag array. *)
let touch level line ~insert =
  let set = set_of level line in
  let tags = Array.unsafe_get level.sets set in
  let n = Array.unsafe_get level.fill set in
  let rec find i =
    if i >= n then -1
    else if Array.unsafe_get tags i = line then i
    else find (i + 1)
  in
  let idx = find 0 in
  (* LRU rotations shift at most [ways] tags; a manual loop beats the
     memmove call overhead at these sizes. *)
  if idx >= 0 then begin
    (* Move to front. *)
    let tag = Array.unsafe_get tags idx in
    for k = idx downto 1 do
      Array.unsafe_set tags k (Array.unsafe_get tags (k - 1))
    done;
    Array.unsafe_set tags 0 tag;
    true
  end
  else begin
    if insert then begin
      let n' = min (n + 1) (Array.length tags) in
      for k = n' - 1 downto 1 do
        Array.unsafe_set tags k (Array.unsafe_get tags (k - 1))
      done;
      Array.unsafe_set tags 0 line;
      Array.unsafe_set level.fill set n'
    end;
    false
  end

let access_line t line =
  t.total <- t.total + 1;
  let rec walk i =
    if i >= Array.length t.levels then begin
      t.memory_accesses <- t.memory_accesses + 1;
      (* [max_int], not [i]: observers bin by level index and must see
         memory as "beyond any cache level" whatever the level count of
         this particular hierarchy. *)
      notify t line max_int;
      t.memory_latency
    end
    else if touch t.levels.(i) line ~insert:true then begin
      t.level_hits.(i) <- t.level_hits.(i) + 1;
      notify t line i;
      float_of_int t.levels.(i).latency
    end
    else begin
      let below = walk (i + 1) in
      (* Line already filled into this level by [touch]'s insert. *)
      below
    end
  in
  (* First probe without insert at the hitting level is already handled
     by touch's insert-on-miss: a miss inserts the line (fill on the
     way back), which is what an inclusive hierarchy does. *)
  walk 0

let access t ~addr ~bytes ~write:_ =
  (* Single chokepoint for the fault-injection harness: every memory
     access of the interpreters AND the compiled engine charges the
     cache here, even where the engine bypasses [Memory.load/store].
     One flag read when disarmed. *)
  if !Trap.fault_enabled then Trap.fault_tick ();
  let first, last =
    if t.line_shift >= 0 then
      (addr asr t.line_shift, (addr + max 1 bytes - 1) asr t.line_shift)
    else begin
      let line_bytes = t.levels.(0).line_bytes in
      (addr / line_bytes, (addr + max 1 bytes - 1) / line_bytes)
    end
  in
  if first = last then begin
    (* Fast path for the dominant case: a single line that is the MRU
       entry of its L1 set.  The slow path would find it at position 0
       and the LRU rotation would be a no-op, so the state and the
       returned cycles are identical. *)
    let l1 = Array.unsafe_get t.levels 0 in
    let tags = Array.unsafe_get l1.sets (set_of l1 first) in
    if Array.unsafe_get tags 0 = first then begin
      t.total <- t.total + 1;
      t.level_hits.(0) <- t.level_hits.(0) + 1;
      notify t first 0;
      float_of_int l1.latency +. t.bus_penalty
    end
    else access_line t first +. t.bus_penalty
  end
  else begin
    let cycles = ref 0.0 in
    for line = first to last do
      cycles := !cycles +. access_line t line +. t.bus_penalty
    done;
    !cycles
  end

let reset t =
  Array.iter
    (fun l ->
      Array.iteri (fun i _ -> l.fill.(i) <- 0) l.fill;
      Array.iter (fun s -> Array.fill s 0 (Array.length s) (-1)) l.sets)
    t.levels;
  t.level_hits <- Array.make 3 0;
  t.memory_accesses <- 0;
  t.total <- 0

let hits t = (t.level_hits.(0), t.level_hits.(1), t.level_hits.(2))
let misses t = t.memory_accesses
let accesses t = t.total
