(** Closure-compiled execution engine.

    Compiles a program once into a tree of OCaml closures over a flat
    execution state — scalar names resolved to integer slots, vector
    registers to a preallocated array, loop indices to a depth-indexed
    frame, affine subscripts to specialised multiply-adds — and then
    runs it.  Observationally identical to the reference interpreters
    in {!Scalar_exec} and {!Vector_exec}: same memory contents, same
    counters, bit-identical cycles (the differential fuzz suite in
    [test/test_fuzz.ml] checks this), just several times faster. *)

open Slp_ir

type result = { counters : Counters.t; memory : Memory.t }

val run_scalar :
  ?cores:int -> ?seed:int -> ?memory:Memory.t -> ?profile:Slp_obs.Profile.t ->
  ?pool:Dpool.t -> machine:Slp_machine.Machine.t -> Program.t -> result
(** Compile and run a scalar program; multicore semantics (first
    top-level loop partitioned, contention on the memory system,
    cycles = slowest core) mirror {!Scalar_exec.run}.

    With [?pool] (and [cores > 1]) the per-core legs execute on real
    OCaml domains and are merged deterministically in core order, so
    counters and cycles are bit-identical to the sequential
    simulation; profiling and armed fault injection observe global
    state per access and silently force the sequential legs.

    With [?profile], every statement closure is bracketed with a cycle
    delta and the cache observer, attributing all charged cycles and
    cache accesses to statement ids.  On a single-core run the per-key
    cycle sums equal [Counters.total_cycles] exactly; on multicore
    they sum to the per-core total over all cores (reported cycles are
    the slowest core's).  Profiling does not perturb counters, cycles,
    or memory contents. *)

val run_vector :
  ?cores:int -> ?seed:int -> ?memory:Memory.t -> ?profile:Slp_obs.Profile.t ->
  ?origins:Slp_obs.Profile.key array list -> ?pool:Dpool.t ->
  machine:Slp_machine.Machine.t -> Visa.program -> result
(** Compile and run a vector program; setup replication and multicore
    semantics mirror {!Vector_exec.run} ([?pool] as in
    {!run_scalar}).  [?origins] maps instructions
    back to source statements for [?profile]: one key array per
    [Visa.Block] of the body in pre-order (as produced by
    [Lower.lower_with_origins] and transformed by
    [Regalloc.program_with_origins]); instructions beyond the recorded
    origins fall back to opcode keys, and setup instructions are
    attributed to [Setup]. *)

val chunk_ranges : lo:int -> hi:int -> step:int -> cores:int -> (int * int) list
(** Split [lo, hi) into [cores] contiguous step-aligned ranges. *)

val scalar_prog_names : string list -> Program.item list -> string list
(** Every scalar name a scalar program mentions, appended to the
    accumulator.  The interpreters use this to pre-register slots
    before snapshotting [Memory.scalar_values] — the backing store is
    replaced when a slot is first created, so privatized copies must
    be taken after all names exist. *)

val vector_prog_names : string list -> Visa.item list -> string list
(** Same for the instructions of a vector program fragment (call once
    on [setup] and once on [body]). *)

type privatizer = {
  p_enter : int -> unit;
  p_exit : int -> unit;
  p_finish : unit -> unit;
}
(** Scalar-store privatization + reduction merge for the reference
    interpreters' sequential chunked legs — the same semantics the
    engine's [exec_cores] applies, so interpreter and engine stay
    bit-identical.  [p_enter core] restores the entry snapshot of
    [Memory.scalar_values] and seeds recognised reduction slots with
    their operator identities; [p_exit core] snapshots the core's
    partials; [p_finish] blits non-empty cores' partials back in core
    order and folds each reduction slot as
    [entry ⊕ partial_0 ⊕ partial_1 ⊕ …] over non-empty cores.  All
    no-ops for a [Serial] verdict. *)

val make_privatizer :
  memory:Memory.t ->
  ranges:(int * int) list ->
  verdict:Slp_depend.Depend.verdict ->
  privatizer
(** Pre-register every scalar name the program mentions (see
    {!scalar_prog_names}) before calling — the snapshot is taken
    against the live backing store. *)

val program_vregs : Visa.program -> int
(** One more than the highest register number the program mentions
    (0 for a register-free program) — sizes a dense register file. *)

val program_lane_stride : Visa.program -> int
(** The widest lane count any instruction can produce (at least 1) —
    the per-register pitch of the flat register file. *)

val program_spill_slots : Visa.program -> int
(** One more than the highest spill slot mentioned (0 when the
    program never spills) — sizes a dense spill arena. *)
