(** Scalar reference execution of kernel programs.

    Interprets the IR directly, computing real values and charging
    machine-model costs (ALU cycles, cache-simulated memory
    latencies).  This is both the "scalar code" baseline every scheme
    is normalised against and the semantic oracle vectorized execution
    must match.

    With [cores > 1] the outermost loop's iteration space is split
    into contiguous per-core chunks, each simulated with its own cache
    hierarchy under a memory-contention factor; reported cycles are
    the slowest core's (execution time), while instruction counters
    sum over cores (work). *)

open Slp_ir

type result = { counters : Counters.t; memory : Memory.t }

val run :
  ?cores:int ->
  ?seed:int ->
  ?memory:Memory.t ->
  ?profile:Slp_obs.Profile.t ->
  ?pool:Dpool.t ->
  machine:Slp_machine.Machine.t ->
  Program.t ->
  result
(** Default [cores] 1, [seed] 42.  When [memory] is given it is used
    (and mutated) without re-initialisation.  Executes through the
    compiled engine ({!Engine.run_scalar}); [?profile] attributes
    cycles and cache accesses per statement (see {!Engine.run_scalar}). *)

val run_interpreter :
  ?cores:int ->
  ?seed:int ->
  ?memory:Memory.t ->
  machine:Slp_machine.Machine.t ->
  Program.t ->
  result
(** The direct tree-walking interpreter — the reference oracle the
    compiled engine is differentially tested against.  Same observable
    behaviour as {!run}, several times slower. *)

val chunk_ranges : lo:int -> hi:int -> step:int -> cores:int -> (int * int) list
(** Contiguous step-aligned per-core ranges partitioning [lo, hi). *)

val exec_stmt :
  memory:Memory.t ->
  cache:Cache.t ->
  counters:Counters.t ->
  machine:Slp_machine.Machine.t ->
  index_env:(string -> int) ->
  Stmt.t ->
  unit
(** Single-statement interpreter, shared with the vector executor's
    [Sstmt] case. *)
