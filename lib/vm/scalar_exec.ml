open Slp_ir
module M = Slp_machine.Machine

type result = { counters : Counters.t; memory : Memory.t }

let elem_indices ~index_env idxs = List.map (fun ix -> Affine.eval ix index_env) idxs

let exec_stmt ~memory ~cache ~counters ~machine ~index_env (s : Stmt.t) =
  let costs = machine.M.costs in
  let charge c = counters.Counters.cycles <- counters.Counters.cycles +. c in
  let read_operand op =
    match op with
    | Operand.Const c -> c
    | Operand.Scalar v -> begin
        (* A loop index used as a value reads the induction variable. *)
        match index_env v with
        | i -> float_of_int i
        | exception Not_found -> Memory.scalar memory v
      end
    | Operand.Elem (b, idxs) ->
        let flat = Memory.flat_index memory b (elem_indices ~index_env idxs) in
        counters.Counters.scalar_loads <- counters.Counters.scalar_loads + 1;
        charge
          (float_of_int costs.M.load_issue
          +. Cache.access cache
               ~addr:(Memory.array_base memory b + (flat * Memory.elem_bytes memory b))
               ~bytes:(Memory.elem_bytes memory b) ~write:false);
        Memory.load memory b flat
  in
  let value = Expr.eval s.Stmt.rhs read_operand in
  counters.Counters.scalar_ops <- counters.Counters.scalar_ops + Stmt.op_count s;
  let op_cycles =
    List.fold_left
      (fun acc op ->
        acc
        +
        match op with
        | Either.Left Types.Div -> costs.M.divide
        | Either.Right Types.Sqrt -> costs.M.square_root
        | Either.Left _ -> costs.M.scalar_op
        | Either.Right _ -> costs.M.scalar_op)
      0
      (Expr.operators s.Stmt.rhs)
  in
  charge (float_of_int op_cycles);
  match s.Stmt.lhs with
  | Operand.Scalar v -> Memory.set_scalar memory v value
  | Operand.Elem (b, idxs) ->
      let flat = Memory.flat_index memory b (elem_indices ~index_env idxs) in
      counters.Counters.scalar_stores <- counters.Counters.scalar_stores + 1;
      charge
        (float_of_int costs.M.store_issue
        +. Cache.access cache
             ~addr:(Memory.array_base memory b + (flat * Memory.elem_bytes memory b))
             ~bytes:(Memory.elem_bytes memory b) ~write:true);
      Memory.store memory b flat value
  | Operand.Const _ -> assert false

(* Execute items; [override] optionally replaces the bounds of the
   outermost loop (multicore partitioning). *)
let rec exec_items ~memory ~cache ~counters ~machine ~bindings ~override items =
  let index_env v =
    match List.assoc_opt v bindings with Some i -> i | None -> raise Not_found
  in
  List.iter
    (fun item ->
      match item with
      | Program.Stmts b ->
          List.iter
            (fun (s : Stmt.t) ->
              try exec_stmt ~memory ~cache ~counters ~machine ~index_env s
              with Trap.Trap ({ Trap.stmt = None; _ } as i) ->
                (* Attribute the trap to the statement being executed. *)
                raise (Trap.Trap { i with Trap.stmt = Some s.Stmt.id }))
            b.Block.stmts
      | Program.Loop l ->
          let lo, hi =
            match override with
            | Some (lo, hi) -> (lo, hi)
            | None -> (Affine.eval l.Program.lo index_env, Affine.eval l.Program.hi index_env)
          in
          let i = ref lo in
          while !i < hi do
            exec_items ~memory ~cache ~counters ~machine
              ~bindings:((l.Program.index, !i) :: bindings)
              ~override:None l.Program.body;
            i := !i + l.Program.step
          done)
    items

let chunk_ranges = Engine.chunk_ranges

let rec run_interpreter ?(cores = 1) ?(seed = 42) ?memory ~machine (prog : Program.t) =
  let memory =
    match memory with
    | Some m -> m
    | None ->
        let m = Memory.create ~env:prog.Program.env () in
        Memory.init_arrays m ~seed;
        m
  in
  if cores <= 1 then begin
    let cache = Cache.create machine in
    let counters = Counters.create () in
    exec_items ~memory ~cache ~counters ~machine ~bindings:[] ~override:None
      prog.Program.body;
    { counters; memory }
  end
  else begin
    let contention = 1.0 +. (float_of_int (cores - 1) *. machine.M.contention_per_core) in
    (* Partition the first top-level loop; everything else runs on
       core 0. *)
    match
      List.find_map
        (function Program.Loop l -> Some l | Program.Stmts _ -> None)
        prog.Program.body
    with
    | None -> run_interpreter ~cores:1 ~seed ~memory ~machine prog
    | Some main_loop ->
        let lo = Affine.eval main_loop.Program.lo (fun _ -> raise Not_found) in
        let hi = Affine.eval main_loop.Program.hi (fun _ -> raise Not_found) in
        let ranges = chunk_ranges ~lo ~hi ~step:main_loop.Program.step ~cores in
        (* same chunk semantics as the engine: with a [Parallel]
           verdict each core runs on a privatized scalar store and
           recognised reductions merge from per-core partials *)
        List.iter
          (fun v -> ignore (Memory.scalar_slot memory v))
          (Engine.scalar_prog_names [] prog.Program.body);
        let priv =
          Engine.make_privatizer ~memory ~ranges
            ~verdict:(Parcheck.analyze_scalar prog)
        in
        let all = Counters.create () in
        let max_cycles = ref 0.0 in
        List.iteri
          (fun core (clo, chi) ->
            let cache = Cache.create ~contention machine in
            let counters = Counters.create () in
            priv.Engine.p_enter core;
            List.iter
              (fun item ->
                match item with
                | Program.Loop l when l == main_loop ->
                    exec_items ~memory ~cache ~counters ~machine ~bindings:[]
                      ~override:(Some (clo, chi))
                      [ Program.Loop l ]
                | Program.Loop _ | Program.Stmts _ ->
                    if core = 0 then
                      exec_items ~memory ~cache ~counters ~machine ~bindings:[]
                        ~override:None [ item ])
              prog.Program.body;
            priv.Engine.p_exit core;
            max_cycles := Float.max !max_cycles counters.Counters.cycles;
            counters.Counters.cycles <- 0.0;
            Counters.merge_into ~into:all counters)
          ranges;
        priv.Engine.p_finish ();
        all.Counters.cycles <- !max_cycles;
        { counters = all; memory }
  end

(* The compiled engine is the production path; the interpreter above
   stays as the reference oracle (the fuzz suite runs both and asserts
   identical results). *)
let run ?cores ?seed ?memory ?profile ?pool ~machine prog =
  let r = Engine.run_scalar ?cores ?seed ?memory ?profile ?pool ~machine prog in
  { counters = r.Engine.counters; memory = r.Engine.memory }
