type t = {
  mutable scalar_ops : int;
  mutable vector_ops : int;
  mutable scalar_loads : int;
  mutable scalar_stores : int;
  mutable vector_loads : int;
  mutable vector_stores : int;
  mutable pack_loads : int;
  mutable pack_stores : int;
  mutable inserts : int;
  mutable extracts : int;
  mutable permutes : int;
  mutable broadcasts : int;
  mutable cycles : float;
  mutable setup_cycles : float;
}

let create () =
  {
    scalar_ops = 0;
    vector_ops = 0;
    scalar_loads = 0;
    scalar_stores = 0;
    vector_loads = 0;
    vector_stores = 0;
    pack_loads = 0;
    pack_stores = 0;
    inserts = 0;
    extracts = 0;
    permutes = 0;
    broadcasts = 0;
    cycles = 0.0;
    setup_cycles = 0.0;
  }

let copy t = { t with scalar_ops = t.scalar_ops }

let add a b =
  {
    scalar_ops = a.scalar_ops + b.scalar_ops;
    vector_ops = a.vector_ops + b.vector_ops;
    scalar_loads = a.scalar_loads + b.scalar_loads;
    scalar_stores = a.scalar_stores + b.scalar_stores;
    vector_loads = a.vector_loads + b.vector_loads;
    vector_stores = a.vector_stores + b.vector_stores;
    pack_loads = a.pack_loads + b.pack_loads;
    pack_stores = a.pack_stores + b.pack_stores;
    inserts = a.inserts + b.inserts;
    extracts = a.extracts + b.extracts;
    permutes = a.permutes + b.permutes;
    broadcasts = a.broadcasts + b.broadcasts;
    cycles = a.cycles +. b.cycles;
    setup_cycles = a.setup_cycles +. b.setup_cycles;
  }

let merge_into ~into t =
  into.scalar_ops <- into.scalar_ops + t.scalar_ops;
  into.vector_ops <- into.vector_ops + t.vector_ops;
  into.scalar_loads <- into.scalar_loads + t.scalar_loads;
  into.scalar_stores <- into.scalar_stores + t.scalar_stores;
  into.vector_loads <- into.vector_loads + t.vector_loads;
  into.vector_stores <- into.vector_stores + t.vector_stores;
  into.pack_loads <- into.pack_loads + t.pack_loads;
  into.pack_stores <- into.pack_stores + t.pack_stores;
  into.inserts <- into.inserts + t.inserts;
  into.extracts <- into.extracts + t.extracts;
  into.permutes <- into.permutes + t.permutes;
  into.broadcasts <- into.broadcasts + t.broadcasts;
  into.cycles <- into.cycles +. t.cycles;
  into.setup_cycles <- into.setup_cycles +. t.setup_cycles

let approx_equal a b =
  let close x y = Float.equal x y || Float.abs (x -. y) <= 1e-9 in
  a.scalar_ops = b.scalar_ops && a.vector_ops = b.vector_ops
  && a.scalar_loads = b.scalar_loads
  && a.scalar_stores = b.scalar_stores
  && a.vector_loads = b.vector_loads
  && a.vector_stores = b.vector_stores
  && a.pack_loads = b.pack_loads
  && a.pack_stores = b.pack_stores
  && a.inserts = b.inserts && a.extracts = b.extracts && a.permutes = b.permutes
  && a.broadcasts = b.broadcasts
  && close a.cycles b.cycles
  && close a.setup_cycles b.setup_cycles

let dynamic_instructions t =
  t.scalar_ops + t.vector_ops + t.scalar_loads + t.scalar_stores + t.vector_loads
  + t.vector_stores

let packing_instructions t =
  t.inserts + t.extracts + t.permutes + t.broadcasts + t.pack_loads + t.pack_stores

let total_instructions t = dynamic_instructions t + packing_instructions t
let memory_operations t =
  t.scalar_loads + t.scalar_stores + t.vector_loads + t.vector_stores + t.pack_loads
  + t.pack_stores

let total_cycles t = t.cycles +. t.setup_cycles

let pp ppf t =
  Format.fprintf ppf
    "@[<v>ops: %d scalar, %d vector@,mem: %d sld %d sst %d vld %d vst@,\
     pack: %d ins %d ext %d perm %d bcast %d pld %d pst@,\
     cycles: %.0f (+%.0f setup)@]"
    t.scalar_ops t.vector_ops t.scalar_loads t.scalar_stores t.vector_loads
    t.vector_stores t.inserts t.extracts t.permutes t.broadcasts t.pack_loads
    t.pack_stores t.cycles t.setup_cycles
