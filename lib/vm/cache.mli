(** Three-level set-associative cache simulator.

    Each access walks L1 → L2 → L3 → memory, charging the latency of
    the level that hits and filling all levels above it (inclusive,
    LRU replacement, write-allocate).  A contention factor inflates
    the memory latency when several cores are active (paper Figure 21:
    the scalar code suffers more from contention because it issues
    more memory operations). *)

type t

val create : ?contention:float -> Slp_machine.Machine.t -> t
(** [contention] (default 1.0 — single core) multiplies the DRAM
    latency and adds a shared-bus queueing surcharge of
    [(contention - 1) x 8] cycles to every line access, hits
    included. *)

val access : t -> addr:int -> bytes:int -> write:bool -> float
(** Cycles for the access.  Accesses spanning multiple lines charge
    each line. *)

val set_observer : t -> (int -> int -> unit) option -> unit
(** Install (or remove) a per-line-access hook for the profiler:
    called with the line's base address and the level that resolved
    the access (0-based cache level; one past the last level means
    memory).  Costs one option match per line when absent. *)

val reset : t -> unit
val hits : t -> int * int * int
(** L1, L2, L3 hit counts. *)

val misses : t -> int
(** Accesses served by memory. *)

val accesses : t -> int
