(* Static chunk-independence analysis for the domain-parallel leg.

   The multicore simulation partitions the first top-level loop into
   per-core chunks and — sequentially — runs them one after another on
   shared memory.  Executing the chunks on concurrent domains is only
   observationally identical when no chunk can see another chunk's
   writes:

   - every array the loop writes must be accessed (read or written)
     only through a leading subscript that is exactly the partitioned
     index, so distinct iterations touch provably disjoint rows;
   - every scalar variable the loop writes must be written before it
     is read within a single iteration of the partitioned loop
     (privatizable temporaries like an FFT butterfly's [tr]/[ti]); a
     read-modify-write recurrence such as [rdot = rdot + ...] is a
     genuine serial dependence and rejects the program;
   - the body must consist of the partitioned loop alone, so core 0
     carries no extra items racing against the other cores' chunks.

   Scalars that pass the check are run out of per-core private copies
   of the scalar store (see [Engine]); arrays stay shared because the
   subscript rule makes the chunks' footprints disjoint.

   The analysis is purely syntactic and conservative: [false] never
   breaks anything (the engine just keeps its sequential legs), and
   [true] is sound because control flow in the kernel language is
   data-independent — loop bounds are affine in the enclosing indices,
   so every chunk executes a fixed iteration sequence regardless of
   the float data. *)

open Slp_ir

type acc = {
  mutable warrays : string list;  (* arrays written anywhere in the loop *)
  mutable wscalars : string list;  (* scalars written anywhere in the loop *)
}

let add xs x = if List.mem x xs then xs else x :: xs

(* -- collection: everything the partitioned loop writes ------------ *)

let collect_stmt acc (s : Stmt.t) =
  match s.Stmt.lhs with
  | Operand.Scalar v -> acc.wscalars <- add acc.wscalars v
  | Operand.Elem (b, _) -> acc.warrays <- add acc.warrays b
  | Operand.Const _ -> ()

let rec collect_scalar_items acc items =
  List.iter
    (function
      | Program.Stmts blk -> List.iter (collect_stmt acc) blk.Block.stmts
      | Program.Loop l -> collect_scalar_items acc l.Program.body)
    items

let collect_instr acc (i : Visa.instr) =
  match i with
  | Visa.Vstore { elems; _ } ->
      List.iter
        (function
          | Operand.Elem (b, _) -> acc.warrays <- add acc.warrays b
          | Operand.Scalar _ | Operand.Const _ -> ())
        elems
  | Visa.Vunpack { dsts; _ } ->
      List.iter
        (function
          | Some (Visa.To_reg v) -> acc.wscalars <- add acc.wscalars v
          | Some (Visa.To_mem (Operand.Elem (b, _))) ->
              acc.warrays <- add acc.warrays b
          | Some (Visa.To_mem _) | None -> ())
        dsts
  | Visa.Vstore_scalars { targets; _ } ->
      List.iter (fun v -> acc.wscalars <- add acc.wscalars v) targets
  | Visa.Sstmt s -> collect_stmt acc s
  | Visa.Vload _ | Visa.Vgather _ | Visa.Vbroadcast _ | Visa.Vpermute _
  | Visa.Vshuffle2 _ | Visa.Vbin _ | Visa.Vun _ | Visa.Vspill _ | Visa.Vreload _
  | Visa.Vload_scalars _ ->
      ()

let rec collect_vector_items acc items =
  List.iter
    (function
      | Visa.Block instrs -> List.iter (collect_instr acc) instrs
      | Visa.Loop l -> collect_vector_items acc l.Visa.body)
    items

(* -- the check ------------------------------------------------------ *)

exception Unsafe

(* A loop whose bounds are compile-time constants provably executes at
   least once; only then may its writes count as definite for code
   after it (a zero-trip loop writes nothing). *)
let trip_at_least_once ~lo ~hi =
  match (Affine.to_const lo, Affine.to_const hi) with
  | Some lo, Some hi -> hi > lo
  | _ -> false

let check_elem ~pvar ~warrays b idxs =
  if List.mem b warrays then
    match idxs with
    | ix :: _ when Affine.equal ix (Affine.var pvar) -> ()
    | _ -> raise Unsafe

(* Reading a loop-written scalar is safe only once this iteration of
   the partitioned loop has definitely written it. *)
let check_scalar_read ~wscalars ~bound ~written v =
  if (not (List.mem v bound)) && List.mem v wscalars && not (List.mem v !written)
  then raise Unsafe

let check_operand_read ~pvar ~warrays ~wscalars ~bound ~written op =
  match op with
  | Operand.Const _ -> ()
  | Operand.Scalar v -> check_scalar_read ~wscalars ~bound ~written v
  | Operand.Elem (b, idxs) -> check_elem ~pvar ~warrays b idxs

let check_stmt ~pvar ~warrays ~wscalars ~bound ~written (s : Stmt.t) =
  List.iter
    (check_operand_read ~pvar ~warrays ~wscalars ~bound ~written)
    (Expr.leaves s.Stmt.rhs);
  match s.Stmt.lhs with
  | Operand.Scalar v -> written := add !written v
  | Operand.Elem (b, idxs) -> check_elem ~pvar ~warrays b idxs
  | Operand.Const _ -> ()

let rec check_scalar_items ~pvar ~warrays ~wscalars ~bound ~written items =
  List.iter
    (function
      | Program.Stmts blk ->
          List.iter (check_stmt ~pvar ~warrays ~wscalars ~bound ~written)
            blk.Block.stmts
      | Program.Loop l ->
          let inner = ref !written in
          check_scalar_items ~pvar ~warrays ~wscalars
            ~bound:(l.Program.index :: bound) ~written:inner l.Program.body;
          if trip_at_least_once ~lo:l.Program.lo ~hi:l.Program.hi then
            written := !inner)
    items

let check_vsrc ~pvar ~warrays ~wscalars ~bound ~written = function
  | Visa.Imm _ -> ()
  | Visa.Reg v -> check_scalar_read ~wscalars ~bound ~written v
  | Visa.Mem (Operand.Elem (b, idxs)) -> check_elem ~pvar ~warrays b idxs
  | Visa.Mem _ -> ()

let check_instr ~pvar ~warrays ~wscalars ~bound ~written (i : Visa.instr) =
  let elem = function
    | Operand.Elem (b, idxs) -> check_elem ~pvar ~warrays b idxs
    | Operand.Scalar _ | Operand.Const _ -> ()
  in
  match i with
  | Visa.Vload { elems; _ } | Visa.Vstore { elems; _ } -> List.iter elem elems
  | Visa.Vgather { srcs; _ } ->
      List.iter (check_vsrc ~pvar ~warrays ~wscalars ~bound ~written) srcs
  | Visa.Vbroadcast { src; _ } ->
      check_vsrc ~pvar ~warrays ~wscalars ~bound ~written src
  | Visa.Vunpack { dsts; _ } ->
      List.iter
        (function
          | Some (Visa.To_reg v) -> written := add !written v
          | Some (Visa.To_mem op) -> elem op
          | None -> ())
        dsts
  | Visa.Vload_scalars { sources; _ } ->
      List.iter (check_scalar_read ~wscalars ~bound ~written) sources
  | Visa.Vstore_scalars { targets; _ } ->
      List.iter (fun v -> written := add !written v) targets
  | Visa.Sstmt s -> check_stmt ~pvar ~warrays ~wscalars ~bound ~written s
  | Visa.Vpermute _ | Visa.Vshuffle2 _ | Visa.Vbin _ | Visa.Vun _ | Visa.Vspill _
  | Visa.Vreload _ ->
      ()

let rec check_vector_items ~pvar ~warrays ~wscalars ~bound ~written items =
  List.iter
    (function
      | Visa.Block instrs ->
          List.iter (check_instr ~pvar ~warrays ~wscalars ~bound ~written) instrs
      | Visa.Loop l ->
          let inner = ref !written in
          check_vector_items ~pvar ~warrays ~wscalars
            ~bound:(l.Visa.index :: bound) ~written:inner l.Visa.body;
          if trip_at_least_once ~lo:l.Visa.lo ~hi:l.Visa.hi then written := !inner)
    items

(* -- entry points --------------------------------------------------- *)

let scalar_parallel_safe (prog : Program.t) =
  match prog.Program.body with
  | [ Program.Loop l ] -> begin
      let acc = { warrays = []; wscalars = [] } in
      collect_scalar_items acc l.Program.body;
      match
        check_scalar_items ~pvar:l.Program.index ~warrays:acc.warrays
          ~wscalars:acc.wscalars ~bound:[ l.Program.index ] ~written:(ref [])
          l.Program.body
      with
      | () -> true
      | exception Unsafe -> false
    end
  | _ -> false

let vector_parallel_safe (prog : Visa.program) =
  match prog.Visa.body with
  | [ Visa.Loop l ] -> begin
      let acc = { warrays = []; wscalars = [] } in
      collect_vector_items acc l.Visa.body;
      match
        check_vector_items ~pvar:l.Visa.index ~warrays:acc.warrays
          ~wscalars:acc.wscalars ~bound:[ l.Visa.index ] ~written:(ref [])
          l.Visa.body
      with
      | () -> true
      | exception Unsafe -> false
    end
  | _ -> false
