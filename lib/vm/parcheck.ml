(* Chunk-independence analysis for the domain-parallel leg.

   The multicore simulation partitions the first top-level loop into
   per-core chunks; executing them on concurrent domains must be
   observationally identical to the sequential chunked run.  The
   scalar side delegates wholesale to {!Depend.scalar_parallel_verdict}:
   dependence-based chunk independence (no cross-iteration conflict on
   the partitioned index — offset subscripts and stride patterns are
   admitted when the solver proves the footprints disjoint), plus
   scalar reduction recognition; recognised reductions run on per-core
   partial accumulators merged in core order, which {!Engine} also
   makes the semantics of the sequential chunked leg so domain runs
   stay bit-identical.

   The vector (Visa) side applies the same rules to lowered programs:
   array accesses are collected from every instruction with their
   iteration boxes and tested pairwise with the cross-instance solver;
   reductions are recognised only from scalar [Sstmt] update chains
   and disqualified by any other instruction touching the scalar;
   remaining written scalars must be written before read within one
   iteration of the partitioned loop (privatizable temporaries).

   Soundness rests on control flow being data-independent: loop
   bounds are affine in the enclosing indices, so every chunk executes
   a fixed access sequence regardless of the float data.  [Serial]
   never breaks anything — the engine keeps its sequential legs. *)

open Slp_ir
open Slp_depend

type verdict = Depend.verdict =
  | Serial of string
  | Parallel of { reductions : (string * Types.binop) list }

let analyze_scalar = Depend.scalar_parallel_verdict

(* -- Visa side ------------------------------------------------------ *)

exception Unsafe of string

let add xs x = if List.mem x xs then xs else x :: xs

(* A loop whose bounds are compile-time constants provably executes at
   least once; only then may its writes count as definite for code
   after it (a zero-trip loop writes nothing). *)
let trip_at_least_once ~lo ~hi =
  match (Affine.to_const lo, Affine.to_const hi) with
  | Some lo, Some hi -> hi > lo
  | _ -> false

(* Array accesses of one instruction, as (elem, write) pairs. *)
let instr_elems (i : Visa.instr) =
  let of_op ~write = function
    | Operand.Elem (b, idxs) -> [ (b, idxs, write) ]
    | Operand.Scalar _ | Operand.Const _ -> []
  in
  let of_src = function
    | Visa.Mem op -> of_op ~write:false op
    | Visa.Imm _ | Visa.Reg _ -> []
  in
  match i with
  | Visa.Vload { elems; _ } -> List.concat_map (of_op ~write:false) elems
  | Visa.Vstore { elems; _ } -> List.concat_map (of_op ~write:true) elems
  | Visa.Vgather { srcs; _ } -> List.concat_map of_src srcs
  | Visa.Vbroadcast { src; _ } -> of_src src
  | Visa.Vunpack { dsts; _ } ->
      List.concat_map
        (function
          | Some (Visa.To_mem op) -> of_op ~write:true op
          | Some (Visa.To_reg _) | None -> [])
        dsts
  | Visa.Sstmt s ->
      of_op ~write:true s.Stmt.lhs
      @ List.concat_map (of_op ~write:false) (Expr.leaves s.Stmt.rhs)
  | Visa.Vload_scalars _ | Visa.Vstore_scalars _ | Visa.Vpermute _
  | Visa.Vshuffle2 _ | Visa.Vbin _ | Visa.Vun _ | Visa.Vspill _ | Visa.Vreload _
    ->
      []

(* Scalar names an instruction touches outside Sstmt statements —
   these disqualify a reduction candidate (its accumulator may only
   live in its own update chain). *)
let instr_scalar_touches (i : Visa.instr) =
  let of_src = function Visa.Reg v -> [ v ] | Visa.Imm _ | Visa.Mem _ -> [] in
  match i with
  | Visa.Vgather { srcs; _ } -> List.concat_map of_src srcs
  | Visa.Vbroadcast { src; _ } -> of_src src
  | Visa.Vunpack { dsts; _ } ->
      List.filter_map
        (function Some (Visa.To_reg v) -> Some v | _ -> None)
        dsts
  | Visa.Vload_scalars { sources; _ } -> sources
  | Visa.Vstore_scalars { targets; _ } -> targets
  | Visa.Sstmt _ | Visa.Vload _ | Visa.Vstore _ | Visa.Vpermute _
  | Visa.Vshuffle2 _ | Visa.Vbin _ | Visa.Vun _ | Visa.Vspill _ | Visa.Vreload _
    ->
      []

let collect_vector ~box0 items =
  let accesses = ref [] in
  let sstmts = ref [] in
  let foreign = ref [] in
  let wscalars = ref [] in
  let rec go ~box items =
    List.iter
      (function
        | Visa.Block instrs ->
            List.iter
              (fun (i : Visa.instr) ->
                List.iter
                  (fun (base, idxs, write) ->
                    accesses :=
                      { Depend.stmt = 0; base; idxs; write; box } :: !accesses)
                  (instr_elems i);
                foreign := instr_scalar_touches i @ !foreign;
                match i with
                | Visa.Sstmt s ->
                    sstmts := s :: !sstmts;
                    (match s.Stmt.lhs with
                    | Operand.Scalar v -> wscalars := add !wscalars v
                    | Operand.Const _ | Operand.Elem _ -> ())
                | Visa.Vunpack { dsts; _ } ->
                    List.iter
                      (function
                        | Some (Visa.To_reg v) -> wscalars := add !wscalars v
                        | _ -> ())
                      dsts
                | Visa.Vstore_scalars { targets; _ } ->
                    List.iter (fun v -> wscalars := add !wscalars v) targets
                | _ -> ())
              instrs
        | Visa.Loop l ->
            go
              ~box:
                (Depend.Box.add box l.Visa.index
                   (Depend.Box.of_bounds ~lo:l.Visa.lo ~hi:l.Visa.hi
                      ~step:l.Visa.step))
              l.Visa.body)
      items
  in
  go ~box:box0 items;
  (List.rev !accesses, List.rev !sstmts, !foreign, !wscalars)

(* Written-before-read replay over the Visa tree for the scalars that
   are neither reductions nor proven safe otherwise. *)
let check_scalar_read ~wscalars ~exempt ~bound ~written v =
  if
    (not (List.mem v bound))
    && List.mem v wscalars
    && (not (List.mem v exempt))
    && not (List.mem v !written)
  then raise (Unsafe ("par-scalar:" ^ v))

let check_vsrc ~wscalars ~exempt ~bound ~written = function
  | Visa.Reg v -> check_scalar_read ~wscalars ~exempt ~bound ~written v
  | Visa.Imm _ | Visa.Mem _ -> ()

let check_instr ~wscalars ~exempt ~bound ~written (i : Visa.instr) =
  match i with
  | Visa.Vgather { srcs; _ } ->
      List.iter (check_vsrc ~wscalars ~exempt ~bound ~written) srcs
  | Visa.Vbroadcast { src; _ } ->
      check_vsrc ~wscalars ~exempt ~bound ~written src
  | Visa.Vunpack { dsts; _ } ->
      List.iter
        (function
          | Some (Visa.To_reg v) -> written := add !written v
          | Some (Visa.To_mem _) | None -> ())
        dsts
  | Visa.Vload_scalars { sources; _ } ->
      List.iter (check_scalar_read ~wscalars ~exempt ~bound ~written) sources
  | Visa.Vstore_scalars { targets; _ } ->
      List.iter (fun v -> written := add !written v) targets
  | Visa.Sstmt s -> (
      List.iter
        (function
          | Operand.Scalar v ->
              check_scalar_read ~wscalars ~exempt ~bound ~written v
          | Operand.Const _ | Operand.Elem _ -> ())
        (Expr.leaves s.Stmt.rhs);
      match s.Stmt.lhs with
      | Operand.Scalar v -> written := add !written v
      | Operand.Const _ | Operand.Elem _ -> ())
  | Visa.Vload _ | Visa.Vstore _ | Visa.Vpermute _ | Visa.Vshuffle2 _
  | Visa.Vbin _ | Visa.Vun _ | Visa.Vspill _ | Visa.Vreload _ ->
      ()

let rec check_vector_items ~wscalars ~exempt ~bound ~written items =
  List.iter
    (function
      | Visa.Block instrs ->
          List.iter (check_instr ~wscalars ~exempt ~bound ~written) instrs
      | Visa.Loop l ->
          let inner = ref !written in
          check_vector_items ~wscalars ~exempt ~bound:(l.Visa.index :: bound)
            ~written:inner l.Visa.body;
          if trip_at_least_once ~lo:l.Visa.lo ~hi:l.Visa.hi then
            written := !inner)
    items

let analyze_vector (prog : Visa.program) =
  match prog.Visa.body with
  | [ Visa.Loop l ] -> begin
      let pvar = l.Visa.index in
      let box0 =
        Depend.Box.add Depend.Box.empty pvar
          (Depend.Box.of_bounds ~lo:l.Visa.lo ~hi:l.Visa.hi ~step:l.Visa.step)
      in
      let accesses, sstmts, foreign, wscalars = collect_vector ~box0 l.Visa.body in
      let warrays =
        List.filter_map
          (fun (a : Depend.access) ->
            if a.Depend.write then Some a.Depend.base else None)
          accesses
        |> List.sort_uniq String.compare
      in
      match
        List.iter
          (fun (a : Depend.access) ->
            if List.mem a.Depend.base warrays then
              List.iter
                (fun (b : Depend.access) ->
                  if
                    String.equal a.Depend.base b.Depend.base
                    && (a.Depend.write || b.Depend.write)
                    && Depend.cross_instance_conflict ~pvar a b
                  then raise (Unsafe ("par-array-dep:" ^ a.Depend.base)))
                accesses)
          accesses;
        let reductions =
          List.filter
            (fun (s, _) -> not (List.mem s foreign))
            (Depend.reductions_of_stmts sstmts)
        in
        let exempt = List.map fst reductions in
        check_vector_items ~wscalars ~exempt ~bound:[ pvar ] ~written:(ref [])
          l.Visa.body;
        reductions
      with
      | reductions -> Parallel { reductions }
      | exception Unsafe reason -> Serial reason
    end
  | _ -> Serial "par-shape"

(* -- boolean entry points (legacy) ---------------------------------- *)

let parallel = function Parallel _ -> true | Serial _ -> false
let scalar_parallel_safe prog = parallel (analyze_scalar prog)
let vector_parallel_safe prog = parallel (analyze_vector prog)
