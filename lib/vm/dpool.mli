(** A persistent pool of OCaml 5 domains.

    Executes the per-core legs of a multicore simulation on real
    domains: each simulated core's chunk runs as one task, dispatched
    to the pool's workers through a wait-free atomic cursor, with the
    calling domain participating as a worker.  Spawning is paid once
    at {!create}; every {!run} reuses the same domains. *)

type t

val create : ?workers:int -> unit -> t
(** Spawn a pool with [workers] worker domains (clamped to >= 0).
    Default: [Domain.recommended_domain_count () - 1], so the pool
    never oversubscribes the host — on a single-processor machine it
    spawns nothing and {!run} degrades to sequential execution. *)

val workers : t -> int
(** Number of spawned worker domains (0 means {!run} is sequential). *)

val run : t -> int -> (int -> unit) -> unit
(** [run t n f] executes [f 0 .. f (n-1)], concurrently when the pool
    has workers, and returns when all calls have finished.  Tasks must
    not themselves call {!run} on the same pool.  If any task raises,
    the first exception is re-raised after all tasks finish. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool must be idle. *)
