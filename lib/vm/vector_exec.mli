(** Execution of vectorized programs on the simulated SIMD machine.

    Interprets {!Visa.program}: computes real lane values (so results
    can be compared against {!Scalar_exec}) and charges machine-model
    costs — vector ALU cycles, cache-simulated memory latencies for
    vector and element accesses, and the packing/unpacking register
    instructions.  Setup items (layout replication) run once and are
    charged to [setup_cycles].  Multicore semantics mirror
    {!Scalar_exec.run}. *)

type result = { counters : Counters.t; memory : Memory.t }

val run :
  ?cores:int ->
  ?seed:int ->
  ?memory:Memory.t ->
  ?profile:Slp_obs.Profile.t ->
  ?origins:Slp_obs.Profile.key array list ->
  ?pool:Dpool.t ->
  machine:Slp_machine.Machine.t ->
  Visa.program ->
  result
(** Executes through the compiled engine ({!Engine.run_vector});
    [?profile]/[?origins] attribute cycles and cache accesses per
    originating statement or pack (see {!Engine.run_vector}). *)

val run_interpreter :
  ?cores:int ->
  ?seed:int ->
  ?memory:Memory.t ->
  machine:Slp_machine.Machine.t ->
  Visa.program ->
  result
(** The direct tree-walking interpreter — the reference oracle the
    compiled engine is differentially tested against.  Same observable
    behaviour as {!run}, several times slower. *)
