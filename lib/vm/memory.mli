(** The simulated address space: arrays and scalar spill slots.

    Arrays are flattened row-major at 64-byte-aligned bases; scalars
    occupy a dedicated segment whose slot assignment the data layout
    optimizer may override (paper §5.1 — adjacent slots let a scalar
    superword move with one vector memory operation).  Addresses are
    bytes; values are doubles regardless of declared element type
    (types govern widths and lane counts, not arithmetic).

    All value storage is unboxed [floatarray]: array backing stores,
    the scalar segment, and the vector spill arena, so the execution
    engine's hot loops touch flat float memory with no per-element
    boxing and no hashing. *)

open Slp_ir

type t

val create : ?scalar_layout:(string * int) list -> env:Env.t -> unit -> t
(** [scalar_layout] assigns byte offsets within the scalar segment;
    unlisted scalars are appended after the listed ones.  Offsets must
    be distinct multiples of 8.  The scalar segment is sized exactly
    from the declared scalars plus the explicit layout (no fixed
    "generous" area), and creation raises [Invalid_argument] if any
    scalar address would overflow into the spill segment. *)

val init_arrays : t -> seed:int -> unit
(** Fill every array with deterministic pseudo-random values in
    [0, 1). *)

val scalar_slot : t -> string -> int
(** Integer slot of a scalar value in {!scalar_values}.  Scalars
    declared in the environment are assigned slots at creation (in
    sorted name order); unknown names are registered on first use.
    The compiled execution engine resolves every name to a slot once,
    then reads and writes the flat backing store directly. *)

val scalar_values : t -> floatarray
(** The live scalar backing store, indexed by {!scalar_slot}.  The
    array may be replaced (grown) by a later [scalar_slot]
    registration of a new name, so register every name before
    capturing it. *)

val load : t -> string -> int -> float
(** [load t array flat_index]; raises {!Trap.Trap} out of bounds. *)

val store : t -> string -> int -> float -> unit
val scalar : t -> string -> float
(** Unset scalars read 0 (conservatively-initialised registers). *)

val set_scalar : t -> string -> float -> unit
val array_base : t -> string -> int
val scalar_addr : t -> string -> int
val elem_bytes : t -> string -> int
val flat_index : t -> string -> int list -> int
(** Row-major flattening with per-dimension bounds checks; raises
    {!Trap.Trap} on a rank mismatch or an out-of-range index. *)

val addr_of_elem : t -> string -> int list -> int
val array_values : t -> string -> floatarray
(** The live backing store (not a copy). *)

val dims : t -> string -> int list

val spill_addr : t -> slot:int -> int
(** Byte address of a vector spill slot (64-byte aligned segment after
    the scalar slots; slots are 64 bytes). *)

val reserve_spills : t -> slots:int -> max_lanes:int -> unit
(** Preallocate the spill arena for [slots] slots of up to [max_lanes]
    lanes each, so no growth happens on the execution hot path.  The
    register allocator's static slot count and the program's widest
    register give the exact sizing. *)

val spill_store : t -> slot:int -> float array -> unit
val spill_load : t -> slot:int -> float array
(** Raises {!Trap.Trap} when the slot was never stored. *)

val spill_store_from : t -> slot:int -> src:floatarray -> pos:int -> lanes:int -> unit
(** Allocation-free spill used by the compiled engine: blit [lanes]
    values from [src] at [pos] into the slot's arena row. *)

val spill_load_into : t -> slot:int -> dst:floatarray -> pos:int -> int
(** Blit the slot's value into [dst] at [pos]; returns its lane count.
    Raises {!Trap.Trap} when the slot was never stored (before writing
    anything). *)

val same_contents : t -> t -> bool
(** Array-by-array equality within 1e-9 (identical NaNs/infinities
    count as equal) — used to check that vectorized execution computes
    exactly what scalar execution does. *)
