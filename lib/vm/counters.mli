(** Dynamic execution counters.

    Figure 17 of the paper separates "dynamic instructions executed
    (excluding the packing/unpacking instructions)" from
    "packing/unpacking overheads"; the counters keep the two
    populations distinct.  Packing/unpacking covers inserts, extracts,
    permutes, broadcasts and the scalar memory operations issued inside
    gathers and unpacks. *)

type t = {
  mutable scalar_ops : int;
  mutable vector_ops : int;
  mutable scalar_loads : int;  (** Loads issued by scalar statements. *)
  mutable scalar_stores : int;
  mutable vector_loads : int;
  mutable vector_stores : int;
  mutable pack_loads : int;  (** Element loads inside a gather/pack. *)
  mutable pack_stores : int;  (** Element stores inside an unpack. *)
  mutable inserts : int;
  mutable extracts : int;
  mutable permutes : int;
  mutable broadcasts : int;
  mutable cycles : float;
  mutable setup_cycles : float;
      (** One-time cost of materialising replicated layouts. *)
}

val create : unit -> t
val copy : t -> t
val add : t -> t -> t
(** Component-wise sum (fresh record). *)

val merge_into : into:t -> t -> unit
(** Accumulate instruction counts and cycles into [into]. *)

val approx_equal : t -> t -> bool
(** All instruction counts equal; [cycles] and [setup_cycles] within
    1e-9 — the differential check between the compiled engine and the
    reference interpreters. *)

val dynamic_instructions : t -> int
(** All executed instructions except packing/unpacking. *)

val packing_instructions : t -> int
(** Inserts + extracts + permutes + broadcasts + pack memory ops. *)

val total_instructions : t -> int
val memory_operations : t -> int
val total_cycles : t -> float
val pp : Format.formatter -> t -> unit
