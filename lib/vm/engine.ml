(* Closure-compiled execution engine.

   The legacy interpreters ([Scalar_exec], [Vector_exec]) re-resolve
   everything on every loop iteration: loop indices through an assoc
   list, scalars through a string-keyed hash table, vector registers
   through an int-keyed hash table, and affine subscripts through a
   string-map fold.  This module performs that resolution once, as a
   *compilation* step: a program becomes a tree of OCaml closures over
   a flat execution state — scalar names resolved to integer slots in
   [Memory]'s flat backing store, vector registers in a preallocated
   array indexed by the regalloc-assigned number, loop indices in an
   int frame indexed by nesting depth, affine subscripts specialised
   to [base + sum coeff*frame.(d)] multiply-adds, and per-instruction
   cost constants hoisted out of the loop.

   The engine is observationally identical to the interpreters: every
   cache access happens at the same address in the same order, every
   counter increments at the same point, and cycles accumulate in the
   same floating-point order, so results are bit-identical (the
   differential fuzz suite asserts this).  The interpreters remain as
   the reference oracle. *)

open Slp_ir
module M = Slp_machine.Machine
module Profile = Slp_obs.Profile

type result = { counters : Counters.t; memory : Memory.t }

(* Per-core mutable execution state.  Memory-dependent data (array
   backing stores, base addresses, scalar slots) is captured inside
   the compiled closures at link time; memory itself is shared across
   cores, like the interpreters'. *)
type state = {
  cache : Cache.t;
  counters : Counters.t;
  cycles : float array;
      (** Single-cell cycle accumulator.  [Counters.t] mixes int and
          float fields, so its float fields are boxed and every
          [cycles <- cycles +. c] would allocate; accumulating in a
          float array cell is allocation-free and the drivers copy the
          total into [counters] at run boundaries.  The additions
          happen in the same order as the interpreters', so the result
          is bit-identical. *)
  frame : int array;  (** Loop index value per nesting depth. *)
  vregs : float array array;  (** Vector register file by register number. *)
}

let charge st c = st.cycles.(0) <- st.cycles.(0) +. c

(* -- profiling ------------------------------------------------------ *)

(* Every cycle the engine charges happens inside a compiled statement
   or instruction closure, so bracketing each closure with a cycle
   delta attributes the entire run total to source constructs — the
   per-key sums equal [Counters.total_cycles] exactly (per core).
   Cache accesses ride the same bracket: the profile's current-stat
   pointer is set for the closure's duration and the cache observer
   bins each access against it.  With profiling off the closure is
   returned untouched — the unprofiled path compiles to the same code
   as before. *)
let wrap_profile prof key f =
  match prof with
  | None -> f
  | Some p ->
      let s = Profile.stat p key in
      fun st ->
        let before = st.cycles.(0) in
        Profile.set_current p (Some s);
        f st;
        Profile.set_current p None;
        Profile.add s ~cycles:(st.cycles.(0) -. before)

let opcode_name = function
  | Visa.Vload _ -> "vload"
  | Visa.Vstore _ -> "vstore"
  | Visa.Vgather _ -> "vgather"
  | Visa.Vunpack _ -> "vunpack"
  | Visa.Vbroadcast _ -> "vbroadcast"
  | Visa.Vpermute _ -> "vpermute"
  | Visa.Vshuffle2 _ -> "vshuffle2"
  | Visa.Vbin _ -> "vbin"
  | Visa.Vun _ -> "vun"
  | Visa.Vspill _ -> "vspill"
  | Visa.Vreload _ -> "vreload"
  | Visa.Vload_scalars _ -> "vload_scalars"
  | Visa.Vstore_scalars _ -> "vstore_scalars"
  | Visa.Sstmt _ -> "sstmt"

(* Key for an instruction with no recorded origin: scalar statements
   keep their statement id, everything else degrades to its opcode. *)
let fallback_key = function
  | Visa.Sstmt s -> Profile.Stmt s.Stmt.id
  | instr -> Profile.Op (opcode_name instr)

let register_arrays p env memory =
  List.iter
    (fun (name, (info : Env.array_info)) ->
      let bytes =
        Memory.elem_bytes memory name * List.fold_left ( * ) 1 info.Env.dims
      in
      Profile.register_array p ~name
        ~base:(Memory.array_base memory name)
        ~bytes)
    (Env.arrays env)

let observe_cache profile cache =
  match profile with
  | None -> ()
  | Some p ->
      Cache.set_observer cache
        (Some (fun addr level -> Profile.note_access p ~addr ~level))

(* Unique sentinel marking a register never written.  A zero-length
   array cannot serve: OCaml shares one atom for all empty arrays, so
   it would also match a legitimately empty register value. *)
let unset_vreg = [| Float.nan |]

let vreg st r =
  let lanes = st.vregs.(r) in
  if lanes == unset_vreg then
    invalid_arg (Printf.sprintf "Vector_exec: v%d read before write" r);
  lanes

(* Compiled top-level items keep their loop structure exposed so the
   multicore driver can override the bounds of the partitioned loop;
   nested structure is folded into plain closures. *)
type citem = Cblock of (state -> unit) | Cloop of cloop

and cloop = {
  c_depth : int;
  c_step : int;
  c_lo : state -> int;
  c_hi : state -> int;
  c_const_bounds : (int * int) option;
  c_body : state -> unit;
}

let run_loop st l ~lo ~hi =
  let i = ref lo in
  while !i < hi do
    st.frame.(l.c_depth) <- !i;
    l.c_body st;
    i := !i + l.c_step
  done

let run_item st = function
  | Cblock f -> f st
  | Cloop l -> run_loop st l ~lo:(l.c_lo st) ~hi:(l.c_hi st)

let run_items st items = List.iter (run_item st) items

let first_cloop items =
  let rec go k = function
    | [] -> None
    | Cloop l :: _ -> Some (k, l)
    | Cblock _ :: rest -> go (k + 1) rest
  in
  go 0 items

let chunk_ranges ~lo ~hi ~step ~cores =
  (* Split [lo, hi) into [cores] contiguous step-aligned ranges. *)
  let trip = if hi <= lo then 0 else ((hi - lo) + step - 1) / step in
  let per = trip / cores and extra = trip mod cores in
  let ranges = ref [] in
  let start = ref lo in
  for k = 0 to cores - 1 do
    let iters = per + (if k < extra then 1 else 0) in
    let stop = !start + (iters * step) in
    ranges := (!start, min stop hi) :: !ranges;
    start := stop
  done;
  List.rev !ranges

(* -- linking helpers ----------------------------------------------- *)

type linkctx = {
  mem : Memory.t;
  machine : M.t;
  sdata : float array;
      (* The scalar backing store, captured after every name in the
         program has been registered (so it cannot be replaced by a
         growth mid-run). *)
}

(* Affine subscripts specialise to integer multiply-adds over the loop
   frame.  [depths] maps enclosing loop indices to frame depths,
   innermost first; an unbound variable raises [Not_found] like
   [Affine.eval] under the interpreters' index environment. *)
let resolve_terms ~depths a =
  List.map
    (fun (v, k) ->
      match List.assoc_opt v depths with
      | Some d -> (d, k)
      | None -> raise Not_found)
    (Affine.terms a)

let compile_affine ~depths a =
  let const = Affine.const_part a in
  match resolve_terms ~depths a with
  | [] -> fun _ -> const
  | [ (d, k) ] -> fun (frame : int array) -> const + (k * frame.(d))
  | terms ->
      let terms = Array.of_list terms in
      fun frame ->
        let acc = ref const in
        Array.iter (fun (d, k) -> acc := !acc + (k * frame.(d))) terms;
        !acc

let compile_bound ~depths a =
  let f = compile_affine ~depths a in
  fun st -> f st.frame

(* A linked array element: backing store, geometry, and a specialised
   bounds-checked flat-index function (same checks and error messages
   as [Memory.flat_index]). *)
type elem_ref = {
  e_data : float array;
  e_base : int;
  e_bytes : int;
  e_flat : int array -> int;
}

let compile_flat ?stmt ~depths ctx name idxs =
  let dims = Memory.dims ctx.mem name in
  match (dims, idxs) with
  | [ d0 ], [ ix ] ->
      (* The common 1-D case folds the bounds check into the affine
         closure itself (no inner closure call on the hot path).  The
         originating statement id is baked into the trap closure at
         compile time — zero cost on the in-bounds path. *)
      let oob i = Trap.oob ?stmt ~array:name ~index:i ~bound:d0 () in
      let const = Affine.const_part ix in
      (match resolve_terms ~depths ix with
      | [] -> if const < 0 || const >= d0 then fun _ -> oob const else fun _ -> const
      | [ (d, k) ] ->
          fun (frame : int array) ->
            let i = const + (k * frame.(d)) in
            if i < 0 || i >= d0 then oob i;
            i
      | terms ->
          let terms = Array.of_list terms in
          fun frame ->
            let acc = ref const in
            Array.iter (fun (d, k) -> acc := !acc + (k * frame.(d))) terms;
            let i = !acc in
            if i < 0 || i >= d0 then oob i;
            i)
  | dims, idxs when List.length dims = List.length idxs ->
      let fs = Array.of_list (List.map (compile_affine ~depths) idxs) in
      let ds = Array.of_list dims in
      fun frame ->
        let acc = ref 0 in
        Array.iteri
          (fun k f ->
            let i = f frame in
            let d = ds.(k) in
            if i < 0 || i >= d then Trap.oob ?stmt ~array:name ~index:i ~bound:d ();
            acc := (!acc * d) + i)
          fs;
        !acc
  | _ -> fun _ -> Trap.rank_mismatch ?stmt ~array:name ()

let link_elem ?stmt ctx ~depths op =
  match op with
  | Operand.Elem (b, idxs) ->
      {
        e_data = Memory.array_values ctx.mem b;
        e_base = Memory.array_base ctx.mem b;
        e_bytes = Memory.elem_bytes ctx.mem b;
        e_flat = compile_flat ?stmt ~depths ctx b idxs;
      }
  | Operand.Const _ | Operand.Scalar _ ->
      invalid_arg "Engine: expected an array element operand"

(* A scalar name used as a value: a loop index reads the induction
   variable (innermost binding first, as the interpreters' assoc-list
   lookup), otherwise the flat scalar slot. *)
let link_scalar_read ctx ~depths v =
  match List.assoc_opt v depths with
  | Some d -> fun st -> float_of_int st.frame.(d)
  | None ->
      let data = ctx.sdata in
      let slot = Memory.scalar_slot ctx.mem v in
      fun _ -> data.(slot)

let binop_fn = function
  | Types.Add -> ( +. )
  | Types.Sub -> ( -. )
  | Types.Mul -> ( *. )
  | Types.Div -> ( /. )
  | Types.Min -> Float.min
  | Types.Max -> Float.max

let unop_fn = function
  | Types.Neg -> ( ~-. )
  | Types.Abs -> Float.abs
  | Types.Sqrt -> Float.sqrt

(* -- scalar statements --------------------------------------------- *)

(* Mirrors [Scalar_exec.exec_stmt]: loads charge as the expression
   evaluates (right operand before left, as pinned by [Expr.eval]),
   then ALU cycles, then the store. *)
let compile_operand_read ?stmt ctx ~depths op =
  match op with
  | Operand.Const c -> fun _ -> c
  | Operand.Scalar v -> link_scalar_read ctx ~depths v
  | Operand.Elem _ ->
      let { e_data; e_base; e_bytes = bytes; e_flat } = link_elem ?stmt ctx ~depths op in
      let issue = float_of_int ctx.machine.M.costs.M.load_issue in
      fun st ->
        let fl = e_flat st.frame in
        st.counters.Counters.scalar_loads <- st.counters.Counters.scalar_loads + 1;
        charge st
          (issue
          +. Cache.access st.cache ~addr:(e_base + (fl * bytes)) ~bytes ~write:false);
        e_data.(fl)

let rec compile_expr ?stmt ctx ~depths e =
  match e with
  | Expr.Leaf op -> compile_operand_read ?stmt ctx ~depths op
  | Expr.Un (u, inner) ->
      let f = compile_expr ?stmt ctx ~depths inner in
      let g = unop_fn u in
      fun st -> g (f st)
  | Expr.Bin (b, l, r) ->
      let fl = compile_expr ?stmt ctx ~depths l in
      let fr = compile_expr ?stmt ctx ~depths r in
      let g = binop_fn b in
      fun st ->
        let vr = fr st in
        let vl = fl st in
        g vl vr

let compile_stmt ctx ~depths (s : Stmt.t) =
  let costs = ctx.machine.M.costs in
  let stmt = s.Stmt.id in
  let rhs = compile_expr ~stmt ctx ~depths s.Stmt.rhs in
  let nops = Stmt.op_count s in
  let op_cycles =
    float_of_int
      (List.fold_left
         (fun acc op ->
           acc
           +
           match op with
           | Either.Left Types.Div -> costs.M.divide
           | Either.Right Types.Sqrt -> costs.M.square_root
           | Either.Left _ -> costs.M.scalar_op
           | Either.Right _ -> costs.M.scalar_op)
         0
         (Expr.operators s.Stmt.rhs))
  in
  match s.Stmt.lhs with
  | Operand.Scalar v ->
      let data = ctx.sdata in
      let slot = Memory.scalar_slot ctx.mem v in
      fun st ->
        let value = rhs st in
        st.counters.Counters.scalar_ops <- st.counters.Counters.scalar_ops + nops;
        charge st op_cycles;
        data.(slot) <- value
  | Operand.Elem _ as op ->
      let { e_data; e_base; e_bytes = bytes; e_flat } = link_elem ~stmt ctx ~depths op in
      let issue = float_of_int costs.M.store_issue in
      fun st ->
        let value = rhs st in
        st.counters.Counters.scalar_ops <- st.counters.Counters.scalar_ops + nops;
        charge st op_cycles;
        let fl = e_flat st.frame in
        st.counters.Counters.scalar_stores <- st.counters.Counters.scalar_stores + 1;
        charge st
          (issue
          +. Cache.access st.cache ~addr:(e_base + (fl * bytes)) ~bytes ~write:true);
        e_data.(fl) <- value
  | Operand.Const _ -> assert false

let run_block fs st =
  for k = 0 to Array.length fs - 1 do
    fs.(k) st
  done

let rec compile_scalar_items ?prof ctx ~depths ~depth items =
  List.map
    (function
      | Program.Stmts b ->
          let fs =
            Array.of_list
              (List.map
                 (fun s ->
                   wrap_profile prof (Profile.Stmt s.Stmt.id)
                     (compile_stmt ctx ~depths s))
                 b.Block.stmts)
          in
          Cblock (run_block fs)
      | Program.Loop l ->
          let c_lo = compile_bound ~depths l.Program.lo in
          let c_hi = compile_bound ~depths l.Program.hi in
          let body =
            compile_scalar_items ?prof ctx
              ~depths:((l.Program.index, depth) :: depths)
              ~depth:(depth + 1) l.Program.body
          in
          Cloop
            {
              c_depth = depth;
              c_step = l.Program.step;
              c_lo;
              c_hi;
              c_const_bounds =
                (match (Affine.to_const l.Program.lo, Affine.to_const l.Program.hi) with
                | Some lo, Some hi -> Some (lo, hi)
                | _, _ -> None);
              c_body = (fun st -> run_items st body);
            })
    items

(* -- vector instructions ------------------------------------------- *)

let link_lane_src ctx ~depths ~count (src : Visa.lane_src) =
  match src with
  | Visa.Imm f -> fun _ -> f
  | Visa.Reg v -> link_scalar_read ctx ~depths v
  | Visa.Mem op ->
      let { e_data; e_base; e_bytes; e_flat } = link_elem ctx ~depths op in
      let issue = float_of_int ctx.machine.M.costs.M.load_issue in
      fun st ->
        let fl = e_flat st.frame in
        count st.counters;
        charge st
          (issue
          +. Cache.access st.cache
               ~addr:(e_base + (fl * e_bytes))
               ~bytes:e_bytes ~write:false);
        e_data.(fl)

let pack_load c = c.Counters.pack_loads <- c.Counters.pack_loads + 1

let compile_instr ctx ~depths instr =
  let costs = ctx.machine.M.costs in
  match instr with
  | Visa.Vload { dst; elems } ->
      let es = Array.of_list (List.map (link_elem ctx ~depths) elems) in
      let n = Array.length es in
      let e0 = es.(0) in
      let issue = float_of_int costs.M.load_issue in
      let bytes_total = e0.e_bytes * n in
      let flats = Array.make n 0 in
      (* The lane buffer is owned by this instruction: it only ever
         reaches the register file through [dst], so reusing it across
         executions cannot alias another live register. *)
      let values = Array.make n 0.0 in
      fun st ->
        let frame = st.frame in
        for k = 0 to n - 1 do
          flats.(k) <- es.(k).e_flat frame
        done;
        for k = 0 to n - 1 do
          values.(k) <- es.(k).e_data.(flats.(k))
        done;
        st.counters.Counters.vector_loads <- st.counters.Counters.vector_loads + 1;
        charge st
          (issue
          +. Cache.access st.cache
               ~addr:(e0.e_base + (flats.(0) * e0.e_bytes))
               ~bytes:bytes_total ~write:false);
        st.vregs.(dst) <- values
  | Visa.Vstore { src; elems } ->
      let es = Array.of_list (List.map (link_elem ctx ~depths) elems) in
      let n = Array.length es in
      let e0 = es.(0) in
      let issue = float_of_int costs.M.store_issue in
      let bytes_total = e0.e_bytes * n in
      let flats = Array.make n 0 in
      fun st ->
        let lanes = vreg st src in
        let frame = st.frame in
        for k = 0 to n - 1 do
          flats.(k) <- es.(k).e_flat frame
        done;
        for k = 0 to n - 1 do
          es.(k).e_data.(flats.(k)) <- lanes.(k)
        done;
        st.counters.Counters.vector_stores <- st.counters.Counters.vector_stores + 1;
        charge st
          (issue
          +. Cache.access st.cache
               ~addr:(e0.e_base + (flats.(0) * e0.e_bytes))
               ~bytes:bytes_total ~write:true)
  | Visa.Vgather { dst; srcs } ->
      let fns =
        Array.of_list (List.map (link_lane_src ctx ~depths ~count:pack_load) srcs)
      in
      let n = Array.length fns in
      let insert_c = float_of_int (n * costs.M.insert) in
      let values = Array.make n 0.0 in
      fun st ->
        for k = 0 to n - 1 do
          values.(k) <- fns.(k) st
        done;
        st.counters.Counters.inserts <- st.counters.Counters.inserts + n;
        charge st insert_c;
        st.vregs.(dst) <- values
  | Visa.Vunpack { src; dsts } ->
      let extract_c = float_of_int costs.M.extract in
      let fns =
        List.mapi
          (fun i d ->
            match d with
            | None -> None
            | Some (Visa.To_reg v) ->
                let data = ctx.sdata in
                let slot = Memory.scalar_slot ctx.mem v in
                Some
                  (fun st (lanes : float array) ->
                    st.counters.Counters.extracts <- st.counters.Counters.extracts + 1;
                    charge st extract_c;
                    data.(slot) <- lanes.(i))
            | Some (Visa.To_mem op) ->
                let { e_data; e_base; e_bytes; e_flat } = link_elem ctx ~depths op in
                let issue = float_of_int costs.M.store_issue in
                Some
                  (fun st lanes ->
                    st.counters.Counters.extracts <- st.counters.Counters.extracts + 1;
                    charge st extract_c;
                    let fl = e_flat st.frame in
                    st.counters.Counters.pack_stores <-
                      st.counters.Counters.pack_stores + 1;
                    charge st
                      (issue
                      +. Cache.access st.cache
                           ~addr:(e_base + (fl * e_bytes))
                           ~bytes:e_bytes ~write:true);
                    e_data.(fl) <- lanes.(i)))
          dsts
        |> List.filter_map Fun.id |> Array.of_list
      in
      fun st ->
        let lanes = vreg st src in
        for k = 0 to Array.length fns - 1 do
          fns.(k) st lanes
        done
  | Visa.Vbroadcast { dst; src; lanes } ->
      let value = link_lane_src ctx ~depths ~count:pack_load src in
      let broadcast_c = float_of_int costs.M.broadcast in
      let buf = Array.make lanes 0.0 in
      fun st ->
        let v = value st in
        st.counters.Counters.broadcasts <- st.counters.Counters.broadcasts + 1;
        charge st broadcast_c;
        Array.fill buf 0 lanes v;
        st.vregs.(dst) <- buf
  | Visa.Vpermute { dst; src; sel } ->
      let sel = Array.copy sel in
      let permute_c = float_of_int costs.M.permute in
      fun st ->
        let lanes = vreg st src in
        st.counters.Counters.permutes <- st.counters.Counters.permutes + 1;
        charge st permute_c;
        st.vregs.(dst) <- Array.map (fun i -> lanes.(i)) sel
  | Visa.Vshuffle2 { dst; a; b; sel } ->
      let sel = Array.copy sel in
      let permute_c = float_of_int costs.M.permute in
      fun st ->
        let la = vreg st a and lb = vreg st b in
        st.counters.Counters.permutes <- st.counters.Counters.permutes + 1;
        charge st permute_c;
        st.vregs.(dst) <-
          Array.map (fun (s, lane) -> if s = 0 then la.(lane) else lb.(lane)) sel
  | Visa.Vbin { dst; op; a; b } ->
      let f = binop_fn op in
      let c =
        float_of_int
          (match op with Types.Div -> costs.M.divide | _ -> costs.M.vector_op)
      in
      let buf = ref [||] in
      fun st ->
        let la = vreg st a and lb = vreg st b in
        st.counters.Counters.vector_ops <- st.counters.Counters.vector_ops + 1;
        charge st c;
        let n = Array.length la in
        let r =
          if Array.length !buf = n then !buf
          else begin
            let b = Array.make n 0.0 in
            buf := b;
            b
          end
        in
        (* [r] may alias [la]/[lb] when [dst] is also an operand; the
           update is elementwise (index [i] is read before written), so
           aliasing is harmless. *)
        for i = 0 to n - 1 do
          r.(i) <- f la.(i) lb.(i)
        done;
        st.vregs.(dst) <- r
  | Visa.Vun { dst; op; a } ->
      let f = unop_fn op in
      let c =
        float_of_int
          (match op with
          | Types.Sqrt -> costs.M.square_root
          | Types.Neg | Types.Abs -> costs.M.vector_op)
      in
      let buf = ref [||] in
      fun st ->
        let la = vreg st a in
        st.counters.Counters.vector_ops <- st.counters.Counters.vector_ops + 1;
        charge st c;
        let n = Array.length la in
        let r =
          if Array.length !buf = n then !buf
          else begin
            let b = Array.make n 0.0 in
            buf := b;
            b
          end
        in
        for i = 0 to n - 1 do
          r.(i) <- f la.(i)
        done;
        st.vregs.(dst) <- r
  | Visa.Vspill { src; slot } ->
      let mem = ctx.mem in
      let addr = Memory.spill_addr mem ~slot in
      let issue = float_of_int costs.M.store_issue in
      fun st ->
        let lanes = vreg st src in
        Memory.spill_store mem ~slot lanes;
        st.counters.Counters.vector_stores <- st.counters.Counters.vector_stores + 1;
        charge st
          (issue
          +. Cache.access st.cache ~addr ~bytes:(8 * Array.length lanes) ~write:true)
  | Visa.Vreload { dst; slot } ->
      let mem = ctx.mem in
      let addr = Memory.spill_addr mem ~slot in
      let issue = float_of_int costs.M.load_issue in
      fun st ->
        let lanes = Memory.spill_load mem ~slot in
        st.counters.Counters.vector_loads <- st.counters.Counters.vector_loads + 1;
        charge st
          (issue
          +. Cache.access st.cache ~addr ~bytes:(8 * Array.length lanes) ~write:false);
        st.vregs.(dst) <- lanes
  | Visa.Vload_scalars { dst; sources } ->
      let data = ctx.sdata in
      let slots = Array.of_list (List.map (Memory.scalar_slot ctx.mem) sources) in
      let n = Array.length slots in
      let issue = float_of_int costs.M.load_issue in
      let addr0 =
        try Ok (Memory.scalar_addr ctx.mem (List.hd sources))
        with Invalid_argument msg -> Error msg
      in
      fun st ->
        let values = Array.make n 0.0 in
        for k = 0 to n - 1 do
          values.(k) <- data.(slots.(k))
        done;
        st.counters.Counters.vector_loads <- st.counters.Counters.vector_loads + 1;
        let addr = match addr0 with Ok a -> a | Error msg -> invalid_arg msg in
        charge st (issue +. Cache.access st.cache ~addr ~bytes:(8 * n) ~write:false);
        st.vregs.(dst) <- values
  | Visa.Vstore_scalars { src; targets } ->
      let data = ctx.sdata in
      let slots = Array.of_list (List.map (Memory.scalar_slot ctx.mem) targets) in
      let n = Array.length slots in
      let issue = float_of_int costs.M.store_issue in
      let addr0 =
        try Ok (Memory.scalar_addr ctx.mem (List.hd targets))
        with Invalid_argument msg -> Error msg
      in
      fun st ->
        let lanes = vreg st src in
        for k = 0 to n - 1 do
          data.(slots.(k)) <- lanes.(k)
        done;
        st.counters.Counters.vector_stores <- st.counters.Counters.vector_stores + 1;
        let addr = match addr0 with Ok a -> a | Error msg -> invalid_arg msg in
        charge st (issue +. Cache.access st.cache ~addr ~bytes:(8 * n) ~write:true)
  | Visa.Sstmt s -> compile_stmt ctx ~depths s

(* [keys] selects profiling keys for vector instructions: [`Setup]
   charges everything to the setup key; [`Origins q] pops one origin
   array per [Visa.Block] from [q] in pre-order (the order [Lower]
   records them), falling back to opcode keys when the queue runs dry
   or an origin array is short. *)
let rec compile_vector_items ?prof ?(keys = `Origins (ref [])) ctx ~depths
    ~depth items =
  List.map
    (function
      | Visa.Block instrs ->
          let okeys =
            match keys with
            | `Setup -> None
            | `Origins q -> (
                match !q with
                | arr :: rest ->
                    q := rest;
                    Some arr
                | [] -> None)
          in
          let key i instr =
            match keys with
            | `Setup -> Profile.Setup
            | `Origins _ -> (
                match okeys with
                | Some arr when i < Array.length arr -> arr.(i)
                | _ -> fallback_key instr)
          in
          let fs =
            Array.of_list
              (List.mapi
                 (fun i instr ->
                   wrap_profile prof (key i instr)
                     (compile_instr ctx ~depths instr))
                 instrs)
          in
          Cblock (run_block fs)
      | Visa.Loop l ->
          let c_lo = compile_bound ~depths l.Visa.lo in
          let c_hi = compile_bound ~depths l.Visa.hi in
          let body =
            compile_vector_items ?prof ~keys ctx
              ~depths:((l.Visa.index, depth) :: depths)
              ~depth:(depth + 1) l.Visa.body
          in
          Cloop
            {
              c_depth = depth;
              c_step = l.Visa.step;
              c_lo;
              c_hi;
              c_const_bounds =
                (match (Affine.to_const l.Visa.lo, Affine.to_const l.Visa.hi) with
                | Some lo, Some hi -> Some (lo, hi)
                | _, _ -> None);
              c_body = (fun st -> run_items st body);
            })
    items

(* -- program geometry ---------------------------------------------- *)

let rec scalar_prog_depth items =
  List.fold_left
    (fun acc item ->
      match item with
      | Program.Stmts _ -> acc
      | Program.Loop l -> max acc (1 + scalar_prog_depth l.Program.body))
    0 items

let rec vector_prog_depth items =
  List.fold_left
    (fun acc item ->
      match item with
      | Visa.Block _ -> acc
      | Visa.Loop l -> max acc (1 + vector_prog_depth l.Visa.body))
    0 items

let max_vreg_instr acc = function
  | Visa.Vload { dst; _ }
  | Visa.Vgather { dst; _ }
  | Visa.Vbroadcast { dst; _ }
  | Visa.Vreload { dst; _ }
  | Visa.Vload_scalars { dst; _ } ->
      max acc dst
  | Visa.Vstore { src; _ }
  | Visa.Vspill { src; _ }
  | Visa.Vstore_scalars { src; _ }
  | Visa.Vunpack { src; _ } ->
      max acc src
  | Visa.Vpermute { dst; src; _ } -> max acc (max dst src)
  | Visa.Vshuffle2 { dst; a; b; _ } -> max acc (max dst (max a b))
  | Visa.Vbin { dst; a; b; _ } -> max acc (max dst (max a b))
  | Visa.Vun { dst; a; _ } -> max acc (max dst a)
  | Visa.Sstmt _ -> acc

let rec max_vreg_items acc items =
  List.fold_left
    (fun acc item ->
      match item with
      | Visa.Block instrs -> List.fold_left max_vreg_instr acc instrs
      | Visa.Loop l -> max_vreg_items acc l.Visa.body)
    acc items

(* Every scalar name a program can touch, registered with [Memory]
   before the backing store is captured (a later registration could
   replace the array under the closures). *)
let stmt_scalar_names acc (s : Stmt.t) =
  List.fold_left
    (fun acc op ->
      match op with
      | Operand.Scalar v -> v :: acc
      | Operand.Const _ | Operand.Elem _ -> acc)
    acc (Stmt.positions s)

let rec scalar_prog_names acc items =
  List.fold_left
    (fun acc item ->
      match item with
      | Program.Stmts b -> List.fold_left stmt_scalar_names acc b.Block.stmts
      | Program.Loop l -> scalar_prog_names acc l.Program.body)
    acc items

let lane_src_names acc = function
  | Visa.Imm _ -> acc
  | Visa.Reg v -> v :: acc
  | Visa.Mem _ -> acc

let instr_scalar_names acc = function
  | Visa.Vgather { srcs; _ } -> List.fold_left lane_src_names acc srcs
  | Visa.Vbroadcast { src; _ } -> lane_src_names acc src
  | Visa.Vunpack { dsts; _ } ->
      List.fold_left
        (fun acc d ->
          match d with
          | Some (Visa.To_reg v) -> v :: acc
          | Some (Visa.To_mem _) | None -> acc)
        acc dsts
  | Visa.Vload_scalars { sources; _ } -> List.rev_append sources acc
  | Visa.Vstore_scalars { targets; _ } -> List.rev_append targets acc
  | Visa.Sstmt s -> stmt_scalar_names acc s
  | Visa.Vload _ | Visa.Vstore _ | Visa.Vpermute _ | Visa.Vshuffle2 _ | Visa.Vbin _
  | Visa.Vun _ | Visa.Vspill _ | Visa.Vreload _ ->
      acc

let rec vector_prog_names acc items =
  List.fold_left
    (fun acc item ->
      match item with
      | Visa.Block instrs -> List.fold_left instr_scalar_names acc instrs
      | Visa.Loop l -> vector_prog_names acc l.Visa.body)
    acc items

let make_ctx ~machine mem names =
  List.iter (fun v -> ignore (Memory.scalar_slot mem v)) names;
  { mem; machine; sdata = Memory.scalar_values mem }

let fresh_state ?contention ~machine ~nframe ~nvregs () =
  {
    cache = Cache.create ?contention machine;
    counters = Counters.create ();
    cycles = [| 0.0 |];
    frame = Array.make (max 1 nframe) 0;
    vregs = Array.make nvregs unset_vreg;
  }

(* -- drivers (multicore semantics mirror the interpreters) --------- *)

let run_scalar ?(cores = 1) ?(seed = 42) ?memory ?profile ~machine
    (prog : Program.t) =
  let memory =
    match memory with
    | Some m -> m
    | None ->
        let m = Memory.create ~env:prog.Program.env () in
        Memory.init_arrays m ~seed;
        m
  in
  (match profile with
  | None -> ()
  | Some p -> register_arrays p prog.Program.env memory);
  let ctx = make_ctx ~machine memory (scalar_prog_names [] prog.Program.body) in
  let items =
    compile_scalar_items ?prof:profile ctx ~depths:[] ~depth:0 prog.Program.body
  in
  assert (Memory.scalar_values memory == ctx.sdata);
  let nframe = scalar_prog_depth prog.Program.body in
  let fresh ?contention () =
    let st = fresh_state ?contention ~machine ~nframe ~nvregs:0 () in
    observe_cache profile st.cache;
    st
  in
  let run_single () =
    let st = fresh () in
    run_items st items;
    st.counters.Counters.cycles <- st.cycles.(0);
    { counters = st.counters; memory }
  in
  if cores <= 1 then run_single ()
  else begin
    let contention = 1.0 +. (float_of_int (cores - 1) *. machine.M.contention_per_core) in
    match first_cloop items with
    | None -> run_single ()
    | Some (main_idx, main_loop) ->
        let lo, hi =
          match main_loop.c_const_bounds with
          | Some (lo, hi) -> (lo, hi)
          | None -> raise Not_found
        in
        let ranges = chunk_ranges ~lo ~hi ~step:main_loop.c_step ~cores in
        let all = Counters.create () in
        let max_cycles = ref 0.0 in
        List.iteri
          (fun core (clo, chi) ->
            let st = fresh ~contention () in
            List.iteri
              (fun j item ->
                if j = main_idx then run_loop st main_loop ~lo:clo ~hi:chi
                else if core = 0 then run_item st item)
              items;
            max_cycles := Float.max !max_cycles st.cycles.(0);
            Counters.merge_into ~into:all st.counters)
          ranges;
        all.Counters.cycles <- !max_cycles;
        { counters = all; memory }
  end

let run_vector ?(cores = 1) ?(seed = 42) ?memory ?profile ?origins ~machine
    (prog : Visa.program) =
  let memory =
    match memory with
    | Some m -> m
    | None ->
        let m = Memory.create ~env:prog.Visa.env () in
        Memory.init_arrays m ~seed;
        m
  in
  (match profile with
  | None -> ()
  | Some p -> register_arrays p prog.Visa.env memory);
  let names =
    vector_prog_names (vector_prog_names [] prog.Visa.setup) prog.Visa.body
  in
  let ctx = make_ctx ~machine memory names in
  let setup =
    compile_vector_items ?prof:profile ~keys:`Setup ctx ~depths:[] ~depth:0
      prog.Visa.setup
  in
  let body =
    compile_vector_items ?prof:profile
      ~keys:(`Origins (ref (Option.value origins ~default:[])))
      ctx ~depths:[] ~depth:0 prog.Visa.body
  in
  assert (Memory.scalar_values memory == ctx.sdata);
  let nframe =
    max (vector_prog_depth prog.Visa.setup) (vector_prog_depth prog.Visa.body)
  in
  let nvregs = 1 + max_vreg_items (max_vreg_items (-1) prog.Visa.setup) prog.Visa.body in
  let fresh ?contention () =
    let st = fresh_state ?contention ~machine ~nframe ~nvregs () in
    observe_cache profile st.cache;
    st
  in
  let setup_state = fresh () in
  (* Setup (layout replication) runs once.  Replication loops are data
     parallel, so under multicore execution each one is partitioned
     like the main loop and its time is the slowest core's share. *)
  let setup_cycles =
    if cores <= 1 then begin
      run_items setup_state setup;
      let c = setup_state.cycles.(0) in
      setup_state.cycles.(0) <- 0.0;
      c
    end
    else begin
      let total = ref 0.0 in
      List.iter
        (fun item ->
          match item with
          | Cloop l -> begin
              match l.c_const_bounds with
              | Some (lo, hi) ->
                  let ranges = chunk_ranges ~lo ~hi ~step:l.c_step ~cores in
                  let slowest = ref 0.0 in
                  List.iter
                    (fun (clo, chi) ->
                      let before = setup_state.cycles.(0) in
                      run_loop setup_state l ~lo:clo ~hi:chi;
                      let spent = setup_state.cycles.(0) -. before in
                      slowest := Float.max !slowest spent)
                    ranges;
                  total := !total +. !slowest
              | None -> run_item setup_state item
            end
          | Cblock _ -> run_item setup_state item)
        setup;
      setup_state.cycles.(0) <- 0.0;
      !total
    end
  in
  setup_state.counters.Counters.setup_cycles <- setup_cycles;
  if cores <= 1 then begin
    run_items setup_state body;
    setup_state.counters.Counters.cycles <- setup_state.cycles.(0);
    { counters = setup_state.counters; memory }
  end
  else begin
    let contention = 1.0 +. (float_of_int (cores - 1) *. machine.M.contention_per_core) in
    match first_cloop body with
    | None ->
        let st = fresh () in
        run_items st body;
        st.counters.Counters.cycles <- st.cycles.(0);
        st.counters.Counters.setup_cycles <- setup_cycles;
        { counters = st.counters; memory }
    | Some (main_idx, main_loop) ->
        let lo, hi =
          match main_loop.c_const_bounds with
          | Some (lo, hi) -> (lo, hi)
          | None -> raise Not_found
        in
        let ranges = chunk_ranges ~lo ~hi ~step:main_loop.c_step ~cores in
        let all = setup_state.counters in
        let max_cycles = ref 0.0 in
        List.iteri
          (fun core (clo, chi) ->
            let st = fresh ~contention () in
            List.iteri
              (fun j item ->
                if j = main_idx then run_loop st main_loop ~lo:clo ~hi:chi
                else if core = 0 then run_item st item)
              body;
            max_cycles := Float.max !max_cycles st.cycles.(0);
            Counters.merge_into ~into:all st.counters)
          ranges;
        all.Counters.cycles <- !max_cycles;
        { counters = all; memory }
  end
